// Quickstart: the end-to-end cloudgen workflow in ~60 lines.
//
//  1. Build a synthetic "provider" and split its history into windows.
//  2. Train the three-stage workload model (Poisson regression for batch
//     arrivals, flavor LSTM, lifetime LSTM) on the training window.
//  3. Generate a day of synthetic workload and print summary statistics.
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "src/core/workload_model.h"
#include "src/synth/synthetic_cloud.h"
#include "src/trace/stats.h"
#include "src/util/rng.h"

using namespace cloudgen;

int main() {
  // 1. A small simulated cloud: 8 flavors, one week of history.
  SynthProfile profile = AzureLikeProfile(/*scale=*/0.5);
  profile.train_days = 5;
  profile.dev_days = 1;
  profile.test_days = 1;
  profile.num_flavors = 8;
  const SyntheticCloud cloud(profile, /*seed=*/42);
  const Trace history = cloud.Generate();

  const int64_t train_end = profile.train_days * kPeriodsPerDay;
  const Trace train = ApplyObservationWindow(history, 0, train_end, train_end);
  std::printf("training data: %zu VMs over %d days (%.1f%% censored)\n", train.NumJobs(),
              profile.train_days, CensoredFraction(train) * 100.0);

  // 2. Train the model. Configs are CPU-sized; see DESIGN.md for paper-scale.
  WorkloadModelConfig config;
  config.flavor.epochs = 3;
  config.lifetime.epochs = 3;
  WorkloadModel model;
  Rng rng(7);
  model.Train(train, config, rng);
  std::printf("trained: flavor LSTM %zu params, lifetime LSTM %zu params\n",
              model.FlavorModel().NumParameters(), model.LifetimeModel().NumParameters());

  // 3. Generate one synthetic day beyond the history.
  WorkloadModel::GenerateOptions options;
  options.from_period = profile.TotalPeriods();
  options.to_period = options.from_period + kPeriodsPerDay;
  const Trace generated = model.Generate(options, rng);

  const TraceSummary summary = Summarize(generated);
  std::printf("\ngenerated %zu VMs in %zu batches/period on average\n", summary.num_jobs,
              static_cast<size_t>(summary.mean_batches_per_period));
  std::printf("mean lifetime: %.1f hours\n", summary.mean_lifetime_hours);
  const std::vector<double> flavor_counts = FlavorCounts(generated);
  std::printf("flavor mix:");
  for (size_t f = 0; f < flavor_counts.size(); ++f) {
    std::printf(" %s=%.0f", generated.Flavors()[f].name.c_str(), flavor_counts[f]);
  }
  std::printf("\n");
  return 0;
}
