// Scheduler stress testing (§6.2 + the 10x what-if): generate synthetic
// workload at 1x and 10x the nominal arrival rate and pack it onto a cluster
// with all four packing algorithms, reporting each algorithm's first-failure
// allocation ratio (FFAR) — "can the scheduler handle a 10x higher request
// rate, and which packing policy fragments least?"
//
// Run:  ./build/examples/scheduler_stress
#include <cstdio>

#include "src/baselines/generators.h"
#include "src/core/workload_model.h"
#include "src/sched/ffar.h"
#include "src/sched/packing.h"
#include "src/synth/synthetic_cloud.h"
#include "src/trace/events.h"
#include "src/util/rng.h"

using namespace cloudgen;

int main() {
  SynthProfile profile = AzureLikeProfile(0.5);
  profile.train_days = 5;
  profile.dev_days = 1;
  profile.test_days = 1;
  const SyntheticCloud cloud(profile, 17);
  const Trace history = cloud.Generate();
  const int64_t train_end = profile.train_days * kPeriodsPerDay;
  const Trace train = ApplyObservationWindow(history, 0, train_end, train_end);

  WorkloadModelConfig config;
  config.flavor.epochs = 3;
  config.lifetime.epochs = 3;
  WorkloadModel model;
  Rng rng(5);
  model.Train(train, config, rng);
  const LstmGenerator generator(model);

  const auto algorithms = MakeAllPackingAlgorithms();
  for (double scale : {1.0, 10.0}) {
    const Trace workload =
        generator.Generate(train_end, train_end + kPeriodsPerDay, scale, rng);
    Rng event_rng(23);
    const std::vector<Event> events = BuildEventStream(workload, event_rng);
    std::printf("\n=== arrival scale %.0fx: %zu VMs ===\n", scale, workload.NumJobs());
    std::printf("%-12s | %10s | %10s | %8s\n", "algorithm", "CPU FFAR", "Mem FFAR",
                "placed");
    for (const auto& algorithm : algorithms) {
      SchedulingTuple tuple;
      tuple.start_fraction = 0.0;
      // Size the cluster to the scale so both runs stress the same regime.
      tuple.num_servers = static_cast<size_t>(8 * scale);
      tuple.server_capacity = {64.0, 256.0};
      Rng pack_rng(31);
      const FfarResult result = RunPacking(workload, events, tuple, *algorithm, pack_rng);
      std::printf("%-12s | %9.1f%% | %9.1f%% | %8zu%s\n", algorithm->Name().c_str(),
                  result.cpu_ffar * 100.0, result.mem_ffar * 100.0, result.placed_jobs,
                  result.failed ? "" : " (no failure)");
    }
  }
  return 0;
}
