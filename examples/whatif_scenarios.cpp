// What-if scenario exploration: because stage 1 exposes the arrival rate as
// an explicit parameter (the design rationale of §7), operators can dial
// conditions without retraining — scale arrivals up or down and compare the
// resulting demand distributions, exactly the "simulate various conditions of
// interest" use case from §1.
//
// Run:  ./build/examples/whatif_scenarios
#include <algorithm>
#include <cstdio>

#include "src/core/workload_model.h"
#include "src/eval/capacity.h"
#include "src/synth/synthetic_cloud.h"
#include "src/trace/stats.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

using namespace cloudgen;

int main() {
  SynthProfile profile = AzureLikeProfile(0.5);
  profile.train_days = 5;
  profile.dev_days = 1;
  profile.test_days = 1;
  const SyntheticCloud cloud(profile, 55);
  const Trace history = cloud.Generate();
  const int64_t train_end = profile.train_days * kPeriodsPerDay;
  const Trace train = ApplyObservationWindow(history, 0, train_end, train_end);

  WorkloadModelConfig config;
  config.flavor.epochs = 3;
  config.lifetime.epochs = 3;
  WorkloadModel model;
  Rng rng(9);
  model.Train(train, config, rng);

  const int64_t from = profile.TotalPeriods();
  const int64_t to = from + kPeriodsPerDay;
  constexpr size_t kSamples = 25;

  std::printf("%-28s | %10s | %12s | %12s\n", "scenario", "mean VMs", "mean peak CPU",
              "p95 peak CPU");
  struct Scenario {
    const char* name;
    double arrival_scale;
    DohMode doh_mode;
  };
  const Scenario scenarios[] = {
      {"baseline (sampled DOH)", 1.0, DohMode::kGeometricSample},
      {"baseline (last-day DOH)", 1.0, DohMode::kLastDay},
      {"organic growth +50%", 1.5, DohMode::kGeometricSample},
      {"consolidation 3x", 3.0, DohMode::kGeometricSample},
      {"stress test 10x", 10.0, DohMode::kGeometricSample},
  };
  for (const Scenario& scenario : scenarios) {
    WorkloadModel::GenerateOptions options;
    options.from_period = from;
    options.to_period = to;
    options.arrival_scale = scenario.arrival_scale;
    options.doh_mode = scenario.doh_mode;
    double total_jobs = 0.0;
    std::vector<double> peaks;
    for (size_t s = 0; s < kSamples; ++s) {
      const Trace trace = model.Generate(options, rng);
      total_jobs += static_cast<double>(trace.NumJobs());
      const std::vector<double> cpus = TotalCpusPerPeriod(trace, from, to);
      peaks.push_back(*std::max_element(cpus.begin(), cpus.end()));
    }
    std::printf("%-28s | %10.0f | %12.0f | %12.0f\n", scenario.name,
                total_jobs / kSamples, Mean(peaks), Quantile(peaks, 0.95));
  }
  std::printf("\nNote: scaling arrivals preserves batch structure and the flavor/lifetime\n"
              "mix — only the rate changes (one parameter, no retraining).\n");
  return 0;
}
