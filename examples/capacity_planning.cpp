// Capacity planning (§6.1): "do we have enough servers to cover 95% of
// possible workload scenarios next week?"
//
// Samples many futures from the trained model, builds the distribution of
// total CPU demand over the planning horizon, and reports the capacity needed
// at several confidence levels.
//
// Run:  ./build/examples/capacity_planning
#include <algorithm>
#include <cstdio>

#include "src/core/workload_model.h"
#include "src/eval/capacity.h"
#include "src/synth/synthetic_cloud.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

using namespace cloudgen;

int main() {
  SynthProfile profile = AzureLikeProfile(0.5);
  profile.train_days = 5;
  profile.dev_days = 1;
  profile.test_days = 2;
  const SyntheticCloud cloud(profile, 99);
  const Trace history = cloud.Generate();
  const int64_t train_end = profile.train_days * kPeriodsPerDay;
  const Trace train = ApplyObservationWindow(history, 0, train_end, train_end);

  WorkloadModelConfig config;
  config.flavor.epochs = 3;
  config.lifetime.epochs = 3;
  WorkloadModel model;
  Rng rng(3);
  model.Train(train, config, rng);

  // Plan for the 2 days following the history. VMs already running at the
  // planning point keep consuming capacity.
  const int64_t plan_start = profile.TotalPeriods();
  const int64_t plan_end = plan_start + 2 * kPeriodsPerDay;
  const std::vector<Job> carry = CarryOverJobs(history, plan_start);

  WorkloadModel::GenerateOptions options;
  options.from_period = plan_start;
  options.to_period = plan_end;

  constexpr size_t kScenarios = 60;
  std::vector<double> peak_demand;
  peak_demand.reserve(kScenarios);
  for (size_t s = 0; s < kScenarios; ++s) {
    const Trace scenario = model.Generate(options, rng);
    const std::vector<double> cpus =
        TotalCpusWithCarryOver(scenario, carry, plan_start, plan_end);
    peak_demand.push_back(*std::max_element(cpus.begin(), cpus.end()));
  }

  std::printf("sampled %zu workload scenarios over a 2-day horizon\n", kScenarios);
  std::printf("peak total-CPU demand distribution:\n");
  for (double q : {0.50, 0.90, 0.95, 0.99}) {
    std::printf("  %4.0f%% of scenarios need <= %8.0f CPUs\n", q * 100.0,
                Quantile(peak_demand, q));
  }
  const double provisioned = Quantile(peak_demand, 0.95) * 1.1;
  std::printf("\nrecommendation: provision %.0f CPUs (95th percentile + 10%% headroom)\n",
              provisioned);
  return 0;
}
