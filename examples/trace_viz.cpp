// Figure-1-style visualization: real workload vs. naively-generated workload
// vs. LSTM-generated workload, rendered to the terminal (ANSI colors) and to
// PPM images. Each row is a 5-minute period; blocks are VMs (color = flavor,
// width = lifetime bin); gaps separate user batches.
//
// Run:  ./build/examples/trace_viz
#include <cstdio>

#include "src/baselines/generators.h"
#include "src/core/workload_model.h"
#include "src/synth/synthetic_cloud.h"
#include "src/viz/trace_viz.h"
#include "src/util/rng.h"

using namespace cloudgen;

int main() {
  SynthProfile profile = AzureLikeProfile(0.5);
  profile.train_days = 4;
  profile.dev_days = 1;
  profile.test_days = 1;
  const SyntheticCloud cloud(profile, 77);
  const Trace history = cloud.Generate();
  const int64_t train_end = profile.train_days * kPeriodsPerDay;
  const Trace train = ApplyObservationWindow(history, 0, train_end, train_end);

  WorkloadModelConfig config;
  config.flavor.epochs = 3;
  config.lifetime.epochs = 3;
  WorkloadModel model;
  Rng rng(5);
  model.Train(train, config, rng);

  const LifetimeBinning binning = MakePaperBinning();
  const NaiveGenerator naive(train, binning);
  const LstmGenerator lstm(model);

  // Render 25 afternoon periods of each trace.
  VizOptions options;
  options.from_period = train_end + 14 * kPeriodsPerHour;
  options.to_period = options.from_period + 25;
  options.max_row_cells = 100;

  const Trace real_window = ApplyObservationWindow(
      history, options.from_period, options.to_period, history.WindowEnd());
  const Trace naive_trace =
      naive.Generate(options.from_period, options.to_period, 1.0, rng);
  const Trace lstm_trace = lstm.Generate(options.from_period, options.to_period, 1.0, rng);

  std::printf("(a) real trace — batches of same-flavor, similar-lifetime VMs:\n%s\n",
              RenderAnsi(real_window, binning, options).c_str());
  std::printf("(b) naive generator — independent VMs, no batch structure:\n%s\n",
              RenderAnsi(naive_trace, binning, options).c_str());
  std::printf("(c) LSTM generator — batch structure recovered:\n%s\n",
              RenderAnsi(lstm_trace, binning, options).c_str());

  WritePpm(real_window, binning, options, "trace_real.ppm");
  WritePpm(naive_trace, binning, options, "trace_naive.ppm");
  WritePpm(lstm_trace, binning, options, "trace_lstm.ppm");
  std::printf("wrote trace_real.ppm, trace_naive.ppm, trace_lstm.ppm\n");
  return 0;
}
