// "Beyond flavors" (§2.2.3): modeling workloads whose jobs request arbitrary
// resource combinations instead of catalog flavors. The MultiResourceLstmModel
// generates a CPU class per job and a memory class *conditioned on the CPU*
// (chained softmaxes), so generated pairs respect the CPU↔memory correlation
// in the data.
//
// Run:  ./build/examples/beyond_flavors
#include <algorithm>
#include <cstdio>
#include <set>

#include "src/core/resource_model.h"
#include "src/synth/synthetic_cloud.h"
#include "src/util/rng.h"

using namespace cloudgen;

namespace {

ResourceQuantizer QuantizerFor(const Trace& trace, bool cpu) {
  std::vector<double> levels;
  for (const Flavor& flavor : trace.Flavors()) {
    levels.push_back(cpu ? flavor.cpus : flavor.memory_gb);
  }
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  return ResourceQuantizer(levels);
}

}  // namespace

int main() {
  SynthProfile profile = AzureLikeProfile(0.5);
  profile.train_days = 4;
  profile.dev_days = 1;
  profile.test_days = 1;
  const SyntheticCloud cloud(profile, 31);
  const Trace history = cloud.Generate();
  const int64_t train_end = profile.train_days * kPeriodsPerDay;
  const Trace train = ApplyObservationWindow(history, 0, train_end, train_end);
  const Trace test = ApplyObservationWindow(history, train_end + kPeriodsPerDay,
                                            history.WindowEnd(), history.WindowEnd());

  const ResourceQuantizer cpu = QuantizerFor(train, true);
  const ResourceQuantizer mem = QuantizerFor(train, false);
  std::printf("resource grid: %zu CPU classes x %zu memory classes\n", cpu.NumClasses(),
              mem.NumClasses());

  MultiResourceLstmModel model;
  ResourceModelConfig config;
  config.epochs = 8;
  Rng rng(3);
  model.Train(train, cpu, mem, profile.train_days, config, rng);

  const auto eval = model.Evaluate(test);
  std::printf("held-out NLL: cpu %.3f + mem|cpu %.3f = joint %.3f over %zu jobs\n",
              eval.cpu_nll, eval.mem_nll, eval.joint_nll, eval.steps);

  // Generate a period and show the pairs.
  MultiResourceLstmModel::Generator generator(model, profile.train_days);
  Rng gen_rng(9);
  const auto batches = generator.GeneratePeriod(train_end, 4, gen_rng);
  std::printf("\ngenerated %zu batches:\n", batches.size());
  for (size_t b = 0; b < batches.size(); ++b) {
    std::printf("  batch %zu:", b);
    for (const ResourceRequest& request : batches[b]) {
      std::printf(" (%gc,%gg)", cpu.ValueOf(request.cpu_class),
                  mem.ValueOf(request.mem_class));
    }
    std::printf("\n");
  }
  return 0;
}
