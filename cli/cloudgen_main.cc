// cloudgen — command-line front end to the workload-generation library.
//
// Subcommands:
//   synth     Generate a synthetic ground-truth trace (CSV).
//   train     Train the three-stage model on a trace CSV; save the networks.
//   generate  Sample synthetic workload from a trained model (CSV out).
//   eval      Stage-wise evaluation of a trained model on a held-out window.
//   viz       Fig.-1-style rendering of a trace window (ANSI or PPM).
//
// Examples:
//   cloudgen synth --profile azure --out jobs.csv --flavors flavors.csv
//   cloudgen train --jobs jobs.csv --flavors flavors.csv --train-days 16 \
//                  --model model --epochs 12
//   cloudgen generate --jobs jobs.csv --flavors flavors.csv --train-days 16 \
//                  --model model --from-day 18 --days 2 --out gen.csv
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <thread>

#include "cli/flags.h"
#include "src/core/gen_guard.h"
#include "src/core/workload_model.h"
#include "src/obs/fidelity_monitor.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_span.h"
#include "src/sched/reuse_distance.h"
#include "src/serve/chaos.h"
#include "src/serve/client.h"
#include "src/serve/server.h"
#include "src/util/crc32.h"
#include "src/util/strings.h"
#include "src/synth/synthetic_cloud.h"
#include "src/trace/stats.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_sink.h"
#include "src/util/atomic_file.h"
#include "src/util/cancel.h"
#include "src/util/fault.h"
#include "src/util/fault_plan.h"
#include "src/util/log.h"
#include "src/util/metrics_exporter.h"
#include "src/util/metrics_json.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"
#include "src/viz/trace_viz.h"

namespace cloudgen {
namespace {

// Exit codes: 0 success, 1 other failure, 2 usage, 3 input/parse error,
// 4 training failure, 5 generation interrupted at a safe boundary (rerun
// with --resume-gen to continue), 6 numeric-guard abort, 7 corrupt data
// (truncated/empty manifest, CRC mismatch), 8 server rejected the request
// (admission control / tenant quota).
constexpr int kExitUsage = 2;
constexpr int kExitInput = 3;
constexpr int kExitTrain = 4;
constexpr int kExitInterrupted = 5;
constexpr int kExitGuard = 6;
constexpr int kExitCorrupt = 7;
constexpr int kExitRejected = 8;

int Usage() {
  std::fprintf(
      stderr,
      "usage: cloudgen <command> [--flag value ...]\n"
      "\n"
      "commands:\n"
      "  synth     --profile azure|huawei [--scale S] [--seed N]\n"
      "            --out JOBS.csv --flavors FLAVORS.csv\n"
      "  train     --jobs JOBS.csv --flavors FLAVORS.csv --train-days N\n"
      "            --model PREFIX [--epochs E] [--hidden H] [--layers L]\n"
      "            [--checkpoint CKPT_PREFIX] [--resume] [--lenient]\n"
      "  generate  --jobs JOBS.csv --flavors FLAVORS.csv --train-days N\n"
      "            --model PREFIX --from-day D --days K [--arrival-scale S]\n"
      "            [--eob-scale S] [--seed N] [--traces N] [--lenient]\n"
      "            --out GEN.csv | --out-dir DIR [--segment-bytes N]\n"
      "            [--resume-gen] [--deadline-sec S]\n"
      "            [--guard off|abort|resample|fallback] [--batch-window N]\n"
      "            [--gen-shards N]\n"
      "  segcat    --dir DIR [--out FILE] [--allow-partial]\n"
      "  metrics-dump  --in METRICS.json [--prom]\n"
      "  serve     --jobs JOBS.csv --flavors FLAVORS.csv --train-days N\n"
      "            --model PREFIX --from-day D --days K [--port P] [--bind A]\n"
      "            [--state-dir DIR] [--max-streams N] [--max-streams-per-tenant N]\n"
      "            [--max-buffer-mb N] [--idle-timeout-sec S] [--io-timeout-sec S]\n"
      "            [--stall-timeout-sec S] [--gen-shards N]\n"
      "  fetch     --port P [--host H] --tenant T --stream S --seed N --traces N\n"
      "            --out FILE [--resume] [--retry-attempts N] [--retry-base-ms MS]\n"
      "            [--credit-bytes N] [--io-timeout-sec S]\n"
      "  fetch     --port P [--host H] --health | --metrics-json | --metrics-prom\n"
      "  chaos     --jobs JOBS.csv --flavors FLAVORS.csv --train-days N\n"
      "            --model PREFIX --from-day D --days K [--clients N] [--traces N]\n"
      "            [--seed N] [--fault-plan FILE] [--fault-seed N]\n"
      "            [--state-dir DIR] [--stall-timeout-sec S] [--deadline-sec S]\n"
      "  eval      --jobs JOBS.csv --flavors FLAVORS.csv --train-days N\n"
      "            --model PREFIX --eval-from-day D [--eval-days K]\n"
      "  analyze   --jobs JOBS.csv --flavors FLAVORS.csv [--lenient]\n"
      "  viz       --jobs JOBS.csv --flavors FLAVORS.csv --from-period P\n"
      "            [--periods K] [--ppm OUT.ppm]\n"
      "\n"
      "flags:\n"
      "  --lenient     skip (and count) malformed trace rows instead of failing\n"
      "  --checkpoint  write per-epoch training checkpoints under this prefix\n"
      "  --resume      resume training from --checkpoint files if present\n"
      "  --threads     worker threads for training/generation (0 = all cores;\n"
      "                default 1; results are identical for every N)\n"
      "  --traces      generate: number of independent traces to sample; trace\n"
      "                i goes to OUT with suffix .i before the extension\n"
      "  --metrics-out write a JSON metrics snapshot (counters, gauges,\n"
      "                histograms, per-epoch series) to this path on exit\n"
      "  --metrics-interval-sec  with --metrics-out: additionally write rolling\n"
      "                snapshots to PATH.roll-NNNNNN.json every S seconds from a\n"
      "                background thread (atomic temp+rename; never torn)\n"
      "  --fidelity    generate/serve: turn on the observe-only fidelity monitor\n"
      "                (fidelity.* drift gauges vs model-derived references);\n"
      "                generated bytes are identical with it on or off\n"
      "  --trace-out   record trace spans and write Chrome trace_event JSON to\n"
      "                this path on exit (open in Perfetto / chrome://tracing)\n"
      "  --out-dir     generate: stream into crash-consistent sealed segments in\n"
      "                DIR (with a manifest + checkpoint) instead of one CSV;\n"
      "                SIGINT/SIGTERM/--deadline-sec stop at a safe boundary\n"
      "  --resume-gen  continue a --out-dir run from its checkpoint; the resumed\n"
      "                output is byte-identical to an uninterrupted run\n"
      "  --guard       numeric-health policy for generation steps (default\n"
      "                abort; see docs/ROBUSTNESS.md)\n"
      "  --batch-window  max traces stepped in lockstep by the batched\n"
      "                inference engine (default 256; 0 = single-stream path;\n"
      "                output bytes are identical for every setting)\n"
      "  --gen-shards  generate/serve: independent batch windows in flight on\n"
      "                the thread pool (default 0 = one per worker thread;\n"
      "                1 = single window; output bytes are identical for\n"
      "                every setting)\n"
      "  --fault-plan  arm the deterministic fault injector from a plan file\n"
      "                (same grammar as CLOUDGEN_FAULT_PLAN; see\n"
      "                docs/ROBUSTNESS.md); --fault-seed picks the schedule.\n"
      "                chaos: the scenario plan (default: the composed one)\n"
      "\n"
      "exit codes: 0 ok, 2 usage, 3 input/parse error, 4 training failure,\n"
      "            5 generation interrupted (resumable), 6 numeric-guard abort,\n"
      "            7 corrupt data (empty/truncated manifest, CRC mismatch),\n"
      "            8 server rejected the request (quota/overload)\n");
  return kExitUsage;
}

// Prints the full Status context chain to stderr and returns `exit_code`.
int Fail(int exit_code, const Status& status) {
  std::fprintf(stderr, "cloudgen: %s\n", status.ToString().c_str());
  return exit_code;
}

// Returns 0 on success, or the exit code to propagate.
int LoadTrace(const Flags& flags, Trace* trace) {
  const std::string jobs = flags.GetString("jobs", "");
  const std::string flavors = flags.GetString("flavors", "");
  if (jobs.empty() || flavors.empty()) {
    std::fprintf(stderr, "--jobs and --flavors are required\n");
    return kExitUsage;
  }
  TraceCsvReadOptions options;
  options.lenient = flags.Has("lenient");
  TraceCsvReadReport report;
  const Status status = ReadTraceCsv(jobs, flavors, options, trace, &report);
  if (!status.ok()) {
    return Fail(kExitInput, status);
  }
  if (report.rows_skipped > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed row(s); first: %s\n",
                 report.rows_skipped, report.first_skipped.c_str());
  }
  return 0;
}

WorkloadModelConfig ConfigFrom(const Flags& flags) {
  WorkloadModelConfig config;
  const auto epochs = static_cast<size_t>(flags.GetLong("epochs", 12));
  const auto hidden = static_cast<size_t>(flags.GetLong("hidden", 64));
  const auto layers = static_cast<size_t>(flags.GetLong("layers", 2));
  config.flavor.epochs = epochs;
  config.flavor.hidden_dim = hidden;
  config.flavor.num_layers = layers;
  config.flavor.learning_rate = 5e-3f;
  config.flavor.lr_decay = 0.93f;
  config.lifetime.epochs = epochs;
  config.lifetime.hidden_dim = hidden;
  config.lifetime.num_layers = layers;
  config.lifetime.learning_rate = 5e-3f;
  config.lifetime.lr_decay = 0.93f;
  const std::string ckpt = flags.GetString("checkpoint", "");
  if (!ckpt.empty()) {
    config.flavor.recovery.checkpoint_path = ckpt + ".flavor.ckpt";
    config.lifetime.recovery.checkpoint_path = ckpt + ".lifetime.ckpt";
  }
  const bool resume = flags.Has("resume");
  config.flavor.recovery.resume = resume;
  config.lifetime.recovery.resume = resume;
  return config;
}

// Training window view shared by train/generate/eval. Returns 0 on success.
int TrainWindow(const Flags& flags, const Trace& trace, Trace* train) {
  const long train_days = flags.GetLong("train-days", 0);
  if (train_days <= 0) {
    std::fprintf(stderr, "--train-days is required and must be positive\n");
    return kExitUsage;
  }
  const int64_t end = train_days * kPeriodsPerDay;
  *train = ApplyObservationWindow(trace, 0, end, end);
  return 0;
}

int RunSynth(const Flags& flags) {
  const std::string profile_name = flags.GetString("profile", "azure");
  const double scale = flags.GetDouble("scale", 1.0);
  SynthProfile profile =
      profile_name == "huawei" ? HuaweiLikeProfile(scale) : AzureLikeProfile(scale);
  const auto seed = static_cast<uint64_t>(flags.GetLong("seed", 42));
  const SyntheticCloud cloud(profile, seed);
  const Trace trace = cloud.Generate();
  const std::string out = flags.GetString("out", "jobs.csv");
  const std::string flavors = flags.GetString("flavors", "flavors.csv");
  const Status written = WriteTraceCsv(trace, out, flavors);
  if (!written.ok()) {
    return Fail(1, written);
  }
  const TraceSummary summary = Summarize(trace);
  std::printf("wrote %zu jobs over %.0f days to %s (catalog: %s)\n", summary.num_jobs,
              summary.window_days, out.c_str(), flavors.c_str());
  return 0;
}

int RunTrain(const Flags& flags) {
  if (flags.Has("resume") && flags.GetString("checkpoint", "").empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint\n");
    return kExitUsage;
  }
  Trace trace;
  Trace train;
  int rc = LoadTrace(flags, &trace);
  if (rc == 0) {
    rc = TrainWindow(flags, trace, &train);
  }
  if (rc != 0) {
    return rc;
  }
  const std::string prefix = flags.GetString("model", "model");
  WorkloadModel model;
  Rng rng(static_cast<uint64_t>(flags.GetLong("seed", 7)));
  const Status trained = model.Train(train, ConfigFrom(flags), rng);
  if (!trained.ok()) {
    return Fail(kExitTrain, trained);
  }
  const Status saved = model.SaveToFiles(prefix);
  if (!saved.ok()) {
    return Fail(kExitTrain, saved);
  }
  std::printf("trained on %zu jobs; saved %s.flavor.bin and %s.lifetime.bin\n",
              train.NumJobs(), prefix.c_str(), prefix.c_str());
  return 0;
}

// The crash-consistent --out-dir path: jobs stream into sealed segments, a
// checkpoint follows every seal, and SIGINT/SIGTERM/--deadline-sec wind the
// run down at a safe boundary so --resume-gen completes it byte-identically.
int RunGenerateSegmented(const Flags& flags, const WorkloadModel& model,
                         WorkloadModel::GenerateOptions options, Rng& rng, uint64_t seed,
                         long num_traces, const std::string& out_dir) {
  CancelToken& cancel = GlobalCancelToken();
  InstallCancelSignalHandlers();
  const double deadline_sec = flags.GetDouble("deadline-sec", 0.0);
  if (deadline_sec > 0.0) {
    cancel.SetDeadline(deadline_sec);
  }
  options.cancel = &cancel;

  const bool resume = flags.Has("resume-gen");
  SegmentedFileSink::Options sink_options;
  sink_options.dir = out_dir;
  sink_options.segment_bytes =
      static_cast<uint64_t>(flags.GetLong("segment-bytes", 4 * 1024 * 1024));
  sink_options.resume = resume;
  SegmentedFileSink sink(sink_options);
  Status status = sink.Init();
  if (!status.ok()) {
    return Fail(kExitInput, status);
  }

  WorkloadModel::GenerateRun run;
  run.sink = &sink;
  run.checkpoint_path = out_dir + "/gen.ckpt";
  run.resume = resume;
  run.config_fingerprint = seed;

  WorkloadModel::GenerateReport report;
  try {
    status = num_traces == 1
                 ? model.GenerateStreaming(options, rng, run, &report)
                 : model.GenerateMany(options, static_cast<size_t>(num_traces), rng, run,
                                      &report);
  } catch (const GuardViolation& violation) {
    std::fprintf(stderr, "cloudgen: generation aborted by numeric guard: %s\n",
                 violation.what());
    return kExitGuard;
  }
  if (!status.ok()) {
    return Fail(kExitInput, status);
  }
  if (report.interrupted) {
    if (report.parked) {
      // Disk full: everything flushed is sealed + checkpointed, so the same
      // resumable exit code applies — the run completes byte-identically
      // once space returns.
      std::fprintf(stderr,
                   "cloudgen: generation parked (disk full) after %llu trace(s), %llu job(s); "
                   "%zu sealed segment(s) in %s — free space and rerun with --resume-gen "
                   "to complete\n",
                   static_cast<unsigned long long>(report.traces),
                   static_cast<unsigned long long>(report.jobs), sink.NumSegments(),
                   out_dir.c_str());
    } else {
      std::fprintf(stderr,
                   "cloudgen: generation interrupted (%s) after %llu trace(s), %llu job(s); "
                   "%zu sealed segment(s) in %s — rerun with --resume-gen to continue\n",
                   CancelReasonName(cancel.Reason()),
                   static_cast<unsigned long long>(report.traces),
                   static_cast<unsigned long long>(report.jobs), sink.NumSegments(),
                   out_dir.c_str());
    }
    return kExitInterrupted;
  }
  std::printf("generated %llu trace(s), %llu job(s) into %zu sealed segment(s) in %s%s\n",
              static_cast<unsigned long long>(report.traces),
              static_cast<unsigned long long>(report.jobs), sink.NumSegments(),
              out_dir.c_str(), report.resumed ? " (resumed)" : "");
  return 0;
}

int RunGenerate(const Flags& flags) {
  Trace trace;
  Trace train;
  int rc = LoadTrace(flags, &trace);
  if (rc == 0) {
    rc = TrainWindow(flags, trace, &train);
  }
  if (rc != 0) {
    return rc;
  }
  const std::string prefix = flags.GetString("model", "model");
  WorkloadModel model;
  const Status loaded = model.LoadNetworksFromFiles(prefix, train, ConfigFrom(flags));
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load %s.*.bin (run `cloudgen train` first)\n",
                 prefix.c_str());
    return Fail(kExitInput, loaded);
  }
  WorkloadModel::GenerateOptions options;
  options.from_period = flags.GetLong("from-day", 0) * kPeriodsPerDay;
  options.to_period = options.from_period + flags.GetLong("days", 1) * kPeriodsPerDay;
  options.arrival_scale = flags.GetDouble("arrival-scale", 1.0);
  options.eob_scale = flags.GetDouble("eob-scale", 1.0);
  if (!ParseGuardPolicy(flags.GetString("guard", "abort"), &options.guard)) {
    std::fprintf(stderr, "--guard must be off|abort|resample|fallback\n");
    return kExitUsage;
  }
  const long batch_window = flags.GetLong("batch-window", 256);
  if (batch_window < 0) {
    std::fprintf(stderr, "--batch-window must be >= 0\n");
    return kExitUsage;
  }
  options.batch_window = static_cast<size_t>(batch_window);
  const long gen_shards = flags.GetLong("gen-shards", 0);
  if (gen_shards < 0) {
    std::fprintf(stderr, "--gen-shards must be >= 0\n");
    return kExitUsage;
  }
  options.gen_shards = static_cast<size_t>(gen_shards);
  if (flags.Has("fidelity")) {
    // Observe-only: computes RNG-free references from the loaded networks and
    // enables the global monitor. Generated bytes are unaffected.
    model.EnableFidelityMonitor(options);
  }
  const auto seed = static_cast<uint64_t>(flags.GetLong("seed", 11));
  Rng rng(seed);
  const std::string out = flags.GetString("out", "generated.csv");
  const long num_traces = flags.GetLong("traces", 1);
  if (num_traces < 1) {
    std::fprintf(stderr, "--traces must be >= 1\n");
    return kExitUsage;
  }
  const std::string out_dir = flags.GetString("out-dir", "");
  if (!out_dir.empty()) {
    return RunGenerateSegmented(flags, model, options, rng, seed, num_traces, out_dir);
  }
  try {
    if (num_traces == 1) {
      const Trace generated = model.Generate(options, rng);
      const std::string out_flavors =
          flags.GetString("out-flavors", out + ".flavors.csv");
      const Status written = WriteTraceCsv(generated, out, out_flavors);
      if (!written.ok()) {
        return Fail(1, written);
      }
      std::printf("generated %zu jobs into %s\n", generated.NumJobs(), out.c_str());
      return 0;
    }
    // Independent traces, generated in parallel (see --threads); trace i is
    // written to OUT with ".i" spliced in before the extension.
    const std::vector<Trace> traces =
        model.GenerateMany(options, static_cast<size_t>(num_traces), rng);
    const size_t dot = out.rfind('.');
    const std::string stem = dot == std::string::npos ? out : out.substr(0, dot);
    const std::string ext = dot == std::string::npos ? "" : out.substr(dot);
    size_t total_jobs = 0;
    for (size_t i = 0; i < traces.size(); ++i) {
      const std::string path = stem + "." + std::to_string(i) + ext;
      const Status written = WriteTraceCsv(traces[i], path, path + ".flavors.csv");
      if (!written.ok()) {
        return Fail(1, written);
      }
      total_jobs += traces[i].NumJobs();
    }
    std::printf("generated %zu jobs across %zu traces into %s.N%s\n", total_jobs,
                traces.size(), stem.c_str(), ext.c_str());
    return 0;
  } catch (const GuardViolation& violation) {
    std::fprintf(stderr, "cloudgen: generation aborted by numeric guard: %s\n",
                 violation.what());
    return kExitGuard;
  }
}

// Reassembles a --out-dir run's segments into one byte stream, CRC-verifying
// each segment against the manifest. Refuses incomplete runs unless
// --allow-partial.
int RunSegcat(const Flags& flags) {
  const std::string dir = flags.GetString("dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "--dir is required\n");
    return kExitUsage;
  }
  std::string payload;
  const Status status = ConcatSegments(dir, !flags.Has("allow-partial"), &payload);
  if (!status.ok()) {
    // DATA_LOSS (empty/truncated manifest, CRC mismatch) gets its own exit
    // code so harnesses can tell "corrupt output" from "bad invocation".
    return Fail(status.code() == StatusCode::kDataLoss ? kExitCorrupt : kExitInput,
                status);
  }
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fwrite(payload.data(), 1, payload.size(), stdout);
    return 0;
  }
  const Status written = WriteFileAtomic(
      out, [&payload](std::ostream& stream) {
        stream.write(payload.data(), static_cast<std::streamsize>(payload.size()));
      });
  if (!written.ok()) {
    return Fail(1, written);
  }
  std::printf("wrote %zu byte(s) to %s\n", payload.size(), out.c_str());
  return 0;
}

// The serve daemon: loads a trained model and streams deterministically
// regenerated trace rows to TCP clients (see src/serve/server.h) until
// SIGINT/SIGTERM, then drains gracefully — stops admitting, checkpoints
// every active stream into --state-dir, and exits 0. A restarted daemon
// with the same flags resumes every stream byte-identically.
int RunServe(const Flags& flags) {
  Trace trace;
  Trace train;
  int rc = LoadTrace(flags, &trace);
  if (rc == 0) {
    rc = TrainWindow(flags, trace, &train);
  }
  if (rc != 0) {
    return rc;
  }
  const std::string prefix = flags.GetString("model", "model");
  WorkloadModel model;
  const Status loaded = model.LoadNetworksFromFiles(prefix, train, ConfigFrom(flags));
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load %s.*.bin (run `cloudgen train` first)\n",
                 prefix.c_str());
    return Fail(kExitInput, loaded);
  }

  serve::ServerOptions options;
  options.bind_addr = flags.GetString("bind", "127.0.0.1");
  options.port = static_cast<uint16_t>(flags.GetLong("port", 0));
  options.state_dir = flags.GetString("state-dir", "");
  options.io_timeout_ms =
      static_cast<int>(flags.GetDouble("io-timeout-sec", 10.0) * 1000.0);
  options.idle_timeout_ms =
      static_cast<int>(flags.GetDouble("idle-timeout-sec", 30.0) * 1000.0);
  options.stall_timeout_ms =
      static_cast<int>(flags.GetDouble("stall-timeout-sec", 10.0) * 1000.0);
  options.limits.max_streams =
      static_cast<size_t>(flags.GetLong("max-streams", 64));
  options.limits.max_streams_per_tenant =
      static_cast<size_t>(flags.GetLong("max-streams-per-tenant", 8));
  options.limits.max_total_buffer_bytes =
      static_cast<size_t>(flags.GetLong("max-buffer-mb", 256)) << 20;
  options.gen.from_period = flags.GetLong("from-day", 0) * kPeriodsPerDay;
  options.gen.to_period =
      options.gen.from_period + flags.GetLong("days", 1) * kPeriodsPerDay;
  options.gen.arrival_scale = flags.GetDouble("arrival-scale", 1.0);
  options.gen.eob_scale = flags.GetDouble("eob-scale", 1.0);
  if (!ParseGuardPolicy(flags.GetString("guard", "abort"), &options.gen.guard)) {
    std::fprintf(stderr, "--guard must be off|abort|resample|fallback\n");
    return kExitUsage;
  }
  const long serve_gen_shards = flags.GetLong("gen-shards", 0);
  if (serve_gen_shards < 0) {
    std::fprintf(stderr, "--gen-shards must be >= 0\n");
    return kExitUsage;
  }
  options.gen.gen_shards = static_cast<size_t>(serve_gen_shards);
  if (flags.Has("fidelity")) {
    model.EnableFidelityMonitor(options.gen);
  }
  if (!options.state_dir.empty() &&
      ::mkdir(options.state_dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return Fail(kExitInput,
                UnavailableError("cannot create --state-dir " + options.state_dir));
  }

  serve::StreamServer server(&model, options);
  Status status = server.Start();
  if (!status.ok()) {
    return Fail(1, status);
  }
  // Machine-readable: harnesses bind port 0 and scrape the real port here.
  std::printf("serving on %s:%u (pid %d)\n", options.bind_addr.c_str(),
              static_cast<unsigned>(server.Port()), static_cast<int>(getpid()));
  std::fflush(stdout);

  CancelToken& cancel = GlobalCancelToken();
  InstallCancelSignalHandlers();
  const double deadline_sec = flags.GetDouble("deadline-sec", 0.0);
  if (deadline_sec > 0.0) {
    cancel.SetDeadline(deadline_sec);
  }
  while (!cancel.Poll()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr,
               "cloudgen: %s received; draining %zu active stream(s)\n",
               CancelReasonName(cancel.Reason()), server.ActiveStreams());
  server.RequestDrain();
  status = server.Wait();
  if (!status.ok()) {
    return Fail(1, status);
  }
  std::printf("drained cleanly\n");
  return 0;
}

// Client for `cloudgen serve`: fetches one stream to a file with retry/
// backoff and reconnect-resume, or issues a one-shot HEALTH/METRICS verb.
int RunFetch(const Flags& flags) {
  const std::string host = flags.GetString("host", "127.0.0.1");
  const long port = flags.GetLong("port", 0);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "--port is required (1..65535)\n");
    return kExitUsage;
  }
  const int timeout_ms =
      static_cast<int>(flags.GetDouble("io-timeout-sec", 10.0) * 1000.0);

  if (flags.Has("health")) {
    std::map<std::string, std::string> health;
    const Status status = serve::FetchHealth(
        host, static_cast<uint16_t>(port), timeout_ms, &health);
    if (!status.ok()) {
      return Fail(1, status);
    }
    for (const auto& [key, value] : health) {
      std::printf("%s=%s\n", key.c_str(), value.c_str());
    }
    return 0;
  }
  if (flags.Has("metrics-json")) {
    std::string json;
    const Status status = serve::FetchMetricsJson(
        host, static_cast<uint16_t>(port), timeout_ms, &json);
    if (!status.ok()) {
      return Fail(1, status);
    }
    std::printf("%s\n", json.c_str());
    return 0;
  }
  if (flags.Has("metrics-prom")) {
    std::string text;
    const Status status = serve::FetchMetricsProm(
        host, static_cast<uint16_t>(port), timeout_ms, &text);
    if (!status.ok()) {
      return Fail(1, status);
    }
    std::fwrite(text.data(), 1, text.size(), stdout);
    return 0;
  }

  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "--out is required (fetch writes a resumable file)\n");
    return kExitUsage;
  }
  serve::FetchOptions options;
  options.host = host;
  options.port = static_cast<uint16_t>(port);
  options.tenant = flags.GetString("tenant", "default");
  options.stream = flags.GetString("stream", "stream");
  options.seed = static_cast<uint64_t>(flags.GetLong("seed", 11));
  options.traces = static_cast<uint64_t>(flags.GetLong("traces", 1));
  options.credit_bytes =
      static_cast<size_t>(flags.GetLong("credit-bytes", 256 * 1024));
  options.io_timeout_ms = timeout_ms;
  options.retry.max_attempts =
      static_cast<int>(flags.GetLong("retry-attempts", 5));
  options.retry.base_backoff_sec = flags.GetDouble("retry-base-ms", 50.0) / 1000.0;

  // --resume: pick up where an interrupted fetch left off — the existing
  // bytes are folded into the CRC state so END still verifies the whole
  // stream.
  const bool resume = flags.Has("resume") && FileExists(out);
  if (resume) {
    std::ifstream existing(out, std::ios::binary);
    std::string prefix_bytes((std::istreambuf_iterator<char>(existing)),
                             std::istreambuf_iterator<char>());
    options.start_offset = prefix_bytes.size();
    options.start_crc_state =
        Crc32Update(kCrc32Init, prefix_bytes.data(), prefix_bytes.size());
  }
  std::ofstream stream(out, resume ? std::ios::binary | std::ios::app
                                   : std::ios::binary | std::ios::trunc);
  if (!stream) {
    return Fail(kExitInput, UnavailableError("cannot open --out " + out));
  }

  CancelToken& cancel = GlobalCancelToken();
  InstallCancelSignalHandlers();
  options.cancel = &cancel;

  serve::FetchResult result;
  const Status status = serve::FetchStream(options, stream, &result);
  if (!status.ok()) {
    if (status.code() == StatusCode::kResourceExhausted) {
      return Fail(kExitRejected, status);  // Quota/overload: server said no.
    }
    if (status.code() == StatusCode::kDataLoss) {
      return Fail(kExitCorrupt, status);  // CRC/framing: data is not trustworthy.
    }
    if (cancel.Cancelled()) {
      return Fail(kExitInterrupted, status);  // Rerun with --resume to finish.
    }
    return Fail(1, status);
  }
  std::printf(
      "fetched %llu byte(s) (%llu total, %llu row(s), crc %08x) into %s%s\n",
      static_cast<unsigned long long>(result.bytes),
      static_cast<unsigned long long>(result.total_bytes),
      static_cast<unsigned long long>(result.rows),
      static_cast<unsigned>(result.crc), out.c_str(),
      result.reconnects > 0
          ? StrFormat(" (%d reconnect(s))", result.reconnects).c_str()
          : "");
  return 0;
}

// Chaos harness: an in-process serve daemon plus N concurrent fetch clients
// under a declarative fault plan, with the serve failure model's invariants
// (byte-identity vs a fault-free oracle, bounded buffering, no stuck
// streams, daemon survival) checked end to end. Exit 0 iff every invariant
// held. See src/serve/chaos.h.
int RunChaos(const Flags& flags) {
  Trace trace;
  Trace train;
  int rc = LoadTrace(flags, &trace);
  if (rc == 0) {
    rc = TrainWindow(flags, trace, &train);
  }
  if (rc != 0) {
    return rc;
  }
  const std::string prefix = flags.GetString("model", "model");
  WorkloadModel model;
  const Status loaded = model.LoadNetworksFromFiles(prefix, train, ConfigFrom(flags));
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load %s.*.bin (run `cloudgen train` first)\n",
                 prefix.c_str());
    return Fail(kExitInput, loaded);
  }

  serve::ChaosOptions options;
  options.model = &model;
  options.gen.from_period = flags.GetLong("from-day", 0) * kPeriodsPerDay;
  options.gen.to_period =
      options.gen.from_period + flags.GetLong("days", 1) * kPeriodsPerDay;
  options.gen.arrival_scale = flags.GetDouble("arrival-scale", 1.0);
  options.gen.eob_scale = flags.GetDouble("eob-scale", 1.0);
  if (!ParseGuardPolicy(flags.GetString("guard", "abort"), &options.gen.guard)) {
    std::fprintf(stderr, "--guard must be off|abort|resample|fallback\n");
    return kExitUsage;
  }
  options.clients = static_cast<int>(flags.GetLong("clients", 8));
  if (options.clients < 1) {
    std::fprintf(stderr, "--clients must be >= 1\n");
    return kExitUsage;
  }
  options.seed = static_cast<uint64_t>(flags.GetLong("seed", 77));
  options.traces = static_cast<uint64_t>(flags.GetLong("traces", 4));
  options.plan_seed = static_cast<uint64_t>(flags.GetLong(
      "fault-seed", static_cast<long>(FaultInjector::kDefaultSeed)));
  options.stall_timeout_ms =
      static_cast<int>(flags.GetDouble("stall-timeout-sec", 0.4) * 1000.0);
  options.deadline_sec = flags.GetDouble("deadline-sec", 120.0);

  const std::string plan_file = flags.GetString("fault-plan", "");
  if (!plan_file.empty()) {
    std::ifstream file(plan_file, std::ios::binary);
    if (!file) {
      return Fail(kExitInput,
                  UnavailableError("cannot open --fault-plan " + plan_file));
    }
    options.plan_spec.assign(std::istreambuf_iterator<char>(file),
                             std::istreambuf_iterator<char>());
  }

  // The ENOSPC leg of the composed scenario needs serve checkpoints, which
  // need a state dir — default one under TMPDIR when not given.
  options.state_dir = flags.GetString("state-dir", "");
  if (options.state_dir.empty()) {
    const char* tmp = ::getenv("TMPDIR");
    options.state_dir = std::string(tmp != nullptr ? tmp : "/tmp") +
                        "/cloudgen-chaos-" + std::to_string(::getpid());
  }
  if (::mkdir(options.state_dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return Fail(kExitInput,
                UnavailableError("cannot create --state-dir " + options.state_dir));
  }

  serve::ChaosReport report;
  const Status status = serve::RunChaosScenario(options, &report);
  if (!status.ok()) {
    return Fail(1, status);
  }
  std::fputs(report.Summary().c_str(), stdout);
  return report.ok() ? 0 : 1;
}

// Offline snapshot tooling: parses a `cloudgen.metrics.v1` file (written by
// --metrics-out, the rolling exporter, or the bench harness) and renders it
// as a human-readable table, or as Prometheus text exposition with --prom —
// no live registry or running daemon required.
int RunMetricsDump(const Flags& flags) {
  const std::string in = flags.GetString("in", "");
  if (in.empty()) {
    std::fprintf(stderr, "--in is required\n");
    return kExitUsage;
  }
  std::ifstream file(in, std::ios::binary);
  if (!file) {
    return Fail(kExitInput, UnavailableError("cannot open --in " + in));
  }
  std::string json((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  obs::RegistrySnapshot snapshot;
  const Status parsed = ParseMetricsSnapshot(json, &snapshot);
  if (!parsed.ok()) {
    return Fail(kExitInput, parsed);
  }
  if (flags.Has("prom")) {
    obs::WritePrometheusText(snapshot, std::cout);
    return 0;
  }
  if (!snapshot.counters.empty()) {
    std::printf("counters:\n");
    for (const auto& [name, value] : snapshot.counters) {
      std::printf("  %-44s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
  if (!snapshot.gauges.empty()) {
    std::printf("gauges:\n");
    for (const auto& [name, value] : snapshot.gauges) {
      std::printf("  %-44s %g\n", name.c_str(), value);
    }
  }
  if (!snapshot.histograms.empty()) {
    std::printf("histograms:\n");
    for (const auto& [name, histogram] : snapshot.histograms) {
      std::printf("  %-44s n=%llu mean=%g p50=%g p95=%g p99=%g\n", name.c_str(),
                  static_cast<unsigned long long>(histogram.count),
                  histogram.count > 0
                      ? histogram.sum / static_cast<double>(histogram.count)
                      : 0.0,
                  obs::HistogramQuantile(histogram, 0.5),
                  obs::HistogramQuantile(histogram, 0.95),
                  obs::HistogramQuantile(histogram, 0.99));
    }
  }
  if (!snapshot.series.empty()) {
    std::printf("series:\n");
    for (const auto& [name, points] : snapshot.series) {
      std::printf("  %-44s %zu point(s), last=%g\n", name.c_str(), points.size(),
                  points.empty() ? 0.0 : points.back().second);
    }
  }
  return 0;
}

int RunEval(const Flags& flags) {
  Trace trace;
  Trace train;
  int rc = LoadTrace(flags, &trace);
  if (rc == 0) {
    rc = TrainWindow(flags, trace, &train);
  }
  if (rc != 0) {
    return rc;
  }
  const std::string prefix = flags.GetString("model", "model");
  WorkloadModel model;
  const Status loaded = model.LoadNetworksFromFiles(prefix, train, ConfigFrom(flags));
  if (!loaded.ok()) {
    return Fail(kExitInput, loaded);
  }
  const int64_t eval_from = flags.GetLong("eval-from-day", 0) * kPeriodsPerDay;
  const int64_t eval_to =
      eval_from + flags.GetLong("eval-days", 1) * kPeriodsPerDay;
  const Trace test = ApplyObservationWindow(trace, eval_from, eval_to, eval_to);
  const auto flavor = model.FlavorModel().Evaluate(test);
  const auto lifetime = model.LifetimeModel().Evaluate(test);
  std::printf("flavor LSTM:   NLL %.3f, 1-best err %.1f%% over %zu steps\n",
              flavor.nll_flavor_only, flavor.one_best_err_flavor_only * 100.0,
              flavor.flavor_steps);
  std::printf("lifetime LSTM: BCE %.3f, 1-best err %.1f%% over %zu uncensored steps\n",
              lifetime.bce, lifetime.one_best_err * 100.0, lifetime.uncensored_steps);
  return 0;
}

int RunAnalyze(const Flags& flags) {
  Trace trace;
  const int rc = LoadTrace(flags, &trace);
  if (rc != 0) {
    return rc;
  }
  const TraceSummary summary = Summarize(trace);
  std::printf("=== trace characterization ===\n");
  std::printf("window: %.1f days (%lld periods), %zu jobs, %zu users\n",
              summary.window_days, static_cast<long long>(trace.WindowPeriods()),
              summary.num_jobs, summary.num_users);
  std::printf("arrivals: %.2f jobs/period, %.2f batches/period; %.1f%% censored\n",
              summary.mean_jobs_per_period, summary.mean_batches_per_period,
              summary.censored_fraction * 100.0);

  // Diurnal profile.
  std::vector<double> per_hour(24, 0.0);
  for (const Job& job : trace.Jobs()) {
    ++per_hour[static_cast<size_t>(DecomposePeriod(job.start_period).hour_of_day)];
  }
  const double max_hour = *std::max_element(per_hour.begin(), per_hour.end());
  std::printf("\narrivals by hour of day:\n");
  for (int h = 0; h < 24; ++h) {
    const auto bar = static_cast<size_t>(40.0 * per_hour[static_cast<size_t>(h)] /
                                         std::max(1.0, max_hour));
    std::printf("  %02d:00 %8.0f %s\n", h, per_hour[static_cast<size_t>(h)],
                std::string(bar, '#').c_str());
  }

  // Flavor mix (top 10 by count).
  const std::vector<double> flavor_counts = FlavorCounts(trace);
  std::vector<size_t> order(flavor_counts.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return flavor_counts[a] > flavor_counts[b];
  });
  std::printf("\ntop flavors:\n");
  for (size_t i = 0; i < std::min<size_t>(10, order.size()); ++i) {
    const Flavor& flavor = trace.Flavors()[order[i]];
    std::printf("  %-16s %8.0f (%4.1f%%)  %gc / %gg\n", flavor.name.c_str(),
                flavor_counts[order[i]],
                100.0 * flavor_counts[order[i]] / static_cast<double>(trace.NumJobs()),
                flavor.cpus, flavor.memory_gb);
  }

  // Batch sizes.
  const std::vector<double> batch_sizes = BatchSizeCounts(trace);
  double batches = 0.0;
  double jobs_in_batches = 0.0;
  for (size_t s = 1; s < batch_sizes.size(); ++s) {
    batches += batch_sizes[s];
    jobs_in_batches += batch_sizes[s] * static_cast<double>(s);
  }
  std::printf("\nbatches: %.0f total, mean size %.2f, max size %zu\n", batches,
              jobs_in_batches / std::max(1.0, batches), batch_sizes.size() - 1);

  // Lifetime percentiles (uncensored jobs).
  std::vector<double> lifetimes;
  for (const Job& job : trace.Jobs()) {
    if (!job.censored) {
      lifetimes.push_back(job.LifetimeSeconds() / 3600.0);
    }
  }
  if (!lifetimes.empty()) {
    std::printf("\nlifetime percentiles (hours, uncensored):\n ");
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
      std::printf(" p%.0f=%.2f", q * 100.0, Quantile(lifetimes, q));
    }
    std::printf("\n");
  }

  // Reuse behaviour.
  const std::vector<double> reuse = ReuseDistanceProportions(trace);
  std::printf("\nreuse distance: 0:%.1f%% 1:%.1f%% 2:%.1f%% 6+:%.1f%%\n",
              reuse[0] * 100.0, reuse[1] * 100.0, reuse[2] * 100.0, reuse[6] * 100.0);
  const std::vector<size_t> cache_sizes{1, 2, 4, 8};
  const std::vector<double> curve = PlacementCacheCurve(trace, cache_sizes);
  std::printf("placement-cache hit rate:");
  for (size_t s = 0; s < cache_sizes.size(); ++s) {
    std::printf(" size %zu: %.1f%%", cache_sizes[s], curve[s] * 100.0);
  }
  std::printf("\n");
  return 0;
}

int RunViz(const Flags& flags) {
  Trace trace;
  const int rc = LoadTrace(flags, &trace);
  if (rc != 0) {
    return rc;
  }
  VizOptions options;
  options.from_period = flags.GetLong("from-period", 0);
  options.to_period = options.from_period + flags.GetLong("periods", 24);
  const LifetimeBinning binning = MakePaperBinning();
  const std::string ppm = flags.GetString("ppm", "");
  if (!ppm.empty()) {
    const Status written = WritePpm(trace, binning, options, ppm);
    if (!written.ok()) {
      return Fail(1, written);
    }
    std::printf("wrote %s\n", ppm.c_str());
  } else {
    std::printf("%s", RenderAnsi(trace, binning, options).c_str());
  }
  return 0;
}

int Dispatch(const std::string& command, const Flags& flags) {
  if (command == "synth") {
    return RunSynth(flags);
  }
  if (command == "train") {
    return RunTrain(flags);
  }
  if (command == "generate") {
    return RunGenerate(flags);
  }
  if (command == "segcat") {
    return RunSegcat(flags);
  }
  if (command == "metrics-dump") {
    return RunMetricsDump(flags);
  }
  if (command == "serve") {
    return RunServe(flags);
  }
  if (command == "fetch") {
    return RunFetch(flags);
  }
  if (command == "chaos") {
    return RunChaos(flags);
  }
  if (command == "eval") {
    return RunEval(flags);
  }
  if (command == "analyze") {
    return RunAnalyze(flags);
  }
  if (command == "viz") {
    return RunViz(flags);
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return Usage();
}

// Exports telemetry requested via --metrics-out / --trace-out. Written even
// when the command failed — a snapshot of a failed run is exactly when the
// telemetry is most useful. Export failures never change the exit code.
void ExportTelemetry(const Flags& flags) {
  const std::string metrics_out = flags.GetString("metrics-out", "");
  if (!metrics_out.empty()) {
    // Fold in the live-sampled views before the final write: pool pressure
    // gauges, fidelity drift gauges (no-op when the monitor is off), and
    // histogram-derived percentile gauges.
    GlobalThreadPool().PublishGauges();
    obs::FidelityMonitor::Global().PublishDrift();
    obs::Registry::Global().UpdatePercentileGauges();
    const Status written = WriteFileAtomic(metrics_out, [](std::ostream& out) {
      obs::Registry::Global().WriteJson(out);
    });
    if (written.ok()) {
      std::fprintf(stderr, "wrote metrics snapshot to %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "warning: failed to write %s: %s\n", metrics_out.c_str(),
                   written.ToString().c_str());
    }
  }
  const std::string trace_out = flags.GetString("trace-out", "");
  if (!trace_out.empty()) {
    const Status written = WriteFileAtomic(trace_out, [](std::ostream& out) {
      obs::TraceCollector::Global().WriteChromeTrace(out);
    });
    if (written.ok()) {
      std::fprintf(stderr, "wrote %zu trace span(s) to %s\n",
                   obs::TraceCollector::Global().NumEvents(), trace_out.c_str());
    } else {
      std::fprintf(stderr, "warning: failed to write %s: %s\n", trace_out.c_str(),
                   written.ToString().c_str());
    }
  }
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  Flags flags;
  if (!flags.Parse(argc, argv, 2)) {
    return Usage();
  }
  const long threads = flags.GetLong("threads", 1);
  if (threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return kExitUsage;
  }
  // 0 = all hardware threads. Every parallel code path is deterministic in
  // the thread count, so this only changes speed, never output.
  SetGlobalThreads(static_cast<size_t>(threads));
  // Declarative fault plan from the command line — the flag twin of
  // CLOUDGEN_FAULT_PLAN (grammar in src/util/fault_plan.h). The chaos
  // subcommand owns the injector itself, so the flag is its scenario input
  // there rather than a global arm.
  const std::string fault_plan_file = flags.GetString("fault-plan", "");
  if (!fault_plan_file.empty() && command != "chaos") {
    FaultPlan plan;
    Status armed = LoadFaultPlanFile(fault_plan_file, &plan);
    if (armed.ok()) {
      armed = FaultInjector::Global().ConfigurePlan(
          plan, static_cast<uint64_t>(flags.GetLong(
                    "fault-seed", static_cast<long>(FaultInjector::kDefaultSeed))));
    }
    if (!armed.ok()) {
      return Fail(kExitInput, armed.WithContext("--fault-plan"));
    }
  }
  // Span recording stays off (one relaxed load per CG_SPAN) unless asked for.
  if (!flags.GetString("trace-out", "").empty()) {
    obs::TraceCollector::Global().SetEnabled(true);
  }
  // Rolling telemetry trail: snapshot the registry every interval alongside
  // the exit-time --metrics-out write.
  const double metrics_interval = flags.GetDouble("metrics-interval-sec", 0.0);
  std::unique_ptr<RollingMetricsExporter> exporter;
  if (metrics_interval > 0.0) {
    const std::string metrics_out = flags.GetString("metrics-out", "");
    if (metrics_out.empty()) {
      std::fprintf(stderr, "--metrics-interval-sec requires --metrics-out\n");
      return kExitUsage;
    }
    RollingMetricsExporter::Options options;
    options.base_path = metrics_out;
    options.interval_sec = metrics_interval;
    exporter = std::make_unique<RollingMetricsExporter>(options);
    exporter->Start();
  }
  const int rc = Dispatch(command, flags);
  if (exporter != nullptr) {
    exporter->Stop();
  }
  ExportTelemetry(flags);
  return rc;
}

}  // namespace
}  // namespace cloudgen

int main(int argc, char** argv) { return cloudgen::Main(argc, argv); }
