// Minimal --flag=value / --flag value command-line parsing for the cloudgen
// CLI. Unknown flags are errors; every command documents its flags in Usage().
#ifndef CLI_FLAGS_H_
#define CLI_FLAGS_H_

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace cloudgen {

class Flags {
 public:
  // Parses argv[first..argc); returns false (with a message to stderr) on
  // malformed input.
  bool Parse(int argc, char** argv, int first);

  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  std::string GetString(const std::string& name, const std::string& fallback) const;
  long GetLong(const std::string& name, long fallback) const;
  double GetDouble(const std::string& name, double fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

inline bool Flags::Parse(int argc, char** argv, int first) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return false;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "1";  // Boolean flag.
    }
  }
  return true;
}

inline std::string Flags::GetString(const std::string& name,
                                    const std::string& fallback) const {
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : fallback;
}

inline long Flags::GetLong(const std::string& name, long fallback) const {
  const auto it = values_.find(name);
  return it != values_.end() ? std::strtol(it->second.c_str(), nullptr, 10) : fallback;
}

inline double Flags::GetDouble(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it != values_.end() ? std::strtod(it->second.c_str(), nullptr) : fallback;
}

}  // namespace cloudgen

#endif  // CLI_FLAGS_H_
