#include "src/eval/forecasting.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/stats.h"

namespace cloudgen {

SeasonalNaiveForecaster::SeasonalNaiveForecaster(std::vector<double> history,
                                                 SeasonalNaiveConfig config)
    : history_(std::move(history)), config_(config) {
  CG_CHECK(config_.season > 0);
  CG_CHECK_MSG(static_cast<int64_t>(history_.size()) >= 2 * config_.season,
               "need at least two seasons of history");
  // Empirical distribution of one-season-ahead differences.
  std::vector<double> diffs;
  diffs.reserve(history_.size());
  for (size_t t = static_cast<size_t>(config_.season); t < history_.size(); ++t) {
    diffs.push_back(history_[t] - history_[t - static_cast<size_t>(config_.season)]);
  }
  const double tail = (1.0 - config_.coverage) / 2.0;
  residual_lo_ = Quantile(diffs, tail);
  residual_hi_ = Quantile(diffs, 1.0 - tail);
}

SeriesBands SeasonalNaiveForecaster::Forecast(int64_t horizon) const {
  CG_CHECK(horizon > 0);
  SeriesBands bands;
  bands.median.resize(static_cast<size_t>(horizon));
  bands.lo.resize(static_cast<size_t>(horizon));
  bands.hi.resize(static_cast<size_t>(horizon));
  const auto n = static_cast<int64_t>(history_.size());
  for (int64_t h = 0; h < horizon; ++h) {
    // Repeat the most recent season(s): index of the same phase in history.
    const int64_t seasons_ahead = h / config_.season + 1;
    int64_t src = n + h - seasons_ahead * config_.season;
    while (src >= n) {
      src -= config_.season;
    }
    CG_CHECK(src >= 0);
    const double point = history_[static_cast<size_t>(src)];
    const double spread = std::sqrt(static_cast<double>(seasons_ahead));
    bands.median[static_cast<size_t>(h)] = point;
    bands.lo[static_cast<size_t>(h)] = point + residual_lo_ * spread;
    bands.hi[static_cast<size_t>(h)] = point + residual_hi_ * spread;
  }
  return bands;
}

}  // namespace cloudgen
