#include "src/eval/workbench.h"

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "src/util/check.h"
#include "src/util/env.h"
#include "src/util/log.h"
#include "src/util/rng.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

namespace cloudgen {

const char* CloudName(CloudKind kind) {
  return kind == CloudKind::kAzureLike ? "AzureLike" : "HuaweiLike";
}

namespace {

// Fig.-8 ablation: the trained LSTM stages driven by an arrival model fit
// *without* DOH features (so its rate is the seasonal all-history average,
// blind to trend/change-points).
class NoDohLstmGenerator : public TraceGenerator {
 public:
  NoDohLstmGenerator(const WorkloadModel& model, const Trace& train) : model_(model) {
    ArrivalModelConfig config;
    config.use_doh = false;
    arrivals_.Fit(train, ArrivalGranularity::kBatches, config);
  }

  std::string Name() const override { return "LSTM_nodoh"; }

  Trace Generate(int64_t from, int64_t to, double arrival_scale, Rng& rng) const override {
    WorkloadModel::GenerateOptions options;
    options.from_period = from;
    options.to_period = to;
    options.arrival_scale = arrival_scale;
    return model_.GenerateWithArrivalModel(arrivals_, options, rng);
  }

 private:
  const WorkloadModel& model_;
  BatchArrivalModel arrivals_;
};

}  // namespace

WorkbenchOptions DefaultWorkbenchOptions() {
  WorkbenchOptions options;
  options.scale = ExperimentScale();
  options.cache_dir = GetEnvString("CLOUDGEN_CACHE_DIR", "cloudgen_cache");
  options.use_cache = GetEnvLong("CLOUDGEN_NO_CACHE", 0) == 0;
  return options;
}

namespace {

WorkloadModelConfig MakeModelConfig(double scale) {
  WorkloadModelConfig config;
  // Stage hyper-parameters (§4.2, reduced for CPU): the paper uses 2x200
  // LSTMs trained on 50x5000 minibatches on GPUs.
  config.flavor.hidden_dim = 64;
  config.flavor.num_layers = 2;
  config.flavor.seq_len = 96;
  config.flavor.batch_size = 24;
  config.flavor.epochs = scale >= 2.0 ? 12 : 20;
  config.flavor.learning_rate = 5e-3f;
  config.flavor.lr_decay = 0.93f;
  // The lifetime net gets more capacity and a longer schedule: with 47 bins
  // its per-bin repeat structure is slower to learn than the flavor task.
  config.lifetime.hidden_dim = 96;
  config.lifetime.num_layers = 2;
  config.lifetime.seq_len = 96;
  config.lifetime.batch_size = 24;
  config.lifetime.epochs = scale >= 2.0 ? 16 : 28;
  config.lifetime.learning_rate = 6e-3f;
  config.lifetime.lr_decay = 0.95f;
  return config;
}

}  // namespace

CloudWorkbench::CloudWorkbench(CloudKind kind, const WorkbenchOptions& options)
    : kind_(kind), options_(options) {
  profile_ = kind == CloudKind::kAzureLike ? AzureLikeProfile(options.scale)
                                           : HuaweiLikeProfile(options.scale);
  const uint64_t seed =
      options.seed ^ (kind == CloudKind::kAzureLike ? 0xA27E5EEDull : 0x58A3EE11ull);
  Timer timer;
  const SyntheticCloud cloud(profile_, seed);
  full_trace_ = cloud.Generate();
  const int64_t train_end = static_cast<int64_t>(profile_.train_days) * kPeriodsPerDay;
  const int64_t dev_end =
      train_end + static_cast<int64_t>(profile_.dev_days) * kPeriodsPerDay;
  // HuaweiLike uses the §3.2 protocol: test VMs are monitored for a while
  // beyond the test window and only censored at the end of that extended
  // horizon. AzureLike censors at the window end (§3.1). The ground-truth
  // trace carries true end periods (even past the window), so the extension
  // is simply a later censoring cut.
  const int64_t censor_horizon =
      kind == CloudKind::kHuaweiLike
          ? full_trace_.WindowEnd() + 4 * kPeriodsPerDay
          : full_trace_.WindowEnd();
  splits_ = SplitTrace(full_trace_, train_end, dev_end, censor_horizon);
  model_config_ = MakeModelConfig(options.scale);
  CG_LOG_INFO(StrFormat("%s: generated %zu jobs over %d days (%.1fs)", CloudName(kind),
                        full_trace_.NumJobs(), profile_.TotalDays(),
                        timer.ElapsedSeconds()));
}

std::string CloudWorkbench::CachePrefix() const {
  // The key must change whenever the generated data would: profile layout,
  // scale, or seed.
  return options_.cache_dir + "/" + profile_.name +
         StrFormat("_v4_d%d_e%zu_s%.2f_seed%llu", profile_.TotalDays(),
                   model_config_.flavor.epochs, options_.scale,
                   static_cast<unsigned long long>(options_.seed));
}

const WorkloadModel& CloudWorkbench::Model() {
  if (model_ready_) {
    return model_;
  }
  const std::string prefix = CachePrefix();
  if (options_.use_cache) {
    std::filesystem::create_directories(options_.cache_dir);
    const Status load = model_.LoadNetworksFromFiles(prefix, splits_.train, model_config_);
    if (load.ok()) {
      CG_LOG_INFO(StrFormat("%s: loaded cached model from %s.*", CloudName(kind_),
                            prefix.c_str()));
      model_ready_ = true;
      return model_;
    }
    if (load.code() != StatusCode::kNotFound) {
      CG_LOG_WARN("ignoring unusable model cache: " + load.ToString());
    }
  }
  Timer timer;
  Rng rng(options_.seed ^ 0x7124A1Full);
  const Status trained = model_.Train(splits_.train, model_config_, rng);
  if (!trained.ok()) {
    CG_LOG_ERROR("workbench training failed: " + trained.ToString());
  }
  CG_CHECK_MSG(trained.ok(), "workbench training failed");
  CG_LOG_INFO(StrFormat("%s: trained model in %.1fs", CloudName(kind_),
                        timer.ElapsedSeconds()));
  if (options_.use_cache) {
    const Status saved = model_.SaveToFiles(prefix);
    if (!saved.ok()) {
      CG_LOG_WARN("failed to write the model cache: " + saved.ToString());
    }
  }
  model_ready_ = true;
  return model_;
}

size_t CloudWorkbench::NumSampleTraces() const {
  // The paper samples 500 traces; scale that down for CPU budgets.
  const auto count = static_cast<size_t>(40.0 * options_.scale);
  return std::max<size_t>(12, count);
}

std::vector<Trace> CloudWorkbench::SampledTraces(const std::string& generator_name) {
  const std::string path = CachePrefix() + "." + generator_name + ".traces.bin";
  std::vector<Trace> traces;
  if (options_.use_cache &&
      LoadTraceCollection(path, full_trace_.Flavors(), &traces) &&
      traces.size() >= NumSampleTraces()) {
    CG_LOG_INFO(StrFormat("%s: loaded %zu cached %s traces", CloudName(kind_),
                          traces.size(), generator_name.c_str()));
    return traces;
  }
  traces.clear();

  std::unique_ptr<TraceGenerator> generator;
  if (generator_name == "LSTM") {
    generator = MakeLstm();
  } else if (generator_name == "LSTM_lastday") {
    // Ablation: pin the DOH day to the end of history instead of sampling.
    generator = std::make_unique<LstmGenerator>(Model(), DohMode::kLastDay);
  } else if (generator_name == "LSTM_nodoh") {
    // Ablation: arrival model without DOH features (Fig. 8).
    generator = std::make_unique<NoDohLstmGenerator>(Model(), splits_.train);
  } else if (generator_name == "SimpleBatch") {
    generator = MakeSimpleBatch();
  } else if (generator_name == "Naive") {
    generator = MakeNaive();
  } else {
    CG_CHECK_MSG(false, "unknown generator name");
  }

  Timer timer;
  Rng rng(options_.seed ^ std::hash<std::string>{}(generator_name));
  const size_t count = NumSampleTraces();
  traces.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    traces.push_back(generator->Generate(TestStart(), TestEnd(), 1.0, rng));
  }
  CG_LOG_INFO(StrFormat("%s: generated %zu %s traces in %.1fs", CloudName(kind_), count,
                        generator_name.c_str(), timer.ElapsedSeconds()));
  if (options_.use_cache) {
    std::filesystem::create_directories(options_.cache_dir);
    if (!SaveTraceCollection(traces, path)) {
      CG_LOG_WARN("failed to write the trace-collection cache");
    }
  }
  return traces;
}

std::unique_ptr<NaiveGenerator> CloudWorkbench::MakeNaive() const {
  return std::make_unique<NaiveGenerator>(splits_.train, MakePaperBinning());
}

std::unique_ptr<SimpleBatchGenerator> CloudWorkbench::MakeSimpleBatch() const {
  return std::make_unique<SimpleBatchGenerator>(splits_.train, MakePaperBinning());
}

std::unique_ptr<LstmGenerator> CloudWorkbench::MakeLstm() {
  return std::make_unique<LstmGenerator>(Model());
}

bool SaveTraceCollection(const std::vector<Trace>& traces, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  const uint64_t count = traces.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Trace& trace : traces) {
    const int64_t window[2] = {trace.WindowStart(), trace.WindowEnd()};
    out.write(reinterpret_cast<const char*>(window), sizeof(window));
    const uint64_t jobs = trace.NumJobs();
    out.write(reinterpret_cast<const char*>(&jobs), sizeof(jobs));
    for (const Job& job : trace.Jobs()) {
      out.write(reinterpret_cast<const char*>(&job.start_period), sizeof(job.start_period));
      out.write(reinterpret_cast<const char*>(&job.end_period), sizeof(job.end_period));
      out.write(reinterpret_cast<const char*>(&job.flavor), sizeof(job.flavor));
      out.write(reinterpret_cast<const char*>(&job.user), sizeof(job.user));
      const uint8_t censored = job.censored ? 1 : 0;
      out.write(reinterpret_cast<const char*>(&censored), sizeof(censored));
    }
  }
  return static_cast<bool>(out);
}

bool LoadTraceCollection(const std::string& path, const FlavorCatalog& flavors,
                         std::vector<Trace>* out) {
  CG_CHECK(out != nullptr);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) {
    return false;
  }
  out->clear();
  out->reserve(count);
  for (uint64_t t = 0; t < count; ++t) {
    int64_t window[2] = {0, 0};
    in.read(reinterpret_cast<char*>(window), sizeof(window));
    uint64_t jobs = 0;
    in.read(reinterpret_cast<char*>(&jobs), sizeof(jobs));
    if (!in) {
      return false;
    }
    Trace trace(flavors, window[0], window[1]);
    for (uint64_t j = 0; j < jobs; ++j) {
      Job job;
      uint8_t censored = 0;
      in.read(reinterpret_cast<char*>(&job.start_period), sizeof(job.start_period));
      in.read(reinterpret_cast<char*>(&job.end_period), sizeof(job.end_period));
      in.read(reinterpret_cast<char*>(&job.flavor), sizeof(job.flavor));
      in.read(reinterpret_cast<char*>(&job.user), sizeof(job.user));
      in.read(reinterpret_cast<char*>(&censored), sizeof(censored));
      if (!in) {
        return false;
      }
      job.censored = censored != 0;
      trace.Add(job);
    }
    out->push_back(std::move(trace));
  }
  return true;
}

}  // namespace cloudgen
