// Classical time-series forecasting baseline for capacity planning (§7,
// "Workload Forecasting"): instead of generating individual start/stop
// events, forecast the aggregate total-CPU series directly.
//
// The forecaster is seasonal-naive with empirical residual bands: the point
// forecast for a future period repeats the value one season (day or week)
// earlier in the history; the band comes from the empirical quantiles of
// seasonal differences, widened by sqrt(k) for forecasts k seasons ahead
// (a random-walk-style growth of uncertainty).
//
// This is the "simple but surprisingly strong" comparator against which the
// generative model's advantage is that it produces *full traces* (packable,
// per-flavor decomposable), not just an aggregate band.
#ifndef SRC_EVAL_FORECASTING_H_
#define SRC_EVAL_FORECASTING_H_

#include <cstdint>
#include <vector>

#include "src/eval/coverage.h"

namespace cloudgen {

struct SeasonalNaiveConfig {
  // Season length in periods (one day by default).
  int64_t season = 288;
  // Central band mass (0.9 → [5%, 95%] residual quantiles).
  double coverage = 0.9;
};

class SeasonalNaiveForecaster {
 public:
  // `history[t]` is the series value at period `history_start + t`.
  SeasonalNaiveForecaster(std::vector<double> history, SeasonalNaiveConfig config);

  // Bands for the `horizon` periods immediately following the history.
  SeriesBands Forecast(int64_t horizon) const;

 private:
  std::vector<double> history_;
  SeasonalNaiveConfig config_;
  double residual_lo_ = 0.0;  // Lower residual quantile (one season ahead).
  double residual_hi_ = 0.0;
};

}  // namespace cloudgen

#endif  // SRC_EVAL_FORECASTING_H_
