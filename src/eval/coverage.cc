#include "src/eval/coverage.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/stats.h"

namespace cloudgen {

SeriesBands ComputeBands(const std::vector<std::vector<double>>& samples, double coverage) {
  CG_CHECK(!samples.empty());
  CG_CHECK(coverage > 0.0 && coverage < 1.0);
  const size_t length = samples[0].size();
  for (const auto& series : samples) {
    CG_CHECK_MSG(series.size() == length, "sampled series lengths differ");
  }
  SeriesBands bands;
  bands.median.resize(length);
  bands.lo.resize(length);
  bands.hi.resize(length);
  const double tail = (1.0 - coverage) / 2.0;
  std::vector<double> column(samples.size());
  for (size_t p = 0; p < length; ++p) {
    for (size_t s = 0; s < samples.size(); ++s) {
      column[s] = samples[s][p];
    }
    std::sort(column.begin(), column.end());
    bands.median[p] = QuantileSorted(column, 0.5);
    bands.lo[p] = QuantileSorted(column, tail);
    bands.hi[p] = QuantileSorted(column, 1.0 - tail);
  }
  return bands;
}

double CoverageFraction(const SeriesBands& bands, const std::vector<double>& actual) {
  CG_CHECK(bands.Length() == actual.size());
  CG_CHECK(!actual.empty());
  size_t covered = 0;
  for (size_t p = 0; p < actual.size(); ++p) {
    if (actual[p] >= bands.lo[p] && actual[p] <= bands.hi[p]) {
      ++covered;
    }
  }
  return static_cast<double>(covered) / static_cast<double>(actual.size());
}

}  // namespace cloudgen
