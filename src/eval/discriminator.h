// Adversarial trace-quality evaluation (§7's GAN direction, used as a
// *metric* rather than a training signal): train an LSTM discriminator to
// distinguish windows of a real trace's token stream from windows of a
// generated trace's stream. Held-out accuracy near 50% means the generator is
// statistically indistinguishable from the real workload under this probe;
// high accuracy pinpoints generators whose sequence structure is wrong (e.g.
// Naive's missing batch runs are trivially detectable).
#ifndef SRC_EVAL_DISCRIMINATOR_H_
#define SRC_EVAL_DISCRIMINATOR_H_

#include <cstddef>

#include "src/trace/trace.h"

namespace cloudgen {

class Rng;

struct DiscriminatorConfig {
  size_t window = 64;      // Token-stream window length per classified sample.
  size_t hidden_dim = 32;
  size_t num_layers = 1;
  size_t epochs = 30;
  size_t batch_size = 16;
  float learning_rate = 8e-3f;
  double train_fraction = 0.7;  // Remaining windows are the held-out set.
};

struct DiscriminatorResult {
  double accuracy = 0.5;  // Held-out accuracy (0.5 = indistinguishable).
  size_t train_windows = 0;
  size_t test_windows = 0;
};

// Both traces must share a flavor catalog. The discriminator sees one-hot
// flavor/EOB tokens only (no temporal features), so it measures *sequence
// structure*, not rate differences.
DiscriminatorResult DiscriminateTraces(const Trace& real, const Trace& generated,
                                       const DiscriminatorConfig& config, Rng& rng);

}  // namespace cloudgen

#endif  // SRC_EVAL_DISCRIMINATOR_H_
