#include "src/eval/discriminator.h"

#include <algorithm>
#include <vector>

#include "src/core/flavor_model.h"
#include "src/nn/activations.h"
#include "src/nn/adam.h"
#include "src/nn/losses.h"
#include "src/nn/sequence_network.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace cloudgen {
namespace {

// A labeled window of token ids.
struct Window {
  std::vector<int32_t> tokens;
  float label;  // 1 = real, 0 = generated.
};

std::vector<Window> CutWindows(const Trace& trace, size_t window, float label) {
  // History days are irrelevant here (no temporal features); use 1.
  const FlavorStream stream = BuildFlavorStream(trace, 1);
  std::vector<Window> windows;
  for (size_t start = 0; start + window <= stream.tokens.size(); start += window) {
    Window w;
    w.tokens.assign(stream.tokens.begin() + static_cast<long>(start),
                    stream.tokens.begin() + static_cast<long>(start + window));
    w.label = label;
    windows.push_back(std::move(w));
  }
  return windows;
}

}  // namespace

DiscriminatorResult DiscriminateTraces(const Trace& real, const Trace& generated,
                                       const DiscriminatorConfig& config, Rng& rng) {
  CG_CHECK(real.NumFlavors() == generated.NumFlavors());
  const size_t vocab = real.NumFlavors() + 1;  // Flavors + EOB.

  std::vector<Window> windows = CutWindows(real, config.window, 1.0f);
  std::vector<Window> fake = CutWindows(generated, config.window, 0.0f);
  // Balance the classes so 50% is the uninformed baseline.
  const size_t per_class = std::min(windows.size(), fake.size());
  windows.resize(per_class);
  fake.resize(per_class);
  windows.insert(windows.end(), fake.begin(), fake.end());
  CG_CHECK_MSG(windows.size() >= 8, "too few windows to train a discriminator");
  std::shuffle(windows.begin(), windows.end(), rng);

  const auto train_count =
      static_cast<size_t>(config.train_fraction * static_cast<double>(windows.size()));
  DiscriminatorResult result;
  result.train_windows = train_count;
  result.test_windows = windows.size() - train_count;
  CG_CHECK(result.train_windows > 0 && result.test_windows > 0);

  SequenceNetworkConfig net_config;
  net_config.input_dim = vocab;
  net_config.hidden_dim = config.hidden_dim;
  net_config.num_layers = config.num_layers;
  net_config.output_dim = 1;
  SequenceNetwork network(net_config, rng);
  Adam optimizer(network.Params(), network.Grads(),
                 AdamConfig{.learning_rate = config.learning_rate, .clip_norm = 5.0f});

  // Minibatch training: per-step logistic loss against the window label (the
  // prediction sharpens as context accumulates; per-step supervision trains
  // faster than last-step-only).
  const size_t batch = std::min(config.batch_size, result.train_windows);
  std::vector<Matrix> inputs(config.window, Matrix(batch, vocab));
  std::vector<Matrix> logits;
  std::vector<Matrix> dlogits(config.window);
  Matrix targets(batch, 1);
  Matrix mask(batch, 1, 1.0f);

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (size_t begin = 0; begin + batch <= result.train_windows; begin += batch) {
      for (size_t t = 0; t < config.window; ++t) {
        inputs[t].SetZero();
        for (size_t b = 0; b < batch; ++b) {
          inputs[t](b, static_cast<size_t>(windows[begin + b].tokens[t])) = 1.0f;
        }
      }
      for (size_t b = 0; b < batch; ++b) {
        targets(b, 0) = windows[begin + b].label;
      }
      network.ZeroGrads();
      network.ForwardSequence(inputs, &logits);
      for (size_t t = 0; t < config.window; ++t) {
        MaskedBceWithLogits(logits[t], targets, mask, &dlogits[t]);
        dlogits[t].Scale(1.0f / static_cast<float>(config.window));
      }
      network.BackwardSequence(dlogits);
      optimizer.Step();
    }
  }

  // Held-out accuracy: classify each window by its final-step logit.
  size_t correct = 0;
  Matrix x(1, vocab);
  Matrix step_logits;
  for (size_t i = result.train_windows; i < windows.size(); ++i) {
    LstmState state = network.MakeState(1);
    float logit = 0.0f;
    for (size_t t = 0; t < config.window; ++t) {
      x.SetZero();
      x(0, static_cast<size_t>(windows[i].tokens[t])) = 1.0f;
      network.StepLogits(x, &state, &step_logits);
      logit = step_logits(0, 0);
    }
    const bool predicted_real = SigmoidScalar(logit) >= 0.5f;
    if (predicted_real == (windows[i].label > 0.5f)) {
      ++correct;
    }
  }
  result.accuracy = static_cast<double>(correct) / static_cast<double>(result.test_windows);
  return result;
}

}  // namespace cloudgen
