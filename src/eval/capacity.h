// Capacity-planning evaluation (§6.1, Figs. 7–8): repeatedly sample traces
// from a generator over the test window, compute the total-CPU series of each
// sample (plus the carry-over VMs that were already running at the start of
// the window, with their actual lifetimes — a constant across all models),
// and measure 90%-band coverage of the true total-CPU series.
#ifndef SRC_EVAL_CAPACITY_H_
#define SRC_EVAL_CAPACITY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/trace_generator.h"
#include "src/eval/coverage.h"
#include "src/trace/trace.h"

namespace cloudgen {

class Rng;

// Jobs from the ground-truth trace that are running at `at_period` (started
// before, end at/after), with their actual end times.
std::vector<Job> CarryOverJobs(const Trace& ground_truth, int64_t at_period);

struct CapacityEvalResult {
  SeriesBands bands;           // Total CPUs per period (median + 90% band).
  std::vector<double> actual;  // True total CPUs per period.
  double coverage = 0.0;       // Fraction of true points inside the band.
};

// `ground_truth` must span the test window with uncensored lifetimes.
CapacityEvalResult EvaluateCapacity(const TraceGenerator& generator,
                                    const Trace& ground_truth, int64_t test_start,
                                    int64_t test_end, size_t num_samples, double band,
                                    Rng& rng);

// The total-CPU series of one trace plus carry-over jobs over [from, to).
std::vector<double> TotalCpusWithCarryOver(const Trace& trace,
                                           const std::vector<Job>& carry_over,
                                           int64_t from, int64_t to);

}  // namespace cloudgen

#endif  // SRC_EVAL_CAPACITY_H_
