#include "src/eval/capacity.h"

#include "src/trace/stats.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace cloudgen {

std::vector<Job> CarryOverJobs(const Trace& ground_truth, int64_t at_period) {
  std::vector<Job> carry;
  for (const Job& job : ground_truth.Jobs()) {
    if (job.start_period < at_period && job.end_period > at_period) {
      carry.push_back(job);
    }
  }
  return carry;
}

std::vector<double> TotalCpusWithCarryOver(const Trace& trace,
                                           const std::vector<Job>& carry_over, int64_t from,
                                           int64_t to) {
  std::vector<double> totals = TotalCpusPerPeriod(trace, from, to);
  const std::vector<double> carry =
      TotalCpusPerPeriod(carry_over, trace.Flavors(), from, to);
  for (size_t p = 0; p < totals.size(); ++p) {
    totals[p] += carry[p];
  }
  return totals;
}

CapacityEvalResult EvaluateCapacity(const TraceGenerator& generator,
                                    const Trace& ground_truth, int64_t test_start,
                                    int64_t test_end, size_t num_samples, double band,
                                    Rng& rng) {
  CG_CHECK(test_end > test_start);
  CG_CHECK(num_samples >= 2);
  const std::vector<Job> carry = CarryOverJobs(ground_truth, test_start);

  std::vector<std::vector<double>> samples;
  samples.reserve(num_samples);
  for (size_t s = 0; s < num_samples; ++s) {
    const Trace sample = generator.Generate(test_start, test_end, 1.0, rng);
    samples.push_back(TotalCpusWithCarryOver(sample, carry, test_start, test_end));
  }

  CapacityEvalResult result;
  result.bands = ComputeBands(samples, band);

  // Ground truth restricted to the window, with true (uncensored) ends.
  Trace actual_window(ground_truth.Flavors(), test_start, test_end);
  for (const Job& job : ground_truth.Jobs()) {
    if (job.start_period >= test_start && job.start_period < test_end) {
      actual_window.Add(job);
    }
  }
  result.actual = TotalCpusWithCarryOver(actual_window, carry, test_start, test_end);
  result.coverage = CoverageFraction(result.bands, result.actual);
  return result;
}

}  // namespace cloudgen
