// Shared experiment context for the bench harnesses.
//
// Every bench binary needs the same expensive artifacts: the synthetic
// ground-truth traces, the windowed splits, and trained models. The workbench
// builds them deterministically and caches the trained LSTM weights and
// sampled trace collections under CLOUDGEN_CACHE_DIR (default:
// "cloudgen_cache/"), so the full bench suite trains each model exactly once.
//
// CLOUDGEN_SCALE scales dataset sizes and sample counts; 1.0 (default) is
// CPU-friendly, larger values approach paper scale.
#ifndef SRC_EVAL_WORKBENCH_H_
#define SRC_EVAL_WORKBENCH_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/generators.h"
#include "src/core/workload_model.h"
#include "src/synth/synthetic_cloud.h"
#include "src/trace/trace.h"

namespace cloudgen {

// Which simulated provider an experiment runs against.
enum class CloudKind { kAzureLike, kHuaweiLike };

const char* CloudName(CloudKind kind);

struct WorkbenchOptions {
  double scale = 1.0;           // From CLOUDGEN_SCALE by default.
  uint64_t seed = 20210426;     // Base seed (SOSP'21 submission date).
  bool use_cache = true;
  std::string cache_dir;        // From CLOUDGEN_CACHE_DIR, default "cloudgen_cache".
};
WorkbenchOptions DefaultWorkbenchOptions();

// Everything the benches need for one cloud.
class CloudWorkbench {
 public:
  CloudWorkbench(CloudKind kind, const WorkbenchOptions& options);

  CloudKind Kind() const { return kind_; }
  const SynthProfile& Profile() const { return profile_; }
  const Trace& GroundTruth() const { return full_trace_; }
  const TraceSplits& Splits() const { return splits_; }
  int64_t TestStart() const { return splits_.test.WindowStart(); }
  int64_t TestEnd() const { return splits_.test.WindowEnd(); }

  // The trained three-stage model; trains on first call (or loads the cache)
  // and memoizes.
  const WorkloadModel& Model();

  // Default number of sampled traces for the §6 experiments at this scale
  // (the paper uses 500; the default scale uses fewer).
  size_t NumSampleTraces() const;

  // Sampled trace collections per generator over the test window, cached on
  // disk. `generator_name` must be one of "LSTM", "SimpleBatch", "Naive".
  std::vector<Trace> SampledTraces(const std::string& generator_name);

  // Fresh baseline generators fit on the training split.
  std::unique_ptr<NaiveGenerator> MakeNaive() const;
  std::unique_ptr<SimpleBatchGenerator> MakeSimpleBatch() const;
  std::unique_ptr<LstmGenerator> MakeLstm();

  const WorkloadModelConfig& ModelConfig() const { return model_config_; }

 private:
  CloudKind kind_;
  WorkbenchOptions options_;
  SynthProfile profile_;
  Trace full_trace_;
  TraceSplits splits_;
  WorkloadModelConfig model_config_;
  WorkloadModel model_;
  bool model_ready_ = false;

  std::string CachePrefix() const;
};

// Binary serialization of trace collections (shared windows and catalog are
// supplied by the caller at load time).
bool SaveTraceCollection(const std::vector<Trace>& traces, const std::string& path);
bool LoadTraceCollection(const std::string& path, const FlavorCatalog& flavors,
                         std::vector<Trace>* out);

}  // namespace cloudgen

#endif  // SRC_EVAL_WORKBENCH_H_
