// Prediction-interval machinery for time-series evaluation (§5.1, §6.1): from
// repeated samples of a series, build the median and central prediction band,
// then measure the fraction of the true series covered by the band.
#ifndef SRC_EVAL_COVERAGE_H_
#define SRC_EVAL_COVERAGE_H_

#include <cstddef>
#include <vector>

namespace cloudgen {

struct SeriesBands {
  std::vector<double> median;
  std::vector<double> lo;
  std::vector<double> hi;

  size_t Length() const { return median.size(); }
};

// `samples[s]` is the s-th sampled series; all must share one length.
// `coverage` is the central mass (0.9 → [5th, 95th] percentiles per point).
SeriesBands ComputeBands(const std::vector<std::vector<double>>& samples, double coverage);

// Fraction of points of `actual` lying inside [lo, hi].
double CoverageFraction(const SeriesBands& bands, const std::vector<double>& actual);

}  // namespace cloudgen

#endif  // SRC_EVAL_COVERAGE_H_
