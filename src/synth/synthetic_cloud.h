// Ground-truth synthetic cloud workload simulator.
//
// The paper evaluates on proprietary production traces from Microsoft Azure
// and Huawei Cloud. Those traces are not available here, so this module
// builds a *simulated provider* whose generated workload exhibits the
// documented statistical structure that the paper's models exploit and that
// naive models miss:
//
//   * arrivals come in user-specific batches, with strongly inhomogeneous
//     rates (diurnal + weekly seasonality, growth trend with a plateau
//     change-point, and an AR(1) momentum term that over-disperses counts
//     relative to a plain Poisson);
//   * within a batch, jobs have highly correlated flavors (long runs of the
//     same flavor with occasional switches) and correlated lifetimes;
//   * users have individual flavor affinities and lifetime scales, so flavor
//     and lifetime sequences carry long-range structure across batches;
//   * lifetimes are heavy-tailed mixtures (minutes / hours / days / weeks),
//     flavor-dependent, with many jobs censored at any observation-window
//     end.
//
// The simulator is the "real cloud" of every experiment: models are trained
// on a windowed view of its output and evaluated against held-out windows,
// exactly as the paper trains on one provider window and tests on a later
// one.
#ifndef SRC_SYNTH_SYNTHETIC_CLOUD_H_
#define SRC_SYNTH_SYNTHETIC_CLOUD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace cloudgen {

class Rng;

struct SynthProfile {
  std::string name;

  // Catalog and population.
  int num_flavors = 16;
  int num_users = 400;
  double flavor_zipf_exponent = 1.05;  // Popularity skew of flavors.
  double user_zipf_exponent = 0.9;     // Activity skew of users.
  int user_pref_flavors = 3;           // Flavors in a user's preferred set.

  // Window layout (days).
  int train_days = 10;
  int dev_days = 2;
  int test_days = 3;

  // Batch arrival process.
  double base_batches_per_period = 6.0;
  double diurnal_strength = 0.45;   // Peak-to-trough modulation of the rate.
  double weekend_dip = 0.6;         // Rate multiplier on days 5 and 6.
  double growth_per_day = 0.0;      // Exponential growth rate of the base rate.
  int growth_plateau_day = 1 << 30; // Day at which growth levels off.
  double momentum_rho = 0.92;       // AR(1) coefficient on the log-rate.
  double momentum_sigma = 0.10;     // AR(1) innovation stddev.
  // Per-day random level effect ("every day is unique", §2.1.2): each day's
  // rate is multiplied by an i.i.d. log-normal factor with this log-sigma.
  // This is the structure that makes sampled-DOH generation outperform
  // pinning the DOH to the last day of history (Fig. 4).
  double day_effect_sigma = 0.0;

  // Batch composition.
  // Users are bursty: with this probability a batch comes from the *same*
  // user as the previous batch (re-submission storms, autoscaling groups),
  // creating the cross-batch flavor/lifetime momentum visible in Fig. 1.
  double user_burst_prob = 0.0;
  double batch_size_geometric_p = 0.45;  // Size = 1 + Geometric(p).
  double big_batch_prob = 0.02;          // Chance of a large burst batch.
  int big_batch_max = 40;
  double flavor_repeat_prob = 0.88;      // Within-batch flavor stickiness.
  double lifetime_repeat_prob = 0.75;    // Within-batch lifetime stickiness.

  // Lifetime mixture (log-normal components, medians in seconds).
  // Weights need not be normalized.
  struct LifetimeComponent {
    double weight;
    double median_seconds;
    double sigma;  // Log-space standard deviation.
  };
  std::vector<LifetimeComponent> lifetime_mixture = {
      {0.45, 15.0 * 60.0, 0.9},          // Short: ~minutes.
      {0.35, 5.0 * 3600.0, 0.8},         // Medium: ~hours.
      {0.15, 2.0 * 86400.0, 0.7},        // Long: ~days.
      {0.05, 15.0 * 86400.0, 0.6},       // Very long: weeks (mostly censored).
  };
  double user_lifetime_sigma = 0.5;   // Per-user log-scale dispersion.
  double flavor_lifetime_sigma = 0.4; // Per-flavor log-scale dispersion.

  int TotalDays() const { return train_days + dev_days + test_days; }
  int64_t TotalPeriods() const { return static_cast<int64_t>(TotalDays()) * kPeriodsPerDay; }
};

// The reduced-scale stand-ins for the two providers of §3. `scale` multiplies
// job volume (via the base arrival rate); 1.0 is the CPU-friendly default.
SynthProfile AzureLikeProfile(double scale = 1.0);
SynthProfile HuaweiLikeProfile(double scale = 1.0);

class SyntheticCloud {
 public:
  SyntheticCloud(SynthProfile profile, uint64_t seed);

  const SynthProfile& Profile() const { return profile_; }
  const FlavorCatalog& Flavors() const { return flavors_; }

  // Generates the full ground-truth trace over the profile's window with
  // *true* end periods (no censoring); callers window/censor it themselves.
  // Deterministic for a given (profile, seed).
  Trace Generate() const;

 private:
  struct User {
    double activity_weight = 1.0;
    std::vector<int32_t> preferred_flavors;
    std::vector<double> preferred_weights;
    double lifetime_log_scale = 0.0;  // Additive in log-space.
    double diurnality = 1.0;          // How strongly the user follows the sun.
  };

  SynthProfile profile_;
  uint64_t seed_;
  FlavorCatalog flavors_;
  std::vector<double> flavor_popularity_;
  std::vector<User> users_;
  std::vector<double> user_activity_cdf_;
  std::vector<double> flavor_lifetime_log_scale_;

  void BuildCatalog(Rng& rng);
  void BuildUsers(Rng& rng);
  double SampleLifetimeSeconds(const User& user, int32_t flavor, Rng& rng) const;
};

}  // namespace cloudgen

#endif  // SRC_SYNTH_SYNTHETIC_CLOUD_H_
