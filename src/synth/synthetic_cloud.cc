#include "src/synth/synthetic_cloud.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cloudgen {

SynthProfile AzureLikeProfile(double scale) {
  SynthProfile profile;
  profile.name = "azure_like";
  profile.num_flavors = 16;
  profile.num_users = 400;
  // Azure trains on ~3 weeks (20.8 d): several samples per weekday, so the
  // DOW features cannot absorb the day-level effects that DOH must capture.
  profile.train_days = 16;
  profile.dev_days = 2;
  profile.test_days = 3;
  profile.base_batches_per_period = 8.0 * scale;
  profile.diurnal_strength = 0.45;
  profile.weekend_dip = 0.65;
  profile.growth_per_day = 0.004;
  profile.growth_plateau_day = 1 << 30;
  profile.momentum_rho = 0.9;
  profile.momentum_sigma = 0.08;
  profile.day_effect_sigma = 0.35;
  profile.user_burst_prob = 0.45;
  profile.batch_size_geometric_p = 0.42;
  profile.big_batch_prob = 0.02;
  profile.big_batch_max = 40;
  profile.flavor_repeat_prob = 0.88;
  profile.lifetime_repeat_prob = 0.75;
  return profile;
}

SynthProfile HuaweiLikeProfile(double scale) {
  SynthProfile profile;
  profile.name = "huawei_like";
  profile.num_flavors = 24;
  profile.num_users = 250;
  profile.train_days = 24;
  profile.dev_days = 3;
  profile.test_days = 5;
  profile.base_batches_per_period = 1.6 * scale;
  profile.diurnal_strength = 0.5;
  profile.weekend_dip = 0.55;
  // Strong growth through most of training that levels off before the test
  // window — the churn dynamic that makes sampled-DOH essential in Fig. 8.
  profile.growth_per_day = 0.045;
  profile.growth_plateau_day = 18;
  profile.momentum_rho = 0.93;
  profile.momentum_sigma = 0.13;
  profile.day_effect_sigma = 0.12;
  profile.user_burst_prob = 0.55;
  profile.batch_size_geometric_p = 0.5;
  profile.big_batch_prob = 0.015;
  profile.big_batch_max = 30;
  profile.flavor_repeat_prob = 0.92;
  profile.lifetime_repeat_prob = 0.8;
  // Longer-lived VMs overall (Huawei VMs skew long-running, §2.3.3).
  profile.lifetime_mixture = {
      {0.35, 20.0 * 60.0, 0.9},
      {0.30, 8.0 * 3600.0, 0.8},
      {0.25, 3.0 * 86400.0, 0.7},
      {0.10, 20.0 * 86400.0, 0.6},
  };
  return profile;
}

SyntheticCloud::SyntheticCloud(SynthProfile profile, uint64_t seed)
    : profile_(std::move(profile)), seed_(seed) {
  CG_CHECK(profile_.num_flavors >= 2);
  CG_CHECK(profile_.num_users >= 1);
  CG_CHECK(!profile_.lifetime_mixture.empty());
  Rng rng(seed_ ^ 0xC10D0AB5ull);
  BuildCatalog(rng);
  BuildUsers(rng);
}

void SyntheticCloud::BuildCatalog(Rng& rng) {
  // Flavors follow typical VM menus: CPU counts in powers of two with one of
  // a few memory-per-core ratios.
  static constexpr double kCpuMenu[] = {1, 2, 4, 8, 16, 32, 64};
  static constexpr double kMemPerCore[] = {1.0, 2.0, 4.0, 8.0};
  flavors_.reserve(static_cast<size_t>(profile_.num_flavors));
  for (int32_t f = 0; f < profile_.num_flavors; ++f) {
    Flavor flavor;
    flavor.id = f;
    flavor.cpus = kCpuMenu[rng.UniformInt(static_cast<uint64_t>(std::size(kCpuMenu)))];
    const double ratio =
        kMemPerCore[rng.UniformInt(static_cast<uint64_t>(std::size(kMemPerCore)))];
    flavor.memory_gb = flavor.cpus * ratio;
    flavor.name = StrFormat("f%d.c%d.m%d", f, static_cast<int>(flavor.cpus),
                            static_cast<int>(flavor.memory_gb));
    flavors_.push_back(flavor);
  }
  flavor_popularity_.resize(flavors_.size());
  for (size_t f = 0; f < flavors_.size(); ++f) {
    flavor_popularity_[f] =
        1.0 / std::pow(static_cast<double>(f + 1), profile_.flavor_zipf_exponent);
  }
  flavor_lifetime_log_scale_.resize(flavors_.size());
  for (auto& scale : flavor_lifetime_log_scale_) {
    scale = rng.Normal(0.0, profile_.flavor_lifetime_sigma);
  }
}

void SyntheticCloud::BuildUsers(Rng& rng) {
  users_.resize(static_cast<size_t>(profile_.num_users));
  for (size_t u = 0; u < users_.size(); ++u) {
    User& user = users_[u];
    user.activity_weight =
        1.0 / std::pow(static_cast<double>(u + 1), profile_.user_zipf_exponent);
    const int num_prefs =
        1 + static_cast<int>(rng.UniformInt(static_cast<uint64_t>(profile_.user_pref_flavors)));
    for (int k = 0; k < num_prefs; ++k) {
      const auto flavor = static_cast<int32_t>(rng.Categorical(flavor_popularity_));
      user.preferred_flavors.push_back(flavor);
      user.preferred_weights.push_back(rng.Uniform(0.5, 2.0));
    }
    user.lifetime_log_scale = rng.Normal(0.0, profile_.user_lifetime_sigma);
    user.diurnality = rng.Uniform(0.4, 1.0);
  }
  std::vector<double> weights;
  weights.reserve(users_.size());
  for (const auto& user : users_) {
    weights.push_back(user.activity_weight);
  }
  user_activity_cdf_ = BuildCdf(weights);
}

double SyntheticCloud::SampleLifetimeSeconds(const User& user, int32_t flavor, Rng& rng) const {
  std::vector<double> weights;
  weights.reserve(profile_.lifetime_mixture.size());
  for (const auto& component : profile_.lifetime_mixture) {
    weights.push_back(component.weight);
  }
  const auto& component = profile_.lifetime_mixture[rng.Categorical(weights)];
  const double log_median = std::log(component.median_seconds) + user.lifetime_log_scale +
                            flavor_lifetime_log_scale_[static_cast<size_t>(flavor)];
  const double lifetime = std::exp(rng.Normal(log_median, component.sigma));
  return std::max(0.0, lifetime);
}

Trace SyntheticCloud::Generate() const {
  Rng rng(seed_);
  const int64_t periods = profile_.TotalPeriods();
  Trace trace(flavors_, 0, periods);

  // Per-day level effects (mean-one log-normal).
  std::vector<double> day_effect(static_cast<size_t>(profile_.TotalDays()), 1.0);
  if (profile_.day_effect_sigma > 0.0) {
    const double sigma = profile_.day_effect_sigma;
    for (auto& effect : day_effect) {
      effect = std::exp(rng.Normal(-0.5 * sigma * sigma, sigma));
    }
  }

  double momentum = 0.0;   // AR(1) state on the log-rate.
  long previous_user = -1;  // For bursty same-user batch sequences.
  for (int64_t p = 0; p < periods; ++p) {
    const PeriodCalendar cal = DecomposePeriod(p);

    // Rate modulation: diurnal (sinusoid peaking mid-afternoon), weekly
    // (weekend dip on days 5/6), trend with plateau, and AR(1) momentum.
    const double hour_angle =
        2.0 * M_PI * (static_cast<double>(cal.hour_of_day) - 15.0) / 24.0;
    const double diurnal = 1.0 + profile_.diurnal_strength * std::cos(hour_angle);
    const double weekly = (cal.day_of_week >= 5) ? profile_.weekend_dip : 1.0;
    const double effective_growth_days =
        std::min<double>(cal.day_index, profile_.growth_plateau_day);
    const double trend = std::exp(profile_.growth_per_day * effective_growth_days);
    momentum = profile_.momentum_rho * momentum +
               rng.Normal(0.0, profile_.momentum_sigma);
    const double rate = profile_.base_batches_per_period * diurnal * weekly * trend *
                        day_effect[static_cast<size_t>(cal.day_index)] * std::exp(momentum);

    const int64_t num_batches = rng.Poisson(rate);
    for (int64_t b = 0; b < num_batches; ++b) {
      // Pick the submitting user; strongly diurnal users are less likely to
      // submit at night.
      size_t user_idx;
      if (previous_user >= 0 && rng.Bernoulli(profile_.user_burst_prob)) {
        // Burst: the same user submits again (autoscaling, re-submission).
        user_idx = static_cast<size_t>(previous_user);
      } else {
        while (true) {
          user_idx = rng.CategoricalFromCdf(user_activity_cdf_);
          const double night_factor =
              (cal.hour_of_day < 7) ? 1.0 - 0.6 * users_[user_idx].diurnality : 1.0;
          if (rng.Bernoulli(night_factor)) {
            break;
          }
        }
      }
      previous_user = static_cast<long>(user_idx);
      const User& user = users_[user_idx];

      // Batch size: geometric body with a heavy burst tail.
      int64_t size = 1 + rng.Geometric(profile_.batch_size_geometric_p);
      if (rng.Bernoulli(profile_.big_batch_prob)) {
        size += rng.UniformInt(5, profile_.big_batch_max);
      }

      int32_t previous_flavor = -1;
      double previous_lifetime = -1.0;
      for (int64_t j = 0; j < size; ++j) {
        // Flavor: sticky within the batch, user-preferred otherwise.
        int32_t flavor;
        if (previous_flavor >= 0 && rng.Bernoulli(profile_.flavor_repeat_prob)) {
          flavor = previous_flavor;
        } else {
          flavor = user.preferred_flavors[rng.Categorical(user.preferred_weights)];
        }

        // Lifetime: sticky within the batch — half of the repeats terminate
        // *together* (autoscaling groups are deleted as a unit), the rest
        // jitter slightly; fresh mixture draw otherwise.
        double lifetime;
        if (previous_lifetime >= 0.0 && rng.Bernoulli(profile_.lifetime_repeat_prob)) {
          lifetime = rng.Bernoulli(0.5)
                         ? previous_lifetime
                         : previous_lifetime * std::exp(rng.Normal(0.0, 0.1));
        } else {
          lifetime = SampleLifetimeSeconds(user, flavor, rng);
        }

        Job job;
        job.start_period = p;
        job.end_period =
            p + static_cast<int64_t>(std::llround(lifetime / kSecondsPerPeriod));
        job.flavor = flavor;
        job.user = static_cast<int64_t>(user_idx);
        job.censored = false;
        trace.Add(job);

        previous_flavor = flavor;
        previous_lifetime = lifetime;
      }
    }
  }
  return trace;
}

}  // namespace cloudgen
