// Elastic-net-penalized weighted least squares via cyclic coordinate descent
// (the glmnet inner loop). This is the subproblem solver used by IRLS for
// penalized Poisson regression.
//
// Minimizes over beta:
//   (1/2n) * sum_i w_i (z_i - x_i . beta)^2
//     + lambda * [ l1_ratio * ||beta'||_1 + (1 - l1_ratio)/2 * ||beta'||_2^2 ]
// where beta' excludes the intercept (column 0 is always the unpenalized
// intercept in our design matrices).
#ifndef SRC_GLM_ELASTIC_NET_H_
#define SRC_GLM_ELASTIC_NET_H_

#include <cstddef>
#include <vector>

namespace cloudgen {

struct ElasticNetConfig {
  double lambda = 0.0;
  double l1_ratio = 0.5;  // 0 → ridge, 1 → lasso.
  int max_iters = 200;
  double tol = 1e-9;  // Max absolute coefficient change for convergence.
};

// Dense row-major design matrix view.
struct DesignMatrix {
  const double* data = nullptr;  // n x p row-major.
  size_t n = 0;
  size_t p = 0;

  const double* Row(size_t i) const { return data + i * p; }
};

// Solves the penalized WLS problem; `beta` (size p) is used as a warm start
// and receives the solution. `weights` (size n) must be non-negative,
// `targets` (size n) is the working response z.
//
// Strategy: the L2 part is solved *exactly* through the normal equations
// (Cholesky; p is small for all cloudgen models), which also serves as the
// warm start for the L1 refinement by cyclic coordinate descent. Plain
// coordinate descent from scratch converges far too slowly on the highly
// collinear survival-encoded DOH features.
void SolveElasticNetWls(const DesignMatrix& x, const std::vector<double>& weights,
                        const std::vector<double>& targets, const ElasticNetConfig& config,
                        std::vector<double>* beta);

// Exact ridge-penalized WLS via normal equations (column 0 unpenalized).
// Exposed for tests.
void SolveRidgeWls(const DesignMatrix& x, const std::vector<double>& weights,
                   const std::vector<double>& targets, double l2_penalty,
                   std::vector<double>* beta);

// Soft-thresholding operator S(v, t) = sign(v) * max(|v| - t, 0).
double SoftThreshold(double v, double t);

}  // namespace cloudgen

#endif  // SRC_GLM_ELASTIC_NET_H_
