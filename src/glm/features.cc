#include "src/glm/features.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace cloudgen {

PeriodCalendar DecomposePeriod(int64_t period) {
  const int64_t seconds = period * kSecondsPerPeriod;
  PeriodCalendar cal;
  cal.hour_of_day = static_cast<int>((seconds / 3600) % 24);
  cal.day_index = static_cast<long>(seconds / 86400);
  cal.day_of_week = static_cast<int>(cal.day_index % 7);
  return cal;
}

TemporalFeatureEncoder::TemporalFeatureEncoder(int history_days) : history_days_(history_days) {
  CG_CHECK(history_days >= 1);
}

void TemporalFeatureEncoder::EncodeInto(int64_t period, int doh_day, float* out) const {
  CG_CHECK(out != nullptr);
  CG_CHECK_MSG(doh_day >= 1 && doh_day <= history_days_, "DOH day out of range");
  const PeriodCalendar cal = DecomposePeriod(period);
  std::fill(out, out + Dim(), 0.0f);
  out[cal.hour_of_day] = 1.0f;
  out[24 + cal.day_of_week] = 1.0f;
  float* doh = out + 31;
  for (int d = 0; d < doh_day; ++d) {
    doh[d] = 1.0f;
  }
}

std::vector<double> TemporalFeatureEncoder::Encode(int64_t period, int doh_day) const {
  std::vector<float> buf(Dim(), 0.0f);
  EncodeInto(period, doh_day, buf.data());
  return std::vector<double>(buf.begin(), buf.end());
}

int TemporalFeatureEncoder::InWindowDohDay(int64_t period) const {
  const PeriodCalendar cal = DecomposePeriod(period);
  const int day = static_cast<int>(cal.day_index) + 1;  // 1-based.
  return std::clamp(day, 1, history_days_);
}

DohSampler::DohSampler(int history_days, double success_prob, DohMode mode)
    : history_days_(history_days), success_prob_(success_prob), mode_(mode) {
  CG_CHECK(history_days >= 1);
  CG_CHECK(success_prob > 0.0 && success_prob <= 1.0);
}

int DohSampler::Sample(Rng& rng) const {
  if (mode_ == DohMode::kLastDay) {
    return history_days_;
  }
  const auto k = rng.Geometric(success_prob_);
  return std::max<long>(1, history_days_ - static_cast<long>(k));
}

}  // namespace cloudgen
