#include "src/glm/poisson_regression.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/obs/trace_span.h"
#include "src/util/check.h"

namespace cloudgen {
namespace {

double PoissonDeviance(const std::vector<double>& counts, const std::vector<double>& mu) {
  double dev = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const double y = counts[i];
    const double m = std::max(mu[i], 1e-12);
    if (y > 0.0) {
      dev += 2.0 * (y * std::log(y / m) - (y - m));
    } else {
      dev += 2.0 * m;
    }
  }
  return dev;
}

}  // namespace

double PoissonRegression::Fit(const std::vector<std::vector<double>>& features,
                              const std::vector<double>& counts,
                              const PoissonRegressionConfig& config) {
  CG_SPAN("glm.irls_fit");
  CG_CHECK(!features.empty());
  CG_CHECK(features.size() == counts.size());
  const size_t n = features.size();
  const size_t p = features[0].size();
  CG_CHECK(p >= 1);
  for (const auto& row : features) {
    CG_CHECK_MSG(row.size() == p, "ragged feature rows");
    CG_CHECK_MSG(row[0] == 1.0, "column 0 must be the intercept constant 1");
  }
  for (double y : counts) {
    CG_CHECK_MSG(y >= 0.0, "negative count");
  }
  max_linear_pred_ = config.max_linear_pred;

  // Flatten into a dense design matrix.
  std::vector<double> flat(n * p);
  for (size_t i = 0; i < n; ++i) {
    std::copy(features[i].begin(), features[i].end(), flat.begin() + i * p);
  }
  const DesignMatrix x{flat.data(), n, p};

  // Initialize: intercept at log(mean count), other weights zero.
  weights_.assign(p, 0.0);
  double mean_count = 0.0;
  for (double y : counts) {
    mean_count += y;
  }
  mean_count /= static_cast<double>(n);
  weights_[0] = std::log(std::max(mean_count, 1e-6));

  std::vector<double> eta(n);
  std::vector<double> mu(n);
  std::vector<double> irls_weights(n);
  std::vector<double> working_response(n);

  double prev_deviance = 0.0;
  for (size_t i = 0; i < n; ++i) {
    eta[i] = LinearPredictor(features[i]);
    mu[i] = std::exp(eta[i]);
  }
  prev_deviance = PoissonDeviance(counts, mu);

  // Per-iteration deviance trajectory; appends are cold (one per IRLS step).
  obs::Series& deviance_series =
      obs::Registry::Global().GetSeries("glm.irls_deviance");
  obs::Counter& iter_counter = obs::Registry::Global().GetCounter("glm.irls_iters");
  deviance_series.Append(0.0, prev_deviance / static_cast<double>(n));

  for (int iter = 0; iter < config.max_irls_iters; ++iter) {
    // Working weights w_i = mu_i and response z_i = eta_i + (y_i - mu_i)/mu_i
    // (canonical log link).
    for (size_t i = 0; i < n; ++i) {
      const double m = std::max(mu[i], 1e-10);
      irls_weights[i] = m;
      working_response[i] = eta[i] + (counts[i] - m) / m;
    }
    SolveElasticNetWls(x, irls_weights, working_response, config.penalty, &weights_);

    for (size_t i = 0; i < n; ++i) {
      eta[i] = LinearPredictor(features[i]);
      mu[i] = std::exp(eta[i]);
    }
    const double deviance = PoissonDeviance(counts, mu);
    const double rel_change =
        std::fabs(prev_deviance - deviance) / (std::fabs(prev_deviance) + 1e-12);
    prev_deviance = deviance;
    iter_counter.Add(1);
    deviance_series.Append(static_cast<double>(iter + 1),
                           deviance / static_cast<double>(n));
    if (rel_change < config.irls_tol) {
      break;
    }
  }
  return prev_deviance / static_cast<double>(n);
}

double PoissonRegression::LinearPredictor(const std::vector<double>& x) const {
  CG_CHECK(IsFitted());
  CG_CHECK(x.size() == weights_.size());
  double eta = 0.0;
  for (size_t j = 0; j < x.size(); ++j) {
    eta += weights_[j] * x[j];
  }
  return std::clamp(eta, -max_linear_pred_, max_linear_pred_);
}

double PoissonRegression::PredictMean(const std::vector<double>& x) const {
  return std::exp(LinearPredictor(x));
}

double PoissonRegression::MeanNll(const std::vector<std::vector<double>>& features,
                                  const std::vector<double>& counts) const {
  CG_CHECK(features.size() == counts.size());
  CG_CHECK(!features.empty());
  double nll = 0.0;
  for (size_t i = 0; i < features.size(); ++i) {
    const double mu = PredictMean(features[i]);
    nll += mu - counts[i] * std::log(std::max(mu, 1e-12));
  }
  return nll / static_cast<double>(features.size());
}

}  // namespace cloudgen
