#include "src/glm/elastic_net.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace cloudgen {

double SoftThreshold(double v, double t) {
  if (v > t) {
    return v - t;
  }
  if (v < -t) {
    return v + t;
  }
  return 0.0;
}

namespace {

// In-place Cholesky solve of the symmetric positive-definite system A x = b.
// A is p x p row-major and is destroyed. Returns false if A is not SPD.
bool CholeskySolve(std::vector<double>& a, std::vector<double>& b, size_t p) {
  for (size_t j = 0; j < p; ++j) {
    double diag = a[j * p + j];
    for (size_t k = 0; k < j; ++k) {
      diag -= a[j * p + k] * a[j * p + k];
    }
    if (diag <= 0.0) {
      return false;
    }
    const double l_jj = std::sqrt(diag);
    a[j * p + j] = l_jj;
    for (size_t i = j + 1; i < p; ++i) {
      double v = a[i * p + j];
      for (size_t k = 0; k < j; ++k) {
        v -= a[i * p + k] * a[j * p + k];
      }
      a[i * p + j] = v / l_jj;
    }
  }
  // Forward substitution: L y = b.
  for (size_t i = 0; i < p; ++i) {
    double v = b[i];
    for (size_t k = 0; k < i; ++k) {
      v -= a[i * p + k] * b[k];
    }
    b[i] = v / a[i * p + i];
  }
  // Back substitution: L^T x = y.
  for (size_t i = p; i-- > 0;) {
    double v = b[i];
    for (size_t k = i + 1; k < p; ++k) {
      v -= a[k * p + i] * b[k];
    }
    b[i] = v / a[i * p + i];
  }
  return true;
}

}  // namespace

void SolveRidgeWls(const DesignMatrix& x, const std::vector<double>& weights,
                   const std::vector<double>& targets, double l2_penalty,
                   std::vector<double>* beta) {
  CG_CHECK(beta != nullptr && beta->size() == x.p);
  const size_t p = x.p;
  const double n = static_cast<double>(x.n);
  // A = X^T W X / n + l2 * I (intercept unpenalized), b = X^T W z / n.
  std::vector<double> a(p * p, 0.0);
  std::vector<double> b(p, 0.0);
  for (size_t i = 0; i < x.n; ++i) {
    const double* row = x.Row(i);
    const double w = weights[i];
    if (w == 0.0) {
      continue;
    }
    const double wz = w * targets[i];
    for (size_t j = 0; j < p; ++j) {
      const double xij = row[j];
      if (xij == 0.0) {
        continue;
      }
      b[j] += wz * xij;
      const double wx = w * xij;
      for (size_t k = j; k < p; ++k) {
        a[j * p + k] += wx * row[k];
      }
    }
  }
  for (size_t j = 0; j < p; ++j) {
    for (size_t k = j; k < p; ++k) {
      a[j * p + k] /= n;
      a[k * p + j] = a[j * p + k];
    }
    b[j] /= n;
  }
  // Penalty (plus a tiny jitter for rank safety; column 0 is the intercept).
  for (size_t j = 1; j < p; ++j) {
    a[j * p + j] += l2_penalty + 1e-10;
  }
  a[0] += 1e-12;
  std::vector<double> solution = b;
  if (CholeskySolve(a, solution, p)) {
    *beta = solution;
  }
}

void SolveElasticNetWls(const DesignMatrix& x, const std::vector<double>& weights,
                        const std::vector<double>& targets, const ElasticNetConfig& config,
                        std::vector<double>* beta) {
  CG_CHECK(beta != nullptr);
  CG_CHECK(x.data != nullptr && x.n > 0 && x.p > 0);
  CG_CHECK(weights.size() == x.n && targets.size() == x.n);
  CG_CHECK(beta->size() == x.p);

  const double n = static_cast<double>(x.n);
  const double l1_penalty = config.lambda * config.l1_ratio;
  const double l2_penalty = config.lambda * (1.0 - config.l1_ratio);

  // Exact L2 solution; with no L1 part we are done, otherwise it is the warm
  // start for coordinate descent.
  SolveRidgeWls(x, weights, targets, l2_penalty, beta);
  if (l1_penalty == 0.0) {
    return;
  }

  // Precompute per-feature weighted squared norms: a_j = (1/n) sum_i w_i x_ij^2.
  std::vector<double> feat_norm(x.p, 0.0);
  for (size_t i = 0; i < x.n; ++i) {
    const double* row = x.Row(i);
    const double w = weights[i];
    for (size_t j = 0; j < x.p; ++j) {
      feat_norm[j] += w * row[j] * row[j];
    }
  }
  for (double& v : feat_norm) {
    v /= n;
  }

  // Residuals r_i = z_i - x_i . beta (maintained incrementally).
  std::vector<double> residual(x.n);
  for (size_t i = 0; i < x.n; ++i) {
    const double* row = x.Row(i);
    double fit = 0.0;
    for (size_t j = 0; j < x.p; ++j) {
      fit += row[j] * (*beta)[j];
    }
    residual[i] = targets[i] - fit;
  }

  for (int iter = 0; iter < config.max_iters; ++iter) {
    double max_delta = 0.0;
    for (size_t j = 0; j < x.p; ++j) {
      if (feat_norm[j] == 0.0) {
        continue;  // Constant-zero feature.
      }
      const double old = (*beta)[j];
      // rho = (1/n) sum_i w_i x_ij (r_i + x_ij * beta_j).
      double rho = 0.0;
      for (size_t i = 0; i < x.n; ++i) {
        const double xij = x.Row(i)[j];
        if (xij != 0.0) {
          rho += weights[i] * xij * (residual[i] + xij * old);
        }
      }
      rho /= n;

      double updated;
      if (j == 0) {
        // Intercept is unpenalized.
        updated = rho / feat_norm[j];
      } else {
        updated = SoftThreshold(rho, l1_penalty) / (feat_norm[j] + l2_penalty);
      }
      const double delta = updated - old;
      if (delta != 0.0) {
        for (size_t i = 0; i < x.n; ++i) {
          const double xij = x.Row(i)[j];
          if (xij != 0.0) {
            residual[i] -= xij * delta;
          }
        }
        (*beta)[j] = updated;
        max_delta = std::max(max_delta, std::fabs(delta));
      }
    }
    if (max_delta < config.tol) {
      break;
    }
  }
}

}  // namespace cloudgen
