// Inhomogeneous Poisson regression (§2.1.1): the count of events in period p
// is Poisson with mean mu_p = exp(w . x_p). Fit by iteratively re-weighted
// least squares (IRLS, as in statsmodels' GLM used by the paper), with an
// elastic-net penalty applied to the working weighted-least-squares
// subproblem at every IRLS step (the glmnet algorithm for penalized GLMs).
#ifndef SRC_GLM_POISSON_REGRESSION_H_
#define SRC_GLM_POISSON_REGRESSION_H_

#include <vector>

#include "src/glm/elastic_net.h"

namespace cloudgen {

struct PoissonRegressionConfig {
  ElasticNetConfig penalty;
  int max_irls_iters = 50;
  double irls_tol = 1e-8;       // Relative deviance change for convergence.
  double max_linear_pred = 30;  // Clamp eta to avoid overflow in exp().
};

class PoissonRegression {
 public:
  PoissonRegression() = default;

  // Fits on rows of features (each of dimension p, where column 0 must be the
  // intercept's constant 1) and the observed counts. Overwrites any previous
  // fit. Returns the final mean deviance.
  double Fit(const std::vector<std::vector<double>>& features,
             const std::vector<double>& counts, const PoissonRegressionConfig& config);

  bool IsFitted() const { return !weights_.empty(); }
  const std::vector<double>& Weights() const { return weights_; }

  // Linear predictor eta = w . x (clamped) and mean mu = exp(eta).
  double LinearPredictor(const std::vector<double>& x) const;
  double PredictMean(const std::vector<double>& x) const;

  // Mean Poisson negative-log-likelihood (up to the data-only lgamma term,
  // matching the paper's loss: sum_p mu_p - y_p log mu_p, averaged).
  double MeanNll(const std::vector<std::vector<double>>& features,
                 const std::vector<double>& counts) const;

 private:
  std::vector<double> weights_;
  double max_linear_pred_ = 30.0;
};

}  // namespace cloudgen

#endif  // SRC_GLM_POISSON_REGRESSION_H_
