// Temporal feature encoding (§2.1.2 of the paper).
//
// Every model stage conditions on coarse-granularity temporal information
// about the 5-minute period being generated:
//   * hour-of-day   (1..24)  — one-hot, captures diurnal seasonality
//   * day-of-week   (1..7)   — one-hot, captures weekly seasonality
//   * day-of-history(1..N)   — survival-encoded, captures trend/change-points
//
// A survival-encoding of n-of-N sets elements 1..n to 1 and the rest to 0, so
// the learned weight of day d acts as the *increment* to the log-rate that
// took effect on day d and persists afterwards.
//
// For periods beyond the training window, the DOH day is either pinned to the
// last day of history or sampled k-days-back with k ~ Geometric(p) (§2.1.2);
// sampling mitigates workload churn by letting generated futures resemble a
// random recent past day.
#ifndef SRC_GLM_FEATURES_H_
#define SRC_GLM_FEATURES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cloudgen {

class Rng;

inline constexpr int64_t kSecondsPerPeriod = 300;  // 5-minute periods.
inline constexpr int64_t kPeriodsPerHour = 12;
inline constexpr int64_t kPeriodsPerDay = 288;

// Calendar decomposition of a period index (period 0 = epoch 0).
struct PeriodCalendar {
  int hour_of_day;  // 0..23
  int day_of_week;  // 0..6
  long day_index;   // 0-based day since the start of the trace clock
};
PeriodCalendar DecomposePeriod(int64_t period);

// Modes for choosing the DOH day when encoding periods beyond history.
enum class DohMode {
  kLastDay,         // Always encode day N.
  kGeometricSample, // Sample N - k, k ~ Geometric(p).
};

class TemporalFeatureEncoder {
 public:
  // `history_days` is N, the number of days covered by the training window.
  explicit TemporalFeatureEncoder(int history_days);

  int HistoryDays() const { return history_days_; }
  // 24 (HOD) + 7 (DOW) + N (DOH survival).
  size_t Dim() const { return 24 + 7 + static_cast<size_t>(history_days_); }

  // Encodes a period using an explicit DOH day in [1, N]. Appends to `out`
  // starting at `offset`; `out` must already have Dim() writable slots there.
  void EncodeInto(int64_t period, int doh_day, float* out) const;
  std::vector<double> Encode(int64_t period, int doh_day) const;

  // DOH day for a period *within* the training window (clamped to [1, N]).
  int InWindowDohDay(int64_t period) const;

 private:
  int history_days_;
};

// Samples DOH days for future periods: day = max(1, N - k), k ~ Geometric(p).
class DohSampler {
 public:
  // `success_prob` is the geometric parameter; the paper uses 1/7 so the
  // expected sampled day is one week before the end of history.
  DohSampler(int history_days, double success_prob, DohMode mode);

  int Sample(Rng& rng) const;
  DohMode Mode() const { return mode_; }

 private:
  int history_days_;
  double success_prob_;
  DohMode mode_;
};

}  // namespace cloudgen

#endif  // SRC_GLM_FEATURES_H_
