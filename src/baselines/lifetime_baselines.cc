#include "src/baselines/lifetime_baselines.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/survival/hazard.h"
#include "src/util/check.h"

namespace cloudgen {
namespace {

constexpr double kHazardClamp = 1e-6;

double ClampedLog(double p) { return std::log(std::clamp(p, kHazardClamp, 1.0)); }

}  // namespace

std::vector<LifetimeObservation> ObservationsFrom(const Trace& trace) {
  std::vector<LifetimeObservation> observations;
  observations.reserve(trace.NumJobs());
  for (const Job& job : trace.Jobs()) {
    observations.push_back(LifetimeObservation{job.LifetimeSeconds(), job.censored});
  }
  return observations;
}

size_t LifetimeBaseline::PredictBin(const LifetimeStream& stream, size_t i) const {
  return ArgmaxBinFromHazard(HazardAt(stream, i));
}

CoinFlipBaseline::CoinFlipBaseline(size_t num_bins) : hazard_(num_bins, 0.5) {
  CG_CHECK(num_bins >= 1);
  hazard_.back() = 1.0;
}

std::vector<double> CoinFlipBaseline::HazardAt(const LifetimeStream& /*stream*/,
                                               size_t /*i*/) const {
  return hazard_;
}

OverallKmBaseline::OverallKmBaseline(const Trace& train, const LifetimeBinning& binning,
                                     CensoringPolicy policy) {
  const KaplanMeier km(ObservationsFrom(train), binning, policy);
  hazard_ = km.Hazard();
}

std::vector<double> OverallKmBaseline::HazardAt(const LifetimeStream& /*stream*/,
                                                size_t /*i*/) const {
  return hazard_;
}

PerFlavorKmBaseline::PerFlavorKmBaseline(const Trace& train, const LifetimeBinning& binning,
                                         CensoringPolicy policy) {
  std::vector<int32_t> groups;
  groups.reserve(train.NumJobs());
  for (const Job& job : train.Jobs()) {
    groups.push_back(job.flavor);
  }
  km_ = std::make_unique<GroupedKaplanMeier>(ObservationsFrom(train), groups, binning,
                                             policy);
}

std::vector<double> PerFlavorKmBaseline::HazardAt(const LifetimeStream& stream,
                                                  size_t i) const {
  return km_->HazardFor(stream.steps[i].flavor);
}

const std::vector<double>& PerFlavorKmBaseline::HazardFor(int32_t flavor) const {
  return km_->HazardFor(flavor);
}

RepeatLifetimeBaseline::RepeatLifetimeBaseline(const Trace& train,
                                               const LifetimeBinning& binning)
    : fallback_(train, binning), fallback_bin_(ArgmaxBinFromHazard(fallback_.Hazard())) {}

std::vector<double> RepeatLifetimeBaseline::HazardAt(const LifetimeStream& stream,
                                                     size_t i) const {
  // Point mass on the prediction (not used for BCE: N/A).
  std::vector<double> hazard(fallback_.Hazard().size(), 0.0);
  hazard[PredictBin(stream, i)] = 1.0;
  hazard.back() = 1.0;
  return hazard;
}

size_t RepeatLifetimeBaseline::PredictBin(const LifetimeStream& stream, size_t i) const {
  const LifetimeStep& step = stream.steps[i];
  if (step.first_in_batch || i == 0) {
    return fallback_bin_;
  }
  return stream.steps[i - 1].bin;
}

LifetimeBaselineEval EvaluateLifetimeBaseline(const LifetimeBaseline& baseline,
                                              const LifetimeStream& stream) {
  LifetimeBaselineEval result;
  double bce_sum = 0.0;
  size_t bce_terms = 0;
  size_t errors = 0;
  for (size_t i = 0; i < stream.steps.size(); ++i) {
    const LifetimeStep& step = stream.steps[i];
    if (baseline.IsProbabilistic()) {
      const std::vector<double> hazard = baseline.HazardAt(stream, i);
      CG_CHECK(step.bin < hazard.size());
      for (size_t j = 0; j < step.bin; ++j) {
        bce_sum += -ClampedLog(1.0 - hazard[j]);
        ++bce_terms;
      }
      if (!step.censored) {
        bce_sum += -ClampedLog(hazard[step.bin]);
        ++bce_terms;
      }
    }
    if (!step.censored) {
      if (baseline.PredictBin(stream, i) != step.bin) {
        ++errors;
      }
      ++result.uncensored_steps;
    }
  }
  result.steps = stream.steps.size();
  result.bce = baseline.IsProbabilistic() && bce_terms > 0
                   ? bce_sum / static_cast<double>(bce_terms)
                   : std::numeric_limits<double>::quiet_NaN();
  result.one_best_err =
      result.uncensored_steps > 0
          ? static_cast<double>(errors) / static_cast<double>(result.uncensored_steps)
          : 0.0;
  return result;
}

}  // namespace cloudgen
