#include "src/baselines/generators.h"

#include <cmath>

#include "src/survival/hazard.h"
#include "src/trace/stats.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace cloudgen {
namespace {

std::vector<double> FlavorCdfFrom(const Trace& train) {
  std::vector<double> counts = FlavorCounts(train);
  for (double& c : counts) {
    c += 1.0;  // Smoothing, mirroring the multinomial baseline.
  }
  return BuildCdf(counts);
}

int64_t PeriodsFromDuration(double seconds) {
  return static_cast<int64_t>(std::llround(seconds / kSecondsPerPeriod));
}

}  // namespace

NaiveGenerator::NaiveGenerator(const Trace& train, const LifetimeBinning& binning)
    : flavors_(train.Flavors()),
      flavor_cdf_(FlavorCdfFrom(train)),
      lifetime_km_(std::make_unique<PerFlavorKmBaseline>(train, binning)),
      binning_(binning) {
  ArrivalModelConfig config;
  config.use_doh = false;  // §5.1: the individual-job model has no DOH.
  job_arrivals_.Fit(train, ArrivalGranularity::kJobs, config);
}

Trace NaiveGenerator::Generate(int64_t from, int64_t to, double arrival_scale,
                               Rng& rng) const {
  CG_CHECK(to > from);
  Trace trace(flavors_, from, to);
  int64_t next_user = 0;
  for (int64_t period = from; period < to; ++period) {
    const double rate = job_arrivals_.Rate(period, 1) * arrival_scale;
    const int64_t n_jobs = rng.Poisson(rate);
    for (int64_t j = 0; j < n_jobs; ++j) {
      const auto flavor = static_cast<int32_t>(rng.CategoricalFromCdf(flavor_cdf_));
      const size_t bin = SampleBinFromHazard(lifetime_km_->HazardFor(flavor), rng);
      const double duration = SampleDurationInBin(binning_, bin, Interpolation::kCdi, rng);
      Job job;
      job.start_period = period;
      job.end_period = period + PeriodsFromDuration(duration);
      job.flavor = flavor;
      job.user = next_user++;  // Every job independent: one job per "batch".
      trace.Add(job);
    }
  }
  return trace;
}

SimpleBatchGenerator::SimpleBatchGenerator(const Trace& train, const LifetimeBinning& binning)
    : flavors_(train.Flavors()),
      flavor_cdf_(FlavorCdfFrom(train)),
      lifetime_km_(std::make_unique<PerFlavorKmBaseline>(train, binning)),
      binning_(binning) {
  ArrivalModelConfig config;
  batch_arrivals_.Fit(train, ArrivalGranularity::kBatches, config);
  std::vector<double> size_counts = BatchSizeCounts(train);
  CG_CHECK_MSG(size_counts.size() >= 2, "training trace has no batches");
  size_counts[0] = 0.0;  // Size-0 batches do not exist.
  batch_size_cdf_ = BuildCdf(size_counts);
}

Trace SimpleBatchGenerator::Generate(int64_t from, int64_t to, double arrival_scale,
                                     Rng& rng) const {
  CG_CHECK(to > from);
  Trace trace(flavors_, from, to);
  const int doh_day = batch_arrivals_.SampleDohDay(rng, DohMode::kGeometricSample);
  int64_t next_user = 0;
  for (int64_t period = from; period < to; ++period) {
    const double rate = batch_arrivals_.Rate(period, doh_day) * arrival_scale;
    const int64_t n_batches = rng.Poisson(rate);
    for (int64_t b = 0; b < n_batches; ++b) {
      const size_t size = rng.CategoricalFromCdf(batch_size_cdf_);
      const auto flavor = static_cast<int32_t>(rng.CategoricalFromCdf(flavor_cdf_));
      const size_t bin = SampleBinFromHazard(lifetime_km_->HazardFor(flavor), rng);
      const double duration = SampleDurationInBin(binning_, bin, Interpolation::kCdi, rng);
      const int64_t user = next_user++;
      for (size_t j = 0; j < size; ++j) {
        Job job;
        job.start_period = period;
        job.end_period = period + PeriodsFromDuration(duration);
        job.flavor = flavor;
        job.user = user;
        trace.Add(job);
      }
    }
  }
  return trace;
}

LstmGenerator::LstmGenerator(const WorkloadModel& model, DohMode doh_mode)
    : model_(model), doh_mode_(doh_mode) {
  CG_CHECK_MSG(model.IsTrained(), "LstmGenerator requires a trained WorkloadModel");
}

Trace LstmGenerator::Generate(int64_t from, int64_t to, double arrival_scale,
                              Rng& rng) const {
  WorkloadModel::GenerateOptions options;
  options.from_period = from;
  options.to_period = to;
  options.doh_mode = doh_mode_;
  options.arrival_scale = arrival_scale;
  return model_.Generate(options, rng);
}

}  // namespace cloudgen
