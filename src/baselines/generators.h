// End-to-end generation baselines of §6 and the LSTM adapter.
//
// Naive — the traditional practitioner model, ignoring all inter-job
// correlations: (1) per-period VM counts from a Poisson regression fit on raw
// job arrivals (no DOH), (2) i.i.d. flavors from the training multinomial,
// (3) i.i.d. lifetimes from the per-flavor Kaplan-Meier.
//
// SimpleBatch — a batch-aware but RNN-free baseline: (1) per-period batch
// counts from the paper's Poisson regression (sampled DOH), (2) batch size
// from the empirical training distribution, (3) one flavor per batch from the
// multinomial, (4) one lifetime per batch from the per-flavor KM, shared by
// every VM of the batch.
#ifndef SRC_BASELINES_GENERATORS_H_
#define SRC_BASELINES_GENERATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/flavor_baselines.h"
#include "src/baselines/lifetime_baselines.h"
#include "src/core/arrival_model.h"
#include "src/core/trace_generator.h"
#include "src/core/workload_model.h"
#include "src/survival/interpolation.h"

namespace cloudgen {

class NaiveGenerator : public TraceGenerator {
 public:
  NaiveGenerator(const Trace& train, const LifetimeBinning& binning);

  std::string Name() const override { return "Naive"; }
  Trace Generate(int64_t from, int64_t to, double arrival_scale, Rng& rng) const override;

 private:
  FlavorCatalog flavors_;
  BatchArrivalModel job_arrivals_;  // Fit on raw job counts, no DOH.
  std::vector<double> flavor_cdf_;
  std::unique_ptr<PerFlavorKmBaseline> lifetime_km_;
  LifetimeBinning binning_;
};

class SimpleBatchGenerator : public TraceGenerator {
 public:
  SimpleBatchGenerator(const Trace& train, const LifetimeBinning& binning);

  std::string Name() const override { return "SimpleBatch"; }
  Trace Generate(int64_t from, int64_t to, double arrival_scale, Rng& rng) const override;

 private:
  FlavorCatalog flavors_;
  BatchArrivalModel batch_arrivals_;  // The paper's batch model (with DOH).
  std::vector<double> batch_size_cdf_;  // Index s = batches of size s.
  std::vector<double> flavor_cdf_;
  std::unique_ptr<PerFlavorKmBaseline> lifetime_km_;
  LifetimeBinning binning_;
};

// Adapts the trained WorkloadModel to the TraceGenerator interface.
class LstmGenerator : public TraceGenerator {
 public:
  // `model` must outlive the adapter and be trained.
  explicit LstmGenerator(const WorkloadModel& model,
                         DohMode doh_mode = DohMode::kGeometricSample);

  std::string Name() const override { return "LSTM"; }
  Trace Generate(int64_t from, int64_t to, double arrival_scale, Rng& rng) const override;

 private:
  const WorkloadModel& model_;
  DohMode doh_mode_;
};

}  // namespace cloudgen

#endif  // SRC_BASELINES_GENERATORS_H_
