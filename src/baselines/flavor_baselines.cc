#include "src/baselines/flavor_baselines.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/trace/stats.h"
#include "src/util/check.h"

namespace cloudgen {

UniformFlavorBaseline::UniformFlavorBaseline(size_t num_flavors) : num_flavors_(num_flavors) {
  CG_CHECK(num_flavors >= 1);
}

std::vector<double> UniformFlavorBaseline::NextProbs(int32_t /*prev_token*/) const {
  return std::vector<double>(num_flavors_, 1.0 / static_cast<double>(num_flavors_));
}

int32_t UniformFlavorBaseline::Predict(int32_t /*prev_token*/) const { return 0; }

MultinomialFlavorBaseline::MultinomialFlavorBaseline(const Trace& train) {
  std::vector<double> counts = FlavorCounts(train);
  CG_CHECK(!counts.empty());
  // Laplace smoothing so unseen flavors keep finite NLL.
  double total = 0.0;
  for (double& c : counts) {
    c += 1.0;
    total += c;
  }
  probs_.resize(counts.size());
  for (size_t f = 0; f < counts.size(); ++f) {
    probs_[f] = counts[f] / total;
  }
  most_frequent_ = static_cast<int32_t>(
      std::max_element(probs_.begin(), probs_.end()) - probs_.begin());
}

std::vector<double> MultinomialFlavorBaseline::NextProbs(int32_t /*prev_token*/) const {
  return probs_;
}

int32_t MultinomialFlavorBaseline::Predict(int32_t /*prev_token*/) const {
  return most_frequent_;
}

RepeatFlavorBaseline::RepeatFlavorBaseline(const Trace& train, int32_t eob_token)
    : fallback_(train), eob_token_(eob_token) {}

std::vector<double> RepeatFlavorBaseline::NextProbs(int32_t prev_token) const {
  // Not used in Table 2 (N/A), but defined for completeness: a point mass on
  // the prediction.
  std::vector<double> probs(fallback_.Probs().size(), 0.0);
  probs[static_cast<size_t>(Predict(prev_token))] = 1.0;
  return probs;
}

int32_t RepeatFlavorBaseline::Predict(int32_t prev_token) const {
  if (prev_token == eob_token_) {
    return fallback_.Predict(prev_token);
  }
  return prev_token;
}

FlavorBaselineEval EvaluateFlavorBaseline(const FlavorBaseline& baseline,
                                          const FlavorStream& stream, size_t num_flavors) {
  FlavorBaselineEval result;
  const auto eob = static_cast<int32_t>(num_flavors);
  double nll = 0.0;
  size_t errors = 0;
  size_t steps = 0;
  for (size_t i = 0; i < stream.tokens.size(); ++i) {
    const int32_t target = stream.tokens[i];
    if (target == eob) {
      continue;  // Flavor steps only; EOB is context.
    }
    const int32_t prev = i == 0 ? eob : stream.tokens[i - 1];
    if (baseline.IsProbabilistic()) {
      const std::vector<double> probs = baseline.NextProbs(prev);
      CG_CHECK(static_cast<size_t>(target) < probs.size());
      nll -= std::log(std::max(probs[static_cast<size_t>(target)], 1e-12));
    }
    if (baseline.Predict(prev) != target) {
      ++errors;
    }
    ++steps;
  }
  result.steps = steps;
  if (steps > 0) {
    result.nll = baseline.IsProbabilistic() ? nll / static_cast<double>(steps)
                                            : std::numeric_limits<double>::quiet_NaN();
    result.one_best_err = static_cast<double>(errors) / static_cast<double>(steps);
  }
  return result;
}

}  // namespace cloudgen
