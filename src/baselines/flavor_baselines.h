// Flavor-sequence baselines of Table 2 (§5.2).
//
// All baselines predict over the K flavors given the previous token (which
// may be EOB). Evaluation is shared with the LSTM: next-step NLL and 1-best
// classification error over the flavor steps of a test stream.
#ifndef SRC_BASELINES_FLAVOR_BASELINES_H_
#define SRC_BASELINES_FLAVOR_BASELINES_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/flavor_model.h"
#include "src/trace/trace.h"

namespace cloudgen {

class FlavorBaseline {
 public:
  virtual ~FlavorBaseline() = default;

  virtual std::string Name() const = 0;
  // False for heuristics (RepeatFlav) whose NLL is undefined ("N/A").
  virtual bool IsProbabilistic() const { return true; }
  // Probability over the K flavors for the next step. Only called when
  // IsProbabilistic().
  virtual std::vector<double> NextProbs(int32_t prev_token) const = 0;
  // 1-best prediction of the next flavor.
  virtual int32_t Predict(int32_t prev_token) const = 0;
};

// Each flavor equally likely.
class UniformFlavorBaseline : public FlavorBaseline {
 public:
  explicit UniformFlavorBaseline(size_t num_flavors);
  std::string Name() const override { return "Uniform"; }
  std::vector<double> NextProbs(int32_t prev_token) const override;
  int32_t Predict(int32_t prev_token) const override;

 private:
  size_t num_flavors_;
};

// Empirical training-frequency of each flavor (the traditional
// independent-arrival model).
class MultinomialFlavorBaseline : public FlavorBaseline {
 public:
  explicit MultinomialFlavorBaseline(const Trace& train);
  std::string Name() const override { return "Multinomial"; }
  std::vector<double> NextProbs(int32_t prev_token) const override;
  int32_t Predict(int32_t prev_token) const override;

  const std::vector<double>& Probs() const { return probs_; }

 private:
  std::vector<double> probs_;
  int32_t most_frequent_;
};

// Predicts a repeat of the previous flavor; falls back to the multinomial
// mode after an EOB.
class RepeatFlavorBaseline : public FlavorBaseline {
 public:
  RepeatFlavorBaseline(const Trace& train, int32_t eob_token);
  std::string Name() const override { return "RepeatFlav"; }
  bool IsProbabilistic() const override { return false; }
  std::vector<double> NextProbs(int32_t prev_token) const override;
  int32_t Predict(int32_t prev_token) const override;

 private:
  MultinomialFlavorBaseline fallback_;
  int32_t eob_token_;
};

// Shared Table-2 evaluation: metrics are aggregated over the *flavor* steps
// of `stream` (EOB targets are context only, exactly as for the LSTM).
struct FlavorBaselineEval {
  double nll = 0.0;  // NaN when not probabilistic.
  double one_best_err = 0.0;
  size_t steps = 0;
};
FlavorBaselineEval EvaluateFlavorBaseline(const FlavorBaseline& baseline,
                                          const FlavorStream& stream, size_t num_flavors);

}  // namespace cloudgen

#endif  // SRC_BASELINES_FLAVOR_BASELINES_H_
