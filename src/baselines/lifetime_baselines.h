// Lifetime-prediction baselines of Table 3 (§5.3).
//
// Each baseline produces a discrete hazard over the lifetime bins for every
// job step; evaluation (masked BCE + 1-best error on uncensored steps) is
// shared with the lifetime LSTM.
#ifndef SRC_BASELINES_LIFETIME_BASELINES_H_
#define SRC_BASELINES_LIFETIME_BASELINES_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/core/lifetime_model.h"
#include "src/survival/binning.h"
#include "src/survival/kaplan_meier.h"
#include "src/trace/trace.h"

namespace cloudgen {

class LifetimeBaseline {
 public:
  virtual ~LifetimeBaseline() = default;

  virtual std::string Name() const = 0;
  virtual bool IsProbabilistic() const { return true; }

  // Hazard for step `i` of the stream, which may depend on earlier steps
  // (RepeatLifetime) but never on step i's own outcome.
  virtual std::vector<double> HazardAt(const LifetimeStream& stream, size_t i) const = 0;

  // 1-best bin prediction; defaults to the PMF argmax of HazardAt.
  virtual size_t PredictBin(const LifetimeStream& stream, size_t i) const;
};

// Hazard 0.5 in every bin.
class CoinFlipBaseline : public LifetimeBaseline {
 public:
  explicit CoinFlipBaseline(size_t num_bins);
  std::string Name() const override { return "CoinFlip"; }
  std::vector<double> HazardAt(const LifetimeStream& stream, size_t i) const override;

 private:
  std::vector<double> hazard_;
};

// Pooled Kaplan-Meier hazard (all flavors together).
class OverallKmBaseline : public LifetimeBaseline {
 public:
  OverallKmBaseline(const Trace& train, const LifetimeBinning& binning,
                    CensoringPolicy policy = CensoringPolicy::kCensoringAware);
  std::string Name() const override { return "Overall KM"; }
  std::vector<double> HazardAt(const LifetimeStream& stream, size_t i) const override;
  const std::vector<double>& Hazard() const { return hazard_; }

 private:
  std::vector<double> hazard_;
};

// Per-flavor Kaplan-Meier with pooled fallback.
class PerFlavorKmBaseline : public LifetimeBaseline {
 public:
  PerFlavorKmBaseline(const Trace& train, const LifetimeBinning& binning,
                      CensoringPolicy policy = CensoringPolicy::kCensoringAware);
  std::string Name() const override { return "Per-flavor KM"; }
  std::vector<double> HazardAt(const LifetimeStream& stream, size_t i) const override;
  const std::vector<double>& HazardFor(int32_t flavor) const;

 private:
  std::unique_ptr<GroupedKaplanMeier> km_;
};

// Predicts the previous job's (observed) bin; falls back to the overall-KM
// argmax for the first job of each batch. 1-best only (NLL/BCE is N/A).
class RepeatLifetimeBaseline : public LifetimeBaseline {
 public:
  RepeatLifetimeBaseline(const Trace& train, const LifetimeBinning& binning);
  std::string Name() const override { return "RepeatLifetime"; }
  bool IsProbabilistic() const override { return false; }
  std::vector<double> HazardAt(const LifetimeStream& stream, size_t i) const override;
  size_t PredictBin(const LifetimeStream& stream, size_t i) const override;

 private:
  OverallKmBaseline fallback_;
  size_t fallback_bin_;
};

// Shared Table-3 evaluation over a lifetime stream.
struct LifetimeBaselineEval {
  double bce = 0.0;  // NaN when not probabilistic.
  double one_best_err = 0.0;
  size_t steps = 0;
  size_t uncensored_steps = 0;
};
LifetimeBaselineEval EvaluateLifetimeBaseline(const LifetimeBaseline& baseline,
                                              const LifetimeStream& stream);

// Extracts (lifetime, censored) observations from a trace for KM fitting.
std::vector<LifetimeObservation> ObservationsFrom(const Trace& trace);

}  // namespace cloudgen

#endif  // SRC_BASELINES_LIFETIME_BASELINES_H_
