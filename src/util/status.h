// Structured error propagation for cloudgen's fallible seams (I/O, parsing,
// model persistence, training recovery).
//
// Conventions (see docs/ARCHITECTURE.md, "Error handling & recovery"):
//  * CG_CHECK guards programmer errors and internal invariants — conditions
//    that can only be false because of a bug. It aborts.
//  * Status/StatusOr report *environmental* failures — malformed input files,
//    missing models, injected faults, diverged training — that a caller can
//    handle. Errors carry a code, a message, and a context chain that grows
//    as the error propagates (each CG_RETURN_IF_ERROR appends its file:line),
//    so the CLI can print the full path the error took.
#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/util/check.h"

namespace cloudgen {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   // Malformed input (bad CSV cell, bad flag value).
  kNotFound = 2,          // Missing file / model / checkpoint.
  kDataLoss = 3,          // Truncated or corrupt data (CRC mismatch, short read).
  kFailedPrecondition = 4,  // Valid request against the wrong state.
  kUnavailable = 5,       // Transient I/O failure (includes injected faults).
  kAborted = 6,           // Gave up after retries (e.g. divergence watchdog).
  kInternal = 7,          // Should-not-happen conditions surfaced as errors.
  kResourceExhausted = 8,  // A quota or capacity bound rejected the request
                           // (serve admission control, tenant stream limits).
};

const char* StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  // Default-constructed Status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Returns a copy with `context` prepended to the chain; identity for OK.
  // Contexts read outermost-first: "ctx2: ctx1: original message".
  Status WithContext(const std::string& context) const {
    if (ok()) {
      return *this;
    }
    return Status(code_, context + ": " + message_);
  }

  // "INVALID_ARGUMENT: jobs.csv:17: bad field" — the CLI-facing rendering.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status DataLossError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnavailableError(std::string message);
Status AbortedError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);

// A value or the error explaining its absence. Accessing value() on an error
// is a programmer error (CG_CHECK).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    CG_CHECK_MSG(!status_.ok(), "StatusOr constructed from an OK status without a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    CG_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  const T& value() const& {
    CG_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T&& value() && {
    CG_CHECK_MSG(ok(), status_.message().c_str());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

namespace status_internal {
// "src/trace/trace_io.cc:84" context tag; basenames only to keep chains short.
std::string LocationTag(const char* file, int line);
}  // namespace status_internal

}  // namespace cloudgen

// Propagates a non-OK Status to the caller, annotated with this file:line so
// the context chain records the propagation path.
#define CG_RETURN_IF_ERROR(expr)                                              \
  do {                                                                        \
    ::cloudgen::Status cg_status_macro_ = (expr);                             \
    if (!cg_status_macro_.ok()) {                                             \
      return cg_status_macro_.WithContext(                                    \
          ::cloudgen::status_internal::LocationTag(__FILE__, __LINE__));      \
    }                                                                         \
  } while (0)

#define CG_STATUS_CONCAT_INNER_(a, b) a##b
#define CG_STATUS_CONCAT_(a, b) CG_STATUS_CONCAT_INNER_(a, b)

// CG_ASSIGN_OR_RETURN(auto x, MakeX()); unwraps a StatusOr or propagates.
#define CG_ASSIGN_OR_RETURN(lhs, expr)                                        \
  auto CG_STATUS_CONCAT_(cg_statusor_, __LINE__) = (expr);                    \
  if (!CG_STATUS_CONCAT_(cg_statusor_, __LINE__).ok()) {                      \
    return CG_STATUS_CONCAT_(cg_statusor_, __LINE__)                          \
        .status()                                                             \
        .WithContext(                                                         \
            ::cloudgen::status_internal::LocationTag(__FILE__, __LINE__));    \
  }                                                                           \
  lhs = std::move(CG_STATUS_CONCAT_(cg_statusor_, __LINE__)).value()

#endif  // SRC_UTIL_STATUS_H_
