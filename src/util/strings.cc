#include "src/util/strings.h"

#include <cerrno>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace cloudgen {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t' || s[begin] == '\r' ||
                         s[begin] == '\n')) {
    ++begin;
  }
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t' || s[end - 1] == '\r' ||
                         s[end - 1] == '\n')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty() || s.size() > 32) {
    return false;
  }
  char buf[33];
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(buf, &end, 10);
  if (end != buf + s.size() || errno == ERANGE) {
    return false;
  }
  *out = static_cast<int64_t>(parsed);
  return true;
}

bool ParseInt32(std::string_view s, int32_t* out) {
  int64_t wide = 0;
  if (!ParseInt64(s, &wide) || wide < INT32_MIN || wide > INT32_MAX) {
    return false;
  }
  *out = static_cast<int32_t>(wide);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty() || s.size() > 64) {
    return false;
  }
  char buf[65];
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(buf, &end);
  if (end != buf + s.size() || errno == ERANGE) {
    return false;
  }
  *out = parsed;
  return true;
}

}  // namespace cloudgen
