#include "src/util/net.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/util/cancel.h"
#include "src/util/fault.h"
#include "src/util/strings.h"

namespace cloudgen {
namespace {

// Largest single poll(2) wait; keeps cancel/deadline latency bounded even
// when the caller asked for a long (or infinite) timeout.
constexpr int kPollSliceMs = 100;

std::string Errno(const char* what) {
  return StrFormat("%s: %s (errno %d)", what, std::strerror(errno), errno);
}

Status SetNonBlocking(int fd, bool enable) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return InternalError(Errno("fcntl(F_GETFL)"));
  }
  const int wanted = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd, F_SETFL, wanted) < 0) {
    return InternalError(Errno("fcntl(F_SETFL)"));
  }
  return OkStatus();
}

// Waits for `events` on `fd` for one slice of the caller's budget.
// Returns +1 ready, 0 not ready yet (budget remains), -1 budget exhausted.
// `remaining_ms` is decremented by the slice; negative budget = infinite.
int PollSlice(int fd, short events, int* remaining_ms) {
  int wait = kPollSliceMs;
  if (*remaining_ms >= 0) {
    if (*remaining_ms == 0) {
      return -1;
    }
    wait = std::min(wait, *remaining_ms);
  }
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  const int rc = poll(&pfd, 1, wait);
  if (*remaining_ms >= 0) {
    *remaining_ms -= wait;
  }
  if (rc > 0 && (pfd.revents & (events | POLLERR | POLLHUP)) != 0) {
    return 1;
  }
  return (*remaining_ms == 0) ? -1 : 0;
}

Status CancelledStatus(const CancelToken* cancel, const char* what) {
  return AbortedError(StrFormat("%s cancelled (%s)", what,
                                CancelReasonName(cancel->Reason())));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

StatusOr<Socket> ListenTcp(const std::string& bind_addr, uint16_t port,
                           int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return InternalError(Errno("socket"));
  }
  const int one = 1;
  if (setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    return InternalError(Errno("setsockopt(SO_REUSEADDR)"));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (bind_addr.empty() || bind_addr == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (bind_addr == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError(
        StrFormat("bind address '%s' is not a valid IPv4 address",
                  bind_addr.c_str()));
  }
  if (bind(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) < 0) {
    return UnavailableError(
        Errno(StrFormat("bind %s:%u", bind_addr.c_str(),
                        static_cast<unsigned>(port))
                  .c_str()));
  }
  if (listen(sock.fd(), backlog) < 0) {
    return InternalError(Errno("listen"));
  }
  CG_RETURN_IF_ERROR(SetNonBlocking(sock.fd(), true));
  return sock;
}

StatusOr<uint16_t> LocalPort(const Socket& sock) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (getsockname(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                  &len) < 0) {
    return InternalError(Errno("getsockname"));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Status AcceptConnection(Socket& listener, int timeout_ms,
                        const CancelToken* cancel, Socket* conn) {
  *conn = Socket();
  int remaining = timeout_ms;
  for (;;) {
    if (cancel != nullptr && cancel->Poll()) {
      return OkStatus();  // Drain in progress; caller checks the token.
    }
    const int ready = PollSlice(listener.fd(), POLLIN, &remaining);
    if (ready < 0) {
      return OkStatus();  // Timeout: nothing pending, caller loops.
    }
    if (ready == 0) {
      continue;
    }
    if (FaultInjector::Global().ShouldInject(FaultKind::kFdExhaust)) {
      return ResourceExhaustedError(
          "injected fd_exhaust: accept: too many open files (EMFILE)");
    }
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
          errno == ECONNABORTED) {
        continue;  // Raced another waiter or the peer gave up; keep going.
      }
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Out of fds or kernel memory: retrying immediately cannot succeed
        // and would spin the accept loop. Callers must back off.
        return ResourceExhaustedError(Errno("accept"));
      }
      return UnavailableError(Errno("accept"));
    }
    if (FaultInjector::Global().ShouldInject(FaultKind::kNetAcceptFail)) {
      ::close(fd);
      return UnavailableError("injected net_accept_fail: connection dropped at accept");
    }
    Socket accepted(fd);
    // Accepted fds do not inherit O_NONBLOCK; all framed I/O assumes it.
    CG_RETURN_IF_ERROR(SetNonBlocking(accepted.fd(), true));
    *conn = std::move(accepted);
    return OkStatus();
  }
}

StatusOr<Socket> ConnectTcp(const std::string& host, uint16_t port,
                            int timeout_ms) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* result = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result);
  if (rc != 0 || result == nullptr) {
    return UnavailableError(StrFormat("resolve '%s': %s", host.c_str(),
                                      gai_strerror(rc)));
  }
  Socket sock(::socket(result->ai_family, result->ai_socktype,
                       result->ai_protocol));
  if (!sock.valid()) {
    freeaddrinfo(result);
    return InternalError(Errno("socket"));
  }
  Status status = SetNonBlocking(sock.fd(), true);
  if (!status.ok()) {
    freeaddrinfo(result);
    return status;
  }
  const int crc = ::connect(sock.fd(), result->ai_addr, result->ai_addrlen);
  freeaddrinfo(result);
  if (crc < 0 && errno != EINPROGRESS) {
    return UnavailableError(
        Errno(StrFormat("connect %s:%u", host.c_str(),
                        static_cast<unsigned>(port))
                  .c_str()));
  }
  if (crc < 0) {
    int remaining = timeout_ms;
    for (;;) {
      const int ready = PollSlice(sock.fd(), POLLOUT, &remaining);
      if (ready < 0) {
        return UnavailableError(StrFormat(
            "connect %s:%u timed out after %dms", host.c_str(),
            static_cast<unsigned>(port), timeout_ms));
      }
      if (ready > 0) {
        break;
      }
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return InternalError(Errno("getsockopt(SO_ERROR)"));
    }
    if (err != 0) {
      return UnavailableError(StrFormat(
          "connect %s:%u: %s (errno %d)", host.c_str(),
          static_cast<unsigned>(port), std::strerror(err), err));
    }
  }
  return sock;
}

Status ReadFully(Socket& sock, void* buf, size_t n, int timeout_ms,
                 const CancelToken* cancel, size_t* bytes_read) {
  if (bytes_read != nullptr) {
    *bytes_read = 0;
  }
  if (FaultInjector::Global().ShouldInject(FaultKind::kNetConnDrop)) {
    sock.ShutdownBoth();
    return UnavailableError("injected net_conn_drop: connection lost during read");
  }
  size_t got = 0;
  int remaining = timeout_ms;
  while (got < n) {
    if (cancel != nullptr && cancel->Poll()) {
      return CancelledStatus(cancel, "read");
    }
    const ssize_t r = ::recv(sock.fd(), static_cast<char*>(buf) + got,
                             n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      if (bytes_read != nullptr) {
        *bytes_read = got;
      }
      continue;
    }
    if (r == 0) {
      return UnavailableError(StrFormat(
          "connection closed by peer after %zu of %zu byte(s)", got, n));
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const int ready = PollSlice(sock.fd(), POLLIN, &remaining);
      if (ready < 0) {
        return UnavailableError(StrFormat(
            "read timed out after %dms (%zu of %zu byte(s))", timeout_ms, got,
            n));
      }
      continue;
    }
    if (errno == EINTR) {
      continue;
    }
    return UnavailableError(Errno("recv"));
  }
  return OkStatus();
}

Status WriteFully(Socket& sock, const void* buf, size_t n, int timeout_ms,
                  const CancelToken* cancel) {
  if (FaultInjector::Global().ShouldInject(FaultKind::kNetConnDrop)) {
    sock.ShutdownBoth();
    return UnavailableError("injected net_conn_drop: connection lost during write");
  }
  size_t limit = n;
  bool partial = false;
  if (n > 1 &&
      FaultInjector::Global().ShouldInject(FaultKind::kNetPartialWrite)) {
    limit = n / 2;  // Deliver a prefix, then kill the connection.
    partial = true;
  }
  size_t sent = 0;
  int remaining = timeout_ms;
  while (sent < limit) {
    if (cancel != nullptr && cancel->Poll()) {
      return CancelledStatus(cancel, "write");
    }
    const ssize_t w = ::send(sock.fd(), static_cast<const char*>(buf) + sent,
                             limit - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int ready = PollSlice(sock.fd(), POLLOUT, &remaining);
      if (ready < 0) {
        return UnavailableError(StrFormat(
            "write timed out after %dms (%zu of %zu byte(s))", timeout_ms,
            sent, n));
      }
      continue;
    }
    if (w < 0 && errno == EINTR) {
      continue;
    }
    if (w < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return UnavailableError(StrFormat(
          "connection closed by peer after %zu of %zu byte(s)", sent, n));
    }
    return UnavailableError(Errno("send"));
  }
  if (partial) {
    sock.ShutdownBoth();
    return UnavailableError(StrFormat(
        "injected net_partial_write: wrote %zu of %zu byte(s) then dropped",
        limit, n));
  }
  return OkStatus();
}

Status SocketPair(Socket* a, Socket* b) {
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
    return InternalError(Errno("socketpair"));
  }
  *a = Socket(fds[0]);
  *b = Socket(fds[1]);
  CG_RETURN_IF_ERROR(SetNonBlocking(a->fd(), true));
  CG_RETURN_IF_ERROR(SetNonBlocking(b->fd(), true));
  return OkStatus();
}

}  // namespace cloudgen
