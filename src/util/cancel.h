// Cooperative cancellation for long-running generation work.
//
// A CancelToken is a cheap flag shared between a requester (a SIGINT/SIGTERM
// handler, a CLI deadline, or a test) and the loops doing the work. The
// contract is *cooperative*: nothing is interrupted mid-write — loops check
// the token at safe boundaries (between ParallelFor indices, between
// generation periods, inside per-period token loops) and wind down cleanly,
// sealing the current output segment and writing a generation checkpoint so
// the run can be resumed bitwise-identically.
//
//   Cancelled()  one relaxed atomic load — safe on the hottest loops.
//   Poll()       Cancelled() plus a deadline check (a steady_clock read);
//                call it at coarse boundaries (per period / per trace), not
//                per token.
//
// RequestCancel() only stores to lock-free atomics, so it is async-signal-
// safe; InstallCancelSignalHandlers() routes SIGINT/SIGTERM to the global
// token for the CLI's graceful-stop path (exit code 5, see
// docs/ROBUSTNESS.md).
#ifndef SRC_UTIL_CANCEL_H_
#define SRC_UTIL_CANCEL_H_

#include <atomic>
#include <cstdint>

namespace cloudgen {

enum class CancelReason : int {
  kNone = 0,
  kRequested = 1,  // Programmatic RequestCancel (tests, embedding code).
  kSignal = 2,     // SIGINT / SIGTERM.
  kDeadline = 3,   // --deadline-sec expired.
};

const char* CancelReasonName(CancelReason reason);

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Async-signal-safe: performs only lock-free atomic stores. The first
  // reason to land wins; later requests keep the flag set but do not
  // overwrite the reason.
  void RequestCancel(CancelReason reason = CancelReason::kRequested);

  // True once cancellation has been requested (or a deadline observed by
  // Poll() has expired). One relaxed load.
  bool Cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

  // Arms a deadline `seconds_from_now` from the current steady clock;
  // non-positive values trip on the next Poll(). Poll() converts an expired
  // deadline into a cancellation with reason kDeadline.
  void SetDeadline(double seconds_from_now);

  // Cancelled(), additionally checking the armed deadline. Reads the steady
  // clock, so call at coarse boundaries only.
  bool Poll() const;

  CancelReason Reason() const {
    return static_cast<CancelReason>(reason_.load(std::memory_order_relaxed));
  }

  // Clears the flag, reason, and deadline (tests and repeated CLI runs in
  // one process).
  void Reset();

 private:
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<int> reason_{static_cast<int>(CancelReason::kNone)};
  // Steady-clock deadline in ns since the clock's epoch; 0 = disarmed.
  std::atomic<int64_t> deadline_ns_{0};
};

// Process-wide token used by the CLI; the signal handlers below write to it.
CancelToken& GlobalCancelToken();

// Routes SIGINT and SIGTERM to GlobalCancelToken().RequestCancel(kSignal).
// Idempotent; safe to call before work starts.
void InstallCancelSignalHandlers();

}  // namespace cloudgen

#endif  // SRC_UTIL_CANCEL_H_
