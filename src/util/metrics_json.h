// Parser for serialized `cloudgen.metrics.v1` snapshots (the files written
// by --metrics-out, the rolling exporter, and BENCH_perf.json), back into the
// plain-data obs::RegistrySnapshot so tooling — `cloudgen metrics-dump`, the
// Prometheus re-renderer — can work on any snapshot file without a live
// registry.
//
// This is a deliberately small recursive-descent JSON reader, not a general
// JSON library: it accepts the full JSON value grammar (so unknown keys and
// future schema additions are skipped, not fatal) but only materializes the
// shapes the v1 schema uses.
#ifndef SRC_UTIL_METRICS_JSON_H_
#define SRC_UTIL_METRICS_JSON_H_

#include <string_view>

#include "src/obs/metrics.h"
#include "src/util/status.h"

namespace cloudgen {

// Parses a `cloudgen.metrics.v1` document into `*out` (replacing its
// contents). INVALID_ARGUMENT on malformed JSON or a wrong/missing schema
// tag; histograms with inconsistent edges/counts lengths are rejected too.
Status ParseMetricsSnapshot(std::string_view json, obs::RegistrySnapshot* out);

}  // namespace cloudgen

#endif  // SRC_UTIL_METRICS_JSON_H_
