// Wall-clock timers for progress reporting and telemetry.
//
// Timer is the bare stopwatch used by training loops and benches.
// ScopedTimer couples a Timer to an obs::Histogram: on destruction it feeds
// the scope's elapsed milliseconds into the histogram, so call sites get
// latency distributions in the --metrics-out snapshot for free.
#ifndef SRC_UTIL_TIMER_H_
#define SRC_UTIL_TIMER_H_

#include <chrono>

#include "src/obs/metrics.h"

namespace cloudgen {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Records the scope's wall time (in milliseconds) into `histogram` on
// destruction; a null histogram makes it a plain Timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(obs::Histogram* histogram) : histogram_(histogram) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(timer_.ElapsedSeconds() * 1000.0);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  void Reset() { timer_.Reset(); }
  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  Timer timer_;
  obs::Histogram* histogram_;
};

}  // namespace cloudgen

#endif  // SRC_UTIL_TIMER_H_
