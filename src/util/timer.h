// Wall-clock timer for progress reporting in training loops and benches.
#ifndef SRC_UTIL_TIMER_H_
#define SRC_UTIL_TIMER_H_

#include <chrono>

namespace cloudgen {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cloudgen

#endif  // SRC_UTIL_TIMER_H_
