#include "src/util/atomic_file.h"

#include <cstdio>

#include "src/util/fault.h"

namespace cloudgen {

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  out_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    status_ = UnavailableError("cannot open " + tmp_path_ + " for writing");
    done_ = true;
  }
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!done_) {
    out_.close();
    std::remove(tmp_path_.c_str());
  }
}

Status AtomicFileWriter::Commit() {
  CG_CHECK_MSG(!done_ || !status_.ok(), "Commit() called twice");
  if (!status_.ok()) {
    return status_;
  }
  done_ = true;
  out_.flush();
  const bool healthy = static_cast<bool>(out_);
  out_.close();
  if (!healthy) {
    std::remove(tmp_path_.c_str());
    status_ = UnavailableError("short write to " + tmp_path_);
    return status_;
  }
  return CommitTempFile(tmp_path_, path_);
}

Status CommitTempFile(const std::string& tmp_path, const std::string& path) {
  if (FaultInjector::Global().ShouldInject(FaultKind::kIoWrite)) {
    std::remove(tmp_path.c_str());
    return UnavailableError("injected io_write fault while committing " + path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return UnavailableError("rename " + tmp_path + " -> " + path + " failed");
  }
  return OkStatus();
}

Status WriteFileAtomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  AtomicFileWriter file(path);
  CG_RETURN_IF_ERROR(file.status());
  writer(file.stream());
  return file.Commit();
}

}  // namespace cloudgen
