#include "src/util/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

#include "src/obs/metrics.h"
#include "src/util/env.h"
#include "src/util/fault.h"
#include "src/util/log.h"

namespace cloudgen {
namespace {

// Durability knob: CLOUDGEN_FSYNC=0 disables the fsyncs below (fast local
// test runs that only need crash consistency, not power-loss durability).
// Default ON: sealed segments, manifests, and checkpoints must survive power
// loss, not just process death.
bool FsyncEnabled() {
  static const bool enabled = GetEnvLong("CLOUDGEN_FSYNC", 1) != 0;
  return enabled;
}

// Flushes `path`'s data to stable storage. The writers above us use
// std::ofstream, which hides its descriptor, so we reopen by path; the
// window between close and fsync is irrelevant because nothing reads the
// temp file before the rename.
Status SyncFileForDurability(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return UnavailableError("open for fsync failed: " + path);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return UnavailableError("fsync failed: " + path);
  }
  obs::Registry::Global().GetCounter("io.fsync.file").Add(1);
  return OkStatus();
}

// Makes the rename itself durable: after rename(2) the new directory entry
// lives only in the directory's page cache until the *directory* is fsync'd
// — without this, a power loss can forget a "committed" file entirely (the
// original durability bug this PR fixes).
void SyncParentDirAfterRename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    obs::Registry::Global().GetCounter("io.fsync.failures").Add(1);
    CG_LOG_WARN("cannot open directory for fsync: " + dir);
    return;
  }
  if (::fsync(fd) != 0) {
    // The rename already happened: in-process readers see the committed
    // file, only power-loss durability is weakened. Count and warn rather
    // than unwinding a rename we cannot take back.
    obs::Registry::Global().GetCounter("io.fsync.failures").Add(1);
    CG_LOG_WARN("directory fsync failed: " + dir);
  } else {
    obs::Registry::Global().GetCounter("io.fsync.dir").Add(1);
  }
  ::close(fd);
}

}  // namespace

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  out_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    status_ = UnavailableError("cannot open " + tmp_path_ + " for writing");
    done_ = true;
  }
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!done_) {
    out_.close();
    std::remove(tmp_path_.c_str());
  }
}

Status AtomicFileWriter::Commit() {
  CG_CHECK_MSG(!done_ || !status_.ok(), "Commit() called twice");
  if (!status_.ok()) {
    return status_;
  }
  done_ = true;
  errno = 0;
  out_.flush();
  const bool healthy = static_cast<bool>(out_);
  const int flush_errno = errno;
  out_.close();
  if (!healthy) {
    std::remove(tmp_path_.c_str());
    status_ = flush_errno == ENOSPC
                  ? ResourceExhaustedError("no space left on device writing " +
                                           tmp_path_)
                  : UnavailableError("short write to " + tmp_path_);
    return status_;
  }
  return CommitTempFile(tmp_path_, path_);
}

Status CommitTempFile(const std::string& tmp_path, const std::string& path) {
  if (FaultInjector::Global().ShouldInject(FaultKind::kIoWrite)) {
    std::remove(tmp_path.c_str());
    return UnavailableError("injected io_write fault while committing " + path);
  }
  if (FaultInjector::Global().ShouldInject(FaultKind::kIoEnospc)) {
    std::remove(tmp_path.c_str());
    return ResourceExhaustedError(
        "injected io_enospc: no space left on device committing " + path);
  }
  // Data must reach stable storage *before* the rename publishes the file:
  // otherwise a power loss can leave the destination pointing at pages that
  // were never written back (a zero-length or torn "committed" file).
  if (FsyncEnabled()) {
    const Status synced = SyncFileForDurability(tmp_path);
    if (!synced.ok()) {
      std::remove(tmp_path.c_str());
      return synced;
    }
  }
  errno = 0;
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const int rename_errno = errno;
    std::remove(tmp_path.c_str());
    if (rename_errno == ENOSPC) {
      return ResourceExhaustedError("no space left on device renaming " +
                                    tmp_path + " -> " + path);
    }
    return UnavailableError("rename " + tmp_path + " -> " + path + " failed");
  }
  if (FsyncEnabled()) {
    SyncParentDirAfterRename(path);
  }
  return OkStatus();
}

Status WriteFileAtomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  AtomicFileWriter file(path);
  CG_RETURN_IF_ERROR(file.status());
  writer(file.stream());
  return file.Commit();
}

}  // namespace cloudgen
