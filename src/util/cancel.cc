#include "src/util/cancel.h"

#include <chrono>
#include <csignal>

namespace cloudgen {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Set by InstallCancelSignalHandlers before any handler can fire; the
// handler itself must not run the function-local-static initialization of
// GlobalCancelToken.
std::atomic<CancelToken*> g_signal_token{nullptr};

extern "C" void CancelOnSignal(int /*signum*/) {
  CancelToken* token = g_signal_token.load(std::memory_order_relaxed);
  if (token != nullptr) {
    token->RequestCancel(CancelReason::kSignal);
  }
}

}  // namespace

const char* CancelReasonName(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kRequested:
      return "requested";
    case CancelReason::kSignal:
      return "signal";
    case CancelReason::kDeadline:
      return "deadline";
  }
  return "unknown";
}

void CancelToken::RequestCancel(CancelReason reason) {
  int expected = static_cast<int>(CancelReason::kNone);
  reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                  std::memory_order_relaxed);
  cancelled_.store(true, std::memory_order_relaxed);
}

void CancelToken::SetDeadline(double seconds_from_now) {
  const auto delta_ns = static_cast<int64_t>(seconds_from_now * 1e9);
  deadline_ns_.store(SteadyNowNs() + delta_ns, std::memory_order_relaxed);
}

bool CancelToken::Poll() const {
  if (cancelled_.load(std::memory_order_relaxed)) {
    return true;
  }
  const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != 0 && SteadyNowNs() >= deadline) {
    int expected = static_cast<int>(CancelReason::kNone);
    reason_.compare_exchange_strong(expected, static_cast<int>(CancelReason::kDeadline),
                                    std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void CancelToken::Reset() {
  cancelled_.store(false, std::memory_order_relaxed);
  reason_.store(static_cast<int>(CancelReason::kNone), std::memory_order_relaxed);
  deadline_ns_.store(0, std::memory_order_relaxed);
}

CancelToken& GlobalCancelToken() {
  static CancelToken token;
  return token;
}

void InstallCancelSignalHandlers() {
  // Publish the token before arming the handlers so a signal arriving
  // immediately after std::signal still finds it.
  g_signal_token.store(&GlobalCancelToken(), std::memory_order_relaxed);
  std::signal(SIGINT, CancelOnSignal);
  std::signal(SIGTERM, CancelOnSignal);
}

}  // namespace cloudgen
