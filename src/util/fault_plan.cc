#include "src/util/fault_plan.h"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string_view>

#include "src/util/strings.h"

namespace cloudgen {
namespace {

constexpr const char* kKindList =
    "io_write, read_truncate, nan_grad, gen_nan_logit, gen_write_kill, "
    "net_accept_fail, net_partial_write, net_conn_drop, io_enospc, "
    "fd_exhaust or stream_stall";

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    const size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) {
      tokens.push_back(s.substr(start, i - start));
    }
  }
  return tokens;
}

Status EntryError(std::string_view entry, const std::string& why) {
  return InvalidArgumentError(StrFormat("fault plan entry '%.*s': %s",
                                        static_cast<int>(entry.size()),
                                        entry.data(), why.c_str()));
}

bool ParsePlanU64(std::string_view value, uint64_t* out) {
  int64_t v = 0;
  if (!ParseInt64(value, &v) || v < 0) {
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

Status ParseEntry(std::string_view entry, FaultPlan* plan) {
  const std::vector<std::string_view> tokens = SplitWhitespace(entry);
  FaultRule rule;
  bool have_prob = false, have_at = false, have_from = false, have_to = false,
       have_every = false, have_burst = false;

  // First token: kind, or the legacy kind:prob sugar.
  std::string_view head = tokens[0];
  const size_t colon = head.find(':');
  const std::string_view kind_name =
      colon == std::string_view::npos ? head : head.substr(0, colon);
  if (!ParseFaultKindName(kind_name, &rule.kind)) {
    return EntryError(entry, StrFormat("unknown fault kind '%.*s' (expected %s)",
                                       static_cast<int>(kind_name.size()),
                                       kind_name.data(), kKindList));
  }
  if (colon != std::string_view::npos) {
    if (!ParseDouble(head.substr(colon + 1), &rule.probability) ||
        !std::isfinite(rule.probability) || rule.probability < 0.0 ||
        rule.probability > 1.0) {
      return EntryError(entry, "probability must be a number in [0, 1]");
    }
    have_prob = true;
  }

  for (size_t t = 1; t < tokens.size(); ++t) {
    const std::string_view token = tokens[t];
    const size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      return EntryError(entry,
                        StrFormat("token '%.*s' is not of the form key=value",
                                  static_cast<int>(token.size()), token.data()));
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "prob") {
      if (have_prob) {
        return EntryError(entry, "probability given twice");
      }
      if (!ParseDouble(value, &rule.probability) ||
          !std::isfinite(rule.probability) || rule.probability < 0.0 ||
          rule.probability > 1.0) {
        return EntryError(entry, "prob= must be a number in [0, 1]");
      }
      have_prob = true;
    } else if (key == "at") {
      if (!ParsePlanU64(value, &rule.at) || rule.at < 1) {
        return EntryError(entry, "at= must be a call index >= 1");
      }
      have_at = true;
    } else if (key == "from") {
      if (!ParsePlanU64(value, &rule.from) || rule.from < 1) {
        return EntryError(entry, "from= must be a call index >= 1");
      }
      have_from = true;
    } else if (key == "to") {
      if (!ParsePlanU64(value, &rule.to) || rule.to < 1) {
        return EntryError(entry, "to= must be a call index >= 1");
      }
      have_to = true;
    } else if (key == "every") {
      if (!ParsePlanU64(value, &rule.every) || rule.every < 1) {
        return EntryError(entry, "every= must be a period >= 1");
      }
      have_every = true;
    } else if (key == "burst") {
      if (!ParsePlanU64(value, &rule.burst) || rule.burst < 1) {
        return EntryError(entry, "burst= must be a count >= 1");
      }
      have_burst = true;
    } else if (key == "site") {
      if (value.empty()) {
        return EntryError(entry, "site= must name a scope tag");
      }
      rule.site = std::string(value);
    } else if (key == "tenant") {
      if (value.empty()) {
        return EntryError(entry, "tenant= must name a tenant");
      }
      rule.tenant = std::string(value);
    } else if (key == "shard") {
      if (!ParseInt64(value, &rule.shard) || rule.shard < 0) {
        return EntryError(entry, "shard= must be an integer >= 0");
      }
    } else {
      return EntryError(
          entry, StrFormat("unknown key '%.*s' (expected prob, at, from, to, "
                           "every, burst, site, tenant or shard)",
                           static_cast<int>(key.size()), key.data()));
    }
  }

  // Resolve the trigger; exactly one of prob / at / from..to / every.
  const int modes = (have_at ? 1 : 0) + (have_every ? 1 : 0) +
                    ((have_from || have_to) ? 1 : 0);
  if (modes > 1) {
    return EntryError(entry,
                      "at=, every= and from=/to= are mutually exclusive");
  }
  if (have_burst && !have_every) {
    return EntryError(entry, "burst= requires every=");
  }
  if (have_at) {
    if (have_prob) {
      return EntryError(entry, "at= one-shots cannot carry a probability");
    }
    rule.trigger = FaultTrigger::kAt;
  } else if (have_every) {
    if (have_prob) {
      return EntryError(entry, "every= bursts cannot carry a probability");
    }
    if (rule.burst > rule.every) {
      return EntryError(entry, "burst= must be <= every=");
    }
    rule.trigger = FaultTrigger::kEvery;
  } else if (have_from || have_to) {
    if (!have_to) {
      rule.to = UINT64_MAX;  // Open-ended window: from=N onwards.
    }
    if (rule.to < rule.from) {
      return EntryError(entry, "window needs from= <= to=");
    }
    rule.trigger = FaultTrigger::kWindow;
    if (!have_prob) {
      rule.probability = 1.0;
    } else if (rule.probability <= 0.0) {
      return rule.probability == 0.0
                 ? OkStatus()  // prob=0 window: explicitly disarmed, drop it.
                 : EntryError(entry, "window prob= must be in (0, 1]");
    }
  } else if (have_prob) {
    rule.trigger = FaultTrigger::kProb;
    if (rule.probability <= 0.0) {
      return OkStatus();  // kind:0 — disarmed, matching the legacy spec.
    }
  } else {
    return EntryError(entry,
                      "no trigger (want kind:P, prob=, at=, from=/to= or "
                      "every=)");
  }

  plan->rules.push_back(std::move(rule));
  return OkStatus();
}

}  // namespace

bool FaultRule::MatchesScope(const FaultScope& scope) const {
  if (!site.empty() && site != scope.site) {
    return false;
  }
  if (!tenant.empty() && tenant != scope.tenant) {
    return false;
  }
  if (shard >= 0 && shard != scope.shard) {
    return false;
  }
  return true;
}

std::string FaultRule::ToString() const {
  std::string out = FaultKindName(kind);
  switch (trigger) {
    case FaultTrigger::kProb:
      out += StrFormat(" prob=%.3f", probability);
      break;
    case FaultTrigger::kAt:
      out += StrFormat(" at=%llu", static_cast<unsigned long long>(at));
      break;
    case FaultTrigger::kWindow:
      out += StrFormat(" from=%llu", static_cast<unsigned long long>(from));
      if (to != UINT64_MAX) {
        out += StrFormat(" to=%llu", static_cast<unsigned long long>(to));
      }
      if (probability < 1.0) {
        out += StrFormat(" prob=%.3f", probability);
      }
      break;
    case FaultTrigger::kEvery:
      out += StrFormat(" every=%llu burst=%llu",
                       static_cast<unsigned long long>(every),
                       static_cast<unsigned long long>(burst));
      break;
  }
  if (!site.empty()) {
    out += " site=" + site;
  }
  if (!tenant.empty()) {
    out += " tenant=" + tenant;
  }
  if (shard >= 0) {
    out += StrFormat(" shard=%lld", static_cast<long long>(shard));
  }
  return out;
}

Status ParseFaultPlan(const std::string& text, FaultPlan* plan) {
  FaultPlan out;
  // Strip # comments line-wise, then split entries on commas, semicolons and
  // newlines so the same grammar works as a one-line env var or a plan file.
  std::string entry;
  const auto flush = [&]() -> Status {
    const std::string_view trimmed = Trim(entry);
    Status status = OkStatus();
    if (!trimmed.empty()) {
      status = ParseEntry(trimmed, &out);
    }
    entry.clear();
    return status;
  };
  bool in_comment = false;
  for (const char c : text) {
    if (c == '\n') {
      in_comment = false;
      CG_RETURN_IF_ERROR(flush());
    } else if (in_comment) {
      continue;
    } else if (c == '#') {
      in_comment = true;
    } else if (c == ',' || c == ';') {
      CG_RETURN_IF_ERROR(flush());
    } else {
      entry += c;
    }
  }
  CG_RETURN_IF_ERROR(flush());
  *plan = std::move(out);
  return OkStatus();
}

Status LoadFaultPlanFile(const std::string& path, FaultPlan* plan) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open fault plan file: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) {
    return UnavailableError("error reading fault plan file: " + path);
  }
  Status status = ParseFaultPlan(text.str(), plan);
  if (!status.ok()) {
    return Status(status.code(), path + ": " + status.message());
  }
  return OkStatus();
}

Status VerifyPlanDeterminism(const FaultPlan& plan, uint64_t seed,
                             uint64_t calls) {
  if (plan.empty()) {
    return OkStatus();
  }
  // Drive the same single-threaded call sequence twice on a private
  // injector: `calls` rounds, each visiting every kind the plan targets,
  // once unscoped and once under each rule's own scope. Identical per-kind
  // injected counts across the two replays is the reproducibility contract
  // a plan+seed promises.
  FaultInjector injector;
  size_t counts[2][kNumFaultKinds] = {};
  for (int round = 0; round < 2; ++round) {
    CG_RETURN_IF_ERROR(injector.ConfigurePlan(plan, seed));
    for (uint64_t i = 0; i < calls; ++i) {
      for (const FaultRule& rule : plan.rules) {
        injector.ShouldInject(rule.kind);
        if (!rule.site.empty() || !rule.tenant.empty() || rule.shard >= 0) {
          ScopedFaultSite scope(rule.site.c_str(), rule.tenant, rule.shard);
          injector.ShouldInject(rule.kind);
        }
      }
    }
    for (int k = 0; k < kNumFaultKinds; ++k) {
      counts[round][k] = injector.InjectedCount(static_cast<FaultKind>(k));
    }
  }
  injector.Disarm();
  for (int k = 0; k < kNumFaultKinds; ++k) {
    if (counts[0][k] != counts[1][k]) {
      return InternalError(StrFormat(
          "fault plan schedule is not deterministic: kind %s fired %zu then "
          "%zu times across two replays of the same plan+seed",
          FaultKindName(static_cast<FaultKind>(k)), counts[0][k],
          counts[1][k]));
    }
  }
  return OkStatus();
}

}  // namespace cloudgen
