// Invariant-checking macros used across the cloudgen libraries.
//
// CG_CHECK is active in all build modes (it guards API misuse and data invariants
// whose violation would make results silently wrong). CG_DCHECK compiles away in
// NDEBUG builds and is for hot-path sanity checks.
#ifndef SRC_UTIL_CHECK_H_
#define SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace cloudgen {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "CG_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace cloudgen

#define CG_CHECK(cond) \
  do { \
    if (!(cond)) { \
      ::cloudgen::CheckFailed(#cond, __FILE__, __LINE__, ""); \
    } \
  } while (0)

#define CG_CHECK_MSG(cond, msg) \
  do { \
    if (!(cond)) { \
      ::cloudgen::CheckFailed(#cond, __FILE__, __LINE__, (msg)); \
    } \
  } while (0)

#ifdef NDEBUG
#define CG_DCHECK(cond) \
  do { \
  } while (0)
#else
#define CG_DCHECK(cond) CG_CHECK(cond)
#endif

#endif  // SRC_UTIL_CHECK_H_
