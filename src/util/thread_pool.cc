#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <memory>
#include <utility>

#include "src/obs/metrics.h"
#include "src/util/cancel.h"

namespace cloudgen {
namespace {

// Set while a thread is executing a pool task; nested parallel sections on
// such a thread run inline instead of re-entering the queue (unless the task
// opted into bounded fan-out below).
thread_local bool t_inside_pool_task = false;

// Active ScopedInnerParallelism cap for this thread; 0 means "no scope", in
// which case the default for the current context applies (1 inside a pool
// task, whole pool otherwise).
thread_local size_t t_inner_cap = 0;

constexpr size_t kUnboundedBudget = std::numeric_limits<size_t>::max();

// Concurrency budget for a parallel section issued from this thread: the
// scoped cap when one is active, else inline-only inside a pool task and
// pool-sized at top level. A budget of 1 means "run everything inline".
size_t CurrentBudget() {
  if (t_inner_cap > 0) {
    return t_inner_cap;
  }
  return t_inside_pool_task ? 1 : kUnboundedBudget;
}

// Pool telemetry (docs/OBSERVABILITY.md). Cached references: registration
// locks once per process, updates are relaxed atomics on the hot path.
obs::Counter& TasksRunCounter() {
  static obs::Counter& counter = obs::Registry::Global().GetCounter("pool.tasks_run");
  return counter;
}
obs::Counter& InlineTasksCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("pool.tasks_inline");
  return counter;
}
obs::Counter& ParallelForCounter() {
  static obs::Counter& counter = obs::Registry::Global().GetCounter("pool.parallel_fors");
  return counter;
}
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& gauge = obs::Registry::Global().GetGauge("pool.queue_depth");
  return gauge;
}
obs::Gauge& BusyWorkersGauge() {
  static obs::Gauge& gauge = obs::Registry::Global().GetGauge("pool.busy_workers");
  return gauge;
}
obs::Gauge& WorkersGauge() {
  static obs::Gauge& gauge = obs::Registry::Global().GetGauge("pool.workers");
  return gauge;
}
obs::Gauge& UtilizationGauge() {
  static obs::Gauge& gauge = obs::Registry::Global().GetGauge("pool.utilization");
  return gauge;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) {
    return;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  t_inside_pool_task = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutdown with a drained queue.
      }
      task = std::move(queue_.front());
      queue_.pop();
      QueueDepthGauge().Set(static_cast<double>(queue_.size()));
    }
    BusyWorkersGauge().Add(1.0);
    TasksRunCounter().Add(1);
    task();
    BusyWorkersGauge().Add(-1.0);
  }
}

void ThreadPool::RunAll(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) {
    return;
  }
  const size_t budget = CurrentBudget();
  if (workers_.empty() || tasks.size() == 1 || budget <= 1) {
    InlineTasksCounter().Add(tasks.size());
    for (const auto& task : tasks) {
      task();
    }
    return;
  }

  // A bounded section may enqueue at most `budget` units so a capped caller
  // never occupies more than its share of the pool; fold excess tasks into
  // composites. Safe to capture `tasks` by reference: RunAll blocks until
  // every unit has finished.
  std::vector<std::function<void()>> grouped;
  const std::vector<std::function<void()>>* units = &tasks;
  if (budget != kUnboundedBudget && tasks.size() > budget) {
    const size_t per = (tasks.size() + budget - 1) / budget;
    grouped.reserve((tasks.size() + per - 1) / per);
    for (size_t lo = 0; lo < tasks.size(); lo += per) {
      const size_t hi = std::min(tasks.size(), lo + per);
      grouped.push_back([&tasks, lo, hi] {
        for (size_t i = lo; i < hi; ++i) {
          tasks[i]();
        }
      });
    }
    units = &grouped;
  }

  // Completion latch + first-exception capture shared by all submitted tasks.
  struct Batch {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining;
    std::exception_ptr error;
  };
  auto batch = std::make_shared<Batch>();
  batch->remaining = units->size();

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& task : *units) {
      queue_.push([task, batch] {
        try {
          task();
        } catch (...) {
          std::lock_guard<std::mutex> batch_lock(batch->mu);
          if (!batch->error) {
            batch->error = std::current_exception();
          }
        }
        std::lock_guard<std::mutex> batch_lock(batch->mu);
        if (--batch->remaining == 0) {
          batch->done.notify_all();
        }
      });
    }
    QueueDepthGauge().Set(static_cast<double>(queue_.size()));
  }
  work_available_.notify_all();

  // Help drain the queue instead of blocking: the caller may hold the only
  // non-worker thread, and stealing keeps small pools busy. Stolen tasks run
  // with the default inner budget (inline) and the caller's own context is
  // saved/restored — a nested submitter that drains here must not leak
  // "inside pool task" state or its cap into or out of stolen work.
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop();
        QueueDepthGauge().Set(static_cast<double>(queue_.size()));
      }
    }
    if (!task) {
      break;
    }
    const bool was_inside = t_inside_pool_task;
    const size_t saved_cap = t_inner_cap;
    t_inside_pool_task = true;
    t_inner_cap = 0;
    TasksRunCounter().Add(1);
    task();
    t_inside_pool_task = was_inside;
    t_inner_cap = saved_cap;
  }
  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->done.wait(lock, [&] { return batch->remaining == 0; });
    if (batch->error) {
      std::rethrow_exception(batch->error);
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) {
    return;
  }
  ParallelForCounter().Add(1);
  const size_t range = end - begin;
  const size_t budget = CurrentBudget();
  if (workers_.empty() || range == 1 || budget <= 1) {
    for (size_t i = begin; i < end; ++i) {
      fn(i);
    }
    return;
  }
  // Over-decompose mildly for load balance; chunk boundaries are irrelevant
  // to results (see determinism contract in the header). Bounded sections
  // cut exactly `budget` chunks instead so their concurrency is capped.
  const size_t max_chunks = std::min(
      range, budget == kUnboundedBudget ? workers_.size() * 4 : budget);
  const size_t chunk = (range + max_chunks - 1) / max_chunks;
  std::vector<std::function<void()>> tasks;
  tasks.reserve((range + chunk - 1) / chunk);
  for (size_t lo = begin; lo < end; lo += chunk) {
    const size_t hi = std::min(end, lo + chunk);
    tasks.push_back([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) {
        fn(i);
      }
    });
  }
  RunAll(tasks);
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn,
                             const CancelToken* cancel) {
  if (cancel == nullptr) {
    ParallelFor(begin, end, fn);
    return;
  }
  ParallelFor(begin, end, [&fn, cancel](size_t i) {
    if (cancel->Cancelled()) {
      return;
    }
    fn(i);
  });
}

ScopedInnerParallelism::ScopedInnerParallelism(size_t cap) : saved_(t_inner_cap) {
  t_inner_cap = std::max<size_t>(1, cap);
}

ScopedInnerParallelism::~ScopedInnerParallelism() { t_inner_cap = saved_; }

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
size_t g_parallelism = 1;

}  // namespace

ThreadPool& GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(1);
  }
  return *g_pool;
}

void ThreadPool::PublishGauges() {
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    depth = queue_.size();
  }
  QueueDepthGauge().Set(static_cast<double>(depth));
  const double workers = static_cast<double>(workers_.size());
  WorkersGauge().Set(std::max(workers, 1.0));  // Inline-only pools count the caller.
  // Busy tracking is the +1/-1 gauge the worker loop maintains; clamp into
  // [0, workers] so a reader between the two writes never sees nonsense.
  const double busy =
      std::min(std::max(BusyWorkersGauge().Value(), 0.0), std::max(workers, 1.0));
  UtilizationGauge().Set(workers > 0.0 ? busy / workers : 0.0);
}

void SetGlobalThreads(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_pool = std::make_unique<ThreadPool>(num_threads);
  g_parallelism = num_threads;
  WorkersGauge().Set(static_cast<double>(num_threads));
}

size_t GlobalParallelism() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return std::max<size_t>(1, g_parallelism);
}

}  // namespace cloudgen
