#include "src/util/rng.h"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "src/obs/fidelity_monitor.h"
#include "src/util/check.h"

namespace cloudgen {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64 for seeding, as recommended by the xoshiro authors.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : state_) {
    s = SplitMix64(x);
  }
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 1;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

void Rng::Jump() {
  static constexpr uint64_t kJump[] = {0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull,
                                       0xA9582618E03FC9AAull, 0x39ABDC4529B1661Cull};
  uint64_t s0 = 0;
  uint64_t s1 = 0;
  uint64_t s2 = 0;
  uint64_t s3 = 0;
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ull << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      Next();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

Rng Rng::Stream(uint64_t seed, uint64_t stream_id) {
  // Two splitmix64 rounds decorrelate consecutive ids; the golden-ratio
  // offset keeps Stream(seed, 0) distinct from Rng(seed) itself.
  uint64_t x = stream_id + 0x9E3779B97F4A7C15ull;
  const uint64_t a = SplitMix64(x);
  const uint64_t b = SplitMix64(x);
  return Rng(seed ^ a ^ Rotl(b, 32));
}

Rng Rng::Fork() {
  Rng child = *this;
  child.has_cached_normal_ = false;
  Jump();
  return child;
}

double Rng::NextDouble() {
  // 53 high bits → [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

uint64_t Rng::UniformInt(uint64_t n) {
  CG_CHECK(n > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<uint64_t>(m);
  if (lo < n) {
    const uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CG_CHECK(lo <= hi);
  const auto span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= std::numeric_limits<double>::min()) {
    u1 = NextDouble();
  }
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

double Rng::Exponential(double rate) {
  CG_CHECK(rate > 0.0);
  double u = NextDouble();
  while (u <= 0.0) {
    u = NextDouble();
  }
  return -std::log(u) / rate;
}

int64_t Rng::Poisson(double mu) {
  CG_CHECK(mu >= 0.0);
  if (mu == 0.0) {
    return 0;
  }
  if (mu < 10.0) {
    // Knuth inversion.
    const double limit = std::exp(-mu);
    double prod = NextDouble();
    int64_t n = 0;
    while (prod > limit) {
      prod *= NextDouble();
      ++n;
    }
    return n;
  }
  // PTRS: transformed rejection with squeeze (Hörmann 1993).
  const double b = 0.931 + 2.53 * std::sqrt(mu);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  while (true) {
    const double u = NextDouble() - 0.5;
    const double v = NextDouble();
    const double us = 0.5 - std::fabs(u);
    const auto k = static_cast<int64_t>(std::floor((2.0 * a / us + b) * u + mu + 0.43));
    if (us >= 0.07 && v <= v_r) {
      return k;
    }
    if (k < 0 || (us < 0.013 && v > us)) {
      continue;
    }
    const double log_mu = std::log(mu);
    if (std::log(v * inv_alpha / (a / (us * us) + b)) <=
        k * log_mu - mu - std::lgamma(static_cast<double>(k) + 1.0)) {
      return k;
    }
  }
}

int64_t Rng::Geometric(double p) {
  CG_CHECK(p > 0.0 && p <= 1.0);
  if (p == 1.0) {
    return 0;
  }
  double u = NextDouble();
  while (u <= 0.0) {
    u = NextDouble();
  }
  return static_cast<int64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  CG_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CG_DCHECK(w >= 0.0);
    total += w;
  }
  // Draw before branching on weight health so healthy and degenerate paths
  // consume the same single variate (stream state stays comparable).
  const double u = NextDouble();
  if (!std::isfinite(total) || total <= 0.0) {
    // All-zero weights (e.g. MaxShiftedExp's corruption signal) or a
    // NaN/inf total: no distribution exists. Fall back to a uniform draw
    // over all indices — always in range — instead of aborting the process
    // from inside an unguarded generation loop. Counted so fidelity drift
    // scores can't be silently polluted by degenerate sampling.
    obs::FidelityMonitor::Global().CountFallbackDraw();
    return std::min(weights.size() - 1,
                    static_cast<size_t>(u * static_cast<double>(weights.size())));
  }
  return WeightedIndexFromTarget(weights, u * total);
}

size_t Rng::CategoricalFromCdf(const std::vector<double>& cdf) {
  CG_CHECK(!cdf.empty());
  const double total = cdf.back();
  const double u = NextDouble();
  if (!std::isfinite(total) || total <= 0.0) {
    obs::FidelityMonitor::Global().CountFallbackDraw();
    return std::min(cdf.size() - 1,
                    static_cast<size_t>(u * static_cast<double>(cdf.size())));
  }
  return CdfIndexFromTarget(cdf, u * total);
}

void Rng::SaveState(std::ostream& out) const {
  out.write(reinterpret_cast<const char*>(state_), sizeof(state_));
  out.write(reinterpret_cast<const char*>(&cached_normal_), sizeof(cached_normal_));
  const uint8_t has_cached = has_cached_normal_ ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&has_cached), sizeof(has_cached));
}

void Rng::LoadState(std::istream& in) {
  in.read(reinterpret_cast<char*>(state_), sizeof(state_));
  in.read(reinterpret_cast<char*>(&cached_normal_), sizeof(cached_normal_));
  uint8_t has_cached = 0;
  in.read(reinterpret_cast<char*>(&has_cached), sizeof(has_cached));
  has_cached_normal_ = has_cached != 0;
}

std::vector<double> BuildCdf(const std::vector<double>& weights) {
  std::vector<double> cdf(weights.size());
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    CG_CHECK(weights[i] >= 0.0);
    acc += weights[i];
    cdf[i] = acc;
  }
  return cdf;
}

size_t WeightedIndexFromTarget(const std::vector<double>& weights, double target) {
  CG_CHECK(!weights.empty());
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) {
      return i;
    }
  }
  // target >= total mass: either the draw rounded up onto the total, or the
  // tail of the walk lost mass to rounding. Return the last index that
  // actually carries weight so zero-weight buckets stay impossible outcomes.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

size_t CdfIndexFromTarget(const std::vector<double>& cdf, double target) {
  CG_CHECK(!cdf.empty());
  size_t lo = 0;
  size_t hi = cdf.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cdf[mid] <= target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // When target < cdf.back() the search lands on the first bucket with
  // cdf[lo] > target, whose lower edge is <= target — positive width by
  // construction. Otherwise (target rounded up onto the total) the search
  // parked on the last bucket regardless of its width; step back to the
  // last bucket whose upper edge actually rises above its lower edge.
  const double lower = lo == 0 ? 0.0 : cdf[lo - 1];
  if (cdf[lo] > target && cdf[lo] > lower) {
    return lo;
  }
  size_t i = cdf.size() - 1;
  while (i > 0 && !(cdf[i] > cdf[i - 1])) {
    --i;
  }
  return i;
}

}  // namespace cloudgen
