// Minimal CSV reader/writer for trace import/export. Supports plain comma
// separation (no quoting — trace files never contain embedded commas) plus a
// header row, which is enough for vmtable-style files. CRLF line endings are
// tolerated on read.
#ifndef SRC_UTIL_CSV_H_
#define SRC_UTIL_CSV_H_

#include <cstddef>
#include <fstream>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace cloudgen {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Check Ok() afterwards.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  bool Ok() const { return static_cast<bool>(out_); }

  // Writes one row; must have the same arity as the header.
  void WriteRow(const std::vector<std::string>& fields);

  // Flushes and closes, reporting any buffered write error.
  Status Finish();

 private:
  std::string path_;
  std::ofstream out_;
  size_t arity_;
};

class CsvReader {
 public:
  // Opens `path` and reads the header row. Check Ok() afterwards.
  explicit CsvReader(const std::string& path);

  bool Ok() const { return ok_; }
  const std::vector<std::string>& Header() const { return header_; }

  // Reads the next row into `fields`; returns false at EOF *or* on a
  // malformed row — distinguish via status(). Blank lines are skipped.
  bool ReadRow(std::vector<std::string>* fields);

  // Non-OK once a structurally bad row (wrong field count) is hit; names the
  // 1-based line number. Reading stops at the first such row.
  const Status& status() const { return status_; }

  // 1-based line number of the row most recently returned by ReadRow.
  size_t LineNumber() const { return line_; }

  // Index of a named column, or -1 if absent.
  int ColumnIndex(const std::string& name) const;

 private:
  std::ifstream in_;
  bool ok_ = false;
  size_t line_ = 0;
  Status status_;
  std::vector<std::string> header_;
};

}  // namespace cloudgen

#endif  // SRC_UTIL_CSV_H_
