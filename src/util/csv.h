// Minimal CSV reader/writer for trace import/export. Supports plain comma
// separation (no quoting — trace files never contain embedded commas) plus a
// header row, which is enough for vmtable-style files.
#ifndef SRC_UTIL_CSV_H_
#define SRC_UTIL_CSV_H_

#include <cstddef>
#include <fstream>
#include <string>
#include <vector>

namespace cloudgen {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Check Ok() afterwards.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  bool Ok() const { return static_cast<bool>(out_); }

  // Writes one row; must have the same arity as the header.
  void WriteRow(const std::vector<std::string>& fields);

 private:
  std::ofstream out_;
  size_t arity_;
};

class CsvReader {
 public:
  // Opens `path` and reads the header row. Check Ok() afterwards.
  explicit CsvReader(const std::string& path);

  bool Ok() const { return ok_; }
  const std::vector<std::string>& Header() const { return header_; }

  // Reads the next row into `fields`; returns false at EOF. Rows with a
  // different arity than the header are rejected via CG_CHECK.
  bool ReadRow(std::vector<std::string>* fields);

  // Index of a named column, or -1 if absent.
  int ColumnIndex(const std::string& name) const;

 private:
  std::ifstream in_;
  bool ok_ = false;
  std::vector<std::string> header_;
};

}  // namespace cloudgen

#endif  // SRC_UTIL_CSV_H_
