// Bounded retry with exponential backoff and deterministic jitter for
// *transient* (UNAVAILABLE) failures: segment-manifest rewrites under
// injected io_write faults, serve clients reconnecting to a draining or
// restarting server.
//
// The policy is explicit and the jitter stream is seeded, so a given policy
// produces the same backoff schedule on every run — retry behaviour is
// testable, never luck. Only UNAVAILABLE is retried: every other code means
// the operation would fail the same way again (bad input, quota rejection,
// corrupt data), and retrying it would just hide the bug for max_attempts
// iterations.
#ifndef SRC_UTIL_RETRY_H_
#define SRC_UTIL_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace cloudgen {

class CancelToken;

struct RetryPolicy {
  int max_attempts = 5;            // Total tries, including the first.
  double base_backoff_sec = 0.05;  // Sleep before the second attempt.
  double multiplier = 2.0;         // Backoff growth per attempt.
  double max_backoff_sec = 2.0;    // Cap on any single sleep.
  double jitter = 0.5;             // Each sleep is scaled by [1-j, 1+j).
  uint64_t jitter_seed = 0xB0FFEDull;
};

// True when `status` is worth retrying under a RetryPolicy (UNAVAILABLE:
// timeouts, dropped connections, injected io faults, a draining server).
bool IsRetryable(const Status& status);

// Jittered sleep before attempt `attempt + 1` (attempt is 1-based); draws
// one uniform from `rng`, so a fixed seed gives a fixed schedule.
double BackoffSeconds(const RetryPolicy& policy, int attempt, Rng& rng);

// Sleeps ~`seconds` in short slices, returning false early once `cancel`
// fires (nullptr never fires).
bool SleepWithCancel(double seconds, const CancelToken* cancel);

// Runs `op` up to policy.max_attempts times, sleeping a jittered backoff
// between attempts. Returns the first OK or non-retryable status as-is;
// after exhausting attempts returns ABORTED wrapping the last transient
// error ("gave up after retries", matching the divergence-watchdog
// convention). Cancellation during a backoff returns ABORTED immediately.
// Counters: retry.attempts (re-tries only), retry.giveups.
Status RetryVoid(const RetryPolicy& policy, const std::string& what,
                 const std::function<Status()>& op,
                 const CancelToken* cancel = nullptr);

namespace retry_internal {
void CountRetry(const std::string& what);
Status GiveUp(const RetryPolicy& policy, const std::string& what, const Status& last);
}  // namespace retry_internal

// StatusOr variant of RetryVoid with identical semantics.
template <typename T>
StatusOr<T> RetryOr(const RetryPolicy& policy, const std::string& what,
                    const std::function<StatusOr<T>()>& op,
                    const CancelToken* cancel = nullptr) {
  Rng rng(policy.jitter_seed);
  Status last = OkStatus();
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    StatusOr<T> result = op();
    if (result.ok() || !IsRetryable(result.status())) {
      return result;
    }
    last = result.status();
    if (attempt == policy.max_attempts) {
      break;
    }
    retry_internal::CountRetry(what);
    if (!SleepWithCancel(BackoffSeconds(policy, attempt, rng), cancel)) {
      return AbortedError(what + " cancelled while backing off: " + last.ToString());
    }
  }
  return retry_internal::GiveUp(policy, what, last);
}

}  // namespace cloudgen

#endif  // SRC_UTIL_RETRY_H_
