#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace cloudgen {

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) {
    return 0.0;
  }
  const double m = Mean(values);
  double acc = 0.0;
  for (double v : values) {
    acc += (v - m) * (v - m);
  }
  return acc / static_cast<double>(values.size() - 1);
}

double StdDev(const std::vector<double>& values) { return std::sqrt(Variance(values)); }

double QuantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  CG_CHECK(q >= 0.0 && q <= 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) {
    return sorted.back();
  }
  return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

double Quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return QuantileSorted(values, q);
}

Interval PredictionInterval(std::vector<double> samples, double coverage) {
  CG_CHECK(coverage > 0.0 && coverage < 1.0);
  std::sort(samples.begin(), samples.end());
  const double tail = (1.0 - coverage) / 2.0;
  return Interval{QuantileSorted(samples, tail), QuantileSorted(samples, 1.0 - tail)};
}

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

Histogram::Histogram(double lo, double hi, size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  CG_CHECK(bins > 0);
  CG_CHECK(hi > lo);
}

void Histogram::Add(double value) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<long>(std::floor((value - lo_) / width));
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

double Histogram::Proportion(size_t bin) const {
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

}  // namespace cloudgen
