// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) for validating
// checkpoint and model-file payloads against torn writes and bit rot.
#ifndef SRC_UTIL_CRC32_H_
#define SRC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cloudgen {

// One-shot CRC of a buffer.
uint32_t Crc32(const void* data, size_t size);
inline uint32_t Crc32(std::string_view data) { return Crc32(data.data(), data.size()); }

// Incremental form: seed with kCrc32Init, fold in chunks, finalize.
inline constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;
uint32_t Crc32Update(uint32_t state, const void* data, size_t size);
inline uint32_t Crc32Finalize(uint32_t state) { return state ^ 0xFFFFFFFFu; }

}  // namespace cloudgen

#endif  // SRC_UTIL_CRC32_H_
