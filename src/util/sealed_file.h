// A sealed binary artifact container used for model files and training
// checkpoints:
//
//   magic "CGSEAL01" | u32 version | u32 type tag | u64 extra |
//   u64 payload size | u32 payload CRC-32 | payload bytes
//
// Writes are atomic (temp + rename). Reads verify magic, version, tag, and
// CRC before returning the payload, so downstream parsers (network weight
// loaders) only ever see integrity-checked bytes — a torn or corrupt file
// surfaces as DATA_LOSS instead of an abort or silent garbage. `extra` is
// a caller-defined word (checkpoints store the next epoch there).
//
// ReadSealedFile is the read_truncate fault-injection point.
#ifndef SRC_UTIL_SEALED_FILE_H_
#define SRC_UTIL_SEALED_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace cloudgen {

// Type tags for every sealed artifact in the repository (one namespace so a
// mixed-up file path is always diagnosed as a tag mismatch, not data loss).
inline constexpr uint32_t kSealFlavorCheckpoint = 1;
inline constexpr uint32_t kSealLifetimeCheckpoint = 2;
inline constexpr uint32_t kSealFlavorModel = 100;
inline constexpr uint32_t kSealLifetimeModel = 101;
// Generation pipeline artifacts (src/trace/trace_sink.h,
// src/core/gen_checkpoint.h). A segment's `extra` word is its index in the
// manifest; a generation checkpoint's is its next-trace cursor.
inline constexpr uint32_t kSealTraceSegment = 102;
inline constexpr uint32_t kSealGenCheckpoint = 103;

Status WriteSealedFile(const std::string& path, uint32_t tag, uint64_t extra,
                       std::string_view payload);

// `extra` may be nullptr when the caller does not use it.
Status ReadSealedFile(const std::string& path, uint32_t tag, uint64_t* extra,
                      std::string* payload);

}  // namespace cloudgen

#endif  // SRC_UTIL_SEALED_FILE_H_
