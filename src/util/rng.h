// Deterministic pseudo-random number generation for all cloudgen components.
//
// We implement xoshiro256++ (Blackman & Vigna) rather than relying on
// std::mt19937 so that streams are fast, splittable (via Jump/Fork), and
// bit-for-bit reproducible across standard libraries. All sampling helpers
// needed by the workload models live here: uniform, normal, exponential,
// Poisson (inversion + PTRS for large means), geometric, categorical, and
// Bernoulli draws.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace cloudgen {

// xoshiro256++ generator with distribution sampling helpers.
//
// A default-constructed Rng is seeded with a fixed constant so that every
// experiment in the repository is reproducible unless a seed is supplied.
class Rng {
 public:
  using result_type = uint64_t;

  Rng() : Rng(0x9E3779B97F4A7C15ull) {}
  explicit Rng(uint64_t seed);

  // UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ull; }
  uint64_t operator()() { return Next(); }

  // Raw 64 random bits.
  uint64_t Next();

  // Creates an independent stream by copying this generator and jumping it
  // 2^128 steps ahead; `this` is also advanced so successive Fork() calls
  // yield distinct streams.
  Rng Fork();

  // Deterministic seed-derived stream: a pure function of (seed, stream_id),
  // independent of any generator's consumption state. Work unit i of a
  // parallel job draws from Stream(base, i), so the sampled values depend
  // only on the unit index — never on which thread ran the unit or in what
  // order — making `--threads N` bitwise-identical to `--threads 1`.
  // The id is diffused through two splitmix64 rounds before being folded
  // into the seed, so adjacent ids yield unrelated xoshiro states.
  static Rng Stream(uint64_t seed, uint64_t stream_id);

  // Uniform double in [0, 1).
  double NextDouble();
  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);
  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (cached second variate).
  double Normal();
  double Normal(double mean, double stddev);

  // Exponential with the given rate (lambda > 0).
  double Exponential(double rate);

  // Poisson draw with mean `mu` >= 0. Uses Knuth inversion for small mu and
  // the PTRS transformed-rejection method (Hörmann, 1993) for mu >= 10.
  int64_t Poisson(double mu);

  // Geometric number of failures before the first success; support {0,1,...}.
  // Requires 0 < p <= 1.
  int64_t Geometric(double p);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Samples an index in [0, weights.size()) proportionally to non-negative
  // weights. Degenerate weight vectors (all-zero, or a NaN/inf total, e.g.
  // a corrupted softmax surfaced by MaxShiftedExp's zero-fill) fall back to
  // a uniform draw over all indices rather than aborting, so an unguarded
  // (--guard off) generation run stays in range; both paths consume exactly
  // one draw, keeping downstream stream state independent of weight health.
  size_t Categorical(const std::vector<double>& weights);

  // Samples an index from cumulative weights (inclusive ascending prefix
  // sums). O(log n); useful when the same distribution is sampled many
  // times. Zero-width buckets (repeated CDF values) are never selected —
  // including when the scaled draw rounds up to exactly the total mass,
  // which previously skewed into a zero-weight final bucket. Degenerate
  // CDFs (non-positive or non-finite total) use the same uniform fallback
  // as Categorical.
  size_t CategoricalFromCdf(const std::vector<double>& cdf);

  // Exact binary state serialization (including the cached Box-Muller
  // variate), so checkpoint/resume reproduces the stream bit-for-bit.
  void SaveState(std::ostream& out) const;
  void LoadState(std::istream& in);

 private:
  uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;

  void Jump();
};

// Builds the inclusive prefix-sum of `weights` for CategoricalFromCdf.
std::vector<double> BuildCdf(const std::vector<double>& weights);

// Deterministic index-selection halves of the categorical samplers, exposed
// so exact-boundary cases are testable without steering the generator state.
//
// WeightedIndexFromTarget walks `weights` subtracting from `target`: a
// target landing exactly on a bucket boundary selects the next bucket with
// positive weight, and target >= total mass (floating-point round-up of
// u * total onto the total) returns the LAST positive-weight index instead
// of sliding into trailing zero-weight buckets. Requires target >= 0.
size_t WeightedIndexFromTarget(const std::vector<double>& weights, double target);

// CdfIndexFromTarget binary-searches an inclusive prefix-sum CDF for the
// first bucket whose upper edge exceeds `target`; any selected bucket has
// positive width by construction. When target >= cdf.back() (the same
// round-up case) it returns the last positive-width bucket.
size_t CdfIndexFromTarget(const std::vector<double>& cdf, double target);

}  // namespace cloudgen

#endif  // SRC_UTIL_RNG_H_
