// Declarative fault plans: scheduled, composable fault-injection rules that
// go beyond flat per-kind probabilities.
//
// A plan is a list of rules. Each rule names a fault kind, exactly one
// trigger, and an optional scope filter:
//
//   triggers (exactly one per rule)
//     kind:P            degenerate sugar for `kind prob=P` (the legacy
//                       CLOUDGEN_FAULT spec parses unchanged as a plan)
//     prob=P            fire each matching call with probability P
//     at=N              one-shot: fire exactly on the Nth matching call
//     from=A to=B       call-count window: fire on matching calls A..B
//                       (inclusive, 1-based); `prob=P` may thin the window
//                       (default 1.0 = every call in the window)
//     every=N burst=B   periodic bursts: of every N matching calls, fire
//                       the first B (default burst=1)
//
//   scope filters (all optional; a filter left unset matches everything)
//     site=TAG          only calls made under ScopedFaultSite(TAG) — the
//                       instrumented sites tag themselves `serve`, `sink`,
//                       `gen`, `client`
//     tenant=T          only calls made on behalf of tenant T
//     shard=N           only calls made from generation shard N
//
// Entries are separated by commas or newlines; `#` starts a line comment.
// Example plan (a composed chaos scenario):
//
//   # drops on both sides, an ENOSPC window on serve checkpoints,
//   # one wedged stream, periodic accept-fd pressure
//   net_conn_drop prob=0.02
//   net_partial_write prob=0.02
//   io_enospc from=1 to=4 site=serve
//   stream_stall at=3 site=serve
//   fd_exhaust every=40
//
// Rule call counters count only *matching* calls (kind + scope), and every
// probabilistic trigger draws from the injector's single deterministic
// stream, so a plan + seed reproduces the same schedule run over run
// (single-threaded; under the multi-threaded daemon the interleaving of
// calls across connections is scheduler-dependent, but one-shots still fire
// exactly once and windows still cover exactly their call range).
#ifndef SRC_UTIL_FAULT_PLAN_H_
#define SRC_UTIL_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/fault.h"
#include "src/util/status.h"

namespace cloudgen {

enum class FaultTrigger : int {
  kProb = 0,    // Bernoulli(probability) per matching call.
  kAt = 1,      // One-shot on the at-th matching call.
  kWindow = 2,  // Calls in [from, to], thinned by probability.
  kEvery = 3,   // First `burst` of every `every` matching calls.
};

struct FaultRule {
  FaultKind kind = FaultKind::kIoWrite;
  FaultTrigger trigger = FaultTrigger::kProb;
  double probability = 1.0;  // kProb always; kWindow thinning (1.0 = all).
  uint64_t at = 0;           // kAt: 1-based matching-call index.
  uint64_t from = 1;         // kWindow: inclusive 1-based window start.
  uint64_t to = 0;           // kWindow: inclusive window end.
  uint64_t every = 0;        // kEvery: period in matching calls.
  uint64_t burst = 1;        // kEvery: calls fired per period.

  // Scope filters; empty / negative = match any.
  std::string site;
  std::string tenant;
  int64_t shard = -1;

  // Runtime state, owned by the FaultInjector holding the rule.
  uint64_t calls = 0;  // Matching calls seen since Configure().
  bool fired = false;  // kAt: the one-shot has fired.

  bool MatchesScope(const FaultScope& scope) const;
  // Human-readable rule summary for the arming log line.
  std::string ToString() const;
};

struct FaultPlan {
  std::vector<FaultRule> rules;
  bool empty() const { return rules.empty(); }
};

// Parses the grammar above. An empty/whitespace/comment-only text yields an
// empty (disarmed) plan.
Status ParseFaultPlan(const std::string& text, FaultPlan* plan);

// Reads `path` and parses it as a plan.
Status LoadFaultPlanFile(const std::string& path, FaultPlan* plan);

// Replays the plan's schedule twice on a private injector — `calls`
// ShouldInject calls per fault kind, cycling through every scope the plan
// mentions — and fails unless both replays produce identical per-kind
// injected counts. This is the single-threaded determinism contract a chaos
// run relies on; `cloudgen chaos` runs it before arming the real plan.
Status VerifyPlanDeterminism(const FaultPlan& plan, uint64_t seed,
                             uint64_t calls);

}  // namespace cloudgen

#endif  // SRC_UTIL_FAULT_PLAN_H_
