#include "src/util/metrics_json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/util/strings.h"

namespace cloudgen {
namespace {

// Cursor over the input with the few primitives a JSON grammar needs. All
// Parse* methods return false on malformed input; the caller turns that into
// one INVALID_ARGUMENT with the byte offset.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  size_t offset() const { return pos_; }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return false;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // The writer only escapes control characters; anything else is
          // preserved as a literal byte when it fits.
          out->push_back(code < 0x100 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return false;
      }
    }
    return false;  // Unterminated.
  }

  bool ParseNumber(double* out) {
    SkipWs();
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      // Accept the writer's non-finite spellings (%.17g emits inf/nan).
      if (text_.substr(pos_).rfind("inf", 0) == 0) {
        pos_ += 3;
        *out = HUGE_VAL;
        return true;
      }
      if (text_.substr(pos_).rfind("nan", 0) == 0) {
        pos_ += 3;
        *out = NAN;
        return true;
      }
      return false;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token == "-inf") {
      *out = -HUGE_VAL;
      return true;
    }
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  // Skips any well-formed JSON value (unknown keys / future schema fields).
  bool SkipValue() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (c == '{') {
      ++pos_;
      if (Consume('}')) {
        return true;
      }
      do {
        std::string key;
        if (!ParseString(&key) || !Consume(':') || !SkipValue()) {
          return false;
        }
      } while (Consume(','));
      return Consume('}');
    }
    if (c == '[') {
      ++pos_;
      if (Consume(']')) {
        return true;
      }
      do {
        if (!SkipValue()) {
          return false;
        }
      } while (Consume(','));
      return Consume(']');
    }
    for (const char* literal : {"true", "false", "null"}) {
      const std::string_view lit(literal);
      if (text_.substr(pos_).rfind(lit, 0) == 0) {
        pos_ += lit.size();
        return true;
      }
    }
    double ignored = 0.0;
    return ParseNumber(&ignored);
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

bool ParseNumberArray(JsonCursor* cur, std::vector<double>* out) {
  out->clear();
  if (!cur->Consume('[')) {
    return false;
  }
  if (cur->Consume(']')) {
    return true;
  }
  do {
    double v = 0.0;
    if (!cur->ParseNumber(&v)) {
      return false;
    }
    out->push_back(v);
  } while (cur->Consume(','));
  return cur->Consume(']');
}

bool ParseHistogram(JsonCursor* cur, obs::HistogramData* out) {
  if (!cur->Consume('{')) {
    return false;
  }
  if (cur->Consume('}')) {
    return true;
  }
  do {
    std::string key;
    if (!cur->ParseString(&key) || !cur->Consume(':')) {
      return false;
    }
    if (key == "edges") {
      if (!ParseNumberArray(cur, &out->edges)) {
        return false;
      }
    } else if (key == "counts") {
      std::vector<double> counts;
      if (!ParseNumberArray(cur, &counts)) {
        return false;
      }
      out->counts.clear();
      out->counts.reserve(counts.size());
      for (double c : counts) {
        out->counts.push_back(c < 0.0 ? 0 : static_cast<uint64_t>(c));
      }
    } else if (key == "count") {
      double v = 0.0;
      if (!cur->ParseNumber(&v)) {
        return false;
      }
      out->count = v < 0.0 ? 0 : static_cast<uint64_t>(v);
    } else if (key == "sum") {
      if (!cur->ParseNumber(&out->sum)) {
        return false;
      }
    } else if (!cur->SkipValue()) {
      return false;
    }
  } while (cur->Consume(','));
  return cur->Consume('}');
}

bool ParseSeries(JsonCursor* cur, std::vector<std::pair<double, double>>* out) {
  out->clear();
  if (!cur->Consume('[')) {
    return false;
  }
  if (cur->Consume(']')) {
    return true;
  }
  do {
    std::vector<double> point;
    if (!ParseNumberArray(cur, &point) || point.size() != 2) {
      return false;
    }
    out->emplace_back(point[0], point[1]);
  } while (cur->Consume(','));
  return cur->Consume(']');
}

// Parses one of the four top-level sections ({name: <leaf>}).
template <typename LeafFn>
bool ParseSection(JsonCursor* cur, const LeafFn& leaf) {
  if (!cur->Consume('{')) {
    return false;
  }
  if (cur->Consume('}')) {
    return true;
  }
  do {
    std::string name;
    if (!cur->ParseString(&name) || !cur->Consume(':') || !leaf(name)) {
      return false;
    }
  } while (cur->Consume(','));
  return cur->Consume('}');
}

}  // namespace

Status ParseMetricsSnapshot(std::string_view json, obs::RegistrySnapshot* out) {
  *out = obs::RegistrySnapshot{};
  JsonCursor cur(json);
  bool schema_ok = false;
  bool parse_ok = [&] {
    if (!cur.Consume('{')) {
      return false;
    }
    if (cur.Consume('}')) {
      return true;
    }
    do {
      std::string key;
      if (!cur.ParseString(&key) || !cur.Consume(':')) {
        return false;
      }
      if (key == "schema") {
        std::string schema;
        if (!cur.ParseString(&schema)) {
          return false;
        }
        schema_ok = schema == "cloudgen.metrics.v1";
      } else if (key == "counters") {
        if (!ParseSection(&cur, [&](const std::string& name) {
              double v = 0.0;
              if (!cur.ParseNumber(&v)) {
                return false;
              }
              out->counters[name] = v < 0.0 ? 0 : static_cast<uint64_t>(v);
              return true;
            })) {
          return false;
        }
      } else if (key == "gauges") {
        if (!ParseSection(&cur, [&](const std::string& name) {
              return cur.ParseNumber(&out->gauges[name]);
            })) {
          return false;
        }
      } else if (key == "histograms") {
        if (!ParseSection(&cur, [&](const std::string& name) {
              return ParseHistogram(&cur, &out->histograms[name]);
            })) {
          return false;
        }
      } else if (key == "series") {
        if (!ParseSection(&cur, [&](const std::string& name) {
              return ParseSeries(&cur, &out->series[name]);
            })) {
          return false;
        }
      } else if (!cur.SkipValue()) {
        return false;
      }
    } while (cur.Consume(','));
    return cur.Consume('}') && cur.AtEnd();
  }();
  if (!parse_ok) {
    return InvalidArgumentError(
        StrFormat("malformed metrics JSON near byte %zu", cur.offset()));
  }
  if (!schema_ok) {
    return InvalidArgumentError("missing or unknown schema tag (want cloudgen.metrics.v1)");
  }
  for (const auto& [name, hist] : out->histograms) {
    if (hist.counts.size() != hist.edges.size() + 1) {
      return InvalidArgumentError(
          StrFormat("histogram %s: %zu counts for %zu edges", name.c_str(),
                    hist.counts.size(), hist.edges.size()));
    }
  }
  return OkStatus();
}

}  // namespace cloudgen
