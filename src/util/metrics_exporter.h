// Rolling metrics exporter: a background thread that periodically writes
// atomic `cloudgen.metrics.v1` snapshots so crashes and long-running `serve`
// daemons leave a telemetry trail instead of a single exit-time file.
//
// Each tick the exporter
//   1. samples the thread-pool pressure gauges (queue depth, busy workers,
//      utilization) so soak runs show live saturation rather than whatever
//      the last coarse write point left behind,
//   2. publishes the fidelity monitor's drift gauges (no-op when disabled),
//   3. derives `<hist>.p50/.p95/.p99` gauges from every non-empty histogram
//      (`gen.step_ns`, serve verb latencies, ...), and
//   4. writes the registry snapshot to `<base_path>.roll-NNNNNN.json` via the
//      temp+rename path (WriteFileAtomic), one sequence-numbered file per
//      tick so a telemetry trail is a directory listing, not a race.
//
// One snapshot is written immediately on Start and a final one on Stop, so
// even a run shorter than the interval leaves at least two trail points.
#ifndef SRC_UTIL_METRICS_EXPORTER_H_
#define SRC_UTIL_METRICS_EXPORTER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace cloudgen {

class RollingMetricsExporter {
 public:
  struct Options {
    // Snapshot files are "<base_path>.roll-NNNNNN.json".
    std::string base_path;
    double interval_sec = 1.0;
  };

  explicit RollingMetricsExporter(Options options);
  ~RollingMetricsExporter();  // Stops (final snapshot) if still running.

  RollingMetricsExporter(const RollingMetricsExporter&) = delete;
  RollingMetricsExporter& operator=(const RollingMetricsExporter&) = delete;

  // Writes snapshot 0 and launches the interval thread. Idempotent.
  void Start();
  // Stops the thread and writes one final snapshot. Idempotent.
  void Stop();

  // Snapshots written so far (including the Start and Stop ones).
  uint64_t SnapshotsWritten() const;

 private:
  void Loop();
  void WriteSnapshotOnce();

  Options options_;
  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stop_requested_ = false;
  uint64_t seq_ = 0;
};

}  // namespace cloudgen

#endif  // SRC_UTIL_METRICS_EXPORTER_H_
