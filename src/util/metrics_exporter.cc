#include "src/util/metrics_exporter.h"

#include <chrono>
#include <utility>

#include "src/obs/fidelity_monitor.h"
#include "src/obs/metrics.h"
#include "src/util/atomic_file.h"
#include "src/util/log.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace cloudgen {

RollingMetricsExporter::RollingMetricsExporter(Options options)
    : options_(std::move(options)) {}

RollingMetricsExporter::~RollingMetricsExporter() { Stop(); }

void RollingMetricsExporter::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) {
      return;
    }
    running_ = true;
    stop_requested_ = false;
  }
  WriteSnapshotOnce();
  thread_ = std::thread([this] { Loop(); });
}

void RollingMetricsExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      return;
    }
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  WriteSnapshotOnce();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

uint64_t RollingMetricsExporter::SnapshotsWritten() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

void RollingMetricsExporter::Loop() {
  const auto interval = std::chrono::duration<double>(
      options_.interval_sec > 0.0 ? options_.interval_sec : 1.0);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
        return;  // Stop writes the final snapshot after the join.
      }
    }
    WriteSnapshotOnce();
  }
}

void RollingMetricsExporter::WriteSnapshotOnce() {
  static obs::Counter& written =
      obs::Registry::Global().GetCounter("obs.export.snapshots");
  static obs::Counter& failures =
      obs::Registry::Global().GetCounter("obs.export.failures");

  // Refresh sampled state before snapshotting: pool pressure, fidelity
  // drift, histogram percentiles. All observe-only.
  GlobalThreadPool().PublishGauges();
  obs::FidelityMonitor::Global().PublishDrift();
  obs::Registry::Global().UpdatePercentileGauges();

  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = seq_++;
  }
  const std::string path =
      StrFormat("%s.roll-%06llu.json", options_.base_path.c_str(),
                static_cast<unsigned long long>(seq));
  const Status status = WriteFileAtomic(
      path, [](std::ostream& out) { obs::Registry::Global().WriteJson(out); });
  if (!status.ok()) {
    failures.Add(1);
    CG_LOG_WARN("rolling metrics snapshot failed: " + status.ToString());
    return;
  }
  written.Add(1);
}

}  // namespace cloudgen
