// Descriptive statistics used by evaluation code: means, variances, quantiles,
// prediction-interval helpers, and streaming accumulators.
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace cloudgen {

// Arithmetic mean; returns 0 for empty input.
double Mean(const std::vector<double>& values);

// Unbiased sample variance (n-1 denominator); returns 0 for n < 2.
double Variance(const std::vector<double>& values);

double StdDev(const std::vector<double>& values);

// Linear-interpolation quantile (type 7, as in NumPy default). `q` in [0, 1].
// The input need not be sorted. Returns 0 for empty input.
double Quantile(std::vector<double> values, double q);

// Quantile for data already sorted ascending.
double QuantileSorted(const std::vector<double>& sorted, double q);

// Central prediction interval [lo, hi] covering `coverage` (e.g. 0.9 → 5th and
// 95th percentiles) of the samples.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double v) const { return v >= lo && v <= hi; }
};
Interval PredictionInterval(std::vector<double> samples, double coverage);

// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);
  size_t Count() const { return n_; }
  double Mean() const { return n_ > 0 ? mean_ : 0.0; }
  double Variance() const;  // Unbiased; 0 for n < 2.
  double StdDev() const;
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-bin histogram over [lo, hi); values outside are clamped to the edge
// bins. Used for reuse-distance and FFAR summaries.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double value);
  size_t TotalCount() const { return total_; }
  size_t BinCount(size_t bin) const { return counts_.at(bin); }
  size_t NumBins() const { return counts_.size(); }
  // Fraction of mass in `bin`; 0 if the histogram is empty.
  double Proportion(size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace cloudgen

#endif  // SRC_UTIL_STATS_H_
