// Deterministic fault injection for exercising cloudgen's recovery paths.
//
// Armed from the environment:
//   CLOUDGEN_FAULT=io_write:0.3,nan_grad:0.1     # kind:probability pairs
//   CLOUDGEN_FAULT_SEED=1234                     # optional; fixed default
//
// Kinds:
//   io_write      Commit of an atomic file write fails (the temp file is
//                 removed; any previous file at the destination survives).
//   read_truncate A checkpoint/model payload read behaves as if truncated.
//   nan_grad      A NaN is planted in the gradients before an optimizer step.
//   gen_nan_logit A NaN is planted in a generation step's logits right after
//                 the packed fast-path network step, exercising the numeric
//                 guards (src/core/gen_guard.h). The guard's fallback path
//                 recomputes through the reference route, which is *not*
//                 poisoned, so --guard=fallback completes bitwise-identically
//                 to a fault-free run.
//   gen_write_kill The process _Exits with kFaultKillExitCode in the window
//                 between sealing a trace segment and updating the segment
//                 manifest — the worst-ordered real crash the resume path
//                 must absorb (the orphan segment is regenerated
//                 identically on --resume-gen).
//   net_accept_fail  An accepted serve connection is torn down before the
//                 handler sees it — accept(2) failing under fd pressure.
//                 The daemon must count it and keep accepting, never exit.
//   net_partial_write  A socket write delivers only a prefix of the frame
//                 and the connection dies — the peer observes a truncated
//                 frame followed by EOF. Clients must treat it as a
//                 reconnect-and-resume, never as data.
//   net_conn_drop A socket read/write fails as if the peer vanished
//                 mid-stream. Exercises the serve client's retry/backoff
//                 and offset-resume path.
//
// Injection sites query ShouldInject(kind); draws come from a private
// deterministic stream, so a given spec + seed yields the same fault
// schedule on every run — tests assert on recovery behaviour, not luck.
// (Under the multi-threaded serve daemon the *interleaving* of draws across
// connections is scheduler-dependent; tests there assert recovery and byte
// identity, not the exact fault schedule.) The injector is a process-wide
// singleton and thread-safe; tests reconfigure it directly via
// Configure()/Disarm() instead of the environment.
#ifndef SRC_UTIL_FAULT_H_
#define SRC_UTIL_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace cloudgen {

enum class FaultKind : int {
  kIoWrite = 0,
  kReadTruncate = 1,
  kNanGrad = 2,
  kGenNanLogit = 3,
  kGenWriteKill = 4,
  kNetAcceptFail = 5,
  kNetPartialWrite = 6,
  kNetConnDrop = 7,
};
inline constexpr int kNumFaultKinds = 8;

// Exit code used by the gen_write_kill fault (and asserted by the kill/resume
// harness). Outside the CLI's real exit-code namespace (0-6).
inline constexpr int kFaultKillExitCode = 42;

const char* FaultKindName(FaultKind kind);

class FaultInjector {
 public:
  // Process-wide injector, armed once from CLOUDGEN_FAULT on first use.
  static FaultInjector& Global();

  // Parses "kind:prob[,kind:prob...]"; probabilities in [0, 1]. An empty
  // spec disarms everything. Replaces the previous configuration and resets
  // the injection counters and the deterministic stream.
  Status Configure(const std::string& spec, uint64_t seed = kDefaultSeed);

  // Disarms all kinds (used by tests to restore a clean state).
  void Disarm();

  // True when a fault of `kind` fires at this site. Advances the
  // deterministic stream only when `kind` is armed.
  bool ShouldInject(FaultKind kind);

  bool Armed(FaultKind kind) const;
  // Faults fired since the last Configure()/Disarm().
  size_t InjectedCount(FaultKind kind) const;

  static constexpr uint64_t kDefaultSeed = 0x5EEDFA17C0FFEEull;

 private:
  FaultInjector();

  // Guards the draw stream and counters: serve connection handlers query
  // injection sites concurrently. Armed() and the p<=0 fast path stay
  // lock-free (configuration changes only happen while quiescent).
  mutable std::mutex mu_;
  double probability_[kNumFaultKinds] = {};
  size_t injected_[kNumFaultKinds] = {};
  Rng rng_;
};

}  // namespace cloudgen

#endif  // SRC_UTIL_FAULT_H_
