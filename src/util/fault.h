// Deterministic fault injection for exercising cloudgen's recovery paths.
//
// Armed from the environment:
//   CLOUDGEN_FAULT=io_write:0.3,nan_grad:0.1     # flat kind:probability pairs
//   CLOUDGEN_FAULT_PLAN=/path/to/plan            # declarative fault plan file
//   CLOUDGEN_FAULT_SEED=1234                     # optional; fixed default
//
// CLOUDGEN_FAULT_PLAN takes precedence over CLOUDGEN_FAULT; the flat spec is
// itself valid plan syntax (degenerate sugar for `kind prob=P` rules). The
// full plan grammar — one-shots, call-count windows, periodic bursts,
// site/tenant/shard scope arming — lives in src/util/fault_plan.h.
//
// Kinds:
//   io_write      Commit of an atomic file write fails (the temp file is
//                 removed; any previous file at the destination survives).
//   read_truncate A checkpoint/model payload read behaves as if truncated.
//   nan_grad      A NaN is planted in the gradients before an optimizer step.
//   gen_nan_logit A NaN is planted in a generation step's logits right after
//                 the packed fast-path network step, exercising the numeric
//                 guards (src/core/gen_guard.h). The guard's fallback path
//                 recomputes through the reference route, which is *not*
//                 poisoned, so --guard=fallback completes bitwise-identically
//                 to a fault-free run.
//   gen_write_kill The process _Exits with kFaultKillExitCode in the window
//                 between sealing a trace segment and updating the segment
//                 manifest — the worst-ordered real crash the resume path
//                 must absorb (the orphan segment is regenerated
//                 identically on --resume-gen).
//   net_accept_fail  An accepted serve connection is torn down before the
//                 handler sees it — accept(2) failing under fd pressure.
//                 The daemon must count it and keep accepting, never exit.
//   net_partial_write  A socket write delivers only a prefix of the frame
//                 and the connection dies — the peer observes a truncated
//                 frame followed by EOF. Clients must treat it as a
//                 reconnect-and-resume, never as data.
//   net_conn_drop A socket read/write fails as if the peer vanished
//                 mid-stream. Exercises the serve client's retry/backoff
//                 and offset-resume path.
//   io_enospc     An atomic file commit fails as if the disk were full
//                 (RESOURCE_EXHAUSTED). Segmented generation parks at the
//                 seal boundary (exit 5, --resume-gen completes
//                 byte-identically once space returns); the serve daemon
//                 flips to degraded and sheds new OPENs with retryable
//                 UNAVAILABLE.
//   fd_exhaust    accept(2) fails as if the process were out of file
//                 descriptors (EMFILE). The accept loop must back off
//                 exponentially instead of spinning, and the daemon reports
//                 degraded health while the pressure lasts.
//   stream_stall  A serve stream's generation step wedges (makes no
//                 progress) until the supervisor watchdog cuts it. The
//                 session is checkpointed and the client resumes
//                 byte-identically on reconnect.
//
// Injection sites query ShouldInject(kind); draws come from a private
// deterministic stream, so a given spec + seed yields the same fault
// schedule on every run — tests assert on recovery behaviour, not luck.
// (Under the multi-threaded serve daemon the *interleaving* of draws across
// connections is scheduler-dependent; tests there assert recovery and byte
// identity, not the exact fault schedule.) The injector is a process-wide
// singleton and thread-safe; tests reconfigure it directly via
// Configure()/Disarm() instead of the environment.
#ifndef SRC_UTIL_FAULT_H_
#define SRC_UTIL_FAULT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace cloudgen {

enum class FaultKind : int {
  kIoWrite = 0,
  kReadTruncate = 1,
  kNanGrad = 2,
  kGenNanLogit = 3,
  kGenWriteKill = 4,
  kNetAcceptFail = 5,
  kNetPartialWrite = 6,
  kNetConnDrop = 7,
  kIoEnospc = 8,
  kFdExhaust = 9,
  kStreamStall = 10,
};
inline constexpr int kNumFaultKinds = 11;

// Exit code used by the gen_write_kill fault (and asserted by the kill/resume
// harness). Outside the CLI's real exit-code namespace (0-8).
inline constexpr int kFaultKillExitCode = 42;

const char* FaultKindName(FaultKind kind);
// Parses a fault kind name; returns false for unknown names.
bool ParseFaultKindName(std::string_view name, FaultKind* kind);

// The ambient scope an injection-site call is made under, used by plan rules
// with site=/tenant=/shard= filters. Thread-local: each thread carries its
// own scope, set by the RAII ScopedFaultSite below at the boundaries where
// work changes hats (serve session threads, sink seals, generation shards).
struct FaultScope {
  const char* site = "";  // "" = unscoped. Tags: serve, sink, gen, client.
  std::string tenant;     // "" = no tenant attached.
  int64_t shard = -1;     // <0 = no shard attached.
};

// Tags all ShouldInject calls made by this thread while alive. Nests;
// the innermost scope wins, and the previous scope is restored on exit.
// `site` must outlive the scope (string literals at the call sites).
class ScopedFaultSite {
 public:
  explicit ScopedFaultSite(const char* site, std::string tenant = "",
                           int64_t shard = -1);
  ~ScopedFaultSite();
  ScopedFaultSite(const ScopedFaultSite&) = delete;
  ScopedFaultSite& operator=(const ScopedFaultSite&) = delete;

 private:
  FaultScope saved_;
};

// This thread's current fault scope.
const FaultScope& CurrentFaultScope();

struct FaultPlan;  // src/util/fault_plan.h

class FaultInjector {
 public:
  // Process-wide injector, armed once from CLOUDGEN_FAULT_PLAN /
  // CLOUDGEN_FAULT on first use.
  static FaultInjector& Global();

  // Private injectors for tests and plan-determinism replays. Most code
  // wants Global(); a private instance shares nothing but the thread-local
  // scope.
  FaultInjector();
  ~FaultInjector();

  // Parses `spec` as a fault plan — the legacy "kind:prob[,kind:prob...]"
  // spec and the full plan grammar are both accepted. An empty spec disarms
  // everything. Replaces the previous configuration and resets the injection
  // counters and the deterministic stream.
  Status Configure(const std::string& spec, uint64_t seed = kDefaultSeed);

  // Installs an already-parsed plan. Same reset semantics as Configure().
  Status ConfigurePlan(const FaultPlan& plan, uint64_t seed = kDefaultSeed);

  // Disarms all kinds (used by tests to restore a clean state).
  void Disarm();

  // True when a fault of `kind` fires at this site under the calling
  // thread's current scope. Every rule matching (kind, scope) sees the call:
  // rule call-counters advance and probabilistic rules draw from the
  // deterministic stream whether or not an earlier rule already fired.
  bool ShouldInject(FaultKind kind);

  // Lock-free: one relaxed atomic load against the armed-kind bitmask. True
  // when any rule targets `kind`, regardless of scope filters.
  bool Armed(FaultKind kind) const;
  // Faults fired since the last Configure()/Disarm().
  size_t InjectedCount(FaultKind kind) const;

  static constexpr uint64_t kDefaultSeed = 0x5EEDFA17C0FFEEull;

 private:
  // Guards the rules, the draw stream and the counters: serve connection
  // handlers query injection sites concurrently. Armed() and the
  // disarmed-kind fast path in ShouldInject read armed_mask_ without the
  // lock; Configure()/Disarm() publish the mask with release stores after
  // swapping the rules under the lock.
  mutable std::mutex mu_;
  std::atomic<uint32_t> armed_mask_{0};
  std::unique_ptr<FaultPlan> plan_;
  size_t injected_[kNumFaultKinds] = {};
  Rng rng_;
};

}  // namespace cloudgen

#endif  // SRC_UTIL_FAULT_H_
