#include "src/util/log.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "src/obs/metrics.h"

namespace cloudgen {
namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("CLOUDGEN_LOG");
  if (env == nullptr) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(env, "debug") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(env, "info") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(env, "warn") == 0) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(env, "error") == 0) {
    return LogLevel::kError;
  }
  if (std::strcmp(env, "off") == 0) {
    return LogLevel::kOff;
  }
  // InitialLevel runs once (function-local static init), so this warns once
  // per process instead of silently ignoring the typo.
  std::fprintf(stderr,
               "[WARN] unknown CLOUDGEN_LOG value \"%s\" "
               "(expected debug|info|warn|error|off); using info\n",
               env);
  return LogLevel::kInfo;
}

LogLevel& MutableLevel() {
  static LogLevel level = InitialLevel();
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

// "2026-08-07T12:34:56.789Z" into `buf` (UTC, millisecond resolution).
void FormatTimestamp(char* buf, size_t size) {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm{};
  gmtime_r(&ts.tv_sec, &tm);
  char date[32];
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(buf, size, "%s.%03ldZ", date, ts.tv_nsec / 1000000L);
}

}  // namespace

LogLevel GetLogLevel() { return MutableLevel(); }

void SetLogLevel(LogLevel level) { MutableLevel() = level; }

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(MutableLevel());
}

void LogMessage(LogLevel level, const std::string& message) {
  if (!LogEnabled(level)) {
    return;
  }
  char stamp[48];
  FormatTimestamp(stamp, sizeof(stamp));
  std::fprintf(stderr, "%s [%s] [t%u] %s\n", stamp, LevelName(level), obs::ThreadId(),
               message.c_str());
}

void LogMessagef(LogLevel level, const char* fmt, ...) {
  if (!LogEnabled(level)) {
    return;
  }
  char message[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(message, sizeof(message), fmt, args);
  va_end(args);
  char stamp[48];
  FormatTimestamp(stamp, sizeof(stamp));
  std::fprintf(stderr, "%s [%s] [t%u] %s\n", stamp, LevelName(level), obs::ThreadId(),
               message);
}

}  // namespace cloudgen
