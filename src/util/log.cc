#include "src/util/log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cloudgen {
namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("CLOUDGEN_LOG");
  if (env == nullptr) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(env, "debug") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(env, "info") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(env, "warn") == 0) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(env, "error") == 0) {
    return LogLevel::kError;
  }
  if (std::strcmp(env, "off") == 0) {
    return LogLevel::kOff;
  }
  return LogLevel::kInfo;
}

LogLevel& MutableLevel() {
  static LogLevel level = InitialLevel();
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return MutableLevel(); }

void SetLogLevel(LogLevel level) { MutableLevel() = level; }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(MutableLevel())) {
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace cloudgen
