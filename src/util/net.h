// Minimal POSIX TCP wrappers for the serve daemon and its client.
//
// Everything here is Status-first and deadline-aware: blocking calls are
// implemented as poll(2) slices of <=100ms so every wait observes both the
// caller's timeout and an optional CancelToken. There are no hidden infinite
// blocks — a hung peer surfaces as UNAVAILABLE after the timeout, and a
// SIGTERM-driven drain interrupts accept/read/write loops within one slice.
//
// Error taxonomy (matching docs/ROBUSTNESS.md):
//   UNAVAILABLE  transient network conditions: timeouts, connection reset,
//                peer closed, refused connections, injected net_* faults.
//                Retryable under util/retry.h.
//   ABORTED      the CancelToken fired mid-operation (drain/SIGTERM).
//   INVALID_ARGUMENT / INTERNAL  caller bugs or unexpected syscall failures.
//
// Fault injection (CLOUDGEN_FAULT, src/util/fault.h):
//   net_accept_fail   an accepted connection is closed before being returned.
//   net_conn_drop     a read/write fails as if the peer vanished; the socket
//                     is shut down so the peer observes EOF.
//   net_partial_write a write delivers only a prefix, then the socket is shut
//                     down — the peer sees a truncated frame followed by EOF.
#ifndef SRC_UTIL_NET_H_
#define SRC_UTIL_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/util/status.h"

namespace cloudgen {

class CancelToken;

// Move-only RAII owner of a socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Closes the descriptor (idempotent).
  void Close();
  // shutdown(2) both directions without closing; peers observe EOF. Used by
  // fault injection so a "dropped" connection looks like a real drop.
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

// Creates a listening TCP socket bound to `bind_addr:port` (port 0 picks an
// ephemeral port; read it back with LocalPort). SO_REUSEADDR is set so a
// restarted daemon rebinds immediately.
StatusOr<Socket> ListenTcp(const std::string& bind_addr, uint16_t port,
                           int backlog = 64);

// The port a listening (or connected) socket is bound to locally.
StatusOr<uint16_t> LocalPort(const Socket& sock);

// Waits up to `timeout_ms` for one connection on `listener`. Three outcomes:
//   OK and conn->valid()    a connection was accepted;
//   OK and !conn->valid()   timeout or cancel poll expired with nothing
//                           pending — poll the cancel token and call again;
//   !OK                     a transient accept failure (including an injected
//                           net_accept_fail); log, count, keep accepting.
Status AcceptConnection(Socket& listener, int timeout_ms,
                        const CancelToken* cancel, Socket* conn);

// Connects to `host:port` (numeric or resolvable name) within `timeout_ms`.
// Refused/timed-out connections return UNAVAILABLE (retryable).
StatusOr<Socket> ConnectTcp(const std::string& host, uint16_t port,
                            int timeout_ms);

// Reads exactly `n` bytes. On EOF returns UNAVAILABLE; `*bytes_read` (when
// non-null) tells the caller how far it got, so a framed-protocol reader can
// distinguish a clean between-frames close (0 bytes) from a mid-frame drop.
// Timeout -> UNAVAILABLE, cancel -> ABORTED.
Status ReadFully(Socket& sock, void* buf, size_t n, int timeout_ms,
                 const CancelToken* cancel, size_t* bytes_read = nullptr);

// Writes exactly `n` bytes (MSG_NOSIGNAL; a dead peer is a Status, never a
// SIGPIPE). Timeout -> UNAVAILABLE, cancel -> ABORTED. Injected faults
// (net_conn_drop, net_partial_write) shut the socket down and return
// UNAVAILABLE so both ends converge on "connection lost".
Status WriteFully(Socket& sock, const void* buf, size_t n, int timeout_ms,
                  const CancelToken* cancel);

// A connected AF_UNIX socket pair for protocol tests (no listener needed).
Status SocketPair(Socket* a, Socket* b);

}  // namespace cloudgen

#endif  // SRC_UTIL_NET_H_
