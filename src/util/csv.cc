#include "src/util/csv.h"

#include "src/util/check.h"
#include "src/util/strings.h"

namespace cloudgen {
namespace {

void StripTrailingCr(std::string* line) {
  if (!line->empty() && line->back() == '\r') {
    line->pop_back();
  }
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path), out_(path), arity_(header.size()) {
  CG_CHECK(!header.empty());
  if (out_) {
    out_ << Join(header, ",") << '\n';
  }
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  CG_CHECK_MSG(fields.size() == arity_, "CSV row arity mismatch");
  out_ << Join(fields, ",") << '\n';
}

Status CsvWriter::Finish() {
  out_.flush();
  const bool healthy = static_cast<bool>(out_);
  out_.close();
  if (!healthy) {
    return UnavailableError("short write to " + path_);
  }
  return OkStatus();
}

CsvReader::CsvReader(const std::string& path) : in_(path) {
  if (!in_) {
    status_ = NotFoundError("cannot open " + path);
    return;
  }
  std::string line;
  if (!std::getline(in_, line)) {
    status_ = DataLossError("missing CSV header in " + path);
    return;
  }
  StripTrailingCr(&line);
  line_ = 1;
  header_ = Split(line, ',');
  ok_ = true;
}

bool CsvReader::ReadRow(std::vector<std::string>* fields) {
  CG_CHECK(fields != nullptr);
  if (!status_.ok()) {
    return false;
  }
  std::string line;
  while (std::getline(in_, line)) {
    ++line_;
    StripTrailingCr(&line);
    if (Trim(line).empty()) {
      continue;
    }
    *fields = Split(line, ',');
    if (fields->size() != header_.size()) {
      status_ = InvalidArgumentError(
          StrFormat("line %zu: expected %zu fields, got %zu", line_, header_.size(),
                    fields->size()));
      return false;
    }
    return true;
  }
  return false;
}

int CsvReader::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace cloudgen
