#include "src/util/csv.h"

#include "src/util/check.h"
#include "src/util/strings.h"

namespace cloudgen {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), arity_(header.size()) {
  CG_CHECK(!header.empty());
  if (out_) {
    out_ << Join(header, ",") << '\n';
  }
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  CG_CHECK_MSG(fields.size() == arity_, "CSV row arity mismatch");
  out_ << Join(fields, ",") << '\n';
}

CsvReader::CsvReader(const std::string& path) : in_(path) {
  if (!in_) {
    return;
  }
  std::string line;
  if (!std::getline(in_, line)) {
    return;
  }
  header_ = Split(line, ',');
  ok_ = true;
}

bool CsvReader::ReadRow(std::vector<std::string>* fields) {
  CG_CHECK(fields != nullptr);
  std::string line;
  while (std::getline(in_, line)) {
    if (Trim(line).empty()) {
      continue;
    }
    *fields = Split(line, ',');
    CG_CHECK_MSG(fields->size() == header_.size(), "CSV row arity mismatch");
    return true;
  }
  return false;
}

int CsvReader::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace cloudgen
