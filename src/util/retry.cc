#include "src/util/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "src/obs/metrics.h"
#include "src/util/cancel.h"
#include "src/util/strings.h"

namespace cloudgen {

bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

double BackoffSeconds(const RetryPolicy& policy, int attempt, Rng& rng) {
  double sleep = policy.base_backoff_sec;
  // Clamp the geometric walk: with multiplier <= 1 the `sleep < max` guard
  // never trips, and doubling past ~2^1024 overflows to inf — either way a
  // huge attempt count must neither spin nor poison the delay. 64 steps is
  // beyond any representable growth that matters for a bounded backoff.
  const int steps = std::min(attempt - 1, 64);
  for (int i = 0; i < steps && sleep < policy.max_backoff_sec; ++i) {
    sleep *= policy.multiplier;
  }
  if (!std::isfinite(sleep)) {
    sleep = policy.max_backoff_sec;
  }
  sleep = std::min(sleep, policy.max_backoff_sec);
  if (policy.jitter > 0.0) {
    sleep *= 1.0 + policy.jitter * (2.0 * rng.NextDouble() - 1.0);
  }
  return std::max(sleep, 0.0);
}

bool SleepWithCancel(double seconds, const CancelToken* cancel) {
  auto remaining_us = static_cast<int64_t>(seconds * 1e6);
  constexpr int64_t kSliceUs = 20 * 1000;
  while (remaining_us > 0) {
    if (cancel != nullptr && cancel->Poll()) {
      return false;
    }
    const int64_t slice = std::min(remaining_us, kSliceUs);
    std::this_thread::sleep_for(std::chrono::microseconds(slice));
    remaining_us -= slice;
  }
  return cancel == nullptr || !cancel->Poll();
}

namespace retry_internal {

void CountRetry(const std::string& what) {
  static obs::Counter& retries = obs::Registry::Global().GetCounter("retry.attempts");
  retries.Add(1);
  (void)what;
}

Status GiveUp(const RetryPolicy& policy, const std::string& what, const Status& last) {
  static obs::Counter& giveups = obs::Registry::Global().GetCounter("retry.giveups");
  giveups.Add(1);
  return AbortedError(StrFormat("%s gave up after %d attempt(s): %s", what.c_str(),
                                policy.max_attempts, last.ToString().c_str()));
}

}  // namespace retry_internal

Status RetryVoid(const RetryPolicy& policy, const std::string& what,
                 const std::function<Status()>& op, const CancelToken* cancel) {
  Rng rng(policy.jitter_seed);
  Status last = OkStatus();
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    Status status = op();
    if (status.ok() || !IsRetryable(status)) {
      return status;
    }
    last = status;
    if (attempt == policy.max_attempts) {
      break;
    }
    retry_internal::CountRetry(what);
    if (!SleepWithCancel(BackoffSeconds(policy, attempt, rng), cancel)) {
      return AbortedError(what + " cancelled while backing off: " + last.ToString());
    }
  }
  return retry_internal::GiveUp(policy, what, last);
}

}  // namespace cloudgen
