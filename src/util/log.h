// Lightweight leveled logging to stderr. Experiments use INFO for progress
// lines; set CLOUDGEN_LOG=debug|info|warn|error|off to adjust verbosity.
#ifndef SRC_UTIL_LOG_H_
#define SRC_UTIL_LOG_H_

#include <string>

namespace cloudgen {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Current threshold; initialized from the CLOUDGEN_LOG environment variable.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Writes "[LEVEL] message\n" to stderr when `level` >= the threshold.
void LogMessage(LogLevel level, const std::string& message);

}  // namespace cloudgen

#define CG_LOG_DEBUG(msg) ::cloudgen::LogMessage(::cloudgen::LogLevel::kDebug, (msg))
#define CG_LOG_INFO(msg) ::cloudgen::LogMessage(::cloudgen::LogLevel::kInfo, (msg))
#define CG_LOG_WARN(msg) ::cloudgen::LogMessage(::cloudgen::LogLevel::kWarn, (msg))
#define CG_LOG_ERROR(msg) ::cloudgen::LogMessage(::cloudgen::LogLevel::kError, (msg))

#endif  // SRC_UTIL_LOG_H_
