// Lightweight leveled logging to stderr. Experiments use INFO for progress
// lines; set CLOUDGEN_LOG=debug|info|warn|error|off to adjust verbosity.
//
// Each line is prefixed with an ISO-8601 UTC timestamp and the dense
// obs::ThreadId() of the emitting thread:
//   2026-08-07T12:34:56.789Z [INFO] [t0] flavor LSTM epoch 3/12: loss=1.241
//
// Two macro families:
//   CG_LOG_INFO(msg)          takes a ready std::string.
//   CG_LOGF_INFO(fmt, ...)    printf-style; the format arguments are NOT
//                             evaluated (and nothing is allocated) when the
//                             level is filtered out, so hot loops can log
//                             freely at DEBUG.
#ifndef SRC_UTIL_LOG_H_
#define SRC_UTIL_LOG_H_

#include <string>

namespace cloudgen {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Current threshold; initialized from the CLOUDGEN_LOG environment variable.
// An unrecognized value falls back to INFO after warning once (a silent
// fallback used to hide typos like CLOUDGEN_LOG=verbose).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// True when a message at `level` would be emitted.
bool LogEnabled(LogLevel level);

// Writes "<iso8601> [LEVEL] [tN] message\n" to stderr when enabled.
void LogMessage(LogLevel level, const std::string& message);

// printf-style variant; prefer the CG_LOGF_* macros, which skip argument
// evaluation entirely when the level is filtered.
void LogMessagef(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace cloudgen

#define CG_LOG_DEBUG(msg) ::cloudgen::LogMessage(::cloudgen::LogLevel::kDebug, (msg))
#define CG_LOG_INFO(msg) ::cloudgen::LogMessage(::cloudgen::LogLevel::kInfo, (msg))
#define CG_LOG_WARN(msg) ::cloudgen::LogMessage(::cloudgen::LogLevel::kWarn, (msg))
#define CG_LOG_ERROR(msg) ::cloudgen::LogMessage(::cloudgen::LogLevel::kError, (msg))

#define CG_LOGF_IMPL(level, ...)                     \
  do {                                               \
    if (::cloudgen::LogEnabled(level)) {             \
      ::cloudgen::LogMessagef(level, __VA_ARGS__);   \
    }                                                \
  } while (0)

#define CG_LOGF_DEBUG(...) CG_LOGF_IMPL(::cloudgen::LogLevel::kDebug, __VA_ARGS__)
#define CG_LOGF_INFO(...) CG_LOGF_IMPL(::cloudgen::LogLevel::kInfo, __VA_ARGS__)
#define CG_LOGF_WARN(...) CG_LOGF_IMPL(::cloudgen::LogLevel::kWarn, __VA_ARGS__)
#define CG_LOGF_ERROR(...) CG_LOGF_IMPL(::cloudgen::LogLevel::kError, __VA_ARGS__)

#endif  // SRC_UTIL_LOG_H_
