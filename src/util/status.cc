#include "src/util/status.h"

#include <cstring>

namespace cloudgen {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  return std::string(StatusCodeName(code_)) + ": " + message_;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status AbortedError(std::string message) {
  return Status(StatusCode::kAborted, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

namespace status_internal {

std::string LocationTag(const char* file, int line) {
  const char* base = std::strrchr(file, '/');
  base = base != nullptr ? base + 1 : file;
  return std::string(base) + ":" + std::to_string(line);
}

}  // namespace status_internal

}  // namespace cloudgen
