// Small string helpers shared across modules (CSV, logging, table printing).
#ifndef SRC_UTIL_STRINGS_H_
#define SRC_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cloudgen {

// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Joins elements with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// Strict numeric parsing for untrusted input (CSV cells, flag values, fault
// specs): the whole string must be a single number — no trailing junk, no
// empty input. Returns false (leaving *out untouched) on any violation.
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseInt32(std::string_view s, int32_t* out);
bool ParseDouble(std::string_view s, double* out);

}  // namespace cloudgen

#endif  // SRC_UTIL_STRINGS_H_
