// Shared worker-thread pool and the ParallelFor primitive used by the
// compute substrate (GEMM row-sharding, data-parallel BPTT, and parallel
// trace generation).
//
// Determinism contract: every parallel construct in cloudgen partitions its
// work into units whose per-unit arithmetic is independent of how units are
// assigned to threads (disjoint output rows, per-shard gradient buffers
// reduced in fixed order, seed-derived RNG streams). ParallelFor therefore
// only changes *when* a unit runs, never *what* it computes — `--threads N`
// must produce bitwise-identical results to `--threads 1` for every N.
//
// Nested-submit safety: a ParallelFor issued from inside a pool worker runs
// inline on the calling thread by default (no re-enqueue), so nested parallel
// sections (e.g. a parallel GEMM inside a BPTT shard task) cannot deadlock
// the pool. A task that knows the pool has headroom can opt into *bounded*
// nested fan-out with ScopedInnerParallelism: nested submits are then split
// into at most `cap` units, and the submitting thread joins by helping drain
// the shared queue (it blocks only when the queue is empty and its remaining
// units are already running on other threads — so no cycle of waiting tasks
// can form, and concurrency never exceeds the configured cap per section).
// The sharded generation scheduler uses this so `shards × inner ≤ pool size`
// instead of shard workers oversubscribing cores with inner GEMM fan-out.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cloudgen {

class CancelToken;

class ThreadPool {
 public:
  // `num_threads` worker threads; 0 and 1 both mean "no workers, run
  // everything inline on the calling thread".
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of worker threads (0 when inline-only).
  size_t NumThreads() const { return workers_.size(); }

  // True when worker threads exist, i.e. ParallelFor may actually dispatch.
  // Allocation-sensitive callers (the batched generation step) use this to
  // skip building task closures when everything would run inline anyway.
  bool HasWorkers() const { return !workers_.empty(); }

  // Runs fn(i) for every i in [begin, end) and returns when all calls have
  // finished. Indices are grouped into contiguous chunks; chunking never
  // affects results because callers only submit index-independent work.
  // The first exception thrown by any fn(i) is rethrown on the caller after
  // all work has drained. Called from inside a pool task, runs inline unless
  // the task opted into bounded nested fan-out (ScopedInnerParallelism), in
  // which case at most that many chunks run concurrently.
  void ParallelFor(size_t begin, size_t end, const std::function<void(size_t)>& fn);

  // Cancellation-aware variant: once `cancel` is set, remaining indices are
  // skipped (each shard re-checks the token before every fn(i); the check is
  // one relaxed load). Indices already started still run to completion —
  // cancellation is cooperative, never mid-unit — so the caller knows that
  // every index either ran fully or not at all. `cancel == nullptr` behaves
  // exactly like the plain overload.
  void ParallelFor(size_t begin, size_t end, const std::function<void(size_t)>& fn,
                   const CancelToken* cancel);

  // Runs every task in `tasks` and returns when all have finished; same
  // exception and nesting semantics as ParallelFor.
  void RunAll(const std::vector<std::function<void()>>& tasks);

  // Refreshes the pool pressure gauges (`pool.queue_depth`,
  // `pool.busy_workers`, `pool.workers`, `pool.utilization`) from current
  // state. The enqueue/dequeue paths already keep the first three roughly
  // current at their own write points; this gives periodic samplers (the
  // rolling metrics exporter) a consistent reading on demand. Takes the
  // queue mutex briefly — not for hot paths.
  void PublishGauges();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::queue<std::function<void()>> queue_;
  bool shutdown_ = false;
};

// RAII cap on the concurrency available to parallel sections issued from the
// current thread while the scope is alive. Semantics by context:
//  * inside a pool task, the default (no scope) is 1 — nested submits run
//    inline, the historical safe behaviour;
//  * a scope of `cap > 1` lets nested ParallelFor/RunAll fan out into at
//    most `cap` concurrent units (the submitting thread counts as one; it
//    joins by helping drain the queue, never by idling on a full queue);
//  * on a non-pool thread the default is "whole pool", and a scope bounds it
//    the same way (e.g. a serve connection thread capping its fan-out).
// `cap == 0` is normalized to 1. Scopes nest; each restores the previous cap.
// Units spawned by a bounded section run with the default cap (1 when they
// land on pool threads), so a cap never multiplies transitively —
// `sections × cap ≤ pool size` is the caller's whole obligation.
class ScopedInnerParallelism {
 public:
  explicit ScopedInnerParallelism(size_t cap);
  ~ScopedInnerParallelism();

  ScopedInnerParallelism(const ScopedInnerParallelism&) = delete;
  ScopedInnerParallelism& operator=(const ScopedInnerParallelism&) = delete;

 private:
  size_t saved_;
};

// Process-wide pool used by the compute substrate. Defaults to inline-only
// (1 thread) so library consumers opt in to parallelism explicitly.
ThreadPool& GlobalThreadPool();

// Replaces the global pool with one of `num_threads` threads (0 means
// std::thread::hardware_concurrency()). Not safe to call concurrently with
// work running on the pool; intended for start-up (CLI --threads) and tests.
void SetGlobalThreads(size_t num_threads);

// Thread count the global pool would use for parallel sections (>= 1).
size_t GlobalParallelism();

}  // namespace cloudgen

#endif  // SRC_UTIL_THREAD_POOL_H_
