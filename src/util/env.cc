#include "src/util/env.h"

#include <algorithm>
#include <cstdlib>

namespace cloudgen {

double GetEnvDouble(const std::string& name, double fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || value[0] == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value) {
    return fallback;
  }
  return parsed;
}

long GetEnvLong(const std::string& name, long fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || value[0] == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value) {
    return fallback;
  }
  return parsed;
}

std::string GetEnvString(const std::string& name, const std::string& fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || value[0] == '\0') {
    return fallback;
  }
  return value;
}

double ExperimentScale() {
  return std::max(0.05, GetEnvDouble("CLOUDGEN_SCALE", 1.0));
}

}  // namespace cloudgen
