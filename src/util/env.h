// Environment-variable helpers for experiment scaling.
//
// CLOUDGEN_SCALE multiplies dataset sizes / sample counts in the bench
// harnesses: 1 (default) runs a CPU-friendly configuration; larger values
// approach the paper's scale.
#ifndef SRC_UTIL_ENV_H_
#define SRC_UTIL_ENV_H_

#include <string>

namespace cloudgen {

// Returns the env var value or `fallback` when unset/invalid.
double GetEnvDouble(const std::string& name, double fallback);
long GetEnvLong(const std::string& name, long fallback);
std::string GetEnvString(const std::string& name, const std::string& fallback);

// Shorthand for GetEnvDouble("CLOUDGEN_SCALE", 1.0), clamped to >= 0.05.
double ExperimentScale();

}  // namespace cloudgen

#endif  // SRC_UTIL_ENV_H_
