#include "src/util/sealed_file.h"

#include <cstring>
#include <fstream>

#include "src/util/atomic_file.h"
#include "src/util/crc32.h"
#include "src/util/fault.h"
#include "src/util/strings.h"

namespace cloudgen {
namespace {

constexpr char kMagic[8] = {'C', 'G', 'S', 'E', 'A', 'L', '0', '1'};
constexpr uint32_t kVersion = 1;

struct SealedHeader {
  char magic[8];
  uint32_t version;
  uint32_t tag;
  uint64_t extra;
  uint64_t payload_size;
  uint32_t payload_crc;
};

}  // namespace

Status WriteSealedFile(const std::string& path, uint32_t tag, uint64_t extra,
                       std::string_view payload) {
  SealedHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.tag = tag;
  header.extra = extra;
  header.payload_size = payload.size();
  header.payload_crc = Crc32(payload);
  return WriteFileAtomic(path, [&](std::ostream& out) {
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  });
}

Status ReadSealedFile(const std::string& path, uint32_t tag, uint64_t* extra,
                      std::string* payload) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open " + path);
  }
  SealedHeader header{};
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in || std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return DataLossError(path + ": not a sealed cloudgen file (bad magic)");
  }
  if (header.version != kVersion) {
    return DataLossError(
        StrFormat("%s: unsupported sealed-file version %u", path.c_str(), header.version));
  }
  if (header.tag != tag) {
    return FailedPreconditionError(StrFormat(
        "%s: artifact type tag %u does not match the expected tag %u", path.c_str(),
        header.tag, tag));
  }
  payload->resize(header.payload_size);
  in.read(payload->data(), static_cast<std::streamsize>(header.payload_size));
  auto read_bytes = static_cast<uint64_t>(in.gcount());
  if (FaultInjector::Global().ShouldInject(FaultKind::kReadTruncate)) {
    read_bytes /= 2;  // Behave exactly like a half-written payload.
  }
  if (read_bytes != header.payload_size) {
    return DataLossError(StrFormat(
        "%s: truncated payload (%llu of %llu bytes)", path.c_str(),
        static_cast<unsigned long long>(read_bytes),
        static_cast<unsigned long long>(header.payload_size)));
  }
  if (Crc32(*payload) != header.payload_crc) {
    return DataLossError(path + ": payload CRC mismatch (corrupt file)");
  }
  if (extra != nullptr) {
    *extra = header.extra;
  }
  return OkStatus();
}

}  // namespace cloudgen
