// Atomic file replacement: write to "<path>.tmp", then rename over the
// destination. An interrupted or failed write leaves the previous file (if
// any) untouched, so `--resume` and `eval` never read a truncated artifact.
//
// Commit() is the io_write / io_enospc fault-injection point: when
// CLOUDGEN_FAULT arms io_write, Commit probabilistically fails with
// UNAVAILABLE (a transient, retryable failure); io_enospc fails with
// RESOURCE_EXHAUSTED — a full disk, which retrying cannot fix. Real ENOSPC
// from the filesystem is classified the same way, so callers see one
// disk-full signal (IsDiskFull) whether injected or genuine. Either way the
// temp file is removed and the destination is untouched.
#ifndef SRC_UTIL_ATOMIC_FILE_H_
#define SRC_UTIL_ATOMIC_FILE_H_

#include <fstream>
#include <functional>
#include <string>

#include "src/util/status.h"

namespace cloudgen {

class AtomicFileWriter {
 public:
  // Opens "<path>.tmp" for binary writing; check status() before streaming.
  explicit AtomicFileWriter(std::string path);
  // Discards the temp file if Commit() was never reached.
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  const Status& status() const { return status_; }
  std::ostream& stream() { return out_; }

  // Flushes, verifies stream health, and renames the temp file into place.
  // On any failure the temp file is removed and the destination is untouched.
  Status Commit();

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  Status status_;
  bool done_ = false;
};

// Convenience wrapper: open, let `writer` fill the stream, commit.
Status WriteFileAtomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

// Renames an already-written temp file over `path` (for writers like
// CsvWriter that manage their own stream). Applies the same io_write fault
// check and failure cleanup as AtomicFileWriter::Commit.
//
// Durability: unless CLOUDGEN_FSYNC=0, the temp file is fsync'd before the
// rename and the parent directory is fsync'd after it, so a committed file
// survives power loss as well as process death (counters io.fsync.file /
// io.fsync.dir / io.fsync.failures track the syscalls).
Status CommitTempFile(const std::string& tmp_path, const std::string& path);

// True when `path` exists (any file type).
bool FileExists(const std::string& path);

// True when `status` reports a full disk (injected io_enospc or a real
// ENOSPC classified by the writers above). RESOURCE_EXHAUSTED is reserved
// for capacity failures, so the code alone is the signal: generation parks
// at the last durable seal instead of retrying, and the serve daemon flips
// to degraded health.
inline bool IsDiskFull(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted;
}

}  // namespace cloudgen

#endif  // SRC_UTIL_ATOMIC_FILE_H_
