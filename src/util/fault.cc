#include "src/util/fault.h"

#include <cstdlib>
#include <string>
#include <utility>

#include "src/obs/metrics.h"
#include "src/util/env.h"
#include "src/util/fault_plan.h"
#include "src/util/log.h"
#include "src/util/strings.h"

namespace cloudgen {
namespace {

thread_local FaultScope t_fault_scope;

}  // namespace

bool ParseFaultKindName(std::string_view name, FaultKind* kind) {
  if (name == "io_write") {
    *kind = FaultKind::kIoWrite;
  } else if (name == "read_truncate") {
    *kind = FaultKind::kReadTruncate;
  } else if (name == "nan_grad") {
    *kind = FaultKind::kNanGrad;
  } else if (name == "gen_nan_logit") {
    *kind = FaultKind::kGenNanLogit;
  } else if (name == "gen_write_kill") {
    *kind = FaultKind::kGenWriteKill;
  } else if (name == "net_accept_fail") {
    *kind = FaultKind::kNetAcceptFail;
  } else if (name == "net_partial_write") {
    *kind = FaultKind::kNetPartialWrite;
  } else if (name == "net_conn_drop") {
    *kind = FaultKind::kNetConnDrop;
  } else if (name == "io_enospc") {
    *kind = FaultKind::kIoEnospc;
  } else if (name == "fd_exhaust") {
    *kind = FaultKind::kFdExhaust;
  } else if (name == "stream_stall") {
    *kind = FaultKind::kStreamStall;
  } else {
    return false;
  }
  return true;
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kIoWrite:
      return "io_write";
    case FaultKind::kReadTruncate:
      return "read_truncate";
    case FaultKind::kNanGrad:
      return "nan_grad";
    case FaultKind::kGenNanLogit:
      return "gen_nan_logit";
    case FaultKind::kGenWriteKill:
      return "gen_write_kill";
    case FaultKind::kNetAcceptFail:
      return "net_accept_fail";
    case FaultKind::kNetPartialWrite:
      return "net_partial_write";
    case FaultKind::kNetConnDrop:
      return "net_conn_drop";
    case FaultKind::kIoEnospc:
      return "io_enospc";
    case FaultKind::kFdExhaust:
      return "fd_exhaust";
    case FaultKind::kStreamStall:
      return "stream_stall";
  }
  return "unknown";
}

ScopedFaultSite::ScopedFaultSite(const char* site, std::string tenant,
                                 int64_t shard)
    : saved_(t_fault_scope) {
  t_fault_scope.site = site;
  t_fault_scope.tenant = std::move(tenant);
  t_fault_scope.shard = shard;
}

ScopedFaultSite::~ScopedFaultSite() { t_fault_scope = std::move(saved_); }

const FaultScope& CurrentFaultScope() { return t_fault_scope; }

FaultInjector::FaultInjector()
    : plan_(new FaultPlan()), rng_(kDefaultSeed) {}

FaultInjector::~FaultInjector() = default;

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    const uint64_t seed = static_cast<uint64_t>(
        GetEnvLong("CLOUDGEN_FAULT_SEED", static_cast<long>(kDefaultSeed)));
    const char* plan_path = std::getenv("CLOUDGEN_FAULT_PLAN");
    if (plan_path != nullptr && plan_path[0] != '\0') {
      FaultPlan plan;
      Status status = LoadFaultPlanFile(plan_path, &plan);
      if (status.ok()) {
        status = inj->ConfigurePlan(plan, seed);
      }
      if (!status.ok()) {
        CG_LOG_ERROR("ignoring CLOUDGEN_FAULT_PLAN: " + status.ToString());
      }
      return inj;
    }
    const char* spec = std::getenv("CLOUDGEN_FAULT");
    if (spec != nullptr && spec[0] != '\0') {
      const Status status = inj->Configure(spec, seed);
      if (!status.ok()) {
        CG_LOG_ERROR("ignoring CLOUDGEN_FAULT: " + status.ToString());
      }
    }
    return inj;
  }();
  return *injector;
}

Status FaultInjector::Configure(const std::string& spec, uint64_t seed) {
  FaultPlan plan;
  CG_RETURN_IF_ERROR(ParseFaultPlan(spec, &plan));
  return ConfigurePlan(plan, seed);
}

Status FaultInjector::ConfigurePlan(const FaultPlan& plan, uint64_t seed) {
  uint32_t mask = 0;
  for (const FaultRule& rule : plan.rules) {
    mask |= 1u << static_cast<int>(rule.kind);
  }
  std::lock_guard<std::mutex> lock(mu_);
  *plan_ = plan;
  for (FaultRule& rule : plan_->rules) {
    rule.calls = 0;
    rule.fired = false;
    CG_LOG_WARN("fault injection armed: " + rule.ToString());
  }
  for (int i = 0; i < kNumFaultKinds; ++i) {
    injected_[i] = 0;
  }
  rng_ = Rng(seed);
  armed_mask_.store(mask, std::memory_order_release);
  if (!plan_->rules.empty()) {
    obs::Registry::Global().GetCounter("fault.plan.loads").Add(1);
  }
  obs::Registry::Global()
      .GetGauge("fault.plan.rules")
      .Set(static_cast<double>(plan_->rules.size()));
  return OkStatus();
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  plan_->rules.clear();
  for (int i = 0; i < kNumFaultKinds; ++i) {
    injected_[i] = 0;
  }
  rng_ = Rng(kDefaultSeed);
  armed_mask_.store(0, std::memory_order_release);
}

bool FaultInjector::ShouldInject(FaultKind kind) {
  // Lock-free fast path: kinds with no rule cost one atomic load.
  const uint32_t mask = armed_mask_.load(std::memory_order_acquire);
  if ((mask & (1u << static_cast<int>(kind))) == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const FaultScope& scope = CurrentFaultScope();
  bool fire = false;
  // Every matching rule sees the call — counters advance and probabilistic
  // rules draw even after an earlier rule fired, so the deterministic stream
  // consumption depends only on the call sequence, not on outcomes.
  for (FaultRule& rule : plan_->rules) {
    if (rule.kind != kind || !rule.MatchesScope(scope)) {
      continue;
    }
    ++rule.calls;
    switch (rule.trigger) {
      case FaultTrigger::kProb:
        if (rng_.Bernoulli(rule.probability)) {
          fire = true;
        }
        break;
      case FaultTrigger::kAt:
        if (!rule.fired && rule.calls == rule.at) {
          rule.fired = true;
          fire = true;
        }
        break;
      case FaultTrigger::kWindow:
        if (rule.calls >= rule.from && rule.calls <= rule.to &&
            (rule.probability >= 1.0 || rng_.Bernoulli(rule.probability))) {
          fire = true;
        }
        break;
      case FaultTrigger::kEvery:
        if ((rule.calls - 1) % rule.every < rule.burst) {
          fire = true;
        }
        break;
    }
  }
  if (!fire) {
    return false;
  }
  ++injected_[static_cast<int>(kind)];
  // Every fired fault is visible both on stderr and as a counter in the
  // --metrics-out snapshot (fault.injected.<kind>), so a resumed or batch run
  // can account for its faults after the fact.
  obs::Registry::Global()
      .GetCounter(std::string("fault.injected.") + FaultKindName(kind))
      .Add(1);
  CG_LOGF_WARN("fault injected: %s (#%zu this run)", FaultKindName(kind),
               injected_[static_cast<int>(kind)]);
  return true;
}

bool FaultInjector::Armed(FaultKind kind) const {
  return (armed_mask_.load(std::memory_order_acquire) &
          (1u << static_cast<int>(kind))) != 0;
}

size_t FaultInjector::InjectedCount(FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_[static_cast<int>(kind)];
}

}  // namespace cloudgen
