#include "src/util/fault.h"

#include <cstdlib>
#include <string>

#include "src/obs/metrics.h"
#include "src/util/env.h"
#include "src/util/log.h"
#include "src/util/strings.h"

namespace cloudgen {
namespace {

bool ParseFaultKind(std::string_view name, FaultKind* kind) {
  if (name == "io_write") {
    *kind = FaultKind::kIoWrite;
  } else if (name == "read_truncate") {
    *kind = FaultKind::kReadTruncate;
  } else if (name == "nan_grad") {
    *kind = FaultKind::kNanGrad;
  } else if (name == "gen_nan_logit") {
    *kind = FaultKind::kGenNanLogit;
  } else if (name == "gen_write_kill") {
    *kind = FaultKind::kGenWriteKill;
  } else if (name == "net_accept_fail") {
    *kind = FaultKind::kNetAcceptFail;
  } else if (name == "net_partial_write") {
    *kind = FaultKind::kNetPartialWrite;
  } else if (name == "net_conn_drop") {
    *kind = FaultKind::kNetConnDrop;
  } else {
    return false;
  }
  return true;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kIoWrite:
      return "io_write";
    case FaultKind::kReadTruncate:
      return "read_truncate";
    case FaultKind::kNanGrad:
      return "nan_grad";
    case FaultKind::kGenNanLogit:
      return "gen_nan_logit";
    case FaultKind::kGenWriteKill:
      return "gen_write_kill";
    case FaultKind::kNetAcceptFail:
      return "net_accept_fail";
    case FaultKind::kNetPartialWrite:
      return "net_partial_write";
    case FaultKind::kNetConnDrop:
      return "net_conn_drop";
  }
  return "unknown";
}

FaultInjector::FaultInjector() : rng_(kDefaultSeed) {}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    const char* spec = std::getenv("CLOUDGEN_FAULT");
    if (spec != nullptr && spec[0] != '\0') {
      const uint64_t seed = static_cast<uint64_t>(
          GetEnvLong("CLOUDGEN_FAULT_SEED", static_cast<long>(kDefaultSeed)));
      const Status status = inj->Configure(spec, seed);
      if (!status.ok()) {
        CG_LOG_ERROR("ignoring CLOUDGEN_FAULT: " + status.ToString());
      }
    }
    return inj;
  }();
  return *injector;
}

Status FaultInjector::Configure(const std::string& spec, uint64_t seed) {
  double probability[kNumFaultKinds] = {};
  if (!Trim(spec).empty()) {
    for (const std::string& entry : Split(spec, ',')) {
      const std::string_view trimmed = Trim(entry);
      const size_t colon = trimmed.find(':');
      if (colon == std::string_view::npos) {
        return InvalidArgumentError(StrFormat(
            "fault spec entry '%.*s' is not of the form kind:probability",
            static_cast<int>(trimmed.size()), trimmed.data()));
      }
      FaultKind kind;
      if (!ParseFaultKind(trimmed.substr(0, colon), &kind)) {
        return InvalidArgumentError(StrFormat(
            "unknown fault kind in '%.*s' (expected io_write, read_truncate, nan_grad, "
            "gen_nan_logit, gen_write_kill, net_accept_fail, net_partial_write or "
            "net_conn_drop)",
            static_cast<int>(trimmed.size()), trimmed.data()));
      }
      double p = 0.0;
      if (!ParseDouble(trimmed.substr(colon + 1), &p) || p < 0.0 || p > 1.0) {
        return InvalidArgumentError(StrFormat(
            "fault probability in '%.*s' must be a number in [0, 1]",
            static_cast<int>(trimmed.size()), trimmed.data()));
      }
      probability[static_cast<int>(kind)] = p;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < kNumFaultKinds; ++i) {
    probability_[i] = probability[i];
    injected_[i] = 0;
    if (probability[i] > 0.0) {
      CG_LOG_WARN(StrFormat("fault injection armed: %s with p=%.3f",
                            FaultKindName(static_cast<FaultKind>(i)), probability[i]));
    }
  }
  rng_ = Rng(seed);
  return OkStatus();
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < kNumFaultKinds; ++i) {
    probability_[i] = 0.0;
    injected_[i] = 0;
  }
  rng_ = Rng(kDefaultSeed);
}

bool FaultInjector::ShouldInject(FaultKind kind) {
  if (probability_[static_cast<int>(kind)] <= 0.0) {
    return false;  // Lock-free fast path: disarmed kinds cost one load.
  }
  std::lock_guard<std::mutex> lock(mu_);
  const double p = probability_[static_cast<int>(kind)];
  if (p <= 0.0 || !rng_.Bernoulli(p)) {
    return false;
  }
  ++injected_[static_cast<int>(kind)];
  // Every fired fault is visible both on stderr and as a counter in the
  // --metrics-out snapshot (fault.injected.<kind>), so a resumed or batch run
  // can account for its faults after the fact.
  obs::Registry::Global()
      .GetCounter(std::string("fault.injected.") + FaultKindName(kind))
      .Add(1);
  CG_LOGF_WARN("fault injected: %s (#%zu this run)", FaultKindName(kind),
               injected_[static_cast<int>(kind)]);
  return true;
}

bool FaultInjector::Armed(FaultKind kind) const {
  return probability_[static_cast<int>(kind)] > 0.0;
}

size_t FaultInjector::InjectedCount(FaultKind kind) const {
  return injected_[static_cast<int>(kind)];
}

}  // namespace cloudgen
