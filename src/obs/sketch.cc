#include "src/obs/sketch.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace cloudgen {
namespace obs {

namespace {

// Rounds a cell count up so each shard's row starts on its own cache line
// (8 u64 cells per 64-byte line).
size_t PadStride(size_t cells) { return (cells + 7) & ~size_t{7}; }

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out->append(buf, 8);
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

}  // namespace

// --- QuantileSketch --------------------------------------------------------

QuantileSketch::QuantileSketch(double relative_accuracy, double min_value,
                               double max_value)
    : relative_accuracy_(relative_accuracy),
      min_value_(min_value),
      max_value_(max_value) {
  assert(relative_accuracy > 0.0 && relative_accuracy < 1.0);
  assert(min_value > 0.0 && max_value > min_value);
  const double gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy);
  const double log_gamma = std::log(gamma);
  log_min_ = std::log(min_value);
  inv_log_gamma_ = 1.0 / log_gamma;
  const size_t log_buckets = static_cast<size_t>(
      std::ceil((std::log(max_value) - log_min_) * inv_log_gamma_));
  num_buckets_ = log_buckets + 2;  // + underflow + overflow.
  stride_ = PadStride(num_buckets_);
  cells_.reset(new std::atomic<uint64_t>[kMetricShards * stride_]);
  Reset();
}

size_t QuantileSketch::BucketOf(double v) const {
  if (!(v > min_value_)) {  // Also catches NaN, negatives, zero.
    return 0;
  }
  // Bucket b >= 1 covers (min * gamma^(b-1), min * gamma^b].
  const double pos = (std::log(v) - log_min_) * inv_log_gamma_;
  const size_t b = static_cast<size_t>(std::ceil(pos));
  const size_t clamped = b < 1 ? 1 : b;
  return clamped >= num_buckets_ - 1 ? num_buckets_ - 1 : clamped;
}

void QuantileSketch::Observe(double v) {
  const size_t shard = ThreadId() & (kMetricShards - 1);
  cells_[shard * stride_ + BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
}

void QuantileSketch::Reset() {
  for (size_t i = 0; i < kMetricShards * stride_; ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
}

QuantileSketch::Snapshot QuantileSketch::TakeSnapshot() const {
  Snapshot snap;
  snap.relative_accuracy = relative_accuracy_;
  snap.min_value = min_value_;
  snap.max_value = max_value_;
  snap.counts.assign(num_buckets_, 0);
  for (size_t shard = 0; shard < kMetricShards; ++shard) {
    for (size_t b = 0; b < num_buckets_; ++b) {
      snap.counts[b] += cells_[shard * stride_ + b].load(std::memory_order_relaxed);
    }
  }
  for (uint64_t c : snap.counts) {
    snap.total += c;
  }
  return snap;
}

double QuantileSketch::Snapshot::Quantile(double q) const {
  if (total == 0) {
    return 0.0;
  }
  const double clamped_q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based); the smallest bucket whose
  // cumulative count reaches it holds the quantile.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(clamped_q * static_cast<double>(total))));
  uint64_t cum = 0;
  size_t bucket = counts.size() - 1;
  for (size_t b = 0; b < counts.size(); ++b) {
    cum += counts[b];
    if (cum >= rank) {
      bucket = b;
      break;
    }
  }
  if (bucket == 0) {
    return 0.0;  // Underflow bucket: v <= min_value; report the floor.
  }
  if (bucket == counts.size() - 1) {
    return max_value;
  }
  // Geometric midpoint of (min * gamma^(b-1), min * gamma^b].
  const double gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy);
  return min_value * std::pow(gamma, static_cast<double>(bucket) - 0.5);
}

double QuantileSketch::Snapshot::CdfAtMost(double v) const {
  if (total == 0) {
    return 0.0;
  }
  if (!(v > min_value)) {
    return static_cast<double>(counts[0]) / static_cast<double>(total);
  }
  const double gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy);
  const double pos = (std::log(v) - std::log(min_value)) / std::log(gamma);
  uint64_t below = counts[0];
  double partial = 0.0;
  const size_t last = counts.size() - 1;
  for (size_t b = 1; b < last; ++b) {
    if (pos >= static_cast<double>(b)) {
      below += counts[b];
      continue;
    }
    const double frac = pos - static_cast<double>(b - 1);
    if (frac > 0.0) {
      partial = frac * static_cast<double>(counts[b]);
    }
    break;
  }
  if (pos >= static_cast<double>(last)) {
    below += counts[last];
  }
  return (static_cast<double>(below) + partial) / static_cast<double>(total);
}

void QuantileSketch::Snapshot::MergeFrom(const Snapshot& other) {
  assert(other.counts.size() == counts.size());
  assert(other.relative_accuracy == relative_accuracy);
  assert(other.min_value == min_value);
  for (size_t b = 0; b < counts.size(); ++b) {
    counts[b] += other.counts[b];
  }
  total += other.total;
}

std::string QuantileSketch::Snapshot::SerializeBytes() const {
  std::string out;
  out.reserve(8 * (counts.size() + 4));
  PutDouble(&out, relative_accuracy);
  PutDouble(&out, min_value);
  PutDouble(&out, max_value);
  PutU64(&out, total);
  for (uint64_t c : counts) {
    PutU64(&out, c);
  }
  return out;
}

// --- StreamingMoments ------------------------------------------------------

void StreamingMoments::Observe(double v) {
  Cell& cell = cells_[ThreadId() & (kMetricShards - 1)];
  cell.count.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicDoubleAdd(&cell.sum_bits, v);
  internal::AtomicDoubleAdd(&cell.sum_squares_bits, v * v);
}

void StreamingMoments::Reset() {
  for (Cell& cell : cells_) {
    cell.count.store(0, std::memory_order_relaxed);
    cell.sum_bits.store(0, std::memory_order_relaxed);
    cell.sum_squares_bits.store(0, std::memory_order_relaxed);
  }
}

StreamingMoments::Snapshot StreamingMoments::TakeSnapshot() const {
  // Fixed shard order: for the monitor's integer-valued observations these
  // double sums are exact (< 2^53), so the reduction order cannot matter;
  // fixing it anyway keeps the bytes stable even for fractional inputs
  // observed single-threaded.
  Snapshot snap;
  for (const Cell& cell : cells_) {
    snap.count += cell.count.load(std::memory_order_relaxed);
    uint64_t bits = cell.sum_bits.load(std::memory_order_relaxed);
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    snap.sum += d;
    bits = cell.sum_squares_bits.load(std::memory_order_relaxed);
    std::memcpy(&d, &bits, sizeof(d));
    snap.sum_squares += d;
  }
  return snap;
}

double StreamingMoments::Snapshot::Mean() const {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double StreamingMoments::Snapshot::Variance() const {
  if (count == 0) {
    return 0.0;
  }
  const double mean = Mean();
  const double v = sum_squares / static_cast<double>(count) - mean * mean;
  return v < 0.0 ? 0.0 : v;
}

void StreamingMoments::Snapshot::MergeFrom(const Snapshot& other) {
  count += other.count;
  sum += other.sum;
  sum_squares += other.sum_squares;
}

std::string StreamingMoments::Snapshot::SerializeBytes() const {
  std::string out;
  PutU64(&out, count);
  PutDouble(&out, sum);
  PutDouble(&out, sum_squares);
  return out;
}

// --- TopKCounter -----------------------------------------------------------

TopKCounter::TopKCounter(size_t universe)
    : universe_(universe), stride_(PadStride(universe + 1)) {
  cells_.reset(new std::atomic<uint64_t>[kMetricShards * stride_]);
  Reset();
}

void TopKCounter::Observe(int64_t id) {
  const size_t slot =
      (id >= 0 && static_cast<size_t>(id) < universe_) ? static_cast<size_t>(id) : universe_;
  const size_t shard = ThreadId() & (kMetricShards - 1);
  cells_[shard * stride_ + slot].fetch_add(1, std::memory_order_relaxed);
}

void TopKCounter::Reset() {
  for (size_t i = 0; i < kMetricShards * stride_; ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
}

TopKCounter::Snapshot TopKCounter::TakeSnapshot() const {
  Snapshot snap;
  snap.counts.assign(universe_, 0);
  for (size_t shard = 0; shard < kMetricShards; ++shard) {
    for (size_t id = 0; id < universe_; ++id) {
      snap.counts[id] += cells_[shard * stride_ + id].load(std::memory_order_relaxed);
    }
    snap.overflow += cells_[shard * stride_ + universe_].load(std::memory_order_relaxed);
  }
  for (uint64_t c : snap.counts) {
    snap.total += c;
  }
  snap.total += snap.overflow;
  return snap;
}

std::vector<TopKCounter::Entry> TopKCounter::Snapshot::TopK(size_t k) const {
  std::vector<Entry> entries;
  entries.reserve(counts.size());
  for (size_t id = 0; id < counts.size(); ++id) {
    if (counts[id] > 0) {
      entries.push_back(Entry{static_cast<int64_t>(id), counts[id]});
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) {
      return a.count > b.count;
    }
    return a.id < b.id;
  });
  if (entries.size() > k) {
    entries.resize(k);
  }
  return entries;
}

double TopKCounter::Snapshot::TotalVariation(const std::vector<double>& ref) const {
  if (total == 0) {
    return 0.0;
  }
  double tv = 0.0;
  for (size_t id = 0; id < counts.size(); ++id) {
    const double emp = static_cast<double>(counts[id]) / static_cast<double>(total);
    const double r = id < ref.size() ? ref[id] : 0.0;
    tv += std::fabs(emp - r);
  }
  // Reference mass beyond the universe and empirical overflow mass both have
  // zero mass on the other side.
  for (size_t id = counts.size(); id < ref.size(); ++id) {
    tv += std::fabs(ref[id]);
  }
  tv += static_cast<double>(overflow) / static_cast<double>(total);
  return 0.5 * tv;
}

void TopKCounter::Snapshot::MergeFrom(const Snapshot& other) {
  assert(other.counts.size() == counts.size());
  for (size_t id = 0; id < counts.size(); ++id) {
    counts[id] += other.counts[id];
  }
  overflow += other.overflow;
  total += other.total;
}

std::string TopKCounter::Snapshot::SerializeBytes() const {
  std::string out;
  out.reserve(8 * (counts.size() + 2));
  PutU64(&out, total);
  PutU64(&out, overflow);
  for (uint64_t c : counts) {
    PutU64(&out, c);
  }
  return out;
}

}  // namespace obs
}  // namespace cloudgen
