#include "src/obs/trace_span.h"

#include <algorithm>
#include <chrono>

#include "src/obs/metrics.h"

namespace cloudgen {
namespace obs {

uint64_t NowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start)
          .count());
}

TraceCollector& TraceCollector::Global() {
  // Leaked on purpose, like Registry::Global(): spans may close during
  // exit-time teardown of other statics.
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::Record(const char* name, uint64_t ts_us, uint64_t dur_us,
                            uint32_t tid) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(SpanEvent{name, ts_us, dur_us, tid});
}

std::vector<SpanEvent> TraceCollector::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceCollector::NumEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceCollector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

void TraceCollector::WriteChromeTrace(std::ostream& out) const {
  std::vector<SpanEvent> sorted = Events();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.ts_us != b.ts_us) {
                       return a.ts_us < b.ts_us;
                     }
                     // Parents start with their children but end later; emit
                     // the longer span first so viewers nest correctly.
                     return a.dur_us > b.dur_us;
                   });
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (size_t i = 0; i < sorted.size(); ++i) {
    const SpanEvent& e = sorted[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "  {\"name\": \"" << e.name
        << "\", \"cat\": \"cloudgen\", \"ph\": \"X\", \"ts\": " << e.ts_us
        << ", \"dur\": " << e.dur_us << ", \"pid\": 0, \"tid\": " << e.tid << "}";
  }
  out << (sorted.empty() ? "]}\n" : "\n]}\n");
}

ScopedSpan::~ScopedSpan() {
  if (!active_) {
    return;
  }
  const uint64_t end_us = NowMicros();
  TraceCollector::Global().Record(name_, start_us_, end_us - start_us_, ThreadId());
}

}  // namespace obs
}  // namespace cloudgen
