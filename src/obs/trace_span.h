// Scoped trace spans exported in Chrome trace_event format (`--trace-out`),
// so a run opens directly in Perfetto or chrome://tracing.
//
// Usage:
//   CG_SPAN("train_epoch");          // records this scope's wall time
//
// Span names are static strings following the conventions in
// docs/OBSERVABILITY.md (stage.verb, lower_snake_case). Collection is off by
// default: a disabled collector makes CG_SPAN a single relaxed atomic load —
// no clock reads, no allocation — and recording never touches an Rng, so
// enabling tracing cannot perturb generated traces or trained models.
#ifndef SRC_OBS_TRACE_SPAN_H_
#define SRC_OBS_TRACE_SPAN_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace cloudgen {
namespace obs {

struct SpanEvent {
  std::string name;
  uint64_t ts_us = 0;   // Start, microseconds since collector start.
  uint64_t dur_us = 0;  // Wall duration, microseconds.
  uint32_t tid = 0;     // obs::ThreadId() of the recording thread.
};

// Microseconds on the steady clock since process start (well-ordered with
// span timestamps; never wall-clock).
uint64_t NowMicros();

class TraceCollector {
 public:
  TraceCollector() = default;
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  // Process-wide collector driven by --trace-out (never destroyed).
  static TraceCollector& Global();

  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool Enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Appends a completed span. Called by ~ScopedSpan (and tests).
  void Record(const char* name, uint64_t ts_us, uint64_t dur_us, uint32_t tid);

  // Completion-ordered copy of the recorded spans.
  std::vector<SpanEvent> Events() const;
  size_t NumEvents() const;
  void Reset();

  // Chrome trace_event JSON ("X" complete events, ts/dur in microseconds),
  // sorted by start time for stable output.
  void WriteChromeTrace(std::ostream& out) const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
};

// RAII span: snapshots the enabled flag at construction and records into the
// global collector on destruction. `name` must outlive the span (use string
// literals).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : name_(name), active_(TraceCollector::Global().Enabled()) {
    if (active_) {
      start_us_ = NowMicros();
    }
  }
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  bool active_;
  uint64_t start_us_ = 0;
};

}  // namespace obs
}  // namespace cloudgen

#define CG_SPAN_CONCAT_INNER(a, b) a##b
#define CG_SPAN_CONCAT(a, b) CG_SPAN_CONCAT_INNER(a, b)
// Records the enclosing scope as a span named `name` (a string literal).
#define CG_SPAN(name) \
  ::cloudgen::obs::ScopedSpan CG_SPAN_CONCAT(cg_span_, __COUNTER__)(name)

#endif  // SRC_OBS_TRACE_SPAN_H_
