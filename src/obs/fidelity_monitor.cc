#include "src/obs/fidelity_monitor.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"

namespace cloudgen {
namespace obs {

FidelityMonitor& FidelityMonitor::Global() {
  // Leaked like Registry::Global(): generation code caches no state from the
  // monitor, but exit-time telemetry export may still publish from it.
  static FidelityMonitor* monitor = new FidelityMonitor();
  return *monitor;
}

FidelityMonitor::FidelityMonitor()
    : lifetime_sketch_(/*relative_accuracy=*/0.01, /*min_value=*/1.0,
                       /*max_value=*/4.0e9) {}

void FidelityMonitor::Enable(FidelityReference reference) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  reference_ = std::move(reference);
  lifetime_sketch_.Reset();
  arrival_moments_.Reset();
  const size_t universe = std::max<size_t>(1, reference_.flavor_marginals.size());
  TopKCounter* counter = new TopKCounter(universe);
  // Old counter is leaked on purpose: a racing hot-path Observe may still
  // hold the previous pointer; Enable happens a handful of times per process.
  flavor_counts_.store(counter, std::memory_order_release);
  enabled_.store(true, std::memory_order_relaxed);
}

void FidelityMonitor::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void FidelityMonitor::ObserveJobImpl(double lifetime_seconds, int64_t flavor) {
  static Counter& jobs = Registry::Global().GetCounter("fidelity.jobs.observed");
  lifetime_sketch_.Observe(lifetime_seconds);
  TopKCounter* counter = flavor_counts_.load(std::memory_order_acquire);
  if (counter != nullptr) {
    counter->Observe(flavor);
  }
  jobs.Add(1);
}

void FidelityMonitor::ObservePeriodBatchesImpl(int64_t n_batches) {
  static Counter& periods = Registry::Global().GetCounter("fidelity.periods.observed");
  arrival_moments_.Observe(static_cast<double>(n_batches));
  periods.Add(1);
}

void FidelityMonitor::CountFallbackDraw() {
  static Counter& fallback = Registry::Global().GetCounter("fidelity.fallback_draws");
  fallback.Add(1);
}

void FidelityMonitor::CountGuardEvent() {
  static Counter& guard = Registry::Global().GetCounter("fidelity.guard_events");
  guard.Add(1);
}

TopKCounter::Snapshot FidelityMonitor::FlavorSnapshot() const {
  TopKCounter* counter = flavor_counts_.load(std::memory_order_acquire);
  if (counter == nullptr) {
    return TopKCounter::Snapshot{};
  }
  return counter->TakeSnapshot();
}

FidelityReference FidelityMonitor::Reference() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reference_;
}

void FidelityMonitor::PublishDrift() {
  if (!Enabled()) {
    return;
  }
  static Gauge& ks_gauge = Registry::Global().GetGauge("fidelity.lifetime.ks");
  static Gauge& tv_gauge = Registry::Global().GetGauge("fidelity.flavor.tv");
  static Gauge& arrival_gauge = Registry::Global().GetGauge("fidelity.arrival.rel_err");
  static Gauge& p50_gauge = Registry::Global().GetGauge("fidelity.lifetime.p50");
  static Gauge& p95_gauge = Registry::Global().GetGauge("fidelity.lifetime.p95");
  static Gauge& jobs_gauge = Registry::Global().GetGauge("fidelity.jobs.observed");
  static Series& ks_series = Registry::Global().GetSeries("fidelity.lifetime.ks");
  static Series& tv_series = Registry::Global().GetSeries("fidelity.flavor.tv");
  static Series& arrival_series = Registry::Global().GetSeries("fidelity.arrival.rel_err");

  const FidelityReference reference = Reference();
  const QuantileSketch::Snapshot lifetimes = LifetimeSnapshot();
  const StreamingMoments::Snapshot arrivals = ArrivalSnapshot();
  const TopKCounter::Snapshot flavors = FlavorSnapshot();

  // KS-style sup-distance between the sketch's empirical lifetime CDF and
  // the model CDF, evaluated at the finite bin edges. Empty stream => 0
  // drift (nothing observed contradicts nothing).
  double ks = 0.0;
  if (lifetimes.total > 0) {
    for (size_t j = 0; j < reference.lifetime_edges_sec.size() &&
                       j < reference.lifetime_cdf.size();
         ++j) {
      const double emp = lifetimes.CdfAtMost(reference.lifetime_edges_sec[j]);
      ks = std::max(ks, std::fabs(emp - reference.lifetime_cdf[j]));
    }
  }
  const double tv = flavors.TotalVariation(reference.flavor_marginals);
  double arrival_rel_err = 0.0;
  if (arrivals.count > 0) {
    const double ref_mean = reference.mean_batches_per_period;
    const double denom = std::max(std::fabs(ref_mean), 1e-12);
    arrival_rel_err = std::fabs(arrivals.Mean() - ref_mean) / denom;
  }

  ks_gauge.Set(ks);
  tv_gauge.Set(tv);
  arrival_gauge.Set(arrival_rel_err);
  p50_gauge.Set(lifetimes.Quantile(0.50));
  p95_gauge.Set(lifetimes.Quantile(0.95));
  jobs_gauge.Set(static_cast<double>(lifetimes.total));

  const double seq = static_cast<double>(publish_seq_.fetch_add(1, std::memory_order_relaxed));
  ks_series.Append(seq, ks);
  tv_series.Append(seq, tv);
  arrival_series.Append(seq, arrival_rel_err);
}

}  // namespace obs
}  // namespace cloudgen
