// Observe-only online fidelity monitor: accumulates the empirical lifetime,
// arrival, and flavor-mix distributions of generated traces as generation
// proceeds (hooked into PeriodEngine and the batched multi-stream engine) and
// publishes drift distances against reference distributions derived from the
// fitted model (survival hazards, IRLS arrival rates, flavor head marginals).
//
// Contract (same as the rest of src/obs): the monitor never reads or advances
// an Rng and nothing feeds back into model arithmetic — generated trace bytes
// are identical whether the monitor is enabled or not, at any thread count
// (pinned by tests/fidelity_test.cc). Disabled, every hook costs one relaxed
// atomic load. The reference is computed by src/core (which owns the models)
// and handed over as plain vectors, so this module stays std-only.
#ifndef SRC_OBS_FIDELITY_MONITOR_H_
#define SRC_OBS_FIDELITY_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/obs/sketch.h"

namespace cloudgen {
namespace obs {

// Model-derived reference distributions the empirical stream is compared to.
// Built by WorkloadModel::ComputeFidelityReference (src/core).
struct FidelityReference {
  // Finite lifetime-bin upper edges in seconds (ascending) and the model's
  // lifetime CDF evaluated at each edge. The open last bin carries the
  // remaining mass (its CDF point would be 1 and is omitted).
  std::vector<double> lifetime_edges_sec;
  std::vector<double> lifetime_cdf;
  // Marginal next-flavor distribution (EOB stripped, renormalized); index is
  // the flavor id. Defines the top-k counter's universe.
  std::vector<double> flavor_marginals;
  // Expected batch arrivals per period over the generation horizon
  // (mean IRLS rate x arrival_scale).
  double mean_batches_per_period = 0.0;
};

class FidelityMonitor {
 public:
  static FidelityMonitor& Global();

  // Installs a reference, resets the accumulated stream, and turns the
  // hooks on. Not safe against a generation run already in flight — callers
  // enable before generating (the CLI does it right after model load).
  void Enable(FidelityReference reference);
  void Disable();
  bool Enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Hot hooks — called per emitted job / per stepped period by the
  // generation engines. Guarded by one relaxed load when disabled.
  void ObserveJob(double lifetime_seconds, int64_t flavor) {
    if (!Enabled()) {
      return;
    }
    ObserveJobImpl(lifetime_seconds, flavor);
  }
  void ObservePeriodBatches(int64_t n_batches) {
    if (!Enabled()) {
      return;
    }
    ObservePeriodBatchesImpl(n_batches);
  }

  // Degenerate-sampling visibility (satellite): counted unconditionally so a
  // drift score can never be silently polluted by uniform-fallback draws or
  // guard interventions that happened while the monitor was off.
  void CountFallbackDraw();
  void CountGuardEvent();

  // Computes and publishes the drift gauges + series from the accumulated
  // stream (cold path; the rolling exporter calls it each interval and the
  // CLI once at exit). No-op while disabled.
  //   fidelity.lifetime.ks    sup |F_emp - F_model| over the finite bin edges
  //   fidelity.flavor.tv      total variation, empirical vs marginal mix
  //   fidelity.arrival.rel_err  |mean batches/period - reference| / reference
  //   fidelity.lifetime.p50/.p95  sketch quantiles (seconds)
  //   fidelity.jobs.observed  gauge mirror of the observed-job count
  void PublishDrift();

  // Snapshot accessors for tests and offline analysis.
  QuantileSketch::Snapshot LifetimeSnapshot() const { return lifetime_sketch_.TakeSnapshot(); }
  StreamingMoments::Snapshot ArrivalSnapshot() const { return arrival_moments_.TakeSnapshot(); }
  TopKCounter::Snapshot FlavorSnapshot() const;
  FidelityReference Reference() const;

 private:
  FidelityMonitor();

  void ObserveJobImpl(double lifetime_seconds, int64_t flavor);
  void ObservePeriodBatchesImpl(int64_t n_batches);

  std::atomic<bool> enabled_{false};
  // Lifetimes: 1 s .. ~127 years at 1% relative accuracy; zero-length jobs
  // land in the exact underflow bucket.
  QuantileSketch lifetime_sketch_;
  StreamingMoments arrival_moments_;

  // The flavor counter's universe tracks the reference vocabulary, so the
  // counter is rebuilt (under mu_) by Enable; the hot path reads the pointer
  // with one relaxed load. publish_seq_ numbers the drift series points.
  mutable std::mutex mu_;
  FidelityReference reference_;
  std::atomic<TopKCounter*> flavor_counts_{nullptr};
  std::atomic<uint64_t> publish_seq_{0};
};

}  // namespace obs
}  // namespace cloudgen

#endif  // SRC_OBS_FIDELITY_MONITOR_H_
