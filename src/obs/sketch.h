// Deterministic, mergeable streaming sketches for online fidelity telemetry:
// a log-bucket quantile sketch, streaming moments, and a bounded-universe
// top-k frequency counter. All three follow the registry's sharding contract
// (src/obs/metrics.h): updates are relaxed atomics into one of kMetricShards
// cache-line-separated cells picked by the dense thread id, so pool workers
// hammering the same sketch rarely share a line, and a snapshot sums the
// shards in a fixed order.
//
// Determinism contract: snapshots are byte-for-byte identical regardless of
// how observations were interleaved across threads or how partial snapshots
// are merged. That is why the quantile sketch uses deterministic DDSketch-
// style logarithmic buckets rather than randomized KLL compaction — integer
// bucket counts sum exactly in any order, while a KLL compactor's coin flips
// would make the summary depend on arrival order. Likewise the moments
// accumulator keeps per-shard raw sums (count, sum, sum of squares) reduced
// in fixed shard order instead of a classic single-stream Welford recurrence,
// whose merge (Chan's formula) is not bitwise order-independent; mean and
// variance are derived at snapshot time. For the integer-valued quantities
// the fidelity monitor feeds in (lifetimes in whole seconds, per-period batch
// counts), double sums stay below 2^53 and are therefore exact — snapshots
// memcmp-equal at any thread count.
//
// Like the rest of src/obs this header depends only on the standard library.
#ifndef SRC_OBS_SKETCH_H_
#define SRC_OBS_SKETCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace cloudgen {
namespace obs {

// Streaming quantile sketch over non-negative values with bounded relative
// error: values land in geometric buckets (gamma = (1+a)/(1-a) for relative
// accuracy `a`), so any quantile estimate is within relative `a` of some
// value in the stream's true bucket. Values <= min_value (including zero)
// share an exact underflow bucket; values past max_value share an overflow
// bucket whose estimate saturates at max_value.
class QuantileSketch {
 public:
  explicit QuantileSketch(double relative_accuracy = 0.01,
                          double min_value = 1.0, double max_value = 4.0e9);

  // Relaxed atomics only; safe from any thread.
  void Observe(double v);

  // Zeroes every cell. NOT safe against concurrent Observe; call between
  // runs (the fidelity monitor resets on Enable).
  void Reset();

  // Order-independent aggregate. Two snapshots built from the same multiset
  // of observations — regardless of thread count, shard assignment, or merge
  // order — serialize to identical bytes.
  struct Snapshot {
    double relative_accuracy = 0.0;
    double min_value = 0.0;
    double max_value = 0.0;
    uint64_t total = 0;
    // counts[0] is the underflow bucket (v <= min_value), counts.back() the
    // overflow bucket (v > max_value); bucket i in between covers
    // (min_value * gamma^(i-1), min_value * gamma^i].
    std::vector<uint64_t> counts;

    // Value estimate at quantile q in [0, 1] (geometric bucket midpoint;
    // relative error <= relative_accuracy against the true quantile's
    // bucket). Returns 0 when the snapshot is empty.
    double Quantile(double q) const;
    // Fraction of observations <= v, with linear interpolation inside the
    // bucket containing v. Monotone in v; exact at bucket edges.
    double CdfAtMost(double v) const;

    // Adds another snapshot of the SAME configuration into this one.
    void MergeFrom(const Snapshot& other);
    // Canonical little-endian byte encoding (config + counts) for memcmp
    // determinism checks and external diffing.
    std::string SerializeBytes() const;
  };
  Snapshot TakeSnapshot() const;

  size_t NumBuckets() const { return num_buckets_; }

 private:
  size_t BucketOf(double v) const;

  double relative_accuracy_;
  double min_value_;
  double max_value_;
  double log_min_;
  double inv_log_gamma_;
  size_t num_buckets_;  // Including underflow and overflow.
  // kMetricShards rows of num_buckets_ cells; rows are cache-line padded by
  // rounding the stride up to a multiple of 8 (64 bytes of u64 cells).
  size_t stride_;
  std::unique_ptr<std::atomic<uint64_t>[]> cells_;
};

// Streaming mean/variance via per-shard raw moments (see the header comment
// for why this beats a Welford recurrence under the merge-order contract).
class StreamingMoments {
 public:
  StreamingMoments() = default;

  void Observe(double v);
  void Reset();

  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double sum_squares = 0.0;

    double Mean() const;
    // Population variance, clamped at zero against rounding.
    double Variance() const;
    void MergeFrom(const Snapshot& other);
    std::string SerializeBytes() const;
  };
  Snapshot TakeSnapshot() const;

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_bits{0};
    std::atomic<uint64_t> sum_squares_bits{0};
  };
  Cell cells_[kMetricShards];
};

// Exact frequency counter over a bounded id universe [0, universe); ids
// outside the universe land in one overflow cell. "Top-k" is resolved at
// snapshot time by sorting (count desc, id asc) — deterministic even on
// ties — which is exact rather than approximate because the fidelity
// monitor's universe (the flavor vocabulary) is small and known up front.
class TopKCounter {
 public:
  explicit TopKCounter(size_t universe);

  void Observe(int64_t id);
  void Reset();

  struct Entry {
    int64_t id = 0;
    uint64_t count = 0;
  };
  struct Snapshot {
    uint64_t total = 0;
    uint64_t overflow = 0;
    std::vector<uint64_t> counts;  // counts[id] for id in [0, universe).

    // Up to k entries with count > 0, ordered (count desc, id asc).
    std::vector<Entry> TopK(size_t k) const;
    // Total-variation distance 0.5 * sum |empirical - ref| against a
    // reference distribution over the universe (ref is padded with zeros or
    // truncated to the universe size; overflow mass counts fully against).
    // Returns 0 for an empty snapshot.
    double TotalVariation(const std::vector<double>& ref) const;
    void MergeFrom(const Snapshot& other);
    std::string SerializeBytes() const;
  };
  Snapshot TakeSnapshot() const;

  size_t Universe() const { return universe_; }

 private:
  size_t universe_;
  size_t stride_;  // universe_ + 1 overflow cell, padded to a cache line.
  std::unique_ptr<std::atomic<uint64_t>[]> cells_;
};

}  // namespace obs
}  // namespace cloudgen

#endif  // SRC_OBS_SKETCH_H_
