// Lock-cheap metrics registry: counters, gauges, fixed-bucket histograms and
// append-only series, exported as one JSON snapshot (`--metrics-out`).
//
// Hot-path contract: an update on an already-registered metric is a handful of
// relaxed atomic operations — no locks, no allocation. Counters and histograms
// shard their cells across a small fixed array indexed by a dense per-thread
// id, so concurrent writers from the thread pool (ParallelFor, GEMM shards)
// rarely touch the same cache line; a snapshot sums the shards. Registration
// (name lookup) takes a mutex and is meant to happen once per call site —
// cache the returned reference, e.g. in a function-local static.
//
// Telemetry is observe-only by design: nothing in this module reads or
// advances an Rng, and nothing feeds back into model arithmetic, so traces and
// model files are bitwise-identical whether or not a snapshot is ever taken.
//
// This library sits below src/util (cloudgen_util links cloudgen_obs), so it
// depends only on the standard library.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace cloudgen {
namespace obs {

// Dense id for the calling thread: 0 for the first thread that asks, 1 for
// the next, and so on. Stable for the thread's lifetime; used to pick metric
// shards and to tag log lines and trace spans.
uint32_t ThreadId();

// Shard fan-out for counters and histograms. A power of two so the shard
// index is a mask of ThreadId(); collisions are still exact (fetch_add).
inline constexpr size_t kMetricShards = 16;

namespace internal {

struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};

// Adds `delta` to an atomic double stored as bits (CAS loop; uncontended in
// practice because each shard is written by few threads).
void AtomicDoubleAdd(std::atomic<uint64_t>* bits, double delta);

}  // namespace internal

// Monotonically increasing integer metric. Snapshot value is exact: every
// Add lands in some shard's fetch_add.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[ThreadId() & (kMetricShards - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  uint64_t Value() const;

 private:
  friend class Registry;
  Counter() = default;
  void Reset();
  internal::ShardCell shards_[kMetricShards];
};

// Last-write-wins double metric with an Add for up/down tracking (queue
// depth, busy workers). Single cell: gauges are written at coarse points.
class Gauge {
 public:
  void Set(double v);
  void Add(double delta);
  double Value() const;

 private:
  friend class Registry;
  Gauge() = default;
  void Reset();
  std::atomic<uint64_t> bits_{0};
};

// Fixed-bucket histogram. Bucket i counts observations with
// v <= edges[i] (and v > edges[i-1]); one final overflow bucket catches
// v > edges.back(). Counts are exact; `sum` is a relaxed double accumulation.
class Histogram {
 public:
  void Observe(double v);

  const std::vector<double>& Edges() const { return edges_; }
  size_t NumBuckets() const { return edges_.size() + 1; }
  // Aggregated per-bucket counts (NumBuckets() entries, overflow last).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const;
  double Sum() const;

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> edges);
  void Reset();

  std::vector<double> edges_;
  // kMetricShards rows of NumBuckets() bucket cells each.
  std::vector<internal::ShardCell> cells_;
  struct alignas(64) SumCell {
    std::atomic<uint64_t> sum_bits{0};
    std::atomic<uint64_t> count{0};
  };
  SumCell sums_[kMetricShards];
};

// Append-only (step, value) sequence for per-epoch/per-iteration telemetry
// (loss curves, IRLS deviance). Appends take a mutex — strictly cold-path.
class Series {
 public:
  void Append(double step, double value);
  std::vector<std::pair<double, double>> Points() const;

 private:
  friend class Registry;
  Series() = default;
  void Reset();
  mutable std::mutex mu_;
  std::vector<std::pair<double, double>> points_;
};

// Default histogram edges for millisecond timings: 0.01 ms .. ~2 min, one
// bucket per decade half-step.
const std::vector<double>& LatencyBucketsMs();

// Histogram edges for nanosecond-scale timings (per-token generation steps):
// 250 ns .. 10 ms, one bucket per decade half-step.
const std::vector<double>& StepLatencyBucketsNs();

// Plain-data aggregate of a registry's state, decoupled from the live metric
// objects so snapshots can also be reconstructed from a serialized
// `cloudgen.metrics.v1` file (util/metrics_json.h) and re-rendered — e.g. by
// `cloudgen metrics-dump --prom`.
struct HistogramData {
  std::vector<double> edges;
  std::vector<uint64_t> counts;  // edges.size() + 1 entries, overflow last.
  uint64_t count = 0;
  double sum = 0.0;
};
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
  std::map<std::string, std::vector<std::pair<double, double>>> series;
};

// Quantile estimate (q in [0, 1]) from fixed-bucket histogram counts with
// linear interpolation inside the target bucket; the overflow bucket reports
// the last finite edge. Returns 0 for an empty histogram.
double HistogramQuantile(const HistogramData& hist, double q);

// Prometheus text exposition (version 0.0.4) of a snapshot: names are
// sanitized (non [a-zA-Z0-9_] -> '_') and prefixed `cloudgen_`; histograms
// render cumulative `_bucket{le=...}` rows plus `_sum`/`_count`, and every
// non-empty histogram additionally emits derived `_p50`/`_p95`/`_p99`
// gauges so latency percentiles are scrapeable directly. Series have no
// Prometheus equivalent and are skipped (their latest values are published
// as gauges by the producers that need them scraped).
void WritePrometheusText(const RegistrySnapshot& snap, std::ostream& out);

// Name-keyed registry. Metrics are created on first Get* and live for the
// process lifetime (Reset zeroes values but never invalidates references, so
// cached references stay safe).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Process-wide registry (never destroyed).
  static Registry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // An existing histogram is returned as-is; `edges` only applies on first
  // registration and must be strictly increasing.
  Histogram& GetHistogram(const std::string& name, const std::vector<double>& edges);
  Histogram& GetHistogram(const std::string& name);  // LatencyBucketsMs().
  Series& GetSeries(const std::string& name);

  // JSON snapshot of every registered metric, keys sorted by name:
  //   {"schema": "cloudgen.metrics.v1",
  //    "counters": {...}, "gauges": {...},
  //    "histograms": {name: {"edges": [...], "counts": [...],
  //                          "count": N, "sum": S}},
  //    "series": {name: [[step, value], ...]}}
  void WriteJson(std::ostream& out) const;

  // Plain-data copy of every registered metric.
  RegistrySnapshot Snapshot() const;

  // Prometheus text exposition of the current state (see WritePrometheusText).
  void WritePrometheus(std::ostream& out) const;

  // Derives `<hist>.p50` / `<hist>.p95` / `<hist>.p99` gauges for every
  // histogram with at least one observation (HistogramQuantile). Called at
  // snapshot time by the rolling exporter and the exit-time export, so JSON
  // snapshots carry scrape-ready percentiles without any hot-path cost.
  void UpdatePercentileGauges();

  // Zeroes all values in place (references stay valid). For tests.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Series>> series_;
};

}  // namespace obs
}  // namespace cloudgen

#endif  // SRC_OBS_METRICS_H_
