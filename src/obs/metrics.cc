#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace cloudgen {
namespace obs {

uint32_t ThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace internal {

void AtomicDoubleAdd(std::atomic<uint64_t>* bits, double delta) {
  uint64_t observed = bits->load(std::memory_order_relaxed);
  while (true) {
    const uint64_t desired = std::bit_cast<uint64_t>(std::bit_cast<double>(observed) + delta);
    if (bits->compare_exchange_weak(observed, desired, std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace internal

// --- Counter ---------------------------------------------------------------

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const internal::ShardCell& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (internal::ShardCell& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// --- Gauge -----------------------------------------------------------------

void Gauge::Set(double v) {
  bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
}

void Gauge::Add(double delta) { internal::AtomicDoubleAdd(&bits_, delta); }

double Gauge::Value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

void Gauge::Reset() { bits_.store(0, std::memory_order_relaxed); }

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)), cells_(kMetricShards * (edges_.size() + 1)) {}

void Histogram::Observe(double v) {
  // Linear scan: bucket counts are small (~a dozen) and edges are hot in
  // cache; a branchy binary search wins nothing here.
  size_t bucket = edges_.size();  // Overflow bucket.
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (v <= edges_[i]) {
      bucket = i;
      break;
    }
  }
  const size_t shard = ThreadId() & (kMetricShards - 1);
  cells_[shard * NumBuckets() + bucket].value.fetch_add(1, std::memory_order_relaxed);
  sums_[shard].count.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicDoubleAdd(&sums_[shard].sum_bits, v);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(NumBuckets(), 0);
  for (size_t shard = 0; shard < kMetricShards; ++shard) {
    for (size_t b = 0; b < NumBuckets(); ++b) {
      counts[b] += cells_[shard * NumBuckets() + b].value.load(std::memory_order_relaxed);
    }
  }
  return counts;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const SumCell& cell : sums_) {
    total += cell.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const SumCell& cell : sums_) {
    total += std::bit_cast<double>(cell.sum_bits.load(std::memory_order_relaxed));
  }
  return total;
}

void Histogram::Reset() {
  for (internal::ShardCell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
  for (SumCell& cell : sums_) {
    cell.sum_bits.store(0, std::memory_order_relaxed);
    cell.count.store(0, std::memory_order_relaxed);
  }
}

// --- Series ----------------------------------------------------------------

void Series::Append(double step, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.emplace_back(step, value);
}

std::vector<std::pair<double, double>> Series::Points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_;
}

void Series::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
}

// --- Registry --------------------------------------------------------------

const std::vector<double>& LatencyBucketsMs() {
  static const std::vector<double>* buckets = new std::vector<double>{
      0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0,
      1000.0, 3000.0, 10000.0, 30000.0, 120000.0};
  return *buckets;
}

const std::vector<double>& StepLatencyBucketsNs() {
  static const std::vector<double>* buckets = new std::vector<double>{
      250.0,     500.0,     1000.0,    2500.0,    5000.0,     10000.0,
      25000.0,   50000.0,   100000.0,  250000.0,  500000.0,   1000000.0,
      2500000.0, 5000000.0, 10000000.0};
  return *buckets;
}

Registry& Registry::Global() {
  // Leaked on purpose: pool workers and exit-time code may still be holding
  // metric references; the registry must outlive every other static.
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) {
    slot.reset(new Counter());
  }
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) {
    slot.reset(new Gauge());
  }
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  const std::vector<double>& edges) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) {
    slot.reset(new Histogram(edges));
  }
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  return GetHistogram(name, LatencyBucketsMs());
}

Series& Registry::GetSeries(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Series>& slot = series_[name];
  if (!slot) {
    slot.reset(new Series());
  }
  return *slot;
}

namespace {

// Integral values print as integers; everything else round-trips via %.17g
// (dyadic rationals like 0.25 still come out short).
void AppendNumber(std::ostream& out, double v) {
  if (std::isfinite(v) && v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    out << static_cast<long long>(v);
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

void AppendString(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void Registry::WriteJson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\n  \"schema\": \"cloudgen.metrics.v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "\n" : ",\n") << "    ";
    first = false;
    AppendString(out, name);
    out << ": " << counter->Value();
  }
  out << (first ? "},\n" : "\n  },\n");

  out << "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "\n" : ",\n") << "    ";
    first = false;
    AppendString(out, name);
    out << ": ";
    AppendNumber(out, gauge->Value());
  }
  out << (first ? "},\n" : "\n  },\n");

  out << "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    out << (first ? "\n" : ",\n") << "    ";
    first = false;
    AppendString(out, name);
    out << ": {\"edges\": [";
    for (size_t i = 0; i < hist->Edges().size(); ++i) {
      if (i > 0) {
        out << ", ";
      }
      AppendNumber(out, hist->Edges()[i]);
    }
    out << "], \"counts\": [";
    const std::vector<uint64_t> counts = hist->BucketCounts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) {
        out << ", ";
      }
      out << counts[i];
    }
    out << "], \"count\": " << hist->Count() << ", \"sum\": ";
    AppendNumber(out, hist->Sum());
    out << "}";
  }
  out << (first ? "},\n" : "\n  },\n");

  out << "  \"series\": {";
  first = true;
  for (const auto& [name, series] : series_) {
    out << (first ? "\n" : ",\n") << "    ";
    first = false;
    AppendString(out, name);
    out << ": [";
    const auto points = series->Points();
    for (size_t i = 0; i < points.size(); ++i) {
      if (i > 0) {
        out << ", ";
      }
      out << "[";
      AppendNumber(out, points[i].first);
      out << ", ";
      AppendNumber(out, points[i].second);
      out << "]";
    }
    out << "]";
  }
  out << (first ? "}\n" : "\n  }\n");
  out << "}\n";
}

double HistogramQuantile(const HistogramData& hist, double q) {
  if (hist.count == 0 || hist.counts.empty()) {
    return 0.0;
  }
  const double clamped_q = std::min(1.0, std::max(0.0, q));
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(clamped_q * static_cast<double>(hist.count))));
  uint64_t cum = 0;
  for (size_t b = 0; b < hist.counts.size(); ++b) {
    const uint64_t in_bucket = hist.counts[b];
    if (cum + in_bucket < rank) {
      cum += in_bucket;
      continue;
    }
    if (b >= hist.edges.size()) {
      // Overflow bucket is unbounded; the last finite edge is the best
      // defensible estimate.
      return hist.edges.empty() ? 0.0 : hist.edges.back();
    }
    const double lo = b == 0 ? 0.0 : hist.edges[b - 1];
    const double hi = hist.edges[b];
    const double frac =
        in_bucket == 0 ? 1.0
                       : static_cast<double>(rank - cum) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * frac;
  }
  return hist.edges.empty() ? 0.0 : hist.edges.back();
}

namespace {

std::string PrometheusName(const std::string& name, const char* suffix = "") {
  std::string out = "cloudgen_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  out += suffix;
  return out;
}

}  // namespace

void WritePrometheusText(const RegistrySnapshot& snap, std::ostream& out) {
  for (const auto& [name, value] : snap.counters) {
    // The conventional _total suffix also keeps counters from colliding with
    // a same-named gauge (e.g. the fidelity.jobs.observed counter/gauge pair).
    const std::string prom = PrometheusName(name, "_total");
    out << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " gauge\n" << prom << " ";
    AppendNumber(out, value);
    out << "\n";
  }
  for (const auto& [name, hist] : snap.histograms) {
    const std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " histogram\n";
    uint64_t cum = 0;
    for (size_t b = 0; b < hist.edges.size() && b < hist.counts.size(); ++b) {
      cum += hist.counts[b];
      out << prom << "_bucket{le=\"";
      AppendNumber(out, hist.edges[b]);
      out << "\"} " << cum << "\n";
    }
    out << prom << "_bucket{le=\"+Inf\"} " << hist.count << "\n";
    out << prom << "_sum ";
    AppendNumber(out, hist.sum);
    out << "\n" << prom << "_count " << hist.count << "\n";
    if (hist.count > 0) {
      // Derived percentile gauges: the scrape-side p95 most dashboards and
      // the acceptance gates want, without needing recording rules.
      const struct {
        const char* suffix;
        double q;
      } kQuantiles[] = {{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}};
      for (const auto& [suffix, q] : kQuantiles) {
        const std::string gauge = PrometheusName(name, suffix);
        out << "# TYPE " << gauge << " gauge\n" << gauge << " ";
        AppendNumber(out, HistogramQuantile(hist, q));
        out << "\n";
      }
    }
  }
}

RegistrySnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramData data;
    data.edges = hist->Edges();
    data.counts = hist->BucketCounts();
    data.count = hist->Count();
    data.sum = hist->Sum();
    snap.histograms.emplace(name, std::move(data));
  }
  for (const auto& [name, series] : series_) {
    snap.series[name] = series->Points();
  }
  return snap;
}

void Registry::WritePrometheus(std::ostream& out) const {
  WritePrometheusText(Snapshot(), out);
}

void Registry::UpdatePercentileGauges() {
  // Snapshot first, then set gauges: GetGauge retakes mu_, so deriving while
  // iterating histograms_ under the lock would self-deadlock.
  std::vector<std::pair<std::string, HistogramData>> hists;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hists.reserve(histograms_.size());
    for (const auto& [name, hist] : histograms_) {
      if (hist->Count() == 0) {
        continue;
      }
      HistogramData data;
      data.edges = hist->Edges();
      data.counts = hist->BucketCounts();
      data.count = hist->Count();
      data.sum = hist->Sum();
      hists.emplace_back(name, std::move(data));
    }
  }
  for (const auto& [name, data] : hists) {
    GetGauge(name + ".p50").Set(HistogramQuantile(data, 0.50));
    GetGauge(name + ".p95").Set(HistogramQuantile(data, 0.95));
    GetGauge(name + ".p99").Set(HistogramQuantile(data, 0.99));
  }
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, hist] : histograms_) {
    hist->Reset();
  }
  for (auto& [name, series] : series_) {
    series->Reset();
  }
}

}  // namespace obs
}  // namespace cloudgen
