#include "src/nn/linear.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace cloudgen {

Linear::Linear(size_t in_dim, size_t out_dim, Rng& rng)
    : weight_(in_dim, out_dim),
      bias_(1, out_dim),
      grad_weight_(in_dim, out_dim),
      grad_bias_(1, out_dim) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in_dim + out_dim));
  weight_.RandomUniform(rng, bound);
}

void Linear::Forward(const Matrix& x, Matrix* y) {
  cached_x_ = x;
  ForwardInference(x, y);
}

void Linear::ForwardInference(const Matrix& x, Matrix* y) const {
  CG_CHECK(y != nullptr);
  CG_CHECK(x.Cols() == weight_.Rows());
  y->Resize(x.Rows(), weight_.Cols());
  Gemm(false, false, 1.0f, x, weight_, 0.0f, y);
  for (size_t r = 0; r < y->Rows(); ++r) {
    float* row = y->Row(r);
    const float* b = bias_.Row(0);
    for (size_t c = 0; c < y->Cols(); ++c) {
      row[c] += b[c];
    }
  }
}

void Linear::StepForwardPacked(const float* x, float* acc, float* y) const {
  CG_DCHECK(PackedReady());
  const size_t in = weight_.Rows();
  const size_t out = weight_.Cols();
  std::fill(acc, acc + out, 0.0f);
  GemvAccumulate(x, in, packed_.Row(0), out, acc);
  const float* b = packed_.Row(in);
  for (size_t j = 0; j < out; ++j) {
    // Matches ForwardInference exactly: Gemm's beta=0 epilogue stores
    // 0.0f + chain, then the bias loop adds b on top.
    y[j] = (0.0f + acc[j]) + b[j];
  }
}

void Linear::ForwardSpan(const float* x, size_t c0, size_t n, float* acc,
                         float* y) const {
  CG_DCHECK(c0 + n <= weight_.Cols());
  const size_t in = weight_.Rows();
  std::fill(acc, acc + n, 0.0f);
  GemvAccumulateStrided(x, in, weight_.Row(0) + c0, weight_.Cols(), n, acc);
  const float* b = bias_.Row(0) + c0;
  for (size_t j = 0; j < n; ++j) {
    // Same epilogue order as ForwardInference: beta=0 store, then bias add.
    y[j] = (0.0f + acc[j]) + b[j];
  }
}

void Linear::Prepack() {
  const size_t in = weight_.Rows();
  packed_.Resize(in + 1, weight_.Cols());
  std::copy(weight_.Data(), weight_.Data() + weight_.Size(), packed_.Row(0));
  std::copy(bias_.Data(), bias_.Data() + bias_.Size(), packed_.Row(in));
}

void Linear::Backward(const Matrix& dy, Matrix* dx) {
  CG_CHECK(dy.Rows() == cached_x_.Rows());
  CG_CHECK(dy.Cols() == weight_.Cols());
  // dW += X^T dY.
  Gemm(true, false, 1.0f, cached_x_, dy, 1.0f, &grad_weight_);
  // db += column sums of dY.
  for (size_t r = 0; r < dy.Rows(); ++r) {
    const float* row = dy.Row(r);
    float* gb = grad_bias_.Row(0);
    for (size_t c = 0; c < dy.Cols(); ++c) {
      gb[c] += row[c];
    }
  }
  if (dx != nullptr) {
    dx->Resize(dy.Rows(), weight_.Rows());
    Gemm(false, true, 1.0f, dy, weight_, 0.0f, dx);
  }
}

std::vector<Matrix*> Linear::Params() {
  InvalidatePacked();
  return {&weight_, &bias_};
}

std::vector<const Matrix*> Linear::Params() const { return {&weight_, &bias_}; }

std::vector<Matrix*> Linear::Grads() { return {&grad_weight_, &grad_bias_}; }

void Linear::ZeroGrads() {
  grad_weight_.SetZero();
  grad_bias_.SetZero();
}

void Linear::Save(std::ostream& out) const {
  WriteMatrix(out, weight_);
  WriteMatrix(out, bias_);
}

void Linear::Load(std::istream& in) {
  weight_ = ReadMatrix(in);
  bias_ = ReadMatrix(in);
  InvalidatePacked();
  grad_weight_.Resize(weight_.Rows(), weight_.Cols());
  grad_bias_.Resize(bias_.Rows(), bias_.Cols());
}

}  // namespace cloudgen
