// Loss functions for the two sequence models.
//
// * SoftmaxCrossEntropy — flavor LSTM (§2.2): multinomial NLL over K flavors
//   plus the EOB token.
// * MaskedBceWithLogits — lifetime LSTM (§2.3): each of the J outputs is an
//   independent logistic hazard; a mask selects the outputs that factor into
//   the likelihood (survived bins contribute (1 - h), the event bin
//   contributes h, bins after the event or censoring point contribute
//   nothing). Mirrors PyTorch's BCEWithLogitsLoss with a per-element weight.
#ifndef SRC_NN_LOSSES_H_
#define SRC_NN_LOSSES_H_

#include <cstdint>
#include <vector>

#include "src/nn/factored_softmax.h"
#include "src/tensor/matrix.h"

namespace cloudgen {

// Computes mean NLL over the batch and the gradient w.r.t. logits.
// `logits` is (B, K); `targets` holds B class indices in [0, K).
// Rows with target == kIgnoreTarget contribute neither loss nor gradient.
inline constexpr int32_t kIgnoreTarget = -1;
double SoftmaxCrossEntropy(const Matrix& logits, const std::vector<int32_t>& targets,
                           Matrix* dlogits);

// Cross-entropy for the class-factored softmax (ClassFactoredHead). `logits`
// is the concatenated (B, C + K) output [u | v]: per row, the NLL is
//
//   -log softmax_C(u)[c(t)] - log softmax_slice(v[slice(c(t))])[t]
//
// i.e. the cluster term softmaxes over all C clusters and the member term
// only over the target's own slice; member columns outside that slice get
// zero gradient (their probability mass is governed by their own cluster's
// rows). Same conventions as SoftmaxCrossEntropy otherwise: rows with
// target == kIgnoreTarget are skipped, the mean is over counted rows, and
// the gradient carries the same 1/counted scaling.
double FactoredSoftmaxCrossEntropy(const Matrix& logits,
                                   const std::vector<int32_t>& targets,
                                   const FactoredVocabMap& map, Matrix* dlogits);

// Censoring-aware softmax cross-entropy for PMF-parameterized survival
// models (the Kvamme & Borgan alternative to the hazard head): an uncensored
// job with event bin k contributes -log p_k; a job censored in bin c
// contributes -log sum_{j >= c} p_j (the probability of surviving past the
// censoring point). `targets` holds the bin index; `censored` flags each row.
// Returns the mean loss; writes the gradient w.r.t. logits.
double CensoredSoftmaxCrossEntropy(const Matrix& logits, const std::vector<int32_t>& targets,
                                   const std::vector<uint8_t>& censored, Matrix* dlogits);

// Computes summed BCE-with-logits over masked elements, normalized by the
// number of masked elements, and the gradient w.r.t. logits.
// `logits`, `targets`, `mask` are all (B, J); mask elements are 0 or 1.
// Returns 0 with zero gradient if the mask is empty.
//
// Sign convention matches the paper: the hazard is h = sigmoid(y) and a
// target of 1 means "the event happened in this bin" (suffered the hazard).
double MaskedBceWithLogits(const Matrix& logits, const Matrix& targets, const Matrix& mask,
                           Matrix* dlogits);

}  // namespace cloudgen

#endif  // SRC_NN_LOSSES_H_
