// LSTM layer (Hochreiter & Schmidhuber) with full backpropagation through
// time, plus a stacked multi-layer wrapper. This is the recurrent substrate
// for both the flavor-sequence model (§2.2) and the lifetime-hazard model
// (§2.3) of the paper.
//
// Layout conventions:
//  * A minibatch timestep is a Matrix of shape (batch, dim).
//  * A sequence is a std::vector<Matrix> of length T.
//  * Gate pre-activations are packed as [i | f | g | o], each of width H.
//
// Training and generation modes:
//  * ForwardSequence/BackwardSequence run over whole sequences with caches
//    (used by the trainer; hidden state is zeroed before each forward pass,
//    matching §4.2 of the paper).
//  * StepForward advances one step from an explicit LstmState (used during
//    trace generation where jobs are sampled one at a time).
#ifndef SRC_NN_LSTM_H_
#define SRC_NN_LSTM_H_

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "src/tensor/matrix.h"

namespace cloudgen {

class Rng;

// Per-layer recurrent state (h and c), each of shape (batch, hidden).
struct LstmState {
  std::vector<Matrix> h;
  std::vector<Matrix> c;

  // Zero state for `layers` layers, `batch` rows, `hidden` columns.
  static LstmState Zero(size_t layers, size_t batch, size_t hidden);
};

// Single LSTM layer.
class LstmLayer {
 public:
  LstmLayer() = default;
  LstmLayer(size_t in_dim, size_t hidden_dim, Rng& rng);

  size_t InDim() const { return wx_.Rows(); }
  size_t HiddenDim() const { return hidden_; }

  // Runs the layer over `inputs` (T matrices of shape (B, in)), starting from
  // zero state, caching everything needed by BackwardSequence. Writes the T
  // hidden-state outputs (B, H) to `outputs`.
  //
  // Lifetime contract: the layer keeps a *view* of `inputs` (no per-timestep
  // copy), so the caller must keep `inputs` alive and unmodified until the
  // matching BackwardSequence returns (or until the next ForwardSequence
  // replaces the view). Every current caller (trainers, tests) owns the input
  // sequence across the forward+backward pair.
  void ForwardSequence(const std::vector<Matrix>& inputs, std::vector<Matrix>* outputs);

  // Given dL/dH_t for every step, accumulates parameter gradients and writes
  // dL/dX_t per step into `dinputs` (pass nullptr to skip).
  void BackwardSequence(const std::vector<Matrix>& doutputs, std::vector<Matrix>* dinputs);

  // Single-step inference. `h` and `c` are this layer's rows of an LstmState
  // and are updated in place; `out_h` receives the new hidden state.
  void StepForward(const Matrix& x, Matrix* h, Matrix* c) const;

  // Zero-allocation batch-1 step over the packed weights (PackedReady() must
  // be true). `x` has InDim() elements; `h` and `c` (HiddenDim() each) are
  // updated in place. `gates` and `acc` are caller-owned scratch of 4*H
  // floats each. Bitwise-identical to StepForward: the GEMV chains match the
  // blocked GEMM's per-element chains and the gate activation shares one
  // helper with the reference path.
  void StepForwardFast(const float* x, float* h, float* c, float* gates,
                       float* acc) const;

  // Batched multi-stream step: row r of `x` (B, InDim) is stream r's input
  // and row r of `h`/`c` (B, H each) is its recurrent state, updated in
  // place. `gates` is caller-owned scratch, resized to (B, 4H). Row r's
  // outputs are bitwise-identical to a batch-1 StepForward/StepForwardFast
  // on that row alone: the two GEMMs compute every output element as one
  // k-ascending chain independent of the other rows, and the gate
  // activation is the same shared helper as both single-stream routes.
  void StepForwardBatch(const Matrix& x, Matrix* h, Matrix* c, Matrix* gates) const;

  // Packed-weight cache for the inference fast path: one contiguous
  // [wx_; wh_] block built from the current parameters. Any route that can
  // mutate parameters — mutable Params() and Load() — invalidates it, so a
  // stale pack can never be consumed; callers re-Prepack() once after the
  // last parameter update (end of training / model load).
  void Prepack();
  void InvalidatePacked() { packed_.Resize(0, 0); }
  bool PackedReady() const { return !packed_.Empty(); }

  // Mutable parameter access (optimizer, fault injection). Conservatively
  // invalidates the packed weights — the caller may write through the
  // returned pointers at any time.
  std::vector<Matrix*> Params();
  // Read-only parameter access; leaves the packed weights valid.
  std::vector<const Matrix*> Params() const;
  std::vector<Matrix*> Grads();
  void ZeroGrads();

  void Save(std::ostream& out) const;
  void Load(std::istream& in);

 private:
  size_t hidden_ = 0;
  Matrix wx_;  // (in, 4H)
  Matrix wh_;  // (H, 4H)
  Matrix b_;   // (1, 4H); forget-gate slice initialized to 1.

  // Inference fast-path cache: rows [0, in) mirror wx_, rows [in, in+H)
  // mirror wh_, one contiguous (in+H, 4H) block. Empty = invalid.
  Matrix packed_;

  Matrix grad_wx_;
  Matrix grad_wh_;
  Matrix grad_b_;

  // BPTT caches (one entry per timestep of the last ForwardSequence).
  // cache_inputs_ is a view of the caller's input sequence (see the
  // ForwardSequence lifetime contract); the rest are owned snapshots of
  // state the forward pass itself produced.
  const std::vector<Matrix>* cache_inputs_ = nullptr;
  std::vector<Matrix> cache_h_prev_;
  std::vector<Matrix> cache_c_prev_;
  std::vector<Matrix> cache_gates_;   // post-activation [i f g o]
  std::vector<Matrix> cache_tanh_c_;  // tanh(c_t)

  // Computes gate activations for one step into `gates` and the new h/c.
  void StepCompute(const Matrix& x, const Matrix& h_prev, const Matrix& c_prev,
                   Matrix* gates, Matrix* h_new, Matrix* c_new) const;
};

// A stack of LSTM layers; layer i feeds layer i+1.
class StackedLstm {
 public:
  StackedLstm() = default;
  StackedLstm(size_t in_dim, size_t hidden_dim, size_t num_layers, Rng& rng);

  size_t NumLayers() const { return layers_.size(); }
  size_t HiddenDim() const { return layers_.empty() ? 0 : layers_[0].HiddenDim(); }
  size_t InDim() const { return layers_.empty() ? 0 : layers_[0].InDim(); }

  // Whole-sequence forward from zero state; `outputs` receives the top
  // layer's hidden states. `inputs` must stay alive and unmodified until the
  // matching BackwardSequence returns (see LstmLayer::ForwardSequence).
  void ForwardSequence(const std::vector<Matrix>& inputs, std::vector<Matrix>* outputs);

  // Backward through all layers; input gradients are discarded.
  void BackwardSequence(const std::vector<Matrix>& doutputs);

  // Single-step inference; `state` must have NumLayers() entries and is
  // updated in place. `out` receives the top layer's new hidden state.
  void StepForward(const Matrix& x, LstmState* state, Matrix* out) const;

  // Zero-allocation batch-1 step over packed weights (PackedReady() required;
  // `state` batch must be 1). Updates `state` in place; the top layer's new
  // hidden state is state->h.back().Row(0) — no inter-layer copies are made.
  // `gates`/`acc` are caller scratch of 4*HiddenDim() floats each.
  void StepForwardFast(const float* x, LstmState* state, float* gates, float* acc) const;

  // Batched multi-stream step across all layers: `state` holds one (B, H)
  // h and c matrix per layer, updated in place (layer l > 0 reads layer
  // l-1's just-written h matrix directly — no inter-layer copies). `gates`
  // is shared caller scratch, resized to (B, 4*HiddenDim()). Row r is
  // bitwise-identical to a batch-1 step on that stream alone.
  void StepForwardBatch(const Matrix& x, LstmState* state, Matrix* gates) const;

  // Packed-weight cache management across all layers (see LstmLayer).
  void Prepack();
  void InvalidatePacked();
  bool PackedReady() const;

  LstmState ZeroState(size_t batch) const;

  std::vector<Matrix*> Params();
  std::vector<const Matrix*> Params() const;
  std::vector<Matrix*> Grads();
  void ZeroGrads();

  void Save(std::ostream& out) const;
  void Load(std::istream& in);

 private:
  std::vector<LstmLayer> layers_;
  // Per-layer input caches reused during BackwardSequence.
  std::vector<std::vector<Matrix>> layer_outputs_;
};

}  // namespace cloudgen

#endif  // SRC_NN_LSTM_H_
