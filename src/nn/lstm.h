// LSTM layer (Hochreiter & Schmidhuber) with full backpropagation through
// time, plus a stacked multi-layer wrapper. This is the recurrent substrate
// for both the flavor-sequence model (§2.2) and the lifetime-hazard model
// (§2.3) of the paper.
//
// Layout conventions:
//  * A minibatch timestep is a Matrix of shape (batch, dim).
//  * A sequence is a std::vector<Matrix> of length T.
//  * Gate pre-activations are packed as [i | f | g | o], each of width H.
//
// Training and generation modes:
//  * ForwardSequence/BackwardSequence run over whole sequences with caches
//    (used by the trainer; hidden state is zeroed before each forward pass,
//    matching §4.2 of the paper).
//  * StepForward advances one step from an explicit LstmState (used during
//    trace generation where jobs are sampled one at a time).
#ifndef SRC_NN_LSTM_H_
#define SRC_NN_LSTM_H_

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "src/tensor/matrix.h"

namespace cloudgen {

class Rng;

// Per-layer recurrent state (h and c), each of shape (batch, hidden).
struct LstmState {
  std::vector<Matrix> h;
  std::vector<Matrix> c;

  // Zero state for `layers` layers, `batch` rows, `hidden` columns.
  static LstmState Zero(size_t layers, size_t batch, size_t hidden);
};

// Single LSTM layer.
class LstmLayer {
 public:
  LstmLayer() = default;
  LstmLayer(size_t in_dim, size_t hidden_dim, Rng& rng);

  size_t InDim() const { return wx_.Rows(); }
  size_t HiddenDim() const { return hidden_; }

  // Runs the layer over `inputs` (T matrices of shape (B, in)), starting from
  // zero state, caching everything needed by BackwardSequence. Writes the T
  // hidden-state outputs (B, H) to `outputs`.
  void ForwardSequence(const std::vector<Matrix>& inputs, std::vector<Matrix>* outputs);

  // Given dL/dH_t for every step, accumulates parameter gradients and writes
  // dL/dX_t per step into `dinputs` (pass nullptr to skip).
  void BackwardSequence(const std::vector<Matrix>& doutputs, std::vector<Matrix>* dinputs);

  // Single-step inference. `h` and `c` are this layer's rows of an LstmState
  // and are updated in place; `out_h` receives the new hidden state.
  void StepForward(const Matrix& x, Matrix* h, Matrix* c) const;

  std::vector<Matrix*> Params();
  std::vector<Matrix*> Grads();
  void ZeroGrads();

  void Save(std::ostream& out) const;
  void Load(std::istream& in);

 private:
  size_t hidden_ = 0;
  Matrix wx_;  // (in, 4H)
  Matrix wh_;  // (H, 4H)
  Matrix b_;   // (1, 4H); forget-gate slice initialized to 1.

  Matrix grad_wx_;
  Matrix grad_wh_;
  Matrix grad_b_;

  // BPTT caches (one entry per timestep of the last ForwardSequence).
  std::vector<Matrix> cache_x_;
  std::vector<Matrix> cache_h_prev_;
  std::vector<Matrix> cache_c_prev_;
  std::vector<Matrix> cache_gates_;   // post-activation [i f g o]
  std::vector<Matrix> cache_tanh_c_;  // tanh(c_t)

  // Computes gate activations for one step into `gates` and the new h/c.
  void StepCompute(const Matrix& x, const Matrix& h_prev, const Matrix& c_prev,
                   Matrix* gates, Matrix* h_new, Matrix* c_new) const;
};

// A stack of LSTM layers; layer i feeds layer i+1.
class StackedLstm {
 public:
  StackedLstm() = default;
  StackedLstm(size_t in_dim, size_t hidden_dim, size_t num_layers, Rng& rng);

  size_t NumLayers() const { return layers_.size(); }
  size_t HiddenDim() const { return layers_.empty() ? 0 : layers_[0].HiddenDim(); }
  size_t InDim() const { return layers_.empty() ? 0 : layers_[0].InDim(); }

  // Whole-sequence forward from zero state; `outputs` receives the top
  // layer's hidden states.
  void ForwardSequence(const std::vector<Matrix>& inputs, std::vector<Matrix>* outputs);

  // Backward through all layers; input gradients are discarded.
  void BackwardSequence(const std::vector<Matrix>& doutputs);

  // Single-step inference; `state` must have NumLayers() entries and is
  // updated in place. `out` receives the top layer's new hidden state.
  void StepForward(const Matrix& x, LstmState* state, Matrix* out) const;

  LstmState ZeroState(size_t batch) const;

  std::vector<Matrix*> Params();
  std::vector<Matrix*> Grads();
  void ZeroGrads();

  void Save(std::ostream& out) const;
  void Load(std::istream& in);

 private:
  std::vector<LstmLayer> layers_;
  // Per-layer input caches reused during BackwardSequence.
  std::vector<std::vector<Matrix>> layer_outputs_;
};

}  // namespace cloudgen

#endif  // SRC_NN_LSTM_H_
