#include "src/nn/lstm.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>

#include "src/nn/activations.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace cloudgen {
namespace {

// One row of gate activation and state update, shared by the reference step
// (StepCompute) and the packed fast path (StepForwardFast) so both emit the
// exact same float operations — including any FMA contraction the compiler
// picks — keeping the two routes bitwise-identical. `g` holds pre-activation
// gates [i|f|g|o] (bias not yet added) and is overwritten with
// post-activation values. `cp` and `c_row` may alias (in-place state update):
// each j reads cp[j] before writing c_row[j], and the loop stays scalar (the
// libm calls block vectorization), so aliasing is safe.
inline void ActivateGatesRow(const float* bias, const float* cp, float* g, float* h_row,
                             float* c_row, size_t hidden) {
  for (size_t j = 0; j < hidden; ++j) {
    const float i_gate = SigmoidScalar(g[j] + bias[j]);
    const float f_gate = SigmoidScalar(g[hidden + j] + bias[hidden + j]);
    const float g_gate = std::tanh(g[2 * hidden + j] + bias[2 * hidden + j]);
    const float o_gate = SigmoidScalar(g[3 * hidden + j] + bias[3 * hidden + j]);
    const float c_val = f_gate * cp[j] + i_gate * g_gate;
    g[j] = i_gate;
    g[hidden + j] = f_gate;
    g[2 * hidden + j] = g_gate;
    g[3 * hidden + j] = o_gate;
    c_row[j] = c_val;
    h_row[j] = o_gate * std::tanh(c_val);
  }
}

}  // namespace

LstmState LstmState::Zero(size_t layers, size_t batch, size_t hidden) {
  LstmState state;
  state.h.assign(layers, Matrix(batch, hidden));
  state.c.assign(layers, Matrix(batch, hidden));
  return state;
}

LstmLayer::LstmLayer(size_t in_dim, size_t hidden_dim, Rng& rng)
    : hidden_(hidden_dim),
      wx_(in_dim, 4 * hidden_dim),
      wh_(hidden_dim, 4 * hidden_dim),
      b_(1, 4 * hidden_dim),
      grad_wx_(in_dim, 4 * hidden_dim),
      grad_wh_(hidden_dim, 4 * hidden_dim),
      grad_b_(1, 4 * hidden_dim) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(hidden_dim));
  wx_.RandomUniform(rng, bound);
  wh_.RandomUniform(rng, bound);
  // Standard trick: bias the forget gate open so gradients flow at init.
  for (size_t j = hidden_; j < 2 * hidden_; ++j) {
    b_(0, j) = 1.0f;
  }
}

void LstmLayer::StepCompute(const Matrix& x, const Matrix& h_prev, const Matrix& c_prev,
                            Matrix* gates, Matrix* h_new, Matrix* c_new) const {
  const size_t batch = x.Rows();
  const size_t h4 = 4 * hidden_;
  gates->Resize(batch, h4);
  Gemm(false, false, 1.0f, x, wx_, 0.0f, gates);
  Gemm(false, false, 1.0f, h_prev, wh_, 1.0f, gates);
  h_new->Resize(batch, hidden_);
  c_new->Resize(batch, hidden_);
  for (size_t r = 0; r < batch; ++r) {
    ActivateGatesRow(b_.Row(0), c_prev.Row(r), gates->Row(r), h_new->Row(r),
                     c_new->Row(r), hidden_);
  }
}

void LstmLayer::ForwardSequence(const std::vector<Matrix>& inputs,
                                std::vector<Matrix>* outputs) {
  CG_CHECK(outputs != nullptr);
  CG_CHECK(!inputs.empty());
  const size_t steps = inputs.size();
  const size_t batch = inputs[0].Rows();
  // View, not copy: the caller keeps `inputs` alive until BackwardSequence
  // returns (see the header contract). Saves a full deep copy of the input
  // sequence per layer per minibatch.
  cache_inputs_ = &inputs;
  cache_h_prev_.resize(steps);
  cache_c_prev_.resize(steps);
  cache_gates_.resize(steps);
  cache_tanh_c_.resize(steps);
  outputs->resize(steps);

  Matrix h(batch, hidden_);
  Matrix c(batch, hidden_);
  for (size_t t = 0; t < steps; ++t) {
    CG_CHECK(inputs[t].Rows() == batch && inputs[t].Cols() == wx_.Rows());
    cache_h_prev_[t] = h;
    cache_c_prev_[t] = c;
    Matrix h_new;
    Matrix c_new;
    StepCompute(inputs[t], h, c, &cache_gates_[t], &h_new, &c_new);
    // tanh(c_t) is reused by the backward pass.
    cache_tanh_c_[t] = c_new;
    TanhInPlace(&cache_tanh_c_[t]);
    h = h_new;
    c = c_new;
    (*outputs)[t] = h;
  }
}

void LstmLayer::BackwardSequence(const std::vector<Matrix>& doutputs,
                                 std::vector<Matrix>* dinputs) {
  CG_CHECK_MSG(cache_inputs_ != nullptr, "BackwardSequence before ForwardSequence");
  const std::vector<Matrix>& cache_x = *cache_inputs_;
  const size_t steps = cache_x.size();
  CG_CHECK_MSG(steps > 0, "BackwardSequence before ForwardSequence");
  CG_CHECK(doutputs.size() == steps);
  const size_t batch = cache_x[0].Rows();
  if (dinputs != nullptr) {
    dinputs->resize(steps);
  }

  Matrix dh_next(batch, hidden_);
  Matrix dc_next(batch, hidden_);
  Matrix dgates(batch, 4 * hidden_);
  for (size_t t = steps; t-- > 0;) {
    // Total gradient on h_t: loss term + recurrent term.
    Matrix dh = doutputs[t];
    CG_CHECK(dh.Rows() == batch && dh.Cols() == hidden_);
    dh.Add(dh_next);

    const Matrix& gates = cache_gates_[t];
    const Matrix& tanh_c = cache_tanh_c_[t];
    const Matrix& c_prev = cache_c_prev_[t];
    Matrix dc_prev(batch, hidden_);
    for (size_t r = 0; r < batch; ++r) {
      const float* g = gates.Row(r);
      const float* tc = tanh_c.Row(r);
      const float* cp = c_prev.Row(r);
      const float* dh_row = dh.Row(r);
      const float* dcn = dc_next.Row(r);
      float* dg = dgates.Row(r);
      float* dcp = dc_prev.Row(r);
      for (size_t j = 0; j < hidden_; ++j) {
        const float i_gate = g[j];
        const float f_gate = g[hidden_ + j];
        const float g_gate = g[2 * hidden_ + j];
        const float o_gate = g[3 * hidden_ + j];
        const float do_gate = dh_row[j] * tc[j];
        const float dc = dh_row[j] * o_gate * (1.0f - tc[j] * tc[j]) + dcn[j];
        const float di = dc * g_gate;
        const float df = dc * cp[j];
        const float dgg = dc * i_gate;
        dcp[j] = dc * f_gate;
        // Pre-activation gradients.
        dg[j] = di * i_gate * (1.0f - i_gate);
        dg[hidden_ + j] = df * f_gate * (1.0f - f_gate);
        dg[2 * hidden_ + j] = dgg * (1.0f - g_gate * g_gate);
        dg[3 * hidden_ + j] = do_gate * o_gate * (1.0f - o_gate);
      }
    }

    // Parameter gradients.
    Gemm(true, false, 1.0f, cache_x[t], dgates, 1.0f, &grad_wx_);
    Gemm(true, false, 1.0f, cache_h_prev_[t], dgates, 1.0f, &grad_wh_);
    for (size_t r = 0; r < batch; ++r) {
      const float* dg = dgates.Row(r);
      float* gb = grad_b_.Row(0);
      for (size_t j = 0; j < 4 * hidden_; ++j) {
        gb[j] += dg[j];
      }
    }

    // Input and recurrent gradients.
    if (dinputs != nullptr) {
      (*dinputs)[t].Resize(batch, wx_.Rows());
      Gemm(false, true, 1.0f, dgates, wx_, 0.0f, &(*dinputs)[t]);
    }
    dh_next.Resize(batch, hidden_);
    Gemm(false, true, 1.0f, dgates, wh_, 0.0f, &dh_next);
    dc_next = dc_prev;
  }
}

void LstmLayer::StepForward(const Matrix& x, Matrix* h, Matrix* c) const {
  CG_CHECK(h != nullptr && c != nullptr);
  Matrix gates;
  Matrix h_new;
  Matrix c_new;
  StepCompute(x, *h, *c, &gates, &h_new, &c_new);
  *h = h_new;
  *c = c_new;
}

void LstmLayer::StepForwardFast(const float* x, float* h, float* c, float* gates,
                                float* acc) const {
  CG_DCHECK(PackedReady());
  const size_t in = wx_.Rows();
  const size_t h4 = 4 * hidden_;
  // gates = x * wx, reproducing Gemm(beta=0)'s zero-then-accumulate epilogue
  // (0.0f + chain) exactly, including its +0/-0 behaviour.
  std::fill(acc, acc + h4, 0.0f);
  GemvAccumulate(x, in, packed_.Row(0), h4, acc);
  for (size_t j = 0; j < h4; ++j) {
    gates[j] = 0.0f + acc[j];
  }
  // gates += h * wh (Gemm with beta=1: a second independent chain, added on).
  std::fill(acc, acc + h4, 0.0f);
  GemvAccumulate(h, hidden_, packed_.Row(in), h4, acc);
  for (size_t j = 0; j < h4; ++j) {
    gates[j] += acc[j];
  }
  ActivateGatesRow(b_.Row(0), c, gates, h, c, hidden_);
}

void LstmLayer::StepForwardBatch(const Matrix& x, Matrix* h, Matrix* c,
                                 Matrix* gates) const {
  CG_DCHECK(h != nullptr && c != nullptr && gates != nullptr);
  const size_t batch = x.Rows();
  const size_t h4 = 4 * hidden_;
  CG_DCHECK(h->Rows() == batch && h->Cols() == hidden_);
  CG_DCHECK(c->Rows() == batch && c->Cols() == hidden_);
  if (gates->Rows() != batch || gates->Cols() != h4) {
    gates->Resize(batch, h4);
  }
  // Same two-GEMM structure as StepCompute — never fused into one [x|h]
  // product, which would change the accumulation chains. Both products
  // fully consume `h` before the activation below overwrites it, so the
  // in-place state update is safe.
  Gemm(false, false, 1.0f, x, wx_, 0.0f, gates);
  Gemm(false, false, 1.0f, *h, wh_, 1.0f, gates);
  for (size_t r = 0; r < batch; ++r) {
    ActivateGatesRow(b_.Row(0), c->Row(r), gates->Row(r), h->Row(r), c->Row(r),
                     hidden_);
  }
}

void LstmLayer::Prepack() {
  const size_t in = wx_.Rows();
  const size_t h4 = 4 * hidden_;
  packed_.Resize(in + hidden_, h4);
  std::copy(wx_.Data(), wx_.Data() + wx_.Size(), packed_.Row(0));
  std::copy(wh_.Data(), wh_.Data() + wh_.Size(), packed_.Row(in));
}

std::vector<Matrix*> LstmLayer::Params() {
  InvalidatePacked();
  return {&wx_, &wh_, &b_};
}

std::vector<const Matrix*> LstmLayer::Params() const { return {&wx_, &wh_, &b_}; }

std::vector<Matrix*> LstmLayer::Grads() { return {&grad_wx_, &grad_wh_, &grad_b_}; }

void LstmLayer::ZeroGrads() {
  grad_wx_.SetZero();
  grad_wh_.SetZero();
  grad_b_.SetZero();
}

void LstmLayer::Save(std::ostream& out) const {
  const uint64_t hidden = hidden_;
  out.write(reinterpret_cast<const char*>(&hidden), sizeof(hidden));
  WriteMatrix(out, wx_);
  WriteMatrix(out, wh_);
  WriteMatrix(out, b_);
}

void LstmLayer::Load(std::istream& in) {
  uint64_t hidden = 0;
  in.read(reinterpret_cast<char*>(&hidden), sizeof(hidden));
  CG_CHECK_MSG(static_cast<bool>(in), "LstmLayer::Load: truncated stream");
  hidden_ = hidden;
  wx_ = ReadMatrix(in);
  wh_ = ReadMatrix(in);
  b_ = ReadMatrix(in);
  InvalidatePacked();
  grad_wx_.Resize(wx_.Rows(), wx_.Cols());
  grad_wh_.Resize(wh_.Rows(), wh_.Cols());
  grad_b_.Resize(b_.Rows(), b_.Cols());
}

StackedLstm::StackedLstm(size_t in_dim, size_t hidden_dim, size_t num_layers, Rng& rng) {
  CG_CHECK(num_layers >= 1);
  layers_.reserve(num_layers);
  layers_.emplace_back(in_dim, hidden_dim, rng);
  for (size_t l = 1; l < num_layers; ++l) {
    layers_.emplace_back(hidden_dim, hidden_dim, rng);
  }
}

void StackedLstm::ForwardSequence(const std::vector<Matrix>& inputs,
                                  std::vector<Matrix>* outputs) {
  CG_CHECK(outputs != nullptr);
  layer_outputs_.resize(layers_.size());
  const std::vector<Matrix>* current = &inputs;
  for (size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].ForwardSequence(*current, &layer_outputs_[l]);
    current = &layer_outputs_[l];
  }
  *outputs = layer_outputs_.back();
}

void StackedLstm::BackwardSequence(const std::vector<Matrix>& doutputs) {
  CG_CHECK(!layers_.empty());
  std::vector<Matrix> grad = doutputs;
  for (size_t l = layers_.size(); l-- > 0;) {
    std::vector<Matrix> dinput;
    const bool need_dinput = l > 0;
    layers_[l].BackwardSequence(grad, need_dinput ? &dinput : nullptr);
    if (need_dinput) {
      grad = std::move(dinput);
    }
  }
}

void StackedLstm::StepForward(const Matrix& x, LstmState* state, Matrix* out) const {
  CG_CHECK(state != nullptr && out != nullptr);
  CG_CHECK(state->h.size() == layers_.size() && state->c.size() == layers_.size());
  Matrix current = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].StepForward(current, &state->h[l], &state->c[l]);
    current = state->h[l];
  }
  *out = current;
}

void StackedLstm::StepForwardFast(const float* x, LstmState* state, float* gates,
                                  float* acc) const {
  CG_DCHECK(state != nullptr);
  CG_DCHECK(state->h.size() == layers_.size() && state->c.size() == layers_.size());
  const float* cur = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    float* h = state->h[l].Row(0);
    float* c = state->c[l].Row(0);
    layers_[l].StepForwardFast(cur, h, c, gates, acc);
    cur = h;  // Next layer reads the state row directly; no inter-layer copy.
  }
}

void StackedLstm::StepForwardBatch(const Matrix& x, LstmState* state,
                                   Matrix* gates) const {
  CG_DCHECK(state != nullptr && gates != nullptr);
  CG_DCHECK(state->h.size() == layers_.size() && state->c.size() == layers_.size());
  const Matrix* cur = &x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].StepForwardBatch(*cur, &state->h[l], &state->c[l], gates);
    cur = &state->h[l];
  }
}

void StackedLstm::Prepack() {
  for (auto& layer : layers_) {
    layer.Prepack();
  }
}

void StackedLstm::InvalidatePacked() {
  for (auto& layer : layers_) {
    layer.InvalidatePacked();
  }
}

bool StackedLstm::PackedReady() const {
  for (const auto& layer : layers_) {
    if (!layer.PackedReady()) {
      return false;
    }
  }
  return !layers_.empty();
}

LstmState StackedLstm::ZeroState(size_t batch) const {
  return LstmState::Zero(layers_.size(), batch, HiddenDim());
}

std::vector<Matrix*> StackedLstm::Params() {
  std::vector<Matrix*> params;
  for (auto& layer : layers_) {
    for (Matrix* p : layer.Params()) {
      params.push_back(p);
    }
  }
  return params;
}

std::vector<const Matrix*> StackedLstm::Params() const {
  std::vector<const Matrix*> params;
  for (const auto& layer : layers_) {
    for (const Matrix* p : layer.Params()) {
      params.push_back(p);
    }
  }
  return params;
}

std::vector<Matrix*> StackedLstm::Grads() {
  std::vector<Matrix*> grads;
  for (auto& layer : layers_) {
    for (Matrix* g : layer.Grads()) {
      grads.push_back(g);
    }
  }
  return grads;
}

void StackedLstm::ZeroGrads() {
  for (auto& layer : layers_) {
    layer.ZeroGrads();
  }
}

void StackedLstm::Save(std::ostream& out) const {
  const uint64_t n = layers_.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const auto& layer : layers_) {
    layer.Save(out);
  }
}

void StackedLstm::Load(std::istream& in) {
  uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  CG_CHECK_MSG(static_cast<bool>(in), "StackedLstm::Load: truncated stream");
  layers_.assign(n, LstmLayer());
  for (auto& layer : layers_) {
    layer.Load(in);
  }
}

}  // namespace cloudgen
