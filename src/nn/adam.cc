#include "src/nn/adam.h"

#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>

#include "src/util/check.h"

namespace cloudgen {

Adam::Adam(std::vector<Matrix*> params, std::vector<Matrix*> grads, AdamConfig config)
    : params_(std::move(params)), grads_(std::move(grads)), config_(config) {
  CG_CHECK(params_.size() == grads_.size());
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    CG_CHECK(params_[i] != nullptr && grads_[i] != nullptr);
    CG_CHECK(params_[i]->SameShape(*grads_[i]));
    m_.emplace_back(params_[i]->Rows(), params_[i]->Cols());
    v_.emplace_back(params_[i]->Rows(), params_[i]->Cols());
  }
}

void Adam::Step() {
  ++step_;
  // L2 weight decay directly into the gradients.
  if (config_.weight_decay > 0.0f) {
    for (size_t i = 0; i < params_.size(); ++i) {
      grads_[i]->Axpy(config_.weight_decay, *params_[i]);
    }
  }
  // Global-norm clipping.
  double norm_sq = 0.0;
  for (const Matrix* g : grads_) {
    norm_sq += g->SquaredNorm();
  }
  last_grad_norm_ = std::sqrt(norm_sq);
  if (config_.clip_norm > 0.0f && last_grad_norm_ > config_.clip_norm) {
    const float scale = config_.clip_norm / static_cast<float>(last_grad_norm_ + 1e-12);
    for (Matrix* g : grads_) {
      g->Scale(scale);
    }
  }

  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(step_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(step_));
  const float lr = config_.learning_rate;
  for (size_t i = 0; i < params_.size(); ++i) {
    float* p = params_[i]->Data();
    const float* g = grads_[i]->Data();
    float* m = m_[i].Data();
    float* v = v_[i].Data();
    const size_t n = params_[i]->Size();
    for (size_t j = 0; j < n; ++j) {
      m[j] = config_.beta1 * m[j] + (1.0f - config_.beta1) * g[j];
      v[j] = config_.beta2 * v[j] + (1.0f - config_.beta2) * g[j] * g[j];
      const double m_hat = m[j] / bias1;
      const double v_hat = v[j] / bias2;
      p[j] -= static_cast<float>(lr * m_hat / (std::sqrt(v_hat) + config_.epsilon));
    }
  }
}

void Adam::SaveState(std::ostream& out) const {
  const int64_t step = step_;
  out.write(reinterpret_cast<const char*>(&step), sizeof(step));
  for (size_t i = 0; i < m_.size(); ++i) {
    out.write(reinterpret_cast<const char*>(m_[i].Data()),
              static_cast<std::streamsize>(m_[i].Size() * sizeof(float)));
    out.write(reinterpret_cast<const char*>(v_[i].Data()),
              static_cast<std::streamsize>(v_[i].Size() * sizeof(float)));
  }
}

void Adam::LoadState(std::istream& in) {
  int64_t step = 0;
  in.read(reinterpret_cast<char*>(&step), sizeof(step));
  step_ = static_cast<long>(step);
  for (size_t i = 0; i < m_.size(); ++i) {
    in.read(reinterpret_cast<char*>(m_[i].Data()),
            static_cast<std::streamsize>(m_[i].Size() * sizeof(float)));
    in.read(reinterpret_cast<char*>(v_[i].Data()),
            static_cast<std::streamsize>(v_[i].Size() * sizeof(float)));
  }
  CG_CHECK_MSG(static_cast<bool>(in), "Adam::LoadState: truncated stream");
}

}  // namespace cloudgen
