#include "src/nn/sequence_network.h"

#include <algorithm>
#include <cstdint>
#include <fstream>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace cloudgen {

namespace {

// First u64 of a factored-head model stream. Dense files start with
// input_dim, which is a small dimension in practice; this sentinel sits far
// outside any plausible value so the two formats are distinguishable and
// dense files stay bitwise-unchanged.
constexpr uint64_t kFactoredNetMagic = 0xFAC7'0FED'0000'0001ull;

}  // namespace

SequenceNetwork::SequenceNetwork(const SequenceNetworkConfig& config, Rng& rng)
    : config_(config),
      lstm_(config.input_dim, config.hidden_dim, config.num_layers, rng) {
  CG_CHECK(config.input_dim > 0 && config.output_dim > 0);
  CG_CHECK(config.hidden_dim > 0 && config.num_layers > 0);
  if (config.factored_clusters > 0) {
    fhead_ = ClassFactoredHead(
        config.hidden_dim,
        MakeBalancedVocabMap(config.output_dim, config.factored_clusters), rng);
    // The map clamps the cluster count into [1, output_dim]; mirror that in
    // the config so Save/Load round-trips the effective value.
    config_.factored_clusters = fhead_.NumClusters();
  } else {
    head_ = Linear(config.hidden_dim, config.output_dim, rng);
  }
}

void SequenceNetwork::ForwardSequence(const std::vector<Matrix>& inputs,
                                      std::vector<Matrix>* logits) {
  CG_CHECK(logits != nullptr);
  lstm_.ForwardSequence(inputs, &cached_hidden_);
  const size_t steps = cached_hidden_.size();
  logits->resize(steps);
  for (size_t t = 0; t < steps; ++t) {
    // The head caches its input per call; for the sequence case we rebuild
    // the per-step cache during backward instead, so use inference forward.
    if (IsFactored()) {
      fhead_.ForwardInference(cached_hidden_[t], &(*logits)[t]);
    } else {
      head_.ForwardInference(cached_hidden_[t], &(*logits)[t]);
    }
  }
}

void SequenceNetwork::BackwardSequence(const std::vector<Matrix>& dlogits) {
  const size_t steps = cached_hidden_.size();
  CG_CHECK_MSG(steps > 0, "BackwardSequence before ForwardSequence");
  CG_CHECK(dlogits.size() == steps);
  std::vector<Matrix> dhidden(steps);
  for (size_t t = 0; t < steps; ++t) {
    // Re-prime the head's cache with this step's input, then backprop.
    Matrix unused;
    if (IsFactored()) {
      fhead_.Forward(cached_hidden_[t], &unused);
      fhead_.Backward(dlogits[t], &dhidden[t]);
    } else {
      head_.Forward(cached_hidden_[t], &unused);
      head_.Backward(dlogits[t], &dhidden[t]);
    }
  }
  lstm_.BackwardSequence(dhidden);
}

LstmState SequenceNetwork::MakeState(size_t batch) const { return lstm_.ZeroState(batch); }

void SequenceNetwork::StepLogits(const Matrix& x, LstmState* state, Matrix* logits,
                                 StepWorkspace* ws) const {
  CG_CHECK(state != nullptr && logits != nullptr);
  if (IsFactored()) {
    // Factored heads emit the concat [u | v] row — the evaluation/debug
    // view. Generation samples two levels straight from the hidden state
    // (StepRecurrent + ClassFactoredHead pieces) and never calls this.
    StepRecurrent(x, state, ws);
    fhead_.ForwardInference(state->h.back(), logits);
    return;
  }
  if (ws != nullptr && FastPathReady() && x.Rows() == 1 &&
      x.Cols() == config_.input_dim && !state->h.empty() && state->h[0].Rows() == 1) {
    const size_t h4 = 4 * config_.hidden_dim;
    const size_t acc_cols = std::max(h4, config_.output_dim);
    if (ws->gates.Rows() != 1 || ws->gates.Cols() != h4) {
      ws->gates.Resize(1, h4);
    }
    if (ws->acc.Rows() != 1 || ws->acc.Cols() != acc_cols) {
      ws->acc.Resize(1, acc_cols);
    }
    if (logits->Rows() != 1 || logits->Cols() != config_.output_dim) {
      logits->Resize(1, config_.output_dim);
    }
    lstm_.StepForwardFast(x.Row(0), state, ws->gates.Row(0), ws->acc.Row(0));
    head_.StepForwardPacked(state->h.back().Row(0), ws->acc.Row(0), logits->Row(0));
    return;
  }
  Matrix hidden;
  lstm_.StepForward(x, state, &hidden);
  head_.ForwardInference(hidden, logits);
}

void SequenceNetwork::StepRecurrent(const Matrix& x, LstmState* state,
                                    StepWorkspace* ws) const {
  CG_CHECK(state != nullptr);
  if (ws != nullptr && lstm_.PackedReady() && x.Rows() == 1 &&
      x.Cols() == config_.input_dim && !state->h.empty() && state->h[0].Rows() == 1) {
    const size_t h4 = 4 * config_.hidden_dim;
    const size_t acc_cols = std::max(h4, config_.output_dim);
    if (ws->gates.Rows() != 1 || ws->gates.Cols() != h4) {
      ws->gates.Resize(1, h4);
    }
    if (ws->acc.Rows() != 1 || ws->acc.Cols() != acc_cols) {
      ws->acc.Resize(1, acc_cols);
    }
    lstm_.StepForwardFast(x.Row(0), state, ws->gates.Row(0), ws->acc.Row(0));
    return;
  }
  Matrix hidden;
  lstm_.StepForward(x, state, &hidden);
}

void SequenceNetwork::EnsureBatchStep(size_t rows, BatchStepWorkspace* ws) const {
  CG_CHECK(ws != nullptr && rows > 0);
  const size_t h4 = 4 * config_.hidden_dim;
  if (ws->x.Rows() != rows || ws->x.Cols() != config_.input_dim) {
    ws->x.Resize(rows, config_.input_dim);
  }
  if (ws->gates.Rows() != rows || ws->gates.Cols() != h4) {
    ws->gates.Resize(rows, h4);
  }
  if (ws->state.h.size() != config_.num_layers) {
    ws->state = lstm_.ZeroState(rows);
  } else if (ws->state.h[0].Rows() != rows) {
    for (size_t l = 0; l < config_.num_layers; ++l) {
      ws->state.h[l].Resize(rows, config_.hidden_dim);
      ws->state.c[l].Resize(rows, config_.hidden_dim);
    }
  }
}

void SequenceNetwork::StepBatch(BatchStepWorkspace* ws) const {
  CG_CHECK(ws != nullptr);
  lstm_.StepForwardBatch(ws->x, &ws->state, &ws->gates);
  if (!IsFactored()) {
    // One blocked GEMM over all gathered rows; per row this is the same
    // beta=0 chain + bias epilogue as StepForwardPacked, so the scattered
    // logits are bitwise-identical to the single-stream fast path.
    head_.ForwardInference(ws->state.h.back(), &ws->logits);
  }
}

void SequenceNetwork::Prepack() {
  lstm_.Prepack();
  if (!IsFactored()) {
    head_.Prepack();
  }
}

void SequenceNetwork::InvalidatePacked() {
  lstm_.InvalidatePacked();
  head_.InvalidatePacked();
}

bool SequenceNetwork::FastPathReady() const {
  // Factored heads read their weights unpacked (column-span GEMVs), so only
  // the recurrent stack needs packing.
  return lstm_.PackedReady() && (IsFactored() || head_.PackedReady());
}

std::vector<Matrix*> SequenceNetwork::Params() {
  std::vector<Matrix*> params = lstm_.Params();
  for (Matrix* p : IsFactored() ? fhead_.Params() : head_.Params()) {
    params.push_back(p);
  }
  return params;
}

std::vector<const Matrix*> SequenceNetwork::Params() const {
  std::vector<const Matrix*> params = lstm_.Params();
  for (const Matrix* p : IsFactored() ? fhead_.Params() : head_.Params()) {
    params.push_back(p);
  }
  return params;
}

std::vector<Matrix*> SequenceNetwork::Grads() {
  std::vector<Matrix*> grads = lstm_.Grads();
  for (Matrix* g : IsFactored() ? fhead_.Grads() : head_.Grads()) {
    grads.push_back(g);
  }
  return grads;
}

void SequenceNetwork::ZeroGrads() {
  lstm_.ZeroGrads();
  if (IsFactored()) {
    fhead_.ZeroGrads();
  } else {
    head_.ZeroGrads();
  }
}

size_t SequenceNetwork::NumParameters() const {
  size_t count = 0;
  for (const Matrix* p : Params()) {
    count += p->Size();
  }
  return count;
}

void SequenceNetwork::Save(std::ostream& out) const {
  if (IsFactored()) {
    // Factored files lead with a sentinel no dense file can start with
    // (dense files start with input_dim), then a 5-field header. Dense
    // files keep the original 4-field layout bitwise-unchanged.
    out.write(reinterpret_cast<const char*>(&kFactoredNetMagic),
              sizeof(kFactoredNetMagic));
    const uint64_t dims[5] = {config_.input_dim, config_.hidden_dim,
                              config_.num_layers, config_.output_dim,
                              config_.factored_clusters};
    out.write(reinterpret_cast<const char*>(dims), sizeof(dims));
    lstm_.Save(out);
    fhead_.Save(out);
    return;
  }
  const uint64_t dims[4] = {config_.input_dim, config_.hidden_dim, config_.num_layers,
                            config_.output_dim};
  out.write(reinterpret_cast<const char*>(dims), sizeof(dims));
  lstm_.Save(out);
  head_.Save(out);
}

void SequenceNetwork::Load(std::istream& in) {
  uint64_t first = 0;
  in.read(reinterpret_cast<char*>(&first), sizeof(first));
  CG_CHECK_MSG(static_cast<bool>(in), "SequenceNetwork::Load: truncated stream");
  if (first == kFactoredNetMagic) {
    uint64_t dims[5] = {0, 0, 0, 0, 0};
    in.read(reinterpret_cast<char*>(dims), sizeof(dims));
    CG_CHECK_MSG(static_cast<bool>(in), "SequenceNetwork::Load: truncated stream");
    config_.input_dim = dims[0];
    config_.hidden_dim = dims[1];
    config_.num_layers = dims[2];
    config_.output_dim = dims[3];
    config_.factored_clusters = dims[4];
    CG_CHECK_MSG(config_.factored_clusters > 0,
                 "SequenceNetwork::Load: factored file with zero clusters");
    lstm_.Load(in);
    fhead_.Load(in);
    CG_CHECK_MSG(fhead_.NumClusters() == config_.factored_clusters &&
                     fhead_.NumTokens() == config_.output_dim,
                 "SequenceNetwork::Load: factored head/header mismatch");
    head_ = Linear();
    return;
  }
  uint64_t dims[3] = {0, 0, 0};
  in.read(reinterpret_cast<char*>(dims), sizeof(dims));
  CG_CHECK_MSG(static_cast<bool>(in), "SequenceNetwork::Load: truncated stream");
  config_.input_dim = first;
  config_.hidden_dim = dims[0];
  config_.num_layers = dims[1];
  config_.output_dim = dims[2];
  config_.factored_clusters = 0;
  lstm_.Load(in);
  head_.Load(in);
  fhead_ = ClassFactoredHead();
}

bool SequenceNetwork::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  Save(out);
  return static_cast<bool>(out);
}

bool SequenceNetwork::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  Load(in);
  return true;
}

}  // namespace cloudgen
