#include "src/nn/sequence_network.h"

#include <algorithm>
#include <cstdint>
#include <fstream>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace cloudgen {

SequenceNetwork::SequenceNetwork(const SequenceNetworkConfig& config, Rng& rng)
    : config_(config),
      lstm_(config.input_dim, config.hidden_dim, config.num_layers, rng),
      head_(config.hidden_dim, config.output_dim, rng) {
  CG_CHECK(config.input_dim > 0 && config.output_dim > 0);
  CG_CHECK(config.hidden_dim > 0 && config.num_layers > 0);
}

void SequenceNetwork::ForwardSequence(const std::vector<Matrix>& inputs,
                                      std::vector<Matrix>* logits) {
  CG_CHECK(logits != nullptr);
  lstm_.ForwardSequence(inputs, &cached_hidden_);
  const size_t steps = cached_hidden_.size();
  logits->resize(steps);
  for (size_t t = 0; t < steps; ++t) {
    // The head caches its input per call; for the sequence case we rebuild
    // the per-step cache during backward instead, so use inference forward.
    head_.ForwardInference(cached_hidden_[t], &(*logits)[t]);
  }
}

void SequenceNetwork::BackwardSequence(const std::vector<Matrix>& dlogits) {
  const size_t steps = cached_hidden_.size();
  CG_CHECK_MSG(steps > 0, "BackwardSequence before ForwardSequence");
  CG_CHECK(dlogits.size() == steps);
  std::vector<Matrix> dhidden(steps);
  for (size_t t = 0; t < steps; ++t) {
    // Re-prime the head's cache with this step's input, then backprop.
    Matrix unused;
    head_.Forward(cached_hidden_[t], &unused);
    head_.Backward(dlogits[t], &dhidden[t]);
  }
  lstm_.BackwardSequence(dhidden);
}

LstmState SequenceNetwork::MakeState(size_t batch) const { return lstm_.ZeroState(batch); }

void SequenceNetwork::StepLogits(const Matrix& x, LstmState* state, Matrix* logits,
                                 StepWorkspace* ws) const {
  CG_CHECK(state != nullptr && logits != nullptr);
  if (ws != nullptr && FastPathReady() && x.Rows() == 1 &&
      x.Cols() == config_.input_dim && !state->h.empty() && state->h[0].Rows() == 1) {
    const size_t h4 = 4 * config_.hidden_dim;
    const size_t acc_cols = std::max(h4, config_.output_dim);
    if (ws->gates.Rows() != 1 || ws->gates.Cols() != h4) {
      ws->gates.Resize(1, h4);
    }
    if (ws->acc.Rows() != 1 || ws->acc.Cols() != acc_cols) {
      ws->acc.Resize(1, acc_cols);
    }
    if (logits->Rows() != 1 || logits->Cols() != config_.output_dim) {
      logits->Resize(1, config_.output_dim);
    }
    lstm_.StepForwardFast(x.Row(0), state, ws->gates.Row(0), ws->acc.Row(0));
    head_.StepForwardPacked(state->h.back().Row(0), ws->acc.Row(0), logits->Row(0));
    return;
  }
  Matrix hidden;
  lstm_.StepForward(x, state, &hidden);
  head_.ForwardInference(hidden, logits);
}

void SequenceNetwork::Prepack() {
  lstm_.Prepack();
  head_.Prepack();
}

void SequenceNetwork::InvalidatePacked() {
  lstm_.InvalidatePacked();
  head_.InvalidatePacked();
}

bool SequenceNetwork::FastPathReady() const {
  return lstm_.PackedReady() && head_.PackedReady();
}

std::vector<Matrix*> SequenceNetwork::Params() {
  std::vector<Matrix*> params = lstm_.Params();
  for (Matrix* p : head_.Params()) {
    params.push_back(p);
  }
  return params;
}

std::vector<const Matrix*> SequenceNetwork::Params() const {
  std::vector<const Matrix*> params = lstm_.Params();
  for (const Matrix* p : head_.Params()) {
    params.push_back(p);
  }
  return params;
}

std::vector<Matrix*> SequenceNetwork::Grads() {
  std::vector<Matrix*> grads = lstm_.Grads();
  for (Matrix* g : head_.Grads()) {
    grads.push_back(g);
  }
  return grads;
}

void SequenceNetwork::ZeroGrads() {
  lstm_.ZeroGrads();
  head_.ZeroGrads();
}

size_t SequenceNetwork::NumParameters() const {
  size_t count = 0;
  for (const Matrix* p : Params()) {
    count += p->Size();
  }
  return count;
}

void SequenceNetwork::Save(std::ostream& out) const {
  const uint64_t dims[4] = {config_.input_dim, config_.hidden_dim, config_.num_layers,
                            config_.output_dim};
  out.write(reinterpret_cast<const char*>(dims), sizeof(dims));
  lstm_.Save(out);
  head_.Save(out);
}

void SequenceNetwork::Load(std::istream& in) {
  uint64_t dims[4] = {0, 0, 0, 0};
  in.read(reinterpret_cast<char*>(dims), sizeof(dims));
  CG_CHECK_MSG(static_cast<bool>(in), "SequenceNetwork::Load: truncated stream");
  config_.input_dim = dims[0];
  config_.hidden_dim = dims[1];
  config_.num_layers = dims[2];
  config_.output_dim = dims[3];
  lstm_.Load(in);
  head_.Load(in);
}

bool SequenceNetwork::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  Save(out);
  return static_cast<bool>(out);
}

bool SequenceNetwork::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  Load(in);
  return true;
}

}  // namespace cloudgen
