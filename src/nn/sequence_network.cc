#include "src/nn/sequence_network.h"

#include <cstdint>
#include <fstream>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace cloudgen {

SequenceNetwork::SequenceNetwork(const SequenceNetworkConfig& config, Rng& rng)
    : config_(config),
      lstm_(config.input_dim, config.hidden_dim, config.num_layers, rng),
      head_(config.hidden_dim, config.output_dim, rng) {
  CG_CHECK(config.input_dim > 0 && config.output_dim > 0);
  CG_CHECK(config.hidden_dim > 0 && config.num_layers > 0);
}

void SequenceNetwork::ForwardSequence(const std::vector<Matrix>& inputs,
                                      std::vector<Matrix>* logits) {
  CG_CHECK(logits != nullptr);
  lstm_.ForwardSequence(inputs, &cached_hidden_);
  const size_t steps = cached_hidden_.size();
  logits->resize(steps);
  for (size_t t = 0; t < steps; ++t) {
    // The head caches its input per call; for the sequence case we rebuild
    // the per-step cache during backward instead, so use inference forward.
    head_.ForwardInference(cached_hidden_[t], &(*logits)[t]);
  }
}

void SequenceNetwork::BackwardSequence(const std::vector<Matrix>& dlogits) {
  const size_t steps = cached_hidden_.size();
  CG_CHECK_MSG(steps > 0, "BackwardSequence before ForwardSequence");
  CG_CHECK(dlogits.size() == steps);
  std::vector<Matrix> dhidden(steps);
  for (size_t t = 0; t < steps; ++t) {
    // Re-prime the head's cache with this step's input, then backprop.
    Matrix unused;
    head_.Forward(cached_hidden_[t], &unused);
    head_.Backward(dlogits[t], &dhidden[t]);
  }
  lstm_.BackwardSequence(dhidden);
}

LstmState SequenceNetwork::MakeState(size_t batch) const { return lstm_.ZeroState(batch); }

void SequenceNetwork::StepLogits(const Matrix& x, LstmState* state, Matrix* logits) const {
  CG_CHECK(state != nullptr && logits != nullptr);
  Matrix hidden;
  lstm_.StepForward(x, state, &hidden);
  head_.ForwardInference(hidden, logits);
}

std::vector<Matrix*> SequenceNetwork::Params() {
  std::vector<Matrix*> params = lstm_.Params();
  for (Matrix* p : head_.Params()) {
    params.push_back(p);
  }
  return params;
}

std::vector<Matrix*> SequenceNetwork::Grads() {
  std::vector<Matrix*> grads = lstm_.Grads();
  for (Matrix* g : head_.Grads()) {
    grads.push_back(g);
  }
  return grads;
}

void SequenceNetwork::ZeroGrads() {
  lstm_.ZeroGrads();
  head_.ZeroGrads();
}

size_t SequenceNetwork::NumParameters() const {
  size_t count = 0;
  for (Matrix* p : const_cast<SequenceNetwork*>(this)->Params()) {
    count += p->Size();
  }
  return count;
}

void SequenceNetwork::Save(std::ostream& out) const {
  const uint64_t dims[4] = {config_.input_dim, config_.hidden_dim, config_.num_layers,
                            config_.output_dim};
  out.write(reinterpret_cast<const char*>(dims), sizeof(dims));
  lstm_.Save(out);
  head_.Save(out);
}

void SequenceNetwork::Load(std::istream& in) {
  uint64_t dims[4] = {0, 0, 0, 0};
  in.read(reinterpret_cast<char*>(dims), sizeof(dims));
  CG_CHECK_MSG(static_cast<bool>(in), "SequenceNetwork::Load: truncated stream");
  config_.input_dim = dims[0];
  config_.hidden_dim = dims[1];
  config_.num_layers = dims[2];
  config_.output_dim = dims[3];
  lstm_.Load(in);
  head_.Load(in);
}

bool SequenceNetwork::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  Save(out);
  return static_cast<bool>(out);
}

bool SequenceNetwork::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  Load(in);
  return true;
}

}  // namespace cloudgen
