#include "src/nn/losses.h"

#include <algorithm>
#include <cmath>

#include "src/nn/activations.h"
#include "src/util/check.h"

namespace cloudgen {

double SoftmaxCrossEntropy(const Matrix& logits, const std::vector<int32_t>& targets,
                           Matrix* dlogits) {
  CG_CHECK(dlogits != nullptr);
  CG_CHECK(targets.size() == logits.Rows());
  const size_t batch = logits.Rows();
  const size_t classes = logits.Cols();
  dlogits->Resize(batch, classes);

  double total_loss = 0.0;
  size_t counted = 0;
  for (size_t r = 0; r < batch; ++r) {
    const int32_t target = targets[r];
    float* drow = dlogits->Row(r);
    if (target == kIgnoreTarget) {
      // Row already zeroed by Resize.
      continue;
    }
    CG_CHECK(target >= 0 && static_cast<size_t>(target) < classes);
    const float* row = logits.Row(r);
    float max_v = row[0];
    for (size_t c = 1; c < classes; ++c) {
      max_v = std::max(max_v, row[c]);
    }
    double sum = 0.0;
    for (size_t c = 0; c < classes; ++c) {
      sum += std::exp(static_cast<double>(row[c] - max_v));
    }
    const double log_sum = std::log(sum) + max_v;
    total_loss += log_sum - row[target];
    ++counted;
    for (size_t c = 0; c < classes; ++c) {
      const double p = std::exp(static_cast<double>(row[c]) - log_sum);
      drow[c] = static_cast<float>(p);
    }
    drow[target] -= 1.0f;
  }
  if (counted == 0) {
    return 0.0;
  }
  const float inv = 1.0f / static_cast<float>(counted);
  dlogits->Scale(inv);
  return total_loss / static_cast<double>(counted);
}

double FactoredSoftmaxCrossEntropy(const Matrix& logits,
                                   const std::vector<int32_t>& targets,
                                   const FactoredVocabMap& map, Matrix* dlogits) {
  CG_CHECK(dlogits != nullptr);
  CG_CHECK(targets.size() == logits.Rows());
  const size_t num_clusters = map.NumClusters();
  const size_t num_tokens = map.NumTokens();
  CG_CHECK(logits.Cols() == num_clusters + num_tokens);
  const size_t batch = logits.Rows();
  dlogits->Resize(batch, logits.Cols());

  double total_loss = 0.0;
  size_t counted = 0;
  for (size_t r = 0; r < batch; ++r) {
    const int32_t target = targets[r];
    if (target == kIgnoreTarget) {
      continue;  // Row already zeroed by Resize.
    }
    CG_CHECK(target >= 0 && static_cast<size_t>(target) < num_tokens);
    const size_t cluster = map.ClusterOf(static_cast<size_t>(target));
    const float* u = logits.Row(r);                         // C cluster logits.
    const float* v = logits.Row(r) + num_clusters;          // K member logits.
    float* du = dlogits->Row(r);
    float* dv = dlogits->Row(r) + num_clusters;

    // Cluster term: plain softmax CE over all C clusters.
    float umax = u[0];
    for (size_t c = 1; c < num_clusters; ++c) {
      umax = std::max(umax, u[c]);
    }
    double usum = 0.0;
    for (size_t c = 0; c < num_clusters; ++c) {
      usum += std::exp(static_cast<double>(u[c] - umax));
    }
    const double ulog_sum = std::log(usum) + umax;
    total_loss += ulog_sum - u[cluster];
    for (size_t c = 0; c < num_clusters; ++c) {
      du[c] = static_cast<float>(std::exp(static_cast<double>(u[c]) - ulog_sum));
    }
    du[cluster] -= 1.0f;

    // Member term: softmax CE over the target's slice only; other member
    // columns stay at the zero Resize left behind.
    const size_t begin = map.SliceBegin(cluster);
    const size_t width = map.SliceWidth(cluster);
    float vmax = v[begin];
    for (size_t j = 1; j < width; ++j) {
      vmax = std::max(vmax, v[begin + j]);
    }
    double vsum = 0.0;
    for (size_t j = 0; j < width; ++j) {
      vsum += std::exp(static_cast<double>(v[begin + j] - vmax));
    }
    const double vlog_sum = std::log(vsum) + vmax;
    total_loss += vlog_sum - v[target];
    for (size_t j = 0; j < width; ++j) {
      dv[begin + j] = static_cast<float>(
          std::exp(static_cast<double>(v[begin + j]) - vlog_sum));
    }
    dv[target] -= 1.0f;
    ++counted;
  }
  if (counted == 0) {
    return 0.0;
  }
  const float inv = 1.0f / static_cast<float>(counted);
  dlogits->Scale(inv);
  return total_loss / static_cast<double>(counted);
}

double CensoredSoftmaxCrossEntropy(const Matrix& logits, const std::vector<int32_t>& targets,
                                   const std::vector<uint8_t>& censored, Matrix* dlogits) {
  CG_CHECK(dlogits != nullptr);
  CG_CHECK(targets.size() == logits.Rows());
  CG_CHECK(censored.size() == logits.Rows());
  const size_t batch = logits.Rows();
  const size_t classes = logits.Cols();
  dlogits->Resize(batch, classes);

  double total_loss = 0.0;
  size_t counted = 0;
  std::vector<double> probs(classes);
  for (size_t r = 0; r < batch; ++r) {
    const int32_t target = targets[r];
    float* drow = dlogits->Row(r);
    if (target == kIgnoreTarget) {
      continue;
    }
    CG_CHECK(target >= 0 && static_cast<size_t>(target) < classes);
    const float* row = logits.Row(r);
    float max_v = row[0];
    for (size_t c = 1; c < classes; ++c) {
      max_v = std::max(max_v, row[c]);
    }
    double sum = 0.0;
    for (size_t c = 0; c < classes; ++c) {
      probs[c] = std::exp(static_cast<double>(row[c] - max_v));
      sum += probs[c];
    }
    for (size_t c = 0; c < classes; ++c) {
      probs[c] /= sum;
    }
    ++counted;
    if (censored[r] == 0) {
      // Standard CE on the event bin.
      total_loss += -std::log(std::max(probs[static_cast<size_t>(target)], 1e-300));
      for (size_t c = 0; c < classes; ++c) {
        drow[c] = static_cast<float>(probs[c]);
      }
      drow[target] -= 1.0f;
    } else {
      // Censored: credit for the tail mass at/after the censoring bin.
      // L = -log(S), S = sum_{j >= c} p_j; dL/dz_k = p_k - 1{k>=c} p_k / S.
      double tail = 0.0;
      for (size_t c = static_cast<size_t>(target); c < classes; ++c) {
        tail += probs[c];
      }
      tail = std::max(tail, 1e-12);
      total_loss += -std::log(tail);
      for (size_t c = 0; c < classes; ++c) {
        const double in_tail = c >= static_cast<size_t>(target) ? probs[c] / tail : 0.0;
        drow[c] = static_cast<float>(probs[c] - in_tail);
      }
    }
  }
  if (counted == 0) {
    return 0.0;
  }
  dlogits->Scale(1.0f / static_cast<float>(counted));
  return total_loss / static_cast<double>(counted);
}

double MaskedBceWithLogits(const Matrix& logits, const Matrix& targets, const Matrix& mask,
                           Matrix* dlogits) {
  CG_CHECK(dlogits != nullptr);
  CG_CHECK(logits.SameShape(targets) && logits.SameShape(mask));
  const size_t batch = logits.Rows();
  const size_t dims = logits.Cols();
  dlogits->Resize(batch, dims);

  double total_loss = 0.0;
  size_t counted = 0;
  for (size_t r = 0; r < batch; ++r) {
    const float* y = logits.Row(r);
    const float* t = targets.Row(r);
    const float* m = mask.Row(r);
    float* dy = dlogits->Row(r);
    for (size_t j = 0; j < dims; ++j) {
      if (m[j] == 0.0f) {
        dy[j] = 0.0f;
        continue;
      }
      // Numerically-stable BCE with logits:
      //   loss = max(y, 0) - y*t + log(1 + exp(-|y|)).
      const double yv = y[j];
      const double tv = t[j];
      const double loss = std::max(yv, 0.0) - yv * tv + std::log1p(std::exp(-std::fabs(yv)));
      total_loss += loss;
      const double p = SigmoidScalar(static_cast<float>(yv));
      dy[j] = static_cast<float>(p - tv);
      ++counted;
    }
  }
  if (counted == 0) {
    dlogits->SetZero();
    return 0.0;
  }
  const float inv = 1.0f / static_cast<float>(counted);
  dlogits->Scale(inv);
  return total_loss / static_cast<double>(counted);
}

}  // namespace cloudgen
