#include "src/nn/factored_softmax.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>
#include <utility>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace cloudgen {

size_t FactoredVocabMap::ClusterOf(size_t token) const {
  CG_DCHECK(token < NumTokens());
  // First offset strictly greater than `token`, minus one.
  const auto it = std::upper_bound(offsets.begin(), offsets.end(),
                                   static_cast<int32_t>(token));
  return static_cast<size_t>(it - offsets.begin()) - 1;
}

FactoredVocabMap MakeBalancedVocabMap(size_t num_tokens, size_t num_clusters) {
  CG_CHECK(num_tokens > 0);
  if (num_clusters == 0) {
    num_clusters = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(num_tokens))));
  }
  num_clusters = std::min(std::max<size_t>(num_clusters, 1), num_tokens);
  FactoredVocabMap map;
  map.offsets.resize(num_clusters + 1);
  const size_t base = num_tokens / num_clusters;
  const size_t extra = num_tokens % num_clusters;
  size_t off = 0;
  for (size_t c = 0; c < num_clusters; ++c) {
    map.offsets[c] = static_cast<int32_t>(off);
    off += base + (c < extra ? 1 : 0);
  }
  map.offsets[num_clusters] = static_cast<int32_t>(num_tokens);
  return map;
}

ClassFactoredHead::ClassFactoredHead(size_t in_dim, FactoredVocabMap map, Rng& rng)
    : map_(std::move(map)),
      cluster_(in_dim, map_.NumClusters(), rng),
      member_(in_dim, map_.NumTokens(), rng) {
  CG_CHECK(map_.NumTokens() > 0 && map_.NumClusters() > 0);
  CG_CHECK(map_.offsets.front() == 0);
}

void ClassFactoredHead::Forward(const Matrix& h, Matrix* concat) {
  cluster_.Forward(h, &u_tmp_);
  member_.Forward(h, &v_tmp_);
  const size_t c = map_.NumClusters();
  const size_t k = map_.NumTokens();
  concat->Resize(h.Rows(), c + k);
  for (size_t r = 0; r < h.Rows(); ++r) {
    float* row = concat->Row(r);
    std::copy(u_tmp_.Row(r), u_tmp_.Row(r) + c, row);
    std::copy(v_tmp_.Row(r), v_tmp_.Row(r) + k, row + c);
  }
}

void ClassFactoredHead::ForwardInference(const Matrix& h, Matrix* concat) const {
  Matrix u;
  Matrix v;
  cluster_.ForwardInference(h, &u);
  member_.ForwardInference(h, &v);
  const size_t c = map_.NumClusters();
  const size_t k = map_.NumTokens();
  concat->Resize(h.Rows(), c + k);
  for (size_t r = 0; r < h.Rows(); ++r) {
    float* row = concat->Row(r);
    std::copy(u.Row(r), u.Row(r) + c, row);
    std::copy(v.Row(r), v.Row(r) + k, row + c);
  }
}

void ClassFactoredHead::Backward(const Matrix& dconcat, Matrix* dh) {
  CG_CHECK(dh != nullptr);
  const size_t c = map_.NumClusters();
  const size_t k = map_.NumTokens();
  CG_CHECK(dconcat.Cols() == c + k);
  const size_t batch = dconcat.Rows();
  du_tmp_.Resize(batch, c);
  dv_tmp_.Resize(batch, k);
  for (size_t r = 0; r < batch; ++r) {
    const float* row = dconcat.Row(r);
    std::copy(row, row + c, du_tmp_.Row(r));
    std::copy(row + c, row + c + k, dv_tmp_.Row(r));
  }
  cluster_.Backward(du_tmp_, dh);
  member_.Backward(dv_tmp_, &dh_tmp_);
  dh->Add(dh_tmp_);
}

void ClassFactoredHead::ClusterLogitsInto(const float* h, float* acc, float* u) const {
  cluster_.ForwardSpan(h, 0, map_.NumClusters(), acc, u);
}

void ClassFactoredHead::MemberSliceLogitsInto(const float* h, size_t cluster,
                                              float* acc, float* v) const {
  member_.ForwardSpan(h, map_.SliceBegin(cluster), map_.SliceWidth(cluster), acc, v);
}

std::vector<Matrix*> ClassFactoredHead::Params() {
  std::vector<Matrix*> params = cluster_.Params();
  for (Matrix* p : member_.Params()) {
    params.push_back(p);
  }
  return params;
}

std::vector<const Matrix*> ClassFactoredHead::Params() const {
  std::vector<const Matrix*> params = cluster_.Params();
  for (const Matrix* p : member_.Params()) {
    params.push_back(p);
  }
  return params;
}

std::vector<Matrix*> ClassFactoredHead::Grads() {
  std::vector<Matrix*> grads = cluster_.Grads();
  for (Matrix* g : member_.Grads()) {
    grads.push_back(g);
  }
  return grads;
}

void ClassFactoredHead::ZeroGrads() {
  cluster_.ZeroGrads();
  member_.ZeroGrads();
}

void ClassFactoredHead::Save(std::ostream& out) const {
  const uint64_t n = map_.offsets.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(map_.offsets.data()),
            static_cast<std::streamsize>(n * sizeof(int32_t)));
  cluster_.Save(out);
  member_.Save(out);
}

void ClassFactoredHead::Load(std::istream& in) {
  uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  CG_CHECK_MSG(static_cast<bool>(in), "ClassFactoredHead::Load: truncated stream");
  CG_CHECK_MSG(n >= 2, "ClassFactoredHead::Load: corrupt vocab map");
  map_.offsets.resize(n);
  in.read(reinterpret_cast<char*>(map_.offsets.data()),
          static_cast<std::streamsize>(n * sizeof(int32_t)));
  CG_CHECK_MSG(static_cast<bool>(in), "ClassFactoredHead::Load: truncated stream");
  CG_CHECK_MSG(map_.offsets.front() == 0, "ClassFactoredHead::Load: corrupt vocab map");
  cluster_.Load(in);
  member_.Load(in);
}

}  // namespace cloudgen
