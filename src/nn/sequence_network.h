// SequenceNetwork — a stacked LSTM with a linear output head. Both paper
// models are instances of this network; they differ only in input encoding
// and loss:
//  * flavor model:   logits → softmax over K flavors + EOB   (§2.2)
//  * lifetime model: logits → J per-bin hazard logits        (§2.3)
#ifndef SRC_NN_SEQUENCE_NETWORK_H_
#define SRC_NN_SEQUENCE_NETWORK_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/nn/factored_softmax.h"
#include "src/nn/linear.h"
#include "src/nn/lstm.h"
#include "src/tensor/matrix.h"

namespace cloudgen {

class Rng;

struct SequenceNetworkConfig {
  size_t input_dim = 0;
  size_t hidden_dim = 64;
  size_t num_layers = 2;
  size_t output_dim = 0;
  // > 0 swaps the dense output head for a class-factored two-level softmax
  // with this many balanced clusters over output_dim tokens (lamtram's
  // SoftmaxClass; see src/nn/factored_softmax.h). Changes the logits shape:
  // ForwardSequence/StepLogits emit the concat [u | v] of width
  // factored_clusters + output_dim, paired with FactoredSoftmaxCrossEntropy;
  // generation samples two levels without materializing the concat. 0 keeps
  // the dense head (the bitwise oracle path) byte-for-byte.
  size_t factored_clusters = 0;
};

// Preallocated scratch for the zero-allocation generation step. One workspace
// per generator (not shared across threads); buffers grow on first use and
// are reused for every subsequent token, so the steady state performs no heap
// allocation per step.
struct StepWorkspace {
  Matrix gates;  // (1, 4*hidden): packed gate pre/post-activations.
  Matrix acc;    // (1, max(4*hidden, output)): GEMV accumulator scratch.
  // Sampling-side buffers owned here so model generators stay allocation-free
  // too (softmax probabilities, hazard/PMF conversions).
  std::vector<double> probs;
  std::vector<double> scratch;
  // Factored-head sampling buffers (untouched by dense heads): float
  // logits/accumulator scratch for cluster and member-slice GEMVs, and the
  // cluster-weight vector.
  std::vector<float> flogits;
  std::vector<float> facc;
  std::vector<double> cweights;
};

// Preallocated scratch for the batched multi-stream generation step: the
// driver gathers each active stream's encoded input and per-layer h/c rows
// into these matrices, runs one StepBatch, and scatters the state (and, for
// dense heads, the logits row) back to the stream. Buffers are shaped per
// tick but vector capacity only grows, so once the high-water batch size has
// been seen the step performs no heap allocation per token (same discipline
// as StepWorkspace; enforced by alloc_test).
struct BatchStepWorkspace {
  Matrix x;         // (B, input_dim): gathered step inputs.
  Matrix gates;     // (B, 4*hidden): shared gate scratch.
  Matrix logits;    // (B, output_dim): batched dense-head outputs.
  LstmState state;  // Per-layer (B, hidden) gathered h/c.
};

class SequenceNetwork {
 public:
  SequenceNetwork() = default;
  SequenceNetwork(const SequenceNetworkConfig& config, Rng& rng);

  const SequenceNetworkConfig& Config() const { return config_; }

  // Training forward over a minibatch of sequences. `inputs` is T matrices of
  // shape (B, input_dim); `logits` receives T matrices of shape (B, output_dim).
  // Hidden state starts at zero (per §4.2 of the paper).
  void ForwardSequence(const std::vector<Matrix>& inputs, std::vector<Matrix>* logits);

  // Backward from per-step logit gradients; accumulates into the grads.
  void BackwardSequence(const std::vector<Matrix>& dlogits);

  // Generation-time single-step inference. `state` persists across calls.
  // With a workspace and packed weights ready (FastPathReady()), a batch-1
  // step takes the zero-allocation packed route; outputs are bitwise-identical
  // to the reference route. Without a workspace (or when the fast path is not
  // applicable) it falls back to the allocating reference path.
  LstmState MakeState(size_t batch = 1) const;
  void StepLogits(const Matrix& x, LstmState* state, Matrix* logits,
                  StepWorkspace* ws = nullptr) const;

  // Recurrent-only single step (no output head); the caller samples from
  // state->h.back() afterwards. Takes the packed zero-allocation route when
  // `ws` is provided and the LSTM packs are ready (batch-1 only), the
  // allocating reference route otherwise — both bitwise-identical. This is
  // the generation step for factored heads, which never materialize full
  // logits.
  void StepRecurrent(const Matrix& x, LstmState* state,
                     StepWorkspace* ws = nullptr) const;

  // Batched multi-stream generation step. EnsureBatchStep shapes `ws` for
  // `rows` gathered streams (reusing capacity — see BatchStepWorkspace);
  // StepBatch then advances all rows of ws->state through the LSTM stack
  // from ws->x and, for dense heads, fills ws->logits via the output head.
  // Factored heads stop at the hidden state: the caller samples per stream
  // from ws->state.h.back() rows. Row r of every output is
  // bitwise-identical to a single-stream StepLogits/StepRecurrent on that
  // stream alone (per-element GEMM chains are batch-size independent).
  //
  // Concurrency: both calls are const and read only the (eagerly prepacked)
  // weights; all mutable scratch lives in `ws`. Concurrent callers with
  // distinct workspaces — one BatchStepWorkspace pair per shard in the
  // sharded generation scheduler — are safe and share nothing.
  void EnsureBatchStep(size_t rows, BatchStepWorkspace* ws) const;
  void StepBatch(BatchStepWorkspace* ws) const;

  bool IsFactored() const { return config_.factored_clusters > 0; }
  // Valid only when IsFactored().
  const ClassFactoredHead& FactoredHead() const { return fhead_; }

  // Packed-weight management for the generation fast path. Prepack() must be
  // called after the last parameter update (training code and LoadFromFile do
  // this); any mutable parameter access invalidates the packs.
  void Prepack();
  void InvalidatePacked();
  bool FastPathReady() const;

  std::vector<Matrix*> Params();
  std::vector<const Matrix*> Params() const;
  std::vector<Matrix*> Grads();
  void ZeroGrads();
  size_t NumParameters() const;

  void Save(std::ostream& out) const;
  void Load(std::istream& in);
  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);

 private:
  SequenceNetworkConfig config_;
  StackedLstm lstm_;
  Linear head_;              // Dense head; default-empty when factored.
  ClassFactoredHead fhead_;  // Factored head; default-empty when dense.
  // Cached top-layer hidden states from the last ForwardSequence, needed to
  // backprop through the shared head applied at every step.
  std::vector<Matrix> cached_hidden_;
};

}  // namespace cloudgen

#endif  // SRC_NN_SEQUENCE_NETWORK_H_
