// SequenceNetwork — a stacked LSTM with a linear output head. Both paper
// models are instances of this network; they differ only in input encoding
// and loss:
//  * flavor model:   logits → softmax over K flavors + EOB   (§2.2)
//  * lifetime model: logits → J per-bin hazard logits        (§2.3)
#ifndef SRC_NN_SEQUENCE_NETWORK_H_
#define SRC_NN_SEQUENCE_NETWORK_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/nn/linear.h"
#include "src/nn/lstm.h"
#include "src/tensor/matrix.h"

namespace cloudgen {

class Rng;

struct SequenceNetworkConfig {
  size_t input_dim = 0;
  size_t hidden_dim = 64;
  size_t num_layers = 2;
  size_t output_dim = 0;
};

// Preallocated scratch for the zero-allocation generation step. One workspace
// per generator (not shared across threads); buffers grow on first use and
// are reused for every subsequent token, so the steady state performs no heap
// allocation per step.
struct StepWorkspace {
  Matrix gates;  // (1, 4*hidden): packed gate pre/post-activations.
  Matrix acc;    // (1, max(4*hidden, output)): GEMV accumulator scratch.
  // Sampling-side buffers owned here so model generators stay allocation-free
  // too (softmax probabilities, hazard/PMF conversions).
  std::vector<double> probs;
  std::vector<double> scratch;
};

class SequenceNetwork {
 public:
  SequenceNetwork() = default;
  SequenceNetwork(const SequenceNetworkConfig& config, Rng& rng);

  const SequenceNetworkConfig& Config() const { return config_; }

  // Training forward over a minibatch of sequences. `inputs` is T matrices of
  // shape (B, input_dim); `logits` receives T matrices of shape (B, output_dim).
  // Hidden state starts at zero (per §4.2 of the paper).
  void ForwardSequence(const std::vector<Matrix>& inputs, std::vector<Matrix>* logits);

  // Backward from per-step logit gradients; accumulates into the grads.
  void BackwardSequence(const std::vector<Matrix>& dlogits);

  // Generation-time single-step inference. `state` persists across calls.
  // With a workspace and packed weights ready (FastPathReady()), a batch-1
  // step takes the zero-allocation packed route; outputs are bitwise-identical
  // to the reference route. Without a workspace (or when the fast path is not
  // applicable) it falls back to the allocating reference path.
  LstmState MakeState(size_t batch = 1) const;
  void StepLogits(const Matrix& x, LstmState* state, Matrix* logits,
                  StepWorkspace* ws = nullptr) const;

  // Packed-weight management for the generation fast path. Prepack() must be
  // called after the last parameter update (training code and LoadFromFile do
  // this); any mutable parameter access invalidates the packs.
  void Prepack();
  void InvalidatePacked();
  bool FastPathReady() const;

  std::vector<Matrix*> Params();
  std::vector<const Matrix*> Params() const;
  std::vector<Matrix*> Grads();
  void ZeroGrads();
  size_t NumParameters() const;

  void Save(std::ostream& out) const;
  void Load(std::istream& in);
  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);

 private:
  SequenceNetworkConfig config_;
  StackedLstm lstm_;
  Linear head_;
  // Cached top-layer hidden states from the last ForwardSequence, needed to
  // backprop through the shared head applied at every step.
  std::vector<Matrix> cached_hidden_;
};

}  // namespace cloudgen

#endif  // SRC_NN_SEQUENCE_NETWORK_H_
