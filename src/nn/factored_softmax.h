// Class-factored (two-level) softmax output head, after lamtram's
// SoftmaxClass: tokens are grouped into clusters and the output distribution
// factors as
//
//   p(w | h) = p_cluster(c(w) | h) * p_member(w | c(w), h)
//
// with a (H, C) cluster layer and a (H, K) member layer whose softmax is
// taken per cluster slice. Sampling a token then costs O(C + |slice|)
// instead of O(K): one cluster-logits GEMV, a categorical draw over C
// clusters, one slice GEMV (via Linear::ForwardSpan's strided columns), and
// a categorical draw within the slice. With balanced clusters and
// C = ceil(sqrt(K)) the per-token head cost is O(sqrt(K)) — the point of the
// factorization for Huawei-scale flavor vocabularies.
//
// Training uses the concatenated logits [u | v] of shape (B, C + K) — the
// cluster logits followed by the full member logits — paired with
// FactoredSoftmaxCrossEntropy (src/nn/losses.h), which softmaxes u over all
// clusters and v over the target's slice only. Generation never materializes
// the concat row.
#ifndef SRC_NN_FACTORED_SOFTMAX_H_
#define SRC_NN_FACTORED_SOFTMAX_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/nn/linear.h"
#include "src/tensor/matrix.h"

namespace cloudgen {

class Rng;

// Token → cluster assignment with contiguous per-cluster token ranges:
// cluster c owns tokens [offsets[c], offsets[c+1]). Contiguity is what lets
// the member layer evaluate one cluster as a column span of a single (H, K)
// weight matrix instead of per-cluster matrices.
struct FactoredVocabMap {
  std::vector<int32_t> offsets;  // C+1 entries; offsets[0] = 0, back() = K.

  size_t NumTokens() const {
    return offsets.empty() ? 0 : static_cast<size_t>(offsets.back());
  }
  size_t NumClusters() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  size_t SliceBegin(size_t cluster) const {
    return static_cast<size_t>(offsets[cluster]);
  }
  size_t SliceWidth(size_t cluster) const {
    return static_cast<size_t>(offsets[cluster + 1] - offsets[cluster]);
  }
  // O(log C) lookup; the trainer amortizes it per target token.
  size_t ClusterOf(size_t token) const;
};

// Balanced contiguous map over [0, num_tokens): num_clusters near-equal
// slices (first `num_tokens % num_clusters` slices get the extra token).
// num_clusters == 0 picks ceil(sqrt(num_tokens)), the classic cost-balancing
// choice; the cluster count is clamped to [1, num_tokens].
FactoredVocabMap MakeBalancedVocabMap(size_t num_tokens, size_t num_clusters);

class ClassFactoredHead {
 public:
  ClassFactoredHead() = default;
  ClassFactoredHead(size_t in_dim, FactoredVocabMap map, Rng& rng);

  bool Empty() const { return map_.NumTokens() == 0; }
  size_t InDim() const { return member_.InDim(); }
  size_t NumTokens() const { return map_.NumTokens(); }
  size_t NumClusters() const { return map_.NumClusters(); }
  size_t ConcatDim() const { return map_.NumClusters() + map_.NumTokens(); }
  const FactoredVocabMap& Map() const { return map_; }

  // Training forward: concat logits [u | v] of shape (B, C + K). Forward
  // caches the input for Backward; ForwardInference does not.
  void Forward(const Matrix& h, Matrix* concat);
  void ForwardInference(const Matrix& h, Matrix* concat) const;

  // Backprop from d(concat) of shape (B, C + K); accumulates parameter
  // gradients and writes dL/dh (required — the LSTM below always needs it).
  void Backward(const Matrix& dconcat, Matrix* dh);

  // Generation-time pieces, one hidden row at a time. `acc` is caller
  // scratch (NumClusters() / slice-width floats); outputs are
  // bitwise-identical to the corresponding columns of ForwardInference.
  void ClusterLogitsInto(const float* h, float* acc, float* u) const;
  void MemberSliceLogitsInto(const float* h, size_t cluster, float* acc,
                             float* v) const;

  // Parameter access in the same style as Linear/StackedLstm. Order:
  // cluster weight, cluster bias, member weight, member bias.
  std::vector<Matrix*> Params();
  std::vector<const Matrix*> Params() const;
  std::vector<Matrix*> Grads();
  void ZeroGrads();

  void Save(std::ostream& out) const;
  void Load(std::istream& in);

 private:
  FactoredVocabMap map_;
  Linear cluster_;  // (H, C)
  Linear member_;   // (H, K)

  // Training scratch (the training path may allocate; generation never
  // touches these).
  Matrix u_tmp_;
  Matrix v_tmp_;
  Matrix du_tmp_;
  Matrix dv_tmp_;
  Matrix dh_tmp_;
};

}  // namespace cloudgen

#endif  // SRC_NN_FACTORED_SOFTMAX_H_
