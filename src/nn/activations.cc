#include "src/nn/activations.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace cloudgen {

float SigmoidScalar(float x) {
  // Stable in both tails.
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

float TanhScalar(float x) { return std::tanh(x); }

void SigmoidInPlace(Matrix* m) {
  CG_CHECK(m != nullptr);
  float* data = m->Data();
  for (size_t i = 0; i < m->Size(); ++i) {
    data[i] = SigmoidScalar(data[i]);
  }
}

void TanhInPlace(Matrix* m) {
  CG_CHECK(m != nullptr);
  float* data = m->Data();
  for (size_t i = 0; i < m->Size(); ++i) {
    data[i] = std::tanh(data[i]);
  }
}

void SoftmaxRowsInPlace(Matrix* logits) {
  CG_CHECK(logits != nullptr);
  for (size_t r = 0; r < logits->Rows(); ++r) {
    float* row = logits->Row(r);
    const size_t n = logits->Cols();
    float max_v = row[0];
    for (size_t c = 1; c < n; ++c) {
      max_v = std::max(max_v, row[c]);
    }
    float sum = 0.0f;
    for (size_t c = 0; c < n; ++c) {
      row[c] = std::exp(row[c] - max_v);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (size_t c = 0; c < n; ++c) {
      row[c] *= inv;
    }
  }
}

double MaxShiftedExp(const float* row, size_t n, std::vector<double>* out) {
  CG_CHECK(out != nullptr);
  CG_CHECK(n > 0);
  out->resize(n);
  float max_v = row[0];
  for (size_t c = 1; c < n; ++c) {
    max_v = std::max(max_v, row[c]);
  }
  if (!std::isfinite(max_v)) {
    // Every logit is -inf, or a NaN/+inf won the max: row[c] - max_v is NaN
    // for at least the maximal element, so no valid distribution exists.
    // Return all-zero weights and a zero sum — the one state every consumer
    // already treats as degenerate (ValidWeights rejects it for the guard
    // path; Rng::Categorical's fallback keeps unguarded draws in range) —
    // instead of a buffer of NaNs that samples index 0 forever.
    std::fill(out->begin(), out->end(), 0.0);
    return 0.0;
  }
  double sum = 0.0;
  for (size_t c = 0; c < n; ++c) {
    (*out)[c] = std::exp(static_cast<double>(row[c] - max_v));
    sum += (*out)[c];
  }
  if (!std::isfinite(sum)) {
    // A NaN logit below a finite max slipped NaN into the weights. Every
    // term is exp(x) with x <= 0, so a finite row always sums to (0, n] and
    // never reaches here; only corrupt rows pay the zero-fill.
    std::fill(out->begin(), out->end(), 0.0);
    return 0.0;
  }
  return sum;
}

}  // namespace cloudgen
