#include "src/nn/activations.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace cloudgen {

float SigmoidScalar(float x) {
  // Stable in both tails.
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

float TanhScalar(float x) { return std::tanh(x); }

void SigmoidInPlace(Matrix* m) {
  CG_CHECK(m != nullptr);
  float* data = m->Data();
  for (size_t i = 0; i < m->Size(); ++i) {
    data[i] = SigmoidScalar(data[i]);
  }
}

void TanhInPlace(Matrix* m) {
  CG_CHECK(m != nullptr);
  float* data = m->Data();
  for (size_t i = 0; i < m->Size(); ++i) {
    data[i] = std::tanh(data[i]);
  }
}

void SoftmaxRowsInPlace(Matrix* logits) {
  CG_CHECK(logits != nullptr);
  for (size_t r = 0; r < logits->Rows(); ++r) {
    float* row = logits->Row(r);
    const size_t n = logits->Cols();
    float max_v = row[0];
    for (size_t c = 1; c < n; ++c) {
      max_v = std::max(max_v, row[c]);
    }
    float sum = 0.0f;
    for (size_t c = 0; c < n; ++c) {
      row[c] = std::exp(row[c] - max_v);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (size_t c = 0; c < n; ++c) {
      row[c] *= inv;
    }
  }
}

double MaxShiftedExp(const float* row, size_t n, std::vector<double>* out) {
  CG_CHECK(out != nullptr);
  CG_CHECK(n > 0);
  out->resize(n);
  float max_v = row[0];
  for (size_t c = 1; c < n; ++c) {
    max_v = std::max(max_v, row[c]);
  }
  double sum = 0.0;
  for (size_t c = 0; c < n; ++c) {
    (*out)[c] = std::exp(static_cast<double>(row[c] - max_v));
    sum += (*out)[c];
  }
  return sum;
}

}  // namespace cloudgen
