// Adam optimizer (Kingma & Ba) with decoupled L2 weight decay folded into the
// gradient (classic PyTorch `weight_decay` semantics, matching §4.1/§4.2 of
// the paper) and optional global-norm gradient clipping.
#ifndef SRC_NN_ADAM_H_
#define SRC_NN_ADAM_H_

#include <iosfwd>
#include <vector>

#include "src/tensor/matrix.h"

namespace cloudgen {

struct AdamConfig {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;
  // 0 disables clipping.
  float clip_norm = 0.0f;
};

class Adam {
 public:
  // `params` and `grads` are parallel lists of equal-shaped matrices owned by
  // the model; they must outlive the optimizer.
  Adam(std::vector<Matrix*> params, std::vector<Matrix*> grads, AdamConfig config);

  // Applies one update using the current gradient values, then leaves the
  // gradients untouched (caller zeroes them before the next accumulation).
  void Step();

  // Global L2 norm of all gradients as of the last Step() (after decay, before
  // clipping). Useful for training diagnostics; NaN/Inf here means the update
  // was contaminated — the divergence watchdog keys off this.
  double LastGradNorm() const { return last_grad_norm_; }

  const AdamConfig& Config() const { return config_; }
  void SetLearningRate(float lr) { config_.learning_rate = lr; }

  // Exact serialization of the optimizer state (step count + both moment
  // estimates) for checkpoint/resume. Shapes are fixed by construction, so
  // only the raw values are written. Load requires an optimizer constructed
  // over identically-shaped parameters.
  void SaveState(std::ostream& out) const;
  void LoadState(std::istream& in);

 private:
  std::vector<Matrix*> params_;
  std::vector<Matrix*> grads_;
  std::vector<Matrix> m_;  // First-moment estimates.
  std::vector<Matrix> v_;  // Second-moment estimates.
  AdamConfig config_;
  long step_ = 0;
  double last_grad_norm_ = 0.0;
};

}  // namespace cloudgen

#endif  // SRC_NN_ADAM_H_
