// Element-wise activations and the row-softmax used by the flavor model.
#ifndef SRC_NN_ACTIVATIONS_H_
#define SRC_NN_ACTIVATIONS_H_

#include <cstddef>
#include <vector>

#include "src/tensor/matrix.h"

namespace cloudgen {

float SigmoidScalar(float x);
float TanhScalar(float x);

// In-place element-wise sigmoid / tanh.
void SigmoidInPlace(Matrix* m);
void TanhInPlace(Matrix* m);

// Row-wise numerically-stable softmax: each row of `logits` becomes a
// probability distribution.
void SoftmaxRowsInPlace(Matrix* logits);

// Max-shifted exponentials of a logits row, the shared front half of every
// sampler softmax: out[c] = exp(double(row[c] - max(row))) for c in [0, n),
// with the row maximum taken by std::max in ascending order and the float
// subtraction done before widening — exactly the operation order the samplers
// have always used, so their output distributions are bit-identical. Returns
// the ascending-order sum of out; callers divide by it when they need
// normalized probabilities (the categorical sampler consumes unnormalized
// weights directly). `out` is resized to n; its capacity is reused across
// calls, so a caller-owned buffer makes this allocation-free in steady state.
//
// Degenerate rows (all logits -inf, or any NaN/+inf present) cannot produce
// a distribution; instead of silently emitting NaN weights, `out` is filled
// with zeros and 0.0 is returned. A zero sum is therefore the corruption
// signal: guard policies see it through ValidWeights, and the categorical
// samplers' degenerate-weights fallback keeps even unguarded runs in range.
// Finite rows are unaffected bit for bit (their sums are always in (0, n]).
double MaxShiftedExp(const float* row, size_t n, std::vector<double>* out);

}  // namespace cloudgen

#endif  // SRC_NN_ACTIVATIONS_H_
