// Element-wise activations and the row-softmax used by the flavor model.
#ifndef SRC_NN_ACTIVATIONS_H_
#define SRC_NN_ACTIVATIONS_H_

#include "src/tensor/matrix.h"

namespace cloudgen {

float SigmoidScalar(float x);
float TanhScalar(float x);

// In-place element-wise sigmoid / tanh.
void SigmoidInPlace(Matrix* m);
void TanhInPlace(Matrix* m);

// Row-wise numerically-stable softmax: each row of `logits` becomes a
// probability distribution.
void SoftmaxRowsInPlace(Matrix* logits);

}  // namespace cloudgen

#endif  // SRC_NN_ACTIVATIONS_H_
