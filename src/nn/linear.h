// Fully-connected layer: Y = X * W + b, with X of shape (batch, in) and W of
// shape (in, out). Used as the output head of the flavor and lifetime LSTMs.
#ifndef SRC_NN_LINEAR_H_
#define SRC_NN_LINEAR_H_

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "src/tensor/matrix.h"

namespace cloudgen {

class Rng;

class Linear {
 public:
  Linear() = default;
  // Glorot-uniform initialization.
  Linear(size_t in_dim, size_t out_dim, Rng& rng);

  size_t InDim() const { return weight_.Rows(); }
  size_t OutDim() const { return weight_.Cols(); }

  // Forward pass; caches X for the subsequent Backward call.
  void Forward(const Matrix& x, Matrix* y);

  // Inference-only forward (no caching).
  void ForwardInference(const Matrix& x, Matrix* y) const;

  // Zero-allocation single-row forward over the packed weights (PackedReady()
  // must be true). `x` has InDim() elements, `y` OutDim(); `acc` is caller
  // scratch of OutDim() floats. Bitwise-identical to ForwardInference on a
  // one-row input: same GEMV chain as the blocked GEMM, bias added in the
  // epilogue with the same operation order.
  void StepForwardPacked(const float* x, float* acc, float* y) const;

  // Column-span inference for one input row: y[j] = x . W[:, c0+j] + b[c0+j]
  // for j in [0, n). Reads weight_/bias_ directly through the strided GEMV
  // (no packing required), with `acc` as caller scratch of n floats.
  // Bitwise-identical to columns [c0, c0+n) of ForwardInference on the same
  // row — the per-element accumulation chains are column-position
  // independent — which is what lets the class-factored softmax evaluate one
  // cluster's slice of a huge output layer in O(n) instead of O(OutDim()).
  void ForwardSpan(const float* x, size_t c0, size_t n, float* acc, float* y) const;

  // Packed-weight cache for the inference fast path: [weight_; bias_] as one
  // contiguous (in+1, out) block. Invalidated by every mutable-parameter
  // route (Params(), Load()); rebuild with Prepack() after the last update.
  void Prepack();
  void InvalidatePacked() { packed_.Resize(0, 0); }
  bool PackedReady() const { return !packed_.Empty(); }

  // Given dL/dY, accumulates parameter gradients and writes dL/dX (optional:
  // pass nullptr when the input gradient is not needed).
  void Backward(const Matrix& dy, Matrix* dx);

  // Parameter access for the optimizer. Order: weight, bias. The mutable
  // overload conservatively invalidates the packed weights.
  std::vector<Matrix*> Params();
  std::vector<const Matrix*> Params() const;
  std::vector<Matrix*> Grads();
  void ZeroGrads();

  void Save(std::ostream& out) const;
  void Load(std::istream& in);

 private:
  Matrix weight_;       // (in, out)
  Matrix bias_;         // (1, out)
  Matrix packed_;       // (in+1, out): rows [0,in) = weight_, row in = bias_.
  Matrix grad_weight_;  // (in, out)
  Matrix grad_bias_;    // (1, out)
  Matrix cached_x_;     // (batch, in) from the last Forward.
};

}  // namespace cloudgen

#endif  // SRC_NN_LINEAR_H_
