// Fully-connected layer: Y = X * W + b, with X of shape (batch, in) and W of
// shape (in, out). Used as the output head of the flavor and lifetime LSTMs.
#ifndef SRC_NN_LINEAR_H_
#define SRC_NN_LINEAR_H_

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "src/tensor/matrix.h"

namespace cloudgen {

class Rng;

class Linear {
 public:
  Linear() = default;
  // Glorot-uniform initialization.
  Linear(size_t in_dim, size_t out_dim, Rng& rng);

  size_t InDim() const { return weight_.Rows(); }
  size_t OutDim() const { return weight_.Cols(); }

  // Forward pass; caches X for the subsequent Backward call.
  void Forward(const Matrix& x, Matrix* y);

  // Inference-only forward (no caching).
  void ForwardInference(const Matrix& x, Matrix* y) const;

  // Given dL/dY, accumulates parameter gradients and writes dL/dX (optional:
  // pass nullptr when the input gradient is not needed).
  void Backward(const Matrix& dy, Matrix* dx);

  // Parameter access for the optimizer. Order: weight, bias.
  std::vector<Matrix*> Params();
  std::vector<Matrix*> Grads();
  void ZeroGrads();

  void Save(std::ostream& out) const;
  void Load(std::istream& in);

 private:
  Matrix weight_;       // (in, out)
  Matrix bias_;         // (1, out)
  Matrix grad_weight_;  // (in, out)
  Matrix grad_bias_;    // (1, out)
  Matrix cached_x_;     // (batch, in) from the last Forward.
};

}  // namespace cloudgen

#endif  // SRC_NN_LINEAR_H_
