#include "src/survival/kaplan_meier.h"

#include <algorithm>

#include "src/util/check.h"

namespace cloudgen {
namespace {

// Shared discrete-hazard fit.
std::vector<double> FitDiscreteHazard(const std::vector<LifetimeObservation>& observations,
                                      const LifetimeBinning& binning, CensoringPolicy policy) {
  const size_t bins = binning.NumBins();
  std::vector<double> events(bins, 0.0);
  // Difference array for the at-risk counts: risk[j] = # at risk entering j.
  std::vector<double> risk_delta(bins + 1, 0.0);

  for (const auto& obs : observations) {
    CG_CHECK(obs.lifetime_seconds >= 0.0);
    bool censored = obs.censored;
    if (censored && policy == CensoringPolicy::kIgnoreCensored) {
      continue;
    }
    if (censored && policy == CensoringPolicy::kCensoredTerminates) {
      censored = false;
    }
    const size_t bin = binning.BinOf(obs.lifetime_seconds);
    if (censored) {
      // At risk for bins [0, bin); no event observed.
      if (bin > 0) {
        risk_delta[0] += 1.0;
        risk_delta[bin] -= 1.0;
      }
    } else {
      // At risk for bins [0, bin]; event in `bin`.
      risk_delta[0] += 1.0;
      risk_delta[bin + 1] -= 1.0;
      events[bin] += 1.0;
    }
  }

  std::vector<double> hazard(bins, 0.0);
  double at_risk = 0.0;
  for (size_t j = 0; j < bins; ++j) {
    at_risk += risk_delta[j];
    hazard[j] = at_risk > 0.0 ? std::clamp(events[j] / at_risk, 0.0, 1.0) : 0.0;
  }
  hazard[bins - 1] = 1.0;  // The open final bin absorbs all survivors.
  return hazard;
}

}  // namespace

KaplanMeier::KaplanMeier(const std::vector<LifetimeObservation>& observations,
                         const LifetimeBinning& binning, CensoringPolicy policy)
    : hazard_(FitDiscreteHazard(observations, binning, policy)),
      num_observations_(observations.size()) {}

GroupedKaplanMeier::GroupedKaplanMeier(const std::vector<LifetimeObservation>& observations,
                                       const std::vector<int32_t>& groups,
                                       const LifetimeBinning& binning, CensoringPolicy policy,
                                       size_t min_group_size) {
  CG_CHECK(observations.size() == groups.size());
  pooled_ = FitDiscreteHazard(observations, binning, policy);

  std::unordered_map<int32_t, std::vector<LifetimeObservation>> by_group;
  for (size_t i = 0; i < observations.size(); ++i) {
    by_group[groups[i]].push_back(observations[i]);
  }
  for (const auto& [group, obs] : by_group) {
    if (obs.size() >= min_group_size) {
      per_group_.emplace(group, FitDiscreteHazard(obs, binning, policy));
    }
  }
}

const std::vector<double>& GroupedKaplanMeier::HazardFor(int32_t group) const {
  const auto it = per_group_.find(group);
  return it != per_group_.end() ? it->second : pooled_;
}

ContinuousKaplanMeier::ContinuousKaplanMeier(
    const std::vector<LifetimeObservation>& observations) {
  // Sort observations by time; events before censors at ties (the usual KM
  // convention: a subject censored at t is at risk for an event at t).
  struct Entry {
    double time;
    bool event;
  };
  std::vector<Entry> entries;
  entries.reserve(observations.size());
  for (const auto& obs : observations) {
    entries.push_back(Entry{obs.lifetime_seconds, !obs.censored});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.event && !b.event;
  });

  double survival = 1.0;
  size_t at_risk = entries.size();
  size_t i = 0;
  while (i < entries.size()) {
    const double t = entries[i].time;
    size_t events = 0;
    size_t removed = 0;
    while (i < entries.size() && entries[i].time == t) {
      if (entries[i].event) {
        ++events;
      }
      ++removed;
      ++i;
    }
    if (events > 0 && at_risk > 0) {
      survival *= 1.0 - static_cast<double>(events) / static_cast<double>(at_risk);
      times_.push_back(t);
      survival_.push_back(survival);
    }
    at_risk -= removed;
  }
}

double ContinuousKaplanMeier::Survival(double t) const {
  // S(t) = survival after the last event time <= t.
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  if (it == times_.begin()) {
    return 1.0;
  }
  return survival_[static_cast<size_t>(it - times_.begin()) - 1];
}

}  // namespace cloudgen
