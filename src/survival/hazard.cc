#include "src/survival/hazard.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace cloudgen {
namespace {

void ValidateHazard(const std::vector<double>& hazard) {
  CG_CHECK(!hazard.empty());
  for (double h : hazard) {
    CG_CHECK_MSG(h >= 0.0 && h <= 1.0, "hazard outside [0,1]");
  }
}

}  // namespace

std::vector<double> HazardToPmf(const std::vector<double>& hazard) {
  ValidateHazard(hazard);
  const size_t bins = hazard.size();
  std::vector<double> pmf(bins, 0.0);
  double survive = 1.0;
  for (size_t j = 0; j + 1 < bins; ++j) {
    pmf[j] = survive * hazard[j];
    survive *= (1.0 - hazard[j]);
  }
  pmf[bins - 1] = survive;  // Final bin absorbs the remainder.
  return pmf;
}

std::vector<double> HazardToSurvival(const std::vector<double>& hazard) {
  ValidateHazard(hazard);
  const size_t bins = hazard.size();
  std::vector<double> survival(bins, 0.0);
  double survive = 1.0;
  for (size_t j = 0; j < bins; ++j) {
    if (j + 1 == bins) {
      survival[j] = 0.0;
    } else {
      survive *= (1.0 - hazard[j]);
      survival[j] = survive;
    }
  }
  return survival;
}

std::vector<double> PmfToHazard(const std::vector<double>& pmf) {
  std::vector<double> hazard;
  PmfToHazardInto(pmf, &hazard);
  return hazard;
}

void PmfToHazardInto(const std::vector<double>& pmf, std::vector<double>* hazard) {
  CG_CHECK(hazard != nullptr && hazard != &pmf);
  CG_CHECK(!pmf.empty());
  hazard->resize(pmf.size());
  double survive = 1.0;
  for (size_t j = 0; j < pmf.size(); ++j) {
    if (survive <= 1e-15) {
      (*hazard)[j] = 1.0;
      continue;
    }
    (*hazard)[j] = std::clamp(pmf[j] / survive, 0.0, 1.0);
    survive -= pmf[j];
  }
  hazard->back() = 1.0;
}

size_t ArgmaxBinFromHazard(const std::vector<double>& hazard) {
  const std::vector<double> pmf = HazardToPmf(hazard);
  return static_cast<size_t>(
      std::max_element(pmf.begin(), pmf.end()) - pmf.begin());
}

size_t SampleBinFromHazard(const std::vector<double>& hazard, Rng& rng) {
  ValidateHazard(hazard);
  for (size_t j = 0; j + 1 < hazard.size(); ++j) {
    if (rng.Bernoulli(hazard[j])) {
      return j;
    }
  }
  return hazard.size() - 1;
}

}  // namespace cloudgen
