#include "src/survival/interpolation.h"

#include <algorithm>

#include "src/survival/hazard.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace cloudgen {

SurvivalCurve::SurvivalCurve(const std::vector<double>& hazard, const LifetimeBinning& binning,
                             Interpolation interpolation)
    : interpolation_(interpolation) {
  CG_CHECK(hazard.size() == binning.NumBins());
  const std::vector<double> survival = HazardToSurvival(hazard);
  edges_.reserve(binning.NumBins());
  survival_.reserve(binning.NumBins());
  for (size_t j = 0; j < binning.NumBins(); ++j) {
    edges_.push_back(binning.UpperEdge(j));
    survival_.push_back(survival[j]);
  }
}

double SurvivalCurve::Survival(double t) const {
  if (t < 0.0) {
    return 1.0;
  }
  if (t >= edges_.back()) {
    return 0.0;
  }
  // First edge strictly greater than t → t lies inside that bin.
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), t);
  const auto bin = static_cast<size_t>(it - edges_.begin());
  if (bin >= edges_.size()) {
    return 0.0;
  }
  const double s_hi = survival_[bin];  // S at this bin's upper edge.
  const double s_lo = bin == 0 ? 1.0 : survival_[bin - 1];
  if (interpolation_ == Interpolation::kStepped) {
    // Terminations at edges: S stays at the previous edge's value until the
    // bin's upper edge.
    return s_lo;
  }
  const double lo = bin == 0 ? 0.0 : edges_[bin - 1];
  const double hi = edges_[bin];
  if (hi <= lo) {
    return s_hi;
  }
  const double frac = (t - lo) / (hi - lo);
  return s_lo + (s_hi - s_lo) * frac;
}

double SampleDurationInBin(const LifetimeBinning& binning, size_t bin, Interpolation interp,
                           Rng& rng) {
  CG_CHECK(bin < binning.NumBins());
  const double lo = binning.LowerEdge(bin);
  const double hi = binning.UpperEdge(bin);
  if (interp == Interpolation::kStepped) {
    return hi;
  }
  if (hi <= lo) {
    return hi;
  }
  return rng.Uniform(lo, hi);
}

}  // namespace cloudgen
