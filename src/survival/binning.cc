#include "src/survival/binning.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace cloudgen {

LifetimeBinning::LifetimeBinning(std::vector<double> upper_edges) : edges_(std::move(upper_edges)) {
  CG_CHECK(!edges_.empty());
  for (size_t i = 1; i < edges_.size(); ++i) {
    CG_CHECK_MSG(edges_[i] > edges_[i - 1], "bin edges must be strictly increasing");
  }
  CG_CHECK(edges_[0] >= 0.0);
}

size_t LifetimeBinning::BinOf(double lifetime_seconds) const {
  CG_CHECK(lifetime_seconds >= 0.0);
  // First bin whose upper edge is >= lifetime.
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), lifetime_seconds);
  return static_cast<size_t>(it - edges_.begin());
}

double LifetimeBinning::LowerEdge(size_t bin) const {
  CG_CHECK(bin < NumBins());
  return bin == 0 ? 0.0 : edges_[bin - 1];
}

double LifetimeBinning::UpperEdge(size_t bin) const {
  CG_CHECK(bin < NumBins());
  return IsOpenBin(bin) ? OpenBinVirtualEnd() : edges_[bin];
}

double LifetimeBinning::OpenBinVirtualEnd() const { return edges_.back() * 2.0; }

LifetimeBinning MakePaperBinning() {
  constexpr double kMinute = 60.0;
  constexpr double kHour = 3600.0;
  constexpr double kDay = 86400.0;
  std::vector<double> edges;
  edges.push_back(0.0);  // Bin for zero-length (sub-period) lifetimes.
  for (int m = 5; m <= 60; m += 5) {
    edges.push_back(m * kMinute);
  }
  for (int h = 2; h <= 24; ++h) {
    edges.push_back(h * kHour);
  }
  for (int d = 2; d <= 10; ++d) {
    edges.push_back(d * kDay);
  }
  edges.push_back(20 * kDay);
  // 1 + 12 + 23 + 9 + 1 = 46 edges → 47 bins.
  return LifetimeBinning(std::move(edges));
}

LifetimeBinning MakeQuantileBinning(const std::vector<double>& lifetimes, size_t num_bins) {
  CG_CHECK(!lifetimes.empty());
  CG_CHECK(num_bins >= 2);
  std::vector<double> sorted = lifetimes;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> edges;
  edges.reserve(num_bins - 1);
  for (size_t b = 1; b < num_bins; ++b) {
    const double q = static_cast<double>(b) / static_cast<double>(num_bins);
    const auto idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
    const double edge = sorted[idx];
    if (edges.empty() || edge > edges.back()) {
      edges.push_back(edge);
    }
  }
  if (edges.empty()) {
    edges.push_back(std::max(sorted.back(), 1.0));
  }
  return LifetimeBinning(std::move(edges));
}

LifetimeBinning RefineBinning(const LifetimeBinning& base, size_t factor) {
  CG_CHECK(factor >= 1);
  const auto& edges = base.Edges();
  std::vector<double> refined;
  double lower = 0.0;
  for (double edge : edges) {
    const double width = edge - lower;
    if (width <= 0.0) {
      // Degenerate first bin ({0}); keep as-is.
      refined.push_back(edge);
      lower = edge;
      continue;
    }
    for (size_t s = 1; s <= factor; ++s) {
      refined.push_back(lower + width * static_cast<double>(s) / static_cast<double>(factor));
    }
    lower = edge;
  }
  return LifetimeBinning(std::move(refined));
}

}  // namespace cloudgen
