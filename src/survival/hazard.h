// Conversions between the three equivalent descriptions of a discrete
// lifetime distribution (§2.3.1): hazard h(j), PMF f(j), and survival S(j).
//
//   f(j) = h(j) * prod_{i<j} (1 - h(i))
//   S(j) = prod_{i<=j} (1 - h(i))          (probability lifetime lands in a
//                                           bin strictly greater than j)
#ifndef SRC_SURVIVAL_HAZARD_H_
#define SRC_SURVIVAL_HAZARD_H_

#include <cstddef>
#include <vector>

namespace cloudgen {

class Rng;

// PMF from hazard. Any probability mass not absorbed by bins 0..J-1 (because
// every hazard < 1) is assigned to the final bin so the PMF sums to 1.
std::vector<double> HazardToPmf(const std::vector<double>& hazard);

// Survival S(j) for j = 0..J-1 from hazard; S(J-1) is forced to 0 (the final
// open bin absorbs all remaining mass).
std::vector<double> HazardToSurvival(const std::vector<double>& hazard);

// Hazard from PMF (inverse of HazardToPmf).
std::vector<double> PmfToHazard(const std::vector<double>& pmf);

// Buffer-reusing form of PmfToHazard for per-token sampling loops: writes
// into `hazard` (resized to pmf.size(); capacity reused, so a caller-owned
// buffer makes this allocation-free in steady state). `hazard` must not alias
// `pmf`. Identical operation order to PmfToHazard.
void PmfToHazardInto(const std::vector<double>& pmf, std::vector<double>* hazard);

// Most-likely bin under the PMF induced by a hazard (used by 1-Best-Err).
size_t ArgmaxBinFromHazard(const std::vector<double>& hazard);

// Samples a bin by walking the hazard: bin j is chosen with probability
// h(j) * prod_{i<j}(1 - h(i)); falls through to the final bin.
size_t SampleBinFromHazard(const std::vector<double>& hazard, Rng& rng);

}  // namespace cloudgen

#endif  // SRC_SURVIVAL_HAZARD_H_
