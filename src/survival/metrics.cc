#include "src/survival/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace cloudgen {

std::vector<double> MakeSurvivalMseGrid(double horizon_seconds, size_t points) {
  CG_CHECK(horizon_seconds > 0.0 && points > 0);
  std::vector<double> grid(points);
  for (size_t i = 0; i < points; ++i) {
    grid[i] = horizon_seconds * static_cast<double>(i + 1) / static_cast<double>(points);
  }
  return grid;
}

double SurvivalMseForJob(const SurvivalFn& survival, double true_lifetime,
                         const std::vector<double>& grid) {
  CG_CHECK(!grid.empty());
  double acc = 0.0;
  for (double t : grid) {
    const double truth = true_lifetime > t ? 1.0 : 0.0;
    const double pred = survival(t);
    acc += (pred - truth) * (pred - truth);
  }
  return acc / static_cast<double>(grid.size());
}

double MeanSurvivalMse(const std::vector<SurvivalFn>& survivals,
                       const std::vector<double>& true_lifetimes,
                       const std::vector<double>& grid) {
  CG_CHECK(survivals.size() == true_lifetimes.size());
  CG_CHECK(!survivals.empty());
  double acc = 0.0;
  for (size_t i = 0; i < survivals.size(); ++i) {
    acc += SurvivalMseForJob(survivals[i], true_lifetimes[i], grid);
  }
  return acc / static_cast<double>(survivals.size());
}

double HazardBce(const std::vector<double>& hazard, size_t event_bin, bool censored) {
  CG_CHECK(event_bin < hazard.size());
  constexpr double kEps = 1e-6;
  double loss = 0.0;
  size_t terms = 0;
  for (size_t j = 0; j < event_bin; ++j) {
    loss += -std::log(std::max(1.0 - hazard[j], kEps));
    ++terms;
  }
  if (!censored) {
    loss += -std::log(std::max(hazard[event_bin], kEps));
    ++terms;
  }
  if (terms == 0) {
    return 0.0;
  }
  return loss / static_cast<double>(terms);
}

}  // namespace cloudgen
