// Discrete lifetime binning (§2.3.1).
//
// The paper bins lifetimes with 5-minute intervals up to 1 hour, hourly
// intervals up to a day, daily intervals up to 10 days, a (10 d, 20 d] bin,
// and a final open bin for > 20 days, for a total of 47 bins (including a
// bin for zero-length lifetimes, which occur because trace timestamps are
// quantized to 5-minute periods). Boundaries are inclusive upper edges:
// bin j covers (edge[j-1], edge[j]], bin 0 covers [0, edge[0]], and the last
// bin is open-ended.
//
// A quantile-based scheme (Kvamme & Borgan) is also provided for the 495-bin
// ablation in Table 4.
#ifndef SRC_SURVIVAL_BINNING_H_
#define SRC_SURVIVAL_BINNING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cloudgen {

class LifetimeBinning {
 public:
  // `upper_edges` must be strictly increasing, in seconds. The number of bins
  // is upper_edges.size() + 1 (the final bin is open-ended).
  explicit LifetimeBinning(std::vector<double> upper_edges);

  size_t NumBins() const { return edges_.size() + 1; }

  // Bin index for a lifetime in seconds (0-based).
  size_t BinOf(double lifetime_seconds) const;

  // Lower edge of bin j (0 for bin 0) and upper edge (open bins return
  // OpenBinVirtualEnd()).
  double LowerEdge(size_t bin) const;
  double UpperEdge(size_t bin) const;
  bool IsOpenBin(size_t bin) const { return bin + 1 == NumBins(); }

  // Finite stand-in for the open bin's end, used by CDI interpolation and
  // duration sampling: twice the last finite edge.
  double OpenBinVirtualEnd() const;

  const std::vector<double>& Edges() const { return edges_; }

 private:
  std::vector<double> edges_;
};

// The paper's 47-bin scheme described above.
LifetimeBinning MakePaperBinning();

// Evenly-spaced-quantile scheme fit on (uncensored) training lifetimes, per
// Kvamme & Borgan; duplicate quantiles are deduplicated so the realized bin
// count can be lower than requested.
LifetimeBinning MakeQuantileBinning(const std::vector<double>& lifetimes, size_t num_bins);

// Uniform refinement of the paper scheme: splits every finite bin into
// `factor` equal sub-bins (used for the 495-bin ablation: factor ~ 10).
LifetimeBinning RefineBinning(const LifetimeBinning& base, size_t factor);

}  // namespace cloudgen

#endif  // SRC_SURVIVAL_BINNING_H_
