// Survival-specific evaluation metrics.
//
// Survival-MSE (Kvamme & Borgan; Table 4): for each *uncensored* job with
// true lifetime t_i, the squared error between the predicted survival curve
// and the ground-truth indicator 1{t_i > t}, averaged over a time grid and
// over jobs. We use a fixed grid spanning [0, horizon] because all models
// are compared on identical grids.
#ifndef SRC_SURVIVAL_METRICS_H_
#define SRC_SURVIVAL_METRICS_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace cloudgen {

// An evaluable survival function S(t).
using SurvivalFn = std::function<double(double)>;

// Builds the evaluation grid: `points` times spaced uniformly on (0, horizon].
std::vector<double> MakeSurvivalMseGrid(double horizon_seconds, size_t points);

// MSE between S and the indicator survival of a single true lifetime.
double SurvivalMseForJob(const SurvivalFn& survival, double true_lifetime,
                         const std::vector<double>& grid);

// Average Survival-MSE over jobs; `survivals[i]` is the model's predicted
// curve for job i (conditioned on everything before it, for sequence models).
double MeanSurvivalMse(const std::vector<SurvivalFn>& survivals,
                       const std::vector<double>& true_lifetimes,
                       const std::vector<double>& grid);

// Binary cross entropy of a hazard prediction against an observed outcome
// (event in bin `event_bin`, or censored after surviving bins < `event_bin`).
// This is exactly the per-job term of the paper's lifetime loss (§2.3.2).
double HazardBce(const std::vector<double>& hazard, size_t event_bin, bool censored);

}  // namespace cloudgen

#endif  // SRC_SURVIVAL_METRICS_H_
