// Discrete → continuous lifetime reconstruction (§2.4, Table 4).
//
// Given a discrete hazard over lifetime bins, two interpolation schemes build
// a continuous survival function S(t):
//   * Stepped — all terminations happen exactly at bin upper edges, so S(t)
//     is a right-continuous step function.
//   * CDI (continuous-density interpolation, Kvamme & Borgan) — terminations
//     are spread uniformly within each bin, so S(t) is piecewise linear.
//
// The same assumption drives duration sampling: a sampled bin is converted to
// a real-valued duration uniformly within the bin (CDI) or at its upper edge
// (stepped). The final open bin uses the binning's virtual end.
#ifndef SRC_SURVIVAL_INTERPOLATION_H_
#define SRC_SURVIVAL_INTERPOLATION_H_

#include <cstddef>
#include <vector>

#include "src/survival/binning.h"

namespace cloudgen {

class Rng;

enum class Interpolation { kStepped, kCdi };

// A continuous survival function built from a discrete hazard.
class SurvivalCurve {
 public:
  SurvivalCurve(const std::vector<double>& hazard, const LifetimeBinning& binning,
                Interpolation interpolation);

  // S(t) = P(lifetime > t), t in seconds.
  double Survival(double t) const;

 private:
  std::vector<double> edges_;     // Upper edges per bin (virtual end for open bin).
  std::vector<double> survival_;  // S at each edge.
  Interpolation interpolation_;
};

// Converts a sampled bin index into a real-valued duration.
double SampleDurationInBin(const LifetimeBinning& binning, size_t bin, Interpolation interp,
                           Rng& rng);

}  // namespace cloudgen

#endif  // SRC_SURVIVAL_INTERPOLATION_H_
