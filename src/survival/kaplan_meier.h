// Kaplan-Meier lifetime estimation (§2.3.1, §5.3).
//
// The discrete estimator computes a hazard per lifetime bin:
//   h(j) = (# events in bin j) / (# at risk entering bin j)
// where censored observations count as at-risk only for bins *before* their
// censoring bin (they contribute survival credit, never an event), matching
// the likelihood the paper trains the LSTM with.
//
// Two ablation variants from §5.3 are also provided:
//   * kIgnoreCensored      — drop censored observations entirely (biased; the
//                            Cortez et al. approach)
//   * kCensoredTerminates  — pretend censored jobs died at the censor time
//
// A continuous product-limit estimator (no binning) supports the Table 4
// "KM Continuous" row.
#ifndef SRC_SURVIVAL_KAPLAN_MEIER_H_
#define SRC_SURVIVAL_KAPLAN_MEIER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/survival/binning.h"

namespace cloudgen {

// One lifetime observation: duration in seconds and whether it was cut short
// by the end of the observation window.
struct LifetimeObservation {
  double lifetime_seconds = 0.0;
  bool censored = false;
};

enum class CensoringPolicy {
  kCensoringAware,
  kIgnoreCensored,
  kCensoredTerminates,
};

class KaplanMeier {
 public:
  // Fits the discrete hazard over `binning` from the observations.
  // Bins with an empty risk set get hazard 0; the final bin's hazard is 1.
  KaplanMeier(const std::vector<LifetimeObservation>& observations,
              const LifetimeBinning& binning,
              CensoringPolicy policy = CensoringPolicy::kCensoringAware);

  const std::vector<double>& Hazard() const { return hazard_; }
  size_t NumBins() const { return hazard_.size(); }
  size_t NumObservations() const { return num_observations_; }

 private:
  std::vector<double> hazard_;
  size_t num_observations_ = 0;
};

// Discrete KM fit independently per group (e.g. per flavor), with the pooled
// estimator as fallback for unseen/rare groups.
class GroupedKaplanMeier {
 public:
  // `groups[i]` labels observation i. Groups with fewer than `min_group_size`
  // observations fall back to the pooled hazard.
  GroupedKaplanMeier(const std::vector<LifetimeObservation>& observations,
                     const std::vector<int32_t>& groups, const LifetimeBinning& binning,
                     CensoringPolicy policy = CensoringPolicy::kCensoringAware,
                     size_t min_group_size = 20);

  // Hazard for `group`, falling back to the pooled hazard when unseen.
  const std::vector<double>& HazardFor(int32_t group) const;
  const std::vector<double>& PooledHazard() const { return pooled_; }
  size_t NumGroups() const { return per_group_.size(); }

 private:
  std::vector<double> pooled_;
  std::unordered_map<int32_t, std::vector<double>> per_group_;
};

// Continuous product-limit estimator. Survival(t) is a right-continuous step
// function dropping at each uncensored event time.
class ContinuousKaplanMeier {
 public:
  explicit ContinuousKaplanMeier(const std::vector<LifetimeObservation>& observations);

  // S(t) = P(lifetime > t).
  double Survival(double t) const;

 private:
  std::vector<double> times_;     // Sorted distinct event times.
  std::vector<double> survival_;  // S(times_[i]).
};

}  // namespace cloudgen

#endif  // SRC_SURVIVAL_KAPLAN_MEIER_H_
