// Fig.-1-style workload visualization: one row per 5-minute period; each VM
// is drawn as a block whose color encodes the flavor and whose width encodes
// the lifetime (compressed to the discrete bin index); batches within a
// period are separated by a gap. Rendered as ANSI-colored terminal text or a
// PPM image.
#ifndef SRC_VIZ_TRACE_VIZ_H_
#define SRC_VIZ_TRACE_VIZ_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/survival/binning.h"
#include "src/trace/trace.h"
#include "src/util/status.h"

namespace cloudgen {

struct VizOptions {
  int64_t from_period = 0;
  int64_t to_period = 0;   // Exclusive; 0 → the trace's full window.
  size_t max_row_cells = 160;  // Truncate rows beyond this many cells.
  // Lifetime-bin width divisor: cell width = 1 + bin / divisor.
  size_t bin_width_divisor = 8;
};

// ANSI-colored text rendering (for terminals).
std::string RenderAnsi(const Trace& trace, const LifetimeBinning& binning,
                       const VizOptions& options);

// PPM (P6) image rendering; each period is one pixel row scaled vertically by
// `row_height`. Written atomically (temp + rename).
Status WritePpm(const Trace& trace, const LifetimeBinning& binning,
                const VizOptions& options, const std::string& path,
                size_t row_height = 3);

}  // namespace cloudgen

#endif  // SRC_VIZ_TRACE_VIZ_H_
