#include "src/viz/trace_viz.h"

#include <array>

#include "src/util/atomic_file.h"
#include "src/util/check.h"
#include "src/util/strings.h"

namespace cloudgen {
namespace {

// A qualitative palette; flavors cycle through it.
constexpr std::array<std::array<uint8_t, 3>, 12> kPalette = {{
    {230, 25, 75},   {60, 180, 75},   {255, 225, 25}, {0, 130, 200},
    {245, 130, 48},  {145, 30, 180},  {70, 240, 240}, {240, 50, 230},
    {210, 245, 60},  {250, 190, 190}, {0, 128, 128},  {170, 110, 40},
}};

const std::array<uint8_t, 3>& FlavorColor(int32_t flavor) {
  return kPalette[static_cast<size_t>(flavor) % kPalette.size()];
}

size_t CellWidth(size_t bin, const VizOptions& options) {
  return 1 + bin / std::max<size_t>(1, options.bin_width_divisor);
}

int64_t EffectiveEnd(const Trace& trace, const VizOptions& options) {
  return options.to_period > options.from_period ? options.to_period : trace.WindowEnd();
}

}  // namespace

std::string RenderAnsi(const Trace& trace, const LifetimeBinning& binning,
                       const VizOptions& options) {
  const int64_t from = options.from_period;
  const int64_t to = EffectiveEnd(trace, options);
  const std::vector<PeriodBatches> periods = BuildBatches(trace);
  std::string out;
  for (const PeriodBatches& period : periods) {
    if (period.period < from || period.period >= to) {
      continue;
    }
    size_t cells = 0;
    out += StrFormat("%6lld |", static_cast<long long>(period.period));
    for (const Batch& batch : period.batches) {
      if (cells >= options.max_row_cells) {
        break;
      }
      for (size_t idx : batch.job_indices) {
        const Job& job = trace.Jobs()[idx];
        const size_t bin = binning.BinOf(job.LifetimeSeconds());
        const auto& rgb = FlavorColor(job.flavor);
        const size_t width = CellWidth(bin, options);
        out += StrFormat("\x1b[48;2;%d;%d;%dm", rgb[0], rgb[1], rgb[2]);
        for (size_t w = 0; w < width && cells < options.max_row_cells; ++w) {
          out += ' ';
          ++cells;
        }
        out += "\x1b[0m";
        if (cells >= options.max_row_cells) {
          break;
        }
      }
      out += ' ';  // Batch separator.
      ++cells;
    }
    out += '\n';
  }
  return out;
}

Status WritePpm(const Trace& trace, const LifetimeBinning& binning,
                const VizOptions& options, const std::string& path, size_t row_height) {
  const int64_t from = options.from_period;
  const int64_t to = EffectiveEnd(trace, options);
  CG_CHECK(to > from);
  const std::vector<PeriodBatches> periods = BuildBatches(trace);
  const size_t width = options.max_row_cells;
  const auto num_rows = static_cast<size_t>(to - from);

  std::vector<uint8_t> image(width * num_rows * row_height * 3, 255);
  for (const PeriodBatches& period : periods) {
    if (period.period < from || period.period >= to) {
      continue;
    }
    const auto row = static_cast<size_t>(period.period - from);
    size_t x = 0;
    for (const Batch& batch : period.batches) {
      for (size_t idx : batch.job_indices) {
        if (x >= width) {
          break;
        }
        const Job& job = trace.Jobs()[idx];
        const size_t bin = binning.BinOf(job.LifetimeSeconds());
        const auto& rgb = FlavorColor(job.flavor);
        const size_t cell_width = CellWidth(bin, options);
        for (size_t w = 0; w < cell_width && x < width; ++w, ++x) {
          for (size_t h = 0; h < row_height; ++h) {
            const size_t pixel = ((row * row_height + h) * width + x) * 3;
            image[pixel] = rgb[0];
            image[pixel + 1] = rgb[1];
            image[pixel + 2] = rgb[2];
          }
        }
      }
      x += 1;  // Batch separator (white).
    }
  }

  return WriteFileAtomic(path, [&](std::ostream& out) {
    out << "P6\n" << width << ' ' << num_rows * row_height << "\n255\n";
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
  });
}

}  // namespace cloudgen
