#include "src/sched/cluster.h"

#include "src/util/check.h"

namespace cloudgen {

void Server::Place(const Resources& demand) {
  CG_CHECK_MSG(CanFit(demand), "Place on a server that cannot fit the demand");
  used_.cpus += demand.cpus;
  used_.memory_gb += demand.memory_gb;
}

void Server::Remove(const Resources& demand) {
  used_.cpus -= demand.cpus;
  used_.memory_gb -= demand.memory_gb;
  CG_CHECK_MSG(used_.cpus >= -1e-6 && used_.memory_gb >= -1e-6,
               "Remove below zero allocation");
  if (used_.cpus < 0.0) {
    used_.cpus = 0.0;
  }
  if (used_.memory_gb < 0.0) {
    used_.memory_gb = 0.0;
  }
}

Cluster::Cluster(size_t num_servers, Resources per_server_capacity) {
  CG_CHECK(num_servers > 0);
  CG_CHECK(per_server_capacity.cpus > 0.0 && per_server_capacity.memory_gb > 0.0);
  servers_.assign(num_servers, Server(per_server_capacity));
}

double Cluster::CpuAllocationRatio() const {
  double used = 0.0;
  double capacity = 0.0;
  for (const Server& server : servers_) {
    used += server.Used().cpus;
    capacity += server.Capacity().cpus;
  }
  return used / capacity;
}

double Cluster::MemAllocationRatio() const {
  double used = 0.0;
  double capacity = 0.0;
  for (const Server& server : servers_) {
    used += server.Used().memory_gb;
    capacity += server.Capacity().memory_gb;
  }
  return used / capacity;
}

}  // namespace cloudgen
