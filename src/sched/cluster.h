// Cluster model for the scheduling experiments (§6.2): homogeneous servers
// with CPU and memory capacity, tracking current allocations.
#ifndef SRC_SCHED_CLUSTER_H_
#define SRC_SCHED_CLUSTER_H_

#include <cstddef>
#include <vector>

namespace cloudgen {

// A two-dimensional resource demand or capacity.
struct Resources {
  double cpus = 0.0;
  double memory_gb = 0.0;
};

class Server {
 public:
  explicit Server(Resources capacity) : capacity_(capacity) {}

  const Resources& Capacity() const { return capacity_; }
  const Resources& Used() const { return used_; }
  Resources Remaining() const {
    return {capacity_.cpus - used_.cpus, capacity_.memory_gb - used_.memory_gb};
  }

  bool CanFit(const Resources& demand) const {
    return used_.cpus + demand.cpus <= capacity_.cpus + 1e-9 &&
           used_.memory_gb + demand.memory_gb <= capacity_.memory_gb + 1e-9;
  }

  void Place(const Resources& demand);
  void Remove(const Resources& demand);

  // Fraction of capacity in use, per dimension.
  double CpuUtilization() const { return used_.cpus / capacity_.cpus; }
  double MemUtilization() const { return used_.memory_gb / capacity_.memory_gb; }

 private:
  Resources capacity_;
  Resources used_;
};

class Cluster {
 public:
  Cluster(size_t num_servers, Resources per_server_capacity);

  size_t NumServers() const { return servers_.size(); }
  const Server& ServerAt(size_t i) const { return servers_[i]; }
  Server& MutableServerAt(size_t i) { return servers_[i]; }

  // Aggregate allocation ratios over the whole cluster.
  double CpuAllocationRatio() const;
  double MemAllocationRatio() const;

 private:
  std::vector<Server> servers_;
};

}  // namespace cloudgen

#endif  // SRC_SCHED_CLUSTER_H_
