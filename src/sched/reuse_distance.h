// Reuse distance (§6.2, Fig. 9), following Hadary et al. (Protean): for each
// VM request of type v, the number of *unique* VM types requested since the
// last request of v. Small reuse distances justify Protean's caching of
// placement evaluations; synthetic traces must match the real distribution
// for cache tuning to transfer.
#ifndef SRC_SCHED_REUSE_DISTANCE_H_
#define SRC_SCHED_REUSE_DISTANCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/trace/trace.h"

namespace cloudgen {

// Raw reuse distances over the trace's arrival-ordered flavor sequence.
// First-ever requests of a type have no previous occurrence and are skipped.
std::vector<int> ReuseDistances(const Trace& trace);

// Histogram proportions over buckets {0, 1, 2, 3, 4, 5, 6+} (Fig. 9's x-axis).
inline constexpr size_t kReuseBuckets = 7;
std::vector<double> ReuseDistanceProportions(const Trace& trace);

// Protean-style placement cache: placement evaluations are cached per VM
// type with LRU eviction over `cache_size` distinct types. A request hits
// exactly when its reuse distance is below the cache size, so the hit rate is
// the CDF of reuse distances — the statistic Protean's cache is tuned on
// ("memory footprint and hit-rate considerations"). First-ever requests of a
// type count as misses.
double PlacementCacheHitRate(const Trace& trace, size_t cache_size);

// Hit rate at each of the given cache sizes (shares one distance pass).
std::vector<double> PlacementCacheCurve(const Trace& trace,
                                        const std::vector<size_t>& cache_sizes);

}  // namespace cloudgen

#endif  // SRC_SCHED_REUSE_DISTANCE_H_
