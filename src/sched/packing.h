// The four packing algorithms of §6.2's FFAR experiments:
//   * Random placement — uniform over feasible servers
//   * Busiest-fit      — feasible server with the highest current utilization
//   * Cosine similarity (Grandl et al., multi-resource packing) — feasible
//     server whose remaining-capacity vector best aligns with the demand
//   * Delta perp-distance (Ke et al., Fundy) — feasible server whose post-
//     placement utilization point moves least away from the balanced-use
//     diagonal (minimizes growth of resource imbalance)
#ifndef SRC_SCHED_PACKING_H_
#define SRC_SCHED_PACKING_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sched/cluster.h"

namespace cloudgen {

class Rng;

class PackingAlgorithm {
 public:
  virtual ~PackingAlgorithm() = default;

  virtual std::string Name() const = 0;

  // Index of the chosen server, or -1 when no server fits (a scheduling
  // failure). `rng` is used only by randomized policies.
  virtual int ChooseServer(const Cluster& cluster, const Resources& demand,
                           Rng& rng) const = 0;
};

class RandomPlacement : public PackingAlgorithm {
 public:
  std::string Name() const override { return "Random"; }
  int ChooseServer(const Cluster& cluster, const Resources& demand, Rng& rng) const override;
};

class BusiestFit : public PackingAlgorithm {
 public:
  std::string Name() const override { return "BusiestFit"; }
  int ChooseServer(const Cluster& cluster, const Resources& demand, Rng& rng) const override;
};

class CosineSimilarityPacking : public PackingAlgorithm {
 public:
  std::string Name() const override { return "CosineSim"; }
  int ChooseServer(const Cluster& cluster, const Resources& demand, Rng& rng) const override;
};

class DeltaPerpDistance : public PackingAlgorithm {
 public:
  std::string Name() const override { return "DeltaPerp"; }
  int ChooseServer(const Cluster& cluster, const Resources& demand, Rng& rng) const override;
};

// Classic bin-packing heuristics, provided for scheduler studies beyond the
// paper's four (not part of the §6.2 tuple sampler).

// Lowest-index feasible server.
class FirstFit : public PackingAlgorithm {
 public:
  std::string Name() const override { return "FirstFit"; }
  int ChooseServer(const Cluster& cluster, const Resources& demand, Rng& rng) const override;
};

// Feasible server with the least remaining capacity (tightest fit, by
// normalized remaining volume).
class BestFit : public PackingAlgorithm {
 public:
  std::string Name() const override { return "BestFit"; }
  int ChooseServer(const Cluster& cluster, const Resources& demand, Rng& rng) const override;
};

// Feasible server with the most remaining capacity (load spreading).
class WorstFit : public PackingAlgorithm {
 public:
  std::string Name() const override { return "WorstFit"; }
  int ChooseServer(const Cluster& cluster, const Resources& demand, Rng& rng) const override;
};

// The standard set used by the FFAR experiment sampler (the four §6.2
// algorithms, in paper order).
std::vector<std::unique_ptr<PackingAlgorithm>> MakeAllPackingAlgorithms();

// Every implemented algorithm, including the classic heuristics.
std::vector<std::unique_ptr<PackingAlgorithm>> MakeExtendedPackingAlgorithms();

}  // namespace cloudgen

#endif  // SRC_SCHED_PACKING_H_
