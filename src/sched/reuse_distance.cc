#include "src/sched/reuse_distance.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace cloudgen {

std::vector<int> ReuseDistances(const Trace& trace) {
  std::vector<int> distances;
  distances.reserve(trace.NumJobs());
  // For each flavor, the sequence position of its most recent request; to
  // count *unique* types since then we walk the per-flavor last-seen
  // positions: types with last-seen > last occurrence of v are exactly the
  // unique types requested in between.
  std::unordered_map<int32_t, size_t> last_seen;
  size_t position = 0;
  for (const Job& job : trace.Jobs()) {
    const auto it = last_seen.find(job.flavor);
    if (it != last_seen.end()) {
      const size_t since = it->second;
      int unique_between = 0;
      for (const auto& [flavor, pos] : last_seen) {
        if (flavor != job.flavor && pos > since) {
          ++unique_between;
        }
      }
      distances.push_back(unique_between);
    }
    last_seen[job.flavor] = position++;
  }
  return distances;
}

double PlacementCacheHitRate(const Trace& trace, size_t cache_size) {
  return PlacementCacheCurve(trace, {cache_size})[0];
}

std::vector<double> PlacementCacheCurve(const Trace& trace,
                                        const std::vector<size_t>& cache_sizes) {
  const std::vector<int> distances = ReuseDistances(trace);
  std::vector<double> hit_rates(cache_sizes.size(), 0.0);
  // Every request is a lookup; only repeats (with a distance) can hit.
  const auto total_requests = static_cast<double>(trace.NumJobs());
  if (total_requests == 0.0) {
    return hit_rates;
  }
  for (size_t s = 0; s < cache_sizes.size(); ++s) {
    size_t hits = 0;
    for (int d : distances) {
      if (static_cast<size_t>(d) < cache_sizes[s]) {
        ++hits;
      }
    }
    hit_rates[s] = static_cast<double>(hits) / total_requests;
  }
  return hit_rates;
}

std::vector<double> ReuseDistanceProportions(const Trace& trace) {
  const std::vector<int> distances = ReuseDistances(trace);
  std::vector<double> proportions(kReuseBuckets, 0.0);
  if (distances.empty()) {
    return proportions;
  }
  for (int d : distances) {
    const size_t bucket = std::min<size_t>(static_cast<size_t>(d), kReuseBuckets - 1);
    proportions[bucket] += 1.0;
  }
  for (double& p : proportions) {
    p /= static_cast<double>(distances.size());
  }
  return proportions;
}

}  // namespace cloudgen
