#include "src/sched/ffar.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace cloudgen {

FfarResult RunPacking(const Trace& trace, const std::vector<Event>& events,
                      const SchedulingTuple& tuple, const PackingAlgorithm& algorithm,
                      Rng& rng) {
  FfarResult result;
  if (events.empty()) {
    return result;
  }
  Cluster cluster(tuple.num_servers, tuple.server_capacity);
  const auto start =
      static_cast<size_t>(tuple.start_fraction * static_cast<double>(events.size()));

  // job index -> server it was placed on (only jobs placed by this packing).
  std::unordered_map<size_t, int> placements;
  for (size_t e = start; e < events.size(); ++e) {
    const Event& event = events[e];
    const Job& job = trace.Jobs()[event.job_index];
    const Flavor& flavor = trace.Flavors()[static_cast<size_t>(job.flavor)];
    const Resources demand{flavor.cpus, flavor.memory_gb};
    if (event.kind == EventKind::kArrival) {
      // Demands larger than a whole server can never fit; skip them rather
      // than counting an unavoidable failure (capacity sampling guarantees
      // these are rare).
      if (demand.cpus > tuple.server_capacity.cpus ||
          demand.memory_gb > tuple.server_capacity.memory_gb) {
        continue;
      }
      const int server = algorithm.ChooseServer(cluster, demand, rng);
      if (server < 0) {
        result.failed = true;
        result.cpu_ffar = cluster.CpuAllocationRatio();
        result.mem_ffar = cluster.MemAllocationRatio();
        return result;
      }
      cluster.MutableServerAt(static_cast<size_t>(server)).Place(demand);
      placements.emplace(event.job_index, server);
      ++result.placed_jobs;
    } else {
      const auto it = placements.find(event.job_index);
      if (it != placements.end()) {
        cluster.MutableServerAt(static_cast<size_t>(it->second)).Remove(demand);
        placements.erase(it);
      }
    }
  }
  // Whole remainder packed without failure.
  result.cpu_ffar = cluster.CpuAllocationRatio();
  result.mem_ffar = cluster.MemAllocationRatio();
  return result;
}

std::vector<SchedulingTuple> SampleSchedulingTuples(size_t count, size_t num_algorithms,
                                                    Rng& rng) {
  CG_CHECK(num_algorithms > 0);
  std::vector<SchedulingTuple> tuples;
  tuples.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    SchedulingTuple tuple;
    tuple.start_fraction = rng.Uniform(0.0, 0.6);
    tuple.num_servers = static_cast<size_t>(rng.UniformInt(8, 48));
    // Capacities chosen so either resource can be the bottleneck: memory per
    // core between 2 and 6 GB against a flavor menu of 1-8 GB per core.
    tuple.server_capacity.cpus = static_cast<double>(rng.UniformInt(48, 128));
    tuple.server_capacity.memory_gb =
        tuple.server_capacity.cpus * rng.Uniform(2.0, 6.0);
    tuple.algorithm_index = rng.UniformInt(static_cast<uint64_t>(num_algorithms));
    tuples.push_back(tuple);
  }
  return tuples;
}

FfarSummary SummarizeFfar(const std::vector<FfarResult>& results) {
  FfarSummary summary;
  std::vector<double> limiting;
  limiting.reserve(results.size());
  size_t above = 0;
  for (const FfarResult& result : results) {
    limiting.push_back(result.LimitingFfar());
    if (result.LimitingFfar() > 0.95) {
      ++above;
    }
  }
  summary.experiments = results.size();
  if (!results.empty()) {
    summary.median_limiting = Quantile(limiting, 0.5);
    summary.proportion_above_95 =
        static_cast<double>(above) / static_cast<double>(results.size());
  }
  return summary;
}

}  // namespace cloudgen
