// First-failure allocation ratio (FFAR) experiments (§6.2, Fig. 10, Table 5).
//
// A scheduling tuple is (start point, number of servers, per-server capacity,
// packing algorithm). The trace's event stream is replayed from the start
// point onto an initially-empty cluster; at the first arrival with no
// feasible server, the experiment stops and reports the cluster's CPU and
// memory allocation ratios.
#ifndef SRC_SCHED_FFAR_H_
#define SRC_SCHED_FFAR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sched/cluster.h"
#include "src/sched/packing.h"
#include "src/trace/events.h"
#include "src/trace/trace.h"

namespace cloudgen {

struct SchedulingTuple {
  double start_fraction = 0.0;  // Start point as a fraction of the event stream.
  size_t num_servers = 32;
  Resources server_capacity{64.0, 256.0};
  size_t algorithm_index = 0;  // Into MakeAllPackingAlgorithms().
};

struct FfarResult {
  bool failed = false;  // False if the whole trace packed without failure.
  double cpu_ffar = 0.0;
  double mem_ffar = 0.0;
  size_t placed_jobs = 0;

  // The resource that was fuller at the failure point (§6.2 reports summary
  // stats for "the limiting resource").
  double LimitingFfar() const { return cpu_ffar > mem_ffar ? cpu_ffar : mem_ffar; }
};

// Replays `events` (from BuildEventStream on the trace) through one tuple.
FfarResult RunPacking(const Trace& trace, const std::vector<Event>& events,
                      const SchedulingTuple& tuple, const PackingAlgorithm& algorithm,
                      Rng& rng);

// Samples `count` scheduling tuples; server counts and capacities are drawn
// from ranges calibrated so CPU and memory are each limiting in roughly half
// the packings (per §6.2). The same tuples must be reused across generators
// to reduce variance — callers sample once and reuse.
std::vector<SchedulingTuple> SampleSchedulingTuples(size_t count, size_t num_algorithms,
                                                    Rng& rng);

struct FfarSummary {
  double median_limiting = 0.0;
  double proportion_above_95 = 0.0;
  size_t experiments = 0;
};
FfarSummary SummarizeFfar(const std::vector<FfarResult>& results);

}  // namespace cloudgen

#endif  // SRC_SCHED_FFAR_H_
