#include "src/sched/packing.h"

#include <cmath>
#include <limits>

#include "src/util/rng.h"

namespace cloudgen {
namespace {

// Perpendicular distance of a server's utilization point from the balanced
// diagonal u_cpu == u_mem.
double PerpDistance(double cpu_util, double mem_util) {
  return std::fabs(cpu_util - mem_util) / std::sqrt(2.0);
}

}  // namespace

int RandomPlacement::ChooseServer(const Cluster& cluster, const Resources& demand,
                                  Rng& rng) const {
  std::vector<int> feasible;
  feasible.reserve(cluster.NumServers());
  for (size_t i = 0; i < cluster.NumServers(); ++i) {
    if (cluster.ServerAt(i).CanFit(demand)) {
      feasible.push_back(static_cast<int>(i));
    }
  }
  if (feasible.empty()) {
    return -1;
  }
  return feasible[rng.UniformInt(static_cast<uint64_t>(feasible.size()))];
}

int BusiestFit::ChooseServer(const Cluster& cluster, const Resources& demand,
                             Rng& /*rng*/) const {
  int best = -1;
  double best_score = -1.0;
  for (size_t i = 0; i < cluster.NumServers(); ++i) {
    const Server& server = cluster.ServerAt(i);
    if (!server.CanFit(demand)) {
      continue;
    }
    const double score = server.CpuUtilization() + server.MemUtilization();
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int CosineSimilarityPacking::ChooseServer(const Cluster& cluster, const Resources& demand,
                                          Rng& /*rng*/) const {
  const double demand_norm =
      std::sqrt(demand.cpus * demand.cpus + demand.memory_gb * demand.memory_gb);
  int best = -1;
  double best_score = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < cluster.NumServers(); ++i) {
    const Server& server = cluster.ServerAt(i);
    if (!server.CanFit(demand)) {
      continue;
    }
    const Resources remaining = server.Remaining();
    const double remaining_norm = std::sqrt(remaining.cpus * remaining.cpus +
                                            remaining.memory_gb * remaining.memory_gb);
    double score;
    if (remaining_norm < 1e-12 || demand_norm < 1e-12) {
      score = 0.0;
    } else {
      score = (demand.cpus * remaining.cpus + demand.memory_gb * remaining.memory_gb) /
              (demand_norm * remaining_norm);
    }
    // Tie-break toward fuller servers to consolidate.
    score += 1e-6 * (server.CpuUtilization() + server.MemUtilization());
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int DeltaPerpDistance::ChooseServer(const Cluster& cluster, const Resources& demand,
                                    Rng& /*rng*/) const {
  int best = -1;
  double best_delta = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < cluster.NumServers(); ++i) {
    const Server& server = cluster.ServerAt(i);
    if (!server.CanFit(demand)) {
      continue;
    }
    const double before = PerpDistance(server.CpuUtilization(), server.MemUtilization());
    const double cpu_after =
        (server.Used().cpus + demand.cpus) / server.Capacity().cpus;
    const double mem_after =
        (server.Used().memory_gb + demand.memory_gb) / server.Capacity().memory_gb;
    const double delta = PerpDistance(cpu_after, mem_after) - before;
    if (delta < best_delta) {
      best_delta = delta;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int FirstFit::ChooseServer(const Cluster& cluster, const Resources& demand,
                           Rng& /*rng*/) const {
  for (size_t i = 0; i < cluster.NumServers(); ++i) {
    if (cluster.ServerAt(i).CanFit(demand)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

namespace {

// Normalized remaining volume: the average of per-dimension free fractions.
double RemainingFraction(const Server& server) {
  const Resources remaining = server.Remaining();
  return 0.5 * (remaining.cpus / server.Capacity().cpus +
                remaining.memory_gb / server.Capacity().memory_gb);
}

}  // namespace

int BestFit::ChooseServer(const Cluster& cluster, const Resources& demand,
                          Rng& /*rng*/) const {
  int best = -1;
  double best_remaining = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < cluster.NumServers(); ++i) {
    const Server& server = cluster.ServerAt(i);
    if (!server.CanFit(demand)) {
      continue;
    }
    const double remaining = RemainingFraction(server);
    if (remaining < best_remaining) {
      best_remaining = remaining;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int WorstFit::ChooseServer(const Cluster& cluster, const Resources& demand,
                           Rng& /*rng*/) const {
  int best = -1;
  double best_remaining = -1.0;
  for (size_t i = 0; i < cluster.NumServers(); ++i) {
    const Server& server = cluster.ServerAt(i);
    if (!server.CanFit(demand)) {
      continue;
    }
    const double remaining = RemainingFraction(server);
    if (remaining > best_remaining) {
      best_remaining = remaining;
      best = static_cast<int>(i);
    }
  }
  return best;
}

std::vector<std::unique_ptr<PackingAlgorithm>> MakeAllPackingAlgorithms() {
  std::vector<std::unique_ptr<PackingAlgorithm>> algorithms;
  algorithms.push_back(std::make_unique<RandomPlacement>());
  algorithms.push_back(std::make_unique<BusiestFit>());
  algorithms.push_back(std::make_unique<CosineSimilarityPacking>());
  algorithms.push_back(std::make_unique<DeltaPerpDistance>());
  return algorithms;
}

std::vector<std::unique_ptr<PackingAlgorithm>> MakeExtendedPackingAlgorithms() {
  std::vector<std::unique_ptr<PackingAlgorithm>> algorithms = MakeAllPackingAlgorithms();
  algorithms.push_back(std::make_unique<FirstFit>());
  algorithms.push_back(std::make_unique<BestFit>());
  algorithms.push_back(std::make_unique<WorstFit>());
  return algorithms;
}

}  // namespace cloudgen
