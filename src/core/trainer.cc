#include "src/core/trainer.h"

#include <algorithm>
#include <numeric>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace cloudgen {

SequenceBatching::SequenceBatching(size_t num_steps, SequenceBatchingSpec spec)
    : seq_len_(spec.seq_len), batch_size_(spec.batch_size) {
  CG_CHECK(num_steps > 0);
  CG_CHECK(spec.seq_len > 0 && spec.batch_size > 0);
  // Shrink the layout for tiny datasets so at least one minibatch exists.
  while (seq_len_ > 1 && num_steps / seq_len_ == 0) {
    seq_len_ /= 2;
  }
  size_t num_seqs = num_steps / seq_len_;
  CG_CHECK_MSG(num_seqs > 0, "dataset smaller than a single sequence");
  batch_size_ = std::min(batch_size_, num_seqs);
  num_minibatches_ = num_seqs / batch_size_;
}

size_t SequenceBatching::StepIndex(size_t mb, size_t t, size_t b) const {
  CG_DCHECK(mb < num_minibatches_ && t < seq_len_ && b < batch_size_);
  const size_t seq = mb * batch_size_ + b;
  return seq * seq_len_ + t;
}

std::vector<size_t> SequenceBatching::EpochOrder(Rng& rng) const {
  std::vector<size_t> order(num_minibatches_);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  return order;
}

}  // namespace cloudgen
