#include "src/core/trainer.h"

#include <algorithm>
#include <numeric>

#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace cloudgen {

SequenceBatching::SequenceBatching(size_t num_steps, SequenceBatchingSpec spec)
    : seq_len_(spec.seq_len), batch_size_(spec.batch_size) {
  CG_CHECK(num_steps > 0);
  CG_CHECK(spec.seq_len > 0 && spec.batch_size > 0);
  // Shrink the layout for tiny datasets so at least one minibatch exists.
  while (seq_len_ > 1 && num_steps / seq_len_ == 0) {
    seq_len_ /= 2;
  }
  size_t num_seqs = num_steps / seq_len_;
  CG_CHECK_MSG(num_seqs > 0, "dataset smaller than a single sequence");
  batch_size_ = std::min(batch_size_, num_seqs);
  num_minibatches_ = num_seqs / batch_size_;
}

size_t SequenceBatching::StepIndex(size_t mb, size_t t, size_t b) const {
  CG_DCHECK(mb < num_minibatches_ && t < seq_len_ && b < batch_size_);
  const size_t seq = mb * batch_size_ + b;
  return seq * seq_len_ + t;
}

std::vector<size_t> SequenceBatching::EpochOrder(Rng& rng) const {
  std::vector<size_t> order(num_minibatches_);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  return order;
}

namespace {

// Fixed shard ceiling: a function of nothing but this constant and the batch
// size, so the gradient-reduction order (and therefore training) cannot
// depend on how many threads happen to be available.
constexpr size_t kMaxBpttShards = 8;

// Rows [r0, r1) of a row-major matrix are one contiguous block.
Matrix SliceRows(const Matrix& m, size_t r0, size_t r1) {
  Matrix out(r1 - r0, m.Cols());
  std::copy(m.Row(r0), m.Row(r0) + (r1 - r0) * m.Cols(), out.Data());
  return out;
}

}  // namespace

DataParallelBptt::DataParallelBptt(SequenceNetwork* network, size_t batch_size)
    : network_(network), batch_size_(batch_size) {
  CG_CHECK(network != nullptr);
  CG_CHECK(batch_size > 0);
  const size_t num_shards = std::min(batch_size, kMaxBpttShards);
  row_splits_.resize(num_shards + 1);
  for (size_t s = 0; s <= num_shards; ++s) {
    row_splits_[s] = batch_size * s / num_shards;
  }
  // Shard 0 runs on the main network; shards 1..S-1 get replicas.
  if (num_shards > 1) {
    replicas_.assign(num_shards - 1, *network);
  }
}

double DataParallelBptt::Run(const std::vector<Matrix>& inputs, const ShardLossFn& loss_fn) {
  CG_CHECK(!inputs.empty());
  CG_CHECK(inputs[0].Rows() == batch_size_);
  const size_t num_shards = NumShards();
  const size_t steps = inputs.size();
  network_->ZeroGrads();

  if (num_shards == 1) {
    std::vector<Matrix> logits;
    std::vector<Matrix> dlogits(steps);
    network_->ForwardSequence(inputs, &logits);
    const double loss = loss_fn(0, batch_size_, logits, &dlogits);
    network_->BackwardSequence(dlogits);
    return loss;
  }

  // Refresh replica weights from the main network (the optimizer only ever
  // steps the main copy).
  const std::vector<Matrix*> main_params = network_->Params();
  for (SequenceNetwork& replica : replicas_) {
    const std::vector<Matrix*> replica_params = replica.Params();
    for (size_t p = 0; p < main_params.size(); ++p) {
      *replica_params[p] = *main_params[p];
    }
  }

  std::vector<double> shard_loss(num_shards, 0.0);
  GlobalThreadPool().ParallelFor(0, num_shards, [&](size_t s) {
    SequenceNetwork& net = s == 0 ? *network_ : replicas_[s - 1];
    const size_t r0 = row_splits_[s];
    const size_t r1 = row_splits_[s + 1];
    std::vector<Matrix> shard_inputs(steps);
    for (size_t t = 0; t < steps; ++t) {
      shard_inputs[t] = SliceRows(inputs[t], r0, r1);
    }
    net.ZeroGrads();
    std::vector<Matrix> logits;
    std::vector<Matrix> dlogits(steps);
    net.ForwardSequence(shard_inputs, &logits);
    shard_loss[s] = loss_fn(r0, r1, logits, &dlogits);
    net.BackwardSequence(dlogits);
  });

  // Reduce replica gradients into the main network in ascending shard order;
  // this fixed order keeps the float sums identical for every thread count.
  const std::vector<Matrix*> main_grads = network_->Grads();
  for (size_t s = 1; s < num_shards; ++s) {
    const std::vector<Matrix*> replica_grads = replicas_[s - 1].Grads();
    for (size_t g = 0; g < main_grads.size(); ++g) {
      main_grads[g]->Add(*replica_grads[g]);
    }
  }
  double loss = 0.0;
  for (size_t s = 0; s < num_shards; ++s) {
    loss += shard_loss[s];
  }
  return loss;
}

}  // namespace cloudgen
