// Generation checkpoints: the durable cursor that makes long generation
// runs resumable with bitwise-identical output.
//
// The orchestrator (WorkloadModel::GenerateMany / GenerateStreaming) writes
// a checkpoint after every sealed trace segment. Two modes share the format:
//
//   kGenModeManyTraces  Parallel multi-trace sampling. Trace i is a pure
//                       function of (base, i) via Rng::Stream, so the cursor
//                       is just `base` plus the first not-yet-durable trace
//                       index — resume re-derives every remaining stream
//                       without any saved RNG state.
//   kGenModeStreaming   One month-scale trace streamed period by period. A
//                       trace's periods share evolving LSTM/RNG state, so
//                       the cursor carries an exact state blob: both
//                       generators' hidden states, the previous-token /
//                       previous-lifetime feedback, the user counter, and
//                       Rng::SaveState bytes (including the cached Box-
//                       Muller variate) captured at a period boundary.
//
// A fingerprint of the generation options, count, mode, and caller context
// (CLI seed) is stored and verified on load, so resuming with different
// flags/seed is rejected (gen.resume.rejected) instead of silently
// producing a franken-trace. Checkpoints are sealed files (CRC'd, atomic,
// fsync'd): a torn checkpoint reads as DATA_LOSS, never as a wrong cursor.
#ifndef SRC_CORE_GEN_CHECKPOINT_H_
#define SRC_CORE_GEN_CHECKPOINT_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/nn/lstm.h"
#include "src/util/status.h"

namespace cloudgen {

inline constexpr uint32_t kGenModeManyTraces = 0;
inline constexpr uint32_t kGenModeStreaming = 1;

struct GenCursor {
  static constexpr uint32_t kVersion = 1;

  uint32_t mode = kGenModeManyTraces;
  uint64_t fingerprint = 0;      // Options/count/mode/caller digest.
  uint64_t base = 0;             // Rng::Stream anchor (many-traces mode).
  uint64_t count = 0;            // Total traces requested.
  uint64_t next_trace = 0;       // First trace index not yet durable.
  int64_t next_period = 0;       // Streaming mode: first period not yet durable.
  uint64_t segments_sealed = 0;  // Manifest length this cursor covers.
  std::string state_blob;        // Streaming mode: exact generator/RNG state.
};

Status SaveGenCheckpoint(const std::string& path, const GenCursor& cursor);
Status LoadGenCheckpoint(const std::string& path, GenCursor* cursor);

// splitmix64-style mixing used to build option fingerprints.
uint64_t HashMix(uint64_t h, uint64_t v);

// Exact binary (de)serialization of an LSTM hidden state, shared by the
// generator SaveState/LoadState implementations.
void WriteLstmState(std::ostream& out, const LstmState& state);
void ReadLstmState(std::istream& in, LstmState* state);

}  // namespace cloudgen

#endif  // SRC_CORE_GEN_CHECKPOINT_H_
