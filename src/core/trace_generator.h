// Common interface for end-to-end trace generators (§6): the LSTM model and
// the Naive / SimpleBatch baselines all implement this, so the capacity-
// planning and scheduling evaluations are generator-agnostic.
#ifndef SRC_CORE_TRACE_GENERATOR_H_
#define SRC_CORE_TRACE_GENERATOR_H_

#include <cstdint>
#include <string>

#include "src/trace/trace.h"

namespace cloudgen {

class Rng;

class TraceGenerator {
 public:
  virtual ~TraceGenerator() = default;

  virtual std::string Name() const = 0;

  // Samples one trace over [from, to) with the arrival rate scaled by
  // `arrival_scale` (1.0 = nominal; 10.0 = the paper's stress test).
  virtual Trace Generate(int64_t from, int64_t to, double arrival_scale, Rng& rng) const = 0;
};

}  // namespace cloudgen

#endif  // SRC_CORE_TRACE_GENERATOR_H_
