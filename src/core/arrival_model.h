// Stage 1: batch-arrival model (§2.1).
//
// Fits an inhomogeneous Poisson regression to per-period counts (batches for
// the paper's model; raw jobs for the Fig.-6 baseline) over temporal features
// (HOD one-hot, DOW one-hot, DOH survival-encoded), and provides rate
// prediction and count sampling for future periods given a DOH day.
#ifndef SRC_CORE_ARRIVAL_MODEL_H_
#define SRC_CORE_ARRIVAL_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/glm/features.h"
#include "src/glm/poisson_regression.h"
#include "src/trace/trace.h"

namespace cloudgen {

class Rng;

struct ArrivalModelConfig {
  // Elastic-net penalty on the Poisson regression.
  double lambda = 1e-4;
  double l1_ratio = 0.3;
  // Include the DOH block in the features (ablation: Fig. 6 variants).
  bool use_doh = true;
  // Geometric success probability for sampled-DOH generation; the paper uses
  // 1/7 (expected sample: one week before the end of history).
  double doh_geometric_p = 1.0 / 7.0;
};

// What to count per period when fitting.
enum class ArrivalGranularity { kBatches, kJobs };

class BatchArrivalModel {
 public:
  BatchArrivalModel() = default;

  // Fits on a training trace; counts are batch or job arrivals per period.
  void Fit(const Trace& train, ArrivalGranularity granularity,
           const ArrivalModelConfig& config);

  bool IsFitted() const { return regression_.IsFitted(); }
  int HistoryDays() const { return history_days_; }
  const ArrivalModelConfig& Config() const { return config_; }

  // Poisson mean for `period` using the given DOH day (1..HistoryDays()).
  double Rate(int64_t period, int doh_day) const;

  // Samples a DOH day per the config (geometric back-off or last day).
  int SampleDohDay(Rng& rng, DohMode mode) const;

  // Convenience: samples a count for `period` with a freshly sampled DOH day.
  int64_t SampleCount(int64_t period, int doh_day, Rng& rng) const;

 private:
  PoissonRegression regression_;
  ArrivalModelConfig config_;
  int history_days_ = 0;

  std::vector<double> FeaturesFor(int64_t period, int doh_day) const;
};

}  // namespace cloudgen

#endif  // SRC_CORE_ARRIVAL_MODEL_H_
