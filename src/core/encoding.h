// Input encodings for the flavor LSTM (§2.2.2) and lifetime LSTM (§2.3.3).
//
// Flavor-model step input:
//   [ one-hot(previous token, K+1) | temporal(period, DOH) ]
// where token K is the end-of-batch (EOB) marker; the first step of a period
// sequence encodes EOB as its "previous token".
//
// Lifetime-model step input (one step per job):
//   [ temporal | one-hot(flavor, K) | log-batch-size | survived-bin
//     survival-encoding (J) | terminated-at indicators (J) ]
// The previous job's lifetime is survival-encoded over the J bins; a second
// J-wide block marks the bins at/after which the previous job is *known* to
// have terminated and is all-zero when the previous job is censored (§2.3.3).
#ifndef SRC_CORE_ENCODING_H_
#define SRC_CORE_ENCODING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/glm/features.h"
#include "src/survival/binning.h"

namespace cloudgen {

// Token vocabulary for the flavor model: flavors 0..K-1 plus EOB == K.
class FlavorVocab {
 public:
  explicit FlavorVocab(size_t num_flavors) : num_flavors_(num_flavors) {}

  size_t NumFlavors() const { return num_flavors_; }
  size_t EobToken() const { return num_flavors_; }
  size_t NumTokens() const { return num_flavors_ + 1; }

 private:
  size_t num_flavors_;
};

class FlavorInputEncoder {
 public:
  FlavorInputEncoder(FlavorVocab vocab, TemporalFeatureEncoder temporal);

  size_t Dim() const { return vocab_.NumTokens() + temporal_.Dim(); }
  const FlavorVocab& Vocab() const { return vocab_; }
  const TemporalFeatureEncoder& Temporal() const { return temporal_; }

  // Writes the step input for (previous token, period, DOH day) into `out`
  // (Dim() floats).
  void EncodeInto(size_t prev_token, int64_t period, int doh_day, float* out) const;

 private:
  FlavorVocab vocab_;
  TemporalFeatureEncoder temporal_;
};

// The previous job's observed outcome, as seen by the lifetime model.
struct PrevLifetime {
  bool valid = false;    // False at the start of a sequence (no previous job).
  size_t bin = 0;        // Event bin, or censoring bin when censored.
  bool censored = false;
};

class LifetimeInputEncoder {
 public:
  LifetimeInputEncoder(size_t num_flavors, size_t num_bins, TemporalFeatureEncoder temporal);

  size_t Dim() const { return temporal_.Dim() + num_flavors_ + 1 + 2 * num_bins_; }
  size_t NumBins() const { return num_bins_; }

  void EncodeInto(int64_t period, int doh_day, int32_t flavor, size_t batch_size,
                  const PrevLifetime& prev, float* out) const;

 private:
  size_t num_flavors_;
  size_t num_bins_;
  TemporalFeatureEncoder temporal_;
};

}  // namespace cloudgen

#endif  // SRC_CORE_ENCODING_H_
