#include "src/core/resource_model.h"

#include <algorithm>
#include <cmath>

#include "src/nn/losses.h"
#include "src/util/check.h"
#include "src/util/log.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cloudgen {
namespace {

// Softmax sampling / scoring over a logits row.
size_t SampleRow(const Matrix& logits, size_t row, Rng& rng) {
  const float* data = logits.Row(row);
  const size_t n = logits.Cols();
  float max_v = data[0];
  for (size_t c = 1; c < n; ++c) {
    max_v = std::max(max_v, data[c]);
  }
  std::vector<double> probs(n);
  for (size_t c = 0; c < n; ++c) {
    probs[c] = std::exp(static_cast<double>(data[c] - max_v));
  }
  return rng.Categorical(probs);
}

double RowLogProb(const Matrix& logits, size_t row, size_t target) {
  const float* data = logits.Row(row);
  const size_t n = logits.Cols();
  float max_v = data[0];
  for (size_t c = 1; c < n; ++c) {
    max_v = std::max(max_v, data[c]);
  }
  double sum = 0.0;
  for (size_t c = 0; c < n; ++c) {
    sum += std::exp(static_cast<double>(data[c] - max_v));
  }
  return static_cast<double>(data[target] - max_v) - std::log(sum);
}

}  // namespace

ResourceQuantizer::ResourceQuantizer(std::vector<double> levels) : levels_(std::move(levels)) {
  CG_CHECK(!levels_.empty());
  std::sort(levels_.begin(), levels_.end());
  for (size_t i = 1; i < levels_.size(); ++i) {
    CG_CHECK_MSG(levels_[i] > levels_[i - 1], "duplicate quantizer levels");
  }
}

size_t ResourceQuantizer::ClassOf(double value) const {
  const auto it = std::lower_bound(levels_.begin(), levels_.end(), value);
  if (it == levels_.begin()) {
    return 0;
  }
  if (it == levels_.end()) {
    return levels_.size() - 1;
  }
  const auto hi = static_cast<size_t>(it - levels_.begin());
  const size_t lo = hi - 1;
  return (value - levels_[lo]) <= (levels_[hi] - value) ? lo : hi;
}

size_t MultiResourceLstmModel::InputDim() const {
  return (cpu_->NumClasses() + 1) + mem_->NumClasses() + temporal_->Dim();
}

void MultiResourceLstmModel::EncodeInput(bool prev_is_eob, const ResourceRequest& prev,
                                         int64_t period, int doh_day, float* out) const {
  const size_t cpu_block = cpu_->NumClasses() + 1;
  std::fill(out, out + InputDim(), 0.0f);
  if (prev_is_eob) {
    out[cpu_block - 1] = 1.0f;  // EOB marker; memory block stays zero.
  } else {
    out[prev.cpu_class] = 1.0f;
    out[cpu_block + prev.mem_class] = 1.0f;
  }
  temporal_->EncodeInto(period, doh_day, out + cpu_block + mem_->NumClasses());
}

void MultiResourceLstmModel::EncodeMemInput(const Matrix& hidden, size_t row,
                                            size_t cpu_class, Matrix* out) const {
  const size_t h = hidden.Cols();
  CG_CHECK(out->Cols() == h + cpu_->NumClasses());
  float* dst = out->Row(row);
  const float* src = hidden.Row(row);
  std::copy(src, src + h, dst);
  std::fill(dst + h, dst + h + cpu_->NumClasses(), 0.0f);
  dst[h + cpu_class] = 1.0f;
}

std::vector<MultiResourceLstmModel::Step> MultiResourceLstmModel::BuildStream(
    const Trace& trace) const {
  std::vector<Step> stream;
  const std::vector<PeriodBatches> periods = BuildBatches(trace);
  const int64_t start_day = trace.WindowStart() / kPeriodsPerDay;
  for (const PeriodBatches& period : periods) {
    const PeriodCalendar cal = DecomposePeriod(period.period);
    const int doh =
        std::clamp(static_cast<int>(cal.day_index - start_day) + 1, 1, history_days_);
    for (const Batch& batch : period.batches) {
      for (size_t idx : batch.job_indices) {
        const Flavor& flavor =
            trace.Flavors()[static_cast<size_t>(trace.Jobs()[idx].flavor)];
        Step step;
        step.period = period.period;
        step.doh_day = doh;
        step.is_eob = false;
        step.request.cpu_class = cpu_->ClassOf(flavor.cpus);
        step.request.mem_class = mem_->ClassOf(flavor.memory_gb);
        stream.push_back(step);
      }
      Step eob;
      eob.period = period.period;
      eob.doh_day = doh;
      eob.is_eob = true;
      stream.push_back(eob);
    }
  }
  return stream;
}

void MultiResourceLstmModel::Train(const Trace& train, const ResourceQuantizer& cpu,
                                   const ResourceQuantizer& mem, int history_days,
                                   const ResourceModelConfig& config, Rng& rng) {
  cpu_ = std::make_unique<ResourceQuantizer>(cpu);
  mem_ = std::make_unique<ResourceQuantizer>(mem);
  temporal_ = std::make_unique<TemporalFeatureEncoder>(history_days);
  config_ = config;
  history_days_ = history_days;

  lstm_ = StackedLstm(InputDim(), config.hidden_dim, config.num_layers, rng);
  cpu_head_ = Linear(config.hidden_dim, cpu_->NumClasses() + 1, rng);
  mem_head_ = Linear(config.hidden_dim + cpu_->NumClasses(), mem_->NumClasses(), rng);

  const std::vector<Step> stream = BuildStream(train);
  CG_CHECK_MSG(!stream.empty(), "empty resource training stream");

  std::vector<Matrix*> params = lstm_.Params();
  std::vector<Matrix*> grads = lstm_.Grads();
  for (Matrix* p : cpu_head_.Params()) {
    params.push_back(p);
  }
  for (Matrix* g : cpu_head_.Grads()) {
    grads.push_back(g);
  }
  for (Matrix* p : mem_head_.Params()) {
    params.push_back(p);
  }
  for (Matrix* g : mem_head_.Grads()) {
    grads.push_back(g);
  }
  AdamConfig adam_config;
  adam_config.learning_rate = config.learning_rate;
  adam_config.weight_decay = config.weight_decay;
  adam_config.clip_norm = config.clip_norm;
  Adam optimizer(params, grads, adam_config);

  // Layout: complete (seq_len x batch) minibatches, sequences contiguous.
  size_t seq_len = config.seq_len;
  while (seq_len > 1 && stream.size() / seq_len == 0) {
    seq_len /= 2;
  }
  const size_t num_seqs = stream.size() / seq_len;
  const size_t batch = std::min(config.batch_size, num_seqs);
  const size_t minibatches = num_seqs / batch;
  CG_CHECK(minibatches > 0);

  const size_t eob_cpu_class = cpu_->NumClasses();
  std::vector<Matrix> inputs(seq_len);
  std::vector<Matrix> hidden;
  std::vector<Matrix> dhidden(seq_len);
  Matrix cpu_logits;
  Matrix mem_logits;
  Matrix mem_input(batch, config.hidden_dim + cpu_->NumClasses());
  Matrix dcpu;
  Matrix dmem;
  Matrix dmem_input;

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (size_t mb = 0; mb < minibatches; ++mb) {
      // Assemble inputs and targets.
      std::vector<std::vector<int32_t>> cpu_targets(seq_len,
                                                    std::vector<int32_t>(batch));
      std::vector<std::vector<int32_t>> mem_targets(seq_len,
                                                    std::vector<int32_t>(batch));
      for (size_t t = 0; t < seq_len; ++t) {
        inputs[t].Resize(batch, InputDim());
        for (size_t b = 0; b < batch; ++b) {
          const size_t idx = (mb * batch + b) * seq_len + t;
          const bool first = idx == 0;
          const Step& step = stream[idx];
          const Step* prev = first ? nullptr : &stream[idx - 1];
          EncodeInput(first || prev->is_eob, first ? ResourceRequest{} : prev->request,
                      step.period, step.doh_day, inputs[t].Row(b));
          cpu_targets[t][b] = step.is_eob ? static_cast<int32_t>(eob_cpu_class)
                                          : static_cast<int32_t>(step.request.cpu_class);
          mem_targets[t][b] = step.is_eob ? kIgnoreTarget
                                          : static_cast<int32_t>(step.request.mem_class);
        }
      }

      lstm_.ZeroGrads();
      cpu_head_.ZeroGrads();
      mem_head_.ZeroGrads();
      lstm_.ForwardSequence(inputs, &hidden);

      double loss = 0.0;
      for (size_t t = 0; t < seq_len; ++t) {
        // CPU head.
        cpu_head_.Forward(hidden[t], &cpu_logits);
        loss += SoftmaxCrossEntropy(cpu_logits, cpu_targets[t], &dcpu);
        dcpu.Scale(1.0f / static_cast<float>(seq_len));
        cpu_head_.Backward(dcpu, &dhidden[t]);

        // Memory head, teacher-forced on the true CPU class.
        mem_input.Resize(batch, config.hidden_dim + cpu_->NumClasses());
        for (size_t b = 0; b < batch; ++b) {
          const size_t cls = cpu_targets[t][b] == static_cast<int32_t>(eob_cpu_class)
                                 ? 0
                                 : static_cast<size_t>(cpu_targets[t][b]);
          EncodeMemInput(hidden[t], b, cls, &mem_input);
        }
        mem_head_.Forward(mem_input, &mem_logits);
        loss += SoftmaxCrossEntropy(mem_logits, mem_targets[t], &dmem);
        dmem.Scale(1.0f / static_cast<float>(seq_len));
        mem_head_.Backward(dmem, &dmem_input);
        // The hidden-state slice of the memory-head input gradient flows back
        // into the LSTM alongside the CPU head's gradient.
        for (size_t b = 0; b < batch; ++b) {
          const float* src = dmem_input.Row(b);
          float* dst = dhidden[t].Row(b);
          for (size_t h = 0; h < config.hidden_dim; ++h) {
            dst[h] += src[h];
          }
        }
      }
      lstm_.BackwardSequence(dhidden);
      optimizer.Step();
      epoch_loss += loss / static_cast<double>(seq_len);
    }
    CG_LOG_DEBUG(StrFormat("resource LSTM epoch %zu/%zu: loss=%.4f", epoch + 1,
                           config.epochs, epoch_loss / static_cast<double>(minibatches)));
  }
  trained_ = true;
}

MultiResourceLstmModel::EvalResult MultiResourceLstmModel::Evaluate(const Trace& test) const {
  CG_CHECK(trained_);
  const std::vector<Step> stream = BuildStream(test);
  EvalResult result;
  if (stream.empty()) {
    return result;
  }
  LstmState state = lstm_.ZeroState(1);
  Matrix input(1, InputDim());
  Matrix hidden;
  Matrix cpu_logits;
  Matrix mem_input(1, lstm_.HiddenDim() + cpu_->NumClasses());
  Matrix mem_logits;
  for (size_t i = 0; i < stream.size(); ++i) {
    const Step& step = stream[i];
    const Step* prev = i == 0 ? nullptr : &stream[i - 1];
    EncodeInput(prev == nullptr || prev->is_eob,
                prev == nullptr ? ResourceRequest{} : prev->request, step.period,
                step.doh_day, input.Row(0));
    lstm_.StepForward(input, &state, &hidden);
    if (step.is_eob) {
      continue;  // Chain-rule NLL over resource steps only.
    }
    cpu_head_.ForwardInference(hidden, &cpu_logits);
    result.cpu_nll -= RowLogProb(cpu_logits, 0, step.request.cpu_class);
    EncodeMemInput(hidden, 0, step.request.cpu_class, &mem_input);
    mem_head_.ForwardInference(mem_input, &mem_logits);
    result.mem_nll -= RowLogProb(mem_logits, 0, step.request.mem_class);
    ++result.steps;
  }
  if (result.steps > 0) {
    result.cpu_nll /= static_cast<double>(result.steps);
    result.mem_nll /= static_cast<double>(result.steps);
    result.joint_nll = result.cpu_nll + result.mem_nll;
  }
  return result;
}

MultiResourceLstmModel::Generator::Generator(const MultiResourceLstmModel& model, int doh_day)
    : model_(model), doh_day_(doh_day), state_(model.lstm_.ZeroState(1)) {
  CG_CHECK(model.trained_);
}

std::vector<std::vector<ResourceRequest>> MultiResourceLstmModel::Generator::GeneratePeriod(
    int64_t period, int64_t n_batches, Rng& rng, size_t max_jobs) {
  std::vector<std::vector<ResourceRequest>> batches;
  if (n_batches <= 0) {
    return batches;
  }
  const size_t eob = model_.cpu_->NumClasses();
  Matrix input(1, model_.InputDim());
  Matrix hidden;
  Matrix cpu_logits;
  Matrix mem_input(1, model_.lstm_.HiddenDim() + model_.cpu_->NumClasses());
  Matrix mem_logits;
  batches.emplace_back();
  size_t total_jobs = 0;
  while (static_cast<int64_t>(batches.size()) <= n_batches) {
    model_.EncodeInput(prev_is_eob_, prev_, period, doh_day_, input.Row(0));
    model_.lstm_.StepForward(input, &state_, &hidden);
    model_.cpu_head_.ForwardInference(hidden, &cpu_logits);
    size_t cpu_class = SampleRow(cpu_logits, 0, rng);
    if (cpu_class == eob && batches.back().empty()) {
      cpu_class = 0;  // Batches are never empty (as in the flavor model).
    }
    if (cpu_class == eob) {
      prev_is_eob_ = true;
      if (static_cast<int64_t>(batches.size()) == n_batches) {
        break;
      }
      batches.emplace_back();
      continue;
    }
    model_.EncodeMemInput(hidden, 0, cpu_class, &mem_input);
    model_.mem_head_.ForwardInference(mem_input, &mem_logits);
    ResourceRequest request;
    request.cpu_class = cpu_class;
    request.mem_class = SampleRow(mem_logits, 0, rng);
    batches.back().push_back(request);
    prev_ = request;
    prev_is_eob_ = false;
    if (++total_jobs >= max_jobs) {
      CG_LOG_WARN("resource generator hit the per-period job cap; truncating period");
      break;
    }
  }
  return batches;
}

}  // namespace cloudgen
