// The single-LSTM alternative (§7, "Alternative Modeling Approaches"): one
// network controls both arrivals and flavors by emitting an end-of-period
// (EOP) token stream — no explicit Poisson arrival stage.
//
// Token vocabulary: K flavors, EOB (= K), EOP (= K+1). Every period
// contributes its batches (each closed by EOB) followed by exactly one EOP —
// including empty periods, which contribute a bare EOP.
//
// The paper reports that this variant "was exquisitely sensitive to the
// timely sampling of [EOP] tokens" and offers no explicit arrival-rate
// parameter for what-if scaling; it is implemented here to reproduce that
// negative result (see bench/ablation_single_lstm).
#ifndef SRC_CORE_SINGLE_LSTM_MODEL_H_
#define SRC_CORE_SINGLE_LSTM_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/encoding.h"
#include "src/core/flavor_model.h"
#include "src/nn/sequence_network.h"
#include "src/trace/trace.h"

namespace cloudgen {

class Rng;

// Reuses the flavor-model hyperparameters.
using SingleLstmConfig = FlavorModelConfig;

class SingleLstmModel {
 public:
  SingleLstmModel() = default;

  void Train(const Trace& train, int history_days, const SingleLstmConfig& config,
             Rng& rng);

  bool IsTrained() const { return encoder_ != nullptr; }
  size_t EopToken() const;

  // Generates all batches for consecutive periods starting at `period`;
  // every call consumes tokens until the EOP for that period is sampled.
  // Periods must be requested in order (state persists).
  class Generator {
   public:
    // `guard` selects the numeric-health policy applied to every step's
    // logits and sampling weights (src/core/gen_guard.h).
    explicit Generator(const SingleLstmModel& model, int doh_day,
                       GuardPolicy guard = GuardPolicy::kAbort);

    // When `cancel` is set, the token loop winds down early once
    // cancellation is requested (the partial period is discarded by the
    // caller, never persisted).
    std::vector<std::vector<int32_t>> GeneratePeriod(int64_t period, Rng& rng,
                                                     size_t max_jobs = 20000,
                                                     const CancelToken* cancel = nullptr);

   private:
    const SingleLstmModel& model_;
    int doh_day_;
    GuardPolicy guard_;
    LstmState state_;
    size_t prev_token_;
    Matrix input_;
    Matrix logits_;
    // Reused scratch: with packed weights ready, steady-state token sampling
    // performs no heap allocation.
    StepWorkspace ws_;
    // Pre-step snapshot for --guard=fallback (same-shape copies: no
    // steady-state allocation). Unused under other policies.
    LstmState fallback_state_;
  };

 private:
  friend class Generator;

  // Vocabulary = flavors + EOB + EOP; encoded via FlavorInputEncoder with a
  // (K+2)-token vocab.
  std::unique_ptr<FlavorInputEncoder> encoder_;
  SequenceNetwork network_;
  size_t num_flavors_ = 0;
};

}  // namespace cloudgen

#endif  // SRC_CORE_SINGLE_LSTM_MODEL_H_
