// Minibatch layout shared by the flavor and lifetime trainers (§4.2).
//
// The training data for each model is one long stream of step records in
// generation order (period → batch → job). The stream is cut into
// fixed-length sequences; `batch_size` sequences are stacked into each
// minibatch (the paper uses 50 sequences of length 5000 on GPUs; the defaults
// here are CPU-sized but configurable). Hidden state is zeroed before each
// forward pass. Leftover steps that do not fill a complete minibatch are
// dropped from training (but evaluation uses a tail-padded layout so every
// step is scored exactly once).
#ifndef SRC_CORE_TRAINER_H_
#define SRC_CORE_TRAINER_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "src/nn/sequence_network.h"
#include "src/tensor/matrix.h"

namespace cloudgen {

class Rng;

struct SequenceBatchingSpec {
  size_t seq_len = 96;
  size_t batch_size = 24;
};

// Maps (minibatch, time, row) to indices of the underlying step stream.
class SequenceBatching {
 public:
  // Layout for training: complete minibatches only.
  SequenceBatching(size_t num_steps, SequenceBatchingSpec spec);

  size_t NumMinibatches() const { return num_minibatches_; }
  size_t SeqLen() const { return seq_len_; }
  size_t BatchSize() const { return batch_size_; }

  // Step index for minibatch `mb`, time `t`, row `b`.
  size_t StepIndex(size_t mb, size_t t, size_t b) const;

  // Shuffled order of minibatch indices for one epoch.
  std::vector<size_t> EpochOrder(Rng& rng) const;

 private:
  size_t seq_len_;
  size_t batch_size_;
  size_t num_minibatches_;
};

// Data-parallel minibatch BPTT.
//
// The minibatch's rows are split into a FIXED number of shards (a function of
// the batch size only, never of the thread count). Each shard runs
// forward/backward on its own replica of the network — weights copied from
// the main network, gradients accumulated into the replica's buffers — and
// the replica gradients are reduced into the main network in ascending shard
// order on the calling thread. Shard work is distributed over the global
// thread pool, but because the shard partition and the reduction order are
// fixed, training is bitwise-identical for any `--threads N`.
class DataParallelBptt {
 public:
  // Loss callback, invoked once per shard (possibly concurrently across
  // shards): given the shard's logits (T matrices covering minibatch rows
  // [row_begin, row_end)), fill `dlogits` and return the shard's loss
  // contribution. Contributions are summed in shard order, so the callback
  // must scale its loss and gradients by the shard's share of the minibatch.
  using ShardLossFn = std::function<double(size_t row_begin, size_t row_end,
                                           const std::vector<Matrix>& logits,
                                           std::vector<Matrix>* dlogits)>;

  // `network` must outlive the executor. `batch_size` fixes the shard
  // partition for every subsequent Run call.
  DataParallelBptt(SequenceNetwork* network, size_t batch_size);

  size_t NumShards() const { return row_splits_.size() - 1; }

  // Zeroes the main network's gradients, runs forward/backward over all
  // shards, reduces gradients, and returns the summed loss. `inputs` is T
  // matrices of shape (batch_size, input_dim).
  double Run(const std::vector<Matrix>& inputs, const ShardLossFn& loss_fn);

 private:
  SequenceNetwork* network_;
  size_t batch_size_;
  std::vector<size_t> row_splits_;        // NumShards() + 1 ascending offsets.
  std::vector<SequenceNetwork> replicas_;  // One per shard beyond the first.
};

}  // namespace cloudgen

#endif  // SRC_CORE_TRAINER_H_
