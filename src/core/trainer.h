// Minibatch layout shared by the flavor and lifetime trainers (§4.2).
//
// The training data for each model is one long stream of step records in
// generation order (period → batch → job). The stream is cut into
// fixed-length sequences; `batch_size` sequences are stacked into each
// minibatch (the paper uses 50 sequences of length 5000 on GPUs; the defaults
// here are CPU-sized but configurable). Hidden state is zeroed before each
// forward pass. Leftover steps that do not fill a complete minibatch are
// dropped from training (but evaluation uses a tail-padded layout so every
// step is scored exactly once).
#ifndef SRC_CORE_TRAINER_H_
#define SRC_CORE_TRAINER_H_

#include <cstddef>
#include <vector>

namespace cloudgen {

class Rng;

struct SequenceBatchingSpec {
  size_t seq_len = 96;
  size_t batch_size = 24;
};

// Maps (minibatch, time, row) to indices of the underlying step stream.
class SequenceBatching {
 public:
  // Layout for training: complete minibatches only.
  SequenceBatching(size_t num_steps, SequenceBatchingSpec spec);

  size_t NumMinibatches() const { return num_minibatches_; }
  size_t SeqLen() const { return seq_len_; }
  size_t BatchSize() const { return batch_size_; }

  // Step index for minibatch `mb`, time `t`, row `b`.
  size_t StepIndex(size_t mb, size_t t, size_t b) const;

  // Shuffled order of minibatch indices for one epoch.
  std::vector<size_t> EpochOrder(Rng& rng) const;

 private:
  size_t seq_len_;
  size_t batch_size_;
  size_t num_minibatches_;
};

}  // namespace cloudgen

#endif  // SRC_CORE_TRAINER_H_
