// The end-to-end three-stage workload generator (Fig. 2, §2.4).
//
// Stage 1 samples the number of user batches for each period from the Poisson
// regression; stage 2 runs the flavor LSTM until that many EOB tokens have
// been emitted; stage 3 runs the lifetime LSTM over the generated jobs and
// samples a lifetime bin per job, converted to a real duration by CDI (or
// stepped) interpolation. Start/end times are emitted as 5-minute periods;
// batches receive fresh synthetic user ids (the paper generates no real ids).
//
// Because the arrival rate is an explicit parameter, what-if scaling (e.g.
// the paper's 10× stress test) is a single multiplier on the sampled rate.
#ifndef SRC_CORE_WORKLOAD_MODEL_H_
#define SRC_CORE_WORKLOAD_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/arrival_model.h"
#include "src/core/flavor_model.h"
#include "src/core/lifetime_model.h"
#include "src/obs/fidelity_monitor.h"
#include "src/survival/interpolation.h"
#include "src/trace/trace.h"
#include "src/util/status.h"

namespace cloudgen {

class TraceSink;

struct WorkloadModelConfig {
  ArrivalModelConfig arrival;
  FlavorModelConfig flavor;
  LifetimeModelConfig lifetime;
};

class WorkloadModel {
 public:
  WorkloadModel() = default;

  // Trains all three stages on `train`. The lifetime binning defaults to the
  // paper's 47-bin scheme. Fails when a stage's training stream is empty or
  // its divergence watchdog gives up.
  Status Train(const Trace& train, const WorkloadModelConfig& config, Rng& rng);
  Status Train(const Trace& train, const WorkloadModelConfig& config,
               const LifetimeBinning& binning, Rng& rng);

  bool IsTrained() const { return flavor_model_.IsTrained(); }

  struct GenerateOptions {
    int64_t from_period = 0;
    int64_t to_period = 0;
    DohMode doh_mode = DohMode::kGeometricSample;
    double arrival_scale = 1.0;  // 10× stress test: set to 10.
    // What-if batch-size modification (footnote 5): < 1 stretches batches,
    // > 1 shortens them, by scaling the EOB token's sampled probability.
    double eob_scale = 1.0;
    Interpolation interpolation = Interpolation::kCdi;
    // Numeric-health policy applied to every LSTM generation step
    // (src/core/gen_guard.h). On healthy outputs all policies produce
    // bitwise-identical traces.
    GuardPolicy guard = GuardPolicy::kAbort;
    // Optional cooperative cancellation (src/util/cancel.h). Generation
    // winds down at the next safe boundary; sink-based runs seal what is
    // buffered and checkpoint so --resume-gen continues bitwise-identically.
    const CancelToken* cancel = nullptr;
    // Max traces stepped in lockstep by the batched multi-stream engine
    // (GenerateMany; see src/core/batch_generator.h): each tick runs the
    // active streams' LSTM steps as one blocked GEMM batch instead of
    // per-trace GEMVs. Output bytes are identical for every window — each
    // stream draws only from its own Rng::Stream and batched GEMM rows are
    // bitwise-equal to batch-1 steps — so this is purely a throughput knob.
    // 0 disables the engine and keeps the legacy trace-parallel
    // single-stream path (the bitwise oracle route). Deliberately NOT part
    // of the resume fingerprint: checkpoints transfer across window
    // settings.
    size_t batch_window = 256;
    // Number of independent batch windows in flight (sharded tick
    // scheduler, src/core/batch_generator.h): the trace population is
    // round-robin partitioned across this many BatchTraceEngines, one per
    // ThreadPool task, so generation scales with cores beyond the
    // GEMM-level parallelism of one window. 0 (the default) auto-sizes to
    // the pool (see EffectiveGenShards); 1 forces the single-window
    // scheduler. Like batch_window this is purely a throughput knob — every
    // trace is a pure function of (base, index), so bytes are identical at
    // any shard count — and it is likewise NOT part of the resume
    // fingerprint: checkpoints transfer across shard settings. Ignored by
    // GenerateStreaming (one trace has nothing to shard) and by the
    // single-stream path (batch_window == 0).
    size_t gen_shards = 0;
  };

  // Shard count GenerateMany actually uses: `options.gen_shards` when set,
  // else one shard per pool thread, both clamped to the population (never
  // more shards than traces, never 0). With a 1-thread pool the auto
  // default is 1 — the sharded scheduler only engages when it can overlap.
  static size_t EffectiveGenShards(const GenerateOptions& options, size_t count);

  // Samples one synthetic trace covering [from_period, to_period). One DOH
  // day is sampled per trace so the whole sample coheres with one recent-past
  // behaviour pattern.
  Trace Generate(const GenerateOptions& options, Rng& rng) const;

  // Ablation hook (Fig. 8's "remove the DOH features"): generate with an
  // externally-fitted stage-1 arrival model (e.g. one fit without DOH) while
  // keeping the trained flavor/lifetime LSTMs.
  Trace GenerateWithArrivalModel(const BatchArrivalModel& arrivals,
                                 const GenerateOptions& options, Rng& rng) const;

  // Repeated sampling for prediction intervals / scheduler tuning. Traces
  // are generated in parallel on the global thread pool, each from its own
  // deterministic seed-derived RNG stream (Rng::Stream), so the result is
  // bitwise-identical for any thread count.
  std::vector<Trace> GenerateMany(const GenerateOptions& options, size_t count,
                                  Rng& rng) const;

  // Sink-based generation: where the output goes and how the run is made
  // crash-consistent and resumable.
  struct GenerateRun {
    TraceSink* sink = nullptr;  // Required.
    // Checkpoint file updated after every sealed segment; empty disables
    // checkpointing (and therefore resume).
    std::string checkpoint_path;
    // Load `checkpoint_path` (when present) and continue from its cursor.
    // The checkpoint's fingerprint must match this run's options/count and
    // `config_fingerprint`, otherwise FAILED_PRECONDITION.
    bool resume = false;
    // Caller context folded into the fingerprint (e.g. the CLI seed), so a
    // resume with a different seed is rejected instead of silently mixing
    // RNG streams.
    uint64_t config_fingerprint = 0;
  };
  struct GenerateReport {
    uint64_t traces = 0;  // Traces flushed to the sink by this run.
    uint64_t jobs = 0;    // Jobs flushed to the sink by this run.
    bool resumed = false;
    // Cancellation stopped the run at a safe boundary; everything flushed is
    // sealed + checkpointed and a resume run completes the output.
    bool interrupted = false;
    // The run stopped because the disk filled (RESOURCE_EXHAUSTED from the
    // sink or checkpoint) — a parked run: everything sealed so far is
    // durable and a resume run completes byte-identically once space
    // returns. Implies `interrupted`.
    bool parked = false;
  };

  // Streams `count` traces into `run.sink` in index order, sealing and
  // checkpointing as segments fill. Trace i is a pure function of the RNG
  // base and i (Rng::Stream), so thread count never changes the bytes and
  // resume regenerates exactly the missing suffix. Returns OK with
  // report->interrupted when cancelled. The vector-returning GenerateMany
  // delegates here through an InMemoryTraceSink.
  Status GenerateMany(const GenerateOptions& options, size_t count, Rng& rng,
                      const GenerateRun& run, GenerateReport* report) const;

  // Streams ONE trace period by period — the month-scale serving shape. The
  // periods of a trace share evolving LSTM/RNG state, so checkpoints carry
  // an exact state blob (both generators, feedback features, Rng::SaveState)
  // captured at a period boundary; resume is bitwise-identical.
  Status GenerateStreaming(const GenerateOptions& options, Rng& rng,
                           const GenerateRun& run, GenerateReport* report) const;

  // Serve support (src/serve): the RNG anchor a sink-based GenerateMany run
  // seeded with Rng(seed) derives on its fresh path (one draw). Trace i of
  // that family is a pure function of (TraceFamilyBase(seed), i) via
  // Rng::Stream, which lets the daemon regenerate any single trace of a
  // requested family on demand — byte-identical to a single-process
  // `generate --seed <seed>` run — without a sink or a manifest.
  static uint64_t TraceFamilyBase(uint64_t seed);

  // Appends trace `index`'s serialized rows (AppendJobRow format, the bytes
  // GenerateMany flushes for that index) to `*out`.
  void GenerateTraceRows(const GenerateOptions& options, uint64_t base,
                         size_t index, std::string* out) const;

  // Appends the concatenated rows of traces [first, first + count), in index
  // order — the bytes GenerateMany would flush for that index range. The
  // range shares one batched (and, when profitable, sharded) engine run, so
  // the serve fetch path amortizes window fill across traces instead of
  // paying a cold engine per trace.
  void GenerateTraceRowsRange(const GenerateOptions& options, uint64_t base,
                              size_t first, size_t count, std::string* out) const;

  // Online fidelity telemetry (src/obs/fidelity_monitor.h): reference
  // distributions the monitor compares the generated stream against, derived
  // from the fitted stages without sampling —
  //   arrival:  mean IRLS Poisson rate over [from_period, to_period) at DOH
  //             day 1 (the modal day under the geometric DOH prior), times
  //             arrival_scale;
  //   flavors:  the flavor head's teacher-forced next-token distribution
  //             from the start-of-batch (EOB) context, EOB stripped and
  //             renormalized;
  //   lifetime: teacher-forced hazards for a probe job folded into a bin
  //             PMF/CDF (p_j = h_j * prod_{k<j}(1 - h_k), tail mass on the
  //             open bin).
  // All three sources are deterministic and RNG-free, so computing the
  // reference never perturbs generation.
  obs::FidelityReference ComputeFidelityReference(const GenerateOptions& options) const;
  // Convenience: installs ComputeFidelityReference's output into the global
  // monitor and enables it (CLI --fidelity, serve).
  void EnableFidelityMonitor(const GenerateOptions& options) const;

  // Stage accessors for stage-wise evaluation (§5).
  const BatchArrivalModel& ArrivalModel() const { return arrival_model_; }
  const FlavorLstmModel& FlavorModel() const { return flavor_model_; }
  const LifetimeLstmModel& LifetimeModel() const { return lifetime_model_; }
  const FlavorCatalog& Flavors() const { return flavors_; }
  int HistoryDays() const { return arrival_model_.HistoryDays(); }

  // Drops both LSTMs' packed inference weights so generation exercises the
  // reference step path; equivalence tests compare the two routes on the same
  // seed and expect byte-identical traces.
  void InvalidatePackedForTest() {
    flavor_model_.InvalidatePackedForTest();
    lifetime_model_.InvalidatePackedForTest();
  }
  void PrepackForTest() {
    flavor_model_.PrepackForTest();
    lifetime_model_.PrepackForTest();
  }

  // Model persistence (the flavor and lifetime networks; the arrival model is
  // cheap and is always refit). Each network file is written atomically and
  // carries a CRC-validated header, so a torn or corrupted file is detected
  // at load time rather than aborting mid-parse.
  Status SaveToFiles(const std::string& prefix) const;
  Status LoadNetworksFromFiles(const std::string& prefix, const Trace& train,
                               const WorkloadModelConfig& config);

 private:
  // Checkpointable per-trace generation state: both stage generators plus
  // the synthetic-user counter. Defined in the .cc.
  class PeriodEngine;

  BatchArrivalModel arrival_model_;
  FlavorLstmModel flavor_model_;
  LifetimeLstmModel lifetime_model_;
  FlavorCatalog flavors_;
};

}  // namespace cloudgen

#endif  // SRC_CORE_WORKLOAD_MODEL_H_
