#include "src/core/arrival_model.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/obs/trace_span.h"
#include "src/util/check.h"
#include "src/util/log.h"
#include "src/util/rng.h"

namespace cloudgen {
namespace {

// Intercept + HOD(24) + DOW(7) [+ DOH(N)].
std::vector<double> BuildFeatures(int64_t period, int doh_day, int history_days,
                                  bool use_doh) {
  const PeriodCalendar cal = DecomposePeriod(period);
  std::vector<double> x(1 + 24 + 7 + (use_doh ? history_days : 0), 0.0);
  x[0] = 1.0;
  x[1 + cal.hour_of_day] = 1.0;
  x[1 + 24 + cal.day_of_week] = 1.0;
  if (use_doh) {
    CG_CHECK(doh_day >= 1 && doh_day <= history_days);
    for (int d = 0; d < doh_day; ++d) {
      x[1 + 24 + 7 + d] = 1.0;
    }
  }
  return x;
}

}  // namespace

void BatchArrivalModel::Fit(const Trace& train, ArrivalGranularity granularity,
                            const ArrivalModelConfig& config) {
  CG_SPAN("fit_arrival_model");
  config_ = config;
  history_days_ = std::max<int>(
      1, static_cast<int>((train.WindowPeriods() + kPeriodsPerDay - 1) / kPeriodsPerDay));

  const std::vector<double> counts = granularity == ArrivalGranularity::kBatches
                                         ? BatchCountsPerPeriod(train)
                                         : JobCountsPerPeriod(train);
  CG_CHECK(!counts.empty());

  std::vector<std::vector<double>> features;
  features.reserve(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    const int64_t period = train.WindowStart() + static_cast<int64_t>(i);
    const PeriodCalendar cal = DecomposePeriod(period);
    const int doh_day =
        std::clamp(static_cast<int>(cal.day_index) + 1 -
                       static_cast<int>(train.WindowStart() / kPeriodsPerDay),
                   1, history_days_);
    features.push_back(BuildFeatures(period, doh_day, history_days_, config.use_doh));
  }

  PoissonRegressionConfig reg_config;
  reg_config.penalty.lambda = config.lambda;
  reg_config.penalty.l1_ratio = config.l1_ratio;
  const double mean_deviance = regression_.Fit(features, counts, reg_config);
  obs::Registry::Global().GetGauge("arrival.fit_deviance").Set(mean_deviance);
  CG_LOGF_INFO("arrival IRLS fit: %zu periods, mean deviance %.4f", counts.size(),
               mean_deviance);
}

double BatchArrivalModel::Rate(int64_t period, int doh_day) const {
  CG_CHECK(IsFitted());
  return regression_.PredictMean(FeaturesFor(period, doh_day));
}

int BatchArrivalModel::SampleDohDay(Rng& rng, DohMode mode) const {
  const DohSampler sampler(history_days_, config_.doh_geometric_p, mode);
  return sampler.Sample(rng);
}

int64_t BatchArrivalModel::SampleCount(int64_t period, int doh_day, Rng& rng) const {
  return rng.Poisson(Rate(period, doh_day));
}

std::vector<double> BatchArrivalModel::FeaturesFor(int64_t period, int doh_day) const {
  return BuildFeatures(period, doh_day, history_days_, config_.use_doh);
}

}  // namespace cloudgen
