// Batched multi-stream generation engine.
//
// The single-stream generator spends almost all of its time in batch-1 GEMVs:
// one trace advances one token at a time, so every LSTM layer multiplies a
// (1, H) row against (·, 4H) weights. This engine steps many independent
// traces in lockstep instead: each tick it gathers the active streams' step
// inputs and per-layer h/c rows into one matrix, runs a single blocked GEMM
// per LSTM layer (SequenceNetwork::StepBatch), and scatters the results back.
// Because every GEMM/GEMV kernel computes each output element as one fixed
// p-ascending reduction, row r of a batched step is bitwise-identical to a
// batch-1 step of that stream alone — and each stream samples only from its
// own Rng::Stream — so generated traces are byte-identical for ANY window
// size and thread count (the single-stream path is the oracle).
//
// Two layers:
//  * TraceStreamMachine — one trace as a resumable state machine. Advance()
//    runs everything that is not an LSTM step (arrival Poisson draws,
//    duration sampling, job emission, period/phase transitions) until the
//    machine either needs a flavor-token or lifetime-job LSTM step, or the
//    trace is complete. The needed step can be run whole (single-stream
//    route) or split into gather/scatter halves for batching.
//  * BatchTraceEngine — the tick loop: partitions active machines by which
//    network they need (flavor vs lifetime), steps each group as one batch,
//    retires finished traces, and refills the window from the remaining
//    indices. Ragged batches are handled by compaction: done machines leave
//    the active set, so the batch shrinks to exactly the live streams.
#ifndef SRC_CORE_BATCH_GENERATOR_H_
#define SRC_CORE_BATCH_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/workload_model.h"
#include "src/util/rng.h"

namespace cloudgen {

// One trace being generated, decomposed so the LSTM steps can be executed
// externally. Draw-for-draw identical to WorkloadModel::Generate on the same
// Rng::Stream(base, index).
class TraceStreamMachine {
 public:
  enum class Need { kFlavorStep, kLifetimeStep, kDone };

  TraceStreamMachine(const WorkloadModel& model,
                     const WorkloadModel::GenerateOptions& options, uint64_t base,
                     size_t index);

  Need need() const { return need_; }
  size_t index() const { return index_; }

  // Runs all non-NN work until the next LSTM step is needed (or the trace is
  // done). Must be called once after construction, and is re-entered
  // automatically by FinishNeededStep/RunNeededStepSingle.
  void Advance();

  // Split execution of the needed step: BeginNeededStep encodes the step
  // input into `x_row` (a gathered batch row); after the external batched
  // LSTM step scatters h/c (and logits, when StepWantsLogits()) back through
  // StepState()/StepLogits(), FinishNeededStep samples, applies the result,
  // and advances to the next needed step.
  void BeginNeededStep(float* x_row);
  void FinishNeededStep();
  // Runs the needed step entirely on the single-stream fast path — used when
  // a tick group has exactly one machine, where a 1-row batch would be the
  // same math with extra gather/scatter.
  void RunNeededStepSingle();

  // Gather/scatter access for the needed step's generator.
  LstmState* StepState();
  Matrix* StepLogits();
  // False when the needed step's head samples from the hidden state directly
  // (class-factored flavor head) and no logits row exists to scatter.
  bool StepWantsLogits() const;

  Trace&& TakeTrace() { return std::move(trace_); }

 private:
  void EmitJob(size_t bin);

  const WorkloadModel::GenerateOptions& options_;
  const BatchArrivalModel& arrivals_;
  const LifetimeBinning& binning_;
  size_t index_;
  Rng rng_;
  Trace trace_;
  int doh_day_;
  FlavorLstmModel::Generator flavor_gen_;
  LifetimeLstmModel::Generator lifetime_gen_;
  bool factored_flavor_;

  enum class Phase { kPeriodStart, kFlavor, kLifetime };
  Phase phase_ = Phase::kPeriodStart;
  Need need_ = Need::kDone;
  int64_t period_;
  std::vector<std::vector<int32_t>> batches_;
  size_t batch_idx_ = 0;
  size_t job_idx_ = 0;
  int64_t user_ = 0;
  int64_t next_user_ = 0;
};

class BatchTraceEngine {
 public:
  BatchTraceEngine(const WorkloadModel& model,
                   const WorkloadModel::GenerateOptions& options, uint64_t base);

  // Generates traces [first, first + count) with at most `window` streams in
  // flight. Completed traces are handed to `emit` in completion order (NOT
  // index order — the caller reorders); `emit` returning false stops the
  // engine early and abandons the remaining partial traces.
  void Run(size_t first, size_t count, size_t window,
           const std::function<bool(size_t, Trace&&)>& emit);

  // Strided variant: generates the indices {first, first + stride, ...} that
  // fall in [first, end). This is the shard view used by the sharded
  // scheduler — shard s of S owns every S-th index starting at first + s, so
  // the union over shards is exactly [first, end) and each shard's reorder
  // backlog stays small. Run(f, c, w, emit) == RunStrided(f, 1, f + c, w, emit).
  void RunStrided(size_t first, size_t stride, size_t end, size_t window,
                  const std::function<bool(size_t, Trace&&)>& emit);

  // Work tallies for this engine instance, cumulative across Run calls. A
  // tick is one lockstep iteration (<= 2 batched network steps); rows is the
  // total machine-steps executed, so rows / (ticks * window) is the mean
  // window occupancy.
  uint64_t TicksRun() const { return ticks_; }
  uint64_t RowsStepped() const { return rows_; }

 private:
  void StepGroup(const SequenceNetwork& net,
                 const std::vector<TraceStreamMachine*>& group,
                 BatchStepWorkspace* ws);

  const WorkloadModel& model_;
  const WorkloadModel::GenerateOptions& options_;
  uint64_t base_;
  // One workspace per network; capacity persists across ticks, so the steady
  // state performs no per-token heap allocation (see BatchStepWorkspace).
  BatchStepWorkspace flavor_ws_;
  BatchStepWorkspace lifetime_ws_;
  uint64_t ticks_ = 0;
  uint64_t rows_ = 0;
};

// Sharded tick scheduler: partitions [first, first + count) round-robin over
// `shards` independent BatchTraceEngines (shard s owns indices first + s,
// first + s + shards, ...) and runs one engine per ThreadPool task, so up to
// `shards` batch windows are in flight at once. Each shard owns its own
// machines, workspaces, and per-stream Rng::Streams, and runs its inner
// per-layer GEMM fan-out under ScopedInnerParallelism(pool / shards) so
// shards never oversubscribe the pool. Completed traces from all shards are
// funneled through `emit` under one mutex, still in per-shard completion
// order but interleaved across shards — the caller's reorder buffer restores
// index order, and because every trace is a pure function of (base, index)
// the merged output is byte-identical to a single engine at any shard count.
// `emit` returning false stops every shard early. Records the
// `gen.shard.{ticks,rows}` counters and `gen.shard.occupancy` gauge.
// `shards <= 1` degenerates to one un-sharded engine on the calling thread.
void RunShardedBatchEngines(const WorkloadModel& model,
                            const WorkloadModel::GenerateOptions& options,
                            uint64_t base, size_t first, size_t count,
                            size_t window, size_t shards,
                            const std::function<bool(size_t, Trace&&)>& emit);

}  // namespace cloudgen

#endif  // SRC_CORE_BATCH_GENERATOR_H_
