// Stage 2: flavor-sequence LSTM (§2.2).
//
// Models the per-period sequence of requested flavors as a token stream over
// K flavors plus an end-of-batch (EOB) token. At each step the network
// receives a one-hot of the previous token plus the period's temporal
// features, and emits softmax logits over the K+1 tokens. Training minimizes
// next-token NLL with Adam; generation samples tokens until the requested
// number of batches (EOB tokens) have been produced.
#ifndef SRC_CORE_FLAVOR_MODEL_H_
#define SRC_CORE_FLAVOR_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/core/encoding.h"
#include "src/core/gen_guard.h"
#include "src/nn/adam.h"
#include "src/nn/sequence_network.h"
#include "src/trace/trace.h"
#include "src/util/status.h"

namespace cloudgen {

class CancelToken;
class Rng;

struct FlavorModelConfig {
  size_t hidden_dim = 64;
  size_t num_layers = 2;
  size_t seq_len = 96;
  size_t batch_size = 24;
  size_t epochs = 3;
  float learning_rate = 3e-3f;
  float weight_decay = 1e-6f;
  float clip_norm = 5.0f;
  // Multiplicative learning-rate decay applied after every epoch.
  float lr_decay = 1.0f;
  // > 0 trains a class-factored two-level softmax head with this many
  // balanced clusters instead of the dense head (src/nn/factored_softmax.h).
  // Generation then samples cluster-then-member in O(sqrt(K)) per token.
  // Draw counts differ from the dense head (two Categorical draws per
  // token), so factored models are a different sampling distribution, not a
  // bitwise variant of the dense oracle. 0 keeps the dense head.
  size_t factored_clusters = 0;
  // Checkpointing, resume, and divergence-watchdog behaviour.
  TrainRecoveryConfig recovery;
};

// A token-stream view of a trace (shared with evaluation).
struct FlavorStream {
  // Token at each step (flavor id or EOB).
  std::vector<int32_t> tokens;
  // Period of each step (for temporal features).
  std::vector<int64_t> periods;
  // In-window DOH day of each step.
  std::vector<int32_t> doh_days;
};

// Safety cap on jobs sampled per period: bounds runaway token sequences.
// Shared by the single-stream and batched generation drivers so the two
// routes truncate at exactly the same point.
inline constexpr size_t kGenMaxJobsPerPeriod = 20000;

class FlavorLstmModel {
 public:
  FlavorLstmModel() = default;

  // Trains on `train` (from scratch, or resuming from a checkpoint when
  // `config.recovery` says so). `history_days` defines the DOH block width
  // (shared with the arrival model). Deterministic given `rng`. Fails with
  // ABORTED when the divergence watchdog exhausts its rollback budget and
  // with INVALID_ARGUMENT on an empty training stream.
  Status Train(const Trace& train, int history_days, const FlavorModelConfig& config,
               Rng& rng);

  bool IsTrained() const { return encoder_ != nullptr; }
  const FlavorVocab& Vocab() const;
  size_t NumParameters() const { return network_.NumParameters(); }
  // Network access for the batched engine (src/core/batch_generator.h) and
  // head-introspection in tests.
  const SequenceNetwork& Network() const { return network_; }

  // Teacher-forced evaluation on a trace (future periods encode DOH = N).
  struct EvalResult {
    // Over all tokens (flavors + EOB): the full sequence likelihood view.
    double nll = 0.0;
    double one_best_err = 0.0;
    size_t steps = 0;
    // Over flavor targets only (EOB steps are context), the Table-2 view that
    // is directly comparable to the baselines.
    double nll_flavor_only = 0.0;
    double one_best_err_flavor_only = 0.0;
    size_t flavor_steps = 0;
  };
  EvalResult Evaluate(const Trace& test) const;

  // Next-token distribution given a context; exposed for tests.
  std::vector<double> NextTokenProbs(const FlavorStream& stream, size_t upto_step) const;

  // Drops the packed inference weights so generation exercises the reference
  // step path; used by equivalence tests to compare the two routes.
  // PrepackForTest restores the normal (packed) state afterwards.
  void InvalidatePackedForTest() { network_.InvalidatePacked(); }
  void PrepackForTest() { network_.Prepack(); }

  // Stateful generator: call GeneratePeriod for consecutive periods of one
  // sampled trace (hidden state persists across periods, so cross-period
  // momentum carries through).
  class Generator {
   public:
    // `eob_scale` post-processes the EOB token's probability at every step
    // (footnote 5 of the paper): values < 1 stretch batches, values > 1
    // shorten them — a what-if knob for simulating larger or smaller batches
    // without retraining. 1.0 leaves the learned distribution untouched.
    // `guard` selects the numeric-health policy applied to every step's
    // logits and sampling weights (src/core/gen_guard.h); on healthy
    // outputs all policies are bitwise-identical.
    Generator(const FlavorLstmModel& model, int doh_day, double eob_scale = 1.0,
              GuardPolicy guard = GuardPolicy::kAbort);

    // Generates all jobs for `period` as `n_batches` batches of flavors.
    // A safety cap bounds runaway sequences. When `cancel` is set, the token
    // loop winds down early once cancellation is requested (the partial
    // period is discarded by the caller, never persisted).
    std::vector<std::vector<int32_t>> GeneratePeriod(
        int64_t period, int64_t n_batches, Rng& rng,
        size_t max_jobs = kGenMaxJobsPerPeriod, const CancelToken* cancel = nullptr);

    // Decomposed token machine — the same per-token cycle GeneratePeriod
    // runs, split open so the batched engine (src/core/batch_generator.h)
    // can execute the LSTM step of many generators as one gathered batch.
    // Protocol: StartPeriod, then while PeriodActive() either call
    // StepToken (single-stream: encode + LSTM step + sample in one call;
    // exactly one GeneratePeriod iteration) or the split halves —
    // BeginStep(x_row) to encode this step's input into a gathered batch
    // row, an external LSTM step that scatters h/c (and, for dense heads,
    // the logits row) back into MutableState()/MutableLogits(), then
    // ConsumeStep to sample and advance. Token draws come only from `rng`,
    // so a stream's output depends only on its own Rng regardless of how
    // steps are batched. TakeBatches() yields the finished period.
    void StartPeriod(int64_t period, int64_t n_batches,
                     size_t max_jobs = kGenMaxJobsPerPeriod);
    bool PeriodActive() const { return period_active_; }
    void StepToken(Rng& rng);
    void BeginStep(float* x_row);
    void ConsumeStep(Rng& rng);
    std::vector<std::vector<int32_t>> TakeBatches() {
      period_active_ = false;
      return std::move(batches_);
    }

    // Gather/scatter access for the batched driver. MutableLogits() is only
    // written for dense-head models; factored models sample from the
    // scattered hidden state directly.
    LstmState* MutableState() { return &state_; }
    Matrix* MutableLogits() { return &logits_; }

    // Exact generator state (hidden state + previous-token feedback) for
    // streaming-mode generation checkpoints. LoadState requires a Generator
    // constructed against the same model/options.
    void SaveState(std::ostream& out) const;
    void LoadState(std::istream& in);

   private:
    // Shared post-sample tail: batch/EOB bookkeeping, job cap, feedback.
    void AdvanceToken(size_t token, size_t eob);
    // Two-level sample for factored heads (cluster draw + member draw, with
    // the EOB scale folded in exactly); includes the guard handling and the
    // empty-batch EOB reinterpretation.
    size_t SampleFactoredToken(Rng& rng);

    const FlavorLstmModel& model_;
    int doh_day_;
    double eob_scale_;
    GuardPolicy guard_;
    LstmState state_;
    size_t prev_token_;
    Matrix input_;
    Matrix logits_;
    // Reused scratch: with packed weights ready, steady-state token sampling
    // performs no heap allocation.
    StepWorkspace ws_;
    // Pre-step snapshot for --guard=fallback (same-shape copies: no
    // steady-state allocation). Unused under other policies.
    LstmState fallback_state_;
    // Open-period machine state (StartPeriod .. TakeBatches).
    std::vector<std::vector<int32_t>> batches_;
    int64_t period_ = 0;
    int64_t n_batches_ = 0;
    size_t max_jobs_ = kGenMaxJobsPerPeriod;
    size_t total_jobs_ = 0;
    bool period_active_ = false;
  };

  // Atomic (temp + rename) model persistence.
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path, int history_days, size_t num_flavors);

 private:
  friend class Generator;

  FlavorModelConfig config_;
  std::unique_ptr<FlavorInputEncoder> encoder_;
  SequenceNetwork network_;

  // Builds the token stream (period → batch → job, EOB after each batch).
  FlavorStream BuildStream(const Trace& trace) const;
};

// Stream construction is exposed for baselines and tests: every baseline in
// Table 2 is evaluated on exactly this stream.
FlavorStream BuildFlavorStream(const Trace& trace, int history_days);

// Index of the largest weight among indices != `exclude` (ties keep the
// lowest index). Used by the generator's empty-batch fallback: when an EOB is
// sampled for an empty batch, the most likely *flavor* is emitted instead,
// regardless of where the EOB token sits in the vocabulary. Exposed for tests.
size_t ArgmaxExcluding(const std::vector<double>& weights, size_t exclude);

}  // namespace cloudgen

#endif  // SRC_CORE_FLAVOR_MODEL_H_
