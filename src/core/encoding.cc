#include "src/core/encoding.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace cloudgen {

FlavorInputEncoder::FlavorInputEncoder(FlavorVocab vocab, TemporalFeatureEncoder temporal)
    : vocab_(vocab), temporal_(temporal) {}

void FlavorInputEncoder::EncodeInto(size_t prev_token, int64_t period, int doh_day,
                                    float* out) const {
  CG_CHECK(out != nullptr);
  CG_CHECK(prev_token < vocab_.NumTokens());
  std::fill(out, out + Dim(), 0.0f);
  out[prev_token] = 1.0f;
  temporal_.EncodeInto(period, doh_day, out + vocab_.NumTokens());
}

LifetimeInputEncoder::LifetimeInputEncoder(size_t num_flavors, size_t num_bins,
                                           TemporalFeatureEncoder temporal)
    : num_flavors_(num_flavors), num_bins_(num_bins), temporal_(temporal) {
  CG_CHECK(num_flavors >= 1 && num_bins >= 2);
}

void LifetimeInputEncoder::EncodeInto(int64_t period, int doh_day, int32_t flavor,
                                      size_t batch_size, const PrevLifetime& prev,
                                      float* out) const {
  CG_CHECK(out != nullptr);
  CG_CHECK(flavor >= 0 && static_cast<size_t>(flavor) < num_flavors_);
  std::fill(out, out + Dim(), 0.0f);
  float* cursor = out;
  temporal_.EncodeInto(period, doh_day, cursor);
  cursor += temporal_.Dim();
  cursor[flavor] = 1.0f;
  cursor += num_flavors_;
  // Batch size, compressed to roughly [0, 1.5].
  *cursor = static_cast<float>(std::log1p(static_cast<double>(batch_size)) / std::log(32.0));
  cursor += 1;

  float* survived = cursor;
  float* terminated = cursor + num_bins_;
  if (prev.valid) {
    CG_CHECK(prev.bin < num_bins_);
    // Bins the previous job is known to have survived *through*: all bins
    // strictly before its event/censor bin (for censored jobs we only know
    // survival up to the censoring bin).
    const size_t survived_until = prev.bin;
    for (size_t j = 0; j < survived_until; ++j) {
      survived[j] = 1.0f;
    }
    if (!prev.censored) {
      // Known terminated at/after its event bin.
      for (size_t j = prev.bin; j < num_bins_; ++j) {
        terminated[j] = 1.0f;
      }
      // The event bin itself was also reached.
      survived[prev.bin] = 1.0f;
    }
  }
}

}  // namespace cloudgen
