// Stage 3: lifetime LSTM (§2.3) — the paper's main conceptual contribution.
//
// A stacked LSTM runs over the *sequence of jobs* (ordered period → batch →
// arrival) and at each step emits J logits, one per lifetime bin; each logit
// parameterizes that bin's discrete-time hazard through a logistic function.
// Because the network is recurrent over jobs, the predicted lifetime
// distribution of each job conditions on the lifetimes of all previous jobs
// — the "inter-case" extension of neural survival prediction.
//
// Censoring: a job censored in bin c contributes survival credit for bins
// < c and nothing afterwards. This is expressed with a per-bin mask on the
// BCE-with-logits loss (exactly the paper's BCEWithLogitsLoss + weight-mask
// construction, §4.1), and with input features that tell the *next* job
// whether its predecessor is known to have terminated (§2.3.3).
#ifndef SRC_CORE_LIFETIME_MODEL_H_
#define SRC_CORE_LIFETIME_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/core/encoding.h"
#include "src/core/gen_guard.h"
#include "src/nn/sequence_network.h"
#include "src/survival/binning.h"
#include "src/trace/trace.h"
#include "src/util/status.h"

namespace cloudgen {

class Rng;

// Output-head parameterization (§2.3.1): the paper (following Kvamme &
// Borgan) parameterizes the discrete *hazard*; the PMF-softmax head is the
// alternative they cite as slightly worse, kept here for the ablation.
enum class LifetimeHead { kHazard, kPmf };

struct LifetimeModelConfig {
  LifetimeHead head = LifetimeHead::kHazard;
  size_t hidden_dim = 64;
  size_t num_layers = 2;
  size_t seq_len = 96;
  size_t batch_size = 24;
  size_t epochs = 3;
  float learning_rate = 3e-3f;
  float weight_decay = 1e-6f;
  float clip_norm = 5.0f;
  // Multiplicative learning-rate decay applied after every epoch.
  float lr_decay = 1.0f;
  // Checkpointing, resume, and divergence-watchdog behaviour.
  TrainRecoveryConfig recovery;
};

// One job step of the lifetime stream.
struct LifetimeStep {
  int64_t period = 0;
  int32_t doh_day = 1;
  int32_t flavor = 0;
  size_t batch_size = 1;
  bool first_in_batch = false;
  size_t bin = 0;        // Event bin (or censoring bin when censored).
  bool censored = false;
};

// The job-ordered stream used for training and evaluation.
struct LifetimeStream {
  std::vector<LifetimeStep> steps;
  // True (uncensored) lifetimes in seconds where known; -1 when censored.
  std::vector<double> lifetimes_seconds;
};

LifetimeStream BuildLifetimeStream(const Trace& trace, const LifetimeBinning& binning,
                                   int history_days);

class LifetimeLstmModel {
 public:
  LifetimeLstmModel() = default;

  // Trains on `train` (from scratch, or resuming from a checkpoint when
  // `config.recovery` says so). Fails with ABORTED when the divergence
  // watchdog exhausts its rollback budget.
  Status Train(const Trace& train, const LifetimeBinning& binning, int history_days,
               const LifetimeModelConfig& config, Rng& rng);

  bool IsTrained() const { return encoder_ != nullptr; }
  const LifetimeBinning& Binning() const;
  size_t NumParameters() const { return network_.NumParameters(); }
  // Network access for the batched engine (src/core/batch_generator.h).
  const SequenceNetwork& Network() const { return network_; }

  struct EvalResult {
    double bce = 0.0;           // Masked BCE over all hazard terms.
    double one_best_err = 0.0;  // Over uncensored steps only.
    // Mean per-job NLL: -log PMF(event bin) for uncensored jobs, -log of the
    // tail probability for censored ones. Comparable across head types.
    double job_nll = 0.0;
    size_t steps = 0;
    size_t uncensored_steps = 0;
  };
  EvalResult Evaluate(const Trace& test) const;

  // Per-job predicted hazards under teacher forcing (for Survival-MSE).
  std::vector<std::vector<double>> PredictHazards(const Trace& test) const;

  // Drops the packed inference weights so generation exercises the reference
  // step path; used by equivalence tests to compare the two routes.
  // PrepackForTest restores the normal (packed) state afterwards.
  void InvalidatePackedForTest() { network_.InvalidatePacked(); }
  void PrepackForTest() { network_.Prepack(); }

  // Stateful generator mirroring FlavorLstmModel::Generator: call StepJob for
  // every job of a sampled trace in generation order.
  class Generator {
   public:
    // `guard` selects the numeric-health policy applied to every step's
    // logits and hazard vector (src/core/gen_guard.h); on healthy outputs
    // all policies are bitwise-identical.
    Generator(const LifetimeLstmModel& model, int doh_day,
              GuardPolicy guard = GuardPolicy::kAbort);

    // Samples the lifetime *bin* for a job; feeds the sampled outcome back as
    // the next step's previous-lifetime features.
    size_t StepJob(int64_t period, int32_t flavor, size_t batch_size, Rng& rng);

    // Split halves for the batched engine (src/core/batch_generator.h),
    // mirroring FlavorLstmModel::Generator::BeginStep/ConsumeStep:
    // BeginJobStep encodes the job's input into `x_row`; an external batched
    // LSTM step then scatters h/c and the logits row back into
    // MutableState()/MutableLogits(), and ConsumeJobStep samples the bin and
    // feeds it back. StepJob is exactly BeginJobStep + StepLogits +
    // ConsumeJobStep, so the two routes draw identically from `rng`.
    void BeginJobStep(int64_t period, int32_t flavor, size_t batch_size,
                      float* x_row);
    size_t ConsumeJobStep(Rng& rng);
    LstmState* MutableState() { return &state_; }
    Matrix* MutableLogits() { return &logits_; }

    // Exact generator state (hidden state + previous-lifetime feedback) for
    // streaming-mode generation checkpoints. LoadState requires a Generator
    // constructed against the same model/options.
    void SaveState(std::ostream& out) const;
    void LoadState(std::istream& in);

   private:
    const LifetimeLstmModel& model_;
    int doh_day_;
    GuardPolicy guard_;
    LstmState state_;
    PrevLifetime prev_;
    Matrix input_;
    Matrix logits_;
    // Reused scratch: with packed weights ready, steady-state job sampling
    // performs no heap allocation.
    StepWorkspace ws_;
    std::vector<double> hazard_;
    // Pre-step snapshot for --guard=fallback (same-shape copies: no
    // steady-state allocation). Unused under other policies.
    LstmState fallback_state_;
    // Period of the job between BeginJobStep and ConsumeJobStep (guard
    // messages only).
    int64_t pending_period_ = 0;
  };

  // Atomic (temp + rename) model persistence.
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path, const LifetimeBinning& binning,
                      int history_days, size_t num_flavors);

 private:
  LifetimeModelConfig config_;
  std::unique_ptr<LifetimeInputEncoder> encoder_;
  std::unique_ptr<LifetimeBinning> binning_;
  SequenceNetwork network_;
  int history_days_ = 0;
  size_t num_flavors_ = 0;

  void EncodeStep(const LifetimeStep& step, const PrevLifetime& prev, float* out) const;
  std::vector<double> LogitsToHazard(const Matrix& logits) const;
  // Buffer-reusing form for the generation hot loop: writes the per-bin
  // hazard into `hazard`; `scratch` holds the intermediate PMF for the
  // softmax head. Identical arithmetic to LogitsToHazard.
  void LogitsToHazardInto(const Matrix& logits, std::vector<double>* hazard,
                          std::vector<double>* scratch) const;
};

}  // namespace cloudgen

#endif  // SRC_CORE_LIFETIME_MODEL_H_
