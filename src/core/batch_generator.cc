#include "src/core/batch_generator.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <utility>

#include "src/obs/fidelity_monitor.h"
#include "src/obs/metrics.h"
#include "src/util/cancel.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace cloudgen {

TraceStreamMachine::TraceStreamMachine(const WorkloadModel& model,
                                       const WorkloadModel::GenerateOptions& options,
                                       uint64_t base, size_t index)
    : options_(options),
      arrivals_(model.ArrivalModel()),
      binning_(model.LifetimeModel().Binning()),
      index_(index),
      rng_(Rng::Stream(base, index)),
      trace_(model.Flavors(), options.from_period, options.to_period),
      // Same first draw as WorkloadModel::Generate: one DOH day per trace.
      doh_day_(model.ArrivalModel().SampleDohDay(rng_, options.doh_mode)),
      flavor_gen_(model.FlavorModel(), doh_day_, options.eob_scale, options.guard),
      lifetime_gen_(model.LifetimeModel(), doh_day_, options.guard),
      factored_flavor_(model.FlavorModel().Network().IsFactored()),
      period_(options.from_period) {}

void TraceStreamMachine::Advance() {
  // Hot-path metric handles, registered once per process (see metrics.h).
  // Same counters, bumped at the same points, as PeriodEngine::RunPeriod.
  static obs::Counter& period_counter = obs::Registry::Global().GetCounter("gen.periods");
  static obs::Counter& batch_counter = obs::Registry::Global().GetCounter("gen.batches");
  static obs::Counter& job_counter = obs::Registry::Global().GetCounter("gen.jobs");
  // Observe-only fidelity hook, mirroring PeriodEngine::RunPeriod.
  obs::FidelityMonitor& fidelity = obs::FidelityMonitor::Global();
  for (;;) {
    switch (phase_) {
      case Phase::kPeriodStart: {
        if (period_ >= options_.to_period) {
          need_ = Need::kDone;
          return;
        }
        if (options_.cancel != nullptr && options_.cancel->Poll()) {
          // Partial trace: the driver discards it, never persists it.
          need_ = Need::kDone;
          return;
        }
        // A no-DOH arrival override ignores the day argument internally.
        const int arrivals_doh = std::min(doh_day_, std::max(1, arrivals_.HistoryDays()));
        const double rate = arrivals_.Rate(period_, arrivals_doh) * options_.arrival_scale;
        const int64_t n_batches = rng_.Poisson(rate);
        period_counter.Add(1);
        fidelity.ObservePeriodBatches(n_batches);
        if (n_batches == 0) {
          ++period_;
          break;
        }
        flavor_gen_.StartPeriod(period_, n_batches, kGenMaxJobsPerPeriod);
        phase_ = Phase::kFlavor;
        break;
      }
      case Phase::kFlavor: {
        if (flavor_gen_.PeriodActive() &&
            !(options_.cancel != nullptr && options_.cancel->Cancelled())) {
          need_ = Need::kFlavorStep;
          return;
        }
        // Period's token stream is complete (or cancelled mid-stream, in
        // which case the partial batches flow through the lifetime stage
        // exactly as GeneratePeriod's early break does).
        batches_ = flavor_gen_.TakeBatches();
        batch_counter.Add(static_cast<uint64_t>(batches_.size()));
        batch_idx_ = 0;
        job_idx_ = 0;
        if (!batches_.empty()) {
          user_ = next_user_++;
          job_counter.Add(static_cast<uint64_t>(batches_[0].size()));
        }
        phase_ = Phase::kLifetime;
        break;
      }
      case Phase::kLifetime: {
        while (batch_idx_ < batches_.size() &&
               job_idx_ >= batches_[batch_idx_].size()) {
          ++batch_idx_;
          job_idx_ = 0;
          if (batch_idx_ < batches_.size()) {
            user_ = next_user_++;
            job_counter.Add(static_cast<uint64_t>(batches_[batch_idx_].size()));
          }
        }
        if (batch_idx_ < batches_.size()) {
          need_ = Need::kLifetimeStep;
          return;
        }
        ++period_;
        phase_ = Phase::kPeriodStart;
        break;
      }
    }
  }
}

void TraceStreamMachine::BeginNeededStep(float* x_row) {
  if (need_ == Need::kFlavorStep) {
    flavor_gen_.BeginStep(x_row);
    return;
  }
  CG_DCHECK(need_ == Need::kLifetimeStep);
  const std::vector<int32_t>& batch = batches_[batch_idx_];
  lifetime_gen_.BeginJobStep(period_, batch[job_idx_], batch.size(), x_row);
}

void TraceStreamMachine::FinishNeededStep() {
  if (need_ == Need::kFlavorStep) {
    flavor_gen_.ConsumeStep(rng_);
  } else {
    CG_DCHECK(need_ == Need::kLifetimeStep);
    EmitJob(lifetime_gen_.ConsumeJobStep(rng_));
  }
  Advance();
}

void TraceStreamMachine::RunNeededStepSingle() {
  if (need_ == Need::kFlavorStep) {
    flavor_gen_.StepToken(rng_);
  } else {
    CG_DCHECK(need_ == Need::kLifetimeStep);
    const std::vector<int32_t>& batch = batches_[batch_idx_];
    EmitJob(lifetime_gen_.StepJob(period_, batch[job_idx_], batch.size(), rng_));
  }
  Advance();
}

void TraceStreamMachine::EmitJob(size_t bin) {
  const double duration =
      SampleDurationInBin(binning_, bin, options_.interpolation, rng_);
  Job job;
  job.start_period = period_;
  job.end_period =
      period_ + static_cast<int64_t>(std::llround(duration / kSecondsPerPeriod));
  job.flavor = batches_[batch_idx_][job_idx_];
  job.user = user_;
  job.censored = false;
  obs::FidelityMonitor::Global().ObserveJob(job.LifetimeSeconds(), job.flavor);
  trace_.Add(job);
  ++job_idx_;
}

LstmState* TraceStreamMachine::StepState() {
  return need_ == Need::kFlavorStep ? flavor_gen_.MutableState()
                                    : lifetime_gen_.MutableState();
}

Matrix* TraceStreamMachine::StepLogits() {
  return need_ == Need::kFlavorStep ? flavor_gen_.MutableLogits()
                                    : lifetime_gen_.MutableLogits();
}

bool TraceStreamMachine::StepWantsLogits() const {
  return need_ != Need::kFlavorStep || !factored_flavor_;
}

BatchTraceEngine::BatchTraceEngine(const WorkloadModel& model,
                                   const WorkloadModel::GenerateOptions& options,
                                   uint64_t base)
    : model_(model), options_(options), base_(base) {}

void BatchTraceEngine::Run(size_t first, size_t count, size_t window,
                           const std::function<bool(size_t, Trace&&)>& emit) {
  RunStrided(first, 1, first + count, window, emit);
}

void BatchTraceEngine::RunStrided(size_t first, size_t stride, size_t end,
                                  size_t window,
                                  const std::function<bool(size_t, Trace&&)>& emit) {
  window = std::max<size_t>(1, window);
  stride = std::max<size_t>(1, stride);
  // Hot-path metric handles, registered once per process (see metrics.h).
  static obs::Counter& tick_counter =
      obs::Registry::Global().GetCounter("gen.batch.ticks");
  static obs::Counter& row_counter =
      obs::Registry::Global().GetCounter("gen.batch.rows");

  const SequenceNetwork& flavor_net = model_.FlavorModel().Network();
  const SequenceNetwork& lifetime_net = model_.LifetimeModel().Network();
  std::vector<std::unique_ptr<TraceStreamMachine>> active;
  std::vector<TraceStreamMachine*> flavor_group;
  std::vector<TraceStreamMachine*> lifetime_group;
  size_t next = first;

  for (;;) {
    // Retire finished traces (compacting the active set) and refill the
    // window from the remaining indices.
    size_t live = 0;
    for (auto& m : active) {
      if (m->need() == TraceStreamMachine::Need::kDone) {
        if (!emit(m->index(), m->TakeTrace())) {
          return;
        }
      } else {
        active[live++] = std::move(m);
      }
    }
    active.resize(live);
    while (active.size() < window && next < end) {
      auto m = std::make_unique<TraceStreamMachine>(model_, options_, base_, next);
      next += stride;
      m->Advance();
      if (m->need() == TraceStreamMachine::Need::kDone) {
        if (!emit(m->index(), m->TakeTrace())) {
          return;
        }
      } else {
        active.push_back(std::move(m));
      }
    }
    if (active.empty()) {
      return;
    }

    // One tick: every active machine needs exactly one LSTM step; run each
    // network's group as one gathered batch.
    flavor_group.clear();
    lifetime_group.clear();
    for (auto& m : active) {
      (m->need() == TraceStreamMachine::Need::kFlavorStep ? flavor_group
                                                          : lifetime_group)
          .push_back(m.get());
    }
    tick_counter.Add(1);
    row_counter.Add(static_cast<uint64_t>(active.size()));
    ticks_ += 1;
    rows_ += static_cast<uint64_t>(active.size());
    if (!flavor_group.empty()) {
      StepGroup(flavor_net, flavor_group, &flavor_ws_);
    }
    if (!lifetime_group.empty()) {
      StepGroup(lifetime_net, lifetime_group, &lifetime_ws_);
    }
  }
}

void BatchTraceEngine::StepGroup(const SequenceNetwork& net,
                                 const std::vector<TraceStreamMachine*>& group,
                                 BatchStepWorkspace* ws) {
  static obs::Counter& single_counter =
      obs::Registry::Global().GetCounter("gen.batch.singles");
  if (group.size() == 1) {
    // A 1-row batch is the same math with gather/scatter overhead on top;
    // the single-stream fast path is the bitwise-identical shortcut.
    single_counter.Add(1);
    group[0]->RunNeededStepSingle();
    return;
  }
  const size_t rows = group.size();
  net.EnsureBatchStep(rows, ws);
  const size_t layers = ws->state.h.size();
  const size_t hidden = net.Config().hidden_dim;
  for (size_t r = 0; r < rows; ++r) {
    group[r]->BeginNeededStep(ws->x.Row(r));
    const LstmState* state = group[r]->StepState();
    for (size_t l = 0; l < layers; ++l) {
      const float* h = state->h[l].Row(0);
      const float* c = state->c[l].Row(0);
      std::copy(h, h + hidden, ws->state.h[l].Row(r));
      std::copy(c, c + hidden, ws->state.c[l].Row(r));
    }
  }
  net.StepBatch(ws);
  const size_t out_dim = net.Config().output_dim;
  for (size_t r = 0; r < rows; ++r) {
    LstmState* state = group[r]->StepState();
    for (size_t l = 0; l < layers; ++l) {
      const float* h = ws->state.h[l].Row(r);
      const float* c = ws->state.c[l].Row(r);
      std::copy(h, h + hidden, state->h[l].Row(0));
      std::copy(c, c + hidden, state->c[l].Row(0));
    }
    if (group[r]->StepWantsLogits()) {
      Matrix* logits = group[r]->StepLogits();
      if (logits->Rows() != 1 || logits->Cols() != out_dim) {
        logits->Resize(1, out_dim);
      }
      const float* src = ws->logits.Row(r);
      std::copy(src, src + out_dim, logits->Row(0));
    }
    group[r]->FinishNeededStep();
  }
}

void RunShardedBatchEngines(const WorkloadModel& model,
                            const WorkloadModel::GenerateOptions& options,
                            uint64_t base, size_t first, size_t count,
                            size_t window, size_t shards,
                            const std::function<bool(size_t, Trace&&)>& emit) {
  static obs::Counter& shard_tick_counter =
      obs::Registry::Global().GetCounter("gen.shard.ticks");
  static obs::Counter& shard_row_counter =
      obs::Registry::Global().GetCounter("gen.shard.rows");
  static obs::Gauge& occupancy_gauge =
      obs::Registry::Global().GetGauge("gen.shard.occupancy");

  window = std::max<size_t>(1, window);
  shards = std::max<size_t>(1, std::min(shards, std::max<size_t>(1, count)));
  const size_t end = first + count;

  if (shards == 1) {
    BatchTraceEngine engine(model, options, base);
    engine.Run(first, count, window, emit);
    shard_tick_counter.Add(engine.TicksRun());
    shard_row_counter.Add(engine.RowsStepped());
    if (engine.TicksRun() > 0) {
      occupancy_gauge.Set(static_cast<double>(engine.RowsStepped()) /
                          (static_cast<double>(engine.TicksRun()) *
                           static_cast<double>(window)));
    }
    return;
  }

  // `emit` feeds the caller's reorder buffer, which is not thread-safe; one
  // mutex serializes it across shards. A false return latches `stop` so
  // every shard winds down at its next retire without touching `emit` again.
  std::mutex emit_mu;
  std::atomic<bool> stop{false};
  auto shared_emit = [&emit, &emit_mu, &stop](size_t index, Trace&& trace) {
    if (stop.load(std::memory_order_relaxed)) {
      return false;
    }
    std::lock_guard<std::mutex> lock(emit_mu);
    if (stop.load(std::memory_order_relaxed)) {
      return false;
    }
    if (!emit(index, std::move(trace))) {
      stop.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  };

  // One engine per shard, each a pool task. The inner cap splits the pool
  // evenly so shards x inner <= pool size (see ScopedInnerParallelism); with
  // fewer cores than shards every shard's inner GEMMs just run inline.
  const size_t inner = std::max<size_t>(1, GlobalParallelism() / shards);
  std::vector<std::unique_ptr<BatchTraceEngine>> engines;
  engines.reserve(shards);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    engines.push_back(std::make_unique<BatchTraceEngine>(model, options, base));
    BatchTraceEngine* engine = engines.back().get();
    const size_t shard_first = first + s;
    tasks.push_back([engine, shard_first, shards, end, window, inner,
                     &shared_emit] {
      ScopedInnerParallelism scope(inner);
      engine->RunStrided(shard_first, shards, end, window, shared_emit);
    });
  }
  GlobalThreadPool().RunAll(tasks);

  uint64_t ticks = 0;
  uint64_t rows = 0;
  for (const auto& engine : engines) {
    ticks += engine->TicksRun();
    rows += engine->RowsStepped();
  }
  shard_tick_counter.Add(ticks);
  shard_row_counter.Add(rows);
  if (ticks > 0) {
    occupancy_gauge.Set(static_cast<double>(rows) /
                        (static_cast<double>(ticks) * static_cast<double>(window)));
  }
}

}  // namespace cloudgen
