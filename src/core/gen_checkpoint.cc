#include "src/core/gen_checkpoint.h"

#include <ostream>
#include <sstream>

#include "src/obs/metrics.h"
#include "src/tensor/matrix.h"
#include "src/util/check.h"
#include "src/util/sealed_file.h"

namespace cloudgen {
namespace {

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

uint64_t HashMix(uint64_t h, uint64_t v) {
  // splitmix64 finalizer over h ^ v: cheap, well-diffused, and stable across
  // builds (no std::hash, whose value is implementation-defined).
  uint64_t z = (h ^ v) + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void WriteLstmState(std::ostream& out, const LstmState& state) {
  CG_CHECK(state.h.size() == state.c.size());
  WritePod(out, static_cast<uint64_t>(state.h.size()));
  for (size_t layer = 0; layer < state.h.size(); ++layer) {
    WriteMatrix(out, state.h[layer]);
    WriteMatrix(out, state.c[layer]);
  }
}

void ReadLstmState(std::istream& in, LstmState* state) {
  uint64_t layers = 0;
  CG_CHECK_MSG(ReadPod(in, &layers), "truncated LSTM state");
  state->h.clear();
  state->c.clear();
  state->h.reserve(layers);
  state->c.reserve(layers);
  for (uint64_t layer = 0; layer < layers; ++layer) {
    state->h.push_back(ReadMatrix(in));
    state->c.push_back(ReadMatrix(in));
  }
}

Status SaveGenCheckpoint(const std::string& path, const GenCursor& cursor) {
  std::ostringstream payload;
  WritePod(payload, GenCursor::kVersion);
  WritePod(payload, cursor.mode);
  WritePod(payload, cursor.fingerprint);
  WritePod(payload, cursor.base);
  WritePod(payload, cursor.count);
  WritePod(payload, cursor.next_trace);
  WritePod(payload, cursor.next_period);
  WritePod(payload, cursor.segments_sealed);
  WritePod(payload, static_cast<uint64_t>(cursor.state_blob.size()));
  payload.write(cursor.state_blob.data(),
                static_cast<std::streamsize>(cursor.state_blob.size()));
  const Status written = WriteSealedFile(path, kSealGenCheckpoint, cursor.next_trace,
                                         payload.str());
  if (written.ok()) {
    obs::Registry::Global().GetCounter("gen.checkpoint.writes").Add(1);
  }
  return written.WithContext("writing generation checkpoint " + path);
}

Status LoadGenCheckpoint(const std::string& path, GenCursor* cursor) {
  std::string payload;
  uint64_t extra = 0;
  CG_RETURN_IF_ERROR(ReadSealedFile(path, kSealGenCheckpoint, &extra, &payload)
                         .WithContext("reading generation checkpoint " + path));
  std::istringstream in(payload);
  uint32_t version = 0;
  uint64_t blob_size = 0;
  if (!ReadPod(in, &version) || version != GenCursor::kVersion) {
    return DataLossError("unsupported generation checkpoint version in " + path);
  }
  if (!ReadPod(in, &cursor->mode) || !ReadPod(in, &cursor->fingerprint) ||
      !ReadPod(in, &cursor->base) || !ReadPod(in, &cursor->count) ||
      !ReadPod(in, &cursor->next_trace) || !ReadPod(in, &cursor->next_period) ||
      !ReadPod(in, &cursor->segments_sealed) || !ReadPod(in, &blob_size)) {
    return DataLossError("truncated generation checkpoint " + path);
  }
  cursor->state_blob.resize(blob_size);
  in.read(cursor->state_blob.data(), static_cast<std::streamsize>(blob_size));
  if (!in) {
    return DataLossError("truncated generation checkpoint state in " + path);
  }
  return OkStatus();
}

}  // namespace cloudgen
