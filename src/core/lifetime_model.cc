#include "src/core/lifetime_model.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>

#include "src/core/gen_checkpoint.h"
#include "src/core/trainer.h"
#include "src/nn/activations.h"
#include "src/nn/adam.h"
#include "src/nn/losses.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_span.h"
#include "src/survival/hazard.h"
#include "src/util/check.h"
#include "src/util/fault.h"
#include "src/util/log.h"
#include "src/util/rng.h"
#include "src/util/sealed_file.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

namespace cloudgen {
namespace {

// Fills one row of the BCE target and mask matrices for an observed outcome.
void FillTargetsAndMask(size_t bin, bool censored, size_t num_bins, float* target,
                        float* mask) {
  std::fill(target, target + num_bins, 0.0f);
  std::fill(mask, mask + num_bins, 0.0f);
  for (size_t j = 0; j < bin; ++j) {
    mask[j] = 1.0f;  // Survived this bin's hazard: target 0.
  }
  if (!censored) {
    mask[bin] = 1.0f;
    target[bin] = 1.0f;  // Suffered the hazard in the event bin.
  }
}

PrevLifetime PrevFromStep(const LifetimeStep& step) {
  PrevLifetime prev;
  prev.valid = true;
  prev.bin = step.bin;
  prev.censored = step.censored;
  return prev;
}

}  // namespace

LifetimeStream BuildLifetimeStream(const Trace& trace, const LifetimeBinning& binning,
                                   int history_days) {
  LifetimeStream stream;
  const std::vector<PeriodBatches> periods = BuildBatches(trace);
  const int64_t start_day = trace.WindowStart() / kPeriodsPerDay;
  for (const PeriodBatches& period : periods) {
    const PeriodCalendar cal = DecomposePeriod(period.period);
    const int doh =
        std::clamp(static_cast<int>(cal.day_index - start_day) + 1, 1, history_days);
    for (const Batch& batch : period.batches) {
      bool first = true;
      for (size_t idx : batch.job_indices) {
        const Job& job = trace.Jobs()[idx];
        LifetimeStep step;
        step.period = period.period;
        step.doh_day = doh;
        step.flavor = job.flavor;
        step.batch_size = batch.job_indices.size();
        step.first_in_batch = first;
        first = false;
        step.bin = binning.BinOf(job.LifetimeSeconds());
        step.censored = job.censored;
        stream.steps.push_back(step);
        stream.lifetimes_seconds.push_back(job.censored ? -1.0 : job.LifetimeSeconds());
      }
    }
  }
  return stream;
}

const LifetimeBinning& LifetimeLstmModel::Binning() const {
  CG_CHECK(binning_ != nullptr);
  return *binning_;
}

void LifetimeLstmModel::EncodeStep(const LifetimeStep& step, const PrevLifetime& prev,
                                   float* out) const {
  encoder_->EncodeInto(step.period, step.doh_day, step.flavor, step.batch_size, prev, out);
}

std::vector<double> LifetimeLstmModel::LogitsToHazard(const Matrix& logits) const {
  std::vector<double> hazard;
  std::vector<double> scratch;
  LogitsToHazardInto(logits, &hazard, &scratch);
  return hazard;
}

void LifetimeLstmModel::LogitsToHazardInto(const Matrix& logits,
                                           std::vector<double>* hazard,
                                           std::vector<double>* scratch) const {
  CG_CHECK(hazard != nullptr && scratch != nullptr);
  const size_t bins = logits.Cols();
  const float* row = logits.Row(0);
  if (config_.head == LifetimeHead::kPmf) {
    // Softmax → PMF → equivalent hazard.
    const double sum = MaxShiftedExp(row, bins, scratch);
    for (double& p : *scratch) {
      p /= sum;
    }
    PmfToHazardInto(*scratch, hazard);
    return;
  }
  hazard->resize(bins);
  for (size_t j = 0; j < bins; ++j) {
    (*hazard)[j] = SigmoidScalar(row[j]);
  }
  hazard->back() = 1.0;  // Open final bin.
}

Status LifetimeLstmModel::Train(const Trace& train, const LifetimeBinning& binning,
                                int history_days, const LifetimeModelConfig& config,
                                Rng& rng) {
  config_ = config;
  history_days_ = history_days;
  num_flavors_ = train.NumFlavors();
  binning_ = std::make_unique<LifetimeBinning>(binning);
  encoder_ = std::make_unique<LifetimeInputEncoder>(num_flavors_, binning.NumBins(),
                                                    TemporalFeatureEncoder(history_days));
  SequenceNetworkConfig net_config;
  net_config.input_dim = encoder_->Dim();
  net_config.hidden_dim = config.hidden_dim;
  net_config.num_layers = config.num_layers;
  net_config.output_dim = binning.NumBins();
  network_ = SequenceNetwork(net_config, rng);

  const LifetimeStream stream = BuildLifetimeStream(train, binning, history_days);
  if (stream.steps.empty()) {
    return InvalidArgumentError("lifetime training stream is empty");
  }

  AdamConfig adam_config;
  adam_config.learning_rate = config.learning_rate;
  adam_config.weight_decay = config.weight_decay;
  adam_config.clip_norm = config.clip_norm;
  Adam optimizer(network_.Params(), network_.Grads(), adam_config);

  const SequenceBatching batching(stream.steps.size(), {config.seq_len, config.batch_size});
  const size_t dim = encoder_->Dim();
  const size_t bins = binning.NumBins();

  std::vector<Matrix> inputs(batching.SeqLen());
  std::vector<Matrix> targets(batching.SeqLen());
  std::vector<Matrix> masks(batching.SeqLen());
  std::vector<std::vector<int32_t>> bin_targets(
      batching.SeqLen(), std::vector<int32_t>(batching.BatchSize()));
  std::vector<std::vector<uint8_t>> censored_flags(
      batching.SeqLen(), std::vector<uint8_t>(batching.BatchSize()));
  DataParallelBptt bptt(&network_, batching.BatchSize());
  const auto shard_loss = [&](size_t r0, size_t r1, const std::vector<Matrix>& logits,
                              std::vector<Matrix>* dlogits) {
    // Each loss normalizes by its own (shard-local) counted total — unmasked
    // elements for the hazard head, non-ignored rows for the CE head — so
    // each step is rescaled by counted_shard/counted_all to land on the exact
    // full-minibatch normalization serial training uses. The callback runs
    // concurrently across shards but only touches shard-local buffers.
    const size_t rows = r1 - r0;
    const float inv_steps = 1.0f / static_cast<float>(batching.SeqLen());
    double sum = 0.0;
    Matrix shard_targets;
    Matrix shard_masks;
    std::vector<int32_t> shard_bins;
    std::vector<uint8_t> shard_censored;
    for (size_t t = 0; t < batching.SeqLen(); ++t) {
      size_t counted_all = 0;
      size_t counted_shard = 0;
      double mean = 0.0;
      if (config.head == LifetimeHead::kHazard) {
        for (size_t b = 0; b < batching.BatchSize(); ++b) {
          const float* mask_row = masks[t].Row(b);
          size_t row_count = 0;
          for (size_t j = 0; j < bins; ++j) {
            row_count += static_cast<size_t>(mask_row[j] != 0.0f);
          }
          counted_all += row_count;
          if (b >= r0 && b < r1) {
            counted_shard += row_count;
          }
        }
        shard_targets.Resize(rows, bins);
        shard_masks.Resize(rows, bins);
        std::copy(targets[t].Row(r0), targets[t].Row(r0) + rows * bins,
                  shard_targets.Data());
        std::copy(masks[t].Row(r0), masks[t].Row(r0) + rows * bins, shard_masks.Data());
        mean = MaskedBceWithLogits(logits[t], shard_targets, shard_masks, &(*dlogits)[t]);
      } else {
        for (size_t b = 0; b < batching.BatchSize(); ++b) {
          if (bin_targets[t][b] == kIgnoreTarget) {
            continue;
          }
          ++counted_all;
          counted_shard += static_cast<size_t>(b >= r0 && b < r1);
        }
        shard_bins.assign(bin_targets[t].begin() + static_cast<ptrdiff_t>(r0),
                          bin_targets[t].begin() + static_cast<ptrdiff_t>(r1));
        shard_censored.assign(censored_flags[t].begin() + static_cast<ptrdiff_t>(r0),
                              censored_flags[t].begin() + static_cast<ptrdiff_t>(r1));
        mean = CensoredSoftmaxCrossEntropy(logits[t], shard_bins, shard_censored,
                                           &(*dlogits)[t]);
      }
      const float f = counted_all == 0
                          ? 0.0f
                          : static_cast<float>(counted_shard) /
                                static_cast<float>(counted_all) * inv_steps;
      (*dlogits)[t].Scale(f);
      sum += mean * static_cast<double>(f);
    }
    return sum;
  };

  ResilientTrainLoop loop(kCheckpointStageLifetime, config.recovery, config.learning_rate,
                          config.lr_decay, &network_, &optimizer, &rng);
  // Per-epoch telemetry (observe-only: never feeds back into training).
  obs::Registry& registry = obs::Registry::Global();
  obs::Series& loss_series = registry.GetSeries("train.lifetime.loss");
  obs::Series& grad_series = registry.GetSeries("train.lifetime.grad_norm");
  obs::Series& lr_series = registry.GetSeries("train.lifetime.lr");
  obs::Series& rate_series = registry.GetSeries("train.lifetime.rows_per_sec");
  obs::Counter& minibatch_counter = registry.GetCounter("train.lifetime.minibatches");
  obs::Histogram& epoch_hist = registry.GetHistogram("time.train_epoch_ms");

  CG_SPAN("train.lifetime");
  Timer timer;
  size_t epoch = loop.Begin();
  while (epoch < config.epochs) {
    CG_SPAN("train.lifetime_epoch");
    ScopedTimer epoch_timer(&epoch_hist);
    optimizer.SetLearningRate(loop.LearningRate());
    double epoch_loss = 0.0;
    size_t epoch_minibatches = 0;
    bool diverged = false;
    for (size_t mb : batching.EpochOrder(rng)) {
      for (size_t t = 0; t < batching.SeqLen(); ++t) {
        inputs[t].Resize(batching.BatchSize(), dim);
        targets[t].Resize(batching.BatchSize(), bins);
        masks[t].Resize(batching.BatchSize(), bins);
        for (size_t b = 0; b < batching.BatchSize(); ++b) {
          const size_t idx = batching.StepIndex(mb, t, b);
          const PrevLifetime prev =
              idx == 0 ? PrevLifetime{} : PrevFromStep(stream.steps[idx - 1]);
          EncodeStep(stream.steps[idx], prev, inputs[t].Row(b));
          if (config.head == LifetimeHead::kHazard) {
            FillTargetsAndMask(stream.steps[idx].bin, stream.steps[idx].censored, bins,
                               targets[t].Row(b), masks[t].Row(b));
          } else {
            bin_targets[t][b] = static_cast<int32_t>(stream.steps[idx].bin);
            censored_flags[t][b] = stream.steps[idx].censored ? 1 : 0;
          }
        }
      }
      const double loss = bptt.Run(inputs, shard_loss);
      MaybeInjectGradientFault(&network_);
      optimizer.Step();
      if (!std::isfinite(loss) || !std::isfinite(optimizer.LastGradNorm())) {
        // The update that just happened is contaminated; bail out of the
        // epoch so the watchdog can roll the whole state back.
        diverged = true;
        break;
      }
      epoch_loss += loss;
      ++epoch_minibatches;
      minibatch_counter.Add(1);
    }
    const double mean_loss = epoch_loss / std::max<size_t>(1, epoch_minibatches);
    const float epoch_lr = loop.LearningRate();
    switch (loop.FinishEpoch(epoch, config.epochs, mean_loss, diverged)) {
      case ResilientTrainLoop::Verdict::kRetryEpoch:
        continue;
      case ResilientTrainLoop::Verdict::kStop:
        network_.Prepack();
        return OkStatus();
      case ResilientTrainLoop::Verdict::kFailed:
        return loop.status().WithContext("lifetime LSTM training");
      case ResilientTrainLoop::Verdict::kNextEpoch:
        break;
    }
    const double epoch_seconds = epoch_timer.ElapsedSeconds();
    const double rows =
        static_cast<double>(epoch_minibatches * batching.BatchSize() * batching.SeqLen());
    loss_series.Append(static_cast<double>(epoch), mean_loss);
    grad_series.Append(static_cast<double>(epoch), optimizer.LastGradNorm());
    lr_series.Append(static_cast<double>(epoch), static_cast<double>(epoch_lr));
    rate_series.Append(static_cast<double>(epoch),
                       epoch_seconds > 0.0 ? rows / epoch_seconds : 0.0);
    CG_LOGF_INFO("lifetime LSTM epoch %zu/%zu: loss=%.4f (%.1fs elapsed)", epoch + 1,
                 config.epochs, mean_loss, timer.ElapsedSeconds());
    ++epoch;
  }
  // Parameters are final: build the packed inference weights once.
  network_.Prepack();
  return OkStatus();
}

LifetimeLstmModel::EvalResult LifetimeLstmModel::Evaluate(const Trace& test) const {
  CG_CHECK(encoder_ != nullptr);
  const LifetimeStream stream = BuildLifetimeStream(test, *binning_, history_days_);
  EvalResult result;
  if (stream.steps.empty()) {
    return result;
  }
  LstmState state = network_.MakeState(1);
  Matrix input(1, encoder_->Dim());
  Matrix logits;
  double bce_sum = 0.0;
  size_t bce_terms = 0;
  double job_nll_sum = 0.0;
  size_t errors = 0;
  constexpr double kEps = 1e-6;  // Matches the baseline-evaluation clamp.
  for (size_t i = 0; i < stream.steps.size(); ++i) {
    const PrevLifetime prev = i == 0 ? PrevLifetime{} : PrevFromStep(stream.steps[i - 1]);
    EncodeStep(stream.steps[i], prev, input.Row(0));
    network_.StepLogits(input, &state, &logits);

    const LifetimeStep& step = stream.steps[i];
    const std::vector<double> hazard = LogitsToHazard(logits);
    for (size_t j = 0; j < step.bin; ++j) {
      bce_sum += -std::log(std::max(1.0 - hazard[j], kEps));
      ++bce_terms;
    }
    const std::vector<double> pmf = HazardToPmf(hazard);
    if (!step.censored) {
      bce_sum += -std::log(std::max(hazard[step.bin], kEps));
      ++bce_terms;
      job_nll_sum += -std::log(std::max(pmf[step.bin], kEps));
      if (ArgmaxBinFromHazard(hazard) != step.bin) {
        ++errors;
      }
      ++result.uncensored_steps;
    } else {
      double tail = 0.0;
      for (size_t j = step.bin; j < pmf.size(); ++j) {
        tail += pmf[j];
      }
      job_nll_sum += -std::log(std::max(tail, kEps));
    }
  }
  result.steps = stream.steps.size();
  result.bce = bce_terms > 0 ? bce_sum / static_cast<double>(bce_terms) : 0.0;
  result.job_nll =
      result.steps > 0 ? job_nll_sum / static_cast<double>(result.steps) : 0.0;
  result.one_best_err =
      result.uncensored_steps > 0
          ? static_cast<double>(errors) / static_cast<double>(result.uncensored_steps)
          : 0.0;
  return result;
}

std::vector<std::vector<double>> LifetimeLstmModel::PredictHazards(const Trace& test) const {
  CG_CHECK(encoder_ != nullptr);
  const LifetimeStream stream = BuildLifetimeStream(test, *binning_, history_days_);
  std::vector<std::vector<double>> hazards;
  hazards.reserve(stream.steps.size());
  LstmState state = network_.MakeState(1);
  Matrix input(1, encoder_->Dim());
  Matrix logits;
  for (size_t i = 0; i < stream.steps.size(); ++i) {
    const PrevLifetime prev = i == 0 ? PrevLifetime{} : PrevFromStep(stream.steps[i - 1]);
    EncodeStep(stream.steps[i], prev, input.Row(0));
    network_.StepLogits(input, &state, &logits);
    hazards.push_back(LogitsToHazard(logits));
  }
  return hazards;
}

LifetimeLstmModel::Generator::Generator(const LifetimeLstmModel& model, int doh_day,
                                        GuardPolicy guard)
    : model_(model),
      doh_day_(doh_day),
      guard_(guard),
      state_(model.network_.MakeState(1)),
      input_(1, model.encoder_->Dim()) {}

size_t LifetimeLstmModel::Generator::StepJob(int64_t period, int32_t flavor,
                                             size_t batch_size, Rng& rng) {
  // Hot-path metric handle, registered once per process (see metrics.h).
  static obs::Histogram& step_hist =
      obs::Registry::Global().GetHistogram("gen.step_ns", obs::StepLatencyBucketsNs());
  BeginJobStep(period, flavor, batch_size, input_.Row(0));
  const auto step_start = std::chrono::steady_clock::now();
  model_.network_.StepLogits(input_, &state_, &logits_, &ws_);
  step_hist.Observe(static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                            std::chrono::steady_clock::now() - step_start)
                                            .count()));
  return ConsumeJobStep(rng);
}

void LifetimeLstmModel::Generator::BeginJobStep(int64_t period, int32_t flavor,
                                                size_t batch_size, float* x_row) {
  LifetimeStep step;
  step.period = period;
  step.doh_day = doh_day_;
  step.flavor = flavor;
  step.batch_size = batch_size;
  // The step input always lands in input_ as well: the --guard=fallback
  // re-run inside ConsumeJobStep replays the step from it.
  float* own = input_.Row(0);
  model_.EncodeStep(step, prev_, own);
  pending_period_ = period;
  if (guard_ == GuardPolicy::kFallback) {
    fallback_state_ = state_;  // Same-shape copy: no steady-state allocation.
  }
  if (x_row != own) {
    std::copy(own, own + input_.Cols(), x_row);
  }
}

size_t LifetimeLstmModel::Generator::ConsumeJobStep(Rng& rng) {
  // Hot-path metric handle, registered once per process (see metrics.h).
  static obs::Counter& token_counter = obs::Registry::Global().GetCounter("gen.tokens");
  token_counter.Add(1);
  const int64_t period = pending_period_;
  if (FaultInjector::Global().ShouldInject(FaultKind::kGenNanLogit)) {
    logits_.Row(0)[0] = std::numeric_limits<float>::quiet_NaN();
  }
  model_.LogitsToHazardInto(logits_, &hazard_, &ws_.scratch);
  if (guard_ != GuardPolicy::kOff &&
      (!AllFinite(logits_.Row(0), logits_.Cols()) || !ValidHazard(hazard_))) {
    CountGuardViolation();
    if (guard_ == GuardPolicy::kAbort) {
      GuardAbort(StrFormat("lifetime hazard invalid at period %lld",
                           static_cast<long long>(period)));
    }
    if (guard_ == GuardPolicy::kFallback) {
      // Redo the step through the reference (non-packed) route from the
      // pre-step snapshot; on healthy outputs it is bitwise-identical to the
      // fast path, so the recovered trace matches an unfaulted run.
      state_ = fallback_state_;
      model_.network_.StepLogits(input_, &state_, &logits_);
      model_.LogitsToHazardInto(logits_, &hazard_, &ws_.scratch);
      if (!AllFinite(logits_.Row(0), logits_.Cols()) || !ValidHazard(hazard_)) {
        GuardAbort("lifetime hazard invalid on the reference route too");
      }
      CountGuardFallback();
    } else if (guard_ == GuardPolicy::kResample) {
      SanitizeHazard(&hazard_);
      CountGuardResample();
    }
  }
  const size_t bin = SampleBinFromHazard(hazard_, rng);
  prev_.valid = true;
  prev_.bin = bin;
  prev_.censored = false;  // Generated lifetimes are always complete draws.
  return bin;
}

void LifetimeLstmModel::Generator::SaveState(std::ostream& out) const {
  const uint8_t valid = prev_.valid ? 1 : 0;
  const uint8_t censored = prev_.censored ? 1 : 0;
  const auto bin = static_cast<uint64_t>(prev_.bin);
  out.write(reinterpret_cast<const char*>(&valid), sizeof(valid));
  out.write(reinterpret_cast<const char*>(&censored), sizeof(censored));
  out.write(reinterpret_cast<const char*>(&bin), sizeof(bin));
  WriteLstmState(out, state_);
}

void LifetimeLstmModel::Generator::LoadState(std::istream& in) {
  uint8_t valid = 0;
  uint8_t censored = 0;
  uint64_t bin = 0;
  in.read(reinterpret_cast<char*>(&valid), sizeof(valid));
  in.read(reinterpret_cast<char*>(&censored), sizeof(censored));
  in.read(reinterpret_cast<char*>(&bin), sizeof(bin));
  CG_CHECK_MSG(static_cast<bool>(in), "truncated lifetime generator state");
  prev_.valid = valid != 0;
  prev_.censored = censored != 0;
  prev_.bin = static_cast<size_t>(bin);
  ReadLstmState(in, &state_);
}

Status LifetimeLstmModel::SaveToFile(const std::string& path) const {
  if (!IsTrained()) {
    return FailedPreconditionError("lifetime model is untrained; nothing to save");
  }
  std::ostringstream out(std::ios::binary);
  const uint8_t head = config_.head == LifetimeHead::kPmf ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&head), sizeof(head));
  network_.Save(out);
  return WriteSealedFile(path, kSealLifetimeModel, 0, std::move(out).str());
}

Status LifetimeLstmModel::LoadFromFile(const std::string& path,
                                       const LifetimeBinning& binning, int history_days,
                                       size_t num_flavors) {
  std::string payload;
  CG_RETURN_IF_ERROR(
      ReadSealedFile(path, kSealLifetimeModel, nullptr, &payload).WithContext("lifetime model"));
  // The CRC above guarantees the payload is exactly what Save wrote, so the
  // raw stream parse below only CG_CHECKs true invariants.
  std::istringstream in(payload, std::ios::binary);
  uint8_t head = 0;
  in.read(reinterpret_cast<char*>(&head), sizeof(head));
  if (!in) {
    return DataLossError(path + ": lifetime model payload is empty");
  }
  config_.head = head == 1 ? LifetimeHead::kPmf : LifetimeHead::kHazard;
  network_.Load(in);
  history_days_ = history_days;
  num_flavors_ = num_flavors;
  binning_ = std::make_unique<LifetimeBinning>(binning);
  encoder_ = std::make_unique<LifetimeInputEncoder>(num_flavors_, binning.NumBins(),
                                                    TemporalFeatureEncoder(history_days));
  if (network_.Config().input_dim != encoder_->Dim()) {
    encoder_.reset();
    return FailedPreconditionError(
        path + ": loaded lifetime model does not match the encoder dimensions");
  }
  // Loaded parameters are final: build the packed inference weights once.
  network_.Prepack();
  return OkStatus();
}

}  // namespace cloudgen
