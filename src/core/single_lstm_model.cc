#include "src/core/single_lstm_model.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "src/core/trainer.h"
#include "src/nn/activations.h"
#include "src/nn/adam.h"
#include "src/nn/losses.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_span.h"
#include "src/util/cancel.h"
#include "src/util/check.h"
#include "src/util/fault.h"
#include "src/util/log.h"
#include "src/util/rng.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

namespace cloudgen {
namespace {

// Token-stream construction: period → batches (EOB-terminated) → EOP. Every
// period of the window emits an EOP, including empty ones.
struct TokenStream {
  std::vector<int32_t> tokens;
  std::vector<int64_t> periods;
  std::vector<int32_t> doh_days;
};

TokenStream BuildEopStream(const Trace& trace, int history_days) {
  const auto eob = static_cast<int32_t>(trace.NumFlavors());
  const int32_t eop = eob + 1;
  TokenStream stream;
  const std::vector<PeriodBatches> periods = BuildBatches(trace);
  const int64_t start_day = trace.WindowStart() / kPeriodsPerDay;
  for (const PeriodBatches& period : periods) {
    const PeriodCalendar cal = DecomposePeriod(period.period);
    const int doh =
        std::clamp(static_cast<int>(cal.day_index - start_day) + 1, 1, history_days);
    for (const Batch& batch : period.batches) {
      for (size_t idx : batch.job_indices) {
        stream.tokens.push_back(trace.Jobs()[idx].flavor);
        stream.periods.push_back(period.period);
        stream.doh_days.push_back(doh);
      }
      stream.tokens.push_back(eob);
      stream.periods.push_back(period.period);
      stream.doh_days.push_back(doh);
    }
    stream.tokens.push_back(eop);
    stream.periods.push_back(period.period);
    stream.doh_days.push_back(doh);
  }
  return stream;
}

}  // namespace

size_t SingleLstmModel::EopToken() const { return num_flavors_ + 1; }

void SingleLstmModel::Train(const Trace& train, int history_days,
                            const SingleLstmConfig& config, Rng& rng) {
  num_flavors_ = train.NumFlavors();
  // Vocabulary trick: a FlavorVocab over K+1 "flavors" gives K+2 tokens; slot
  // K is EOB and slot K+1 (the vocab's own EOB slot) is EOP.
  encoder_ = std::make_unique<FlavorInputEncoder>(FlavorVocab(num_flavors_ + 1),
                                                  TemporalFeatureEncoder(history_days));
  SequenceNetworkConfig net_config;
  net_config.input_dim = encoder_->Dim();
  net_config.hidden_dim = config.hidden_dim;
  net_config.num_layers = config.num_layers;
  net_config.output_dim = encoder_->Vocab().NumTokens();
  network_ = SequenceNetwork(net_config, rng);

  const TokenStream stream = BuildEopStream(train, history_days);
  CG_CHECK_MSG(!stream.tokens.empty(), "empty EOP training stream");

  AdamConfig adam_config;
  adam_config.learning_rate = config.learning_rate;
  adam_config.weight_decay = config.weight_decay;
  adam_config.clip_norm = config.clip_norm;
  Adam optimizer(network_.Params(), network_.Grads(), adam_config);

  const SequenceBatching batching(stream.tokens.size(),
                                  {config.seq_len, config.batch_size});
  const size_t eop = EopToken();
  const size_t dim = encoder_->Dim();
  std::vector<Matrix> inputs(batching.SeqLen());
  std::vector<std::vector<int32_t>> targets(batching.SeqLen());
  DataParallelBptt bptt(&network_, batching.BatchSize());
  const auto shard_loss = [&](size_t r0, size_t r1, const std::vector<Matrix>& logits,
                              std::vector<Matrix>* dlogits) {
    // Rescale each step from the loss's shard-local mean to the exact
    // full-minibatch normalization (counted non-ignored rows), matching
    // serial training in real arithmetic.
    const float inv_steps = 1.0f / static_cast<float>(batching.SeqLen());
    double sum = 0.0;
    std::vector<int32_t> shard_targets;
    for (size_t t = 0; t < batching.SeqLen(); ++t) {
      size_t counted_all = 0;
      size_t counted_shard = 0;
      for (size_t b = 0; b < batching.BatchSize(); ++b) {
        if (targets[t][b] == kIgnoreTarget) {
          continue;
        }
        ++counted_all;
        counted_shard += static_cast<size_t>(b >= r0 && b < r1);
      }
      shard_targets.assign(targets[t].begin() + static_cast<ptrdiff_t>(r0),
                           targets[t].begin() + static_cast<ptrdiff_t>(r1));
      const double mean = SoftmaxCrossEntropy(logits[t], shard_targets, &(*dlogits)[t]);
      const float f = counted_all == 0
                          ? 0.0f
                          : static_cast<float>(counted_shard) /
                                static_cast<float>(counted_all) * inv_steps;
      (*dlogits)[t].Scale(f);
      sum += mean * static_cast<double>(f);
    }
    return sum;
  };

  obs::Registry& registry = obs::Registry::Global();
  obs::Series& loss_series = registry.GetSeries("train.single_lstm.loss");
  obs::Series& rate_series = registry.GetSeries("train.single_lstm.rows_per_sec");
  obs::Histogram& epoch_hist = registry.GetHistogram("time.train_epoch_ms");

  CG_SPAN("train.single_lstm");
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    CG_SPAN("train.single_lstm_epoch");
    ScopedTimer epoch_timer(&epoch_hist);
    double epoch_loss = 0.0;
    size_t count = 0;
    for (size_t mb : batching.EpochOrder(rng)) {
      for (size_t t = 0; t < batching.SeqLen(); ++t) {
        inputs[t].Resize(batching.BatchSize(), dim);
        targets[t].assign(batching.BatchSize(), kIgnoreTarget);
        for (size_t b = 0; b < batching.BatchSize(); ++b) {
          const size_t step = batching.StepIndex(mb, t, b);
          const size_t prev = step == 0 ? eop : static_cast<size_t>(stream.tokens[step - 1]);
          encoder_->EncodeInto(prev, stream.periods[step], stream.doh_days[step],
                               inputs[t].Row(b));
          targets[t][b] = stream.tokens[step];
        }
      }
      const double loss = bptt.Run(inputs, shard_loss);
      optimizer.Step();
      epoch_loss += loss;
      ++count;
    }
    const double mean_loss = epoch_loss / std::max<size_t>(1, count);
    const double epoch_seconds = epoch_timer.ElapsedSeconds();
    const double rows =
        static_cast<double>(count * batching.BatchSize() * batching.SeqLen());
    loss_series.Append(static_cast<double>(epoch), mean_loss);
    rate_series.Append(static_cast<double>(epoch),
                       epoch_seconds > 0.0 ? rows / epoch_seconds : 0.0);
    CG_LOGF_INFO("single LSTM epoch %zu/%zu: loss=%.4f", epoch + 1, config.epochs,
                 mean_loss);
    optimizer.SetLearningRate(optimizer.Config().learning_rate * config.lr_decay);
  }
  // Parameters are final: build the packed inference weights once.
  network_.Prepack();
}

SingleLstmModel::Generator::Generator(const SingleLstmModel& model, int doh_day,
                                      GuardPolicy guard)
    : model_(model),
      doh_day_(doh_day),
      guard_(guard),
      state_(model.network_.MakeState(1)),
      prev_token_(model.EopToken()),
      input_(1, model.encoder_->Dim()) {
  CG_CHECK(model.IsTrained());
}

std::vector<std::vector<int32_t>> SingleLstmModel::Generator::GeneratePeriod(
    int64_t period, Rng& rng, size_t max_jobs, const CancelToken* cancel) {
  const size_t eob = model_.num_flavors_;
  const size_t eop = model_.EopToken();
  std::vector<std::vector<int32_t>> batches;
  std::vector<int32_t> current;
  size_t total_jobs = 0;
  // Hot-path metric handles, registered once per process (see metrics.h).
  static obs::Counter& token_counter = obs::Registry::Global().GetCounter("gen.tokens");
  static obs::Histogram& step_hist =
      obs::Registry::Global().GetHistogram("gen.step_ns", obs::StepLatencyBucketsNs());
  while (true) {
    if (cancel != nullptr && cancel->Cancelled()) {
      break;  // Partial period: the caller discards the whole trace.
    }
    model_.encoder_->EncodeInto(prev_token_, period, doh_day_, input_.Row(0));
    if (guard_ == GuardPolicy::kFallback) {
      fallback_state_ = state_;  // Same-shape copy: no steady-state allocation.
    }
    const auto step_start = std::chrono::steady_clock::now();
    model_.network_.StepLogits(input_, &state_, &logits_, &ws_);
    step_hist.Observe(static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                              std::chrono::steady_clock::now() - step_start)
                                              .count()));
    token_counter.Add(1);
    if (FaultInjector::Global().ShouldInject(FaultKind::kGenNanLogit)) {
      logits_.Row(0)[0] = std::numeric_limits<float>::quiet_NaN();
    }
    if (guard_ != GuardPolicy::kOff && !AllFinite(logits_.Row(0), logits_.Cols())) {
      CountGuardViolation();
      if (guard_ == GuardPolicy::kAbort) {
        GuardAbort(StrFormat("single-LSTM logits non-finite at period %lld",
                             static_cast<long long>(period)));
      }
      if (guard_ == GuardPolicy::kFallback) {
        state_ = fallback_state_;
        model_.network_.StepLogits(input_, &state_, &logits_);
        if (!AllFinite(logits_.Row(0), logits_.Cols())) {
          GuardAbort("single-LSTM logits non-finite on the reference route too");
        }
        CountGuardFallback();
      }
    }
    MaxShiftedExp(logits_.Row(0), logits_.Cols(), &ws_.probs);
    if (guard_ == GuardPolicy::kResample && !ValidWeights(ws_.probs)) {
      SanitizeWeights(&ws_.probs);
      CountGuardResample();
    }
    const size_t token = rng.Categorical(ws_.probs);
    prev_token_ = token;
    if (token == eop) {
      if (!current.empty()) {
        batches.push_back(std::move(current));  // Implicitly close the batch.
      }
      break;
    }
    if (token == eob) {
      if (!current.empty()) {
        batches.push_back(std::move(current));
        current.clear();
      }
      continue;
    }
    current.push_back(static_cast<int32_t>(token));
    if (++total_jobs >= max_jobs) {
      CG_LOG_WARN("single-LSTM generator hit the per-period job cap");
      if (!current.empty()) {
        batches.push_back(std::move(current));
      }
      break;
    }
  }
  return batches;
}

}  // namespace cloudgen
