#include "src/core/checkpoint.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "src/obs/metrics.h"
#include "src/util/fault.h"
#include "src/util/log.h"
#include "src/util/strings.h"

namespace cloudgen {
namespace {

// Training-resilience telemetry (docs/OBSERVABILITY.md).
obs::Counter& RollbackCounter() {
  static obs::Counter& counter = obs::Registry::Global().GetCounter("train.rollbacks");
  return counter;
}
obs::Counter& ResumeCounter() {
  static obs::Counter& counter = obs::Registry::Global().GetCounter("train.resumes");
  return counter;
}
obs::Counter& CheckpointWriteCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("train.checkpoint_writes");
  return counter;
}
obs::Counter& CheckpointWriteFailureCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("train.checkpoint_write_failures");
  return counter;
}

}  // namespace

Status TrainCheckpoint::Write(const std::string& path, uint32_t stage_tag,
                              uint64_t next_epoch, const std::string& payload) {
  return WriteSealedFile(path, stage_tag, next_epoch, payload);
}

Status TrainCheckpoint::Read(const std::string& path, uint32_t stage_tag,
                             uint64_t* next_epoch, std::string* payload) {
  return ReadSealedFile(path, stage_tag, next_epoch, payload);
}

ResilientTrainLoop::ResilientTrainLoop(uint32_t stage_tag,
                                       const TrainRecoveryConfig& config,
                                       float initial_lr, float lr_decay,
                                       SequenceNetwork* network, Adam* optimizer,
                                       Rng* rng)
    : stage_tag_(stage_tag),
      config_(config),
      lr_(initial_lr),
      lr_decay_(lr_decay),
      network_(network),
      optimizer_(optimizer),
      rng_(rng) {
  CG_CHECK(network_ != nullptr && optimizer_ != nullptr && rng_ != nullptr);
  CG_CHECK(config_.lr_backoff > 0.0f && config_.lr_backoff < 1.0f);
}

std::string ResilientTrainLoop::Serialize() const {
  std::ostringstream out(std::ios::binary);
  out.write(reinterpret_cast<const char*>(&lr_), sizeof(lr_));
  const int32_t rollbacks = rollbacks_;
  out.write(reinterpret_cast<const char*>(&rollbacks), sizeof(rollbacks));
  network_->Save(out);
  optimizer_->SaveState(out);
  rng_->SaveState(out);
  return std::move(out).str();
}

void ResilientTrainLoop::Restore(const std::string& payload, bool restore_rollbacks) {
  std::istringstream in(payload, std::ios::binary);
  in.read(reinterpret_cast<char*>(&lr_), sizeof(lr_));
  int32_t rollbacks = 0;
  in.read(reinterpret_cast<char*>(&rollbacks), sizeof(rollbacks));
  if (restore_rollbacks) {
    rollbacks_ = rollbacks;
  }
  network_->Load(in);
  optimizer_->LoadState(in);
  rng_->LoadState(in);
  CG_CHECK_MSG(static_cast<bool>(in), "corrupt training snapshot");
}

size_t ResilientTrainLoop::Begin() {
  if (config_.resume && !config_.checkpoint_path.empty()) {
    uint64_t next_epoch = 0;
    std::string payload;
    const Status status =
        TrainCheckpoint::Read(config_.checkpoint_path, stage_tag_, &next_epoch, &payload);
    if (status.ok()) {
      Restore(payload, /*restore_rollbacks=*/true);
      last_good_ = payload;
      ResumeCounter().Add(1);
      if (rollbacks_ > 0) {
        // Surface the watchdog history of the interrupted run; previously a
        // resume restarted the visible count at zero.
        CG_LOGF_WARN("resumed run had already rolled back %d time(s) (max %d)",
                     rollbacks_, config_.max_rollbacks);
      }
      CG_LOGF_INFO("resuming from %s at epoch %llu (lr=%.2e, rollbacks=%d)",
                   config_.checkpoint_path.c_str(),
                   static_cast<unsigned long long>(next_epoch),
                   static_cast<double>(lr_), rollbacks_);
      return static_cast<size_t>(next_epoch);
    }
    if (status.code() == StatusCode::kNotFound) {
      CG_LOG_INFO("no checkpoint to resume from; starting fresh (" +
                  config_.checkpoint_path + ")");
    } else {
      CG_LOG_WARN("ignoring unusable checkpoint: " + status.ToString());
    }
  }
  last_good_ = Serialize();
  return 0;
}

ResilientTrainLoop::Verdict ResilientTrainLoop::FinishEpoch(size_t epoch,
                                                            size_t total_epochs,
                                                            double loss, bool diverged) {
  const bool exploded =
      have_best_ && loss > config_.divergence_factor * (best_loss_ + 1.0);
  if (diverged || !std::isfinite(loss) || exploded) {
    ++rollbacks_;
    RollbackCounter().Add(1);
    if (rollbacks_ > config_.max_rollbacks) {
      status_ = AbortedError(StrFormat(
          "training diverged %d times (last epoch %zu, loss %g); giving up",
          rollbacks_, epoch, loss));
      return Verdict::kFailed;
    }
    Restore(last_good_, /*restore_rollbacks=*/false);
    const float backed_off = lr_ * config_.lr_backoff;
    CG_LOGF_WARN(
        "divergence watchdog: epoch %zu %s (loss %g); rolled back, lr %.2e -> %.2e "
        "(rollback %d/%d)",
        epoch, diverged ? "hit NaN/Inf" : "exploded", loss, static_cast<double>(lr_),
        static_cast<double>(backed_off), rollbacks_, config_.max_rollbacks);
    lr_ = backed_off;
    return Verdict::kRetryEpoch;
  }

  if (!have_best_ || loss < best_loss_) {
    best_loss_ = loss;
    have_best_ = true;
  }
  // Post-epoch LR decay, applied before the snapshot so resume picks up the
  // rate the next epoch would have used.
  lr_ *= lr_decay_;
  last_good_ = Serialize();
  if (!config_.checkpoint_path.empty()) {
    const Status status = TrainCheckpoint::Write(config_.checkpoint_path, stage_tag_,
                                                 epoch + 1, last_good_);
    if (status.ok()) {
      CheckpointWriteCounter().Add(1);
    } else {
      // Best-effort: a failed checkpoint write (e.g. injected io_write fault)
      // must not kill training, and the atomic write left any previous
      // checkpoint intact.
      CheckpointWriteFailureCounter().Add(1);
      CG_LOG_WARN("checkpoint write failed: " + status.ToString());
    }
  }
  if (config_.stop_after_epoch > 0 && epoch + 1 >= config_.stop_after_epoch &&
      epoch + 1 < total_epochs) {
    CG_LOGF_WARN("stop_after_epoch: halting after epoch %zu of %zu", epoch + 1,
                 total_epochs);
    return Verdict::kStop;
  }
  return Verdict::kNextEpoch;
}

bool MaybeInjectGradientFault(SequenceNetwork* network) {
  if (!FaultInjector::Global().ShouldInject(FaultKind::kNanGrad)) {
    return false;
  }
  std::vector<Matrix*> grads = network->Grads();
  if (!grads.empty() && grads[0]->Size() > 0) {
    grads[0]->Data()[0] = std::numeric_limits<float>::quiet_NaN();
  }
  return true;
}

}  // namespace cloudgen
