// Numeric-health guards for the generation hot path.
//
// Training has had isfinite watchdogs since PR 1 (divergence rollback in
// both LSTM trainers), but inference had none: a single non-finite logit —
// a corrupted model file that passed its CRC because it was *written*
// corrupt, an overflowing activation on an out-of-distribution input — would
// silently poison every downstream sample. The guards validate each step's
// outputs (flavor/single-LSTM softmax logits and sampling weights, lifetime
// hazards) and react per policy:
//
//   off       Legacy behavior: no checks (the sampler may abort on NaN).
//   abort     Throw GuardViolation; the CLI maps it to exit code 6. Default:
//             a month-scale run should fail loudly and resumably, not emit
//             garbage.
//   resample  Sanitize the offending distribution (drop non-finite /
//             negative weights, clamp hazards; degrade to uniform if nothing
//             valid remains) and keep sampling.
//   fallback  Re-run the step through the reference (non-packed) network
//             route from a pre-step state snapshot. Since the packed and
//             reference routes are bitwise-identical on healthy inputs
//             (PR 4's contract), a transient fast-path fault recovers to the
//             exact trace an unfaulted run would produce. Escalates to
//             GuardViolation if the reference route is unhealthy too.
//
// The checks consume no RNG draws and, on healthy outputs, change nothing —
// guarded and unguarded runs are bitwise-identical. Violations and
// reactions are counted under gen.guard.* (docs/OBSERVABILITY.md);
// CLOUDGEN_FAULT=gen_nan_logit exercises every policy deterministically.
#ifndef SRC_CORE_GEN_GUARD_H_
#define SRC_CORE_GEN_GUARD_H_

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cloudgen {

enum class GuardPolicy : int {
  kOff = 0,
  kAbort = 1,
  kResample = 2,
  kFallback = 3,
};

// Parses "off|abort|resample|fallback" (the CLI --guard values).
bool ParseGuardPolicy(std::string_view name, GuardPolicy* policy);
const char* GuardPolicyName(GuardPolicy policy);

// Thrown on --guard=abort (or when a fallback recompute is unhealthy too).
// Propagates through ThreadPool::ParallelFor's exception capture to the
// caller; the CLI converts it to exit code 6.
class GuardViolation : public std::runtime_error {
 public:
  explicit GuardViolation(const std::string& message)
      : std::runtime_error(message) {}
};

// One pass over a step's raw logits.
bool AllFinite(const float* values, size_t n);

// Sampling weights must be finite, non-negative, and sum to something
// positive (Rng::Categorical normalizes internally).
bool ValidWeights(const std::vector<double>& weights);

// Discrete-time hazards must be finite probabilities in [0, 1].
bool ValidHazard(const std::vector<double>& hazard);

// Repairs for --guard=resample. SanitizeWeights zeroes non-finite/negative
// entries and degrades to uniform when nothing positive survives;
// SanitizeHazard clamps to [0, 1] with non-finite entries pinned to 1
// (pessimistic: the job terminates in that bin).
void SanitizeWeights(std::vector<double>* weights);
void SanitizeHazard(std::vector<double>* hazard);

// gen.guard.* counter bumps (cached registry handles; see metrics.h).
void CountGuardViolation();
void CountGuardResample();
void CountGuardFallback();

// Counts gen.guard.aborts and throws GuardViolation(message).
[[noreturn]] void GuardAbort(const std::string& message);

}  // namespace cloudgen

#endif  // SRC_CORE_GEN_GUARD_H_
