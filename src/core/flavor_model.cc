#include "src/core/flavor_model.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>

#include "src/core/gen_checkpoint.h"
#include "src/core/trainer.h"
#include "src/nn/activations.h"
#include "src/nn/losses.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_span.h"
#include "src/util/cancel.h"
#include "src/util/check.h"
#include "src/util/fault.h"
#include "src/util/log.h"
#include "src/util/rng.h"
#include "src/util/sealed_file.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

namespace cloudgen {

namespace {

// Expands a factored concat row [u | v] (see src/nn/factored_softmax.h) into
// per-token log-probabilities:
//   log p(t) = log softmax_C(u)[c(t)] + log softmax_{slice(c(t))}(v)[t].
// Used by teacher-forced evaluation and NextTokenProbs; generation samples
// the two levels directly and never builds this vector.
void FactoredLogProbs(const FactoredVocabMap& map, const float* row,
                      std::vector<double>* lp) {
  const size_t num_clusters = map.NumClusters();
  const size_t num_tokens = map.NumTokens();
  lp->resize(num_tokens);
  double max_u = row[0];
  for (size_t c = 1; c < num_clusters; ++c) {
    max_u = std::max(max_u, static_cast<double>(row[c]));
  }
  double su = 0.0;
  for (size_t c = 0; c < num_clusters; ++c) {
    su += std::exp(static_cast<double>(row[c]) - max_u);
  }
  const double log_su = std::log(su);
  const float* v = row + num_clusters;
  for (size_t c = 0; c < num_clusters; ++c) {
    const size_t begin = map.SliceBegin(c);
    const size_t width = map.SliceWidth(c);
    double max_v = v[begin];
    for (size_t j = 1; j < width; ++j) {
      max_v = std::max(max_v, static_cast<double>(v[begin + j]));
    }
    double sv = 0.0;
    for (size_t j = 0; j < width; ++j) {
      sv += std::exp(static_cast<double>(v[begin + j]) - max_v);
    }
    const double cluster_lp = (static_cast<double>(row[c]) - max_u) - log_su;
    const double log_sv = std::log(sv);
    for (size_t j = 0; j < width; ++j) {
      (*lp)[begin + j] =
          cluster_lp + (static_cast<double>(v[begin + j]) - max_v) - log_sv;
    }
  }
}

}  // namespace

FlavorStream BuildFlavorStream(const Trace& trace, int history_days) {
  FlavorStream stream;
  const std::vector<PeriodBatches> periods = BuildBatches(trace);
  const int64_t start_day = trace.WindowStart() / kPeriodsPerDay;
  for (const PeriodBatches& period : periods) {
    const PeriodCalendar cal = DecomposePeriod(period.period);
    const int doh =
        std::clamp(static_cast<int>(cal.day_index - start_day) + 1, 1, history_days);
    for (const Batch& batch : period.batches) {
      for (size_t idx : batch.job_indices) {
        stream.tokens.push_back(trace.Jobs()[idx].flavor);
        stream.periods.push_back(period.period);
        stream.doh_days.push_back(doh);
      }
      stream.tokens.push_back(static_cast<int32_t>(trace.NumFlavors()));  // EOB.
      stream.periods.push_back(period.period);
      stream.doh_days.push_back(doh);
    }
  }
  return stream;
}

size_t ArgmaxExcluding(const std::vector<double>& weights, size_t exclude) {
  CG_CHECK(weights.size() >= 2 || exclude >= weights.size());
  size_t best = exclude == 0 ? 1 : 0;
  for (size_t c = best + 1; c < weights.size(); ++c) {
    if (c != exclude && weights[c] > weights[best]) {
      best = c;
    }
  }
  return best;
}

FlavorStream FlavorLstmModel::BuildStream(const Trace& trace) const {
  CG_CHECK(encoder_ != nullptr);
  return BuildFlavorStream(trace, encoder_->Temporal().HistoryDays());
}

const FlavorVocab& FlavorLstmModel::Vocab() const {
  CG_CHECK(encoder_ != nullptr);
  return encoder_->Vocab();
}

Status FlavorLstmModel::Train(const Trace& train, int history_days,
                              const FlavorModelConfig& config, Rng& rng) {
  config_ = config;
  encoder_ = std::make_unique<FlavorInputEncoder>(FlavorVocab(train.NumFlavors()),
                                                  TemporalFeatureEncoder(history_days));
  SequenceNetworkConfig net_config;
  net_config.input_dim = encoder_->Dim();
  net_config.hidden_dim = config.hidden_dim;
  net_config.num_layers = config.num_layers;
  net_config.output_dim = encoder_->Vocab().NumTokens();
  net_config.factored_clusters = config.factored_clusters;
  network_ = SequenceNetwork(net_config, rng);

  const FlavorStream stream = BuildFlavorStream(train, history_days);
  if (stream.tokens.empty()) {
    return InvalidArgumentError("flavor training stream is empty");
  }

  AdamConfig adam_config;
  adam_config.learning_rate = config.learning_rate;
  adam_config.weight_decay = config.weight_decay;
  adam_config.clip_norm = config.clip_norm;
  Adam optimizer(network_.Params(), network_.Grads(), adam_config);

  const SequenceBatching batching(stream.tokens.size(),
                                  {config.seq_len, config.batch_size});
  const size_t eob = encoder_->Vocab().EobToken();
  const size_t dim = encoder_->Dim();

  std::vector<Matrix> inputs(batching.SeqLen());
  std::vector<std::vector<int32_t>> targets(batching.SeqLen());
  DataParallelBptt bptt(&network_, batching.BatchSize());
  const auto shard_loss = [&](size_t r0, size_t r1, const std::vector<Matrix>& logits,
                              std::vector<Matrix>* dlogits) {
    // The loss normalizes by its own (shard-local) counted-row total, so each
    // step is rescaled by counted_shard/counted_all to land on the exact
    // full-minibatch normalization serial training uses. The callback runs
    // concurrently across shards but only touches shard-local buffers.
    const float inv_steps = 1.0f / static_cast<float>(batching.SeqLen());
    double sum = 0.0;
    std::vector<int32_t> shard_targets;
    for (size_t t = 0; t < batching.SeqLen(); ++t) {
      size_t counted_all = 0;
      size_t counted_shard = 0;
      for (size_t b = 0; b < batching.BatchSize(); ++b) {
        if (targets[t][b] == kIgnoreTarget) {
          continue;
        }
        ++counted_all;
        counted_shard += static_cast<size_t>(b >= r0 && b < r1);
      }
      shard_targets.assign(targets[t].begin() + static_cast<ptrdiff_t>(r0),
                           targets[t].begin() + static_cast<ptrdiff_t>(r1));
      const double mean =
          network_.IsFactored()
              ? FactoredSoftmaxCrossEntropy(logits[t], shard_targets,
                                            network_.FactoredHead().Map(),
                                            &(*dlogits)[t])
              : SoftmaxCrossEntropy(logits[t], shard_targets, &(*dlogits)[t]);
      const float f = counted_all == 0
                          ? 0.0f
                          : static_cast<float>(counted_shard) /
                                static_cast<float>(counted_all) * inv_steps;
      (*dlogits)[t].Scale(f);
      sum += mean * static_cast<double>(f);
    }
    return sum;
  };

  ResilientTrainLoop loop(kCheckpointStageFlavor, config.recovery, config.learning_rate,
                          config.lr_decay, &network_, &optimizer, &rng);
  // Per-epoch telemetry (observe-only: never feeds back into training).
  obs::Registry& registry = obs::Registry::Global();
  obs::Series& loss_series = registry.GetSeries("train.flavor.loss");
  obs::Series& grad_series = registry.GetSeries("train.flavor.grad_norm");
  obs::Series& lr_series = registry.GetSeries("train.flavor.lr");
  obs::Series& rate_series = registry.GetSeries("train.flavor.rows_per_sec");
  obs::Counter& minibatch_counter = registry.GetCounter("train.flavor.minibatches");
  obs::Histogram& epoch_hist = registry.GetHistogram("time.train_epoch_ms");

  CG_SPAN("train.flavor");
  Timer timer;
  size_t epoch = loop.Begin();
  while (epoch < config.epochs) {
    CG_SPAN("train.flavor_epoch");
    ScopedTimer epoch_timer(&epoch_hist);
    optimizer.SetLearningRate(loop.LearningRate());
    double epoch_loss = 0.0;
    size_t epoch_minibatches = 0;
    bool diverged = false;
    for (size_t mb : batching.EpochOrder(rng)) {
      // Assemble the minibatch.
      for (size_t t = 0; t < batching.SeqLen(); ++t) {
        inputs[t].Resize(batching.BatchSize(), dim);
        targets[t].assign(batching.BatchSize(), kIgnoreTarget);
        for (size_t b = 0; b < batching.BatchSize(); ++b) {
          const size_t step = batching.StepIndex(mb, t, b);
          const size_t prev = step == 0 ? eob : static_cast<size_t>(stream.tokens[step - 1]);
          encoder_->EncodeInto(prev, stream.periods[step], stream.doh_days[step],
                               inputs[t].Row(b));
          targets[t][b] = stream.tokens[step];
        }
      }
      const double loss = bptt.Run(inputs, shard_loss);
      MaybeInjectGradientFault(&network_);
      optimizer.Step();
      if (!std::isfinite(loss) || !std::isfinite(optimizer.LastGradNorm())) {
        // The update that just happened is contaminated; bail out of the
        // epoch so the watchdog can roll the whole state back.
        diverged = true;
        break;
      }
      epoch_loss += loss;
      ++epoch_minibatches;
      minibatch_counter.Add(1);
    }
    const double mean_loss = epoch_loss / std::max<size_t>(1, epoch_minibatches);
    const float epoch_lr = loop.LearningRate();
    switch (loop.FinishEpoch(epoch, config.epochs, mean_loss, diverged)) {
      case ResilientTrainLoop::Verdict::kRetryEpoch:
        continue;
      case ResilientTrainLoop::Verdict::kStop:
        network_.Prepack();
        return OkStatus();
      case ResilientTrainLoop::Verdict::kFailed:
        return loop.status().WithContext("flavor LSTM training");
      case ResilientTrainLoop::Verdict::kNextEpoch:
        break;
    }
    const double epoch_seconds = epoch_timer.ElapsedSeconds();
    const double rows =
        static_cast<double>(epoch_minibatches * batching.BatchSize() * batching.SeqLen());
    loss_series.Append(static_cast<double>(epoch), mean_loss);
    grad_series.Append(static_cast<double>(epoch), optimizer.LastGradNorm());
    lr_series.Append(static_cast<double>(epoch), static_cast<double>(epoch_lr));
    rate_series.Append(static_cast<double>(epoch),
                       epoch_seconds > 0.0 ? rows / epoch_seconds : 0.0);
    CG_LOGF_INFO("flavor LSTM epoch %zu/%zu: loss=%.4f (%.1fs elapsed)", epoch + 1,
                 config.epochs, mean_loss, timer.ElapsedSeconds());
    ++epoch;
  }
  // Parameters are final: build the packed inference weights once.
  network_.Prepack();
  return OkStatus();
}

FlavorLstmModel::EvalResult FlavorLstmModel::Evaluate(const Trace& test) const {
  CG_CHECK(encoder_ != nullptr);
  const FlavorStream stream = BuildStream(test);
  EvalResult result;
  if (stream.tokens.empty()) {
    return result;
  }
  const size_t eob = encoder_->Vocab().EobToken();
  // Single stateful pass over the full stream (no truncation) so every step
  // is scored exactly once, conditioned on the entire history.
  LstmState state = network_.MakeState(1);
  Matrix input(1, encoder_->Dim());
  Matrix logits;
  std::vector<double> factored_lp;
  double nll = 0.0;
  size_t errors = 0;
  double nll_flavor = 0.0;
  size_t errors_flavor = 0;
  size_t flavor_steps = 0;
  for (size_t step = 0; step < stream.tokens.size(); ++step) {
    const size_t prev = step == 0 ? eob : static_cast<size_t>(stream.tokens[step - 1]);
    encoder_->EncodeInto(prev, stream.periods[step], stream.doh_days[step], input.Row(0));
    network_.StepLogits(input, &state, &logits);

    double log_prob = 0.0;
    bool wrong = false;
    if (network_.IsFactored()) {
      // Factored heads emit the concat [u | v]; expand to token log-probs.
      FactoredLogProbs(network_.FactoredHead().Map(), logits.Row(0), &factored_lp);
      size_t argmax = 0;
      for (size_t c = 1; c < factored_lp.size(); ++c) {
        if (factored_lp[c] > factored_lp[argmax]) {
          argmax = c;
        }
      }
      log_prob = factored_lp[stream.tokens[step]];
      wrong = argmax != static_cast<size_t>(stream.tokens[step]);
    } else {
      // NLL and argmax from the logits row.
      const float* row = logits.Row(0);
      const size_t classes = logits.Cols();
      float max_v = row[0];
      size_t argmax = 0;
      for (size_t c = 1; c < classes; ++c) {
        if (row[c] > max_v) {
          max_v = row[c];
          argmax = c;
        }
      }
      double sum = 0.0;
      for (size_t c = 0; c < classes; ++c) {
        sum += std::exp(static_cast<double>(row[c] - max_v));
      }
      log_prob = static_cast<double>(row[stream.tokens[step]] - max_v) - std::log(sum);
      wrong = argmax != static_cast<size_t>(stream.tokens[step]);
    }
    nll -= log_prob;
    if (wrong) {
      ++errors;
    }
    if (static_cast<size_t>(stream.tokens[step]) != eob) {
      nll_flavor -= log_prob;
      if (wrong) {
        ++errors_flavor;
      }
      ++flavor_steps;
    }
  }
  result.steps = stream.tokens.size();
  result.nll = nll / static_cast<double>(result.steps);
  result.one_best_err = static_cast<double>(errors) / static_cast<double>(result.steps);
  result.flavor_steps = flavor_steps;
  if (flavor_steps > 0) {
    result.nll_flavor_only = nll_flavor / static_cast<double>(flavor_steps);
    result.one_best_err_flavor_only =
        static_cast<double>(errors_flavor) / static_cast<double>(flavor_steps);
  }
  return result;
}

std::vector<double> FlavorLstmModel::NextTokenProbs(const FlavorStream& stream,
                                                    size_t upto_step) const {
  CG_CHECK(encoder_ != nullptr);
  CG_CHECK(upto_step <= stream.tokens.size());
  const size_t eob = encoder_->Vocab().EobToken();
  LstmState state = network_.MakeState(1);
  Matrix input(1, encoder_->Dim());
  Matrix logits;
  for (size_t step = 0; step <= upto_step; ++step) {
    const size_t prev = step == 0 ? eob : static_cast<size_t>(stream.tokens[step - 1]);
    const size_t ref = std::min(step, stream.tokens.size() - 1);
    encoder_->EncodeInto(prev, stream.periods[ref], stream.doh_days[ref], input.Row(0));
    network_.StepLogits(input, &state, &logits);
  }
  std::vector<double> probs;
  if (network_.IsFactored()) {
    FactoredLogProbs(network_.FactoredHead().Map(), logits.Row(0), &probs);
    for (double& p : probs) {
      p = std::exp(p);
    }
    return probs;
  }
  const double sum = MaxShiftedExp(logits.Row(0), logits.Cols(), &probs);
  for (double& p : probs) {
    p /= sum;
  }
  return probs;
}

FlavorLstmModel::Generator::Generator(const FlavorLstmModel& model, int doh_day,
                                      double eob_scale, GuardPolicy guard)
    : model_(model),
      doh_day_(doh_day),
      eob_scale_(eob_scale),
      guard_(guard),
      state_(model.network_.MakeState(1)),
      prev_token_(model.Vocab().EobToken()),
      input_(1, model.encoder_->Dim()) {
  CG_CHECK(eob_scale > 0.0);
}

void FlavorLstmModel::Generator::SaveState(std::ostream& out) const {
  const auto prev = static_cast<uint64_t>(prev_token_);
  out.write(reinterpret_cast<const char*>(&prev), sizeof(prev));
  WriteLstmState(out, state_);
}

void FlavorLstmModel::Generator::LoadState(std::istream& in) {
  uint64_t prev = 0;
  in.read(reinterpret_cast<char*>(&prev), sizeof(prev));
  CG_CHECK_MSG(static_cast<bool>(in), "truncated flavor generator state");
  prev_token_ = static_cast<size_t>(prev);
  ReadLstmState(in, &state_);
}

std::vector<std::vector<int32_t>> FlavorLstmModel::Generator::GeneratePeriod(
    int64_t period, int64_t n_batches, Rng& rng, size_t max_jobs,
    const CancelToken* cancel) {
  StartPeriod(period, n_batches, max_jobs);
  while (PeriodActive()) {
    if (cancel != nullptr && cancel->Cancelled()) {
      break;  // Partial period: the caller discards the whole trace.
    }
    StepToken(rng);
  }
  return TakeBatches();
}

void FlavorLstmModel::Generator::StartPeriod(int64_t period, int64_t n_batches,
                                             size_t max_jobs) {
  period_ = period;
  n_batches_ = n_batches;
  max_jobs_ = max_jobs;
  total_jobs_ = 0;
  batches_.clear();
  period_active_ = false;
  if (n_batches <= 0) {
    return;
  }
  batches_.emplace_back();
  period_active_ = true;
}

void FlavorLstmModel::Generator::StepToken(Rng& rng) {
  CG_DCHECK(period_active_);
  // Hot-path metric handle, registered once per process (see metrics.h).
  static obs::Histogram& step_hist =
      obs::Registry::Global().GetHistogram("gen.step_ns", obs::StepLatencyBucketsNs());
  BeginStep(input_.Row(0));
  const auto step_start = std::chrono::steady_clock::now();
  if (model_.network_.IsFactored()) {
    // Factored heads never materialize logits: recurrent step only, then
    // two-level sampling straight from the hidden state.
    model_.network_.StepRecurrent(input_, &state_, &ws_);
  } else {
    model_.network_.StepLogits(input_, &state_, &logits_, &ws_);
  }
  step_hist.Observe(static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                            std::chrono::steady_clock::now() - step_start)
                                            .count()));
  ConsumeStep(rng);
}

void FlavorLstmModel::Generator::BeginStep(float* x_row) {
  CG_DCHECK(period_active_);
  // The step input always lands in input_ as well: the --guard=fallback
  // re-run inside ConsumeStep replays the step from it.
  float* own = input_.Row(0);
  model_.encoder_->EncodeInto(prev_token_, period_, doh_day_, own);
  if (guard_ == GuardPolicy::kFallback) {
    fallback_state_ = state_;  // Same-shape copy: no steady-state allocation.
  }
  if (x_row != own) {
    std::copy(own, own + input_.Cols(), x_row);
  }
}

void FlavorLstmModel::Generator::ConsumeStep(Rng& rng) {
  CG_DCHECK(period_active_);
  // Hot-path metric handle, registered once per process (see metrics.h).
  static obs::Counter& token_counter = obs::Registry::Global().GetCounter("gen.tokens");
  token_counter.Add(1);
  const size_t eob = model_.Vocab().EobToken();
  size_t token;
  if (model_.network_.IsFactored()) {
    token = SampleFactoredToken(rng);
  } else {
    if (FaultInjector::Global().ShouldInject(FaultKind::kGenNanLogit)) {
      logits_.Row(0)[0] = std::numeric_limits<float>::quiet_NaN();
    }
    if (guard_ != GuardPolicy::kOff && !AllFinite(logits_.Row(0), logits_.Cols())) {
      CountGuardViolation();
      if (guard_ == GuardPolicy::kAbort) {
        GuardAbort(StrFormat("flavor logits non-finite at period %lld",
                             static_cast<long long>(period_)));
      }
      if (guard_ == GuardPolicy::kFallback) {
        // Redo the step through the reference (non-packed) route from the
        // pre-step snapshot; on healthy weights it is bitwise-identical to
        // the fast path, so the recovered trace matches an unfaulted run.
        state_ = fallback_state_;
        model_.network_.StepLogits(input_, &state_, &logits_);
        if (!AllFinite(logits_.Row(0), logits_.Cols())) {
          GuardAbort("flavor logits non-finite on the reference route too");
        }
        CountGuardFallback();
      }
      // kResample: keep going; the weights are sanitized below.
    }

    // Sample from the softmax distribution (unnormalized weights; Categorical
    // normalizes internally).
    MaxShiftedExp(logits_.Row(0), logits_.Cols(), &ws_.probs);
    ws_.probs[eob] *= eob_scale_;  // What-if batch-size modification (footnote 5).
    if (guard_ == GuardPolicy::kResample && !ValidWeights(ws_.probs)) {
      SanitizeWeights(&ws_.probs);
      CountGuardResample();
    }
    token = rng.Categorical(ws_.probs);

    // Safety: an empty batch is not representable in the data (every batch
    // has >= 1 job), so re-interpret an immediate EOB as the most likely
    // flavor instead — explicitly excluding EOB wherever it sits in the
    // vocabulary, rather than assuming it is the last token.
    if (token == eob && batches_.back().empty()) {
      token = ArgmaxExcluding(ws_.probs, eob);
    }
  }
  AdvanceToken(token, eob);
}

void FlavorLstmModel::Generator::AdvanceToken(size_t token, size_t eob) {
  if (token == eob) {
    if (static_cast<int64_t>(batches_.size()) == n_batches_) {
      prev_token_ = token;
      period_active_ = false;
      return;
    }
    batches_.emplace_back();
  } else {
    batches_.back().push_back(static_cast<int32_t>(token));
    if (++total_jobs_ >= max_jobs_) {
      obs::Registry::Global().GetCounter("gen.period_truncations").Add(1);
      CG_LOG_WARN("flavor generator hit the per-period job cap; truncating period");
      // Matches the pre-split loop's `break`: the capped token is kept but
      // never fed back, so resuming state is identical.
      period_active_ = false;
      return;
    }
  }
  prev_token_ = token;
}

size_t FlavorLstmModel::Generator::SampleFactoredToken(Rng& rng) {
  const ClassFactoredHead& head = model_.network_.FactoredHead();
  const FactoredVocabMap& map = head.Map();
  const size_t eob = model_.Vocab().EobToken();
  const size_t num_clusters = map.NumClusters();
  const float* h = state_.h.back().Row(0);

  // Level 1: cluster logits from the hidden state. `resize` only reshapes;
  // vector capacity persists, so the steady state allocates nothing.
  ws_.flogits.resize(num_clusters);
  ws_.facc.resize(num_clusters);
  head.ClusterLogitsInto(h, ws_.facc.data(), ws_.flogits.data());
  if (FaultInjector::Global().ShouldInject(FaultKind::kGenNanLogit)) {
    ws_.flogits[0] = std::numeric_limits<float>::quiet_NaN();
  }
  if (guard_ != GuardPolicy::kOff && !AllFinite(ws_.flogits.data(), num_clusters)) {
    CountGuardViolation();
    if (guard_ == GuardPolicy::kAbort) {
      GuardAbort(StrFormat("flavor cluster logits non-finite at period %lld",
                           static_cast<long long>(period_)));
    }
    if (guard_ == GuardPolicy::kFallback) {
      // Redo the recurrent step on the reference route and recompute the
      // cluster logits; no RNG draw has been consumed yet.
      state_ = fallback_state_;
      model_.network_.StepRecurrent(input_, &state_);
      h = state_.h.back().Row(0);
      head.ClusterLogitsInto(h, ws_.facc.data(), ws_.flogits.data());
      if (!AllFinite(ws_.flogits.data(), num_clusters)) {
        GuardAbort("flavor cluster logits non-finite on the reference route too");
      }
      CountGuardFallback();
    }
    // kResample: the cluster weights are sanitized below.
  }
  MaxShiftedExp(ws_.flogits.data(), num_clusters, &ws_.cweights);

  const size_t eob_cluster = map.ClusterOf(eob);
  if (eob_scale_ != 1.0) {
    // Exact footnote-5 adjustment under the factorization: scaling the EOB
    // token's unnormalized weight by s multiplies its cluster's total mass
    // by (1 - p(eob|c)) + s * p(eob|c), and the member weight inside the
    // slice by s (applied at level 2 below). Corrupt slice logits make the
    // factor NaN; that weight is then caught by sanitize/Categorical's
    // degenerate fallback, never indexed out of range.
    const size_t begin = map.SliceBegin(eob_cluster);
    const size_t width = map.SliceWidth(eob_cluster);
    ws_.flogits.resize(std::max(width, num_clusters));
    ws_.facc.resize(std::max(width, num_clusters));
    head.MemberSliceLogitsInto(h, eob_cluster, ws_.facc.data(), ws_.flogits.data());
    const double vsum = MaxShiftedExp(ws_.flogits.data(), width, &ws_.scratch);
    const double p_eob = ws_.scratch[eob - begin] / vsum;
    ws_.cweights[eob_cluster] *= 1.0 - p_eob + eob_scale_ * p_eob;
  }
  if (guard_ == GuardPolicy::kResample && !ValidWeights(ws_.cweights)) {
    SanitizeWeights(&ws_.cweights);
    CountGuardResample();
  }
  const size_t cluster = rng.Categorical(ws_.cweights);

  // Level 2: member softmax over the drawn cluster's slice.
  const size_t begin = map.SliceBegin(cluster);
  const size_t width = map.SliceWidth(cluster);
  ws_.flogits.resize(std::max(width, num_clusters));
  ws_.facc.resize(std::max(width, num_clusters));
  head.MemberSliceLogitsInto(h, cluster, ws_.facc.data(), ws_.flogits.data());
  if (guard_ != GuardPolicy::kOff && !AllFinite(ws_.flogits.data(), width)) {
    // A corrupt slice under a healthy cluster row: the cluster draw is
    // already consumed, so a fallback re-run cannot replay it — escalate
    // under both abort and fallback; resample sanitizes below.
    CountGuardViolation();
    if (guard_ != GuardPolicy::kResample) {
      GuardAbort(StrFormat("flavor member logits non-finite at period %lld",
                           static_cast<long long>(period_)));
    }
  }
  MaxShiftedExp(ws_.flogits.data(), width, &ws_.probs);
  if (cluster == eob_cluster) {
    ws_.probs[eob - begin] *= eob_scale_;
  }
  if (guard_ == GuardPolicy::kResample && !ValidWeights(ws_.probs)) {
    SanitizeWeights(&ws_.probs);
    CountGuardResample();
  }
  size_t token = begin + rng.Categorical(ws_.probs);

  // Empty-batch EOB fallback (same invariant as the dense path): emit the
  // most likely non-EOB token under the full two-level distribution. Rare
  // path, O(C + K); consumes no draws, like the dense ArgmaxExcluding.
  if (token == eob && batches_.back().empty()) {
    ws_.flogits.resize(num_clusters);
    head.ClusterLogitsInto(h, ws_.facc.data(), ws_.flogits.data());
    const double usum = MaxShiftedExp(ws_.flogits.data(), num_clusters, &ws_.cweights);
    size_t best = eob == 0 ? 1 : 0;
    double best_w = -1.0;
    for (size_t c = 0; c < num_clusters; ++c) {
      const size_t b0 = map.SliceBegin(c);
      const size_t w = map.SliceWidth(c);
      ws_.flogits.resize(std::max(w, num_clusters));
      ws_.facc.resize(std::max(w, num_clusters));
      head.MemberSliceLogitsInto(h, c, ws_.facc.data(), ws_.flogits.data());
      const double vsum = MaxShiftedExp(ws_.flogits.data(), w, &ws_.scratch);
      const double pc = ws_.cweights[c] / usum;
      for (size_t j = 0; j < w; ++j) {
        if (b0 + j == eob) {
          continue;
        }
        const double weight = pc * (ws_.scratch[j] / vsum);
        if (weight > best_w) {  // NaN weights never win.
          best_w = weight;
          best = b0 + j;
        }
      }
    }
    token = best;
  }
  return token;
}

Status FlavorLstmModel::SaveToFile(const std::string& path) const {
  if (!IsTrained()) {
    return FailedPreconditionError("flavor model is not trained");
  }
  std::ostringstream payload(std::ios::binary);
  network_.Save(payload);
  CG_RETURN_IF_ERROR(WriteSealedFile(path, kSealFlavorModel, 0, std::move(payload).str()));
  return OkStatus();
}

Status FlavorLstmModel::LoadFromFile(const std::string& path, int history_days,
                                     size_t num_flavors) {
  std::string payload;
  CG_RETURN_IF_ERROR(ReadSealedFile(path, kSealFlavorModel, nullptr, &payload)
                         .WithContext("flavor model"));
  // The CRC above guarantees payload integrity; Load's internal invariant
  // checks cannot fire on environmental corruption past this point.
  std::istringstream in(payload, std::ios::binary);
  network_.Load(in);
  encoder_ = std::make_unique<FlavorInputEncoder>(FlavorVocab(num_flavors),
                                                  TemporalFeatureEncoder(history_days));
  if (network_.Config().input_dim != encoder_->Dim()) {
    encoder_.reset();
    return FailedPreconditionError(StrFormat(
        "flavor model %s input dim %zu does not match the encoder dim (%d flavors)",
        path.c_str(), network_.Config().input_dim, static_cast<int>(num_flavors)));
  }
  // Loaded parameters are final: build the packed inference weights once.
  network_.Prepack();
  return OkStatus();
}

}  // namespace cloudgen
