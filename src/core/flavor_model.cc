#include "src/core/flavor_model.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>

#include "src/core/gen_checkpoint.h"
#include "src/core/trainer.h"
#include "src/nn/activations.h"
#include "src/nn/losses.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_span.h"
#include "src/util/cancel.h"
#include "src/util/check.h"
#include "src/util/fault.h"
#include "src/util/log.h"
#include "src/util/rng.h"
#include "src/util/sealed_file.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

namespace cloudgen {

FlavorStream BuildFlavorStream(const Trace& trace, int history_days) {
  FlavorStream stream;
  const std::vector<PeriodBatches> periods = BuildBatches(trace);
  const int64_t start_day = trace.WindowStart() / kPeriodsPerDay;
  for (const PeriodBatches& period : periods) {
    const PeriodCalendar cal = DecomposePeriod(period.period);
    const int doh =
        std::clamp(static_cast<int>(cal.day_index - start_day) + 1, 1, history_days);
    for (const Batch& batch : period.batches) {
      for (size_t idx : batch.job_indices) {
        stream.tokens.push_back(trace.Jobs()[idx].flavor);
        stream.periods.push_back(period.period);
        stream.doh_days.push_back(doh);
      }
      stream.tokens.push_back(static_cast<int32_t>(trace.NumFlavors()));  // EOB.
      stream.periods.push_back(period.period);
      stream.doh_days.push_back(doh);
    }
  }
  return stream;
}

size_t ArgmaxExcluding(const std::vector<double>& weights, size_t exclude) {
  CG_CHECK(weights.size() >= 2 || exclude >= weights.size());
  size_t best = exclude == 0 ? 1 : 0;
  for (size_t c = best + 1; c < weights.size(); ++c) {
    if (c != exclude && weights[c] > weights[best]) {
      best = c;
    }
  }
  return best;
}

FlavorStream FlavorLstmModel::BuildStream(const Trace& trace) const {
  CG_CHECK(encoder_ != nullptr);
  return BuildFlavorStream(trace, encoder_->Temporal().HistoryDays());
}

const FlavorVocab& FlavorLstmModel::Vocab() const {
  CG_CHECK(encoder_ != nullptr);
  return encoder_->Vocab();
}

Status FlavorLstmModel::Train(const Trace& train, int history_days,
                              const FlavorModelConfig& config, Rng& rng) {
  config_ = config;
  encoder_ = std::make_unique<FlavorInputEncoder>(FlavorVocab(train.NumFlavors()),
                                                  TemporalFeatureEncoder(history_days));
  SequenceNetworkConfig net_config;
  net_config.input_dim = encoder_->Dim();
  net_config.hidden_dim = config.hidden_dim;
  net_config.num_layers = config.num_layers;
  net_config.output_dim = encoder_->Vocab().NumTokens();
  network_ = SequenceNetwork(net_config, rng);

  const FlavorStream stream = BuildFlavorStream(train, history_days);
  if (stream.tokens.empty()) {
    return InvalidArgumentError("flavor training stream is empty");
  }

  AdamConfig adam_config;
  adam_config.learning_rate = config.learning_rate;
  adam_config.weight_decay = config.weight_decay;
  adam_config.clip_norm = config.clip_norm;
  Adam optimizer(network_.Params(), network_.Grads(), adam_config);

  const SequenceBatching batching(stream.tokens.size(),
                                  {config.seq_len, config.batch_size});
  const size_t eob = encoder_->Vocab().EobToken();
  const size_t dim = encoder_->Dim();

  std::vector<Matrix> inputs(batching.SeqLen());
  std::vector<std::vector<int32_t>> targets(batching.SeqLen());
  DataParallelBptt bptt(&network_, batching.BatchSize());
  const auto shard_loss = [&](size_t r0, size_t r1, const std::vector<Matrix>& logits,
                              std::vector<Matrix>* dlogits) {
    // The loss normalizes by its own (shard-local) counted-row total, so each
    // step is rescaled by counted_shard/counted_all to land on the exact
    // full-minibatch normalization serial training uses. The callback runs
    // concurrently across shards but only touches shard-local buffers.
    const float inv_steps = 1.0f / static_cast<float>(batching.SeqLen());
    double sum = 0.0;
    std::vector<int32_t> shard_targets;
    for (size_t t = 0; t < batching.SeqLen(); ++t) {
      size_t counted_all = 0;
      size_t counted_shard = 0;
      for (size_t b = 0; b < batching.BatchSize(); ++b) {
        if (targets[t][b] == kIgnoreTarget) {
          continue;
        }
        ++counted_all;
        counted_shard += static_cast<size_t>(b >= r0 && b < r1);
      }
      shard_targets.assign(targets[t].begin() + static_cast<ptrdiff_t>(r0),
                           targets[t].begin() + static_cast<ptrdiff_t>(r1));
      const double mean = SoftmaxCrossEntropy(logits[t], shard_targets, &(*dlogits)[t]);
      const float f = counted_all == 0
                          ? 0.0f
                          : static_cast<float>(counted_shard) /
                                static_cast<float>(counted_all) * inv_steps;
      (*dlogits)[t].Scale(f);
      sum += mean * static_cast<double>(f);
    }
    return sum;
  };

  ResilientTrainLoop loop(kCheckpointStageFlavor, config.recovery, config.learning_rate,
                          config.lr_decay, &network_, &optimizer, &rng);
  // Per-epoch telemetry (observe-only: never feeds back into training).
  obs::Registry& registry = obs::Registry::Global();
  obs::Series& loss_series = registry.GetSeries("train.flavor.loss");
  obs::Series& grad_series = registry.GetSeries("train.flavor.grad_norm");
  obs::Series& lr_series = registry.GetSeries("train.flavor.lr");
  obs::Series& rate_series = registry.GetSeries("train.flavor.rows_per_sec");
  obs::Counter& minibatch_counter = registry.GetCounter("train.flavor.minibatches");
  obs::Histogram& epoch_hist = registry.GetHistogram("time.train_epoch_ms");

  CG_SPAN("train.flavor");
  Timer timer;
  size_t epoch = loop.Begin();
  while (epoch < config.epochs) {
    CG_SPAN("train.flavor_epoch");
    ScopedTimer epoch_timer(&epoch_hist);
    optimizer.SetLearningRate(loop.LearningRate());
    double epoch_loss = 0.0;
    size_t epoch_minibatches = 0;
    bool diverged = false;
    for (size_t mb : batching.EpochOrder(rng)) {
      // Assemble the minibatch.
      for (size_t t = 0; t < batching.SeqLen(); ++t) {
        inputs[t].Resize(batching.BatchSize(), dim);
        targets[t].assign(batching.BatchSize(), kIgnoreTarget);
        for (size_t b = 0; b < batching.BatchSize(); ++b) {
          const size_t step = batching.StepIndex(mb, t, b);
          const size_t prev = step == 0 ? eob : static_cast<size_t>(stream.tokens[step - 1]);
          encoder_->EncodeInto(prev, stream.periods[step], stream.doh_days[step],
                               inputs[t].Row(b));
          targets[t][b] = stream.tokens[step];
        }
      }
      const double loss = bptt.Run(inputs, shard_loss);
      MaybeInjectGradientFault(&network_);
      optimizer.Step();
      if (!std::isfinite(loss) || !std::isfinite(optimizer.LastGradNorm())) {
        // The update that just happened is contaminated; bail out of the
        // epoch so the watchdog can roll the whole state back.
        diverged = true;
        break;
      }
      epoch_loss += loss;
      ++epoch_minibatches;
      minibatch_counter.Add(1);
    }
    const double mean_loss = epoch_loss / std::max<size_t>(1, epoch_minibatches);
    const float epoch_lr = loop.LearningRate();
    switch (loop.FinishEpoch(epoch, config.epochs, mean_loss, diverged)) {
      case ResilientTrainLoop::Verdict::kRetryEpoch:
        continue;
      case ResilientTrainLoop::Verdict::kStop:
        network_.Prepack();
        return OkStatus();
      case ResilientTrainLoop::Verdict::kFailed:
        return loop.status().WithContext("flavor LSTM training");
      case ResilientTrainLoop::Verdict::kNextEpoch:
        break;
    }
    const double epoch_seconds = epoch_timer.ElapsedSeconds();
    const double rows =
        static_cast<double>(epoch_minibatches * batching.BatchSize() * batching.SeqLen());
    loss_series.Append(static_cast<double>(epoch), mean_loss);
    grad_series.Append(static_cast<double>(epoch), optimizer.LastGradNorm());
    lr_series.Append(static_cast<double>(epoch), static_cast<double>(epoch_lr));
    rate_series.Append(static_cast<double>(epoch),
                       epoch_seconds > 0.0 ? rows / epoch_seconds : 0.0);
    CG_LOGF_INFO("flavor LSTM epoch %zu/%zu: loss=%.4f (%.1fs elapsed)", epoch + 1,
                 config.epochs, mean_loss, timer.ElapsedSeconds());
    ++epoch;
  }
  // Parameters are final: build the packed inference weights once.
  network_.Prepack();
  return OkStatus();
}

FlavorLstmModel::EvalResult FlavorLstmModel::Evaluate(const Trace& test) const {
  CG_CHECK(encoder_ != nullptr);
  const FlavorStream stream = BuildStream(test);
  EvalResult result;
  if (stream.tokens.empty()) {
    return result;
  }
  const size_t eob = encoder_->Vocab().EobToken();
  // Single stateful pass over the full stream (no truncation) so every step
  // is scored exactly once, conditioned on the entire history.
  LstmState state = network_.MakeState(1);
  Matrix input(1, encoder_->Dim());
  Matrix logits;
  double nll = 0.0;
  size_t errors = 0;
  double nll_flavor = 0.0;
  size_t errors_flavor = 0;
  size_t flavor_steps = 0;
  for (size_t step = 0; step < stream.tokens.size(); ++step) {
    const size_t prev = step == 0 ? eob : static_cast<size_t>(stream.tokens[step - 1]);
    encoder_->EncodeInto(prev, stream.periods[step], stream.doh_days[step], input.Row(0));
    network_.StepLogits(input, &state, &logits);

    // NLL and argmax from the logits row.
    const float* row = logits.Row(0);
    const size_t classes = logits.Cols();
    float max_v = row[0];
    size_t argmax = 0;
    for (size_t c = 1; c < classes; ++c) {
      if (row[c] > max_v) {
        max_v = row[c];
        argmax = c;
      }
    }
    double sum = 0.0;
    for (size_t c = 0; c < classes; ++c) {
      sum += std::exp(static_cast<double>(row[c] - max_v));
    }
    const double log_prob =
        static_cast<double>(row[stream.tokens[step]] - max_v) - std::log(sum);
    const bool wrong = argmax != static_cast<size_t>(stream.tokens[step]);
    nll -= log_prob;
    if (wrong) {
      ++errors;
    }
    if (static_cast<size_t>(stream.tokens[step]) != eob) {
      nll_flavor -= log_prob;
      if (wrong) {
        ++errors_flavor;
      }
      ++flavor_steps;
    }
  }
  result.steps = stream.tokens.size();
  result.nll = nll / static_cast<double>(result.steps);
  result.one_best_err = static_cast<double>(errors) / static_cast<double>(result.steps);
  result.flavor_steps = flavor_steps;
  if (flavor_steps > 0) {
    result.nll_flavor_only = nll_flavor / static_cast<double>(flavor_steps);
    result.one_best_err_flavor_only =
        static_cast<double>(errors_flavor) / static_cast<double>(flavor_steps);
  }
  return result;
}

std::vector<double> FlavorLstmModel::NextTokenProbs(const FlavorStream& stream,
                                                    size_t upto_step) const {
  CG_CHECK(encoder_ != nullptr);
  CG_CHECK(upto_step <= stream.tokens.size());
  const size_t eob = encoder_->Vocab().EobToken();
  LstmState state = network_.MakeState(1);
  Matrix input(1, encoder_->Dim());
  Matrix logits;
  for (size_t step = 0; step <= upto_step; ++step) {
    const size_t prev = step == 0 ? eob : static_cast<size_t>(stream.tokens[step - 1]);
    const size_t ref = std::min(step, stream.tokens.size() - 1);
    encoder_->EncodeInto(prev, stream.periods[ref], stream.doh_days[ref], input.Row(0));
    network_.StepLogits(input, &state, &logits);
  }
  std::vector<double> probs;
  const double sum = MaxShiftedExp(logits.Row(0), logits.Cols(), &probs);
  for (double& p : probs) {
    p /= sum;
  }
  return probs;
}

FlavorLstmModel::Generator::Generator(const FlavorLstmModel& model, int doh_day,
                                      double eob_scale, GuardPolicy guard)
    : model_(model),
      doh_day_(doh_day),
      eob_scale_(eob_scale),
      guard_(guard),
      state_(model.network_.MakeState(1)),
      prev_token_(model.Vocab().EobToken()),
      input_(1, model.encoder_->Dim()) {
  CG_CHECK(eob_scale > 0.0);
}

void FlavorLstmModel::Generator::SaveState(std::ostream& out) const {
  const auto prev = static_cast<uint64_t>(prev_token_);
  out.write(reinterpret_cast<const char*>(&prev), sizeof(prev));
  WriteLstmState(out, state_);
}

void FlavorLstmModel::Generator::LoadState(std::istream& in) {
  uint64_t prev = 0;
  in.read(reinterpret_cast<char*>(&prev), sizeof(prev));
  CG_CHECK_MSG(static_cast<bool>(in), "truncated flavor generator state");
  prev_token_ = static_cast<size_t>(prev);
  ReadLstmState(in, &state_);
}

std::vector<std::vector<int32_t>> FlavorLstmModel::Generator::GeneratePeriod(
    int64_t period, int64_t n_batches, Rng& rng, size_t max_jobs,
    const CancelToken* cancel) {
  std::vector<std::vector<int32_t>> batches;
  if (n_batches <= 0) {
    return batches;
  }
  const size_t eob = model_.Vocab().EobToken();
  // Hot-path metric handles, registered once per process (see metrics.h).
  static obs::Counter& token_counter = obs::Registry::Global().GetCounter("gen.tokens");
  static obs::Histogram& step_hist =
      obs::Registry::Global().GetHistogram("gen.step_ns", obs::StepLatencyBucketsNs());
  batches.emplace_back();
  size_t total_jobs = 0;
  while (static_cast<int64_t>(batches.size()) <= n_batches) {
    if (cancel != nullptr && cancel->Cancelled()) {
      break;  // Partial period: the caller discards the whole trace.
    }
    model_.encoder_->EncodeInto(prev_token_, period, doh_day_, input_.Row(0));
    if (guard_ == GuardPolicy::kFallback) {
      fallback_state_ = state_;  // Same-shape copy: no steady-state allocation.
    }
    const auto step_start = std::chrono::steady_clock::now();
    model_.network_.StepLogits(input_, &state_, &logits_, &ws_);
    step_hist.Observe(static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                              std::chrono::steady_clock::now() - step_start)
                                              .count()));
    token_counter.Add(1);
    if (FaultInjector::Global().ShouldInject(FaultKind::kGenNanLogit)) {
      logits_.Row(0)[0] = std::numeric_limits<float>::quiet_NaN();
    }
    if (guard_ != GuardPolicy::kOff && !AllFinite(logits_.Row(0), logits_.Cols())) {
      CountGuardViolation();
      if (guard_ == GuardPolicy::kAbort) {
        GuardAbort(StrFormat("flavor logits non-finite at period %lld",
                             static_cast<long long>(period)));
      }
      if (guard_ == GuardPolicy::kFallback) {
        // Redo the step through the reference (non-packed) route from the
        // pre-step snapshot; on healthy weights it is bitwise-identical to
        // the fast path, so the recovered trace matches an unfaulted run.
        state_ = fallback_state_;
        model_.network_.StepLogits(input_, &state_, &logits_);
        if (!AllFinite(logits_.Row(0), logits_.Cols())) {
          GuardAbort("flavor logits non-finite on the reference route too");
        }
        CountGuardFallback();
      }
      // kResample: keep going; the weights are sanitized below.
    }

    // Sample from the softmax distribution (unnormalized weights; Categorical
    // normalizes internally).
    MaxShiftedExp(logits_.Row(0), logits_.Cols(), &ws_.probs);
    ws_.probs[eob] *= eob_scale_;  // What-if batch-size modification (footnote 5).
    if (guard_ == GuardPolicy::kResample && !ValidWeights(ws_.probs)) {
      SanitizeWeights(&ws_.probs);
      CountGuardResample();
    }
    size_t token = rng.Categorical(ws_.probs);

    // Safety: an empty batch is not representable in the data (every batch
    // has >= 1 job), so re-interpret an immediate EOB as the most likely
    // flavor instead — explicitly excluding EOB wherever it sits in the
    // vocabulary, rather than assuming it is the last token.
    if (token == eob && batches.back().empty()) {
      token = ArgmaxExcluding(ws_.probs, eob);
    }

    if (token == eob) {
      if (static_cast<int64_t>(batches.size()) == n_batches) {
        prev_token_ = token;
        break;
      }
      batches.emplace_back();
    } else {
      batches.back().push_back(static_cast<int32_t>(token));
      if (++total_jobs >= max_jobs) {
        obs::Registry::Global().GetCounter("gen.period_truncations").Add(1);
        CG_LOG_WARN("flavor generator hit the per-period job cap; truncating period");
        break;
      }
    }
    prev_token_ = token;
  }
  return batches;
}

Status FlavorLstmModel::SaveToFile(const std::string& path) const {
  if (!IsTrained()) {
    return FailedPreconditionError("flavor model is not trained");
  }
  std::ostringstream payload(std::ios::binary);
  network_.Save(payload);
  CG_RETURN_IF_ERROR(WriteSealedFile(path, kSealFlavorModel, 0, std::move(payload).str()));
  return OkStatus();
}

Status FlavorLstmModel::LoadFromFile(const std::string& path, int history_days,
                                     size_t num_flavors) {
  std::string payload;
  CG_RETURN_IF_ERROR(ReadSealedFile(path, kSealFlavorModel, nullptr, &payload)
                         .WithContext("flavor model"));
  // The CRC above guarantees payload integrity; Load's internal invariant
  // checks cannot fire on environmental corruption past this point.
  std::istringstream in(payload, std::ios::binary);
  network_.Load(in);
  encoder_ = std::make_unique<FlavorInputEncoder>(FlavorVocab(num_flavors),
                                                  TemporalFeatureEncoder(history_days));
  if (network_.Config().input_dim != encoder_->Dim()) {
    encoder_.reset();
    return FailedPreconditionError(StrFormat(
        "flavor model %s input dim %zu does not match the encoder dim (%d flavors)",
        path.c_str(), network_.Config().input_dim, static_cast<int>(num_flavors)));
  }
  // Loaded parameters are final: build the packed inference weights once.
  network_.Prepack();
  return OkStatus();
}

}  // namespace cloudgen
