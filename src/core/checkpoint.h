// Training resilience: per-epoch checkpointing and the divergence watchdog.
//
// Both LSTM trainers drive their epoch loop through ResilientTrainLoop, which
// owns three concerns:
//
//  1. Checkpointing. After every completed epoch the full training state —
//     network weights, Adam moments + step count, RNG stream, and current
//     learning rate — is serialized. With a checkpoint path configured it is
//     also written to disk (atomic temp+rename, CRC-validated header), so a
//     SIGKILL at any instant leaves either the previous or the new checkpoint
//     intact, never a torn file. Resuming restores the exact state, making an
//     interrupted-then-resumed run bitwise identical to an uninterrupted one.
//
//  2. Divergence watchdog. An epoch that produces a NaN/Inf loss, a
//     non-finite gradient norm, or an exploding loss is rolled back: the last
//     good state is restored, the learning rate is multiplied by
//     `lr_backoff`, and the epoch is rerun. After `max_rollbacks` failed
//     attempts the loop gives up with an ABORTED status.
//
//  3. Fault hooks. MaybeInjectGradientFault plants a NaN in the gradients
//     when CLOUDGEN_FAULT arms nan_grad, exercising path 2 deterministically.
//
// Checkpoints are sealed files (src/util/sealed_file.h): a CRC-validated
// header whose `extra` word stores the next epoch to run.
#ifndef SRC_CORE_CHECKPOINT_H_
#define SRC_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "src/nn/adam.h"
#include "src/nn/sequence_network.h"
#include "src/util/rng.h"
#include "src/util/sealed_file.h"
#include "src/util/status.h"

namespace cloudgen {

// Stage tags keep a flavor checkpoint from being resumed into the lifetime
// trainer (and vice versa).
inline constexpr uint32_t kCheckpointStageFlavor = kSealFlavorCheckpoint;
inline constexpr uint32_t kCheckpointStageLifetime = kSealLifetimeCheckpoint;

struct TrainRecoveryConfig {
  // Checkpoint file path; empty keeps snapshots in memory only (the watchdog
  // still works, but a crash loses progress).
  std::string checkpoint_path;
  // Resume from `checkpoint_path` if it holds a valid checkpoint; a missing
  // file starts from scratch, a corrupt one is reported and ignored.
  bool resume = false;
  // Learning-rate multiplier applied on every watchdog rollback.
  float lr_backoff = 0.5f;
  // An epoch whose loss exceeds divergence_factor * (best loss + 1) is
  // treated as diverged even if finite.
  double divergence_factor = 100.0;
  // Rollbacks tolerated across the whole run before giving up.
  int max_rollbacks = 8;
  // Testing/crash-simulation hook: stop (successfully) after this many
  // completed epochs, as if the process had been killed right after the
  // checkpoint write. 0 disables.
  size_t stop_after_epoch = 0;
};

// Raw checkpoint container I/O (exposed for tests and tooling).
struct TrainCheckpoint {
  static Status Write(const std::string& path, uint32_t stage_tag, uint64_t next_epoch,
                      const std::string& payload);
  static Status Read(const std::string& path, uint32_t stage_tag, uint64_t* next_epoch,
                     std::string* payload);
};

class ResilientTrainLoop {
 public:
  // The network, optimizer, and rng must outlive the loop; they are the state
  // that is snapshotted and restored. `initial_lr`/`lr_decay` mirror the
  // trainer's schedule so rollback and resume agree with it exactly.
  ResilientTrainLoop(uint32_t stage_tag, const TrainRecoveryConfig& config,
                     float initial_lr, float lr_decay, SequenceNetwork* network,
                     Adam* optimizer, Rng* rng);

  // Restores the checkpoint when resuming (or snapshots the initial state)
  // and returns the first epoch index to run.
  size_t Begin();

  // Learning rate the optimizer should use for the upcoming epoch.
  float LearningRate() const { return lr_; }

  enum class Verdict {
    kNextEpoch,   // Epoch accepted; advance.
    kRetryEpoch,  // Diverged; state rolled back, LR backed off — rerun.
    kStop,        // stop_after_epoch reached; return success.
    kFailed,      // Watchdog exhausted max_rollbacks; see status().
  };

  // Reports the finished epoch. `diverged` marks mid-epoch NaN/Inf detection
  // (non-finite minibatch loss or gradient norm).
  Verdict FinishEpoch(size_t epoch, size_t total_epochs, double loss, bool diverged);

  // Non-OK after kFailed.
  const Status& status() const { return status_; }
  int Rollbacks() const { return rollbacks_; }

 private:
  // The payload carries the cumulative rollback count alongside the training
  // state, so a resumed run keeps (and reports) the watchdog history instead
  // of silently restarting it at zero. A watchdog rollback restores the
  // state but keeps the live rollback counter (restore_rollbacks=false).
  std::string Serialize() const;
  void Restore(const std::string& payload, bool restore_rollbacks);

  uint32_t stage_tag_;
  TrainRecoveryConfig config_;
  float lr_;
  float lr_decay_;
  SequenceNetwork* network_;
  Adam* optimizer_;
  Rng* rng_;
  std::string last_good_;
  double best_loss_ = 0.0;
  bool have_best_ = false;
  int rollbacks_ = 0;
  Status status_;
};

// Plants a NaN in the first gradient when the nan_grad fault fires. Call
// after backward, before the optimizer step. Returns true when injected.
bool MaybeInjectGradientFault(SequenceNetwork* network);

}  // namespace cloudgen

#endif  // SRC_CORE_CHECKPOINT_H_
