#include "src/core/gen_guard.h"

#include <cmath>

#include "src/obs/fidelity_monitor.h"
#include "src/obs/metrics.h"
#include "src/util/log.h"

namespace cloudgen {

bool ParseGuardPolicy(std::string_view name, GuardPolicy* policy) {
  if (name == "off") {
    *policy = GuardPolicy::kOff;
  } else if (name == "abort") {
    *policy = GuardPolicy::kAbort;
  } else if (name == "resample") {
    *policy = GuardPolicy::kResample;
  } else if (name == "fallback") {
    *policy = GuardPolicy::kFallback;
  } else {
    return false;
  }
  return true;
}

const char* GuardPolicyName(GuardPolicy policy) {
  switch (policy) {
    case GuardPolicy::kOff:
      return "off";
    case GuardPolicy::kAbort:
      return "abort";
    case GuardPolicy::kResample:
      return "resample";
    case GuardPolicy::kFallback:
      return "fallback";
  }
  return "unknown";
}

bool AllFinite(const float* values, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(values[i])) {
      return false;
    }
  }
  return true;
}

bool ValidWeights(const std::vector<double>& weights) {
  double sum = 0.0;
  for (double w : weights) {
    if (!std::isfinite(w) || w < 0.0) {
      return false;
    }
    sum += w;
  }
  return sum > 0.0;
}

bool ValidHazard(const std::vector<double>& hazard) {
  for (double h : hazard) {
    if (!std::isfinite(h) || h < 0.0 || h > 1.0) {
      return false;
    }
  }
  return !hazard.empty();
}

void SanitizeWeights(std::vector<double>* weights) {
  double sum = 0.0;
  for (double& w : *weights) {
    if (!std::isfinite(w) || w < 0.0) {
      w = 0.0;
    }
    sum += w;
  }
  if (sum <= 0.0) {
    for (double& w : *weights) {
      w = 1.0;  // Nothing valid survived: degrade to uniform.
    }
  }
}

void SanitizeHazard(std::vector<double>* hazard) {
  for (double& h : *hazard) {
    if (!std::isfinite(h)) {
      h = 1.0;  // Pessimistic: terminate in this bin.
    } else if (h < 0.0) {
      h = 0.0;
    } else if (h > 1.0) {
      h = 1.0;
    }
  }
}

void CountGuardViolation() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("gen.guard.violations");
  counter.Add(1);
  // Guard interventions reshape sampled distributions; surface them next to
  // the drift gauges they can distort.
  obs::FidelityMonitor::Global().CountGuardEvent();
}

void CountGuardResample() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("gen.guard.resamples");
  counter.Add(1);
}

void CountGuardFallback() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("gen.guard.fallbacks");
  counter.Add(1);
}

void GuardAbort(const std::string& message) {
  obs::Registry::Global().GetCounter("gen.guard.aborts").Add(1);
  CG_LOG_ERROR("numeric guard abort: " + message);
  throw GuardViolation(message);
}

}  // namespace cloudgen
