#include "src/core/workload_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "src/core/batch_generator.h"
#include "src/core/gen_checkpoint.h"
#include "src/obs/fidelity_monitor.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_span.h"
#include "src/trace/trace_sink.h"
#include "src/util/atomic_file.h"
#include "src/util/cancel.h"
#include "src/util/check.h"
#include "src/util/fault.h"
#include "src/util/log.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace cloudgen {
namespace {

// Disk-full park: everything sealed before the failure is durable and the
// checkpoint on disk still points at the last seal, so the run ends OK with
// report->parked — a --resume-gen run completes the output byte-identically
// once space returns. Any other failure keeps propagating as an error.
Status ParkGeneration(WorkloadModel::GenerateReport* report,
                      const Status& cause) {
  obs::Registry::Global().GetCounter("gen.parked").Add(1);
  obs::Registry::Global().GetCounter("gen.interrupted").Add(1);
  CG_LOG_WARN("generation parked at seal boundary (disk full): " +
              cause.ToString());
  report->interrupted = true;
  report->parked = true;
  return OkStatus();
}

}  // namespace

Status WorkloadModel::Train(const Trace& train, const WorkloadModelConfig& config,
                            Rng& rng) {
  return Train(train, config, MakePaperBinning(), rng);
}

Status WorkloadModel::Train(const Trace& train, const WorkloadModelConfig& config,
                            const LifetimeBinning& binning, Rng& rng) {
  flavors_ = train.Flavors();
  {
    CG_SPAN("fit_arrivals");
    arrival_model_.Fit(train, ArrivalGranularity::kBatches, config.arrival);
  }
  {
    CG_SPAN("train_flavor");
    CG_RETURN_IF_ERROR(
        flavor_model_.Train(train, arrival_model_.HistoryDays(), config.flavor, rng));
  }
  {
    CG_SPAN("train_lifetime");
    CG_RETURN_IF_ERROR(lifetime_model_.Train(train, binning,
                                             arrival_model_.HistoryDays(),
                                             config.lifetime, rng));
  }
  return OkStatus();
}

// Checkpointable per-trace generation state. Owns both stage generators and
// the synthetic-user counter; one RunPeriod call reproduces exactly the
// period loop body the monolithic Generate historically ran, emitting jobs
// through a callback so the same engine drives in-memory traces and
// streaming sinks.
class WorkloadModel::PeriodEngine {
 public:
  PeriodEngine(const WorkloadModel& model, const BatchArrivalModel& arrivals,
               const GenerateOptions& options, int doh_day)
      : arrivals_(arrivals),
        options_(options),
        doh_day_(doh_day),
        flavor_gen_(model.flavor_model_, doh_day, options.eob_scale, options.guard),
        lifetime_gen_(model.lifetime_model_, doh_day, options.guard),
        binning_(model.lifetime_model_.Binning()) {}

  // Generates one period's jobs. `allow_midperiod_cancel` propagates
  // options.cancel into the flavor token loop (many-trace mode, where a
  // partial trace is discarded wholesale); streaming mode passes false so
  // cancellation only lands at period boundaries and the engine state stays
  // checkpointable.
  void RunPeriod(int64_t period, Rng& rng, const std::function<void(const Job&)>& emit,
                 bool allow_midperiod_cancel) {
    // Hot-path metric handles, registered once per process (see metrics.h).
    static obs::Counter& period_counter = obs::Registry::Global().GetCounter("gen.periods");
    static obs::Counter& batch_counter = obs::Registry::Global().GetCounter("gen.batches");
    static obs::Counter& job_counter = obs::Registry::Global().GetCounter("gen.jobs");
    // Observe-only fidelity hook (src/obs/fidelity_monitor.h): one relaxed
    // load when the monitor is off, never an Rng touch either way.
    obs::FidelityMonitor& fidelity = obs::FidelityMonitor::Global();
    // A no-DOH arrival override ignores the day argument internally.
    const int arrivals_doh = std::min(doh_day_, std::max(1, arrivals_.HistoryDays()));
    const double rate = arrivals_.Rate(period, arrivals_doh) * options_.arrival_scale;
    const int64_t n_batches = rng.Poisson(rate);
    period_counter.Add(1);
    fidelity.ObservePeriodBatches(n_batches);
    if (n_batches == 0) {
      return;
    }
    const CancelToken* cancel = allow_midperiod_cancel ? options_.cancel : nullptr;
    const std::vector<std::vector<int32_t>> batches =
        flavor_gen_.GeneratePeriod(period, n_batches, rng, kGenMaxJobsPerPeriod, cancel);
    batch_counter.Add(batches.size());
    for (const std::vector<int32_t>& batch : batches) {
      const int64_t user = next_user_++;
      job_counter.Add(batch.size());
      for (int32_t flavor : batch) {
        const size_t bin = lifetime_gen_.StepJob(period, flavor, batch.size(), rng);
        const double duration =
            SampleDurationInBin(binning_, bin, options_.interpolation, rng);
        Job job;
        job.start_period = period;
        job.end_period =
            period + static_cast<int64_t>(std::llround(duration / kSecondsPerPeriod));
        job.flavor = flavor;
        job.user = user;
        job.censored = false;
        fidelity.ObserveJob(job.LifetimeSeconds(), job.flavor);
        emit(job);
      }
    }
  }

  // Exact engine state at a period boundary (streaming checkpoints). The
  // DOH day travels outside (it is a constructor argument).
  void SaveState(std::ostream& out) const {
    out.write(reinterpret_cast<const char*>(&next_user_), sizeof(next_user_));
    flavor_gen_.SaveState(out);
    lifetime_gen_.SaveState(out);
  }
  void LoadState(std::istream& in) {
    in.read(reinterpret_cast<char*>(&next_user_), sizeof(next_user_));
    CG_CHECK_MSG(static_cast<bool>(in), "truncated period-engine state");
    flavor_gen_.LoadState(in);
    lifetime_gen_.LoadState(in);
  }

 private:
  const BatchArrivalModel& arrivals_;
  const GenerateOptions& options_;
  int doh_day_;
  FlavorLstmModel::Generator flavor_gen_;
  LifetimeLstmModel::Generator lifetime_gen_;
  const LifetimeBinning& binning_;
  int64_t next_user_ = 0;
};

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Digest of everything that shapes the generated bytes. Stored in the
// checkpoint and verified on resume, so continuing with different flags,
// count, or caller context (seed) is rejected instead of splicing
// incompatible RNG streams into one output. Pure throughput knobs that
// provably never change the bytes — batch_window, gen_shards, cancel,
// guard-on-healthy — are deliberately NOT hashed, so a checkpoint taken at
// one window/shard/thread setting resumes byte-identically at any other.
uint64_t GenerateFingerprint(const WorkloadModel::GenerateOptions& options, uint32_t mode,
                             uint64_t count, uint64_t caller) {
  uint64_t h = 0x43474547ull;  // 'CGEG'
  h = HashMix(h, mode);
  h = HashMix(h, count);
  h = HashMix(h, static_cast<uint64_t>(options.from_period));
  h = HashMix(h, static_cast<uint64_t>(options.to_period));
  h = HashMix(h, static_cast<uint64_t>(options.doh_mode));
  h = HashMix(h, DoubleBits(options.arrival_scale));
  h = HashMix(h, DoubleBits(options.eob_scale));
  h = HashMix(h, static_cast<uint64_t>(options.interpolation));
  h = HashMix(h, caller);
  return h;
}

Status FlushTraceToSink(TraceSink* sink, size_t index, const Trace& trace) {
  CG_RETURN_IF_ERROR(sink->BeginTrace(index));
  for (const Job& job : trace.Jobs()) {
    CG_RETURN_IF_ERROR(sink->Append(job));
  }
  return sink->EndTrace();
}

}  // namespace

Trace WorkloadModel::Generate(const GenerateOptions& options, Rng& rng) const {
  return GenerateWithArrivalModel(arrival_model_, options, rng);
}

Trace WorkloadModel::GenerateWithArrivalModel(const BatchArrivalModel& arrivals,
                                              const GenerateOptions& options,
                                              Rng& rng) const {
  CG_CHECK(IsTrained());
  CG_CHECK(arrivals.IsFitted());
  CG_CHECK(options.to_period > options.from_period);
  CG_CHECK(options.arrival_scale > 0.0);
  CG_SPAN("generate_trace");

  Trace trace(flavors_, options.from_period, options.to_period);
  // The LSTM stages' DOH day comes from the main model's history even when
  // the arrival model is an override (a no-DOH arrival model has no meaningful
  // DOH day of its own).
  const int doh_day = arrival_model_.SampleDohDay(rng, options.doh_mode);
  PeriodEngine engine(*this, arrivals, options, doh_day);
  for (int64_t period = options.from_period; period < options.to_period; ++period) {
    if (options.cancel != nullptr && options.cancel->Poll()) {
      break;  // Partial trace: sink-based callers discard it, never persist it.
    }
    engine.RunPeriod(
        period, rng, [&trace](const Job& job) { trace.Add(job); },
        /*allow_midperiod_cancel=*/true);
  }
  return trace;
}

std::vector<Trace> WorkloadModel::GenerateMany(const GenerateOptions& options, size_t count,
                                               Rng& rng) const {
  InMemoryTraceSink sink(flavors_, options.from_period, options.to_period);
  GenerateRun run;
  run.sink = &sink;
  GenerateReport report;
  const Status status = GenerateMany(options, count, rng, run, &report);
  CG_CHECK_MSG(status.ok(), status.message().c_str());
  return std::move(sink.Traces());
}

Status WorkloadModel::GenerateMany(const GenerateOptions& options, size_t count, Rng& rng,
                                   const GenerateRun& run, GenerateReport* report) const {
  CG_CHECK(run.sink != nullptr);
  CG_CHECK(report != nullptr);
  CG_SPAN("generate_many");
  // Plan rules scoped site=gen hit this run's checkpoint commits; segment
  // seals re-scope themselves site=sink inside the sink.
  ScopedFaultSite fault_site("gen");
  *report = GenerateReport();

  GenCursor cursor;
  cursor.mode = kGenModeManyTraces;
  cursor.count = count;
  cursor.fingerprint =
      GenerateFingerprint(options, kGenModeManyTraces, count, run.config_fingerprint);

  size_t start = 0;
  if (run.resume && !run.checkpoint_path.empty() && FileExists(run.checkpoint_path)) {
    GenCursor loaded;
    CG_RETURN_IF_ERROR(LoadGenCheckpoint(run.checkpoint_path, &loaded));
    if (loaded.mode != cursor.mode || loaded.fingerprint != cursor.fingerprint ||
        loaded.count != count) {
      obs::Registry::Global().GetCounter("gen.resume.rejected").Add(1);
      return FailedPreconditionError(
          "generation checkpoint does not match this run's options/seed; remove " +
          run.checkpoint_path + " to start over");
    }
    cursor.base = loaded.base;
    cursor.next_trace = loaded.next_trace;
    cursor.segments_sealed = loaded.segments_sealed;
    start = static_cast<size_t>(loaded.next_trace);
    CG_RETURN_IF_ERROR(run.sink->ResumeAt(cursor.segments_sealed));
    obs::Registry::Global().GetCounter("gen.resume.loaded").Add(1);
    report->resumed = true;
  } else {
    if (run.resume) {
      // Crash before the first checkpoint: drop any already-sealed segments
      // the manifest may list so they are regenerated from trace 0.
      CG_RETURN_IF_ERROR(run.sink->ResumeAt(0));
    }
    // One draw anchors the whole family — the exact draw order the legacy
    // vector API always had, so same-seed runs stay byte-identical.
    cursor.base = rng.Next();
  }
  const uint64_t base = cursor.base;

  static obs::Counter& trace_counter = obs::Registry::Global().GetCounter("gen.traces");

  // Traces complete out of order; flushes happen strictly in index order so
  // segment bytes never depend on thread count or completion order.
  std::mutex mu;
  std::map<size_t, Trace> pending;
  size_t next_flush = start;
  Status sink_status = OkStatus();
  bool stop_flushing = false;

  // In-order flush of completed trace i. Never called concurrently: the
  // batched path is single-threaded, the sharded scheduler serializes emits
  // internally, and the trace-parallel path calls it under `mu`. Returns
  // false once flushing must stop (sink error or visible cancellation).
  const auto flush_in_order = [&](size_t i, Trace&& trace) -> bool {
    // Pool workers call this without inheriting the caller's thread-local
    // scope; re-establish it so site=gen rules see checkpoint commits from
    // every flushing thread.
    ScopedFaultSite flush_site("gen");
    if (!sink_status.ok() || stop_flushing) {
      return false;
    }
    if (options.cancel != nullptr && options.cancel->Cancelled()) {
      // This trace (and any later one) may be partial; once cancellation
      // is visible nothing more is flushed — the checkpoint cursor makes
      // the resume run regenerate from next_flush.
      stop_flushing = true;
      return false;
    }
    pending.emplace(i, std::move(trace));
    while (!pending.empty() && pending.begin()->first == next_flush) {
      const Trace& ready = pending.begin()->second;
      Status st = FlushTraceToSink(run.sink, next_flush, ready);
      if (!st.ok()) {
        sink_status = st;
        break;
      }
      report->traces += 1;
      report->jobs += ready.NumJobs();
      trace_counter.Add(1);
      pending.erase(pending.begin());
      ++next_flush;
      bool sealed = false;
      st = run.sink->CommitPoint(/*force=*/false, &sealed);
      if (!st.ok()) {
        sink_status = st;
        break;
      }
      if (sealed) {
        // The buffer drains fully at every seal, so everything before
        // next_flush is durable: exactly what the cursor promises.
        cursor.segments_sealed += 1;
        cursor.next_trace = next_flush;
        if (!run.checkpoint_path.empty()) {
          st = SaveGenCheckpoint(run.checkpoint_path, cursor);
          if (!st.ok()) {
            sink_status = st;
            break;
          }
        }
      }
    }
    return sink_status.ok();
  };

  if (options.batch_window > 0) {
    // Batched multi-stream engine: each driver steps up to batch_window
    // traces in lockstep, turning per-trace GEMVs into blocked GEMMs. With
    // more than one shard, that many windows run in flight on the pool
    // (sharded tick scheduler). Trace i's bytes are identical to the legacy
    // path below at every (window, shard, thread) setting — each stream
    // draws only from Rng::Stream(base, i) and flush_in_order reorders.
    const size_t shards = EffectiveGenShards(options, count - start);
    RunShardedBatchEngines(*this, options, base, start, count - start,
                           options.batch_window, shards, flush_in_order);
  } else {
    GlobalThreadPool().ParallelFor(
        start, count,
        [&](size_t i) {
          // Trace i's content depends only on (base, i) — never on which
          // worker generated it or on the thread count.
          Rng stream = Rng::Stream(base, i);
          Trace trace = Generate(options, stream);
          std::lock_guard<std::mutex> lock(mu);
          flush_in_order(i, std::move(trace));
        },
        options.cancel);
  }

  if (!sink_status.ok()) {
    if (IsDiskFull(sink_status)) {
      return ParkGeneration(report, sink_status);
    }
    return sink_status;
  }

  const bool interrupted =
      options.cancel != nullptr && options.cancel->Cancelled() && next_flush < count;
  // Seal the buffered tail; both exits want everything flushed to be durable.
  bool sealed = false;
  const Status tail_commit = run.sink->CommitPoint(/*force=*/true, &sealed);
  if (IsDiskFull(tail_commit)) {
    return ParkGeneration(report, tail_commit);
  }
  CG_RETURN_IF_ERROR(tail_commit);
  if (sealed) {
    cursor.segments_sealed += 1;
  }
  cursor.next_trace = interrupted ? next_flush : count;
  if (!run.checkpoint_path.empty()) {
    const Status saved = SaveGenCheckpoint(run.checkpoint_path, cursor);
    if (IsDiskFull(saved)) {
      return ParkGeneration(report, saved);
    }
    CG_RETURN_IF_ERROR(saved);
  }
  if (interrupted) {
    obs::Registry::Global().GetCounter("gen.interrupted").Add(1);
    report->interrupted = true;
    return OkStatus();
  }
  const Status finished = run.sink->Finish();
  if (IsDiskFull(finished)) {
    // Everything is generated and checkpointed; only the manifest-complete
    // marker is missing. Resume re-runs the idempotent Finish.
    return ParkGeneration(report, finished);
  }
  return finished;
}

size_t WorkloadModel::EffectiveGenShards(const GenerateOptions& options,
                                         size_t count) {
  const size_t requested =
      options.gen_shards > 0 ? options.gen_shards : GlobalParallelism();
  return std::max<size_t>(1, std::min(requested, std::max<size_t>(1, count)));
}

uint64_t WorkloadModel::TraceFamilyBase(uint64_t seed) {
  // Must match the fresh-path draw in GenerateMany above (cursor.base =
  // rng.Next() on an Rng(seed) with no prior draws) — the serve byte-identity
  // guarantee hangs on this.
  Rng rng(seed);
  return rng.Next();
}

void WorkloadModel::GenerateTraceRows(const GenerateOptions& options, uint64_t base,
                                      size_t index, std::string* out) const {
  // One stream through the engine: every tick group has exactly one machine,
  // so each step takes the single-stream shortcut and the rows are
  // byte-identical to a direct Generate on Rng::Stream(base, index).
  BatchTraceEngine engine(*this, options, base);
  engine.Run(index, 1, 1, [out](size_t i, Trace&& trace) {
    for (const Job& job : trace.Jobs()) {
      AppendJobRow(i, job, out);
    }
    return true;
  });
}

void WorkloadModel::GenerateTraceRowsRange(const GenerateOptions& options,
                                           uint64_t base, size_t first,
                                           size_t count, std::string* out) const {
  if (count == 0) {
    return;
  }
  if (count == 1) {
    GenerateTraceRows(options, base, first, out);
    return;
  }
  // One engine run over the whole range; the pending map restores index
  // order across shard/completion interleaving exactly like GenerateMany's
  // flush_in_order, so the concatenation matches per-index GenerateTraceRows
  // calls byte for byte.
  std::map<size_t, Trace> pending;
  size_t next_flush = first;
  const auto emit = [&](size_t i, Trace&& trace) -> bool {
    pending.emplace(i, std::move(trace));
    while (!pending.empty() && pending.begin()->first == next_flush) {
      for (const Job& job : pending.begin()->second.Jobs()) {
        AppendJobRow(next_flush, job, out);
      }
      pending.erase(pending.begin());
      ++next_flush;
    }
    return true;
  };
  const size_t window = std::max<size_t>(1, options.batch_window);
  const size_t shards = EffectiveGenShards(options, count);
  RunShardedBatchEngines(*this, options, base, first, count, window, shards, emit);
}

Status WorkloadModel::GenerateStreaming(const GenerateOptions& options, Rng& rng,
                                        const GenerateRun& run,
                                        GenerateReport* report) const {
  CG_CHECK(run.sink != nullptr);
  CG_CHECK(report != nullptr);
  CG_CHECK(IsTrained());
  CG_CHECK(options.to_period > options.from_period);
  CG_CHECK(options.arrival_scale > 0.0);
  CG_SPAN("generate_streaming");
  ScopedFaultSite fault_site("gen");
  *report = GenerateReport();

  GenCursor cursor;
  cursor.mode = kGenModeStreaming;
  cursor.count = 1;
  cursor.fingerprint =
      GenerateFingerprint(options, kGenModeStreaming, 1, run.config_fingerprint);
  cursor.next_period = options.from_period;

  std::unique_ptr<PeriodEngine> engine;
  int64_t first_period = options.from_period;
  int32_t doh_day = 0;

  if (run.resume && !run.checkpoint_path.empty() && FileExists(run.checkpoint_path)) {
    GenCursor loaded;
    CG_RETURN_IF_ERROR(LoadGenCheckpoint(run.checkpoint_path, &loaded));
    if (loaded.mode != cursor.mode || loaded.fingerprint != cursor.fingerprint) {
      obs::Registry::Global().GetCounter("gen.resume.rejected").Add(1);
      return FailedPreconditionError(
          "generation checkpoint does not match this run's options/seed; remove " +
          run.checkpoint_path + " to start over");
    }
    CG_RETURN_IF_ERROR(run.sink->ResumeAt(loaded.segments_sealed));
    obs::Registry::Global().GetCounter("gen.resume.loaded").Add(1);
    report->resumed = true;
    if (loaded.next_trace >= 1) {
      // The previous run generated everything; just ensure the manifest is
      // marked complete (Finish is idempotent).
      return run.sink->Finish();
    }
    cursor.segments_sealed = loaded.segments_sealed;
    first_period = loaded.next_period;
    // Restore the exact state captured at the checkpointed period boundary.
    std::istringstream in(loaded.state_blob);
    in.read(reinterpret_cast<char*>(&doh_day), sizeof(doh_day));
    if (!in) {
      return DataLossError("truncated streaming state in " + run.checkpoint_path);
    }
    engine = std::make_unique<PeriodEngine>(*this, arrival_model_, options, doh_day);
    engine->LoadState(in);
    rng.LoadState(in);
  } else {
    if (run.resume) {
      CG_RETURN_IF_ERROR(run.sink->ResumeAt(0));
    }
    doh_day = arrival_model_.SampleDohDay(rng, options.doh_mode);
    engine = std::make_unique<PeriodEngine>(*this, arrival_model_, options, doh_day);
  }

  const auto save_state_blob = [&]() {
    std::ostringstream out;
    out.write(reinterpret_cast<const char*>(&doh_day), sizeof(doh_day));
    engine->SaveState(out);
    rng.SaveState(out);
    return std::move(out).str();
  };

  CG_RETURN_IF_ERROR(run.sink->BeginTrace(0));
  for (int64_t period = first_period; period < options.to_period; ++period) {
    if (options.cancel != nullptr && options.cancel->Poll()) {
      // Graceful stop at a period boundary: seal everything generated so far
      // and checkpoint the exact state needed to continue from `period`.
      bool sealed = false;
      const Status commit = run.sink->CommitPoint(/*force=*/true, &sealed);
      if (IsDiskFull(commit)) {
        return ParkGeneration(report, commit);
      }
      CG_RETURN_IF_ERROR(commit);
      if (sealed) {
        cursor.segments_sealed += 1;
      }
      cursor.next_period = period;
      cursor.state_blob = save_state_blob();
      if (!run.checkpoint_path.empty()) {
        const Status saved = SaveGenCheckpoint(run.checkpoint_path, cursor);
        if (IsDiskFull(saved)) {
          return ParkGeneration(report, saved);
        }
        CG_RETURN_IF_ERROR(saved);
      }
      obs::Registry::Global().GetCounter("gen.interrupted").Add(1);
      report->interrupted = true;
      return OkStatus();
    }
    Status append_status = OkStatus();
    engine->RunPeriod(
        period, rng,
        [&](const Job& job) {
          if (append_status.ok()) {
            append_status = run.sink->Append(job);
            report->jobs += 1;
          }
        },
        /*allow_midperiod_cancel=*/false);
    CG_RETURN_IF_ERROR(append_status);
    bool sealed = false;
    const Status commit = run.sink->CommitPoint(/*force=*/false, &sealed);
    if (IsDiskFull(commit)) {
      return ParkGeneration(report, commit);
    }
    CG_RETURN_IF_ERROR(commit);
    if (sealed) {
      cursor.segments_sealed += 1;
      cursor.next_period = period + 1;
      cursor.state_blob = save_state_blob();
      if (!run.checkpoint_path.empty()) {
        const Status saved = SaveGenCheckpoint(run.checkpoint_path, cursor);
        if (IsDiskFull(saved)) {
          return ParkGeneration(report, saved);
        }
        CG_RETURN_IF_ERROR(saved);
      }
    }
  }
  CG_RETURN_IF_ERROR(run.sink->EndTrace());
  bool sealed = false;
  const Status final_commit = run.sink->CommitPoint(/*force=*/true, &sealed);
  if (IsDiskFull(final_commit)) {
    return ParkGeneration(report, final_commit);
  }
  CG_RETURN_IF_ERROR(final_commit);
  if (sealed) {
    cursor.segments_sealed += 1;
  }
  cursor.next_trace = 1;
  cursor.next_period = options.to_period;
  cursor.state_blob.clear();
  if (!run.checkpoint_path.empty()) {
    const Status saved = SaveGenCheckpoint(run.checkpoint_path, cursor);
    if (IsDiskFull(saved)) {
      return ParkGeneration(report, saved);
    }
    CG_RETURN_IF_ERROR(saved);
  }
  report->traces = 1;
  obs::Registry::Global().GetCounter("gen.traces").Add(1);
  const Status finished = run.sink->Finish();
  if (IsDiskFull(finished)) {
    return ParkGeneration(report, finished);
  }
  return finished;
}

obs::FidelityReference WorkloadModel::ComputeFidelityReference(
    const GenerateOptions& options) const {
  obs::FidelityReference ref;

  // Arrival: mean Poisson rate over the horizon. DOH day 1 is the modal day
  // under the geometric DOH prior, and a no-DOH fit ignores the argument.
  const int doh = 1;
  double rate_sum = 0.0;
  int64_t periods = 0;
  for (int64_t p = options.from_period; p < options.to_period; ++p) {
    rate_sum += arrival_model_.Rate(p, doh);
    ++periods;
  }
  ref.mean_batches_per_period =
      periods > 0 ? rate_sum / static_cast<double>(periods) * options.arrival_scale : 0.0;

  // Flavor mix: teacher-forced next-token distribution from the EOB context
  // at the horizon start; EOB stripped and renormalized to a distribution
  // over flavor ids.
  FlavorStream stream;
  stream.tokens = {0};
  stream.periods = {options.from_period};
  stream.doh_days = {doh};
  std::vector<double> probs = flavor_model_.NextTokenProbs(stream, 0);
  const size_t eob = flavor_model_.Vocab().EobToken();
  double flavor_mass = 0.0;
  for (size_t k = 0; k < probs.size() && k < eob; ++k) {
    flavor_mass += probs[k];
  }
  ref.flavor_marginals.assign(eob, 0.0);
  if (flavor_mass > 0.0) {
    for (size_t k = 0; k < probs.size() && k < eob; ++k) {
      ref.flavor_marginals[k] = probs[k] / flavor_mass;
    }
  }

  // Lifetimes: teacher-forced hazards for one probe job folded into a bin
  // CDF at the finite bin edges; whatever survives the last hazard is the
  // open bin's tail mass (its implicit CDF point is 1 and is omitted).
  Trace probe(flavors_, options.from_period, options.to_period);
  Job probe_job;
  probe_job.start_period = options.from_period;
  probe_job.end_period = options.from_period;
  probe_job.flavor = 0;
  probe_job.user = 0;
  probe_job.censored = false;
  probe.Add(probe_job);
  const std::vector<std::vector<double>> hazards = lifetime_model_.PredictHazards(probe);
  if (!hazards.empty()) {
    const LifetimeBinning& binning = lifetime_model_.Binning();
    const std::vector<double>& h = hazards.front();
    double survival = 1.0;
    double cdf = 0.0;
    for (size_t bin = 0; bin + 1 < binning.NumBins(); ++bin) {
      const double hazard = bin < h.size() ? std::min(1.0, std::max(0.0, h[bin])) : 0.0;
      cdf += hazard * survival;
      survival *= 1.0 - hazard;
      ref.lifetime_edges_sec.push_back(binning.UpperEdge(bin));
      ref.lifetime_cdf.push_back(std::min(1.0, cdf));
    }
  }
  return ref;
}

void WorkloadModel::EnableFidelityMonitor(const GenerateOptions& options) const {
  obs::FidelityMonitor::Global().Enable(ComputeFidelityReference(options));
}

Status WorkloadModel::SaveToFiles(const std::string& prefix) const {
  CG_RETURN_IF_ERROR(flavor_model_.SaveToFile(prefix + ".flavor.bin"));
  CG_RETURN_IF_ERROR(lifetime_model_.SaveToFile(prefix + ".lifetime.bin"));
  return OkStatus();
}

Status WorkloadModel::LoadNetworksFromFiles(const std::string& prefix, const Trace& train,
                                            const WorkloadModelConfig& config) {
  flavors_ = train.Flavors();
  arrival_model_.Fit(train, ArrivalGranularity::kBatches, config.arrival);
  const int history_days = arrival_model_.HistoryDays();
  CG_RETURN_IF_ERROR(
      flavor_model_.LoadFromFile(prefix + ".flavor.bin", history_days, train.NumFlavors()));
  CG_RETURN_IF_ERROR(lifetime_model_.LoadFromFile(prefix + ".lifetime.bin",
                                                  MakePaperBinning(), history_days,
                                                  train.NumFlavors()));
  return OkStatus();
}

}  // namespace cloudgen
