#include "src/core/workload_model.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/obs/trace_span.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace cloudgen {

Status WorkloadModel::Train(const Trace& train, const WorkloadModelConfig& config,
                            Rng& rng) {
  return Train(train, config, MakePaperBinning(), rng);
}

Status WorkloadModel::Train(const Trace& train, const WorkloadModelConfig& config,
                            const LifetimeBinning& binning, Rng& rng) {
  flavors_ = train.Flavors();
  {
    CG_SPAN("fit_arrivals");
    arrival_model_.Fit(train, ArrivalGranularity::kBatches, config.arrival);
  }
  {
    CG_SPAN("train_flavor");
    CG_RETURN_IF_ERROR(
        flavor_model_.Train(train, arrival_model_.HistoryDays(), config.flavor, rng));
  }
  {
    CG_SPAN("train_lifetime");
    CG_RETURN_IF_ERROR(lifetime_model_.Train(train, binning,
                                             arrival_model_.HistoryDays(),
                                             config.lifetime, rng));
  }
  return OkStatus();
}

Trace WorkloadModel::Generate(const GenerateOptions& options, Rng& rng) const {
  return GenerateWithArrivalModel(arrival_model_, options, rng);
}

Trace WorkloadModel::GenerateWithArrivalModel(const BatchArrivalModel& arrivals,
                                              const GenerateOptions& options,
                                              Rng& rng) const {
  CG_CHECK(IsTrained());
  CG_CHECK(arrivals.IsFitted());
  CG_CHECK(options.to_period > options.from_period);
  CG_CHECK(options.arrival_scale > 0.0);
  CG_SPAN("generate_trace");
  obs::Registry& registry = obs::Registry::Global();
  obs::Counter& period_counter = registry.GetCounter("gen.periods");
  obs::Counter& batch_counter = registry.GetCounter("gen.batches");
  obs::Counter& job_counter = registry.GetCounter("gen.jobs");

  Trace trace(flavors_, options.from_period, options.to_period);
  // The LSTM stages' DOH day comes from the main model's history even when
  // the arrival model is an override (a no-DOH arrival model has no meaningful
  // DOH day of its own).
  const int doh_day = arrival_model_.SampleDohDay(rng, options.doh_mode);

  FlavorLstmModel::Generator flavor_gen(flavor_model_, doh_day, options.eob_scale);
  LifetimeLstmModel::Generator lifetime_gen(lifetime_model_, doh_day);
  const LifetimeBinning& binning = lifetime_model_.Binning();

  int64_t next_user = 0;
  for (int64_t period = options.from_period; period < options.to_period; ++period) {
    // A no-DOH arrival override ignores the day argument internally.
    const int arrivals_doh = std::min(doh_day, std::max(1, arrivals.HistoryDays()));
    const double rate = arrivals.Rate(period, arrivals_doh) * options.arrival_scale;
    const int64_t n_batches = rng.Poisson(rate);
    period_counter.Add(1);
    if (n_batches == 0) {
      continue;
    }
    const std::vector<std::vector<int32_t>> batches =
        flavor_gen.GeneratePeriod(period, n_batches, rng);
    batch_counter.Add(batches.size());
    for (const std::vector<int32_t>& batch : batches) {
      const int64_t user = next_user++;
      job_counter.Add(batch.size());
      for (int32_t flavor : batch) {
        const size_t bin = lifetime_gen.StepJob(period, flavor, batch.size(), rng);
        const double duration =
            SampleDurationInBin(binning, bin, options.interpolation, rng);
        Job job;
        job.start_period = period;
        job.end_period =
            period + static_cast<int64_t>(std::llround(duration / kSecondsPerPeriod));
        job.flavor = flavor;
        job.user = user;
        job.censored = false;
        trace.Add(job);
      }
    }
  }
  return trace;
}

std::vector<Trace> WorkloadModel::GenerateMany(const GenerateOptions& options, size_t count,
                                               Rng& rng) const {
  // Each trace samples from its own seed-derived stream, so trace i's content
  // depends only on (base, i) — never on which worker generated it or on the
  // thread count. One draw from `rng` anchors the whole family.
  CG_SPAN("generate_many");
  const uint64_t base = rng.Next();
  std::vector<Trace> traces(count);
  GlobalThreadPool().ParallelFor(0, count, [&](size_t i) {
    Rng stream = Rng::Stream(base, i);
    traces[i] = Generate(options, stream);
  });
  obs::Registry::Global().GetCounter("gen.traces").Add(count);
  return traces;
}

Status WorkloadModel::SaveToFiles(const std::string& prefix) const {
  CG_RETURN_IF_ERROR(flavor_model_.SaveToFile(prefix + ".flavor.bin"));
  CG_RETURN_IF_ERROR(lifetime_model_.SaveToFile(prefix + ".lifetime.bin"));
  return OkStatus();
}

Status WorkloadModel::LoadNetworksFromFiles(const std::string& prefix, const Trace& train,
                                            const WorkloadModelConfig& config) {
  flavors_ = train.Flavors();
  arrival_model_.Fit(train, ArrivalGranularity::kBatches, config.arrival);
  const int history_days = arrival_model_.HistoryDays();
  CG_RETURN_IF_ERROR(
      flavor_model_.LoadFromFile(prefix + ".flavor.bin", history_days, train.NumFlavors()));
  CG_RETURN_IF_ERROR(lifetime_model_.LoadFromFile(prefix + ".lifetime.bin",
                                                  MakePaperBinning(), history_days,
                                                  train.NumFlavors()));
  return OkStatus();
}

}  // namespace cloudgen
