// Dense row-major float matrix — the numeric workhorse under the neural
// network library. Single precision is used throughout the NN stack (as in
// the paper's PyTorch implementation); the GLM library uses double-precision
// linear algebra of its own because IRLS is more sensitive to conditioning.
#ifndef SRC_TENSOR_MATRIX_H_
#define SRC_TENSOR_MATRIX_H_

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace cloudgen {

class Rng;

class Matrix {
 public:
  Matrix() = default;
  // Zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols);
  Matrix(size_t rows, size_t cols, float fill);

  size_t Rows() const { return rows_; }
  size_t Cols() const { return cols_; }
  size_t Size() const { return data_.size(); }
  bool Empty() const { return data_.empty(); }

  float* Data() { return data_.data(); }
  const float* Data() const { return data_.data(); }

  float& At(size_t r, size_t c);
  float At(size_t r, size_t c) const;
  // Unchecked access for hot loops.
  float& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data_.data() + r * cols_; }

  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  // Reshapes in place; total element count must be preserved.
  void Reshape(size_t rows, size_t cols);

  // Resizes, discarding contents (zero-filled).
  void Resize(size_t rows, size_t cols);

  // In-place scaling: *this *= s.
  void Scale(float s);
  // In-place accumulate: *this += other (same shape).
  void Add(const Matrix& other);
  // In-place axpy: *this += alpha * other (same shape).
  void Axpy(float alpha, const Matrix& other);

  // Sum of squared elements.
  double SquaredNorm() const;

  // Fills with Uniform(-bound, bound) — used for NN initialization.
  void RandomUniform(Rng& rng, float bound);

  Matrix Transposed() const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

// C = alpha * op(A) * op(B) + beta * C, where op is optional transposition.
// Shapes are validated with CG_CHECK.
//
// Uses register-tiled, stride-1-vectorizable blocked kernels, sharded across
// the global thread pool for large problems. Every output element is a
// single fixed-order accumulation chain (k ascending), so the result is
// bitwise-identical for any tile partitioning and any thread count.
//
// When op(A) has fewer rows than the tile height, dispatches to GEMV-shaped
// small-M kernels that stream op(B) exactly once instead of once per column
// tile. Their per-element accumulation chains are identical to the tiled
// kernels', so the dispatch is invisible in the output bits (enforced by
// tests against GemmTiled).
void Gemm(bool trans_a, bool trans_b, float alpha, const Matrix& a, const Matrix& b,
          float beta, Matrix* c);

// The tile-only blocked path with no small-M dispatch. This is bitwise- and
// performance-identical to what Gemm did before the small-M kernels existed;
// it is kept callable as the oracle for the small-M bitwise tests and as the
// honest baseline for the generation fast-path benchmarks.
void GemmTiled(bool trans_a, bool trans_b, float alpha, const Matrix& a, const Matrix& b,
               float beta, Matrix* c);

// acc[j] += sum_p x[p] * w(p, j) for j in [0, n), with p strictly ascending —
// one accumulation chain per element, the same chain the blocked NN kernels
// produce for a one-row A with alpha = 1. `w` is row-major with n columns;
// `acc` is accumulated into, not zeroed. This is the building block of the
// packed-weight inference step (src/nn): callers keep a preallocated `acc`
// and add it to the destination afterwards, reproducing Gemm's
// ApplyBeta-then-accumulate epilogue bit for bit.
void GemvAccumulate(const float* x, size_t k, const float* w, size_t n, float* acc);

// Column-span variant: acc[j] += sum_p x[p] * w(p, c0 + j) for j in [0, n),
// where `w` points at column c0 of a row-major matrix with row stride `ldw`.
// The per-element chains are position-independent (chunking only groups
// output columns; each element is still one p-ascending chain), so a span's
// outputs are bitwise-identical to the same columns of a full-width
// GemvAccumulate call. This is what lets the class-factored softmax evaluate
// one cluster's slice of the output layer without touching the rest.
void GemvAccumulateStrided(const float* x, size_t k, const float* w, size_t ldw,
                           size_t n, float* acc);

// Reference implementation: the original plain i-k-j kernels, single
// threaded and unblocked. Kept as the correctness oracle for the blocked
// kernels (tests/benchmarks); same semantics as Gemm, different float
// summation order.
void GemmReference(bool trans_a, bool trans_b, float alpha, const Matrix& a,
                   const Matrix& b, float beta, Matrix* c);

// out[r] = sum_c m(r, c) — row sums into a vector of length Rows().
std::vector<float> RowSums(const Matrix& m);

// Adds `bias` (length Cols()) to every row of `m`.
void AddRowBroadcast(Matrix* m, const std::vector<float>& bias);

// Binary serialization (shape + raw floats).
void WriteMatrix(std::ostream& out, const Matrix& m);
Matrix ReadMatrix(std::istream& in);

}  // namespace cloudgen

#endif  // SRC_TENSOR_MATRIX_H_
