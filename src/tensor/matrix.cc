#include "src/tensor/matrix.h"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>

#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace cloudgen {

Matrix::Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

Matrix::Matrix(size_t rows, size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

float& Matrix::At(size_t r, size_t c) {
  CG_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

float Matrix::At(size_t r, size_t c) const {
  CG_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

void Matrix::Fill(float value) {
  for (auto& v : data_) {
    v = value;
  }
}

void Matrix::Reshape(size_t rows, size_t cols) {
  CG_CHECK(rows * cols == data_.size());
  rows_ = rows;
  cols_ = cols;
}

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

void Matrix::Scale(float s) {
  for (auto& v : data_) {
    v *= s;
  }
}

void Matrix::Add(const Matrix& other) {
  CG_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
}

void Matrix::Axpy(float alpha, const Matrix& other) {
  CG_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

double Matrix::SquaredNorm() const {
  double acc = 0.0;
  for (float v : data_) {
    acc += static_cast<double>(v) * static_cast<double>(v);
  }
  return acc;
}

void Matrix::RandomUniform(Rng& rng, float bound) {
  for (auto& v : data_) {
    v = static_cast<float>(rng.Uniform(-bound, bound));
  }
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

namespace {

// Plain reference kernels, all with a stride-1 inner loop over the output
// columns (or a stride-1 dot product). A is m x k, B is k x n, C is m x n
// after op(). Zero multipliers are NOT skipped: 0 * NaN must produce NaN so
// that divergence in one operand always propagates to the output (the
// training watchdog depends on non-finite values surfacing).

void RefGemmNN(float alpha, const Matrix& a, const Matrix& b, Matrix* c) {
  const size_t m = a.Rows();
  const size_t k = a.Cols();
  const size_t n = b.Cols();
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = a.Row(i);
    float* c_row = c->Row(i);
    for (size_t p = 0; p < k; ++p) {
      const float av = alpha * a_row[p];
      const float* b_row = b.Row(p);
      for (size_t j = 0; j < n; ++j) {
        c_row[j] += av * b_row[j];
      }
    }
  }
}

void RefGemmTN(float alpha, const Matrix& a, const Matrix& b, Matrix* c) {
  // C(i,j) += alpha * sum_p A(p,i) * B(p,j).
  const size_t k = a.Rows();
  const size_t m = a.Cols();
  const size_t n = b.Cols();
  for (size_t p = 0; p < k; ++p) {
    const float* a_row = a.Row(p);
    const float* b_row = b.Row(p);
    for (size_t i = 0; i < m; ++i) {
      const float av = alpha * a_row[i];
      float* c_row = c->Row(i);
      for (size_t j = 0; j < n; ++j) {
        c_row[j] += av * b_row[j];
      }
    }
  }
}

void RefGemmNT(float alpha, const Matrix& a, const Matrix& b, Matrix* c) {
  // C(i,j) += alpha * dot(A.row(i), B.row(j)).
  const size_t m = a.Rows();
  const size_t k = a.Cols();
  const size_t n = b.Rows();
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = a.Row(i);
    float* c_row = c->Row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* b_row = b.Row(j);
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) {
        acc += a_row[p] * b_row[p];
      }
      c_row[j] += alpha * acc;
    }
  }
}

void RefGemmTT(float alpha, const Matrix& a, const Matrix& b, Matrix* c) {
  // Rare path: materialize A^T and reuse the NT kernel.
  const Matrix at = a.Transposed();
  RefGemmNT(alpha, at, b, c);
}

// ---------------------------------------------------------------------------
// Blocked kernels.
//
// Register-tiled micro-kernels: a kRowTile x kColTile block of C is
// accumulated in a local register tile over the whole k extent, then added to
// C once. The inner j loop is stride-1 and carries kRowTile independent FMA
// chains, so -O3 vectorizes it without -ffast-math.
//
// Determinism: each output element C(i,j) is one accumulation chain with p
// strictly ascending, regardless of which tile (full or edge) covers it and
// regardless of row sharding across threads. Results are therefore bitwise
// identical for any thread count.

constexpr size_t kRowTile = 4;   // C rows per register tile.
constexpr size_t kColTile = 32;  // C cols per register tile.

// NN micro-step for one (rows x cols) tile at (i0, j0); rows <= kRowTile,
// cols <= kColTile. `a` is (m, k) row-major, `b` is (k, n) row-major.
inline void TileNN(float alpha, const Matrix& a, const Matrix& b, Matrix* c, size_t i0,
                   size_t j0, size_t rows, size_t cols) {
  const size_t k = a.Cols();
  float acc[kRowTile][kColTile] = {};
  const float* a_rows[kRowTile];
  for (size_t r = 0; r < rows; ++r) {
    a_rows[r] = a.Row(i0 + r);
  }
  if (rows == kRowTile && cols == kColTile) {
    // Hot full-tile path with constant trip counts.
    for (size_t p = 0; p < k; ++p) {
      const float* bp = b.Row(p) + j0;
      for (size_t r = 0; r < kRowTile; ++r) {
        const float av = alpha * a_rows[r][p];
        for (size_t jj = 0; jj < kColTile; ++jj) {
          acc[r][jj] += av * bp[jj];
        }
      }
    }
  } else {
    for (size_t p = 0; p < k; ++p) {
      const float* bp = b.Row(p) + j0;
      for (size_t r = 0; r < rows; ++r) {
        const float av = alpha * a_rows[r][p];
        for (size_t jj = 0; jj < cols; ++jj) {
          acc[r][jj] += av * bp[jj];
        }
      }
    }
  }
  for (size_t r = 0; r < rows; ++r) {
    float* c_row = c->Row(i0 + r) + j0;
    for (size_t jj = 0; jj < cols; ++jj) {
      c_row[jj] += acc[r][jj];
    }
  }
}

// TN micro-step: C(i,j) += alpha * sum_p A(p,i) * B(p,j). A is (k, m).
inline void TileTN(float alpha, const Matrix& a, const Matrix& b, Matrix* c, size_t i0,
                   size_t j0, size_t rows, size_t cols) {
  const size_t k = a.Rows();
  float acc[kRowTile][kColTile] = {};
  if (rows == kRowTile && cols == kColTile) {
    for (size_t p = 0; p < k; ++p) {
      const float* ap = a.Row(p) + i0;
      const float* bp = b.Row(p) + j0;
      for (size_t r = 0; r < kRowTile; ++r) {
        const float av = alpha * ap[r];
        for (size_t jj = 0; jj < kColTile; ++jj) {
          acc[r][jj] += av * bp[jj];
        }
      }
    }
  } else {
    for (size_t p = 0; p < k; ++p) {
      const float* ap = a.Row(p) + i0;
      const float* bp = b.Row(p) + j0;
      for (size_t r = 0; r < rows; ++r) {
        const float av = alpha * ap[r];
        for (size_t jj = 0; jj < cols; ++jj) {
          acc[r][jj] += av * bp[jj];
        }
      }
    }
  }
  for (size_t r = 0; r < rows; ++r) {
    float* c_row = c->Row(i0 + r) + j0;
    for (size_t jj = 0; jj < cols; ++jj) {
      c_row[jj] += acc[r][jj];
    }
  }
}

// Fixed-order partial-sum dot product: 8 interleaved chains plus a fixed
// final reduction, so the result does not depend on the caller's tiling.
inline float DotFixed(const float* x, const float* y, size_t k) {
  float partial[8] = {};
  size_t p = 0;
  for (; p + 8 <= k; p += 8) {
    for (size_t u = 0; u < 8; ++u) {
      partial[u] += x[p + u] * y[p + u];
    }
  }
  for (size_t u = 0; p + u < k; ++u) {
    partial[u] += x[p + u] * y[p + u];
  }
  const float s01 = partial[0] + partial[1];
  const float s23 = partial[2] + partial[3];
  const float s45 = partial[4] + partial[5];
  const float s67 = partial[6] + partial[7];
  return (s01 + s23) + (s45 + s67);
}

// Strided variant of DotFixed: x is read at stride `xs` (a matrix column).
// The products and the partial-sum structure are identical to DotFixed on the
// materialized column, so the result is bitwise the same without the
// transpose allocation.
inline float DotFixedStrided(const float* x, size_t xs, const float* y, size_t k) {
  float partial[8] = {};
  size_t p = 0;
  for (; p + 8 <= k; p += 8) {
    for (size_t u = 0; u < 8; ++u) {
      partial[u] += x[(p + u) * xs] * y[p + u];
    }
  }
  for (size_t u = 0; p + u < k; ++u) {
    partial[u] += x[(p + u) * xs] * y[p + u];
  }
  const float s01 = partial[0] + partial[1];
  const float s23 = partial[2] + partial[3];
  const float s45 = partial[4] + partial[5];
  const float s67 = partial[6] + partial[7];
  return (s01 + s23) + (s45 + s67);
}

// ---------------------------------------------------------------------------
// Small-M (GEMV-shaped) kernels, used when op(A) has fewer rows than a tile.
//
// The tiled NN/TN kernels walk B once per kColTile-wide column strip, so a
// one-row product streams the whole B matrix n/kColTile times. These kernels
// keep a column strip of the accumulator in a stack buffer wide enough that B
// is streamed exactly once, which is what makes per-token inference steps
// (M = 1) fast. Each output element is still one p-ascending chain computed
// into a zeroed local accumulator and added to C afterwards — element for
// element the same float operations as TileNN/TileTN, so Gemm's result does
// not depend on which path ran.

constexpr size_t kGemvStripCols = 512;  // Accumulator strip held on the stack.

// One register-resident accumulator chunk: racc[jj] starts from the caller's
// acc value and accumulates (alpha * x[p]) * w(p, j0 + jj) for p ascending —
// exactly the chain a p-outer loop over the caller's buffer would compute,
// but with the chunk held in registers across the whole k loop so the
// accumulator never round-trips through memory per p. `width` is kColTile on
// the main path (constant trip count → the compiler keeps racc in vector
// registers) and the remainder on the tail.
// Register chunk width. Wider than kColTile so the k loop carries enough
// independent accumulator registers to hide FMA latency (each output element
// is one serial chain; parallelism comes only from neighboring elements).
// The chunk width never affects results — chains are per-element.
constexpr size_t kGemvChunkCols = 2 * kColTile;

// Full-width chunk: constant trip count kGemvChunkCols, so racc lives in
// vector registers for the whole k loop.
inline void GemvChunkFull(float alpha, const float* x, size_t xs, size_t k, const float* w,
                          size_t ld, float* acc) {
  float racc[kGemvChunkCols];
  for (size_t jj = 0; jj < kGemvChunkCols; ++jj) {
    racc[jj] = acc[jj];
  }
  for (size_t p = 0; p < k; ++p) {
    const float av = alpha * x[p * xs];
    const float* wp = w + p * ld;
    for (size_t jj = 0; jj < kGemvChunkCols; ++jj) {
      racc[jj] += av * wp[jj];
    }
  }
  for (size_t jj = 0; jj < kGemvChunkCols; ++jj) {
    acc[jj] = racc[jj];
  }
}

// Remainder chunk (width < kGemvChunkCols): same chains, runtime trip count.
inline void GemvChunkTail(float alpha, const float* x, size_t xs, size_t k, const float* w,
                          size_t ld, size_t width, float* acc) {
  float racc[kGemvChunkCols];
  for (size_t jj = 0; jj < width; ++jj) {
    racc[jj] = acc[jj];
  }
  for (size_t p = 0; p < k; ++p) {
    const float av = alpha * x[p * xs];
    const float* wp = w + p * ld;
    for (size_t jj = 0; jj < width; ++jj) {
      racc[jj] += av * wp[jj];
    }
  }
  for (size_t jj = 0; jj < width; ++jj) {
    acc[jj] = racc[jj];
  }
}

// Accumulator strip: acc[jj] += (alpha * x[p]) * w(p, j0 + jj), one fixed
// p-ascending chain per element seeded from acc's existing value, with the
// x element read at stride `xs` (1 for NN, the row length for TN).
inline void GemvStrip(float alpha, const float* x, size_t xs, size_t k, const float* w,
                      size_t ld, size_t cols, float* acc) {
  size_t j0 = 0;
  for (; j0 + kGemvChunkCols <= cols; j0 += kGemvChunkCols) {
    GemvChunkFull(alpha, x, xs, k, w + j0, ld, acc + j0);
  }
  if (j0 < cols) {
    GemvChunkTail(alpha, x, xs, k, w + j0, ld, cols - j0, acc + j0);
  }
}

void SmallNN(float alpha, const Matrix& a, const Matrix& b, Matrix* c) {
  const size_t m = a.Rows();
  const size_t k = a.Cols();
  const size_t n = b.Cols();
  float acc[kGemvStripCols];
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = a.Row(i);
    float* c_row = c->Row(i);
    for (size_t j0 = 0; j0 < n; j0 += kGemvStripCols) {
      const size_t cols = std::min(kGemvStripCols, n - j0);
      std::fill(acc, acc + cols, 0.0f);
      GemvStrip(alpha, a_row, 1, k, b.Data() + j0, n, cols, acc);
      for (size_t jj = 0; jj < cols; ++jj) {
        c_row[j0 + jj] += acc[jj];
      }
    }
  }
}

void SmallTN(float alpha, const Matrix& a, const Matrix& b, Matrix* c) {
  // C(i,j) += alpha * sum_p A(p,i) * B(p,j); A is (k, m), column i is strided.
  const size_t k = a.Rows();
  const size_t m = a.Cols();
  const size_t n = b.Cols();
  float acc[kGemvStripCols];
  for (size_t i = 0; i < m; ++i) {
    const float* a_col = a.Data() + i;
    float* c_row = c->Row(i);
    for (size_t j0 = 0; j0 < n; j0 += kGemvStripCols) {
      const size_t cols = std::min(kGemvStripCols, n - j0);
      std::fill(acc, acc + cols, 0.0f);
      GemvStrip(alpha, a_col, m, k, b.Data() + j0, n, cols, acc);
      for (size_t jj = 0; jj < cols; ++jj) {
        c_row[j0 + jj] += acc[jj];
      }
    }
  }
}

void SmallTT(float alpha, const Matrix& a, const Matrix& b, Matrix* c) {
  // Matches BlockedNT on a materialized A^T (DotFixedStrided reproduces
  // DotFixed's chains exactly) without the transpose allocation.
  const size_t k = a.Rows();
  const size_t m = a.Cols();
  const size_t n = b.Rows();
  for (size_t i = 0; i < m; ++i) {
    const float* a_col = a.Data() + i;
    float* c_row = c->Row(i);
    for (size_t j = 0; j < n; ++j) {
      c_row[j] += alpha * DotFixedStrided(a_col, m, b.Row(j), k);
    }
  }
}

// Row-range kernels: compute C rows [row_begin, row_end). These are the unit
// of thread sharding; see the determinism note above.

void BlockedNN(float alpha, const Matrix& a, const Matrix& b, Matrix* c, size_t row_begin,
               size_t row_end) {
  const size_t n = b.Cols();
  for (size_t i0 = row_begin; i0 < row_end; i0 += kRowTile) {
    const size_t rows = std::min(kRowTile, row_end - i0);
    for (size_t j0 = 0; j0 < n; j0 += kColTile) {
      TileNN(alpha, a, b, c, i0, j0, rows, std::min(kColTile, n - j0));
    }
  }
}

void BlockedTN(float alpha, const Matrix& a, const Matrix& b, Matrix* c, size_t row_begin,
               size_t row_end) {
  const size_t n = b.Cols();
  for (size_t i0 = row_begin; i0 < row_end; i0 += kRowTile) {
    const size_t rows = std::min(kRowTile, row_end - i0);
    for (size_t j0 = 0; j0 < n; j0 += kColTile) {
      TileTN(alpha, a, b, c, i0, j0, rows, std::min(kColTile, n - j0));
    }
  }
}

void BlockedNT(float alpha, const Matrix& a, const Matrix& b, Matrix* c, size_t row_begin,
               size_t row_end) {
  // C(i,j) += alpha * dot(A.row(i), B.row(j)); both operands stride-1.
  const size_t k = a.Cols();
  const size_t n = b.Rows();
  for (size_t i = row_begin; i < row_end; ++i) {
    const float* a_row = a.Row(i);
    float* c_row = c->Row(i);
    for (size_t j = 0; j < n; ++j) {
      c_row[j] += alpha * DotFixed(a_row, b.Row(j), k);
    }
  }
}

using RangeKernel = void (*)(float, const Matrix&, const Matrix&, Matrix*, size_t, size_t);

// Shards C's rows across the global pool when the problem is big enough to
// amortize dispatch; runs inline otherwise.
void RunSharded(RangeKernel kernel, float alpha, const Matrix& a, const Matrix& b,
                Matrix* c, size_t k) {
  const size_t m = c->Rows();
  const size_t n = c->Cols();
  // ~1 MFLOP minimum per parallel dispatch. Without workers the pool would
  // run inline anyway; skipping the dispatch entirely also skips the task
  // closure allocations, which keeps the batched generation step
  // allocation-free on a single-threaded pool.
  const bool parallel = 2 * m * n * k >= (1u << 20) && m >= 2 * kRowTile &&
                        GlobalThreadPool().HasWorkers();
  if (!parallel) {
    kernel(alpha, a, b, c, 0, m);
    return;
  }
  // Shard at row-tile granularity; chunking is free to vary (determinism is
  // per-element, not per-chunk).
  const size_t num_blocks = (m + kRowTile - 1) / kRowTile;
  GlobalThreadPool().ParallelFor(0, num_blocks, [&](size_t block) {
    const size_t lo = block * kRowTile;
    kernel(alpha, a, b, c, lo, std::min(m, lo + kRowTile));
  });
}

void ApplyBeta(float beta, Matrix* c) {
  if (beta == 0.0f) {
    c->SetZero();
  } else if (beta != 1.0f) {
    c->Scale(beta);
  }
}

void CheckGemmShapes(bool trans_a, bool trans_b, const Matrix& a, const Matrix& b,
                     Matrix* c, size_t* m, size_t* k) {
  CG_CHECK(c != nullptr);
  *m = trans_a ? a.Cols() : a.Rows();
  const size_t ka = trans_a ? a.Rows() : a.Cols();
  const size_t kb = trans_b ? b.Cols() : b.Rows();
  const size_t n = trans_b ? b.Rows() : b.Cols();
  CG_CHECK_MSG(ka == kb, "Gemm inner-dimension mismatch");
  CG_CHECK_MSG(c->Rows() == *m && c->Cols() == n, "Gemm output shape mismatch");
  *k = ka;
}

// The accumulate phase of the tile-only path (after ApplyBeta).
void RunTiled(bool trans_a, bool trans_b, float alpha, const Matrix& a, const Matrix& b,
              Matrix* c, size_t k) {
  if (!trans_a && !trans_b) {
    RunSharded(BlockedNN, alpha, a, b, c, k);
  } else if (trans_a && !trans_b) {
    RunSharded(BlockedTN, alpha, a, b, c, k);
  } else if (!trans_a && trans_b) {
    RunSharded(BlockedNT, alpha, a, b, c, k);
  } else {
    // Rare path: materialize A^T and reuse the NT kernel.
    const Matrix at = a.Transposed();
    RunSharded(BlockedNT, alpha, at, b, c, k);
  }
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, float alpha, const Matrix& a, const Matrix& b,
          float beta, Matrix* c) {
  size_t m = 0;
  size_t k = 0;
  CheckGemmShapes(trans_a, trans_b, a, b, c, &m, &k);
  ApplyBeta(beta, c);
  if (m < kRowTile) {
    // GEMV-shaped outputs: single pass over op(B), same per-element chains.
    if (!trans_a && !trans_b) {
      SmallNN(alpha, a, b, c);
    } else if (trans_a && !trans_b) {
      SmallTN(alpha, a, b, c);
    } else if (!trans_a && trans_b) {
      // BlockedNT is already row-by-row with no cross-row state.
      BlockedNT(alpha, a, b, c, 0, m);
    } else {
      SmallTT(alpha, a, b, c);
    }
    return;
  }
  RunTiled(trans_a, trans_b, alpha, a, b, c, k);
}

void GemmTiled(bool trans_a, bool trans_b, float alpha, const Matrix& a, const Matrix& b,
               float beta, Matrix* c) {
  size_t m = 0;
  size_t k = 0;
  CheckGemmShapes(trans_a, trans_b, a, b, c, &m, &k);
  ApplyBeta(beta, c);
  RunTiled(trans_a, trans_b, alpha, a, b, c, k);
}

void GemvAccumulate(const float* x, size_t k, const float* w, size_t n, float* acc) {
  GemvStrip(1.0f, x, 1, k, w, n, n, acc);
}

void GemvAccumulateStrided(const float* x, size_t k, const float* w, size_t ldw,
                           size_t n, float* acc) {
  GemvStrip(1.0f, x, 1, k, w, ldw, n, acc);
}

void GemmReference(bool trans_a, bool trans_b, float alpha, const Matrix& a,
                   const Matrix& b, float beta, Matrix* c) {
  CG_CHECK(c != nullptr);
  const size_t m = trans_a ? a.Cols() : a.Rows();
  const size_t ka = trans_a ? a.Rows() : a.Cols();
  const size_t kb = trans_b ? b.Cols() : b.Rows();
  const size_t n = trans_b ? b.Rows() : b.Cols();
  CG_CHECK_MSG(ka == kb, "Gemm inner-dimension mismatch");
  CG_CHECK_MSG(c->Rows() == m && c->Cols() == n, "Gemm output shape mismatch");
  ApplyBeta(beta, c);
  if (!trans_a && !trans_b) {
    RefGemmNN(alpha, a, b, c);
  } else if (trans_a && !trans_b) {
    RefGemmTN(alpha, a, b, c);
  } else if (!trans_a && trans_b) {
    RefGemmNT(alpha, a, b, c);
  } else {
    RefGemmTT(alpha, a, b, c);
  }
}

std::vector<float> RowSums(const Matrix& m) {
  std::vector<float> sums(m.Rows(), 0.0f);
  for (size_t r = 0; r < m.Rows(); ++r) {
    const float* row = m.Row(r);
    float acc = 0.0f;
    for (size_t c = 0; c < m.Cols(); ++c) {
      acc += row[c];
    }
    sums[r] = acc;
  }
  return sums;
}

void AddRowBroadcast(Matrix* m, const std::vector<float>& bias) {
  CG_CHECK(m != nullptr);
  CG_CHECK(bias.size() == m->Cols());
  for (size_t r = 0; r < m->Rows(); ++r) {
    float* row = m->Row(r);
    for (size_t c = 0; c < m->Cols(); ++c) {
      row[c] += bias[c];
    }
  }
}

void WriteMatrix(std::ostream& out, const Matrix& m) {
  const uint64_t rows = m.Rows();
  const uint64_t cols = m.Cols();
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out.write(reinterpret_cast<const char*>(m.Data()),
            static_cast<std::streamsize>(sizeof(float) * m.Size()));
}

Matrix ReadMatrix(std::istream& in) {
  uint64_t rows = 0;
  uint64_t cols = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  CG_CHECK_MSG(static_cast<bool>(in), "ReadMatrix: truncated header");
  Matrix m(rows, cols);
  in.read(reinterpret_cast<char*>(m.Data()),
          static_cast<std::streamsize>(sizeof(float) * m.Size()));
  CG_CHECK_MSG(static_cast<bool>(in), "ReadMatrix: truncated payload");
  return m;
}

}  // namespace cloudgen
