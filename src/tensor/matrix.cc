#include "src/tensor/matrix.h"

#include <cstdint>
#include <istream>
#include <ostream>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace cloudgen {

Matrix::Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

Matrix::Matrix(size_t rows, size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

float& Matrix::At(size_t r, size_t c) {
  CG_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

float Matrix::At(size_t r, size_t c) const {
  CG_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

void Matrix::Fill(float value) {
  for (auto& v : data_) {
    v = value;
  }
}

void Matrix::Reshape(size_t rows, size_t cols) {
  CG_CHECK(rows * cols == data_.size());
  rows_ = rows;
  cols_ = cols;
}

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

void Matrix::Scale(float s) {
  for (auto& v : data_) {
    v *= s;
  }
}

void Matrix::Add(const Matrix& other) {
  CG_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
}

void Matrix::Axpy(float alpha, const Matrix& other) {
  CG_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

double Matrix::SquaredNorm() const {
  double acc = 0.0;
  for (float v : data_) {
    acc += static_cast<double>(v) * static_cast<double>(v);
  }
  return acc;
}

void Matrix::RandomUniform(Rng& rng, float bound) {
  for (auto& v : data_) {
    v = static_cast<float>(rng.Uniform(-bound, bound));
  }
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

namespace {

// Plain kernels, all with a stride-1 inner loop over the output columns (or a
// stride-1 dot product). A is m x k, B is k x n, C is m x n after op().

void GemmNN(float alpha, const Matrix& a, const Matrix& b, Matrix* c) {
  const size_t m = a.Rows();
  const size_t k = a.Cols();
  const size_t n = b.Cols();
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = a.Row(i);
    float* c_row = c->Row(i);
    for (size_t p = 0; p < k; ++p) {
      const float av = alpha * a_row[p];
      if (av == 0.0f) {
        continue;
      }
      const float* b_row = b.Row(p);
      for (size_t j = 0; j < n; ++j) {
        c_row[j] += av * b_row[j];
      }
    }
  }
}

void GemmTN(float alpha, const Matrix& a, const Matrix& b, Matrix* c) {
  // C(i,j) += alpha * sum_p A(p,i) * B(p,j).
  const size_t m = a.Cols();
  const size_t k = a.Rows();
  const size_t n = b.Cols();
  for (size_t p = 0; p < k; ++p) {
    const float* a_row = a.Row(p);
    const float* b_row = b.Row(p);
    for (size_t i = 0; i < m; ++i) {
      const float av = alpha * a_row[i];
      if (av == 0.0f) {
        continue;
      }
      float* c_row = c->Row(i);
      for (size_t j = 0; j < n; ++j) {
        c_row[j] += av * b_row[j];
      }
    }
  }
  (void)m;
}

void GemmNT(float alpha, const Matrix& a, const Matrix& b, Matrix* c) {
  // C(i,j) += alpha * dot(A.row(i), B.row(j)).
  const size_t m = a.Rows();
  const size_t k = a.Cols();
  const size_t n = b.Rows();
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = a.Row(i);
    float* c_row = c->Row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* b_row = b.Row(j);
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) {
        acc += a_row[p] * b_row[p];
      }
      c_row[j] += alpha * acc;
    }
  }
}

void GemmTT(float alpha, const Matrix& a, const Matrix& b, Matrix* c) {
  // Rare path: materialize A^T and reuse the NT kernel.
  const Matrix at = a.Transposed();
  GemmNT(alpha, at, b, c);
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, float alpha, const Matrix& a, const Matrix& b,
          float beta, Matrix* c) {
  CG_CHECK(c != nullptr);
  const size_t m = trans_a ? a.Cols() : a.Rows();
  const size_t ka = trans_a ? a.Rows() : a.Cols();
  const size_t kb = trans_b ? b.Cols() : b.Rows();
  const size_t n = trans_b ? b.Rows() : b.Cols();
  CG_CHECK_MSG(ka == kb, "Gemm inner-dimension mismatch");
  CG_CHECK_MSG(c->Rows() == m && c->Cols() == n, "Gemm output shape mismatch");
  if (beta == 0.0f) {
    c->SetZero();
  } else if (beta != 1.0f) {
    c->Scale(beta);
  }
  if (!trans_a && !trans_b) {
    GemmNN(alpha, a, b, c);
  } else if (trans_a && !trans_b) {
    GemmTN(alpha, a, b, c);
  } else if (!trans_a && trans_b) {
    GemmNT(alpha, a, b, c);
  } else {
    GemmTT(alpha, a, b, c);
  }
}

std::vector<float> RowSums(const Matrix& m) {
  std::vector<float> sums(m.Rows(), 0.0f);
  for (size_t r = 0; r < m.Rows(); ++r) {
    const float* row = m.Row(r);
    float acc = 0.0f;
    for (size_t c = 0; c < m.Cols(); ++c) {
      acc += row[c];
    }
    sums[r] = acc;
  }
  return sums;
}

void AddRowBroadcast(Matrix* m, const std::vector<float>& bias) {
  CG_CHECK(m != nullptr);
  CG_CHECK(bias.size() == m->Cols());
  for (size_t r = 0; r < m->Rows(); ++r) {
    float* row = m->Row(r);
    for (size_t c = 0; c < m->Cols(); ++c) {
      row[c] += bias[c];
    }
  }
}

void WriteMatrix(std::ostream& out, const Matrix& m) {
  const uint64_t rows = m.Rows();
  const uint64_t cols = m.Cols();
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out.write(reinterpret_cast<const char*>(m.Data()),
            static_cast<std::streamsize>(sizeof(float) * m.Size()));
}

Matrix ReadMatrix(std::istream& in) {
  uint64_t rows = 0;
  uint64_t cols = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  CG_CHECK_MSG(static_cast<bool>(in), "ReadMatrix: truncated header");
  Matrix m(rows, cols);
  in.read(reinterpret_cast<char*>(m.Data()),
          static_cast<std::streamsize>(sizeof(float) * m.Size()));
  CG_CHECK_MSG(static_cast<bool>(in), "ReadMatrix: truncated payload");
  return m;
}

}  // namespace cloudgen
