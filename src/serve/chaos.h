// In-process chaos harness for the serve daemon: run one daemon plus N
// concurrent fetch clients under a named fault plan and check the
// robustness invariants the failure model promises (src/serve/server.h,
// docs/ROBUSTNESS.md), end to end, in one process.
//
// The harness is the executable form of the serve failure model. It
//   1. disarms fault injection and computes the fault-free oracle — the
//      exact bytes every client must end up with (all clients request the
//      same (seed, traces) family, so one oracle covers them all);
//   2. verifies the plan's schedule is deterministic for its seed
//      (VerifyPlanDeterminism) so a failing scenario reproduces;
//   3. starts an in-process StreamServer, arms the plan on the global
//      injector, and runs `clients` concurrent FetchStream loops (distinct
//      tenants) that survive drops, sheds, and watchdog cuts through the
//      client's own reconnect-resume machinery;
//   4. drains the server and checks the invariants:
//        * every client's reassembled bytes are identical to the oracle;
//        * the registry's buffered-bytes high-water mark stayed within
//          max_total_buffer_bytes;
//        * zero streams remained active after drain (no stuck sessions);
//        * the server survived the whole scenario (Wait() returned OK —
//          the daemon never crashed or hard-errored its accept loop).
//
// Every violation lands in ChaosReport::failures; an empty list is a PASS.
// The `cloudgen chaos` subcommand and the chaos-soak CI job are thin
// wrappers over RunChaosScenario.
#ifndef SRC_SERVE_CHAOS_H_
#define SRC_SERVE_CHAOS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/workload_model.h"
#include "src/serve/stream_registry.h"
#include "src/util/fault.h"
#include "src/util/status.h"

namespace cloudgen {
namespace serve {

struct ChaosOptions {
  // Trained model the daemon serves from. Required; must outlive the run.
  const WorkloadModel* model = nullptr;
  WorkloadModel::GenerateOptions gen;

  // Fault-plan source text (src/util/fault_plan.h grammar). Empty selects
  // ComposedScenarioPlan().
  std::string plan_spec;
  uint64_t plan_seed = FaultInjector::kDefaultSeed;
  // Calls per kind driven through VerifyPlanDeterminism's replay pre-check.
  uint64_t determinism_calls = 512;

  // Scenario shape.
  int clients = 8;          // Concurrent fetch clients (distinct tenants).
  uint64_t seed = 77;       // Stream family seed (shared by every client).
  uint64_t traces = 4;      // Traces per stream.
  // Directory for serve drain/cut checkpoints; empty disables them (resume
  // then always regenerates from trace 0 — still byte-identical).
  std::string state_dir;

  // Server tuning, scaled down so watchdog cuts and degradation windows
  // play out in seconds, not minutes.
  int stall_timeout_ms = 400;
  int supervisor_interval_ms = 20;
  int degraded_cooldown_ms = 250;
  int io_timeout_ms = 5000;
  int idle_timeout_ms = 5000;
  ServeLimits limits;

  // Whole-scenario wall-clock budget; past it the harness cancels every
  // client and records a failure instead of hanging the caller.
  double deadline_sec = 120.0;
};

struct ChaosReport {
  int clients = 0;
  uint64_t oracle_bytes = 0;        // Per-client expected byte count.
  uint64_t total_reconnects = 0;    // Summed over clients.
  size_t peak_buffered_bytes = 0;   // Registry high-water mark.
  size_t buffer_limit_bytes = 0;    // The bound it must respect.
  size_t streams_after_drain = 0;   // Must be 0: nothing stuck.
  bool server_survived = false;     // Wait() returned OK after drain.
  bool bytes_identical = false;     // Every client matched the oracle.
  // Injected-fault counts per kind, captured before disarm.
  size_t injected[kNumFaultKinds] = {0};

  // Invariant violations, one human-readable line each; empty == PASS.
  std::vector<std::string> failures;
  bool ok() const { return failures.empty(); }

  // Multi-line "chaos: <invariant> ok|FAILED ..." report ending in
  // "chaos: PASS" or "chaos: FAIL".
  std::string Summary() const;
};

// The composed scenario the issue's acceptance gate runs: connection drops
// and partial writes throughout, an ENOSPC window on the server's first
// checkpoint commits, one stream wedged until the watchdog cuts it, and
// periodic fd exhaustion in the accept loop.
std::string ComposedScenarioPlan();

// Runs the scenario. Returns a non-OK status only for setup errors (untrained
// model, unparseable plan, server failed to start); invariant violations are
// reported through `report->failures` with an OK status so callers can print
// the full report. Reconfigures and finally disarms the process-global
// FaultInjector — do not run concurrently with other fault-injection users.
Status RunChaosScenario(const ChaosOptions& options, ChaosReport* report);

}  // namespace serve
}  // namespace cloudgen

#endif  // SRC_SERVE_CHAOS_H_
