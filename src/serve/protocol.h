// The cloudgen serve wire protocol: length-prefixed frames over TCP.
//
// Frame layout (all integers little-endian):
//   [u32 payload_len][u8 type][payload_len bytes]
//
// A session is either a STREAM session (OPEN .. DATA*/END) or a one-shot
// control session (METRICS or HEALTH). Text payloads are newline-separated
// key=value pairs; DATA payloads are a u64 byte offset followed by raw trace
// rows (AppendJobRow lines).
//
//   client -> server                server -> client
//   ----------------                ----------------
//   OPEN    tenant=,stream=,        OPEN_OK offset=<resume offset>
//           seed=,traces=,offset=   ERROR   code=,message=
//   CREDIT  <u64 bytes granted>     DATA    <u64 offset><rows...>
//   CLOSE                           END     bytes=,crc=,rows=
//   METRICS                         METRICS_OK <metrics JSON>
//   HEALTH                          HEALTH_OK  status=,streams_active=,...
//
// Flow control is credit-based and per-stream: the server may have at most
// `credit` unsent bytes in flight; a slow consumer stalls only its own
// stream (serve.backpressure.stalls). END carries the byte count, row count
// and CRC-32 of the ENTIRE stream from offset 0 — even when the session
// resumed mid-stream — so a client reassembling across reconnects can verify
// the whole artifact.
//
// Robustness contract: any EOF — at a frame boundary or inside a frame
// (injected net_partial_write) — is UNAVAILABLE: the torn frame is discarded
// unconsumed, so a client reconnects and resumes. DATA_LOSS is reserved for
// semantic corruption that retrying cannot fix: a frame length beyond
// kMaxFramePayload, a DATA offset that contradicts the client's cursor, or
// an END whose CRC disagrees with the assembled bytes.
#ifndef SRC_SERVE_PROTOCOL_H_
#define SRC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/util/net.h"
#include "src/util/status.h"

namespace cloudgen {

class CancelToken;

namespace serve {

enum class FrameType : uint8_t {
  kOpen = 1,
  kOpenOk = 2,
  kCredit = 3,
  kData = 4,
  kEnd = 5,
  kError = 6,
  kMetrics = 7,
  kMetricsOk = 8,
  kHealth = 9,
  kHealthOk = 10,
  kClose = 11,
  // One-shot Prometheus text exposition of the metrics registry (the same
  // snapshot kMetrics serves as JSON, rendered for scrapers). Payload of the
  // OK frame is the text-format body, UTF-8.
  kMetricsProm = 12,
  kMetricsPromOk = 13,
};

const char* FrameTypeName(FrameType type);

// Upper bound on a single frame payload; anything larger is a corrupt or
// hostile peer, not a big message.
inline constexpr uint32_t kMaxFramePayload = 8u << 20;

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

// Writes one frame. Errors follow src/util/net.h taxonomy.
Status WriteFrame(Socket& sock, FrameType type, std::string_view payload,
                  int timeout_ms, const CancelToken* cancel);

// Reads one frame. Any EOF -> UNAVAILABLE, with *clean_close=true (when
// non-null) only for an EOF at a frame boundary; an oversized frame length
// -> DATA_LOSS. Timeout -> UNAVAILABLE, cancel -> ABORTED.
Status ReadFrame(Socket& sock, Frame* frame, int timeout_ms,
                 const CancelToken* cancel, bool* clean_close = nullptr);

// key=value\n text payloads. Keys and values must not contain '\n'; values
// must not contain '=' is NOT required (split on first '=').
std::string EncodeKv(const std::map<std::string, std::string>& kv);
Status DecodeKv(std::string_view payload,
                std::map<std::string, std::string>* kv);

// Required-key accessors for decoded kv maps (missing/unparsable ->
// INVALID_ARGUMENT naming the key).
Status KvGet(const std::map<std::string, std::string>& kv,
             const std::string& key, std::string* out);
Status KvGetU64(const std::map<std::string, std::string>& kv,
                const std::string& key, uint64_t* out);

// Little-endian u64 helpers for binary payloads (DATA, CREDIT).
void PutU64Le(std::string* out, uint64_t v);
bool GetU64Le(std::string_view data, size_t pos, uint64_t* out);

// ERROR payload round-trip: the server ships a Status, the client
// reconstructs it (code + message survive; context chains flatten into the
// message).
std::string EncodeErrorPayload(const Status& status);
Status DecodeErrorPayload(std::string_view payload);

}  // namespace serve
}  // namespace cloudgen

#endif  // SRC_SERVE_PROTOCOL_H_
