#include "src/serve/stream_registry.h"

#include <utility>

#include "src/obs/metrics.h"
#include "src/util/strings.h"

namespace cloudgen {
namespace serve {
namespace {

void CountReject(const char* reason) {
  obs::Registry::Global().GetCounter("serve.rejects").Add(1);
  obs::Registry::Global()
      .GetCounter(std::string("serve.rejects.") + reason)
      .Add(1);
}

void PublishGauges(size_t active, size_t buffered) {
  static obs::Gauge& streams =
      obs::Registry::Global().GetGauge("serve.streams.active");
  static obs::Gauge& bytes =
      obs::Registry::Global().GetGauge("serve.queue.bytes");
  streams.Set(static_cast<double>(active));
  bytes.Set(static_cast<double>(buffered));
}

}  // namespace

StreamRegistry::Lease& StreamRegistry::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    Release();
    registry_ = other.registry_;
    tenant_ = std::move(other.tenant_);
    reserved_bytes_ = other.reserved_bytes_;
    other.registry_ = nullptr;
    other.reserved_bytes_ = 0;
  }
  return *this;
}

bool StreamRegistry::Lease::ReserveBytes(size_t n) {
  CG_CHECK(valid());
  // A single reservation larger than the whole bound can never fit; reject
  // up front so `current + n` below cannot wrap past the bound check.
  if (n > registry_->limits_.max_total_buffer_bytes) {
    CountReject("buffer_bytes");
    return false;
  }
  // CAS loop: admit the reservation only if it fits under the global bound.
  size_t current = registry_->buffered_bytes_.load(std::memory_order_relaxed);
  for (;;) {
    if (current + n > registry_->limits_.max_total_buffer_bytes) {
      CountReject("buffer_bytes");
      return false;
    }
    if (registry_->buffered_bytes_.compare_exchange_weak(
            current, current + n, std::memory_order_relaxed)) {
      break;
    }
  }
  reserved_bytes_ += n;
  // Track the high-water mark (serve.queue.bytes.peak); the CAS above
  // already proved current + n fits under the bound.
  size_t peak =
      registry_->peak_buffered_bytes_.load(std::memory_order_relaxed);
  while (peak < current + n &&
         !registry_->peak_buffered_bytes_.compare_exchange_weak(
             peak, current + n, std::memory_order_relaxed)) {
  }
  static obs::Gauge& peak_gauge =
      obs::Registry::Global().GetGauge("serve.queue.bytes.peak");
  peak_gauge.Set(
      static_cast<double>(registry_->PeakBufferedBytes()));
  PublishGauges(registry_->ActiveStreams(), registry_->BufferedBytes());
  return true;
}

void StreamRegistry::Lease::ReleaseBytes(size_t n) {
  CG_CHECK(valid());
  CG_CHECK(n <= reserved_bytes_);
  reserved_bytes_ -= n;
  registry_->buffered_bytes_.fetch_sub(n, std::memory_order_relaxed);
  PublishGauges(registry_->ActiveStreams(), registry_->BufferedBytes());
}

void StreamRegistry::Lease::Release() {
  if (registry_ == nullptr) {
    return;
  }
  if (reserved_bytes_ > 0) {
    registry_->buffered_bytes_.fetch_sub(reserved_bytes_,
                                         std::memory_order_relaxed);
    reserved_bytes_ = 0;
  }
  registry_->ReleaseStream(tenant_);
  PublishGauges(registry_->ActiveStreams(), registry_->BufferedBytes());
  registry_ = nullptr;
}

size_t StreamRegistry::ShardIndex(const std::string& tenant) const {
  // FNV-1a; stable across runs (shard choice is an internal detail anyway).
  uint64_t h = 1469598103934665603ull;
  for (const char c : tenant) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h % kShards);
}

Status StreamRegistry::Admit(const std::string& tenant,
                             const std::string& stream, Lease* lease) {
  // Global bound first: a full server rejects before touching tenant state.
  size_t active = active_streams_.load(std::memory_order_relaxed);
  for (;;) {
    if (active >= limits_.max_streams) {
      CountReject("server_full");
      return ResourceExhaustedError(StrFormat(
          "server_full: %zu/%zu streams active; retry when load drops "
          "(tenant '%s', stream '%s')",
          active, limits_.max_streams, tenant.c_str(), stream.c_str()));
    }
    if (active_streams_.compare_exchange_weak(active, active + 1,
                                              std::memory_order_relaxed)) {
      break;
    }
  }
  Shard& shard = shards_[ShardIndex(tenant)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    size_t& count = shard.streams_by_tenant[tenant];
    if (count >= limits_.max_streams_per_tenant) {
      const size_t have = count;
      if (have == 0) {
        shard.streams_by_tenant.erase(tenant);  // Don't leak a zero entry.
      }
      active_streams_.fetch_sub(1, std::memory_order_relaxed);
      CountReject("tenant_quota");
      return ResourceExhaustedError(StrFormat(
          "tenant_quota: tenant '%s' already has %zu/%zu streams active "
          "(stream '%s')",
          tenant.c_str(), have, limits_.max_streams_per_tenant,
          stream.c_str()));
    }
    ++count;
  }
  lease->Release();
  lease->registry_ = this;
  lease->tenant_ = tenant;
  lease->reserved_bytes_ = 0;
  PublishGauges(ActiveStreams(), BufferedBytes());
  return OkStatus();
}

void StreamRegistry::ReleaseStream(const std::string& tenant) {
  Shard& shard = shards_[ShardIndex(tenant)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.streams_by_tenant.find(tenant);
    CG_CHECK(it != shard.streams_by_tenant.end() && it->second > 0);
    if (--it->second == 0) {
      shard.streams_by_tenant.erase(it);
    }
  }
  active_streams_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace serve
}  // namespace cloudgen
