#include "src/serve/protocol.h"

#include <cstring>

#include "src/util/cancel.h"
#include "src/util/strings.h"

namespace cloudgen {
namespace serve {

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kOpen:
      return "OPEN";
    case FrameType::kOpenOk:
      return "OPEN_OK";
    case FrameType::kCredit:
      return "CREDIT";
    case FrameType::kData:
      return "DATA";
    case FrameType::kEnd:
      return "END";
    case FrameType::kError:
      return "ERROR";
    case FrameType::kMetrics:
      return "METRICS";
    case FrameType::kMetricsOk:
      return "METRICS_OK";
    case FrameType::kHealth:
      return "HEALTH";
    case FrameType::kHealthOk:
      return "HEALTH_OK";
    case FrameType::kClose:
      return "CLOSE";
    case FrameType::kMetricsProm:
      return "METRICS_PROM";
    case FrameType::kMetricsPromOk:
      return "METRICS_PROM_OK";
  }
  return "UNKNOWN";
}

Status WriteFrame(Socket& sock, FrameType type, std::string_view payload,
                  int timeout_ms, const CancelToken* cancel) {
  CG_CHECK_MSG(payload.size() <= kMaxFramePayload, "frame payload too large");
  std::string wire;
  wire.reserve(5 + payload.size());
  const auto len = static_cast<uint32_t>(payload.size());
  wire.push_back(static_cast<char>(len & 0xFF));
  wire.push_back(static_cast<char>((len >> 8) & 0xFF));
  wire.push_back(static_cast<char>((len >> 16) & 0xFF));
  wire.push_back(static_cast<char>((len >> 24) & 0xFF));
  wire.push_back(static_cast<char>(type));
  wire.append(payload.data(), payload.size());
  return WriteFully(sock, wire.data(), wire.size(), timeout_ms, cancel);
}

Status ReadFrame(Socket& sock, Frame* frame, int timeout_ms,
                 const CancelToken* cancel, bool* clean_close) {
  if (clean_close != nullptr) {
    *clean_close = false;
  }
  unsigned char header[5];
  size_t got = 0;
  Status status = ReadFully(sock, header, sizeof(header), timeout_ms, cancel, &got);
  if (!status.ok()) {
    if (status.code() == StatusCode::kUnavailable && got > 0) {
      // The peer died inside a frame header (injected net_partial_write
      // lands here). The torn frame is discarded, nothing was consumed, so
      // this is a retryable connection loss — reconnect and resume, never
      // "corrupt data".
      return UnavailableError(StrFormat(
          "connection dropped mid-frame (%zu of %zu header byte(s)): %s", got,
          sizeof(header), status.message().c_str()));
    }
    if (status.code() == StatusCode::kUnavailable && got == 0 &&
        clean_close != nullptr &&
        status.message().find("closed by peer") != std::string::npos) {
      *clean_close = true;
    }
    return status;
  }
  const uint32_t len = static_cast<uint32_t>(header[0]) |
                       (static_cast<uint32_t>(header[1]) << 8) |
                       (static_cast<uint32_t>(header[2]) << 16) |
                       (static_cast<uint32_t>(header[3]) << 24);
  if (len > kMaxFramePayload) {
    return DataLossError(StrFormat(
        "frame payload length %u exceeds the %u-byte protocol limit "
        "(corrupt or incompatible peer)",
        len, kMaxFramePayload));
  }
  frame->type = static_cast<FrameType>(header[4]);
  frame->payload.resize(len);
  if (len > 0) {
    got = 0;
    status = ReadFully(sock, frame->payload.data(), len, timeout_ms, cancel, &got);
    if (!status.ok()) {
      if (status.code() == StatusCode::kUnavailable) {
        // Same taxonomy as a torn header: the partial payload is discarded,
        // so the peer vanishing mid-payload is a retryable drop.
        return UnavailableError(StrFormat(
            "connection dropped mid-%s-frame (%zu of %u payload byte(s)): %s",
            FrameTypeName(frame->type), got, len, status.message().c_str()));
      }
      return status;
    }
  }
  return OkStatus();
}

std::string EncodeKv(const std::map<std::string, std::string>& kv) {
  std::string out;
  for (const auto& [key, value] : kv) {
    CG_CHECK_MSG(key.find('\n') == std::string::npos &&
                     key.find('=') == std::string::npos &&
                     value.find('\n') == std::string::npos,
                 "kv keys/values must not contain '\\n' (or '=' in keys)");
    out += key;
    out += '=';
    out += value;
    out += '\n';
  }
  return out;
}

Status DecodeKv(std::string_view payload,
                std::map<std::string, std::string>* kv) {
  kv->clear();
  size_t pos = 0;
  while (pos < payload.size()) {
    size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) {
      eol = payload.size();
    }
    const std::string_view line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) {
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return InvalidArgumentError(StrFormat(
          "kv payload line '%.*s' has no '='", static_cast<int>(line.size()),
          line.data()));
    }
    (*kv)[std::string(line.substr(0, eq))] = std::string(line.substr(eq + 1));
  }
  return OkStatus();
}

Status KvGet(const std::map<std::string, std::string>& kv,
             const std::string& key, std::string* out) {
  const auto it = kv.find(key);
  if (it == kv.end()) {
    return InvalidArgumentError("missing required key '" + key + "'");
  }
  *out = it->second;
  return OkStatus();
}

Status KvGetU64(const std::map<std::string, std::string>& kv,
                const std::string& key, uint64_t* out) {
  std::string raw;
  CG_RETURN_IF_ERROR(KvGet(kv, key, &raw));
  int64_t parsed = 0;
  if (!ParseInt64(raw, &parsed) || parsed < 0) {
    return InvalidArgumentError(StrFormat(
        "key '%s' value '%s' is not a non-negative integer", key.c_str(),
        raw.c_str()));
  }
  *out = static_cast<uint64_t>(parsed);
  return OkStatus();
}

void PutU64Le(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

bool GetU64Le(std::string_view data, size_t pos, uint64_t* out) {
  if (pos + 8 > data.size()) {
    return false;
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data[pos + i]))
         << (8 * i);
  }
  *out = v;
  return true;
}

std::string EncodeErrorPayload(const Status& status) {
  std::map<std::string, std::string> kv;
  kv["code"] = std::to_string(static_cast<int>(status.code()));
  std::string message = status.message();
  // kv values are newline-delimited; flatten any embedded newlines.
  for (char& c : message) {
    if (c == '\n') {
      c = ' ';
    }
  }
  kv["message"] = message;
  return EncodeKv(kv);
}

Status DecodeErrorPayload(std::string_view payload) {
  std::map<std::string, std::string> kv;
  CG_RETURN_IF_ERROR(DecodeKv(payload, &kv));
  uint64_t code = 0;
  CG_RETURN_IF_ERROR(KvGetU64(kv, "code", &code));
  std::string message;
  CG_RETURN_IF_ERROR(KvGet(kv, "message", &message));
  if (code == 0 || code > static_cast<uint64_t>(StatusCode::kResourceExhausted)) {
    return InternalError(StrFormat("peer sent unknown status code %llu: %s",
                                   static_cast<unsigned long long>(code),
                                   message.c_str()));
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

}  // namespace serve
}  // namespace cloudgen
