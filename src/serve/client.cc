#include "src/serve/client.h"

#include <utility>

#include "src/obs/metrics.h"
#include "src/serve/protocol.h"
#include "src/util/cancel.h"
#include "src/util/crc32.h"
#include "src/util/fault.h"
#include "src/util/log.h"
#include "src/util/net.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cloudgen {
namespace serve {
namespace {

// One connection's worth of fetching. Advances *progress / *crc_state for
// every byte durably written to `out`, so the caller can resume from exactly
// where this attempt died. Returns OK only on a verified END.
Status FetchOnce(const FetchOptions& options, std::ostream& out,
                 uint64_t* progress, uint32_t* crc_state,
                 FetchResult* result) {
  CG_ASSIGN_OR_RETURN(
      Socket conn,
      ConnectTcp(options.host, options.port, options.connect_timeout_ms));

  std::map<std::string, std::string> open_kv;
  open_kv["tenant"] = options.tenant;
  open_kv["stream"] = options.stream;
  open_kv["seed"] = std::to_string(options.seed);
  open_kv["traces"] = std::to_string(options.traces);
  open_kv["offset"] = std::to_string(*progress);
  CG_RETURN_IF_ERROR(WriteFrame(conn, FrameType::kOpen, EncodeKv(open_kv),
                                options.io_timeout_ms, options.cancel));

  Frame frame;
  CG_RETURN_IF_ERROR(ReadFrame(conn, &frame, options.io_timeout_ms,
                               options.cancel));
  if (frame.type == FrameType::kError) {
    return DecodeErrorPayload(frame.payload)
        .WithContext("server rejected OPEN");
  }
  if (frame.type != FrameType::kOpenOk) {
    return DataLossError(StrFormat("expected OPEN_OK, got %s",
                                   FrameTypeName(frame.type)));
  }
  std::map<std::string, std::string> ok_kv;
  CG_RETURN_IF_ERROR(DecodeKv(frame.payload, &ok_kv));
  uint64_t server_offset = 0;
  CG_RETURN_IF_ERROR(KvGetU64(ok_kv, "offset", &server_offset));
  if (server_offset != *progress) {
    return DataLossError(StrFormat(
        "server acknowledged offset %llu but client is at %llu",
        static_cast<unsigned long long>(server_offset),
        static_cast<unsigned long long>(*progress)));
  }

  // Open the flow-control window, then keep it topped up as bytes are
  // consumed: each CREDIT doubles as an ack of everything written so far.
  auto grant = [&](uint64_t n) {
    std::string payload;
    PutU64Le(&payload, n);
    return WriteFrame(conn, FrameType::kCredit, payload, options.io_timeout_ms,
                      options.cancel);
  };
  CG_RETURN_IF_ERROR(grant(options.credit_bytes));
  uint64_t consumed_since_grant = 0;

  for (;;) {
    if (options.cancel != nullptr && options.cancel->Poll()) {
      return AbortedError(StrFormat(
          "fetch cancelled (%s)", CancelReasonName(options.cancel->Reason())));
    }
    CG_RETURN_IF_ERROR(ReadFrame(conn, &frame, options.io_timeout_ms,
                                 options.cancel));
    switch (frame.type) {
      case FrameType::kData: {
        uint64_t offset = 0;
        if (!GetU64Le(frame.payload, 0, &offset)) {
          return DataLossError("malformed DATA payload (no offset)");
        }
        if (offset != *progress) {
          return DataLossError(StrFormat(
              "DATA at offset %llu but client expects %llu",
              static_cast<unsigned long long>(offset),
              static_cast<unsigned long long>(*progress)));
        }
        const char* bytes = frame.payload.data() + 8;
        const size_t n = frame.payload.size() - 8;
        out.write(bytes, static_cast<std::streamsize>(n));
        if (!out.good()) {
          return InternalError("output stream write failed");
        }
        *crc_state = Crc32Update(*crc_state, bytes, n);
        *progress += n;
        result->bytes += n;
        consumed_since_grant += n;
        if (consumed_since_grant >= options.credit_bytes / 2) {
          CG_RETURN_IF_ERROR(grant(consumed_since_grant));
          consumed_since_grant = 0;
        }
        break;
      }
      case FrameType::kEnd: {
        std::map<std::string, std::string> end_kv;
        CG_RETURN_IF_ERROR(DecodeKv(frame.payload, &end_kv));
        uint64_t total_bytes = 0;
        uint64_t total_rows = 0;
        uint64_t crc = 0;
        CG_RETURN_IF_ERROR(KvGetU64(end_kv, "bytes", &total_bytes));
        CG_RETURN_IF_ERROR(KvGetU64(end_kv, "rows", &total_rows));
        CG_RETURN_IF_ERROR(KvGetU64(end_kv, "crc", &crc));
        if (total_bytes != *progress) {
          return DataLossError(StrFormat(
              "END reports %llu byte(s) but client assembled %llu",
              static_cast<unsigned long long>(total_bytes),
              static_cast<unsigned long long>(*progress)));
        }
        const uint32_t local_crc = Crc32Finalize(*crc_state);
        if (static_cast<uint32_t>(crc) != local_crc) {
          return DataLossError(StrFormat(
              "stream CRC mismatch: server %08x, client %08x (reassembled "
              "stream is corrupt)",
              static_cast<unsigned>(crc), local_crc));
        }
        out.flush();
        if (!out.good()) {
          return InternalError("output stream flush failed");
        }
        result->total_bytes = total_bytes;
        result->rows = total_rows;
        result->crc = local_crc;
        return OkStatus();
      }
      case FrameType::kError:
        return DecodeErrorPayload(frame.payload).WithContext("server error");
      default:
        return DataLossError(StrFormat("unexpected %s frame mid-stream",
                                       FrameTypeName(frame.type)));
    }
  }
}

}  // namespace

Status FetchStream(const FetchOptions& options, std::ostream& out,
                   FetchResult* result) {
  CG_CHECK(result != nullptr);
  *result = FetchResult();
  // Client-side fault scope: plan rules with site=client (optionally a
  // tenant filter) hit this thread's socket I/O; site=serve rules never do.
  ScopedFaultSite fault_site("client", options.tenant);
  static obs::Counter& reconnects =
      obs::Registry::Global().GetCounter("serve.client.reconnects");

  uint64_t progress = options.start_offset;
  uint32_t crc_state = options.start_crc_state;
  Rng jitter_rng(options.retry.jitter_seed);
  // Attempts are charged per stall: progress resets the counter, so only
  // max_attempts *consecutive* fruitless connections give up.
  int attempt = 0;
  Status last = OkStatus();
  for (;;) {
    const uint64_t before = progress;
    Status status = FetchOnce(options, out, &progress, &crc_state, result);
    if (status.ok()) {
      return status;
    }
    if (!IsRetryable(status)) {
      return status;
    }
    last = status;
    attempt = progress > before ? 1 : attempt + 1;
    if (attempt >= options.retry.max_attempts) {
      return retry_internal::GiveUp(options.retry, "fetch", last);
    }
    result->reconnects += 1;
    reconnects.Add(1);
    retry_internal::CountRetry("fetch");
    CG_LOG_WARN("fetch: reconnecting after " + last.ToString());
    if (!SleepWithCancel(BackoffSeconds(options.retry, attempt, jitter_rng),
                         options.cancel)) {
      return AbortedError("fetch cancelled while backing off: " +
                          last.ToString());
    }
  }
}

namespace {

Status ControlRoundTrip(const std::string& host, uint16_t port, int timeout_ms,
                        FrameType request, FrameType expected_reply,
                        std::string* payload) {
  CG_ASSIGN_OR_RETURN(Socket conn, ConnectTcp(host, port, timeout_ms));
  CG_RETURN_IF_ERROR(WriteFrame(conn, request, "", timeout_ms, nullptr));
  Frame frame;
  CG_RETURN_IF_ERROR(ReadFrame(conn, &frame, timeout_ms, nullptr));
  if (frame.type == FrameType::kError) {
    return DecodeErrorPayload(frame.payload);
  }
  if (frame.type != expected_reply) {
    return DataLossError(StrFormat("expected %s, got %s",
                                   FrameTypeName(expected_reply),
                                   FrameTypeName(frame.type)));
  }
  *payload = std::move(frame.payload);
  return OkStatus();
}

}  // namespace

Status FetchMetricsJson(const std::string& host, uint16_t port,
                        int timeout_ms, std::string* json) {
  return ControlRoundTrip(host, port, timeout_ms, FrameType::kMetrics,
                          FrameType::kMetricsOk, json);
}

Status FetchMetricsProm(const std::string& host, uint16_t port,
                        int timeout_ms, std::string* text) {
  return ControlRoundTrip(host, port, timeout_ms, FrameType::kMetricsProm,
                          FrameType::kMetricsPromOk, text);
}

Status FetchHealth(const std::string& host, uint16_t port, int timeout_ms,
                   std::map<std::string, std::string>* health) {
  std::string payload;
  CG_RETURN_IF_ERROR(ControlRoundTrip(host, port, timeout_ms,
                                      FrameType::kHealth,
                                      FrameType::kHealthOk, &payload));
  return DecodeKv(payload, health);
}

}  // namespace serve
}  // namespace cloudgen
