// Client for the cloudgen serve daemon: fetch a named stream's rows with
// retry, exponential backoff + jitter, and transparent reconnect-resume.
//
// FetchStream is the durable entry point. It appends every received byte to
// `out` in offset order and tracks its own progress; when the connection
// drops (network fault, server drain/restart), it backs off per
// `RetryPolicy` and reopens the stream at the last byte it wrote. The retry
// budget is charged per *stall*, not per reconnect: any attempt that makes
// forward progress resets the attempt counter, so a month-long stream with
// occasional drops never exhausts a 5-attempt policy. On END the server's
// whole-stream CRC-32 is checked against the client's own accumulation —
// a mismatch is DATA_LOSS, never silently written.
//
// Error mapping (what the CLI turns into exit codes):
//   RESOURCE_EXHAUSTED  admission reject (quota/overload) — not retried.
//   DATA_LOSS           CRC mismatch or corrupt framing — not retried.
//   ABORTED             cancelled locally, or retries exhausted.
#ifndef SRC_SERVE_CLIENT_H_
#define SRC_SERVE_CLIENT_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "src/util/retry.h"
#include "src/util/status.h"

namespace cloudgen {

class CancelToken;

namespace serve {

struct FetchOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string tenant = "default";
  std::string stream = "stream";
  uint64_t seed = 11;
  uint64_t traces = 1;
  // Resume state: byte offset already durable at the client and the
  // incremental CRC-32 state (kCrc32Init when starting fresh) covering it.
  uint64_t start_offset = 0;
  uint32_t start_crc_state = 0xFFFFFFFFu;
  // Flow-control window granted to the server; also the ack granularity.
  size_t credit_bytes = 256u << 10;
  int io_timeout_ms = 10000;
  int connect_timeout_ms = 5000;
  RetryPolicy retry;
  const CancelToken* cancel = nullptr;
};

struct FetchResult {
  uint64_t bytes = 0;       // Bytes written by THIS call (excludes start_offset).
  uint64_t total_bytes = 0; // Whole-stream size reported by END.
  uint64_t rows = 0;        // Whole-stream row count reported by END.
  uint32_t crc = 0;         // Whole-stream CRC-32 (verified).
  int reconnects = 0;       // Dropped connections survived.
};

// Fetches the stream to `out` (appends starting at options.start_offset).
// Returns OK only after END with a verified CRC.
Status FetchStream(const FetchOptions& options, std::ostream& out,
                   FetchResult* result);

// One-shot control verbs.
Status FetchMetricsJson(const std::string& host, uint16_t port,
                        int timeout_ms, std::string* json);
// Prometheus text exposition (METRICS_PROM).
Status FetchMetricsProm(const std::string& host, uint16_t port,
                        int timeout_ms, std::string* text);
Status FetchHealth(const std::string& host, uint16_t port, int timeout_ms,
                   std::map<std::string, std::string>* health);

}  // namespace serve
}  // namespace cloudgen

#endif  // SRC_SERVE_CLIENT_H_
