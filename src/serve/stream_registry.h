// Multi-tenant admission control for the serve daemon.
//
// The registry answers one question at OPEN time — "may this tenant start
// another stream right now?" — and tracks two global resources while streams
// run: the active-stream count and the total bytes buffered across all
// streams. Every bound is explicit and every rejection is an immediate,
// structured RESOURCE_EXHAUSTED (serve.rejects / serve.rejects.<reason>):
// an overloaded server says no fast; it never queues an OPEN or hangs a
// client.
//
// Tenant state is sharded by tenant-name hash so concurrent OPENs from
// different tenants rarely contend on one mutex; the global counters are
// plain atomics. A Lease is the RAII grant: destroying it (connection close,
// handler error, drain) releases the stream slot and any buffered-byte
// reservation, so accounting can never leak past a failed handler.
#ifndef SRC_SERVE_STREAM_REGISTRY_H_
#define SRC_SERVE_STREAM_REGISTRY_H_

#include <atomic>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>

#include "src/util/status.h"

namespace cloudgen {
namespace serve {

struct ServeLimits {
  size_t max_streams = 64;            // Active streams, all tenants.
  size_t max_streams_per_tenant = 8;  // Active streams per tenant.
  // Sum of per-stream trace buffers. One stream buffers one trace at a time,
  // so this bounds daemon memory at max_streams x trace size; a stream whose
  // next trace would burst past the bound gets a *retryable* UNAVAILABLE
  // mid-stream rather than an admission reject.
  size_t max_total_buffer_bytes = 256u << 20;
};

class StreamRegistry {
 public:
  explicit StreamRegistry(ServeLimits limits) : limits_(limits) {}
  StreamRegistry(const StreamRegistry&) = delete;
  StreamRegistry& operator=(const StreamRegistry&) = delete;

  // RAII grant for one admitted stream. Move-only; releases on destruction.
  class Lease {
   public:
    Lease() = default;
    ~Lease() { Release(); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;

    bool valid() const { return registry_ != nullptr; }

    // Reserves `n` buffered bytes against the global bound; false when the
    // bound would be exceeded (caller surfaces a retryable UNAVAILABLE).
    bool ReserveBytes(size_t n);
    // Returns `n` previously reserved bytes to the pool.
    void ReleaseBytes(size_t n);

    // Releases the stream slot and all reserved bytes now (idempotent).
    void Release();

   private:
    friend class StreamRegistry;
    StreamRegistry* registry_ = nullptr;
    std::string tenant_;
    size_t reserved_bytes_ = 0;
  };

  // Admits a new stream for `tenant`, or returns RESOURCE_EXHAUSTED with a
  // reason ("server_full" / "tenant_quota") a client can act on. `stream` is
  // used only for the rejection message.
  Status Admit(const std::string& tenant, const std::string& stream,
               Lease* lease);

  size_t ActiveStreams() const {
    return active_streams_.load(std::memory_order_relaxed);
  }
  size_t BufferedBytes() const {
    return buffered_bytes_.load(std::memory_order_relaxed);
  }
  // High-water mark of BufferedBytes() over the registry's lifetime. Every
  // successful reservation was bounds-checked first, so this can never
  // exceed max_total_buffer_bytes — the chaos harness asserts exactly that.
  size_t PeakBufferedBytes() const {
    return peak_buffered_bytes_.load(std::memory_order_relaxed);
  }
  const ServeLimits& limits() const { return limits_; }

 private:
  static constexpr size_t kShards = 8;

  struct Shard {
    std::mutex mu;
    std::map<std::string, size_t> streams_by_tenant;
  };

  size_t ShardIndex(const std::string& tenant) const;
  void ReleaseStream(const std::string& tenant);

  const ServeLimits limits_;
  Shard shards_[kShards];
  std::atomic<size_t> active_streams_{0};
  std::atomic<size_t> buffered_bytes_{0};
  std::atomic<size_t> peak_buffered_bytes_{0};
};

}  // namespace serve
}  // namespace cloudgen

#endif  // SRC_SERVE_STREAM_REGISTRY_H_
