// The cloudgen serve daemon: streams deterministically generated trace rows
// to TCP clients with admission control, per-stream backpressure, and
// graceful drain.
//
// A stream request names (tenant, stream, seed, traces). The server derives
// the family anchor WorkloadModel::TraceFamilyBase(seed) and regenerates
// trace i on demand from Rng::Stream(base, i) — the exact bytes a local
// `cloudgen generate --seed <seed> --traces <traces>` run writes. Nothing is
// stored per stream beyond one trace buffer and a cursor, so server memory
// is bounded by admission control (StreamRegistry), not by stream length or
// client speed.
//
// Failure model (docs/ROBUSTNESS.md):
//  * Overload: OPEN past a quota is rejected immediately with a structured
//    RESOURCE_EXHAUSTED ERROR frame — never queued, never hung.
//  * Slow consumer: credit-based flow control stalls only that stream
//    (serve.backpressure.stalls); other streams keep flowing.
//  * Idle/hung peer: every socket operation carries a deadline; a peer that
//    stops talking is disconnected after idle_timeout_ms.
//  * Drain (SIGTERM / RequestDrain): stop admitting, checkpoint every active
//    stream's cursor (GenCursor in state_dir), send a retryable UNAVAILABLE
//    to each client, exit. A restarted server resumes every stream
//    byte-identically — the checkpoint is an *accelerator* (skip regenerating
//    already-acked traces); correctness comes from the client's resume
//    offset plus deterministic regeneration.
//  * Generation guard trips and injected faults are contained per
//    connection; the daemon itself never dies from a stream error.
#ifndef SRC_SERVE_SERVER_H_
#define SRC_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "src/core/workload_model.h"
#include "src/serve/protocol.h"
#include "src/serve/stream_registry.h"
#include "src/util/cancel.h"
#include "src/util/net.h"
#include "src/util/status.h"

namespace cloudgen {
namespace serve {

struct ServerOptions {
  std::string bind_addr = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read back with Port().
  // Directory for drain checkpoints; empty disables checkpointing (drain
  // still works — restarted streams just regenerate from trace 0).
  std::string state_dir;
  int io_timeout_ms = 10000;    // Per socket read/write.
  int idle_timeout_ms = 30000;  // Max quiet time waiting for a client frame.
  size_t max_chunk_bytes = 64u << 10;  // Largest single DATA payload.
  // Traces regenerated per engine run on the stream path. A chunk > 1 lets
  // the batched (and, with gen.gen_shards, sharded) engine fill its windows
  // across traces instead of paying a cold engine per trace; bytes are
  // identical either way. When a chunk's buffer reservation trips admission
  // control, the session falls back to one trace at a time, so forward
  // progress needs only the single-trace buffer the limits always allowed.
  size_t gen_chunk_traces = 8;
  ServeLimits limits;
  // Generation options shared by every stream (per-request knobs are seed
  // and trace count). `cancel` is ignored; the server installs its own.
  WorkloadModel::GenerateOptions gen;
};

class StreamServer {
 public:
  // `model` must be trained and must outlive the server.
  StreamServer(const WorkloadModel* model, ServerOptions options);
  ~StreamServer();

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  // Binds, listens, and starts the accept loop. Non-blocking.
  Status Start();

  // The bound port (valid after Start()).
  uint16_t Port() const { return port_; }

  // Begins graceful drain: stop accepting, interrupt active streams at their
  // next safe boundary, checkpoint them. Idempotent, async-signal-unsafe
  // (call from a normal thread that observed SIGTERM via CancelToken).
  void RequestDrain();

  // Blocks until the accept loop and every connection handler have finished.
  // Returns OK after a clean drain; the first accept-loop hard error
  // otherwise.
  Status Wait();

  size_t ActiveStreams() const { return registry_.ActiveStreams(); }
  bool Draining() const { return drain_.Cancelled(); }

 private:
  class StreamSession;

  void AcceptLoop();
  void HandleConnection(Socket conn);
  // Dispatches one framed session on `conn`; any returned error was NOT yet
  // reported to the peer (HandleConnection sends the ERROR frame).
  Status RunSession(Socket& conn);
  Status RunStreamSession(Socket& conn, const Frame& open);
  Status HandleMetrics(Socket& conn);
  // Prometheus text exposition; `dispatch_ms` (read-to-dispatch latency) is
  // observed into serve.verb_ms BEFORE the snapshot is taken, so the
  // response always carries a non-empty verb-latency histogram.
  Status HandleMetricsProm(Socket& conn, double dispatch_ms);
  Status HandleHealth(Socket& conn);

  // Drain-checkpoint path for (tenant, stream); stable across restarts.
  std::string CheckpointPath(const std::string& tenant,
                             const std::string& stream) const;

  const WorkloadModel* model_;
  ServerOptions options_;
  StreamRegistry registry_;
  Socket listener_;
  uint16_t port_ = 0;
  CancelToken drain_;
  std::thread accept_thread_;
  Status accept_status_;

  // Connection handlers run detached but counted, so Wait() can join them
  // without tracking thread objects.
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  size_t active_conns_ = 0;
  bool started_ = false;
};

}  // namespace serve
}  // namespace cloudgen

#endif  // SRC_SERVE_SERVER_H_
