// The cloudgen serve daemon: streams deterministically generated trace rows
// to TCP clients with admission control, per-stream backpressure, graceful
// drain, and a self-healing supervisor.
//
// A stream request names (tenant, stream, seed, traces). The server derives
// the family anchor WorkloadModel::TraceFamilyBase(seed) and regenerates
// trace i on demand from Rng::Stream(base, i) — the exact bytes a local
// `cloudgen generate --seed <seed> --traces <traces>` run writes. Nothing is
// stored per stream beyond one trace buffer and a cursor, so server memory
// is bounded by admission control (StreamRegistry), not by stream length or
// client speed.
//
// Health state machine (supervisor thread, `serve.health` gauge, HEALTH
// `health=` key):
//   healthy  → normal admission.
//   degraded → a resource-exhaustion event (full disk on a checkpoint,
//              accept(2) out of fds) fired within the last
//              degraded_cooldown_ms: new OPENs are shed with retryable
//              UNAVAILABLE while existing streams keep flowing; recovers to
//              healthy by itself once the cooldown passes without new events.
//   draining → RequestDrain() was called; terminal for this process.
//
// Failure model (docs/ROBUSTNESS.md):
//  * Overload: OPEN past a quota is rejected immediately with a structured
//    RESOURCE_EXHAUSTED ERROR frame — never queued, never hung.
//  * Slow consumer: credit-based flow control stalls only that stream
//    (serve.backpressure.stalls); other streams keep flowing.
//  * Idle/hung peer: every socket operation carries a deadline; a peer that
//    stops talking is disconnected after idle_timeout_ms.
//  * Stuck stream: a per-stream progress watchdog cuts any session that is
//    working but has made no observable progress for stall_timeout_ms — the
//    stream is checkpointed and the client told to reconnect (retryable
//    UNAVAILABLE); it resumes byte-identically. Stuck streams never leak
//    registry slots or wedge a drain.
//  * Resource exhaustion: a full disk (io_enospc / real ENOSPC) on a
//    checkpoint or an fd-exhausted accept loop degrades the server instead
//    of crashing it — accept backs off exponentially, new OPENs shed, and
//    the daemon self-heals when the pressure clears.
//  * Drain (SIGTERM / RequestDrain): stop admitting, checkpoint every active
//    stream's cursor (GenCursor in state_dir), send a retryable UNAVAILABLE
//    to each client, exit. A restarted server resumes every stream
//    byte-identically — the checkpoint is an *accelerator* (skip regenerating
//    already-acked traces); correctness comes from the client's resume
//    offset plus deterministic regeneration.
//  * Generation guard trips and injected faults are contained per
//    connection; the daemon itself never dies from a stream error.
#ifndef SRC_SERVE_SERVER_H_
#define SRC_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/core/workload_model.h"
#include "src/serve/protocol.h"
#include "src/serve/stream_registry.h"
#include "src/util/cancel.h"
#include "src/util/net.h"
#include "src/util/status.h"

namespace cloudgen {
namespace serve {

enum class HealthState : int {
  kHealthy = 0,
  kDegraded = 1,
  kDraining = 2,
};
const char* HealthStateName(HealthState state);

struct ServerOptions {
  std::string bind_addr = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read back with Port().
  // Directory for drain checkpoints; empty disables checkpointing (drain
  // still works — restarted streams just regenerate from trace 0).
  std::string state_dir;
  int io_timeout_ms = 10000;    // Per socket read/write.
  int idle_timeout_ms = 30000;  // Max quiet time waiting for a client frame.
  size_t max_chunk_bytes = 64u << 10;  // Largest single DATA payload.
  // Traces regenerated per engine run on the stream path. A chunk > 1 lets
  // the batched (and, with gen.gen_shards, sharded) engine fill its windows
  // across traces instead of paying a cold engine per trace; bytes are
  // identical either way. When a chunk's buffer reservation trips admission
  // control, the session falls back to one trace at a time, so forward
  // progress needs only the single-trace buffer the limits always allowed.
  size_t gen_chunk_traces = 8;
  // Supervisor cadence: health gauge refresh + stalled-stream scan.
  int supervisor_interval_ms = 50;
  // A session that is working (not waiting on client credit) but makes no
  // observable progress for this long is cut and checkpointed by the
  // watchdog. <= 0 disables the watchdog.
  int stall_timeout_ms = 10000;
  // How long the server stays degraded (shedding new OPENs) after a
  // resource-exhaustion event; refreshed by every new event.
  int degraded_cooldown_ms = 2000;
  ServeLimits limits;
  // Generation options shared by every stream (per-request knobs are seed
  // and trace count). `cancel` is ignored; the server installs its own.
  WorkloadModel::GenerateOptions gen;
};

class StreamServer {
 public:
  // `model` must be trained and must outlive the server.
  StreamServer(const WorkloadModel* model, ServerOptions options);
  ~StreamServer();

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  // Binds, listens, and starts the accept + supervisor loops. Non-blocking.
  Status Start();

  // The bound port (valid after Start()).
  uint16_t Port() const { return port_; }

  // Begins graceful drain: stop accepting, interrupt active streams at their
  // next safe boundary, checkpoint them. Idempotent, async-signal-unsafe
  // (call from a normal thread that observed SIGTERM via CancelToken).
  void RequestDrain();

  // Blocks until the accept loop, every connection handler and the
  // supervisor have finished. Returns OK after a clean drain; the first
  // accept-loop hard error otherwise.
  Status Wait();

  size_t ActiveStreams() const { return registry_.ActiveStreams(); }
  bool Draining() const { return drain_.Cancelled(); }

  // Current health, computed from the drain token and the degradation
  // window (no supervisor-tick lag).
  HealthState Health() const;

  // Records a resource-exhaustion event (full disk, out of fds): the server
  // turns degraded for degraded_cooldown_ms and sheds new OPENs. `reason`
  // must be a string literal (stored without copying).
  void ReportExhaustion(const char* reason);

  // High-water mark of registry buffered bytes (chaos invariant: must stay
  // within limits().max_total_buffer_bytes).
  size_t PeakBufferedBytes() const { return registry_.PeakBufferedBytes(); }
  const ServeLimits& limits() const { return registry_.limits(); }

 private:
  class StreamSession;

  // Watchdog view of one running stream session. `working` is true while
  // the session owes the client bytes (generating or sending); it is false
  // while blocked on client credit — a slow consumer is the idle-timeout's
  // business, not the watchdog's. The watchdog cuts a working session whose
  // last_progress_ms is older than stall_timeout_ms; the session observes
  // `cut` at its next boundary, checkpoints, and returns retryable
  // UNAVAILABLE so the client resumes elsewhere in time.
  struct SessionWatch {
    uint64_t id = 0;
    std::string tenant;
    std::string stream;
    std::atomic<int64_t> last_progress_ms{0};
    std::atomic<bool> working{false};
    std::atomic<bool> cut{false};
  };

  void AcceptLoop();
  void SupervisorLoop();
  void HandleConnection(Socket conn);
  // Dispatches one framed session on `conn`; any returned error was NOT yet
  // reported to the peer (HandleConnection sends the ERROR frame).
  Status RunSession(Socket& conn);
  Status RunStreamSession(Socket& conn, const Frame& open);
  Status HandleMetrics(Socket& conn);
  // Prometheus text exposition; `dispatch_ms` (read-to-dispatch latency) is
  // observed into serve.verb_ms BEFORE the snapshot is taken, so the
  // response always carries a non-empty verb-latency histogram.
  Status HandleMetricsProm(Socket& conn, double dispatch_ms);
  Status HandleHealth(Socket& conn);

  std::shared_ptr<SessionWatch> RegisterWatch(const std::string& tenant,
                                              const std::string& stream);
  void UnregisterWatch(const std::shared_ptr<SessionWatch>& watch);

  // Drain-checkpoint path for (tenant, stream); stable across restarts.
  std::string CheckpointPath(const std::string& tenant,
                             const std::string& stream) const;

  const WorkloadModel* model_;
  ServerOptions options_;
  StreamRegistry registry_;
  Socket listener_;
  uint16_t port_ = 0;
  CancelToken drain_;
  std::thread accept_thread_;
  Status accept_status_;

  std::thread supervisor_thread_;
  std::atomic<bool> supervisor_stop_{false};
  // End of the current degradation window (steady-clock ms); 0 = none yet.
  std::atomic<int64_t> degraded_until_ms_{0};
  std::atomic<const char*> degraded_reason_{""};

  std::mutex watch_mu_;
  uint64_t next_watch_id_ = 0;
  std::map<uint64_t, std::shared_ptr<SessionWatch>> watches_;

  // Connection handlers run detached but counted, so Wait() can join them
  // without tracking thread objects.
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  size_t active_conns_ = 0;
  bool started_ = false;
};

}  // namespace serve
}  // namespace cloudgen

#endif  // SRC_SERVE_SERVER_H_
