#include "src/serve/server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "src/core/gen_checkpoint.h"
#include "src/core/gen_guard.h"
#include "src/obs/fidelity_monitor.h"
#include "src/obs/metrics.h"
#include "src/util/thread_pool.h"
#include "src/util/atomic_file.h"
#include "src/util/crc32.h"
#include "src/util/fault.h"
#include "src/util/log.h"
#include "src/util/retry.h"
#include "src/util/strings.h"

namespace cloudgen {
namespace serve {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Digest of everything that determines a stream's bytes: the server's shared
// generation options plus the request's (seed, traces) and identity. A drain
// checkpoint whose fingerprint does not match the incoming request is
// ignored (stale server config, renamed stream) — regeneration from trace 0
// is always correct, just slower.
uint64_t StreamFingerprint(const WorkloadModel::GenerateOptions& gen,
                           uint64_t seed, uint64_t traces,
                           const std::string& tenant,
                           const std::string& stream) {
  uint64_t h = HashMix(0x5E12E5EEDull, static_cast<uint64_t>(gen.from_period));
  h = HashMix(h, static_cast<uint64_t>(gen.to_period));
  h = HashMix(h, static_cast<uint64_t>(gen.doh_mode));
  h = HashMix(h, DoubleBits(gen.arrival_scale));
  h = HashMix(h, DoubleBits(gen.eob_scale));
  h = HashMix(h, static_cast<uint64_t>(gen.interpolation));
  h = HashMix(h, seed);
  h = HashMix(h, traces);
  h = HashMix(h, Fnv1a(tenant));
  h = HashMix(h, Fnv1a(stream));
  return h;
}

Status ValidateName(const std::string& value, const char* what) {
  if (value.empty() || value.size() > 128) {
    return InvalidArgumentError(StrFormat(
        "%s must be 1..128 characters (got %zu)", what, value.size()));
  }
  for (const char c : value) {
    if (c == '\n' || c == '=' || c == '\0') {
      return InvalidArgumentError(
          StrFormat("%s contains a forbidden character", what));
    }
  }
  return OkStatus();
}

struct ServeCounters {
  obs::Counter& conns_accepted =
      obs::Registry::Global().GetCounter("serve.conns.accepted");
  obs::Counter& accept_errors =
      obs::Registry::Global().GetCounter("serve.accept.errors");
  obs::Counter& rows_sent =
      obs::Registry::Global().GetCounter("serve.rows.sent");
  obs::Counter& bytes_sent =
      obs::Registry::Global().GetCounter("serve.bytes.sent");
  obs::Counter& stalls =
      obs::Registry::Global().GetCounter("serve.backpressure.stalls");
  obs::Counter& idle_timeouts =
      obs::Registry::Global().GetCounter("serve.idle_timeouts");
  obs::Counter& streams_completed =
      obs::Registry::Global().GetCounter("serve.streams.completed");
  obs::Counter& streams_resumed =
      obs::Registry::Global().GetCounter("serve.streams.resumed");
  obs::Counter& checkpoint_resumes =
      obs::Registry::Global().GetCounter("serve.resume.checkpoint");
  obs::Counter& drains =
      obs::Registry::Global().GetCounter("serve.drain.checkpoints");
  obs::Counter& stream_errors =
      obs::Registry::Global().GetCounter("serve.stream.errors");
  obs::Counter& watchdog_cuts =
      obs::Registry::Global().GetCounter("serve.watchdog.cuts");
  obs::Counter& degraded_sheds =
      obs::Registry::Global().GetCounter("serve.degraded.sheds");
  obs::Counter& accept_backoffs =
      obs::Registry::Global().GetCounter("serve.accept.backoffs");
  obs::Counter& exhaustion_events =
      obs::Registry::Global().GetCounter("serve.exhaustion.events");

  static ServeCounters& Get() {
    static ServeCounters* counters = new ServeCounters();
    return *counters;
  }
};

}  // namespace

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kDraining:
      return "draining";
  }
  return "unknown";
}

StreamServer::StreamServer(const WorkloadModel* model, ServerOptions options)
    : model_(model), options_(std::move(options)), registry_(options_.limits) {
  CG_CHECK(model_ != nullptr && model_->IsTrained());
  options_.gen.cancel = nullptr;  // Streams use the drain token instead.
}

StreamServer::~StreamServer() {
  if (started_) {
    RequestDrain();
    (void)Wait();
  }
}

Status StreamServer::Start() {
  CG_CHECK_MSG(!started_, "StreamServer::Start called twice");
  CG_ASSIGN_OR_RETURN(listener_,
                      ListenTcp(options_.bind_addr, options_.port));
  CG_ASSIGN_OR_RETURN(const uint16_t port, LocalPort(listener_));
  port_ = port;
  started_ = true;
  // Register the stream gauges up front so an idle daemon's very first
  // METRICS/METRICS_PROM scrape already carries them at 0, instead of the
  // series appearing only after the first admission.
  obs::Registry::Global().GetGauge("serve.streams.active").Set(0.0);
  obs::Registry::Global().GetGauge("serve.queue.bytes").Set(0.0);
  obs::Registry::Global().GetGauge("serve.queue.bytes.peak").Set(0.0);
  obs::Registry::Global()
      .GetGauge("serve.health")
      .Set(static_cast<double>(HealthState::kHealthy));
  accept_thread_ = std::thread(&StreamServer::AcceptLoop, this);
  supervisor_thread_ = std::thread(&StreamServer::SupervisorLoop, this);
  CG_LOGF_INFO("serve: listening on %s:%u (max_streams=%zu, per_tenant=%zu)",
               options_.bind_addr.c_str(), static_cast<unsigned>(port_),
               options_.limits.max_streams,
               options_.limits.max_streams_per_tenant);
  return OkStatus();
}

void StreamServer::RequestDrain() { drain_.RequestCancel(); }

Status StreamServer::Wait() {
  CG_CHECK(started_);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    // The supervisor keeps cutting stalled sessions while we wait, so a
    // wedged stream cannot hold the drain open past stall_timeout_ms.
    conn_cv_.wait(lock, [this] { return active_conns_ == 0; });
  }
  supervisor_stop_.store(true, std::memory_order_release);
  if (supervisor_thread_.joinable()) {
    supervisor_thread_.join();
  }
  started_ = false;
  return accept_status_;
}

HealthState StreamServer::Health() const {
  if (drain_.Cancelled()) {
    return HealthState::kDraining;
  }
  if (NowMs() < degraded_until_ms_.load(std::memory_order_acquire)) {
    return HealthState::kDegraded;
  }
  return HealthState::kHealthy;
}

void StreamServer::ReportExhaustion(const char* reason) {
  degraded_reason_.store(reason, std::memory_order_release);
  degraded_until_ms_.store(NowMs() + options_.degraded_cooldown_ms,
                           std::memory_order_release);
  ServeCounters::Get().exhaustion_events.Add(1);
  CG_LOGF_WARN("serve: resource exhaustion (%s); degraded for %dms", reason,
               options_.degraded_cooldown_ms);
}

std::shared_ptr<StreamServer::SessionWatch> StreamServer::RegisterWatch(
    const std::string& tenant, const std::string& stream) {
  auto watch = std::make_shared<SessionWatch>();
  watch->tenant = tenant;
  watch->stream = stream;
  watch->last_progress_ms.store(NowMs(), std::memory_order_release);
  std::lock_guard<std::mutex> lock(watch_mu_);
  watch->id = next_watch_id_++;
  watches_.emplace(watch->id, watch);
  return watch;
}

void StreamServer::UnregisterWatch(
    const std::shared_ptr<SessionWatch>& watch) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  watches_.erase(watch->id);
}

void StreamServer::SupervisorLoop() {
  static obs::Gauge& health_gauge =
      obs::Registry::Global().GetGauge("serve.health");
  ServeCounters& counters = ServeCounters::Get();
  while (!supervisor_stop_.load(std::memory_order_acquire)) {
    const HealthState health = Health();
    health_gauge.Set(static_cast<double>(health));
    if (options_.stall_timeout_ms > 0) {
      const int64_t now = NowMs();
      std::lock_guard<std::mutex> lock(watch_mu_);
      for (auto& entry : watches_) {
        SessionWatch& watch = *entry.second;
        if (watch.working.load(std::memory_order_acquire) &&
            !watch.cut.load(std::memory_order_acquire) &&
            now - watch.last_progress_ms.load(std::memory_order_acquire) >
                options_.stall_timeout_ms) {
          watch.cut.store(true, std::memory_order_release);
          counters.watchdog_cuts.Add(1);
          CG_LOGF_WARN(
              "serve: watchdog cutting stalled stream %s/%s (no progress for "
              ">%dms); checkpoint + retryable disconnect",
              watch.tenant.c_str(), watch.stream.c_str(),
              options_.stall_timeout_ms);
        }
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::max(1, options_.supervisor_interval_ms)));
  }
  health_gauge.Set(static_cast<double>(Health()));
}

void StreamServer::AcceptLoop() {
  ServeCounters& counters = ServeCounters::Get();
  // Plan rules scoped site=serve see the accept-path injection points.
  ScopedFaultSite fault_site("serve");
  int backoff_ms = 0;
  while (!drain_.Cancelled()) {
    Socket conn;
    const Status status = AcceptConnection(listener_, 200, &drain_, &conn);
    if (!status.ok()) {
      // Transient (injected net_accept_fail, peer teardown): count it and
      // keep accepting — an accept failure must never take the daemon down.
      counters.accept_errors.Add(1);
      CG_LOG_WARN("serve: accept failed: " + status.ToString());
      if (status.code() == StatusCode::kResourceExhausted) {
        // Out of fds (EMFILE/ENFILE or injected fd_exhaust): retrying
        // immediately cannot succeed — back off exponentially instead of
        // spinning, and shed new OPENs while the pressure lasts.
        ReportExhaustion("accept: out of file descriptors");
        backoff_ms = backoff_ms == 0 ? 10 : std::min(backoff_ms * 2, 500);
        counters.accept_backoffs.Add(1);
        SleepWithCancel(backoff_ms / 1000.0, &drain_);
      }
      continue;
    }
    if (!conn.valid()) {
      continue;  // Poll slice expired; re-check drain.
    }
    backoff_ms = 0;  // A successful accept ends the exhaustion episode.
    counters.conns_accepted.Add(1);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      ++active_conns_;
    }
    std::thread(&StreamServer::HandleConnection, this, std::move(conn))
        .detach();
  }
  listener_.Close();
}

void StreamServer::HandleConnection(Socket conn) {
  Status status;
  try {
    status = RunSession(conn);
  } catch (const GuardViolation& e) {
    // A numeric guard trip poisons one stream, not the daemon.
    status = InternalError(std::string("generation guard violation: ") +
                           e.what());
  } catch (const std::exception& e) {
    status = InternalError(std::string("unexpected exception: ") + e.what());
  }
  if (!status.ok()) {
    if (status.code() == StatusCode::kAborted && drain_.Cancelled()) {
      // The drain token cancelled a blocking socket op mid-session. To the
      // peer that is the retryable drain, not a client-side abort.
      status = UnavailableError(
          "server draining; reconnect and resume against the restarted server");
    }
    ServeCounters::Get().stream_errors.Add(1);
    CG_LOG_WARN("serve: session ended with " + status.ToString());
    // Best effort: tell the peer why before closing. Send failures here are
    // expected (the error may BE a dead connection).
    (void)WriteFrame(conn, FrameType::kError, EncodeErrorPayload(status),
                     options_.io_timeout_ms, nullptr);
  }
  conn.Close();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    --active_conns_;
  }
  conn_cv_.notify_all();
}

Status StreamServer::RunSession(Socket& conn) {
  Frame first;
  bool clean_close = false;
  const Status status = ReadFrame(conn, &first, options_.idle_timeout_ms,
                                  &drain_, &clean_close);
  if (!status.ok()) {
    if (clean_close) {
      return OkStatus();  // Probe connections (port checks) are fine.
    }
    return status;
  }
  // Control-verb handling latency (dispatch to response written; the wait
  // for the client's first frame is idle time, not verb work).
  static obs::Histogram& verb_ms =
      obs::Registry::Global().GetHistogram("serve.verb_ms");
  const auto dispatch_start = std::chrono::steady_clock::now();
  const auto elapsed_ms = [dispatch_start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - dispatch_start)
        .count();
  };
  switch (first.type) {
    case FrameType::kOpen:
      return RunStreamSession(conn, first);
    case FrameType::kMetrics: {
      const Status status = HandleMetrics(conn);
      verb_ms.Observe(elapsed_ms());
      return status;
    }
    case FrameType::kMetricsProm:
      return HandleMetricsProm(conn, elapsed_ms());
    case FrameType::kHealth: {
      const Status status = HandleHealth(conn);
      verb_ms.Observe(elapsed_ms());
      return status;
    }
    default:
      return InvalidArgumentError(StrFormat(
          "unexpected first frame %s (want OPEN, METRICS, METRICS_PROM or HEALTH)",
          FrameTypeName(first.type)));
  }
}

Status StreamServer::HandleMetrics(Socket& conn) {
  std::ostringstream json;
  obs::Registry::Global().WriteJson(json);
  return WriteFrame(conn, FrameType::kMetricsOk, json.str(),
                    options_.io_timeout_ms, &drain_);
}

Status StreamServer::HandleMetricsProm(Socket& conn, double dispatch_ms) {
  static obs::Histogram& verb_ms =
      obs::Registry::Global().GetHistogram("serve.verb_ms");
  verb_ms.Observe(dispatch_ms);
  // Refresh derived state so a scrape is self-contained: live pool pressure,
  // current fidelity drift, percentile gauges.
  GlobalThreadPool().PublishGauges();
  obs::FidelityMonitor::Global().PublishDrift();
  std::ostringstream text;
  obs::Registry::Global().WritePrometheus(text);
  return WriteFrame(conn, FrameType::kMetricsPromOk, text.str(),
                    options_.io_timeout_ms, &drain_);
}

Status StreamServer::HandleHealth(Socket& conn) {
  const HealthState health = Health();
  std::map<std::string, std::string> kv;
  // `status` keeps its original two-value contract (ok|draining) for old
  // probes; the richer state machine lives under `health`.
  kv["status"] = drain_.Cancelled() ? "draining" : "ok";
  kv["health"] = HealthStateName(health);
  if (health == HealthState::kDegraded) {
    kv["degraded_reason"] = degraded_reason_.load(std::memory_order_acquire);
  }
  kv["streams_active"] = std::to_string(registry_.ActiveStreams());
  kv["max_streams"] = std::to_string(registry_.limits().max_streams);
  kv["buffered_bytes"] = std::to_string(registry_.BufferedBytes());
  return WriteFrame(conn, FrameType::kHealthOk, EncodeKv(kv),
                    options_.io_timeout_ms, &drain_);
}

std::string StreamServer::CheckpointPath(const std::string& tenant,
                                         const std::string& stream) const {
  // Hash-named so any tenant/stream string maps to a safe filename, stably
  // across restarts.
  const uint64_t h = HashMix(Fnv1a(tenant), Fnv1a(stream));
  return StrFormat("%s/stream-%016llx.ckpt", options_.state_dir.c_str(),
                   static_cast<unsigned long long>(h));
}

Status StreamServer::RunStreamSession(Socket& conn, const Frame& open) {
  ServeCounters& counters = ServeCounters::Get();

  std::map<std::string, std::string> req;
  CG_RETURN_IF_ERROR(DecodeKv(open.payload, &req));
  std::string tenant;
  std::string stream;
  uint64_t seed = 0;
  uint64_t traces = 0;
  uint64_t client_offset = 0;
  CG_RETURN_IF_ERROR(KvGet(req, "tenant", &tenant));
  CG_RETURN_IF_ERROR(KvGet(req, "stream", &stream));
  CG_RETURN_IF_ERROR(KvGetU64(req, "seed", &seed));
  CG_RETURN_IF_ERROR(KvGetU64(req, "traces", &traces));
  CG_RETURN_IF_ERROR(KvGetU64(req, "offset", &client_offset));
  CG_RETURN_IF_ERROR(ValidateName(tenant, "tenant"));
  CG_RETURN_IF_ERROR(ValidateName(stream, "stream"));
  if (traces == 0 || traces > (1u << 20)) {
    return InvalidArgumentError(
        StrFormat("traces must be in [1, %u], got %llu", 1u << 20,
                  static_cast<unsigned long long>(traces)));
  }

  if (drain_.Cancelled()) {
    return UnavailableError("server is draining; retry against the restarted server");
  }
  // Session threads carry the serve scope (plus tenant) for plan rules; the
  // stream checkpoint writes below inherit it.
  ScopedFaultSite fault_site("serve", tenant);
  if (Health() == HealthState::kDegraded) {
    // Graceful degradation: existing streams keep flowing, new work is shed
    // with a retryable signal until the exhaustion cooldown passes.
    ServeCounters::Get().degraded_sheds.Add(1);
    return UnavailableError(StrFormat(
        "server degraded (%s); retry shortly",
        degraded_reason_.load(std::memory_order_acquire)));
  }
  StreamRegistry::Lease lease;
  CG_RETURN_IF_ERROR(registry_.Admit(tenant, stream, &lease));

  const std::shared_ptr<SessionWatch> watch = RegisterWatch(tenant, stream);
  struct WatchGuard {
    StreamServer* server;
    const std::shared_ptr<SessionWatch>& watch;
    ~WatchGuard() { server->UnregisterWatch(watch); }
  } watch_guard{this, watch};
  const auto touch_progress = [&watch] {
    watch->last_progress_ms.store(NowMs(), std::memory_order_release);
  };

  const uint64_t fingerprint =
      StreamFingerprint(options_.gen, seed, traces, tenant, stream);
  const uint64_t base = WorkloadModel::TraceFamilyBase(seed);

  // Cursor into the regeneration: trace `next_trace` starts at byte
  // `offset`, with `crc` the incremental CRC-32 state and `rows` the row
  // count over [0, offset). Either fresh or restored from a drain
  // checkpoint that the client's resume offset has already passed.
  uint64_t next_trace = 0;
  uint64_t offset = 0;
  uint32_t crc = kCrc32Init;
  uint64_t rows = 0;
  const std::string ckpt_path =
      options_.state_dir.empty() ? "" : CheckpointPath(tenant, stream);
  if (!ckpt_path.empty() && FileExists(ckpt_path)) {
    GenCursor cursor;
    std::map<std::string, std::string> blob;
    uint64_t ck_offset = 0;
    uint64_t ck_crc = 0;
    uint64_t ck_rows = 0;
    Status ck = LoadGenCheckpoint(ckpt_path, &cursor);
    if (ck.ok()) {
      ck = DecodeKv(cursor.state_blob, &blob);
    }
    if (ck.ok()) {
      ck = KvGetU64(blob, "offset", &ck_offset);
    }
    if (ck.ok()) {
      ck = KvGetU64(blob, "crc", &ck_crc);
    }
    if (ck.ok()) {
      ck = KvGetU64(blob, "rows", &ck_rows);
    }
    if (ck.ok() && cursor.fingerprint == fingerprint &&
        cursor.base == base && cursor.count == traces &&
        ck_offset <= client_offset) {
      next_trace = cursor.next_trace;
      offset = ck_offset;
      crc = static_cast<uint32_t>(ck_crc);
      rows = ck_rows;
      counters.checkpoint_resumes.Add(1);
    }
    // Any mismatch or decode failure: regenerate from trace 0. A corrupt or
    // stale checkpoint can cost time, never correctness.
  }
  if (client_offset > 0) {
    counters.streams_resumed.Add(1);
  }

  std::map<std::string, std::string> ok_kv;
  ok_kv["offset"] = std::to_string(client_offset);
  CG_RETURN_IF_ERROR(WriteFrame(conn, FrameType::kOpenOk, EncodeKv(ok_kv),
                                options_.io_timeout_ms, &drain_));

  // `sent` is the next byte the client expects; everything the session emits
  // is DATA frames at exactly that offset, in order.
  uint64_t sent = client_offset;
  int64_t credit = 0;

  // Writes the drain checkpoint for the current trace-boundary cursor.
  auto checkpoint_boundary = [&]() {
    if (ckpt_path.empty()) {
      return;
    }
    GenCursor cursor;
    cursor.mode = kGenModeManyTraces;
    cursor.fingerprint = fingerprint;
    cursor.base = base;
    cursor.count = traces;
    cursor.next_trace = next_trace;
    std::map<std::string, std::string> blob;
    blob["offset"] = std::to_string(offset);
    blob["crc"] = std::to_string(crc);
    blob["rows"] = std::to_string(rows);
    blob["tenant"] = tenant;
    blob["stream"] = stream;
    cursor.state_blob = EncodeKv(blob);
    const Status saved = SaveGenCheckpoint(ckpt_path, cursor);
    if (saved.ok()) {
      counters.drains.Add(1);
    } else {
      // A failed checkpoint only costs regeneration time after restart.
      CG_LOG_WARN("serve: drain checkpoint failed: " + saved.ToString());
      if (IsDiskFull(saved)) {
        // Full state disk: flip to degraded so new OPENs shed while
        // existing streams (whose correctness never needed the disk)
        // keep flowing.
        ReportExhaustion("disk full writing stream checkpoint");
      }
    }
  };

  std::string buffer;
  while (next_trace < traces) {
    if (drain_.Cancelled()) {
      checkpoint_boundary();
      return UnavailableError(
          "server draining; stream checkpointed, reconnect to resume");
    }
    watch->working.store(true, std::memory_order_release);
    touch_progress();
    if (FaultInjector::Global().ShouldInject(FaultKind::kStreamStall)) {
      // Simulated wedged generation step: sit here making no observable
      // progress until the supervisor watchdog cuts the session (or the
      // server drains). `working` stays true — this is exactly the state
      // the watchdog exists for.
      CG_LOGF_WARN("serve: injected stream_stall on %s/%s", tenant.c_str(),
                   stream.c_str());
      while (!watch->cut.load(std::memory_order_acquire) &&
             !drain_.Cancelled()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    if (watch->cut.load(std::memory_order_acquire)) {
      checkpoint_boundary();
      return UnavailableError(StrFormat(
          "stream made no progress for %dms; cut and checkpointed by the "
          "watchdog — reconnect to resume",
          options_.stall_timeout_ms));
    }
    if (drain_.Cancelled()) {
      checkpoint_boundary();
      return UnavailableError(
          "server draining; stream checkpointed, reconnect to resume");
    }

    // Regenerate the next chunk of traces in one engine run, so the batched
    // (and sharded) engine fills its windows across traces instead of paying
    // a cold engine per trace. Chunking only changes how many bytes are
    // buffered at once, never the bytes themselves.
    //
    // Model compute is bounded work, not an observable wait: under CPU
    // oversubscription (many sessions regenerating at once) a chunk can
    // legitimately take longer than the stall timeout, and cutting it only
    // adds more regeneration load — a cut/reconnect livelock. Mark the
    // session not-working for the duration; the watchdog's domain is wedged
    // I/O and injected stalls, a sick model step is the numeric guards'
    // business (GuardViolation, contained per connection).
    watch->working.store(false, std::memory_order_release);
    uint64_t chunk_traces =
        std::min<uint64_t>(std::max<size_t>(1, options_.gen_chunk_traces),
                           traces - next_trace);
    buffer.clear();
    model_->GenerateTraceRowsRange(options_.gen, base,
                                   static_cast<size_t>(next_trace),
                                   static_cast<size_t>(chunk_traces), &buffer);
    if (!lease.ReserveBytes(buffer.size())) {
      // A multi-trace chunk may exceed what admission control can buffer
      // even though a single trace fits; drop to one trace before giving up
      // so buffer pressure degrades throughput, not availability.
      bool reserved = false;
      if (chunk_traces > 1) {
        chunk_traces = 1;
        buffer.clear();
        model_->GenerateTraceRows(options_.gen, base,
                                  static_cast<size_t>(next_trace), &buffer);
        reserved = lease.ReserveBytes(buffer.size());
      }
      if (!reserved) {
        checkpoint_boundary();
        return UnavailableError(StrFormat(
            "server buffer pressure (%zu bytes buffered, limit %zu); retry",
            registry_.BufferedBytes(),
            registry_.limits().max_total_buffer_bytes));
      }
    }
    watch->working.store(true, std::memory_order_release);
    touch_progress();
    const uint64_t trace_rows =
        static_cast<uint64_t>(std::count(buffer.begin(), buffer.end(), '\n'));
    const uint64_t trace_end = offset + buffer.size();

    // Fast-forward: the client has already acked past (part of) this trace —
    // send only the unseen suffix. The CRC/row cursor advances at the trace
    // boundary below, so a mid-trace drain checkpoint never carries a CRC
    // that runs ahead of its offset.
    size_t pos = sent > offset ? static_cast<size_t>(
                                     std::min<uint64_t>(sent - offset,
                                                        buffer.size()))
                               : 0;
    bool stalled = false;
    Status send_status = OkStatus();
    while (pos < buffer.size()) {
      if (drain_.Cancelled() || watch->cut.load(std::memory_order_acquire)) {
        break;  // Checkpointed below at the last durable boundary.
      }
      if (credit <= 0) {
        if (!stalled) {
          stalled = true;
          counters.stalls.Add(1);
        }
        // Wait for the consumer; its pace throttles only this stream. A
        // client-paced wait is the idle-timeout's business, not the
        // watchdog's: mark the session not-working so it cannot be cut.
        watch->working.store(false, std::memory_order_release);
        Frame frame;
        bool clean = false;
        send_status = ReadFrame(conn, &frame, options_.idle_timeout_ms,
                                &drain_, &clean);
        watch->working.store(true, std::memory_order_release);
        touch_progress();
        if (!send_status.ok()) {
          if (send_status.code() == StatusCode::kUnavailable && !clean &&
              send_status.message().find("timed out") != std::string::npos) {
            counters.idle_timeouts.Add(1);
            send_status = UnavailableError(StrFormat(
                "stream idle for %dms waiting for credit; disconnecting",
                options_.idle_timeout_ms));
          }
          break;
        }
        if (frame.type == FrameType::kClose) {
          lease.ReleaseBytes(buffer.size());
          return OkStatus();  // Client is done with us.
        }
        if (frame.type != FrameType::kCredit) {
          send_status = InvalidArgumentError(
              StrFormat("unexpected %s frame mid-stream (want CREDIT)",
                        FrameTypeName(frame.type)));
          break;
        }
        uint64_t granted = 0;
        if (!GetU64Le(frame.payload, 0, &granted)) {
          send_status = InvalidArgumentError("malformed CREDIT payload");
          break;
        }
        credit += static_cast<int64_t>(granted);
        stalled = false;
        continue;
      }
      const size_t chunk =
          std::min({buffer.size() - pos, static_cast<size_t>(credit),
                    options_.max_chunk_bytes});
      std::string payload;
      payload.reserve(8 + chunk);
      PutU64Le(&payload, offset + pos);
      payload.append(buffer, pos, chunk);
      send_status = WriteFrame(conn, FrameType::kData, payload,
                               options_.io_timeout_ms, &drain_);
      if (!send_status.ok()) {
        break;
      }
      pos += chunk;
      credit -= static_cast<int64_t>(chunk);
      sent = offset + pos;
      counters.bytes_sent.Add(chunk);
      touch_progress();
    }
    lease.ReleaseBytes(buffer.size());
    if (drain_.Cancelled()) {
      checkpoint_boundary();
      return UnavailableError(
          "server draining; stream checkpointed, reconnect to resume");
    }
    if (watch->cut.load(std::memory_order_acquire)) {
      checkpoint_boundary();
      return UnavailableError(StrFormat(
          "stream made no progress for %dms; cut and checkpointed by the "
          "watchdog — reconnect to resume",
          options_.stall_timeout_ms));
    }
    CG_RETURN_IF_ERROR(send_status);

    // Chunk boundary (a trace boundary by construction): advance the
    // durable cursor past every trace in the chunk.
    crc = Crc32Update(crc, buffer.data(), buffer.size());
    offset = trace_end;
    rows += trace_rows;
    next_trace += chunk_traces;
    counters.rows_sent.Add(trace_rows);
  }

  std::map<std::string, std::string> end_kv;
  end_kv["bytes"] = std::to_string(offset);
  end_kv["rows"] = std::to_string(rows);
  end_kv["crc"] = std::to_string(Crc32Finalize(crc));
  CG_RETURN_IF_ERROR(WriteFrame(conn, FrameType::kEnd, EncodeKv(end_kv),
                                options_.io_timeout_ms, &drain_));
  if (!ckpt_path.empty() && FileExists(ckpt_path)) {
    std::remove(ckpt_path.c_str());  // The stream is complete; nothing to resume.
  }
  counters.streams_completed.Add(1);
  return OkStatus();
}

}  // namespace serve
}  // namespace cloudgen
