#include "src/serve/chaos.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <sstream>
#include <thread>
#include <utility>

#include "src/serve/client.h"
#include "src/serve/server.h"
#include "src/util/cancel.h"
#include "src/util/check.h"
#include "src/util/fault_plan.h"
#include "src/util/log.h"
#include "src/util/strings.h"

namespace cloudgen {
namespace serve {
namespace {

// One client's life in the scenario: fetch the whole stream through whatever
// the plan throws at it, then compare against the oracle. FetchStream's own
// stall-charged retry loop does the reconnect-resume work; the harness only
// records the outcome.
struct ClientOutcome {
  Status status = OkStatus();
  std::string bytes;
  int reconnects = 0;
};

void RunClient(const ChaosOptions& options, uint16_t port, int index,
               const CancelToken* cancel, ClientOutcome* outcome) {
  const std::string tenant = StrFormat("chaos-%d", index);

  FetchOptions fetch;
  fetch.port = port;
  fetch.tenant = tenant;
  fetch.stream = "chaos";
  fetch.seed = options.seed;
  fetch.traces = options.traces;
  fetch.io_timeout_ms = options.io_timeout_ms;
  fetch.connect_timeout_ms = 2000;
  // Generous per-stall budget with fast backoff: degradation windows and
  // watchdog cuts resolve in hundreds of milliseconds, and any attempt that
  // makes progress resets the counter.
  fetch.retry.max_attempts = 100;
  fetch.retry.base_backoff_sec = 0.005;
  fetch.retry.max_backoff_sec = 0.05;
  fetch.retry.jitter_seed = 0xC4A05ull + static_cast<uint64_t>(index);
  fetch.cancel = cancel;

  std::ostringstream out;
  FetchResult result;
  outcome->status = FetchStream(fetch, out, &result);
  outcome->bytes = out.str();
  outcome->reconnects = result.reconnects;
}

}  // namespace

std::string ComposedScenarioPlan() {
  return
      // Background network chaos on every connection, both directions.
      "net_conn_drop prob=0.02, net_partial_write prob=0.02, "
      // The server's first checkpoint commits hit a full disk: the daemon
      // must degrade (shed new OPENs) instead of dying, then self-heal.
      "io_enospc from=1 to=4 site=serve, "
      // One session wedges mid-generation until the watchdog cuts it.
      "stream_stall at=3 site=serve, "
      // A two-call fd-exhaustion episode in the accept loop: back off, don't
      // spin. Deliberately a bounded window, not every=N — shed OPENs come
      // back as retries, so a rate-coupled trigger would re-arm the degraded
      // state faster than clients drain it and starve the fleet.
      "fd_exhaust from=20 to=21";
}

std::string ChaosReport::Summary() const {
  std::ostringstream out;
  const auto line = [&](const std::string& text) { out << text << "\n"; };
  line(StrFormat("chaos: clients=%d oracle_bytes=%llu reconnects=%llu",
                 clients, static_cast<unsigned long long>(oracle_bytes),
                 static_cast<unsigned long long>(total_reconnects)));
  for (size_t k = 0; k < static_cast<size_t>(kNumFaultKinds); ++k) {
    if (injected[k] > 0) {
      line(StrFormat("chaos: injected %s x%zu",
                     FaultKindName(static_cast<FaultKind>(k)), injected[k]));
    }
  }
  line(StrFormat("chaos: byte-identity vs fault-free oracle %s",
                 bytes_identical ? "ok" : "FAILED"));
  line(StrFormat("chaos: buffered-bytes peak %zu <= limit %zu %s",
                 peak_buffered_bytes, buffer_limit_bytes,
                 peak_buffered_bytes <= buffer_limit_bytes ? "ok" : "FAILED"));
  line(StrFormat("chaos: streams after drain %zu %s", streams_after_drain,
                 streams_after_drain == 0 ? "ok" : "FAILED"));
  line(StrFormat("chaos: server survived %s",
                 server_survived ? "ok" : "FAILED"));
  for (const std::string& failure : failures) {
    line("chaos: FAILURE: " + failure);
  }
  line(ok() ? "chaos: PASS" : "chaos: FAIL");
  return out.str();
}

Status RunChaosScenario(const ChaosOptions& options, ChaosReport* report) {
  CG_CHECK(report != nullptr);
  *report = ChaosReport();
  report->clients = options.clients;
  if (options.model == nullptr || !options.model->IsTrained()) {
    return FailedPreconditionError("chaos: model must be trained");
  }
  if (options.clients < 1) {
    return InvalidArgumentError("chaos: clients must be >= 1");
  }

  const std::string spec =
      options.plan_spec.empty() ? ComposedScenarioPlan() : options.plan_spec;
  FaultPlan plan;
  CG_RETURN_IF_ERROR(ParseFaultPlan(spec, &plan));

  // Pre-check: the plan's schedule must replay identically for its seed, or
  // a failing scenario cannot be reproduced and debugged.
  CG_RETURN_IF_ERROR(VerifyPlanDeterminism(plan, options.plan_seed,
                                           options.determinism_calls));

  // The oracle: what every client must receive, computed with injection off.
  FaultInjector::Global().Disarm();
  std::string oracle;
  options.model->GenerateTraceRowsRange(
      options.gen, WorkloadModel::TraceFamilyBase(options.seed), 0,
      static_cast<size_t>(options.traces), &oracle);
  report->oracle_bytes = oracle.size();
  if (oracle.empty()) {
    return InternalError("chaos: fault-free oracle generated zero bytes");
  }

  ServerOptions server_options;
  server_options.state_dir = options.state_dir;
  server_options.io_timeout_ms = options.io_timeout_ms;
  server_options.idle_timeout_ms = options.idle_timeout_ms;
  server_options.stall_timeout_ms = options.stall_timeout_ms;
  server_options.supervisor_interval_ms = options.supervisor_interval_ms;
  server_options.degraded_cooldown_ms = options.degraded_cooldown_ms;
  server_options.limits = options.limits;
  server_options.gen = options.gen;
  StreamServer server(options.model, server_options);
  CG_RETURN_IF_ERROR(server.Start());

  // Arm the plan only once the server is up, so scenario injection counts
  // start at the first client byte, not at setup work.
  CG_RETURN_IF_ERROR(
      FaultInjector::Global().ConfigurePlan(plan, options.plan_seed));

  CancelToken deadline;
  deadline.SetDeadline(options.deadline_sec);
  std::vector<ClientOutcome> outcomes(
      static_cast<size_t>(options.clients));
  std::vector<std::thread> threads;
  threads.reserve(outcomes.size());
  for (int i = 0; i < options.clients; ++i) {
    threads.emplace_back(RunClient, std::cref(options), server.Port(), i,
                         &deadline, &outcomes[static_cast<size_t>(i)]);
  }
  // Watchdog for the harness itself: past the deadline, cancel every client
  // (their SleepWithCancel / frame reads poll the token) instead of hanging.
  std::atomic<bool> done{false};
  std::thread reaper([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (deadline.Poll()) {
        return;  // Clients observe the token and abort.
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
  for (std::thread& thread : threads) {
    thread.join();
  }
  done.store(true, std::memory_order_release);
  reaper.join();
  if (deadline.Cancelled()) {
    report->failures.push_back(StrFormat(
        "scenario exceeded its %.0fs deadline; clients cancelled",
        options.deadline_sec));
  }

  // Capture injection counts before disarming (Configure/Disarm reset them),
  // then run the drain with injection off so shutdown is not part of the
  // scenario under test.
  for (size_t k = 0; k < static_cast<size_t>(kNumFaultKinds); ++k) {
    report->injected[k] =
        FaultInjector::Global().InjectedCount(static_cast<FaultKind>(k));
  }
  FaultInjector::Global().Disarm();

  server.RequestDrain();
  const Status wait = server.Wait();
  report->server_survived = wait.ok();
  if (!wait.ok()) {
    report->failures.push_back("server did not survive the scenario: " +
                               wait.ToString());
  }
  report->streams_after_drain = server.ActiveStreams();
  if (report->streams_after_drain != 0) {
    report->failures.push_back(StrFormat(
        "%zu stream(s) still active after drain (stuck sessions leaked)",
        report->streams_after_drain));
  }
  report->peak_buffered_bytes = server.PeakBufferedBytes();
  report->buffer_limit_bytes = server.limits().max_total_buffer_bytes;
  if (report->peak_buffered_bytes > report->buffer_limit_bytes) {
    report->failures.push_back(StrFormat(
        "registry buffered-bytes peak %zu exceeded the %zu-byte bound",
        report->peak_buffered_bytes, report->buffer_limit_bytes));
  }

  report->bytes_identical = true;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const ClientOutcome& outcome = outcomes[i];
    report->total_reconnects += static_cast<uint64_t>(outcome.reconnects);
    if (!outcome.status.ok()) {
      report->bytes_identical = false;
      report->failures.push_back(StrFormat(
          "client %zu failed: %s", i, outcome.status.ToString().c_str()));
      continue;
    }
    if (outcome.bytes != oracle) {
      report->bytes_identical = false;
      report->failures.push_back(StrFormat(
          "client %zu bytes diverge from the oracle (%zu vs %zu byte(s))",
          i, outcome.bytes.size(), oracle.size()));
    }
  }

  CG_LOG_INFO(StrFormat("chaos: scenario finished: %s",
                        report->ok() ? "PASS" : "FAIL"));
  return OkStatus();
}

}  // namespace serve
}  // namespace cloudgen
