// Core workload-trace data model (§2, §3).
//
// A trace is an ordered list of jobs (VMs): start period, end period, flavor
// and user. Timestamps are quantized to 5-minute periods as in the Azure
// public dataset; the order of jobs within a period reflects true arrival
// order. Right-censoring is explicit: a censored job's end_period records the
// censoring time (end of the observation window) and `censored` is set.
#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/glm/features.h"  // kSecondsPerPeriod / kPeriodsPerDay.

namespace cloudgen {

// A VM flavor: a named bundle of resources.
struct Flavor {
  int32_t id = 0;
  double cpus = 0.0;
  double memory_gb = 0.0;
  std::string name;
};

using FlavorCatalog = std::vector<Flavor>;

struct Job {
  int64_t start_period = 0;
  int64_t end_period = 0;  // End (exclusive of runtime beyond); == censor time if censored.
  int32_t flavor = 0;
  int64_t user = 0;
  bool censored = false;

  // Observed lifetime in seconds (full lifetime if uncensored; time observed
  // so far if censored).
  double LifetimeSeconds() const {
    return static_cast<double>(end_period - start_period) * kSecondsPerPeriod;
  }
};

// An ordered job list plus the flavor catalog and observation window.
class Trace {
 public:
  Trace() = default;
  Trace(FlavorCatalog flavors, int64_t window_start, int64_t window_end);

  const FlavorCatalog& Flavors() const { return flavors_; }
  size_t NumFlavors() const { return flavors_.size(); }
  int64_t WindowStart() const { return window_start_; }
  int64_t WindowEnd() const { return window_end_; }
  int64_t WindowPeriods() const { return window_end_ - window_start_; }

  const std::vector<Job>& Jobs() const { return jobs_; }
  std::vector<Job>& MutableJobs() { return jobs_; }
  size_t NumJobs() const { return jobs_.size(); }

  // Appends a job; jobs must be appended in arrival order.
  void Add(const Job& job);

  // Sorts jobs by (start_period, original order) — a stable normalization for
  // traces assembled out of order.
  void NormalizeOrder();

 private:
  FlavorCatalog flavors_;
  std::vector<Job> jobs_;
  int64_t window_start_ = 0;
  int64_t window_end_ = 0;
};

// Restricts `trace` to the observation window [start, end):
//  * jobs starting before `start` are dropped (avoids survivorship bias, §3.1)
//  * jobs starting at/after `end` are dropped
//  * jobs still running at `end` are right-censored at `end`
// `censor_horizon` optionally extends censoring beyond the window end (the
// Huawei test-set protocol of §3.2: keep observing terminations for a while,
// then censor); pass `end` for the plain protocol.
Trace ApplyObservationWindow(const Trace& trace, int64_t start, int64_t end,
                             int64_t censor_horizon);

// Train/dev/test split by period boundaries; each split is independently
// censored at its own window end (Figure 3), except the test window which may
// use a later censor horizon.
struct TraceSplits {
  Trace train;
  Trace dev;
  Trace test;
};
TraceSplits SplitTrace(const Trace& trace, int64_t train_end, int64_t dev_end,
                       int64_t test_censor_horizon);

// Jobs of one user within one period, in arrival order (§2: a "batch").
struct Batch {
  int64_t user = 0;
  std::vector<size_t> job_indices;  // Indices into the source trace's Jobs().
};

// All batches of one period, ordered by the arrival of each batch's first job.
struct PeriodBatches {
  int64_t period = 0;
  std::vector<Batch> batches;

  size_t TotalJobs() const;
};

// Groups a trace into per-period user batches; periods with no arrivals are
// included (empty batch lists) so arrival counts can be read densely.
std::vector<PeriodBatches> BuildBatches(const Trace& trace);

// Number of batch arrivals per period over the trace window (dense).
std::vector<double> BatchCountsPerPeriod(const Trace& trace);
// Number of job arrivals per period over the trace window (dense).
std::vector<double> JobCountsPerPeriod(const Trace& trace);

}  // namespace cloudgen

#endif  // SRC_TRACE_TRACE_H_
