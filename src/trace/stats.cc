#include "src/trace/stats.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/check.h"

namespace cloudgen {

std::vector<double> TotalCpusPerPeriod(const std::vector<Job>& jobs,
                                       const FlavorCatalog& flavors, int64_t from, int64_t to) {
  CG_CHECK(to >= from);
  const auto periods = static_cast<size_t>(to - from);
  // Difference array over [from, to].
  std::vector<double> delta(periods + 1, 0.0);
  for (const Job& job : jobs) {
    const double cpus = flavors.at(static_cast<size_t>(job.flavor)).cpus;
    // Occupied periods: [start, end) — censored jobs keep running through the
    // horizon since their true end is unknown.
    const int64_t begin = std::max(job.start_period, from);
    const int64_t end = job.censored ? to : std::min(job.end_period, to);
    if (begin >= end) {
      continue;
    }
    delta[static_cast<size_t>(begin - from)] += cpus;
    delta[static_cast<size_t>(end - from)] -= cpus;
  }
  std::vector<double> totals(periods, 0.0);
  double acc = 0.0;
  for (size_t p = 0; p < periods; ++p) {
    acc += delta[p];
    totals[p] = acc;
  }
  return totals;
}

std::vector<double> TotalCpusPerPeriod(const Trace& trace, int64_t from, int64_t to) {
  return TotalCpusPerPeriod(trace.Jobs(), trace.Flavors(), from, to);
}

std::vector<double> FlavorCounts(const Trace& trace) {
  std::vector<double> counts(trace.NumFlavors(), 0.0);
  for (const Job& job : trace.Jobs()) {
    counts[static_cast<size_t>(job.flavor)] += 1.0;
  }
  return counts;
}

std::vector<double> BatchSizeCounts(const Trace& trace) {
  const std::vector<PeriodBatches> periods = BuildBatches(trace);
  size_t max_size = 0;
  for (const auto& period : periods) {
    for (const auto& batch : period.batches) {
      max_size = std::max(max_size, batch.job_indices.size());
    }
  }
  std::vector<double> counts(max_size + 1, 0.0);
  for (const auto& period : periods) {
    for (const auto& batch : period.batches) {
      counts[batch.job_indices.size()] += 1.0;
    }
  }
  return counts;
}

double CensoredFraction(const Trace& trace) {
  if (trace.NumJobs() == 0) {
    return 0.0;
  }
  size_t censored = 0;
  for (const Job& job : trace.Jobs()) {
    if (job.censored) {
      ++censored;
    }
  }
  return static_cast<double>(censored) / static_cast<double>(trace.NumJobs());
}

TraceSummary Summarize(const Trace& trace) {
  TraceSummary summary;
  summary.num_jobs = trace.NumJobs();
  summary.window_days =
      static_cast<double>(trace.WindowPeriods()) / static_cast<double>(kPeriodsPerDay);
  summary.censored_fraction = CensoredFraction(trace);

  std::unordered_set<int64_t> users;
  double lifetime_sum = 0.0;
  size_t lifetime_count = 0;
  for (const Job& job : trace.Jobs()) {
    users.insert(job.user);
    if (!job.censored) {
      lifetime_sum += job.LifetimeSeconds();
      ++lifetime_count;
    }
  }
  summary.num_users = users.size();
  summary.mean_lifetime_hours =
      lifetime_count > 0 ? lifetime_sum / static_cast<double>(lifetime_count) / 3600.0 : 0.0;

  const int64_t periods = trace.WindowPeriods();
  if (periods > 0) {
    summary.mean_jobs_per_period =
        static_cast<double>(trace.NumJobs()) / static_cast<double>(periods);
    const std::vector<PeriodBatches> batches = BuildBatches(trace);
    size_t total_batches = 0;
    for (const auto& period : batches) {
      total_batches += period.batches.size();
    }
    summary.mean_batches_per_period =
        static_cast<double>(total_batches) / static_cast<double>(periods);
  }
  return summary;
}

}  // namespace cloudgen
