// Trace summary statistics used by Table 1, capacity planning and the
// visualizer: per-period counts, total resource usage over time, flavor
// frequency, batch-size distribution, and censoring rate.
#ifndef SRC_TRACE_STATS_H_
#define SRC_TRACE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/trace/trace.h"

namespace cloudgen {

// Total CPUs in use at each period of [from, to). A job occupies CPUs for
// periods [start_period, end_period); censored jobs occupy through `to`
// (they are known to still be running at their censor time only if the censor
// time is >= `to`; otherwise occupancy beyond the censor time is unknown and
// we keep them running — the standard convention when replaying demand).
std::vector<double> TotalCpusPerPeriod(const Trace& trace, int64_t from, int64_t to);

// As above but every job's demand is taken from `jobs` directly; used to add
// the carry-over VMs running at the start of a test window.
std::vector<double> TotalCpusPerPeriod(const std::vector<Job>& jobs,
                                       const FlavorCatalog& flavors, int64_t from, int64_t to);

// Empirical flavor distribution (counts, length = catalog size).
std::vector<double> FlavorCounts(const Trace& trace);

// Batch-size histogram: result[s] = number of batches with s jobs (index 0
// unused).
std::vector<double> BatchSizeCounts(const Trace& trace);

// Fraction of jobs marked censored.
double CensoredFraction(const Trace& trace);

struct TraceSummary {
  size_t num_jobs = 0;
  size_t num_users = 0;
  double window_days = 0.0;
  double censored_fraction = 0.0;
  double mean_jobs_per_period = 0.0;
  double mean_batches_per_period = 0.0;
  double mean_lifetime_hours = 0.0;  // Over uncensored jobs.
};
TraceSummary Summarize(const Trace& trace);

}  // namespace cloudgen

#endif  // SRC_TRACE_STATS_H_
