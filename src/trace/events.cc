#include "src/trace/events.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/rng.h"

namespace cloudgen {

std::vector<Event> BuildEventStream(const Trace& trace, Rng& rng) {
  std::vector<Event> events;
  events.reserve(trace.NumJobs() * 2);

  // Arrivals: evenly spaced across each period in trace order.
  std::unordered_map<int64_t, size_t> arrivals_in_period;
  for (const Job& job : trace.Jobs()) {
    ++arrivals_in_period[job.start_period];
  }
  std::unordered_map<int64_t, size_t> emitted_in_period;
  for (size_t i = 0; i < trace.Jobs().size(); ++i) {
    const Job& job = trace.Jobs()[i];
    const size_t total = arrivals_in_period[job.start_period];
    const size_t position = emitted_in_period[job.start_period]++;
    const double offset = static_cast<double>(kSecondsPerPeriod) *
                          (static_cast<double>(position) + 0.5) / static_cast<double>(total);
    Event event;
    event.time_seconds =
        static_cast<double>(job.start_period) * kSecondsPerPeriod + offset;
    event.kind = EventKind::kArrival;
    event.job_index = i;
    events.push_back(event);

    if (!job.censored) {
      Event departure;
      departure.time_seconds = static_cast<double>(job.end_period) * kSecondsPerPeriod +
                               rng.Uniform(0.0, static_cast<double>(kSecondsPerPeriod));
      departure.kind = EventKind::kDeparture;
      departure.job_index = i;
      // Guarantee a departure never precedes its own arrival.
      departure.time_seconds = std::max(departure.time_seconds, event.time_seconds + 1e-6);
      events.push_back(departure);
    }
  }

  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time_seconds != b.time_seconds) {
      return a.time_seconds < b.time_seconds;
    }
    if (a.kind != b.kind) {
      return a.kind == EventKind::kArrival;
    }
    return a.job_index < b.job_index;
  });
  return events;
}

}  // namespace cloudgen
