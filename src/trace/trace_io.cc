#include "src/trace/trace_io.h"

#include <algorithm>
#include <cstdlib>

#include "src/util/check.h"
#include "src/util/csv.h"
#include "src/util/strings.h"

namespace cloudgen {

bool WriteTraceCsv(const Trace& trace, const std::string& jobs_path,
                   const std::string& flavors_path) {
  {
    CsvWriter flavors(flavors_path, {"id", "name", "cpus", "memory_gb"});
    if (!flavors.Ok()) {
      return false;
    }
    for (const Flavor& flavor : trace.Flavors()) {
      flavors.WriteRow({std::to_string(flavor.id), flavor.name,
                        StrFormat("%.3f", flavor.cpus), StrFormat("%.3f", flavor.memory_gb)});
    }
  }
  CsvWriter jobs(jobs_path, {"start_period", "end_period", "flavor", "user", "censored"});
  if (!jobs.Ok()) {
    return false;
  }
  for (const Job& job : trace.Jobs()) {
    jobs.WriteRow({std::to_string(job.start_period), std::to_string(job.end_period),
                   std::to_string(job.flavor), std::to_string(job.user),
                   job.censored ? "1" : "0"});
  }
  return true;
}

bool ReadTraceCsv(const std::string& jobs_path, const std::string& flavors_path,
                  int64_t window_start, int64_t window_end, Trace* out) {
  CG_CHECK(out != nullptr);
  FlavorCatalog catalog;
  {
    CsvReader flavors(flavors_path);
    if (!flavors.Ok()) {
      return false;
    }
    std::vector<std::string> row;
    while (flavors.ReadRow(&row)) {
      Flavor flavor;
      flavor.id = static_cast<int32_t>(std::strtol(row[0].c_str(), nullptr, 10));
      flavor.name = row[1];
      flavor.cpus = std::strtod(row[2].c_str(), nullptr);
      flavor.memory_gb = std::strtod(row[3].c_str(), nullptr);
      catalog.push_back(flavor);
    }
  }
  CsvReader jobs(jobs_path);
  if (!jobs.Ok()) {
    return false;
  }
  std::vector<Job> parsed;
  int64_t max_start = window_start;
  std::vector<std::string> row;
  while (jobs.ReadRow(&row)) {
    Job job;
    job.start_period = std::strtoll(row[0].c_str(), nullptr, 10);
    job.end_period = std::strtoll(row[1].c_str(), nullptr, 10);
    job.flavor = static_cast<int32_t>(std::strtol(row[2].c_str(), nullptr, 10));
    job.user = std::strtoll(row[3].c_str(), nullptr, 10);
    job.censored = row[4] == "1";
    parsed.push_back(job);
    max_start = std::max(max_start, job.start_period);
  }
  const int64_t end = window_end >= 0 ? window_end : max_start + 1;
  *out = Trace(std::move(catalog), window_start, end);
  for (const Job& job : parsed) {
    out->Add(job);
  }
  return true;
}

}  // namespace cloudgen
