#include "src/trace/trace_io.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/atomic_file.h"
#include "src/util/check.h"
#include "src/util/csv.h"
#include "src/util/log.h"
#include "src/util/strings.h"

namespace cloudgen {
namespace {

// How many skipped rows lenient mode logs before going quiet.
constexpr size_t kMaxLoggedSkips = 5;

Status RowError(const std::string& path, size_t line, const std::string& what) {
  return InvalidArgumentError(StrFormat("%s:%zu: %s", path.c_str(), line, what.c_str()));
}

// Parses and validates one jobs row. On success fills `job`.
Status ParseJobRow(const std::vector<std::string>& row, const std::string& path,
                   size_t line, size_t num_flavors, const TraceCsvReadOptions& options,
                   Job* job) {
  if (!ParseInt64(row[0], &job->start_period)) {
    return RowError(path, line, "start_period '" + row[0] + "' is not an integer");
  }
  if (!ParseInt64(row[1], &job->end_period)) {
    return RowError(path, line, "end_period '" + row[1] + "' is not an integer");
  }
  if (!ParseInt32(row[2], &job->flavor)) {
    return RowError(path, line, "flavor '" + row[2] + "' is not an integer");
  }
  if (!ParseInt64(row[3], &job->user)) {
    return RowError(path, line, "user '" + row[3] + "' is not an integer");
  }
  if (row[4] != "0" && row[4] != "1") {
    return RowError(path, line, "censored '" + row[4] + "' is not 0 or 1");
  }
  job->censored = row[4] == "1";
  if (job->end_period < job->start_period) {
    return RowError(path, line,
                    StrFormat("end_period %lld < start_period %lld",
                              static_cast<long long>(job->end_period),
                              static_cast<long long>(job->start_period)));
  }
  if (job->flavor < 0 || static_cast<size_t>(job->flavor) >= num_flavors) {
    return RowError(path, line,
                    StrFormat("unknown flavor id %d (catalog has %zu flavors)",
                              job->flavor, num_flavors));
  }
  if (job->start_period < options.window_start) {
    return RowError(path, line,
                    StrFormat("start_period %lld precedes the window start %lld",
                              static_cast<long long>(job->start_period),
                              static_cast<long long>(options.window_start)));
  }
  if (options.window_end >= 0 && job->start_period >= options.window_end) {
    return RowError(path, line,
                    StrFormat("start_period %lld is past the window end %lld",
                              static_cast<long long>(job->start_period),
                              static_cast<long long>(options.window_end)));
  }
  return OkStatus();
}

Status ReadFlavorCatalog(const std::string& path, FlavorCatalog* catalog) {
  CsvReader flavors(path);
  if (!flavors.Ok()) {
    return flavors.status().WithContext("flavor catalog " + path);
  }
  std::vector<std::string> row;
  while (flavors.ReadRow(&row)) {
    const size_t line = flavors.LineNumber();
    Flavor flavor;
    if (!ParseInt32(row[0], &flavor.id)) {
      return RowError(path, line, "flavor id '" + row[0] + "' is not an integer");
    }
    // Flavor ids double as indices throughout the library, so the catalog
    // must be dense and in order.
    if (flavor.id != static_cast<int32_t>(catalog->size())) {
      return RowError(path, line,
                      StrFormat("flavor id %d out of order (expected %zu)", flavor.id,
                                catalog->size()));
    }
    flavor.name = row[1];
    if (!ParseDouble(row[2], &flavor.cpus) || !std::isfinite(flavor.cpus) ||
        flavor.cpus < 0.0) {
      return RowError(path, line, "cpus '" + row[2] + "' is not a non-negative number");
    }
    if (!ParseDouble(row[3], &flavor.memory_gb) || !std::isfinite(flavor.memory_gb) ||
        flavor.memory_gb < 0.0) {
      return RowError(path, line,
                      "memory_gb '" + row[3] + "' is not a non-negative number");
    }
    catalog->push_back(flavor);
  }
  CG_RETURN_IF_ERROR(flavors.status().WithContext(path));
  if (catalog->empty()) {
    return InvalidArgumentError(path + ": flavor catalog is empty");
  }
  return OkStatus();
}

}  // namespace

Status WriteTraceCsv(const Trace& trace, const std::string& jobs_path,
                     const std::string& flavors_path) {
  {
    const std::string tmp = flavors_path + ".tmp";
    CsvWriter flavors(tmp, {"id", "name", "cpus", "memory_gb"});
    if (!flavors.Ok()) {
      return UnavailableError("cannot open " + tmp + " for writing");
    }
    for (const Flavor& flavor : trace.Flavors()) {
      flavors.WriteRow({std::to_string(flavor.id), flavor.name,
                        StrFormat("%.3f", flavor.cpus), StrFormat("%.3f", flavor.memory_gb)});
    }
    CG_RETURN_IF_ERROR(flavors.Finish());
    CG_RETURN_IF_ERROR(CommitTempFile(tmp, flavors_path));
  }
  const std::string tmp = jobs_path + ".tmp";
  CsvWriter jobs(tmp, {"start_period", "end_period", "flavor", "user", "censored"});
  if (!jobs.Ok()) {
    return UnavailableError("cannot open " + tmp + " for writing");
  }
  for (const Job& job : trace.Jobs()) {
    jobs.WriteRow({std::to_string(job.start_period), std::to_string(job.end_period),
                   std::to_string(job.flavor), std::to_string(job.user),
                   job.censored ? "1" : "0"});
  }
  CG_RETURN_IF_ERROR(jobs.Finish());
  CG_RETURN_IF_ERROR(CommitTempFile(tmp, jobs_path));
  return OkStatus();
}

Status ReadTraceCsv(const std::string& jobs_path, const std::string& flavors_path,
                    const TraceCsvReadOptions& options, Trace* out,
                    TraceCsvReadReport* report) {
  CG_CHECK(out != nullptr);
  TraceCsvReadReport local_report;
  TraceCsvReadReport* rep = report != nullptr ? report : &local_report;
  *rep = TraceCsvReadReport();

  FlavorCatalog catalog;
  CG_RETURN_IF_ERROR(ReadFlavorCatalog(flavors_path, &catalog));

  CsvReader jobs(jobs_path);
  if (!jobs.Ok()) {
    return jobs.status().WithContext("jobs file " + jobs_path);
  }
  std::vector<Job> parsed;
  int64_t max_start = options.window_start;
  std::vector<std::string> row;
  while (true) {
    if (!jobs.ReadRow(&row)) {
      if (jobs.status().ok()) {
        break;  // Clean EOF.
      }
      // Structurally bad row (wrong field count). CsvReader cannot resync
      // past it, so even lenient mode stops here.
      return jobs.status().WithContext(jobs_path);
    }
    Job job;
    const Status row_status =
        ParseJobRow(row, jobs_path, jobs.LineNumber(), catalog.size(), options, &job);
    if (!row_status.ok()) {
      if (!options.lenient) {
        return row_status;
      }
      ++rep->rows_skipped;
      if (rep->first_skipped.empty()) {
        rep->first_skipped = row_status.ToString();
      }
      if (rep->rows_skipped <= kMaxLoggedSkips) {
        CG_LOG_WARN("lenient read skipping " + row_status.ToString());
      }
      continue;
    }
    parsed.push_back(job);
    max_start = std::max(max_start, job.start_period);
  }
  if (rep->rows_skipped > kMaxLoggedSkips) {
    CG_LOG_WARN(StrFormat("lenient read skipped %zu bad rows in total in %s",
                          rep->rows_skipped, jobs_path.c_str()));
  }
  const int64_t end = options.window_end >= 0 ? options.window_end : max_start + 1;
  *out = Trace(std::move(catalog), options.window_start, end);
  for (const Job& job : parsed) {
    out->Add(job);
  }
  rep->jobs_read = parsed.size();
  return OkStatus();
}

}  // namespace cloudgen
