// Streaming trace sinks: where generated jobs go as they are produced.
//
// `WorkloadModel::GenerateMany` historically materialized every trace in
// memory and returned a vector — fine for prediction-interval sampling,
// fatal for the paper's month-scale serving runs where a crash at hour 20
// threw away everything. A TraceSink decouples generation from persistence:
//
//   InMemoryTraceSink    preserves the old behavior (collects Trace objects).
//   SegmentedFileSink    streams rows into size-bounded *segments*, each
//                        sealed atomically as a CRC'd sealed-file container
//                        (src/util/sealed_file.h, tag kSealTraceSegment) and
//                        recorded in an atomically-rewritten manifest. A
//                        crash loses at most the unsealed tail; everything
//                        in the manifest is durable (fsync'd file + dir).
//
// Segment payloads are concatenations of AppendJobRow lines, so the
// *concatenation* of all segments is invariant to where segment boundaries
// fall — a resumed run whose seals land elsewhere (e.g. after a graceful
// stop) still byte-compares equal to an uninterrupted run. That invariant is
// what the kill/resume soak tests assert.
//
// Thread safety: sinks are driven by a single flusher (the generation
// orchestrator serializes flushes under its reorder lock); they are not
// internally synchronized.
#ifndef SRC_TRACE_TRACE_SINK_H_
#define SRC_TRACE_TRACE_SINK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace.h"
#include "src/util/retry.h"
#include "src/util/status.h"

namespace cloudgen {

// Serializes one generated job as a text row:
//   <trace>,<start_period>,<end_period>,<flavor>,<user>,<censored>\n
// The row carries its trace index so segment payloads are self-describing
// and byte-comparable across different segmentations.
void AppendJobRow(size_t trace_index, const Job& job, std::string* out);

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  // Traces arrive strictly in index order; jobs within a trace in
  // generation order. Begin/End bracket each trace's Append calls.
  virtual Status BeginTrace(size_t trace_index) = 0;
  virtual Status Append(const Job& job) = 0;
  virtual Status EndTrace() = 0;

  // Durability boundary, called by the orchestrator after each completed
  // trace (many-trace mode) or period (streaming mode). The sink may seal
  // buffered rows into a durable segment once its size bound is reached;
  // `force` seals any non-empty buffer regardless (graceful stop, Finish).
  // Reports whether a segment was sealed via `sealed` (may be null). At
  // most one segment is sealed per call.
  virtual Status CommitPoint(bool force, bool* sealed) = 0;

  // Resume support: aligns the sink's durable state with a generation
  // checkpoint cursor that recorded `segments_sealed` segments, dropping
  // any manifest entries past it (a crash between a checkpoint write and
  // the next one can leave the manifest ahead of the cursor; the dropped
  // rows are regenerated identically). Default: resume unsupported.
  virtual Status ResumeAt(uint64_t segments_sealed);

  // Seals the remaining buffer and marks the output complete. Idempotent.
  virtual Status Finish() = 0;
};

// Collects whole Trace objects; the vector-returning GenerateMany delegates
// through this sink, preserving its exact legacy behavior.
class InMemoryTraceSink final : public TraceSink {
 public:
  InMemoryTraceSink(FlavorCatalog flavors, int64_t window_start, int64_t window_end);

  Status BeginTrace(size_t trace_index) override;
  Status Append(const Job& job) override;
  Status EndTrace() override;
  Status CommitPoint(bool force, bool* sealed) override;
  Status Finish() override;

  // Completed traces, in index order.
  std::vector<Trace>& Traces() { return traces_; }

 private:
  FlavorCatalog flavors_;
  int64_t window_start_ = 0;
  int64_t window_end_ = 0;
  std::vector<Trace> traces_;
  bool in_trace_ = false;
};

// The manifest is the segment directory's source of truth: only segments it
// lists exist as far as readers are concerned (orphan files from a crash in
// the seal→manifest window are overwritten on resume).
struct SegmentManifest {
  struct Segment {
    std::string file;     // Relative to the sink directory.
    uint64_t bytes = 0;   // Payload size.
    uint32_t crc32 = 0;   // Payload CRC (same value the sealed header carries).
  };
  std::vector<Segment> segments;
  bool complete = false;  // Finish() ran: the run produced all its traces.
};

Status LoadSegmentManifest(const std::string& dir, SegmentManifest* manifest);

// CRC-verified concatenation of every manifest-listed segment payload, in
// order. With `require_complete`, fails on a directory whose run never
// finished. This is the byte string the kill/resume harness compares.
Status ConcatSegments(const std::string& dir, bool require_complete, std::string* out);

class SegmentedFileSink final : public TraceSink {
 public:
  // Segment seals and manifest rewrites are both idempotent temp-then-rename
  // commits, so a transient failure (injected io_write, an ENOSPC blip) is
  // retried briefly before the error surfaces — it must cost a retry, not
  // the run. Short backoffs: these writes gate generation progress.
  static RetryPolicy DefaultWriteRetry() {
    RetryPolicy policy;
    policy.max_attempts = 4;
    policy.base_backoff_sec = 0.01;
    policy.max_backoff_sec = 0.1;
    return policy;
  }

  struct Options {
    std::string dir;                            // Created if missing.
    uint64_t segment_bytes = 4 * 1024 * 1024;   // Seal threshold (soft bound).
    bool resume = false;                        // Keep the existing manifest.
    RetryPolicy write_retry = DefaultWriteRetry();
  };

  explicit SegmentedFileSink(Options options);

  // Fresh run: creates the directory and resets the manifest to empty.
  // Resume: loads the existing manifest (missing manifest = empty). Call
  // once before streaming.
  Status Init();

  Status BeginTrace(size_t trace_index) override;
  Status Append(const Job& job) override;
  Status EndTrace() override;
  Status CommitPoint(bool force, bool* sealed) override;
  Status ResumeAt(uint64_t segments_sealed) override;
  Status Finish() override;

  size_t NumSegments() const { return manifest_.segments.size(); }
  uint64_t BufferedBytes() const { return buffer_.size(); }
  const std::string& Dir() const { return options_.dir; }

  static std::string ManifestPath(const std::string& dir);
  static std::string SegmentFileName(size_t index);

 private:
  Status SealSegment();
  Status WriteManifest() const;

  Options options_;
  std::string buffer_;
  size_t current_trace_ = 0;
  SegmentManifest manifest_;
  bool initialized_ = false;
};

}  // namespace cloudgen

#endif  // SRC_TRACE_TRACE_SINK_H_
