#include "src/trace/trace.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/check.h"

namespace cloudgen {

Trace::Trace(FlavorCatalog flavors, int64_t window_start, int64_t window_end)
    : flavors_(std::move(flavors)), window_start_(window_start), window_end_(window_end) {
  CG_CHECK(window_end >= window_start);
  for (size_t i = 0; i < flavors_.size(); ++i) {
    CG_CHECK_MSG(flavors_[i].id == static_cast<int32_t>(i), "flavor ids must be 0..K-1");
  }
}

void Trace::Add(const Job& job) {
  CG_CHECK(job.flavor >= 0 && static_cast<size_t>(job.flavor) < flavors_.size());
  CG_CHECK(job.end_period >= job.start_period);
  jobs_.push_back(job);
}

void Trace::NormalizeOrder() {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) { return a.start_period < b.start_period; });
}

Trace ApplyObservationWindow(const Trace& trace, int64_t start, int64_t end,
                             int64_t censor_horizon) {
  CG_CHECK(end > start);
  CG_CHECK(censor_horizon >= end);
  Trace out(trace.Flavors(), start, end);
  for (const Job& job : trace.Jobs()) {
    if (job.start_period < start || job.start_period >= end) {
      continue;
    }
    Job copy = job;
    if (copy.censored) {
      // Already-censored input (e.g. from a previous windowing); re-censor if
      // the new horizon is earlier.
      if (copy.end_period > censor_horizon) {
        copy.end_period = censor_horizon;
      }
    } else if (copy.end_period > censor_horizon) {
      copy.end_period = censor_horizon;
      copy.censored = true;
    }
    out.Add(copy);
  }
  return out;
}

TraceSplits SplitTrace(const Trace& trace, int64_t train_end, int64_t dev_end,
                       int64_t test_censor_horizon) {
  CG_CHECK(train_end > trace.WindowStart());
  CG_CHECK(dev_end > train_end);
  CG_CHECK(trace.WindowEnd() > dev_end);
  TraceSplits splits;
  splits.train = ApplyObservationWindow(trace, trace.WindowStart(), train_end, train_end);
  splits.dev = ApplyObservationWindow(trace, train_end, dev_end, dev_end);
  splits.test =
      ApplyObservationWindow(trace, dev_end, trace.WindowEnd(), test_censor_horizon);
  return splits;
}

size_t PeriodBatches::TotalJobs() const {
  size_t total = 0;
  for (const Batch& batch : batches) {
    total += batch.job_indices.size();
  }
  return total;
}

std::vector<PeriodBatches> BuildBatches(const Trace& trace) {
  const int64_t start = trace.WindowStart();
  const int64_t periods = trace.WindowPeriods();
  std::vector<PeriodBatches> out(static_cast<size_t>(periods));
  for (int64_t p = 0; p < periods; ++p) {
    out[static_cast<size_t>(p)].period = start + p;
  }
  // Within a period, a user's jobs form one batch; batches are ordered by the
  // first arrival of each user in that period. Jobs are already in arrival
  // order within the trace.
  std::unordered_map<int64_t, size_t> user_to_batch;
  int64_t current_period = -1;
  for (size_t i = 0; i < trace.Jobs().size(); ++i) {
    const Job& job = trace.Jobs()[i];
    CG_CHECK_MSG(job.start_period >= start && job.start_period < trace.WindowEnd(),
                 "job outside trace window");
    CG_CHECK_MSG(job.start_period >= current_period, "jobs must be ordered by start period");
    if (job.start_period != current_period) {
      current_period = job.start_period;
      user_to_batch.clear();
    }
    auto& period_entry = out[static_cast<size_t>(job.start_period - start)];
    const auto it = user_to_batch.find(job.user);
    if (it == user_to_batch.end()) {
      user_to_batch.emplace(job.user, period_entry.batches.size());
      period_entry.batches.push_back(Batch{job.user, {i}});
    } else {
      period_entry.batches[it->second].job_indices.push_back(i);
    }
  }
  return out;
}

std::vector<double> BatchCountsPerPeriod(const Trace& trace) {
  const std::vector<PeriodBatches> batches = BuildBatches(trace);
  std::vector<double> counts(batches.size(), 0.0);
  for (size_t p = 0; p < batches.size(); ++p) {
    counts[p] = static_cast<double>(batches[p].batches.size());
  }
  return counts;
}

std::vector<double> JobCountsPerPeriod(const Trace& trace) {
  std::vector<double> counts(static_cast<size_t>(trace.WindowPeriods()), 0.0);
  for (const Job& job : trace.Jobs()) {
    counts[static_cast<size_t>(job.start_period - trace.WindowStart())] += 1.0;
  }
  return counts;
}

}  // namespace cloudgen
