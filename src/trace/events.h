// Conversion of a period-quantized trace into a fine-grained event stream for
// scheduling experiments (§2.4, §6.2).
//
// Arrivals within a period are spread across the 5-minute interval in their
// generative (trace) order; departures are placed uniformly at random within
// their period and interleaved with the arrivals.
#ifndef SRC_TRACE_EVENTS_H_
#define SRC_TRACE_EVENTS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/trace/trace.h"

namespace cloudgen {

class Rng;

enum class EventKind { kArrival, kDeparture };

struct Event {
  double time_seconds = 0.0;
  EventKind kind = EventKind::kArrival;
  size_t job_index = 0;  // Index into the source trace's Jobs().
};

// Builds the time-sorted event stream. Censored jobs get no departure event.
// Ties are broken arrival-before-departure at identical timestamps, then by
// job index, so streams are deterministic given the Rng state.
std::vector<Event> BuildEventStream(const Trace& trace, Rng& rng);

}  // namespace cloudgen

#endif  // SRC_TRACE_EVENTS_H_
