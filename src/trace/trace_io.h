// CSV import/export of traces, in a vmtable-like schema:
//   start_period,end_period,flavor,user,censored
// plus a flavor catalog file:
//   id,name,cpus,memory_gb
#ifndef SRC_TRACE_TRACE_IO_H_
#define SRC_TRACE_TRACE_IO_H_

#include <string>

#include "src/trace/trace.h"

namespace cloudgen {

// Writes the jobs and catalog; returns false on I/O failure.
bool WriteTraceCsv(const Trace& trace, const std::string& jobs_path,
                   const std::string& flavors_path);

// Reads a trace previously written by WriteTraceCsv. The window is inferred
// as [min start, max(start)+1) unless explicit bounds are given (pass
// window_end = -1 to infer).
bool ReadTraceCsv(const std::string& jobs_path, const std::string& flavors_path,
                  int64_t window_start, int64_t window_end, Trace* out);

}  // namespace cloudgen

#endif  // SRC_TRACE_TRACE_IO_H_
