// CSV import/export of traces, in a vmtable-like schema:
//   start_period,end_period,flavor,user,censored
// plus a flavor catalog file:
//   id,name,cpus,memory_gb
//
// Reads validate every cell: numeric fields must parse exactly, jobs must
// satisfy end_period >= start_period, reference a catalog flavor, and start
// inside the observation window. Errors name the file and 1-based line
// number. Writes are atomic (temp file + rename), so an interrupted run
// never leaves a truncated CSV behind.
#ifndef SRC_TRACE_TRACE_IO_H_
#define SRC_TRACE_TRACE_IO_H_

#include <string>

#include "src/trace/trace.h"
#include "src/util/status.h"

namespace cloudgen {

struct TraceCsvReadOptions {
  int64_t window_start = 0;
  // -1 infers the window end as max(start_period) + 1.
  int64_t window_end = -1;
  // Strict mode (default) fails on the first bad row. Lenient mode skips bad
  // rows, counts them in the report, and logs the first few.
  bool lenient = false;
};

struct TraceCsvReadReport {
  size_t jobs_read = 0;
  size_t rows_skipped = 0;
  // Rendered error of the first skipped row (lenient mode), for diagnostics.
  std::string first_skipped;
};

// Writes the jobs and catalog atomically.
Status WriteTraceCsv(const Trace& trace, const std::string& jobs_path,
                     const std::string& flavors_path);

// Reads a trace previously written by WriteTraceCsv. `report` (optional)
// receives row counts; it is filled on success and on failure.
Status ReadTraceCsv(const std::string& jobs_path, const std::string& flavors_path,
                    const TraceCsvReadOptions& options, Trace* out,
                    TraceCsvReadReport* report = nullptr);

// Back-compat convenience for window-only callers.
inline Status ReadTraceCsv(const std::string& jobs_path, const std::string& flavors_path,
                           int64_t window_start, int64_t window_end, Trace* out) {
  TraceCsvReadOptions options;
  options.window_start = window_start;
  options.window_end = window_end;
  return ReadTraceCsv(jobs_path, flavors_path, options, out);
}

}  // namespace cloudgen

#endif  // SRC_TRACE_TRACE_IO_H_
