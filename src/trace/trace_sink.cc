#include "src/trace/trace_sink.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/obs/metrics.h"
#include "src/util/atomic_file.h"
#include "src/util/check.h"
#include "src/util/crc32.h"
#include "src/util/fault.h"
#include "src/util/log.h"
#include "src/util/sealed_file.h"
#include "src/util/strings.h"

namespace cloudgen {
namespace {

constexpr char kManifestHeader[] = "cloudgen.segments.v1";
constexpr char kManifestCompleteMarker[] = "complete";

Status MakeDirIfMissing(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST) {
    return OkStatus();
  }
  return UnavailableError("cannot create directory " + dir);
}

obs::Counter& SealedSegmentsCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("gen.segments.sealed");
  return counter;
}

}  // namespace

void AppendJobRow(size_t trace_index, const Job& job, std::string* out) {
  char buf[128];
  const int n = std::snprintf(buf, sizeof(buf), "%zu,%lld,%lld,%d,%lld,%d\n",
                              trace_index, static_cast<long long>(job.start_period),
                              static_cast<long long>(job.end_period), job.flavor,
                              static_cast<long long>(job.user), job.censored ? 1 : 0);
  CG_CHECK(n > 0 && static_cast<size_t>(n) < sizeof(buf));
  out->append(buf, static_cast<size_t>(n));
}

Status TraceSink::ResumeAt(uint64_t /*segments_sealed*/) {
  return FailedPreconditionError("this sink does not support resuming");
}

InMemoryTraceSink::InMemoryTraceSink(FlavorCatalog flavors, int64_t window_start,
                                     int64_t window_end)
    : flavors_(std::move(flavors)),
      window_start_(window_start),
      window_end_(window_end) {}

Status InMemoryTraceSink::BeginTrace(size_t trace_index) {
  CG_CHECK_MSG(!in_trace_, "BeginTrace without EndTrace");
  CG_CHECK_MSG(trace_index == traces_.size(), "traces must arrive in index order");
  traces_.emplace_back(flavors_, window_start_, window_end_);
  in_trace_ = true;
  return OkStatus();
}

Status InMemoryTraceSink::Append(const Job& job) {
  CG_CHECK_MSG(in_trace_, "Append outside BeginTrace/EndTrace");
  traces_.back().Add(job);
  return OkStatus();
}

Status InMemoryTraceSink::EndTrace() {
  CG_CHECK_MSG(in_trace_, "EndTrace without BeginTrace");
  in_trace_ = false;
  return OkStatus();
}

Status InMemoryTraceSink::CommitPoint(bool /*force*/, bool* sealed) {
  if (sealed != nullptr) {
    *sealed = false;  // Nothing to make durable.
  }
  return OkStatus();
}

Status InMemoryTraceSink::Finish() { return OkStatus(); }

std::string SegmentedFileSink::ManifestPath(const std::string& dir) {
  return dir + "/MANIFEST";
}

std::string SegmentedFileSink::SegmentFileName(size_t index) {
  return StrFormat("segment-%06zu.seg", index);
}

Status LoadSegmentManifest(const std::string& dir, SegmentManifest* manifest) {
  *manifest = SegmentManifest();
  const std::string path = SegmentedFileSink::ManifestPath(dir);
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("no segment manifest at " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    // Distinct from a bad header: an empty MANIFEST means the write that
    // should have produced it never completed (or the file was truncated).
    return DataLossError("segment manifest " + path +
                         " is empty — the generation run that owns this "
                         "directory was truncated before its first manifest "
                         "write; regenerate or resume it");
  }
  if (Trim(line) != kManifestHeader) {
    return DataLossError("bad segment manifest header in " + path);
  }
  while (std::getline(in, line)) {
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) {
      continue;
    }
    if (trimmed == kManifestCompleteMarker) {
      manifest->complete = true;
      continue;
    }
    const std::vector<std::string> fields = Split(trimmed, ',');
    int64_t bytes = 0;
    if (fields.size() != 3 || !ParseInt64(fields[1], &bytes) || bytes < 0) {
      return DataLossError("malformed segment manifest row in " + path + ": '" +
                           line + "' (truncated or corrupt manifest)");
    }
    char* end = nullptr;
    const unsigned long crc = std::strtoul(fields[2].c_str(), &end, 16);
    if (end == nullptr || *end != '\0') {
      return DataLossError("malformed segment CRC in " + path + ": " + line);
    }
    manifest->segments.push_back(SegmentManifest::Segment{
        fields[0], static_cast<uint64_t>(bytes), static_cast<uint32_t>(crc)});
  }
  return OkStatus();
}

Status ConcatSegments(const std::string& dir, bool require_complete, std::string* out) {
  out->clear();
  SegmentManifest manifest;
  CG_RETURN_IF_ERROR(LoadSegmentManifest(dir, &manifest));
  if (require_complete && !manifest.complete) {
    return FailedPreconditionError(
        "segment directory " + dir +
        " is not complete (interrupted run; resume it or pass allow-partial)");
  }
  for (size_t i = 0; i < manifest.segments.size(); ++i) {
    const SegmentManifest::Segment& segment = manifest.segments[i];
    std::string payload;
    uint64_t extra = 0;
    CG_RETURN_IF_ERROR(
        ReadSealedFile(dir + "/" + segment.file, kSealTraceSegment, &extra, &payload)
            .WithContext("reading segment " + segment.file));
    if (extra != i || payload.size() != segment.bytes ||
        Crc32(payload) != segment.crc32) {
      return DataLossError("segment " + segment.file +
                           " does not match its manifest entry");
    }
    out->append(payload);
  }
  return OkStatus();
}

SegmentedFileSink::SegmentedFileSink(Options options) : options_(std::move(options)) {
  CG_CHECK(!options_.dir.empty());
  CG_CHECK(options_.segment_bytes > 0);
}

Status SegmentedFileSink::Init() {
  CG_CHECK_MSG(!initialized_, "Init() called twice");
  CG_RETURN_IF_ERROR(MakeDirIfMissing(options_.dir));
  if (options_.resume) {
    const Status loaded = LoadSegmentManifest(options_.dir, &manifest_);
    if (loaded.code() == StatusCode::kNotFound) {
      manifest_ = SegmentManifest();  // Resuming a run that never sealed.
    } else if (!loaded.ok()) {
      return loaded;
    }
  } else {
    // A fresh run over an existing directory starts from an empty manifest;
    // stale segment files are simply never referenced again.
    manifest_ = SegmentManifest();
    CG_RETURN_IF_ERROR(WriteManifest());
  }
  initialized_ = true;
  return OkStatus();
}

Status SegmentedFileSink::BeginTrace(size_t trace_index) {
  CG_CHECK_MSG(initialized_, "SegmentedFileSink used before Init()");
  current_trace_ = trace_index;
  return OkStatus();
}

Status SegmentedFileSink::Append(const Job& job) {
  AppendJobRow(current_trace_, job, &buffer_);
  return OkStatus();
}

Status SegmentedFileSink::EndTrace() { return OkStatus(); }

Status SegmentedFileSink::CommitPoint(bool force, bool* sealed) {
  if (sealed != nullptr) {
    *sealed = false;
  }
  const bool should_seal =
      !buffer_.empty() && (force || buffer_.size() >= options_.segment_bytes);
  if (!should_seal) {
    return OkStatus();
  }
  CG_RETURN_IF_ERROR(SealSegment());
  if (sealed != nullptr) {
    *sealed = true;
  }
  return OkStatus();
}

Status SegmentedFileSink::ResumeAt(uint64_t segments_sealed) {
  CG_CHECK_MSG(initialized_, "SegmentedFileSink used before Init()");
  if (manifest_.segments.size() < segments_sealed) {
    // The checkpoint is written only after the manifest, so the manifest can
    // run ahead of the cursor but never behind it.
    return DataLossError(StrFormat(
        "generation checkpoint expects %llu sealed segment(s) but the manifest "
        "lists %zu — the segment directory does not belong to this checkpoint",
        static_cast<unsigned long long>(segments_sealed), manifest_.segments.size()));
  }
  if (manifest_.segments.size() > segments_sealed) {
    // Crash landed between a seal/manifest update and the checkpoint write:
    // drop the uncovered tail; the generator re-derives those rows (and
    // overwrites the orphan files) bitwise-identically.
    CG_LOGF_WARN("dropping %zu segment(s) past the generation checkpoint",
                 manifest_.segments.size() - static_cast<size_t>(segments_sealed));
    manifest_.segments.resize(segments_sealed);
  }
  manifest_.complete = false;
  return WriteManifest();
}

Status SegmentedFileSink::Finish() {
  CG_CHECK_MSG(initialized_, "SegmentedFileSink used before Init()");
  if (!buffer_.empty()) {
    CG_RETURN_IF_ERROR(SealSegment());
  }
  if (manifest_.complete) {
    return OkStatus();
  }
  manifest_.complete = true;
  return WriteManifest();
}

Status SegmentedFileSink::SealSegment() {
  // Plan rules scoped site=sink target exactly the segment/manifest commits.
  ScopedFaultSite fault_site("sink");
  const std::string file = SegmentFileName(manifest_.segments.size());
  CG_RETURN_IF_ERROR(
      RetryVoid(options_.write_retry, "segment seal", [this, &file] {
        return WriteSealedFile(options_.dir + "/" + file, kSealTraceSegment,
                               manifest_.segments.size(), buffer_);
      }));
  if (FaultInjector::Global().ShouldInject(FaultKind::kGenWriteKill)) {
    // A real crash in the nastiest window: the segment file is durable but
    // the manifest (and therefore the checkpoint) never learns about it.
    // _Exit skips destructors/atexit on purpose — nothing may "clean up".
    CG_LOG_ERROR("fault gen_write_kill: dying between segment seal and manifest update");
    std::_Exit(kFaultKillExitCode);
  }
  manifest_.segments.push_back(SegmentManifest::Segment{
      file, static_cast<uint64_t>(buffer_.size()), Crc32(buffer_)});
  CG_RETURN_IF_ERROR(WriteManifest());
  buffer_.clear();
  SealedSegmentsCounter().Add(1);
  return OkStatus();
}

Status SegmentedFileSink::WriteManifest() const {
  return RetryVoid(options_.write_retry, "segment manifest rewrite", [this] {
    return WriteFileAtomic(ManifestPath(options_.dir), [this](std::ostream& out) {
      out << kManifestHeader << "\n";
      for (const SegmentManifest::Segment& segment : manifest_.segments) {
        out << segment.file << ',' << segment.bytes << ','
            << StrFormat("%08x", segment.crc32) << "\n";
      }
      if (manifest_.complete) {
        out << kManifestCompleteMarker << "\n";
      }
    });
  });
}

}  // namespace cloudgen
