file(REMOVE_RECURSE
  "CMakeFiles/trace_viz.dir/trace_viz.cpp.o"
  "CMakeFiles/trace_viz.dir/trace_viz.cpp.o.d"
  "trace_viz"
  "trace_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
