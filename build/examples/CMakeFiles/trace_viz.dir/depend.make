# Empty dependencies file for trace_viz.
# This may be replaced when dependencies are built.
