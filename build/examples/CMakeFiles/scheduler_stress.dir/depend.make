# Empty dependencies file for scheduler_stress.
# This may be replaced when dependencies are built.
