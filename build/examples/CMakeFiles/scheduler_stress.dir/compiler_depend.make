# Empty compiler generated dependencies file for scheduler_stress.
# This may be replaced when dependencies are built.
