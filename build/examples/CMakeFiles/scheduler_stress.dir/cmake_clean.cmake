file(REMOVE_RECURSE
  "CMakeFiles/scheduler_stress.dir/scheduler_stress.cpp.o"
  "CMakeFiles/scheduler_stress.dir/scheduler_stress.cpp.o.d"
  "scheduler_stress"
  "scheduler_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
