# Empty dependencies file for whatif_scenarios.
# This may be replaced when dependencies are built.
