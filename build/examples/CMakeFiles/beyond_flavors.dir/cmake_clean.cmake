file(REMOVE_RECURSE
  "CMakeFiles/beyond_flavors.dir/beyond_flavors.cpp.o"
  "CMakeFiles/beyond_flavors.dir/beyond_flavors.cpp.o.d"
  "beyond_flavors"
  "beyond_flavors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beyond_flavors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
