# Empty dependencies file for beyond_flavors.
# This may be replaced when dependencies are built.
