# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/strings_csv_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/glm_test[1]_include.cmake")
include("/root/repo/build/tests/survival_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/encoding_test[1]_include.cmake")
include("/root/repo/build/tests/arrival_model_test[1]_include.cmake")
include("/root/repo/build/tests/flavor_model_test[1]_include.cmake")
include("/root/repo/build/tests/lifetime_model_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/viz_test[1]_include.cmake")
include("/root/repo/build/tests/workload_model_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/resource_model_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/single_lstm_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
