# Empty compiler generated dependencies file for strings_csv_test.
# This may be replaced when dependencies are built.
