file(REMOVE_RECURSE
  "CMakeFiles/strings_csv_test.dir/strings_csv_test.cc.o"
  "CMakeFiles/strings_csv_test.dir/strings_csv_test.cc.o.d"
  "strings_csv_test"
  "strings_csv_test.pdb"
  "strings_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strings_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
