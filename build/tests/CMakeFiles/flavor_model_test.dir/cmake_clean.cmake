file(REMOVE_RECURSE
  "CMakeFiles/flavor_model_test.dir/flavor_model_test.cc.o"
  "CMakeFiles/flavor_model_test.dir/flavor_model_test.cc.o.d"
  "flavor_model_test"
  "flavor_model_test.pdb"
  "flavor_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flavor_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
