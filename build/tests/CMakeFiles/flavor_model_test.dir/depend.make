# Empty dependencies file for flavor_model_test.
# This may be replaced when dependencies are built.
