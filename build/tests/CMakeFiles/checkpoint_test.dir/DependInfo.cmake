
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/checkpoint_test.cc" "tests/CMakeFiles/checkpoint_test.dir/checkpoint_test.cc.o" "gcc" "tests/CMakeFiles/checkpoint_test.dir/checkpoint_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/cloudgen_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cloudgen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/cloudgen_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/glm/CMakeFiles/cloudgen_glm.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cloudgen_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cloudgen_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/survival/CMakeFiles/cloudgen_survival.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/cloudgen_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cloudgen_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cloudgen_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cloudgen_util.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/cloudgen_viz.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
