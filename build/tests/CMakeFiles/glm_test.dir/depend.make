# Empty dependencies file for glm_test.
# This may be replaced when dependencies are built.
