file(REMOVE_RECURSE
  "CMakeFiles/glm_test.dir/glm_test.cc.o"
  "CMakeFiles/glm_test.dir/glm_test.cc.o.d"
  "glm_test"
  "glm_test.pdb"
  "glm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
