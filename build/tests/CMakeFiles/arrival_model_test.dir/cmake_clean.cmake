file(REMOVE_RECURSE
  "CMakeFiles/arrival_model_test.dir/arrival_model_test.cc.o"
  "CMakeFiles/arrival_model_test.dir/arrival_model_test.cc.o.d"
  "arrival_model_test"
  "arrival_model_test.pdb"
  "arrival_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrival_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
