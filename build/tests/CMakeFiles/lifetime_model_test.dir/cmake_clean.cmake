file(REMOVE_RECURSE
  "CMakeFiles/lifetime_model_test.dir/lifetime_model_test.cc.o"
  "CMakeFiles/lifetime_model_test.dir/lifetime_model_test.cc.o.d"
  "lifetime_model_test"
  "lifetime_model_test.pdb"
  "lifetime_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifetime_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
