file(REMOVE_RECURSE
  "CMakeFiles/single_lstm_test.dir/single_lstm_test.cc.o"
  "CMakeFiles/single_lstm_test.dir/single_lstm_test.cc.o.d"
  "single_lstm_test"
  "single_lstm_test.pdb"
  "single_lstm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_lstm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
