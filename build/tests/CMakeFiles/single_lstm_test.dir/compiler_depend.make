# Empty compiler generated dependencies file for single_lstm_test.
# This may be replaced when dependencies are built.
