# Empty compiler generated dependencies file for fig5_batch_arrivals_huawei.
# This may be replaced when dependencies are built.
