file(REMOVE_RECURSE
  "../bench/fig5_batch_arrivals_huawei"
  "../bench/fig5_batch_arrivals_huawei.pdb"
  "CMakeFiles/fig5_batch_arrivals_huawei.dir/fig5_batch_arrivals_huawei.cc.o"
  "CMakeFiles/fig5_batch_arrivals_huawei.dir/fig5_batch_arrivals_huawei.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_batch_arrivals_huawei.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
