file(REMOVE_RECURSE
  "../bench/fig10_table5_packing"
  "../bench/fig10_table5_packing.pdb"
  "CMakeFiles/fig10_table5_packing.dir/fig10_table5_packing.cc.o"
  "CMakeFiles/fig10_table5_packing.dir/fig10_table5_packing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_table5_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
