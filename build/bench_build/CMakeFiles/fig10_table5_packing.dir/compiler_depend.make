# Empty compiler generated dependencies file for fig10_table5_packing.
# This may be replaced when dependencies are built.
