# Empty compiler generated dependencies file for ablation_single_lstm.
# This may be replaced when dependencies are built.
