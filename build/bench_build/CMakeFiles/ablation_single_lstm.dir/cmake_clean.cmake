file(REMOVE_RECURSE
  "../bench/ablation_single_lstm"
  "../bench/ablation_single_lstm.pdb"
  "CMakeFiles/ablation_single_lstm.dir/ablation_single_lstm.cc.o"
  "CMakeFiles/ablation_single_lstm.dir/ablation_single_lstm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_single_lstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
