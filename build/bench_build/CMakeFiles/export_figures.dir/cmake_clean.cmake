file(REMOVE_RECURSE
  "../bench/export_figures"
  "../bench/export_figures.pdb"
  "CMakeFiles/export_figures.dir/export_figures.cc.o"
  "CMakeFiles/export_figures.dir/export_figures.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
