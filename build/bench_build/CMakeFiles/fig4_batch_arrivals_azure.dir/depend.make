# Empty dependencies file for fig4_batch_arrivals_azure.
# This may be replaced when dependencies are built.
