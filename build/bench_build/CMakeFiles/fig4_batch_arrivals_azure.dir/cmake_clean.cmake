file(REMOVE_RECURSE
  "../bench/fig4_batch_arrivals_azure"
  "../bench/fig4_batch_arrivals_azure.pdb"
  "CMakeFiles/fig4_batch_arrivals_azure.dir/fig4_batch_arrivals_azure.cc.o"
  "CMakeFiles/fig4_batch_arrivals_azure.dir/fig4_batch_arrivals_azure.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_batch_arrivals_azure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
