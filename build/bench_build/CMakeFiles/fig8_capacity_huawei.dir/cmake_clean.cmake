file(REMOVE_RECURSE
  "../bench/fig8_capacity_huawei"
  "../bench/fig8_capacity_huawei.pdb"
  "CMakeFiles/fig8_capacity_huawei.dir/fig8_capacity_huawei.cc.o"
  "CMakeFiles/fig8_capacity_huawei.dir/fig8_capacity_huawei.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_capacity_huawei.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
