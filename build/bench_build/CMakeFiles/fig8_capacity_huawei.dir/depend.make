# Empty dependencies file for fig8_capacity_huawei.
# This may be replaced when dependencies are built.
