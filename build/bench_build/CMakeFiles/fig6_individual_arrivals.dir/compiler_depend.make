# Empty compiler generated dependencies file for fig6_individual_arrivals.
# This may be replaced when dependencies are built.
