file(REMOVE_RECURSE
  "../bench/fig6_individual_arrivals"
  "../bench/fig6_individual_arrivals.pdb"
  "CMakeFiles/fig6_individual_arrivals.dir/fig6_individual_arrivals.cc.o"
  "CMakeFiles/fig6_individual_arrivals.dir/fig6_individual_arrivals.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_individual_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
