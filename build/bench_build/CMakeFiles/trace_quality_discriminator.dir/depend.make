# Empty dependencies file for trace_quality_discriminator.
# This may be replaced when dependencies are built.
