file(REMOVE_RECURSE
  "../bench/trace_quality_discriminator"
  "../bench/trace_quality_discriminator.pdb"
  "CMakeFiles/trace_quality_discriminator.dir/trace_quality_discriminator.cc.o"
  "CMakeFiles/trace_quality_discriminator.dir/trace_quality_discriminator.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_quality_discriminator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
