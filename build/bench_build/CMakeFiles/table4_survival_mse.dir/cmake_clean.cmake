file(REMOVE_RECURSE
  "../bench/table4_survival_mse"
  "../bench/table4_survival_mse.pdb"
  "CMakeFiles/table4_survival_mse.dir/table4_survival_mse.cc.o"
  "CMakeFiles/table4_survival_mse.dir/table4_survival_mse.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_survival_mse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
