# Empty compiler generated dependencies file for table4_survival_mse.
# This may be replaced when dependencies are built.
