# Empty dependencies file for whatif_10x_scaling.
# This may be replaced when dependencies are built.
