file(REMOVE_RECURSE
  "../bench/whatif_10x_scaling"
  "../bench/whatif_10x_scaling.pdb"
  "CMakeFiles/whatif_10x_scaling.dir/whatif_10x_scaling.cc.o"
  "CMakeFiles/whatif_10x_scaling.dir/whatif_10x_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_10x_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
