file(REMOVE_RECURSE
  "../bench/fig9_reuse_distance"
  "../bench/fig9_reuse_distance.pdb"
  "CMakeFiles/fig9_reuse_distance.dir/fig9_reuse_distance.cc.o"
  "CMakeFiles/fig9_reuse_distance.dir/fig9_reuse_distance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_reuse_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
