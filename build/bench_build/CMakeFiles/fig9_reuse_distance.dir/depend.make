# Empty dependencies file for fig9_reuse_distance.
# This may be replaced when dependencies are built.
