# Empty dependencies file for table2_flavors.
# This may be replaced when dependencies are built.
