file(REMOVE_RECURSE
  "../bench/table2_flavors"
  "../bench/table2_flavors.pdb"
  "CMakeFiles/table2_flavors.dir/table2_flavors.cc.o"
  "CMakeFiles/table2_flavors.dir/table2_flavors.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_flavors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
