# Empty compiler generated dependencies file for table3_lifetimes.
# This may be replaced when dependencies are built.
