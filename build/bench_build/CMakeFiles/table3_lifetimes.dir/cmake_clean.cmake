file(REMOVE_RECURSE
  "../bench/table3_lifetimes"
  "../bench/table3_lifetimes.pdb"
  "CMakeFiles/table3_lifetimes.dir/table3_lifetimes.cc.o"
  "CMakeFiles/table3_lifetimes.dir/table3_lifetimes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_lifetimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
