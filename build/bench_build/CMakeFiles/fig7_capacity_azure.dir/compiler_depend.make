# Empty compiler generated dependencies file for fig7_capacity_azure.
# This may be replaced when dependencies are built.
