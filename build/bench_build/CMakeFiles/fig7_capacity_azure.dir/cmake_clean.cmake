file(REMOVE_RECURSE
  "../bench/fig7_capacity_azure"
  "../bench/fig7_capacity_azure.pdb"
  "CMakeFiles/fig7_capacity_azure.dir/fig7_capacity_azure.cc.o"
  "CMakeFiles/fig7_capacity_azure.dir/fig7_capacity_azure.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_capacity_azure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
