# Empty dependencies file for ablation_lifetime_head.
# This may be replaced when dependencies are built.
