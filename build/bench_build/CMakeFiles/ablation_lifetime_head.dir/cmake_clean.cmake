file(REMOVE_RECURSE
  "../bench/ablation_lifetime_head"
  "../bench/ablation_lifetime_head.pdb"
  "CMakeFiles/ablation_lifetime_head.dir/ablation_lifetime_head.cc.o"
  "CMakeFiles/ablation_lifetime_head.dir/ablation_lifetime_head.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lifetime_head.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
