file(REMOVE_RECURSE
  "CMakeFiles/cloudgen_nn.dir/activations.cc.o"
  "CMakeFiles/cloudgen_nn.dir/activations.cc.o.d"
  "CMakeFiles/cloudgen_nn.dir/adam.cc.o"
  "CMakeFiles/cloudgen_nn.dir/adam.cc.o.d"
  "CMakeFiles/cloudgen_nn.dir/linear.cc.o"
  "CMakeFiles/cloudgen_nn.dir/linear.cc.o.d"
  "CMakeFiles/cloudgen_nn.dir/losses.cc.o"
  "CMakeFiles/cloudgen_nn.dir/losses.cc.o.d"
  "CMakeFiles/cloudgen_nn.dir/lstm.cc.o"
  "CMakeFiles/cloudgen_nn.dir/lstm.cc.o.d"
  "CMakeFiles/cloudgen_nn.dir/sequence_network.cc.o"
  "CMakeFiles/cloudgen_nn.dir/sequence_network.cc.o.d"
  "libcloudgen_nn.a"
  "libcloudgen_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudgen_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
