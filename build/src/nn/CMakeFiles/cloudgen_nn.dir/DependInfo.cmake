
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cc" "src/nn/CMakeFiles/cloudgen_nn.dir/activations.cc.o" "gcc" "src/nn/CMakeFiles/cloudgen_nn.dir/activations.cc.o.d"
  "/root/repo/src/nn/adam.cc" "src/nn/CMakeFiles/cloudgen_nn.dir/adam.cc.o" "gcc" "src/nn/CMakeFiles/cloudgen_nn.dir/adam.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/cloudgen_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/cloudgen_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/losses.cc" "src/nn/CMakeFiles/cloudgen_nn.dir/losses.cc.o" "gcc" "src/nn/CMakeFiles/cloudgen_nn.dir/losses.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/nn/CMakeFiles/cloudgen_nn.dir/lstm.cc.o" "gcc" "src/nn/CMakeFiles/cloudgen_nn.dir/lstm.cc.o.d"
  "/root/repo/src/nn/sequence_network.cc" "src/nn/CMakeFiles/cloudgen_nn.dir/sequence_network.cc.o" "gcc" "src/nn/CMakeFiles/cloudgen_nn.dir/sequence_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/cloudgen_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cloudgen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
