# Empty dependencies file for cloudgen_nn.
# This may be replaced when dependencies are built.
