file(REMOVE_RECURSE
  "libcloudgen_nn.a"
)
