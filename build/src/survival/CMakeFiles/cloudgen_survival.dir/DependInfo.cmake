
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/survival/binning.cc" "src/survival/CMakeFiles/cloudgen_survival.dir/binning.cc.o" "gcc" "src/survival/CMakeFiles/cloudgen_survival.dir/binning.cc.o.d"
  "/root/repo/src/survival/hazard.cc" "src/survival/CMakeFiles/cloudgen_survival.dir/hazard.cc.o" "gcc" "src/survival/CMakeFiles/cloudgen_survival.dir/hazard.cc.o.d"
  "/root/repo/src/survival/interpolation.cc" "src/survival/CMakeFiles/cloudgen_survival.dir/interpolation.cc.o" "gcc" "src/survival/CMakeFiles/cloudgen_survival.dir/interpolation.cc.o.d"
  "/root/repo/src/survival/kaplan_meier.cc" "src/survival/CMakeFiles/cloudgen_survival.dir/kaplan_meier.cc.o" "gcc" "src/survival/CMakeFiles/cloudgen_survival.dir/kaplan_meier.cc.o.d"
  "/root/repo/src/survival/metrics.cc" "src/survival/CMakeFiles/cloudgen_survival.dir/metrics.cc.o" "gcc" "src/survival/CMakeFiles/cloudgen_survival.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cloudgen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
