file(REMOVE_RECURSE
  "libcloudgen_survival.a"
)
