file(REMOVE_RECURSE
  "CMakeFiles/cloudgen_survival.dir/binning.cc.o"
  "CMakeFiles/cloudgen_survival.dir/binning.cc.o.d"
  "CMakeFiles/cloudgen_survival.dir/hazard.cc.o"
  "CMakeFiles/cloudgen_survival.dir/hazard.cc.o.d"
  "CMakeFiles/cloudgen_survival.dir/interpolation.cc.o"
  "CMakeFiles/cloudgen_survival.dir/interpolation.cc.o.d"
  "CMakeFiles/cloudgen_survival.dir/kaplan_meier.cc.o"
  "CMakeFiles/cloudgen_survival.dir/kaplan_meier.cc.o.d"
  "CMakeFiles/cloudgen_survival.dir/metrics.cc.o"
  "CMakeFiles/cloudgen_survival.dir/metrics.cc.o.d"
  "libcloudgen_survival.a"
  "libcloudgen_survival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudgen_survival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
