# Empty compiler generated dependencies file for cloudgen_survival.
# This may be replaced when dependencies are built.
