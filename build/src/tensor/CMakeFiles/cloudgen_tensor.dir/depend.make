# Empty dependencies file for cloudgen_tensor.
# This may be replaced when dependencies are built.
