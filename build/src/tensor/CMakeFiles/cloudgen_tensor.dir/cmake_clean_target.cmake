file(REMOVE_RECURSE
  "libcloudgen_tensor.a"
)
