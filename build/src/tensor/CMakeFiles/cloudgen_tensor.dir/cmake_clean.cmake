file(REMOVE_RECURSE
  "CMakeFiles/cloudgen_tensor.dir/matrix.cc.o"
  "CMakeFiles/cloudgen_tensor.dir/matrix.cc.o.d"
  "libcloudgen_tensor.a"
  "libcloudgen_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudgen_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
