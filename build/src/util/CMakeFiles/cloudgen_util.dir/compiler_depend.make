# Empty compiler generated dependencies file for cloudgen_util.
# This may be replaced when dependencies are built.
