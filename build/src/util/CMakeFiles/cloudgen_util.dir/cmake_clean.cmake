file(REMOVE_RECURSE
  "CMakeFiles/cloudgen_util.dir/atomic_file.cc.o"
  "CMakeFiles/cloudgen_util.dir/atomic_file.cc.o.d"
  "CMakeFiles/cloudgen_util.dir/crc32.cc.o"
  "CMakeFiles/cloudgen_util.dir/crc32.cc.o.d"
  "CMakeFiles/cloudgen_util.dir/csv.cc.o"
  "CMakeFiles/cloudgen_util.dir/csv.cc.o.d"
  "CMakeFiles/cloudgen_util.dir/env.cc.o"
  "CMakeFiles/cloudgen_util.dir/env.cc.o.d"
  "CMakeFiles/cloudgen_util.dir/fault.cc.o"
  "CMakeFiles/cloudgen_util.dir/fault.cc.o.d"
  "CMakeFiles/cloudgen_util.dir/log.cc.o"
  "CMakeFiles/cloudgen_util.dir/log.cc.o.d"
  "CMakeFiles/cloudgen_util.dir/rng.cc.o"
  "CMakeFiles/cloudgen_util.dir/rng.cc.o.d"
  "CMakeFiles/cloudgen_util.dir/sealed_file.cc.o"
  "CMakeFiles/cloudgen_util.dir/sealed_file.cc.o.d"
  "CMakeFiles/cloudgen_util.dir/stats.cc.o"
  "CMakeFiles/cloudgen_util.dir/stats.cc.o.d"
  "CMakeFiles/cloudgen_util.dir/status.cc.o"
  "CMakeFiles/cloudgen_util.dir/status.cc.o.d"
  "CMakeFiles/cloudgen_util.dir/strings.cc.o"
  "CMakeFiles/cloudgen_util.dir/strings.cc.o.d"
  "libcloudgen_util.a"
  "libcloudgen_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudgen_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
