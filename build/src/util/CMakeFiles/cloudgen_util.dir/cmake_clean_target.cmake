file(REMOVE_RECURSE
  "libcloudgen_util.a"
)
