# Empty dependencies file for cloudgen_glm.
# This may be replaced when dependencies are built.
