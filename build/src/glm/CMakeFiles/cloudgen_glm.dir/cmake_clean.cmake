file(REMOVE_RECURSE
  "CMakeFiles/cloudgen_glm.dir/elastic_net.cc.o"
  "CMakeFiles/cloudgen_glm.dir/elastic_net.cc.o.d"
  "CMakeFiles/cloudgen_glm.dir/features.cc.o"
  "CMakeFiles/cloudgen_glm.dir/features.cc.o.d"
  "CMakeFiles/cloudgen_glm.dir/poisson_regression.cc.o"
  "CMakeFiles/cloudgen_glm.dir/poisson_regression.cc.o.d"
  "libcloudgen_glm.a"
  "libcloudgen_glm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudgen_glm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
