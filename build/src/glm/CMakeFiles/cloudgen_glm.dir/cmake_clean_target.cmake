file(REMOVE_RECURSE
  "libcloudgen_glm.a"
)
