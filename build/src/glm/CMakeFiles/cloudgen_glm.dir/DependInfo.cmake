
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/glm/elastic_net.cc" "src/glm/CMakeFiles/cloudgen_glm.dir/elastic_net.cc.o" "gcc" "src/glm/CMakeFiles/cloudgen_glm.dir/elastic_net.cc.o.d"
  "/root/repo/src/glm/features.cc" "src/glm/CMakeFiles/cloudgen_glm.dir/features.cc.o" "gcc" "src/glm/CMakeFiles/cloudgen_glm.dir/features.cc.o.d"
  "/root/repo/src/glm/poisson_regression.cc" "src/glm/CMakeFiles/cloudgen_glm.dir/poisson_regression.cc.o" "gcc" "src/glm/CMakeFiles/cloudgen_glm.dir/poisson_regression.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cloudgen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
