file(REMOVE_RECURSE
  "CMakeFiles/cloudgen_sched.dir/cluster.cc.o"
  "CMakeFiles/cloudgen_sched.dir/cluster.cc.o.d"
  "CMakeFiles/cloudgen_sched.dir/ffar.cc.o"
  "CMakeFiles/cloudgen_sched.dir/ffar.cc.o.d"
  "CMakeFiles/cloudgen_sched.dir/packing.cc.o"
  "CMakeFiles/cloudgen_sched.dir/packing.cc.o.d"
  "CMakeFiles/cloudgen_sched.dir/reuse_distance.cc.o"
  "CMakeFiles/cloudgen_sched.dir/reuse_distance.cc.o.d"
  "libcloudgen_sched.a"
  "libcloudgen_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudgen_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
