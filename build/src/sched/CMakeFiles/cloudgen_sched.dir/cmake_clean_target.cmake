file(REMOVE_RECURSE
  "libcloudgen_sched.a"
)
