
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/cluster.cc" "src/sched/CMakeFiles/cloudgen_sched.dir/cluster.cc.o" "gcc" "src/sched/CMakeFiles/cloudgen_sched.dir/cluster.cc.o.d"
  "/root/repo/src/sched/ffar.cc" "src/sched/CMakeFiles/cloudgen_sched.dir/ffar.cc.o" "gcc" "src/sched/CMakeFiles/cloudgen_sched.dir/ffar.cc.o.d"
  "/root/repo/src/sched/packing.cc" "src/sched/CMakeFiles/cloudgen_sched.dir/packing.cc.o" "gcc" "src/sched/CMakeFiles/cloudgen_sched.dir/packing.cc.o.d"
  "/root/repo/src/sched/reuse_distance.cc" "src/sched/CMakeFiles/cloudgen_sched.dir/reuse_distance.cc.o" "gcc" "src/sched/CMakeFiles/cloudgen_sched.dir/reuse_distance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/cloudgen_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cloudgen_util.dir/DependInfo.cmake"
  "/root/repo/build/src/glm/CMakeFiles/cloudgen_glm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
