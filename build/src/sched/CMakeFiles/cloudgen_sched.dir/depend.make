# Empty dependencies file for cloudgen_sched.
# This may be replaced when dependencies are built.
