file(REMOVE_RECURSE
  "CMakeFiles/cloudgen_trace.dir/events.cc.o"
  "CMakeFiles/cloudgen_trace.dir/events.cc.o.d"
  "CMakeFiles/cloudgen_trace.dir/stats.cc.o"
  "CMakeFiles/cloudgen_trace.dir/stats.cc.o.d"
  "CMakeFiles/cloudgen_trace.dir/trace.cc.o"
  "CMakeFiles/cloudgen_trace.dir/trace.cc.o.d"
  "CMakeFiles/cloudgen_trace.dir/trace_io.cc.o"
  "CMakeFiles/cloudgen_trace.dir/trace_io.cc.o.d"
  "libcloudgen_trace.a"
  "libcloudgen_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudgen_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
