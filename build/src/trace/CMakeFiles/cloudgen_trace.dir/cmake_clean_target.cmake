file(REMOVE_RECURSE
  "libcloudgen_trace.a"
)
