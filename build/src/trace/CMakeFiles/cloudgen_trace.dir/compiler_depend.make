# Empty compiler generated dependencies file for cloudgen_trace.
# This may be replaced when dependencies are built.
