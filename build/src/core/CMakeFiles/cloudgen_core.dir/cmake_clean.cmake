file(REMOVE_RECURSE
  "CMakeFiles/cloudgen_core.dir/arrival_model.cc.o"
  "CMakeFiles/cloudgen_core.dir/arrival_model.cc.o.d"
  "CMakeFiles/cloudgen_core.dir/checkpoint.cc.o"
  "CMakeFiles/cloudgen_core.dir/checkpoint.cc.o.d"
  "CMakeFiles/cloudgen_core.dir/encoding.cc.o"
  "CMakeFiles/cloudgen_core.dir/encoding.cc.o.d"
  "CMakeFiles/cloudgen_core.dir/flavor_model.cc.o"
  "CMakeFiles/cloudgen_core.dir/flavor_model.cc.o.d"
  "CMakeFiles/cloudgen_core.dir/lifetime_model.cc.o"
  "CMakeFiles/cloudgen_core.dir/lifetime_model.cc.o.d"
  "CMakeFiles/cloudgen_core.dir/resource_model.cc.o"
  "CMakeFiles/cloudgen_core.dir/resource_model.cc.o.d"
  "CMakeFiles/cloudgen_core.dir/single_lstm_model.cc.o"
  "CMakeFiles/cloudgen_core.dir/single_lstm_model.cc.o.d"
  "CMakeFiles/cloudgen_core.dir/trainer.cc.o"
  "CMakeFiles/cloudgen_core.dir/trainer.cc.o.d"
  "CMakeFiles/cloudgen_core.dir/workload_model.cc.o"
  "CMakeFiles/cloudgen_core.dir/workload_model.cc.o.d"
  "libcloudgen_core.a"
  "libcloudgen_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudgen_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
