# Empty dependencies file for cloudgen_core.
# This may be replaced when dependencies are built.
