
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arrival_model.cc" "src/core/CMakeFiles/cloudgen_core.dir/arrival_model.cc.o" "gcc" "src/core/CMakeFiles/cloudgen_core.dir/arrival_model.cc.o.d"
  "/root/repo/src/core/checkpoint.cc" "src/core/CMakeFiles/cloudgen_core.dir/checkpoint.cc.o" "gcc" "src/core/CMakeFiles/cloudgen_core.dir/checkpoint.cc.o.d"
  "/root/repo/src/core/encoding.cc" "src/core/CMakeFiles/cloudgen_core.dir/encoding.cc.o" "gcc" "src/core/CMakeFiles/cloudgen_core.dir/encoding.cc.o.d"
  "/root/repo/src/core/flavor_model.cc" "src/core/CMakeFiles/cloudgen_core.dir/flavor_model.cc.o" "gcc" "src/core/CMakeFiles/cloudgen_core.dir/flavor_model.cc.o.d"
  "/root/repo/src/core/lifetime_model.cc" "src/core/CMakeFiles/cloudgen_core.dir/lifetime_model.cc.o" "gcc" "src/core/CMakeFiles/cloudgen_core.dir/lifetime_model.cc.o.d"
  "/root/repo/src/core/resource_model.cc" "src/core/CMakeFiles/cloudgen_core.dir/resource_model.cc.o" "gcc" "src/core/CMakeFiles/cloudgen_core.dir/resource_model.cc.o.d"
  "/root/repo/src/core/single_lstm_model.cc" "src/core/CMakeFiles/cloudgen_core.dir/single_lstm_model.cc.o" "gcc" "src/core/CMakeFiles/cloudgen_core.dir/single_lstm_model.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/cloudgen_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/cloudgen_core.dir/trainer.cc.o.d"
  "/root/repo/src/core/workload_model.cc" "src/core/CMakeFiles/cloudgen_core.dir/workload_model.cc.o" "gcc" "src/core/CMakeFiles/cloudgen_core.dir/workload_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/glm/CMakeFiles/cloudgen_glm.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cloudgen_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/survival/CMakeFiles/cloudgen_survival.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cloudgen_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cloudgen_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cloudgen_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
