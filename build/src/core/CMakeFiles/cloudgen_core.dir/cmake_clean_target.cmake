file(REMOVE_RECURSE
  "libcloudgen_core.a"
)
