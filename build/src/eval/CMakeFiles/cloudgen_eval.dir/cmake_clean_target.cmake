file(REMOVE_RECURSE
  "libcloudgen_eval.a"
)
