file(REMOVE_RECURSE
  "CMakeFiles/cloudgen_eval.dir/capacity.cc.o"
  "CMakeFiles/cloudgen_eval.dir/capacity.cc.o.d"
  "CMakeFiles/cloudgen_eval.dir/coverage.cc.o"
  "CMakeFiles/cloudgen_eval.dir/coverage.cc.o.d"
  "CMakeFiles/cloudgen_eval.dir/discriminator.cc.o"
  "CMakeFiles/cloudgen_eval.dir/discriminator.cc.o.d"
  "CMakeFiles/cloudgen_eval.dir/forecasting.cc.o"
  "CMakeFiles/cloudgen_eval.dir/forecasting.cc.o.d"
  "CMakeFiles/cloudgen_eval.dir/workbench.cc.o"
  "CMakeFiles/cloudgen_eval.dir/workbench.cc.o.d"
  "libcloudgen_eval.a"
  "libcloudgen_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudgen_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
