# Empty compiler generated dependencies file for cloudgen_eval.
# This may be replaced when dependencies are built.
