file(REMOVE_RECURSE
  "libcloudgen_synth.a"
)
