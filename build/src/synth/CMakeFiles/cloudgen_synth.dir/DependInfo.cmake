
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/synthetic_cloud.cc" "src/synth/CMakeFiles/cloudgen_synth.dir/synthetic_cloud.cc.o" "gcc" "src/synth/CMakeFiles/cloudgen_synth.dir/synthetic_cloud.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/cloudgen_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cloudgen_util.dir/DependInfo.cmake"
  "/root/repo/build/src/glm/CMakeFiles/cloudgen_glm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
