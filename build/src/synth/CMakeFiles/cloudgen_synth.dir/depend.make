# Empty dependencies file for cloudgen_synth.
# This may be replaced when dependencies are built.
