file(REMOVE_RECURSE
  "CMakeFiles/cloudgen_synth.dir/synthetic_cloud.cc.o"
  "CMakeFiles/cloudgen_synth.dir/synthetic_cloud.cc.o.d"
  "libcloudgen_synth.a"
  "libcloudgen_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudgen_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
