file(REMOVE_RECURSE
  "CMakeFiles/cloudgen_viz.dir/trace_viz.cc.o"
  "CMakeFiles/cloudgen_viz.dir/trace_viz.cc.o.d"
  "libcloudgen_viz.a"
  "libcloudgen_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudgen_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
