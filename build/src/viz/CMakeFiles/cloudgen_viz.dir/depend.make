# Empty dependencies file for cloudgen_viz.
# This may be replaced when dependencies are built.
