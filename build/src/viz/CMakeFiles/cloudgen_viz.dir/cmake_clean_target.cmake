file(REMOVE_RECURSE
  "libcloudgen_viz.a"
)
