# Empty dependencies file for cloudgen_baselines.
# This may be replaced when dependencies are built.
