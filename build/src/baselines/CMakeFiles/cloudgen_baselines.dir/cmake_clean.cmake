file(REMOVE_RECURSE
  "CMakeFiles/cloudgen_baselines.dir/flavor_baselines.cc.o"
  "CMakeFiles/cloudgen_baselines.dir/flavor_baselines.cc.o.d"
  "CMakeFiles/cloudgen_baselines.dir/generators.cc.o"
  "CMakeFiles/cloudgen_baselines.dir/generators.cc.o.d"
  "CMakeFiles/cloudgen_baselines.dir/lifetime_baselines.cc.o"
  "CMakeFiles/cloudgen_baselines.dir/lifetime_baselines.cc.o.d"
  "libcloudgen_baselines.a"
  "libcloudgen_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudgen_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
