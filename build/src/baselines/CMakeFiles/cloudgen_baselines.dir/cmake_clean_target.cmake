file(REMOVE_RECURSE
  "libcloudgen_baselines.a"
)
