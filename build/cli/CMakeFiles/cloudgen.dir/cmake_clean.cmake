file(REMOVE_RECURSE
  "CMakeFiles/cloudgen.dir/cloudgen_main.cc.o"
  "CMakeFiles/cloudgen.dir/cloudgen_main.cc.o.d"
  "cloudgen"
  "cloudgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
