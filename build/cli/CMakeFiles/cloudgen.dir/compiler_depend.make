# Empty compiler generated dependencies file for cloudgen.
# This may be replaced when dependencies are built.
