// Table 2: next-flavor prediction — NLL and 1-best error for the Uniform,
// Multinomial and RepeatFlav baselines vs. the flavor LSTM, on both clouds.
//
// Paper reference:            Azure             Huawei Cloud
//   Uniform       NLL 2.83  err 93.9%     NLL 5.55  err 99.6%
//   Multinomial   NLL 1.58  err 54.7%     NLL 3.34  err 89.7%
//   RepeatFlav    N/A       err 29.7%     N/A       err 71.3%
//   LSTM          NLL 0.65  err 25.7%     NLL 2.10  err 59.2%
// Shape to check: Uniform > Multinomial > RepeatFlav > LSTM on error, and
// the LSTM has the lowest NLL by a wide margin.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/flavor_baselines.h"
#include "src/core/flavor_model.h"
#include "src/eval/workbench.h"

namespace cloudgen {
namespace {

void PrintRow(const char* system, double nll, double err) {
  if (std::isnan(nll)) {
    std::printf("%-14s | %8s | %9.1f%%\n", system, "N/A", err * 100.0);
  } else {
    std::printf("%-14s | %8.3f | %9.1f%%\n", system, nll, err * 100.0);
  }
}

void RunCloud(CloudKind kind) {
  TimedSection cloud_section(kind == CloudKind::kAzureLike ? "table2.azure"
                                                           : "table2.huawei");
  CloudWorkbench workbench(kind, DefaultWorkbenchOptions());
  const Trace& train = workbench.Splits().train;
  const Trace& test = workbench.Splits().test;
  const WorkloadModel& model = workbench.Model();
  const int history_days = model.HistoryDays();
  const FlavorStream stream = BuildFlavorStream(test, history_days);
  const size_t num_flavors = test.NumFlavors();
  const auto eob = static_cast<int32_t>(num_flavors);

  std::printf("\n--- %s ---\n", CloudName(kind));
  std::printf("%-14s | %8s | %10s\n", "system", "NLL", "1-Best-Err");

  const UniformFlavorBaseline uniform(num_flavors);
  const auto u = EvaluateFlavorBaseline(uniform, stream, num_flavors);
  PrintRow("Uniform", u.nll, u.one_best_err);

  const MultinomialFlavorBaseline multinomial(train);
  const auto m = EvaluateFlavorBaseline(multinomial, stream, num_flavors);
  PrintRow("Multinomial", m.nll, m.one_best_err);

  const RepeatFlavorBaseline repeat(train, eob);
  const auto r = EvaluateFlavorBaseline(repeat, stream, num_flavors);
  PrintRow("RepeatFlav", r.nll, r.one_best_err);

  const FlavorLstmModel::EvalResult lstm = model.FlavorModel().Evaluate(test);
  PrintRow("LSTM", lstm.nll_flavor_only, lstm.one_best_err_flavor_only);
  std::printf("(LSTM full-stream NLL incl. EOB tokens: %.3f over %zu steps)\n", lstm.nll,
              lstm.steps);
}

void Run() {
  PrintBanner("Table 2: flavor-sequence modeling");
  RunCloud(CloudKind::kAzureLike);
  RunCloud(CloudKind::kHuaweiLike);
}

}  // namespace
}  // namespace cloudgen

int main() {
  cloudgen::Run();
  return 0;
}
