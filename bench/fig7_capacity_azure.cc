// Figure 7: capacity planning on the AzureLike test window — total CPUs over
// time with 90% prediction bands from 500 (scaled) sampled traces.
//
// Paper reference (Azure): Naive 0% coverage, SimpleBatch 88%, LSTM 83%.
// Shape to check: Naive's band is far too narrow (near-zero coverage);
// SimpleBatch and LSTM both reach high coverage.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/capacity_common.h"
#include "src/eval/forecasting.h"
#include "src/trace/stats.h"

namespace cloudgen {
namespace {

void Run() {
  PrintBanner("Figure 7: capacity planning, AzureLike");
  CloudWorkbench workbench(CloudKind::kAzureLike, DefaultWorkbenchOptions());
  const std::vector<Job> carry =
      CarryOverJobs(workbench.GroundTruth(), workbench.TestStart());
  // Use the ground-truth (uncensored) ends for the actual series.
  Trace truth_window(workbench.GroundTruth().Flavors(), workbench.TestStart(),
                     workbench.TestEnd());
  for (const Job& job : workbench.GroundTruth().Jobs()) {
    if (job.start_period >= workbench.TestStart() && job.start_period < workbench.TestEnd()) {
      truth_window.Add(job);
    }
  }
  const std::vector<double> actual = TotalCpusWithCarryOver(
      truth_window, carry, workbench.TestStart(), workbench.TestEnd());

  std::printf("carry-over VMs at test start: %zu\n\n", carry.size());
  CapacityRun last;
  for (const char* name : {"Naive", "SimpleBatch", "LSTM"}) {
    const CapacityRun run = EvaluateGeneratorCapacity(workbench, name, actual, carry);
    std::printf("%-12s: %s of true total-CPU periods inside the 90%% band\n", name,
                Pct(run.coverage).c_str());
    last = run;
  }
  std::printf("(paper: Naive 0%%, SimpleBatch 88%%, LSTM 83%%)\n");

  // Extension: the §7 "workload forecasting" alternative — a seasonal-naive
  // forecaster over the aggregate total-CPU series. Competitive on coverage,
  // but it cannot produce packable traces or per-flavor breakdowns.
  {
    const std::vector<double> history = TotalCpusWithCarryOver(
        ApplyObservationWindow(workbench.GroundTruth(), 0, workbench.TestStart(),
                               workbench.GroundTruth().WindowEnd()),
        {}, 0, workbench.TestStart());
    const SeasonalNaiveForecaster forecaster(history, SeasonalNaiveConfig{});
    const SeriesBands bands = forecaster.Forecast(workbench.TestEnd() - workbench.TestStart());
    std::printf("%-12s: %s (aggregate-only forecaster; extension row)\n", "SeasonalNaive",
                Pct(CoverageFraction(bands, actual)).c_str());
  }

  std::printf("\nLSTM band preview:\n");
  PrintCapacityPreview(last, actual, 24);
}

}  // namespace
}  // namespace cloudgen

int main() {
  cloudgen::Run();
  return 0;
}
