// Figure 5: batch arrivals over the HuaweiLike test window.
//
// Paper reference (Huawei Cloud): 94.5% coverage with sampled DOH and 95.0%
// with last-day DOH — with low counts, the interval quantiles are coarse and
// DOH sampling is not essential. The shape to check: both variants reach high
// coverage, and the gap between them is small (unlike Fig. 4).
#include <cstdio>

#include "bench/arrival_common.h"
#include "bench/bench_util.h"

namespace cloudgen {
namespace {

void Run() {
  PrintBanner("Figure 5: batch arrivals, HuaweiLike test window");
  CloudWorkbench workbench = MakeArrivalWorkbench(CloudKind::kHuaweiLike);

  const ArrivalCoverageResult sampled = EvaluateArrivalCoverage(
      workbench, ArrivalGranularity::kBatches, true, DohMode::kGeometricSample, 2001);
  const ArrivalCoverageResult last_day = EvaluateArrivalCoverage(
      workbench, ArrivalGranularity::kBatches, true, DohMode::kLastDay, 2002);

  std::printf("\n90%% prediction-interval coverage of true batch counts:\n");
  std::printf("  sampled DOH (geometric, p=1/7): %s   (paper: 94.5%%)\n",
              Pct(sampled.coverage).c_str());
  std::printf("  last-day DOH:                   %s   (paper: 95.0%%)\n",
              Pct(last_day.coverage).c_str());
  std::printf("\nBand preview (sampled DOH):\n");
  PrintBandPreview(sampled, 24);
}

}  // namespace
}  // namespace cloudgen

int main() {
  cloudgen::Run();
  return 0;
}
