// Figure 10 + Table 5: packing experiments — first-failure allocation ratios
// (FFAR) of generated traces vs. actual test data.
//
// Protocol (§6.2): sample scheduling tuples (start point, #servers, server
// capacity, packing algorithm ∈ {Random, BusiestFit, CosineSim, DeltaPerp});
// replay each generated trace (and the actual data) through every tuple until
// the first placement failure; report the limiting-resource FFAR.
//
// Paper reference (Table 5, median / %>0.95):
//   Azure:  Naive 96.7/65.4  SimpleBatch 93.5/37.0  LSTM 95.4/53.5  Test 94.5/47.2
//   Huawei: Naive 93.9/40.6  SimpleBatch 91.6/23.4  LSTM 92.3/21.6  Test 92.2/18.6
// Shape to check: Naive packs misleadingly easily (highest median, most
// >0.95), SimpleBatch packs too hard (lowest), and LSTM is closest to the
// actual test data.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/workbench.h"
#include "src/sched/ffar.h"
#include "src/sched/packing.h"
#include "src/trace/events.h"
#include "src/util/env.h"
#include "src/util/rng.h"

namespace cloudgen {
namespace {

// Packs one trace collection through the shared tuples; one experiment per
// (trace, tuple) pair, striding tuples across traces so each tuple is used
// once overall (matching the paper's 500 single-trace experiments).
FfarSummary RunCollection(const std::vector<Trace>& traces,
                          const std::vector<SchedulingTuple>& tuples,
                          const std::vector<std::unique_ptr<PackingAlgorithm>>& algorithms,
                          uint64_t seed) {
  Rng rng(seed);
  std::vector<FfarResult> results;
  results.reserve(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    const Trace& trace = traces[i % traces.size()];
    Rng event_rng(seed ^ (i * 0x9E3779B9ull));
    const std::vector<Event> events = BuildEventStream(trace, event_rng);
    results.push_back(RunPacking(trace, events, tuples[i],
                                 *algorithms[tuples[i].algorithm_index], rng));
  }
  return SummarizeFfar(results);
}

void RunCloud(CloudKind kind, uint64_t seed) {
  CloudWorkbench workbench(kind, DefaultWorkbenchOptions());
  const auto algorithms = MakeAllPackingAlgorithms();
  const auto num_tuples =
      std::max<size_t>(60, static_cast<size_t>(500.0 * ExperimentScale()));
  Rng tuple_rng(seed);
  // The same tuples are reused for every generator to reduce variance (§6.2).
  const std::vector<SchedulingTuple> tuples =
      SampleSchedulingTuples(num_tuples, algorithms.size(), tuple_rng);

  std::printf("\n--- %s (%zu scheduling tuples) ---\n", CloudName(kind), num_tuples);
  std::printf("%-12s | %18s | %10s\n", "generator", "median FFAR (lim.)", ">0.95");
  for (const char* name : {"Naive", "SimpleBatch", "LSTM"}) {
    const FfarSummary summary =
        RunCollection(workbench.SampledTraces(name), tuples, algorithms, seed + 7);
    std::printf("%-12s | %17.1f%% | %9.1f%%\n", name, summary.median_limiting * 100.0,
                summary.proportion_above_95 * 100.0);
  }
  const std::vector<Trace> actual{TestDataTrace(workbench)};
  const FfarSummary test_summary = RunCollection(actual, tuples, algorithms, seed + 7);
  std::printf("%-12s | %17.1f%% | %9.1f%%\n", "Test data", test_summary.median_limiting * 100.0,
              test_summary.proportion_above_95 * 100.0);
}

void Run() {
  PrintBanner("Figure 10 / Table 5: FFAR packing experiments");
  RunCloud(CloudKind::kAzureLike, 9001);
  RunCloud(CloudKind::kHuaweiLike, 9101);
}

}  // namespace
}  // namespace cloudgen

int main() {
  cloudgen::Run();
  return 0;
}
