// Shared helpers for the experiment harnesses: table printing, the
// ground-truth test-window view used by the §6 experiments, and the
// registry-backed timing utilities every bench reports through.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "src/eval/workbench.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_span.h"
#include "src/trace/trace.h"
#include "src/util/atomic_file.h"
#include "src/util/timer.h"

namespace cloudgen {

// Prints a separator + experiment banner.
inline void PrintBanner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

// The "actual test data" view for §6: jobs arriving in the test window with
// their true end times (censored only at the very end of the simulation,
// mirroring the providers' extended observation).
inline Trace TestDataTrace(CloudWorkbench& workbench) {
  const Trace& truth = workbench.GroundTruth();
  return ApplyObservationWindow(truth, workbench.TestStart(), workbench.TestEnd(),
                                truth.WindowEnd());
}

// Formats a ratio as a percentage string.
inline std::string Pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

// Runs `fn` until ~0.3 s of wall clock has accumulated (at least twice after
// one warm-up call) and returns the mean iteration time in ms. The loop is
// timed as a whole — the registry is only touched after the clock stops, so
// sub-microsecond benches are not skewed — and the result lands in the global
// registry as bench.<name>.ms_per_iter / bench.<name>.iters plus the shared
// time.bench_iter_ms histogram.
inline double RunBench(const std::string& name, const std::function<void()>& fn) {
  fn();  // Warm-up (first-touch allocation, icache).
  Timer timer;
  size_t iters = 0;
  do {
    fn();
    ++iters;
  } while (timer.ElapsedSeconds() < 0.3 || iters < 2);
  const double ms = timer.ElapsedSeconds() * 1000.0 / static_cast<double>(iters);
  obs::Registry& registry = obs::Registry::Global();
  registry.GetGauge("bench." + name + ".ms_per_iter").Set(ms);
  registry.GetCounter("bench." + name + ".iters").Add(iters);
  registry.GetHistogram("time.bench_iter_ms").Observe(ms);
  std::printf("%-28s %10.3f ms/iter  (%zu iters)\n", name.c_str(), ms, iters);
  return ms;
}

// RAII wrapper for a one-shot bench stage: emits a trace span (visible with
// --trace-out style collection) and records the stage's wall time as
// bench.section.<name>.ms plus an observation in time.bench_section_ms.
// `name` must outlive the section (string literals do).
class TimedSection {
 public:
  explicit TimedSection(const char* name)
      : name_(name),
        span_(name),
        timer_(&obs::Registry::Global().GetHistogram("time.bench_section_ms")) {}
  TimedSection(const TimedSection&) = delete;
  TimedSection& operator=(const TimedSection&) = delete;
  ~TimedSection() {
    obs::Registry::Global()
        .GetGauge(std::string("bench.section.") + name_ + ".ms")
        .Set(timer_.ElapsedSeconds() * 1000.0);
  }

 private:
  const char* name_;
  obs::ScopedSpan span_;
  ScopedTimer timer_;
};

// Writes the global registry snapshot (schema cloudgen.metrics.v1) to
// $CLOUDGEN_BENCH_OUT if set, else `default_path`. Atomic: readers never see
// a half-written file.
inline void WriteBenchSnapshot(const std::string& default_path) {
  const char* override_path = std::getenv("CLOUDGEN_BENCH_OUT");
  const std::string path = override_path != nullptr ? override_path : default_path;
  const Status written = WriteFileAtomic(
      path, [](std::ostream& out) { obs::Registry::Global().WriteJson(out); });
  if (written.ok()) {
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "bench: failed to write %s: %s\n", path.c_str(),
                 written.ToString().c_str());
  }
}

}  // namespace cloudgen

#endif  // BENCH_BENCH_UTIL_H_
