// Shared helpers for the experiment harnesses: table printing and the
// ground-truth test-window view used by the §6 experiments.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/eval/workbench.h"
#include "src/trace/trace.h"

namespace cloudgen {

// Prints a separator + experiment banner.
inline void PrintBanner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

// The "actual test data" view for §6: jobs arriving in the test window with
// their true end times (censored only at the very end of the simulation,
// mirroring the providers' extended observation).
inline Trace TestDataTrace(CloudWorkbench& workbench) {
  const Trace& truth = workbench.GroundTruth();
  return ApplyObservationWindow(truth, workbench.TestStart(), workbench.TestEnd(),
                                truth.WindowEnd());
}

// Formats a ratio as a percentage string.
inline std::string Pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace cloudgen

#endif  // BENCH_BENCH_UTIL_H_
